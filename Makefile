GO ?= go

.PHONY: build test vet lint race cover fuzz-smoke ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# scarelint is the repo's own static-analysis suite (internal/lint): it
# enforces the simulation's consistency invariants — no dropped
# winapi.Status results, hook names in sync with winapi's apiCatalog and
# the engine handler table, no wall-clock/global-RNG reads in simulation
# packages, fully-populated trace events.
lint:
	$(GO) run ./cmd/scarelint ./...

race:
	$(GO) test -race ./...

# cover enforces statement-coverage floors on the two packages the snapshot
# pool lives in. Floors sit below current coverage (winsim 97%, analysis
# 85% under -short) with margin for flutter, and exist to catch a PR that
# lands a subsystem without tests — not to chase decimal points.
cover:
	$(GO) test -short -coverprofile=cover_winsim.out ./internal/winsim
	$(GO) test -short -coverprofile=cover_analysis.out ./internal/analysis
	@$(GO) tool cover -func=cover_winsim.out | awk '/^total:/ { c=$$3+0; \
		if (c < 90) { printf "FAIL: internal/winsim coverage %.1f%% < 90%%\n", c; exit 1 } \
		printf "internal/winsim coverage %.1f%% (floor 90%%)\n", c }'
	@$(GO) tool cover -func=cover_analysis.out | awk '/^total:/ { c=$$3+0; \
		if (c < 75) { printf "FAIL: internal/analysis coverage %.1f%% < 75%%\n", c; exit 1 } \
		printf "internal/analysis coverage %.1f%% (floor 75%%)\n", c }'

# fuzz-smoke gives the snapshot/restore fuzzer a short budget on every CI
# run; found inputs land in testdata/fuzz and become regression tests.
fuzz-smoke:
	$(GO) test -fuzz=FuzzSnapshotRestore -fuzztime=10s -run '^$$' ./internal/winsim

# ci mirrors .github/workflows/ci.yml: the tier-1 verify plus the static
# checks. `make ci` green locally means CI is green.
ci: build vet lint race cover fuzz-smoke

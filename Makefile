GO ?= go

.PHONY: build test vet lint race cover fuzz-smoke service-smoke hooks ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# scarelint is the repo's own static-analysis suite (internal/lint): it
# enforces the simulation's consistency invariants — no dropped
# winapi.Status results, hook names in sync with winapi's apiCatalog and
# the engine handler table, no wall-clock/global-RNG reads in simulation
# packages, fully-populated trace events.
lint:
	$(GO) run ./cmd/scarelint ./...

race:
	$(GO) test -race ./...

# cover enforces statement-coverage floors on the two packages the snapshot
# pool lives in. Floors sit below current coverage (winsim 97%, analysis
# 85% under -short) with margin for flutter, and exist to catch a PR that
# lands a subsystem without tests — not to chase decimal points.
cover:
	$(GO) test -short -coverprofile=cover_winsim.out ./internal/winsim
	$(GO) test -short -coverprofile=cover_analysis.out ./internal/analysis
	@$(GO) tool cover -func=cover_winsim.out | awk '/^total:/ { c=$$3+0; \
		if (c < 90) { printf "FAIL: internal/winsim coverage %.1f%% < 90%%\n", c; exit 1 } \
		printf "internal/winsim coverage %.1f%% (floor 90%%)\n", c }'
	@$(GO) tool cover -func=cover_analysis.out | awk '/^total:/ { c=$$3+0; \
		if (c < 75) { printf "FAIL: internal/analysis coverage %.1f%% < 75%%\n", c; exit 1 } \
		printf "internal/analysis coverage %.1f%% (floor 75%%)\n", c }'

# fuzz-smoke gives the snapshot/restore fuzzer a short budget on every CI
# run; found inputs land in testdata/fuzz and become regression tests.
fuzz-smoke:
	$(GO) test -fuzz=FuzzSnapshotRestore -fuzztime=10s -run '^$$' ./internal/winsim

# service-smoke drives a real scarecrowd over localhost with scarebench:
# 200 verdicts at concurrency 8 cycling 20 unique keys, failing on any
# request error or a zero cache hit-rate, and leaves the throughput/latency
# summary in BENCH_service.json.
service-smoke:
	$(GO) build -o scarecrowd ./cmd/scarecrowd
	$(GO) build -o scarebench ./cmd/scarebench
	@./scarecrowd -addr 127.0.0.1:18080 & \
	DAEMON=$$!; \
	./scarebench -addr http://127.0.0.1:18080 -n 200 -c 8 -require-hits -out BENCH_service.json; \
	STATUS=$$?; \
	kill $$DAEMON 2>/dev/null; wait $$DAEMON 2>/dev/null; \
	exit $$STATUS

# hooks installs the repo's pre-commit hook (vet + scarelint) into .git.
hooks:
	install -m 0755 scripts/pre-commit .git/hooks/pre-commit
	@echo "installed .git/hooks/pre-commit (go vet + scarelint)"

# ci mirrors .github/workflows/ci.yml: the tier-1 verify plus the static
# checks. `make ci` green locally means CI is green.
ci: build vet lint race cover fuzz-smoke service-smoke

GO ?= go

.PHONY: build test vet lint race ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# scarelint is the repo's own static-analysis suite (internal/lint): it
# enforces the simulation's consistency invariants — no dropped
# winapi.Status results, hook names in sync with winapi's apiCatalog and
# the engine handler table, no wall-clock/global-RNG reads in simulation
# packages, fully-populated trace events.
lint:
	$(GO) run ./cmd/scarelint ./...

race:
	$(GO) test -race ./...

# ci mirrors .github/workflows/ci.yml: the tier-1 verify plus the static
# checks. `make ci` green locally means CI is green.
ci: build vet lint race

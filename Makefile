GO ?= go

.PHONY: build test vet lint lint-fix lint-sarif race cover fuzz-smoke service-smoke front-smoke monitor-smoke bench-hotpath bench-synth bench-monitor synth-smoke generate generate-check hooks ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# scarelint is the repo's own static-analysis suite (internal/lint): it
# enforces the simulation's consistency invariants — no dropped
# winapi.Status results, hook names in sync with winapi's apiCatalog and
# the engine handler table, no wall-clock/global-RNG reads in simulation
# packages, fully-populated trace events, full apiCatalog reachability,
# and deterministic map iteration on every ordered output path.
lint:
	$(GO) run ./cmd/scarelint ./...

# lint-fix applies scarelint's suggested fixes (statusfix): explicit
# `_ =` discards for dropped Status results and collect-sort-iterate
# rewrites for order-leaking map ranges. Idempotent and gofmt-clean.
lint-fix:
	$(GO) run ./cmd/scarelint -fix ./...

# lint-sarif writes the SARIF 2.1.0 log CI uploads as an artifact.
lint-sarif:
	$(GO) run ./cmd/scarelint -sarif ./... > scarelint.sarif

race:
	$(GO) test -race ./...

# cover enforces statement-coverage floors on the packages whose failure
# modes are subtle: the snapshot pool (winsim, analysis) and the durable
# verdict store. Floors sit below current coverage with margin for
# flutter, and exist to catch a PR that lands a subsystem without tests —
# not to chase decimal points.
cover:
	$(GO) test -short -coverprofile=cover_winsim.out ./internal/winsim
	$(GO) test -short -coverprofile=cover_analysis.out ./internal/analysis
	$(GO) test -short -coverprofile=cover_store.out ./internal/store
	@$(GO) tool cover -func=cover_winsim.out | awk '/^total:/ { c=$$3+0; \
		if (c < 90) { printf "FAIL: internal/winsim coverage %.1f%% < 90%%\n", c; exit 1 } \
		printf "internal/winsim coverage %.1f%% (floor 90%%)\n", c }'
	@$(GO) tool cover -func=cover_analysis.out | awk '/^total:/ { c=$$3+0; \
		if (c < 75) { printf "FAIL: internal/analysis coverage %.1f%% < 75%%\n", c; exit 1 } \
		printf "internal/analysis coverage %.1f%% (floor 75%%)\n", c }'
	@$(GO) tool cover -func=cover_store.out | awk '/^total:/ { c=$$3+0; \
		if (c < 85) { printf "FAIL: internal/store coverage %.1f%% < 85%%\n", c; exit 1 } \
		printf "internal/store coverage %.1f%% (floor 85%%)\n", c }'

# fuzz-smoke gives the deterministic-state fuzzers a short budget on every
# CI run: snapshot/restore round-trips and WAL record decoding. Found
# inputs land in testdata/fuzz and become regression tests.
fuzz-smoke:
	$(GO) test -fuzz=FuzzSnapshotRestore -fuzztime=10s -run '^$$' ./internal/winsim
	$(GO) test -fuzz=FuzzWALDecode -fuzztime=10s -run '^$$' ./internal/store
	$(GO) test -fuzz=FuzzPredicateCodec -fuzztime=10s -run '^$$' ./internal/synth
	$(GO) test -fuzz=FuzzDetectorWindow -fuzztime=10s -run '^$$' ./internal/deter

# generate regenerates the checked-in code: the per-struct snapshot clone
# methods in internal/winsim/snapshot_gen.go (kept honest by the
# snapshotSpec reflection test and the generate-check diff gate).
generate:
	$(GO) generate ./internal/winsim

# generate-check fails if the checked-in generated code is stale — i.e.
# someone edited a cloned struct without re-running make generate.
generate-check: generate
	@git diff --exit-code internal/winsim/snapshot_gen.go || \
		{ echo "FAIL: internal/winsim/snapshot_gen.go is stale; run 'make generate' and commit the result"; exit 1; }

# bench-hotpath measures the in-process cold verdict pipeline and the
# per-stage allocation budgets, writing BENCH_hotpath.json. The gates are
# regression tripwires: the cold rate must stay at least 5x the honest
# pre-optimization baseline (~90 uncached verdicts/s — see
# cmd/scarebench/hotpath.go for the derivation) and the clone/record/
# marshal/commit stages must stay within their allocs/op budgets.
bench-hotpath:
	$(GO) run ./cmd/scarebench -hotpath -min-cold-speedup 5 -hotpath-out BENCH_hotpath.json

# synth-smoke proves the adversarial QA loop end to end at a fixed seed:
# the planted camouflage gap (reboot-restore conjunction) is rediscovered
# by the fuzzer and delta-debugged to its one-leaf core, and every gap
# fixture under internal/synth/testdata/gaps replays deactivated against
# the stock DB (i.e. the fixes that closed those gaps still hold).
synth-smoke:
	$(GO) test -count=1 -run 'TestPlantedGap|TestGapFixtures' -v ./internal/synth

# bench-synth runs a fixed-seed coverage-guided fuzzing campaign and
# writes BENCH_synth.json. The -min-cov-growth gate fails the build when
# unique-coverage growth drops below 15 keys per 1k generations (the
# seed-1 campaign measures ~42/1k; a fuzzer below the floor has lost its
# search signal to a generator or coverage-extraction regression).
bench-synth:
	$(GO) run ./cmd/scarebench -synth -synth-seed 1 -synth-budget 2000 -min-cov-growth 15 -synth-out BENCH_synth.json

# service-smoke drives a real scarecrowd over localhost end to end:
# classic cache/coalescing bench, cold+warm campaign sweep over SSE, and
# a SIGKILL + restart that must replay committed verdicts byte-identical
# from the WAL. Artifacts: BENCH_service.json, BENCH_campaign.json.
service-smoke:
	bash scripts/service-smoke.sh

# monitor-smoke drives the real-time deterrence tier end to end over
# localhost: a streamed /v1/monitor run must emit a detection frame
# before its deterred verdict, replay byte-identical with the cache
# bypassed, and observe mode must show the loss the kill prevented.
monitor-smoke:
	bash scripts/monitor-smoke.sh

# bench-monitor runs every catalog ransomware row (stock and
# evasive-gated) under the deterrence tier across four seeds each and
# writes BENCH_monitor.json. The gates are the tier's headline numbers:
# 100% detection rate and a median of at most 5 real files lost before
# the kill.
bench-monitor:
	$(GO) run ./cmd/scarebench -monitor -monitor-seeds 4 -min-detection-rate 1.0 -max-median-files-lost 5 -monitor-out BENCH_monitor.json

# front-smoke drives scarefront's scale-out tier end to end over
# localhost: the front bench (fleets of 2 and 4 gated at 0.7 x
# min(N, GOMAXPROCS) x the single-backend warm rate), routed verdicts
# with byte-identical cached replays, and a kill -9 of one backend
# mid-campaign that must resume from its WAL checkpoint and finish with
# every cell reported exactly once. Artifact: BENCH_front.json.
front-smoke:
	bash scripts/front-smoke.sh

# hooks installs the repo's pre-commit hook (vet + scarelint) into .git.
hooks:
	install -m 0755 scripts/pre-commit .git/hooks/pre-commit
	@echo "installed .git/hooks/pre-commit (go vet + scarelint)"

# ci mirrors .github/workflows/ci.yml: the tier-1 verify plus the static
# checks. `make ci` green locally means CI is green.
ci: build vet lint generate-check race cover fuzz-smoke synth-smoke bench-hotpath bench-synth bench-monitor service-smoke front-smoke monitor-smoke

// Ransomware walkthrough: Case II of the paper in detail. Runs the
// WannaCry variant and Locky on an end-user machine three ways — on a
// sinkholing sandbox, unprotected, and under Scarecrow — and shows the
// user's files before and after each run.
package main

import (
	"fmt"
	"time"

	"scarecrow/internal/core"
	"scarecrow/internal/malware"
	"scarecrow/internal/winapi"
	"scarecrow/internal/winsim"
)

func main() {
	fmt.Println("== WannaCry variant (network-evasive kill switch) ==")
	demo(malware.WannaCry())
	fmt.Println("\n== Locky (anti-VM checks before encryption) ==")
	demo(malware.Locky())
}

func demo(sample *malware.Specimen) {
	fmt.Printf("-- unprotected end-user machine --\n")
	runOn(sample, false)
	fmt.Printf("-- same machine with Scarecrow --\n")
	runOn(sample, true)
}

func runOn(sample *malware.Specimen, protected bool) {
	m := winsim.NewEndUserMachine(7)
	sys := winapi.NewSystem(m)
	sample.Register(sys)
	m.FS.Touch(sample.Image, 180<<10)

	docs := `C:\Users\alice\Documents`
	before := len(m.FS.List(docs))

	if protected {
		ctrl, err := core.Deploy(sys, core.NewEngine(core.NewDB(), core.RecommendedConfig(m.Profile)))
		if err != nil {
			panic(err)
		}
		if _, err := ctrl.LaunchTarget(sample.Image, sample.ID); err != nil {
			panic(err)
		}
		defer func() {
			if first, ok := ctrl.Session.FirstTrigger(); ok {
				fmt.Printf("  deactivated by: %s\n", first)
			}
		}()
	} else {
		sys.Launch(sample.Image, sample.ID, m.Procs.FindByImage("explorer.exe")[0])
	}
	sys.Run(time.Minute)

	after := m.FS.List(docs)
	encrypted := 0
	for _, f := range after {
		if hasRansomExt(f) {
			encrypted++
		}
	}
	fmt.Printf("  documents before: %d, after: %d, encrypted: %d\n", before, len(after), encrypted)
}

func hasRansomExt(f string) bool {
	for _, ext := range []string{".WCRY", ".wcry", ".locky"} {
		if len(f) > len(ext) && f[len(f)-len(ext):] == ext {
			return true
		}
	}
	return false
}

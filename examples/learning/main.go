// Continuous learning: the §II-C pipeline that keeps Scarecrow's deceptive
// resource database growing. A sample evading on a resource the stock
// database does not know initially defeats Scarecrow; comparing its kernel
// traces from two environments (the MalGene technique) surfaces the
// evasion signature, the database learns it, and the next encounter is
// deactivated.
package main

import (
	"fmt"
	"time"

	"scarecrow/internal/core"
	"scarecrow/internal/evasion"
	"scarecrow/internal/malgene"
	"scarecrow/internal/malware"
	"scarecrow/internal/trace"
	"scarecrow/internal/winapi"
	"scarecrow/internal/winsim"
)

const novelKey = `HKLM\SOFTWARE\VxStream\AnalysisAgent`

func main() {
	sample := &malware.Specimen{
		ID: "novel01", Family: "demo", Source: malware.SourceMalGene,
		Image:   malware.ImagePath("novel01"),
		Checks:  []evasion.Check{evasion.NtRegistryKey("ntreg:vxstream", novelKey)},
		React:   malware.ReactTerminate(),
		Payload: malware.PayloadDropper("payload.exe"),
	}

	fmt.Println("1. stock database: the probe for an unknown sandbox key fails, the payload runs")
	stock := core.NewDB()
	fmt.Printf("   mutations under Scarecrow: %d\n", protectedMutations(sample, stock))

	fmt.Println("2. MalGene: align traces from an environment the sample evades vs one it infects")
	evaded := runRaw(sample, true)
	exposed := runRaw(sample, false)
	sig, ok := malgene.ExtractSignature(evaded, exposed)
	if !ok {
		panic("no signature extracted")
	}
	fmt.Printf("   extracted evasion signature: %s\n", sig)

	fmt.Println("3. extend the deception database with the learned resource")
	learned := core.NewDB()
	if !sig.ExtendDB(learned) {
		panic("signature not foldable")
	}

	fmt.Println("4. next encounter: the probe is deceived, the sample deactivates")
	fmt.Printf("   mutations under Scarecrow: %d\n", protectedMutations(sample, learned))
}

// runRaw executes the sample without Scarecrow; plant makes the probed key
// genuinely present (an environment the sample evades).
func runRaw(s *malware.Specimen, plant bool) []trace.Event {
	m := winsim.NewBareMetalSandbox(1)
	if plant {
		if _, err := m.Registry.CreateKey(novelKey); err != nil {
			panic(err)
		}
	}
	sys := winapi.NewSystem(m)
	s.Register(sys)
	m.FS.Touch(s.Image, 64<<10)
	root := sys.Launch(s.Image, s.ID, nil)
	sys.Run(time.Minute)
	return m.Tracer.Filter(func(e trace.Event) bool { return e.PID >= root.PID })
}

func protectedMutations(s *malware.Specimen, db *core.DB) int {
	m := winsim.NewEndUserMachine(5)
	sys := winapi.NewSystem(m)
	s.Register(sys)
	m.FS.Touch(s.Image, 64<<10)
	ctrl, err := core.Deploy(sys, core.NewEngine(db, core.RecommendedConfig(m.Profile)))
	if err != nil {
		panic(err)
	}
	root, err := ctrl.LaunchTarget(s.Image, s.ID)
	if err != nil {
		panic(err)
	}
	sys.Run(time.Minute)
	sum := trace.Summarize(m.Tracer.Filter(func(e trace.Event) bool {
		return e.PID >= root.PID
	}))
	return sum.Mutations()
}

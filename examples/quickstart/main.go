// Quickstart: protect a simulated end-user machine with Scarecrow and
// watch it deactivate an evasive ransomware sample.
//
// The flow mirrors a real deployment (Figure 2 of the paper): build the
// deceptive resource database, wrap it in an engine, Deploy the controller
// on the machine, and launch the untrusted program through it.
package main

import (
	"fmt"
	"time"

	"scarecrow/internal/core"
	"scarecrow/internal/malware"
	"scarecrow/internal/trace"
	"scarecrow/internal/winapi"
	"scarecrow/internal/winsim"
)

func main() {
	// A simulated, actively used end-user Windows 7 machine.
	machine := winsim.NewEndUserMachine(42)
	system := winapi.NewSystem(machine)

	// The untrusted download: the evasive WannaCry variant of Case II.
	sample := malware.WannaCry()
	sample.Register(system)
	machine.FS.Touch(sample.Image, 180<<10)

	// Deploy Scarecrow: stock deceptive resources, recommended config.
	engine := core.NewEngine(core.NewDB(), core.RecommendedConfig(machine.Profile))
	controller, err := core.Deploy(system, engine)
	if err != nil {
		panic(err)
	}

	// Launch the suspicious program through the controller (it becomes the
	// parent process and injects scarecrow.dll before the first
	// instruction).
	target, err := controller.LaunchTarget(sample.Image, "invoice.pdf.exe")
	if err != nil {
		panic(err)
	}
	system.Run(time.Minute)

	// What happened?
	summary := trace.Summarize(machine.Tracer.Filter(func(e trace.Event) bool {
		return e.PID >= target.PID
	}))
	fmt.Printf("durable changes by the sample: %d\n", summary.Mutations())
	fmt.Printf("files encrypted: %d\n", len(summary.FilesDeleted))
	if first, ok := controller.Session.FirstTrigger(); ok {
		fmt.Printf("deactivating trigger: %s\n", first)
	}
	fmt.Println("the kill-switch domain was sinkholed; the ransomware exited before touching a file")
}

// Fingerprint steering: run the two state-of-the-art analysis-environment
// fingerprinting techniques the paper evaluates against — Pafish and
// wear-and-tear artifacts — across the three environments, with and
// without Scarecrow, reproducing Tables II and III.
package main

import (
	"fmt"

	"scarecrow/internal/analysis"
)

func main() {
	fmt.Println("Table II — Pafish evidence features triggered per category")
	table2, err := analysis.Table2(1)
	if err != nil {
		panic(err)
	}
	fmt.Print(table2)

	fmt.Println("\nTable III — wear-and-tear artifacts steered by Scarecrow")
	report, err := analysis.Table3(7)
	if err != nil {
		panic(err)
	}
	fmt.Print(report)
	if report.Steered() {
		fmt.Println("\nthe decision tree now classifies the worn end-user machine as a sandbox")
	}
}

// Labsweep: a miniature version of the Figure 4 corpus evaluation. Takes a
// slice of the MalGene corpus, runs every sample with and without
// Scarecrow on the simulated bare-metal cluster, and prints the verdict
// breakdown. Pass -full to evaluate all 1,054 samples.
package main

import (
	"flag"
	"fmt"
	"time"

	"scarecrow/internal/analysis"
	"scarecrow/internal/malware"
)

func main() {
	n := flag.Int("n", 120, "number of corpus samples to sweep")
	full := flag.Bool("full", false, "evaluate the complete 1,054-sample corpus")
	seed := flag.Int64("seed", 42, "deterministic seed")
	noPool := flag.Bool("no-pool", false, "rebuild machines from scratch instead of cloning the template snapshot")
	flag.Parse()

	corpus := malware.MalGeneCorpus()
	if !*full && *n < len(corpus) {
		// A stratified slice: take every k-th sample so all families and
		// mechanisms appear.
		step := len(corpus) / *n
		var slice []*malware.Specimen
		for i := 0; i < len(corpus); i += step {
			slice = append(slice, corpus[i])
		}
		corpus = slice
	}

	fmt.Printf("sweeping %d samples on the simulated cluster...\n", len(corpus))
	start := time.Now()
	lab := analysis.NewLab(*seed)
	lab.DisablePooling = *noPool
	report := analysis.Figure4(lab, corpus)
	fmt.Print(report)
	fmt.Println(report.Health)
	fmt.Printf("wall time: %.1fs\n", time.Since(start).Seconds())
}

// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation, plus the design-choice ablations DESIGN.md calls
// out. Each benchmark regenerates its experiment end to end on the
// simulated cluster and reports the headline result as a custom metric, so
//
//	go test -bench=. -benchmem
//
// reproduces the whole evaluation and prints its key numbers.
package scarecrow

import (
	"encoding/json"
	"os"
	"sync"
	"testing"
	"time"

	"scarecrow/internal/analysis"
	"scarecrow/internal/core"
	"scarecrow/internal/crawler"
	"scarecrow/internal/malware"
	"scarecrow/internal/pafish"
	"scarecrow/internal/weartear"
	"scarecrow/internal/winapi"
	"scarecrow/internal/winsim"
)

var printOnce sync.Once

// printReports emits every table and figure once per benchmark session so
// the bench output file carries the full reproduction alongside timings.
func printReports(b *testing.B) {
	printOnce.Do(func() {
		b.Logf("\n%s", analysis.Table1(analysis.NewLab(42)))
		table2, err := analysis.Table2(1)
		if err != nil {
			b.Fatal(err)
		}
		b.Logf("\n%s", table2)
		table3, err := analysis.Table3(7)
		if err != nil {
			b.Fatal(err)
		}
		b.Logf("\n%s", table3)
		benign, err := analysis.RunBenign(7)
		if err != nil {
			b.Fatal(err)
		}
		b.Logf("\n%s", benign)
	})
}

// BenchmarkTable1JoeSecurity regenerates Table I: the 13 Joe Security
// samples, run with and without Scarecrow.
func BenchmarkTable1JoeSecurity(b *testing.B) {
	printReports(b)
	var deactivated int
	for i := 0; i < b.N; i++ {
		report := analysis.Table1(analysis.NewLab(42))
		deactivated = report.DeactivatedCount()
	}
	b.ReportMetric(float64(deactivated), "deactivated/13")
}

// BenchmarkFigure4MalGeneCorpus regenerates Figure 4 from the complete
// 1,054-sample corpus (the heaviest benchmark: ~2,100 machine
// executions per iteration).
func BenchmarkFigure4MalGeneCorpus(b *testing.B) {
	corpus := malware.MalGeneCorpus()
	var report analysis.Figure4Report
	for i := 0; i < b.N; i++ {
		report = analysis.Figure4(analysis.NewLab(42), corpus)
	}
	b.ReportMetric(report.DeactivationRate(), "%deactivated")
	b.ReportMetric(report.SpawnLoopRate(), "%spawnloops")
	b.ReportMetric(float64(report.SpawnersUsingIsDebugger), "isdbg-spawners")
	b.ReportMetric(float64(report.Health.VerdictErrors), "run-errors")
	b.ReportMetric(report.Health.Throughput(), "runs/s")
	b.Logf("\n%s", report)
	b.Logf("%s", report.Health)
}

// BenchmarkFigure4Sample100 sweeps a stratified 100-sample slice of the
// corpus — the quick variant of Figure 4.
func BenchmarkFigure4Sample100(b *testing.B) {
	full := malware.MalGeneCorpus()
	var corpus []*malware.Specimen
	for i := 0; i < len(full); i += len(full) / 100 {
		corpus = append(corpus, full[i])
	}
	var report analysis.Figure4Report
	for i := 0; i < b.N; i++ {
		report = analysis.Figure4(analysis.NewLab(42), corpus)
	}
	b.ReportMetric(report.DeactivationRate(), "%deactivated")
	b.ReportMetric(report.Health.Throughput(), "runs/s")
}

// BenchmarkSweepReset measures the Deep Freeze reset itself: acquiring a
// run-ready bare-metal machine by cloning the template snapshot (the lab's
// default) versus building one from scratch. Alongside the standard ns/op
// (the clone cost) it reports fresh_ns/op, reset_ns/op, and speedup_x, and
// writes the comparison to BENCH_sweep.json.
func BenchmarkSweepReset(b *testing.B) {
	template := winsim.NewBareMetalSandbox(0).Snapshot()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		template.Clone(int64(i))
	}
	b.StopTimer()
	resetNs := float64(b.Elapsed().Nanoseconds()) / float64(b.N)

	const freshRuns = 25
	start := time.Now()
	for i := 0; i < freshRuns; i++ {
		winsim.NewBareMetalSandbox(int64(i))
	}
	freshNs := float64(time.Since(start).Nanoseconds()) / freshRuns

	speedup := 0.0
	if resetNs > 0 {
		speedup = freshNs / resetNs
	}
	b.ReportMetric(resetNs, "reset_ns/op")
	b.ReportMetric(freshNs, "fresh_ns/op")
	b.ReportMetric(speedup, "speedup_x")
	writeSweepBench(b, resetNs, freshNs, speedup)
}

// writeSweepBench persists the reset comparison so CI and ROADMAP readers
// get the headline numbers without re-running the benchmark.
func writeSweepBench(b *testing.B, resetNs, freshNs, speedup float64) {
	doc := struct {
		Benchmark string  `json:"benchmark"`
		Profile   string  `json:"profile"`
		ResetNs   float64 `json:"reset_ns_per_op"`
		FreshNs   float64 `json:"fresh_ns_per_op"`
		SpeedupX  float64 `json:"speedup_x"`
	}{
		Benchmark: "BenchmarkSweepReset",
		Profile:   string(winsim.ProfileBareMetalSandbox),
		ResetNs:   resetNs,
		FreshNs:   freshNs,
		SpeedupX:  speedup,
	}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_sweep.json", append(buf, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkSweepThroughput sweeps the stratified 100-sample corpus slice
// with the template pool on (default) and off, reporting machine executions
// per second for each — the end-to-end effect of the O(1) reset.
func BenchmarkSweepThroughput(b *testing.B) {
	full := malware.MalGeneCorpus()
	var corpus []*malware.Specimen
	for i := 0; i < len(full); i += len(full) / 100 {
		corpus = append(corpus, full[i])
	}
	for _, mode := range []struct {
		name   string
		noPool bool
	}{
		{"pooled", false},
		{"fresh", true},
	} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			var report analysis.RunReport
			for i := 0; i < b.N; i++ {
				lab := analysis.NewLab(42)
				lab.DisablePooling = mode.noPool
				_, report = lab.Sweep(corpus)
			}
			b.ReportMetric(report.Throughput(), "runs/s")
		})
	}
}

// BenchmarkTable2Pafish regenerates Table II: the 56-feature Pafish
// battery across the three environments, with and without Scarecrow.
func BenchmarkTable2Pafish(b *testing.B) {
	var report analysis.Table2Report
	var err error
	for i := 0; i < b.N; i++ {
		if report, err = analysis.Table2(1); err != nil {
			b.Fatal(err)
		}
	}
	vbox := report.Cells["VM sandbox"]["VirtualBox"]
	b.ReportMetric(float64(vbox.With), "vm-vbox-with")
	b.ReportMetric(float64(vbox.Without), "vm-vbox-without")
}

// BenchmarkTable3WearAndTear regenerates Table III: artifact extraction,
// decision-tree training, and the classifier flip under the wear-and-tear
// extension.
func BenchmarkTable3WearAndTear(b *testing.B) {
	var report analysis.Table3Report
	var err error
	for i := 0; i < b.N; i++ {
		if report, err = analysis.Table3(7); err != nil {
			b.Fatal(err)
		}
	}
	steered := 0.0
	if report.Steered() {
		steered = 1.0
	}
	b.ReportMetric(steered, "steered")
	b.ReportMetric(report.TreeAccuracy, "tree-acc")
}

// BenchmarkBenignImpact regenerates the §IV-C benign-software evaluation
// over the top-20 CNET programs.
func BenchmarkBenignImpact(b *testing.B) {
	var report analysis.BenignReport
	var err error
	for i := 0; i < b.N; i++ {
		if report, err = analysis.RunBenign(7); err != nil {
			b.Fatal(err)
		}
	}
	unaffected := 0
	for _, row := range report.Rows {
		if row.RawOK && row.ProtectedOK && row.DiffEmpty {
			unaffected++
		}
	}
	b.ReportMetric(float64(unaffected), "unaffected/20")
}

// BenchmarkCrawlPublicSandboxes regenerates the §II-C crawl-and-diff
// (17,540 files / 24 processes / 1,457 registry entries).
func BenchmarkCrawlPublicSandboxes(b *testing.B) {
	var r crawler.Resources
	for i := 0; i < b.N; i++ {
		r = crawler.CrawlPublicSandboxes(1)
	}
	b.ReportMetric(float64(len(r.Files)), "files")
	b.ReportMetric(float64(len(r.Processes)), "procs")
	b.ReportMetric(float64(len(r.RegistryKeys)), "regkeys")
}

// BenchmarkCase2WannaCry regenerates Case II (WannaCry deactivation via
// the DNS sinkhole).
func BenchmarkCase2WannaCry(b *testing.B) {
	var report analysis.CaseStudyReport
	var err error
	for i := 0; i < b.N; i++ {
		if report, err = analysis.RunCaseStudy(malware.WannaCry(), 7); err != nil {
			b.Fatal(err)
		}
	}
	deactivated := 0.0
	if report.Verdict.Deactivated {
		deactivated = 1
	}
	b.ReportMetric(deactivated, "deactivated")
}

// BenchmarkHookOverheadUnhooked and BenchmarkHookOverheadHooked measure
// the real (wall-clock) cost of the interposition machinery itself: one
// registry probe through a clean function versus through the full
// Scarecrow hook chain. This is the §III "negligible overhead" claim and
// the per-process-hook-table ablation.
func BenchmarkHookOverheadUnhooked(b *testing.B) {
	ctx := benchContext(b, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx.RegOpenKeyEx(`HKLM\SOFTWARE\Microsoft\Windows NT\CurrentVersion`)
	}
}

func BenchmarkHookOverheadHooked(b *testing.B) {
	ctx := benchContext(b, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx.RegOpenKeyEx(`HKLM\SOFTWARE\Microsoft\Windows NT\CurrentVersion`)
	}
}

// BenchmarkHookOverheadDeceived measures a probe that hits the deception
// database (fabricated answer, no pass-through).
func BenchmarkHookOverheadDeceived(b *testing.B) {
	ctx := benchContext(b, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx.RegOpenKeyEx(`HKLM\SOFTWARE\Oracle\VirtualBox Guest Additions`)
	}
}

func benchContext(b *testing.B, protected bool) *winapi.Context {
	m := winsim.NewEndUserMachine(1)
	// Leave the clock unbounded: benchmarks run far more iterations than a
	// one-minute window models.
	sys := winapi.NewSystem(m)
	p := sys.Launch(`C:\bench.exe`, "", nil)
	if protected {
		ctrl, err := core.Deploy(sys, core.NewEngine(core.NewDB(), core.DefaultConfig()))
		if err != nil {
			b.Fatal(err)
		}
		if err := ctrl.Watch(p); err != nil {
			b.Fatal(err)
		}
	}
	return sys.Context(p)
}

// BenchmarkAblationResourceCategories quantifies the Pareto claim of
// §II-C: even a single deceptive resource category deactivates a large
// share of the corpus. Each sub-benchmark disables all but one category.
func BenchmarkAblationResourceCategories(b *testing.B) {
	full := malware.MalGeneCorpus()
	var corpus []*malware.Specimen
	for i := 0; i < len(full); i += len(full) / 150 {
		corpus = append(corpus, full[i])
	}
	configs := map[string]core.Config{
		"full":            core.RecommendedConfig("baremetal-sandbox"),
		"no-debugger":     withoutCategories(core.CategoryDebugger),
		"no-registry":     withoutCategories(core.CategoryRegistry),
		"no-vm-resources": withoutCategories(core.CategoryRegistry, core.CategoryFile, core.CategoryLibrary, core.CategoryWindow),
		"debugger-only": withoutCategories(core.CategoryRegistry, core.CategoryFile,
			core.CategoryLibrary, core.CategoryWindow, core.CategoryProcess),
		"no-hardware": noHardwareConfig(),
	}
	for name, cfg := range configs {
		cfg := cfg
		b.Run(name, func(b *testing.B) {
			var report analysis.Figure4Report
			for i := 0; i < b.N; i++ {
				lab := analysis.NewLab(42)
				lab.Config = cfg
				report = analysis.Figure4(lab, corpus)
			}
			b.ReportMetric(report.DeactivationRate(), "%deactivated")
		})
	}
}

func withoutCategories(cats ...core.Category) core.Config {
	cfg := core.RecommendedConfig("baremetal-sandbox")
	cfg.DisabledCategories = cats
	return cfg
}

func noHardwareConfig() core.Config {
	cfg := core.RecommendedConfig("baremetal-sandbox")
	cfg.FakeHardware = false
	cfg.SinkholeNXDomains = false
	return cfg
}

// BenchmarkAblationMitigationKill compares record-only mitigation against
// kill-on-fork on the 474-spawn exemplar (§VI-C).
func BenchmarkAblationMitigationKill(b *testing.B) {
	for _, mode := range []struct {
		name   string
		policy core.MitigationPolicy
	}{
		{"record-only", core.MitigationRecordOnly},
		{"kill-on-fork", core.MitigationKillOnFork},
	} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			var spawns int
			for i := 0; i < b.N; i++ {
				lab := analysis.NewLab(42)
				lab.Config.Mitigation = mode.policy
				res := lab.RunSample(malware.CorpusSelfSpawner(), 1)
				spawns = res.Protected.Summary.SelfSpawns
			}
			b.ReportMetric(float64(spawns), "spawns")
		})
	}
}

// BenchmarkPafishBattery measures one full 56-feature Pafish run.
func BenchmarkPafishBattery(b *testing.B) {
	m := winsim.NewCuckooSandbox(1, false)
	sys := winapi.NewSystem(m)
	ctx := sys.Context(sys.Launch(`C:\pafish.exe`, "", nil))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pafish.Run(ctx)
	}
}

// BenchmarkWearTearExtraction measures one 44-artifact extraction.
func BenchmarkWearTearExtraction(b *testing.B) {
	m := winsim.NewEndUserMachine(1)
	sys := winapi.NewSystem(m)
	ctx := sys.Context(sys.Launch(`C:\probe.exe`, "", nil))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		weartear.Vector(ctx)
	}
}

// BenchmarkMachineConstruction measures the Deep Freeze reset equivalent:
// building a fresh bare-metal machine.
func BenchmarkMachineConstruction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		winsim.NewBareMetalSandbox(int64(i))
	}
}

// BenchmarkSelfSpawnMinute measures one full one-minute self-spawn loop
// under Scarecrow (474 respawn generations).
func BenchmarkSelfSpawnMinute(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := winsim.NewBareMetalSandbox(1)
		sys := winapi.NewSystem(m)
		s := malware.CorpusSelfSpawner()
		s.Register(sys)
		m.FS.Touch(s.Image, 180<<10)
		ctrl, err := core.Deploy(sys, core.NewEngine(core.NewDB(), core.RecommendedConfig(m.Profile)))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ctrl.LaunchTarget(s.Image, s.ID); err != nil {
			b.Fatal(err)
		}
		sys.Run(time.Minute)
	}
}

// BenchmarkKernelExtension regenerates the §VI-A kernel-gate experiment:
// the raw-syscall corpus samples under user-only and kernel-extended
// deployments.
func BenchmarkKernelExtension(b *testing.B) {
	var report analysis.KernelExtensionReport
	for i := 0; i < b.N; i++ {
		report = analysis.KernelExtension(42)
	}
	b.ReportMetric(float64(report.DeactivatedUserOnly), "user-only")
	b.ReportMetric(float64(report.DeactivatedWithGate), "kernel-gate")
}

// BenchmarkEvasionBaseline regenerates the motivation experiment: the
// share of the corpus that changes behaviour inside stock analysis rigs.
func BenchmarkEvasionBaseline(b *testing.B) {
	full := malware.MalGeneCorpus()
	var slice []*malware.Specimen
	for i := 0; i < len(full); i += len(full) / 150 {
		slice = append(slice, full[i])
	}
	var report analysis.EvasionBaselineReport
	var err error
	for i := 0; i < b.N; i++ {
		if report, err = analysis.EvasionBaseline(slice, 42); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(report.EvasionRate(), "%evading")
}

// BenchmarkFullStackLadder regenerates the §VI-A deployment-tier ladder
// over the residual corpus.
func BenchmarkFullStackLadder(b *testing.B) {
	var report analysis.FullStackReport
	for i := 0; i < b.N; i++ {
		report = analysis.FullStack(42)
	}
	if len(report.Tiers) == 3 {
		b.ReportMetric(float64(report.Tiers[1].Deactivated), "kernel-tier")
		b.ReportMetric(float64(report.Tiers[2].Deactivated), "hypervisor-tier")
	}
}

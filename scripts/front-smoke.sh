#!/usr/bin/env bash
# front-smoke: end-to-end drive of scarefront's scale-out tier over
# localhost — two real scarecrowd backends behind one real front.
#
#   1. front bench      — cold+warm catalog sweeps through the front over
#                         in-process fleets of 2 and 4 backends against a
#                         single-backend baseline; the aggregate warm rate
#                         must reach 0.7 x min(N, GOMAXPROCS) x baseline.
#                         Artifact: BENCH_front.json.
#   2. routed verdicts  — a verdict submitted through the front replays as
#                         an X-Scarecrow-Cache hit with byte-identical
#                         bytes, and the job ID carries the owning
#                         backend's shard prefix.
#   3. SIGKILL recovery — launch a fanned-out campaign through the front,
#                         kill -9 one backend mid-sweep, restart it on the
#                         same data dir, and require the campaign to
#                         complete with zero errors, every cell reported
#                         exactly once on the merged stream (no losses, no
#                         duplicates), and a verdict committed before the
#                         kill replayed byte-identical from the WAL.
#
# Artifacts: BENCH_front.json.
set -euo pipefail

cd "$(dirname "$0")/.."

B0_ADDR=127.0.0.1:18091
B1_ADDR=127.0.0.1:18092
FRONT_ADDR=127.0.0.1:18090
BASE=http://$FRONT_ADDR
DATA=$(mktemp -d)
B0_PID=""
B1_PID=""
FRONT_PID=""

cleanup() {
  for pid in "$FRONT_PID" "$B0_PID" "$B1_PID"; do
    if [ -n "$pid" ]; then
      kill "$pid" 2>/dev/null || true
      wait "$pid" 2>/dev/null || true
    fi
  done
  rm -rf "$DATA"
}
trap cleanup EXIT

wait_healthy() { # url, name
  for _ in $(seq 1 100); do
    if curl -fsS "$1/healthz" >/dev/null 2>&1; then
      return 0
    fi
    sleep 0.1
  done
  echo "FAIL: $2 never became healthy"
  cat "$DATA"/*.log 2>/dev/null || true
  exit 1
}

start_backend0() {
  ./scarecrowd -addr "$B0_ADDR" -data-dir "$DATA/b0" >>"$DATA/b0.log" 2>&1 &
  B0_PID=$!
  wait_healthy "http://$B0_ADDR" "backend 0"
}

echo "== build"
go build -o scarecrowd ./cmd/scarecrowd
go build -o scarefront ./cmd/scarefront
go build -o scarebench ./cmd/scarebench

echo "== front bench: fleets of 2 and 4 vs single-backend baseline"
./scarebench -front -min-scaling 0.7 -front-out BENCH_front.json

echo "== boot: 2 backends + front (stores under $DATA)"
start_backend0
./scarecrowd -addr "$B1_ADDR" -data-dir "$DATA/b1" >>"$DATA/b1.log" 2>&1 &
B1_PID=$!
wait_healthy "http://$B1_ADDR" "backend 1"
./scarefront -addr "$FRONT_ADDR" -backends "http://$B0_ADDR,http://$B1_ADDR" \
  -health-interval 200ms >>"$DATA/front.log" 2>&1 &
FRONT_PID=$!
wait_healthy "$BASE" "front"

echo "== routed verdict: shard-prefixed job ID, byte-identical cached replay"
curl -fsS -D "$DATA/h1" "$BASE/v1/verdict" -d '{"specimen":"kasidet","seed":91}' >"$DATA/v1.json"
if ! grep -qiE 'X-Scarecrow-Job: b[0-9]+-j' "$DATA/h1"; then
  echo "FAIL: front did not namespace the job ID"
  cat "$DATA/h1"
  exit 1
fi
curl -fsS -D "$DATA/h2" "$BASE/v1/verdict" -d '{"specimen":"kasidet","seed":91}' >"$DATA/v2.json"
if ! grep -qi 'X-Scarecrow-Cache: hit' "$DATA/h2"; then
  echo "FAIL: replay through the front was not a cache hit"
  cat "$DATA/h2"
  exit 1
fi
if ! cmp -s "$DATA/v1.json" "$DATA/v2.json"; then
  echo "FAIL: verdict bytes differ across the front replay"
  exit 1
fi

echo "== durability: commit a verdict on backend 0, then kill it mid-campaign"
# kasidet hashes onto backend 0's shard with this 2-backend ring, so the
# committed verdict lives in exactly the WAL the SIGKILL threatens.
curl -fsS "$BASE/v1/verdict" -d '{"specimen":"kasidet","seed":92}' >"$DATA/pre.json"

# Fresh seeds so the sweep does real lab work when the kill lands.
LAUNCH=$(curl -fsS "$BASE/v1/campaign" \
  -d '{"specimens":["kasidet","locky","wannacry","scaware","spawner","toolkiller"],"seeds":[21,22,23,24]}')
CID=$(echo "$LAUNCH" | sed -n 's/.*"id":"\([^"]*\)".*/\1/p')
TOTAL=$(echo "$LAUNCH" | sed -n 's/.*"total":\([0-9]*\).*/\1/p')
if [ -z "$CID" ] || [ -z "$TOTAL" ]; then
  echo "FAIL: campaign launch returned no id/total: $LAUNCH"
  exit 1
fi
DONE=0
for _ in $(seq 1 200); do
  DONE=$(curl -fsS "$BASE/v1/campaign/$CID" | sed -n 's/.*"completed":\([0-9]*\).*/\1/p')
  if [ "${DONE:-0}" -ge 2 ]; then
    break
  fi
  sleep 0.05
done
echo "   campaign $CID at ${DONE:-0}/$TOTAL verdicts; kill -9 backend 0 ($B0_PID)"
kill -9 "$B0_PID"
wait "$B0_PID" 2>/dev/null || true
B0_PID=""

echo "== restart backend 0 on the same data dir: campaign must complete"
start_backend0
for _ in $(seq 1 600); do
  SNAP=$(curl -fsS "$BASE/v1/campaign/$CID")
  STATE=$(echo "$SNAP" | sed -n 's/.*"state":"\([^"]*\)".*/\1/p')
  if [ "$STATE" != "running" ]; then
    break
  fi
  sleep 0.1
done
if [ "$STATE" != "done" ]; then
  echo "FAIL: campaign ended in state '$STATE' after backend restart: $SNAP"
  exit 1
fi
ERRORS=$(echo "$SNAP" | sed -n 's/.*"errors":\([0-9]*\).*/\1/p')
COMPLETED=$(echo "$SNAP" | sed -n 's/.*"completed":\([0-9]*\).*/\1/p')
if [ "${ERRORS:-0}" != "0" ] || [ "$COMPLETED" != "$TOTAL" ]; then
  echo "FAIL: campaign completed $COMPLETED/$TOTAL with $ERRORS errors: $SNAP"
  exit 1
fi

echo "== merged stream: every cell exactly once (no losses, no duplicates)"
curl -fsSN "$BASE/v1/campaign/$CID/events" >"$DATA/events.raw"
grep '"type":"verdict"' "$DATA/events.raw" \
  | sed -n 's/.*"specimen":"\([^"]*\)".*"seed":\(-\{0,1\}[0-9]*\).*/\1|\2/p' >"$DATA/cells"
CELLS=$(wc -l <"$DATA/cells")
if [ "$CELLS" != "$TOTAL" ]; then
  echo "FAIL: merged stream carried $CELLS verdict events, want $TOTAL"
  exit 1
fi
DUPES=$(sort "$DATA/cells" | uniq -d)
if [ -n "$DUPES" ]; then
  echo "FAIL: duplicated cells on the merged stream:"
  echo "$DUPES"
  exit 1
fi

echo "== pre-kill verdict replays byte-identical from backend 0's WAL"
REPLAYED=0
for _ in $(seq 1 50); do
  if curl -fsS -D "$DATA/h3" "$BASE/v1/verdict" -d '{"specimen":"kasidet","seed":92}' >"$DATA/post.json" 2>/dev/null; then
    REPLAYED=1
    break
  fi
  sleep 0.2 # the front may still hold the backend degraded for a beat
done
if [ "$REPLAYED" != "1" ]; then
  echo "FAIL: front never served the shard again after restart"
  exit 1
fi
if ! grep -qi 'X-Scarecrow-Cache: hit' "$DATA/h3"; then
  echo "FAIL: restarted backend did not serve the committed verdict from its WAL"
  cat "$DATA/h3"
  exit 1
fi
if ! cmp -s "$DATA/pre.json" "$DATA/post.json"; then
  echo "FAIL: verdict bytes differ across SIGKILL + restart through the front"
  diff "$DATA/pre.json" "$DATA/post.json" || true
  exit 1
fi

echo "front-smoke: OK"

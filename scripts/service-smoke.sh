#!/usr/bin/env bash
# service-smoke: end-to-end drive of scarecrowd's serving and durability
# stack over localhost.
#
#   1. classic bench    — 200 verdicts at concurrency 8 cycling 20 keys;
#                         fails on any error or a zero cache hit-rate.
#   2. campaign bench   — cold+warm catalog sweep through /v1/campaign,
#                         following the SSE streams; the warm replay must
#                         be at least 1.5x faster than the cold pass.
#                         (The margin is deliberately modest: the cold
#                         path is now within a small factor of replay
#                         speed — see BENCH_hotpath.json — so a large
#                         warm/cold ratio would mean the cold path
#                         regressed, not that the cache is healthy.)
#   3. SIGKILL recovery — commit a verdict, launch a campaign, kill -9
#                         the daemon mid-sweep, restart it on the same
#                         data dir, and require the committed verdict to
#                         come back byte-identical as an X-Scarecrow-Cache
#                         hit served from the WAL alone.
#
# Artifacts: BENCH_service.json, BENCH_campaign.json.
set -euo pipefail

cd "$(dirname "$0")/.."

ADDR=127.0.0.1:18080
BASE=http://$ADDR
DATA=$(mktemp -d)
DAEMON_PID=""

cleanup() {
  if [ -n "$DAEMON_PID" ]; then
    kill "$DAEMON_PID" 2>/dev/null || true
    wait "$DAEMON_PID" 2>/dev/null || true
  fi
  rm -rf "$DATA"
}
trap cleanup EXIT

start_daemon() {
  ./scarecrowd -addr "$ADDR" -data-dir "$DATA/store" >>"$DATA/daemon.log" 2>&1 &
  DAEMON_PID=$!
  for _ in $(seq 1 100); do
    if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then
      return 0
    fi
    sleep 0.1
  done
  echo "FAIL: daemon never became healthy"
  cat "$DATA/daemon.log"
  exit 1
}

echo "== build"
go build -o scarecrowd ./cmd/scarecrowd
go build -o scarebench ./cmd/scarebench

echo "== boot (store $DATA/store)"
start_daemon

echo "== classic bench: cache + coalescing under load"
./scarebench -addr "$BASE" -n 200 -c 8 -require-hits -out BENCH_service.json

echo "== campaign bench: cold/warm catalog sweep (warm must be >=1.5x faster)"
./scarebench -addr "$BASE" -campaign -quota 8 -min-warm-speedup 1.5 -campaign-out BENCH_campaign.json

echo "== durability: commit a verdict, SIGKILL mid-campaign"
curl -fsS "$BASE/v1/verdict" -d '{"specimen":"kasidet","seed":77}' >"$DATA/v1.json"

# Fresh seeds so the campaign does real lab work when the kill lands.
CID=$(curl -fsS "$BASE/v1/campaign" \
  -d '{"specimens":["kasidet","locky","wannacry","scaware","spawner","toolkiller"],"seeds":[11,12,13,14]}' \
  | sed -n 's/.*"id":"\([^"]*\)".*/\1/p')
if [ -z "$CID" ]; then
  echo "FAIL: campaign launch returned no id"
  exit 1
fi
DONE=0
for _ in $(seq 1 200); do
  DONE=$(curl -fsS "$BASE/v1/campaign/$CID" | sed -n 's/.*"completed":\([0-9]*\).*/\1/p')
  if [ "${DONE:-0}" -ge 1 ]; then
    break
  fi
  sleep 0.05
done
echo "   campaign $CID at ${DONE:-0} verdicts; kill -9 $DAEMON_PID"
kill -9 "$DAEMON_PID"
wait "$DAEMON_PID" 2>/dev/null || true
DAEMON_PID=""

echo "== restart on the same data dir: the WAL must serve the verdict"
start_daemon
curl -fsS -D "$DATA/headers" "$BASE/v1/verdict" -d '{"specimen":"kasidet","seed":77}' >"$DATA/v2.json"
if ! grep -qi 'X-Scarecrow-Cache: hit' "$DATA/headers"; then
  echo "FAIL: restarted daemon did not serve the committed verdict as a cache hit"
  cat "$DATA/headers"
  exit 1
fi
if ! cmp -s "$DATA/v1.json" "$DATA/v2.json"; then
  echo "FAIL: verdict bytes differ across SIGKILL + restart"
  diff "$DATA/v1.json" "$DATA/v2.json" || true
  exit 1
fi
echo "   verdict replayed byte-identical from the WAL after SIGKILL"

echo "service-smoke: OK"

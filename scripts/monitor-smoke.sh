#!/usr/bin/env bash
# monitor-smoke: end-to-end drive of the real-time deterrence tier over
# localhost.
#
#   1. stream a stock ransomware run through POST /v1/monitor and require
#      at least one `event: detection` frame BEFORE the final
#      `event: verdict` frame, a "deterred" category in the verdict, and
#      the X-Scarecrow-Cache: bypass header.
#   2. replay the identical request and require byte-identical frames —
#      proof the stream is a deterministic re-run, not a cached replay
#      (the daemon's monitor_runs counter must advance to 2).
#   3. observe mode: the same specimen with {"action":"observe"} must
#      report survived with a nonzero files_lost_before_kill — the loss
#      the kill path prevented.
set -euo pipefail

cd "$(dirname "$0")/.."

ADDR=127.0.0.1:18082
BASE=http://$ADDR
DATA=$(mktemp -d)
DAEMON_PID=""

cleanup() {
  if [ -n "$DAEMON_PID" ]; then
    kill "$DAEMON_PID" 2>/dev/null || true
    wait "$DAEMON_PID" 2>/dev/null || true
  fi
  rm -rf "$DATA"
}
trap cleanup EXIT

echo "== build"
go build -o scarecrowd ./cmd/scarecrowd

echo "== boot (store $DATA/store)"
./scarecrowd -addr "$ADDR" -data-dir "$DATA/store" >>"$DATA/daemon.log" 2>&1 &
DAEMON_PID=$!
for _ in $(seq 1 100); do
  if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then
    break
  fi
  sleep 0.1
done

echo "== stream a monitored wannacry run"
curl -fsS -N -D "$DATA/headers" "$BASE/v1/monitor" \
  -d '{"specimen":"wannacry","seed":42}' >"$DATA/stream1"

if ! grep -qi 'Content-Type: text/event-stream' "$DATA/headers"; then
  echo "FAIL: /v1/monitor did not answer as an SSE stream"
  cat "$DATA/headers"
  exit 1
fi
if ! grep -qi 'X-Scarecrow-Cache: bypass' "$DATA/headers"; then
  echo "FAIL: monitored run not marked cache-bypassed"
  cat "$DATA/headers"
  exit 1
fi

DET_LINE=$(grep -n '^event: detection' "$DATA/stream1" | head -1 | cut -d: -f1)
VER_LINE=$(grep -n '^event: verdict' "$DATA/stream1" | head -1 | cut -d: -f1)
if [ -z "$DET_LINE" ] || [ -z "$VER_LINE" ] || [ "$DET_LINE" -ge "$VER_LINE" ]; then
  echo "FAIL: stream must carry a detection frame before the verdict (detection@${DET_LINE:-none}, verdict@${VER_LINE:-none})"
  cat "$DATA/stream1"
  exit 1
fi
if ! grep -q '"category":"deterred"' "$DATA/stream1"; then
  echo "FAIL: verdict frame is not deterred"
  cat "$DATA/stream1"
  exit 1
fi
echo "   detection at line $DET_LINE, verdict at line $VER_LINE, category deterred"

echo "== replay: cache bypassed, stream byte-identical"
curl -fsS -N "$BASE/v1/monitor" -d '{"specimen":"wannacry","seed":42}' >"$DATA/stream2"
if ! cmp -s "$DATA/stream1" "$DATA/stream2"; then
  echo "FAIL: identical monitor requests streamed different bytes"
  diff "$DATA/stream1" "$DATA/stream2" || true
  exit 1
fi
RUNS=$(curl -fsS "$BASE/statusz" | sed -n 's/.*"monitor_runs":\([0-9]*\).*/\1/p')
if [ "${RUNS:-0}" -ne 2 ]; then
  echo "FAIL: monitor_runs = ${RUNS:-0}, want 2 (a cache must not absorb monitored runs)"
  exit 1
fi

echo "== observe mode: report-only run shows the prevented loss"
curl -fsS -N "$BASE/v1/monitor" -d '{"specimen":"wannacry","seed":42,"action":"observe"}' >"$DATA/observe"
if ! grep -q '"category":"survived"' "$DATA/observe"; then
  echo "FAIL: observe mode must not deter"
  tail -1 "$DATA/observe"
  exit 1
fi
if grep -q '"files_lost_before_kill":0,' "$DATA/observe"; then
  echo "FAIL: unenforced ransomware lost no files; the kill-mode comparison is meaningless"
  tail -1 "$DATA/observe"
  exit 1
fi

echo "monitor-smoke: OK"

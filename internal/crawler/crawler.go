// Package crawler reimplements the deceptive-resource collection of §II-C:
// a crawler binary is "submitted" to public online sandboxes (VirusTotal
// and Malwr profiles), inventories the system resources it can see — files,
// processes, registry keys, and system configuration — and ships the
// inventory home. Diffing each sandbox inventory against a clean bare-metal
// reference yields the resources unique to analysis environments, which
// extend Scarecrow's deception database: the paper's run added 17,540
// files, 24 processes, and 1,457 registry entries.
package crawler

import (
	"sort"
	"strings"

	"scarecrow/internal/core"
	"scarecrow/internal/winapi"
	"scarecrow/internal/winsim"
)

// Inventory is everything one crawl observed.
type Inventory struct {
	// Files holds normalized paths of regular files.
	Files map[string]struct{}
	// Processes holds lowercased image base names of running processes.
	Processes map[string]struct{}
	// RegistryKeys holds normalized full registry key paths.
	RegistryKeys map[string]struct{}
	// Config captures system configuration observables.
	Config SystemConfig
}

// SystemConfig is the hardware/identity snapshot a crawl records.
type SystemConfig struct {
	DiskTotalBytes uint64
	RAMBytes       uint64
	NumCores       int
	ComputerName   string
	UserName       string
}

// Collect inventories a machine through a process context, exactly as the
// crawler binary would: breadth-first file walks via FindFirstFile,
// a Toolhelp process snapshot, and a full registry enumeration.
func Collect(ctx *winapi.Context) Inventory {
	inv := Inventory{
		Files:        make(map[string]struct{}),
		Processes:    make(map[string]struct{}),
		RegistryKeys: make(map[string]struct{}),
	}

	// Files: BFS from every volume root.
	queue := []string{`C:\`}
	for len(queue) > 0 {
		dir := queue[0]
		queue = queue[1:]
		names, st := ctx.FindFirstFile(strings.TrimRight(dir, `\`) + `\*`)
		if !st.OK() {
			continue
		}
		for _, name := range names {
			info, st := ctx.GetFileAttributes(name)
			if !st.OK() {
				continue
			}
			if info.Kind == winsim.FileDirectory {
				queue = append(queue, name)
				continue
			}
			inv.Files[winsim.NormalizePath(name)] = struct{}{}
		}
	}

	for _, e := range ctx.CreateToolhelp32Snapshot() {
		inv.Processes[e.Image] = struct{}{}
	}

	for _, hive := range []string{"HKLM", "HKCU", "HKCR", "HKU"} {
		collectKeys(ctx, hive, &inv)
	}

	if disk, st := ctx.GetDiskFreeSpaceEx(`C:\`); st.OK() {
		inv.Config.DiskTotalBytes = disk.TotalBytes
	}
	inv.Config.RAMBytes = ctx.GlobalMemoryStatusEx().TotalPhysBytes
	inv.Config.NumCores = ctx.GetSystemInfo().NumberOfProcessors
	inv.Config.ComputerName = ctx.GetComputerName()
	inv.Config.UserName = ctx.GetUserName()
	return inv
}

func collectKeys(ctx *winapi.Context, path string, inv *Inventory) {
	for i := 0; ; i++ {
		name, st := ctx.RegEnumKeyEx(path, i)
		if !st.OK() {
			return
		}
		full := path + `\` + name
		inv.RegistryKeys[strings.ToLower(full)] = struct{}{}
		collectKeys(ctx, full, inv)
	}
}

// CollectFrom runs the crawler binary on a machine and returns its
// inventory.
func CollectFrom(m *winsim.Machine) Inventory {
	sys := winapi.NewSystem(m)
	p := sys.Launch(`C:\crawler.exe`, "crawler.exe", nil)
	return Collect(sys.Context(p))
}

// Resources is a crawl-and-diff result: what the sandboxes expose that the
// clean reference does not.
type Resources struct {
	Files        []string
	Processes    []string
	RegistryKeys []string
	// SandboxConfigs keeps each sandbox's configuration snapshot (the
	// source of the deceptive disk/RAM/core values).
	SandboxConfigs []SystemConfig
}

// Diff returns the resources present in any sandbox inventory but absent
// from the clean one.
func Diff(clean Inventory, sandboxes ...Inventory) Resources {
	files := make(map[string]struct{})
	procs := make(map[string]struct{})
	keys := make(map[string]struct{})
	var res Resources
	for _, sb := range sandboxes {
		for f := range sb.Files {
			if _, ok := clean.Files[f]; !ok {
				files[f] = struct{}{}
			}
		}
		for p := range sb.Processes {
			if _, ok := clean.Processes[p]; !ok {
				procs[p] = struct{}{}
			}
		}
		for k := range sb.RegistryKeys {
			if _, ok := clean.RegistryKeys[k]; !ok {
				keys[k] = struct{}{}
			}
		}
		res.SandboxConfigs = append(res.SandboxConfigs, sb.Config)
	}
	res.Files = sortedKeys(files)
	res.Processes = sortedKeys(procs)
	res.RegistryKeys = sortedKeys(keys)
	return res
}

func sortedKeys(set map[string]struct{}) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// ExtendDB merges the crawled resources into a Scarecrow deception
// database, tagging them as Cuckoo-sandbox artifacts.
func (r Resources) ExtendDB(db *core.DB) {
	for _, f := range r.Files {
		db.AddFile(f, core.VendorCuckoo)
	}
	for _, p := range r.Processes {
		db.AddProcess(p, core.VendorCuckoo)
	}
	for _, k := range r.RegistryKeys {
		db.AddRegKey(k, core.VendorCuckoo)
	}
}

// CrawlPublicSandboxes reproduces the §II-C pipeline end to end: crawl the
// VirusTotal and Malwr profiles, diff against the clean bare-metal
// reference, and return the unique resources.
func CrawlPublicSandboxes(seed int64) Resources {
	clean := CollectFrom(winsim.NewCleanBareMetal(seed))
	vt := CollectFrom(winsim.NewVirusTotalSandbox(seed))
	malwr := CollectFrom(winsim.NewMalwrSandbox(seed))
	return Diff(clean, vt, malwr)
}

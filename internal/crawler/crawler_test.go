package crawler

import (
	"strings"
	"testing"

	"scarecrow/internal/core"
	"scarecrow/internal/winsim"
)

// TestSectionIICResourceCounts reproduces the §II-C crawl: the resources
// unique to the two public sandboxes number exactly 17,540 files, 24
// processes, and 1,457 registry entries.
func TestSectionIICResourceCounts(t *testing.T) {
	r := CrawlPublicSandboxes(1)
	if got := len(r.Files); got != 17540 {
		t.Errorf("unique files = %d, want 17540", got)
	}
	if got := len(r.Processes); got != 24 {
		t.Errorf("unique processes = %d, want 24", got)
	}
	if got := len(r.RegistryKeys); got != 1457 {
		t.Errorf("unique registry entries = %d, want 1457", got)
	}
}

func TestCrawlObservesSandboxConfig(t *testing.T) {
	r := CrawlPublicSandboxes(1)
	if len(r.SandboxConfigs) != 2 {
		t.Fatalf("configs = %d", len(r.SandboxConfigs))
	}
	// The Malwr profile carries the paper's distinctive 5 GB C: drive.
	found5GB := false
	for _, cfg := range r.SandboxConfigs {
		if cfg.DiskTotalBytes == 5<<30 {
			found5GB = true
		}
	}
	if !found5GB {
		t.Error("Malwr's 5 GB disk not observed")
	}
}

func TestDiffExcludesSharedResources(t *testing.T) {
	clean := CollectFrom(winsim.NewCleanBareMetal(1))
	vt := CollectFrom(winsim.NewVirusTotalSandbox(1))
	r := Diff(clean, vt)
	for _, f := range r.Files {
		if strings.Contains(f, `c:\windows\system32\kernel32.dll`) {
			t.Errorf("shared OS file reported unique: %s", f)
		}
	}
	for _, p := range r.Processes {
		if p == "explorer.exe" || p == "svchost.exe" {
			t.Errorf("shared OS process reported unique: %s", p)
		}
	}
	// Deceptive resources actually unique to the sandbox must be present.
	foundVBoxProc := false
	for _, p := range r.Processes {
		if p == "vboxservice.exe" {
			foundVBoxProc = true
		}
	}
	if !foundVBoxProc {
		t.Error("vboxservice.exe missing from diff")
	}
}

func TestExtendDBMakesCrawledResourcesDeceptive(t *testing.T) {
	r := CrawlPublicSandboxes(1)
	db := core.NewDB()
	before := db.Counts()
	r.ExtendDB(db)
	after := db.Counts()
	if after[core.CategoryFile]-before[core.CategoryFile] != len(r.Files) {
		t.Errorf("file extension: %d -> %d", before[core.CategoryFile], after[core.CategoryFile])
	}
	// vboxservice.exe and vboxtray.exe are already stock deceptive
	// processes, so growth is two short of the crawled count.
	if after[core.CategoryProcess]-before[core.CategoryProcess] != len(r.Processes)-2 {
		t.Errorf("process extension: %d -> %d (crawled %d)", before[core.CategoryProcess], after[core.CategoryProcess], len(r.Processes))
	}
	// A crawled file is now matched by the engine's probes.
	if _, ok := db.MatchFile(r.Files[0]); !ok {
		t.Errorf("crawled file %s not deceptive after extension", r.Files[0])
	}
	if _, ok := db.MatchProcess("vt_tool01.exe"); !ok {
		t.Error("crawled process not deceptive after extension")
	}
}

func TestCollectDeterministic(t *testing.T) {
	a := CollectFrom(winsim.NewVirusTotalSandbox(3))
	b := CollectFrom(winsim.NewVirusTotalSandbox(3))
	if len(a.Files) != len(b.Files) || len(a.RegistryKeys) != len(b.RegistryKeys) {
		t.Error("collection not deterministic")
	}
	if a.Config != b.Config {
		t.Errorf("configs differ: %+v vs %+v", a.Config, b.Config)
	}
}

package winapi

import (
	"time"

	"scarecrow/internal/trace"
	"scarecrow/internal/winsim"
)

// ProcessEntry is one row of a Toolhelp process snapshot.
type ProcessEntry struct {
	PID       int
	ParentPID int
	Image     string // base name, lowercased
}

// CreateProcess launches a new process from the given image. The child is
// queued on the scheduler and runs after the current body yields. The
// returned process handle is the child's kernel object.
func (c *Context) CreateProcess(image, cmdline string) (*winsim.Process, Status) {
	res := c.invoke("CreateProcess", []any{image, cmdline}, func() any {
		child := c.sys.Launch(image, cmdline, c.P)
		return Result{Status: StatusSuccess, Proc: child}
	})
	r := res.(Result)
	return r.Proc, r.Status
}

// ShellExecuteExW launches a process through the shell; behaviourally
// identical to CreateProcess here, but a separate hookable entry point
// (stock Cuckoo hooks it — Table II's lone Hook trigger without Scarecrow).
func (c *Context) ShellExecuteExW(image, cmdline string) (*winsim.Process, Status) {
	res := c.invoke("ShellExecuteExW", []any{image, cmdline}, func() any {
		child := c.sys.Launch(image, cmdline, c.P)
		return Result{Status: StatusSuccess, Proc: child}
	})
	r := res.(Result)
	return r.Proc, r.Status
}

// ExitProcess terminates the calling process; it does not return.
func (c *Context) ExitProcess(code int) {
	c.invoke("ExitProcess", []any{code}, func() any {
		panic(exitPanic{code: code})
	})
	panic(exitPanic{code: code}) // a hook swallowed the exit; force it anyway
}

// TerminateProcess kills another process by PID. Protected processes (the
// deceptive analysis-tool processes Scarecrow plants) refuse termination
// with access denied, as §II-B(b) of the paper requires.
func (c *Context) TerminateProcess(pid int) Status {
	res := c.invoke("TerminateProcess", []any{pid}, func() any {
		p, ok := c.M.Procs.Get(pid)
		if !ok || p.State == winsim.ProcessExited {
			return Result{Status: StatusInvalidParam}
		}
		if p.Protected {
			return Result{Status: StatusAccessDenied}
		}
		c.M.ExitProcess(p, 1)
		return Result{Status: StatusSuccess}
	})
	return res.(Result).Status
}

// OpenProcess opens a handle to a process, failing for protected targets.
func (c *Context) OpenProcess(pid int) Status {
	res := c.invoke("OpenProcess", []any{pid}, func() any {
		p, ok := c.M.Procs.Get(pid)
		if !ok {
			return Result{Status: StatusInvalidParam}
		}
		if p.Protected {
			return Result{Status: StatusAccessDenied}
		}
		return Result{Status: StatusSuccess}
	})
	return res.(Result).Status
}

// CreateToolhelp32Snapshot returns the process list (the
// Process32First/Next sweep collapsed into one call).
func (c *Context) CreateToolhelp32Snapshot() []ProcessEntry {
	res := c.invoke("CreateToolhelp32Snapshot", nil, func() any {
		running := c.M.Procs.Running()
		entries := make([]ProcessEntry, 0, len(running))
		for _, p := range running {
			entries = append(entries, ProcessEntry{
				PID: p.PID, ParentPID: p.ParentPID, Image: p.ImageBase(),
			})
		}
		return Result{Status: StatusSuccess, Entries: entries}
	})
	return res.(Result).Entries
}

// GetCurrentProcessId returns the caller's PID.
func (c *Context) GetCurrentProcessId() int {
	c.invoke("GetCurrentProcessId", nil, func() any { return Result{Status: StatusSuccess} })
	return c.P.PID
}

// GetModuleFileName returns the full path of the process image.
func (c *Context) GetModuleFileName() string {
	res := c.invoke("GetModuleFileName", nil, func() any {
		return Result{Status: StatusSuccess, Str: c.P.Image}
	})
	return res.(Result).Str
}

// GetCommandLine returns the command line of the process.
func (c *Context) GetCommandLine() string {
	res := c.invoke("GetCommandLine", nil, func() any {
		return Result{Status: StatusSuccess, Str: c.P.CommandLine}
	})
	return res.(Result).Str
}

// ParentProcessImage resolves the parent process's image base name via
// NtQueryInformationProcess, the check malware uses to spot analysis
// daemons as parents (the Scarecrow controller deliberately mimics this).
func (c *Context) ParentProcessImage() string {
	res := c.invoke("NtQueryInformationProcess", []any{"ParentProcess"}, func() any {
		parent, ok := c.M.Procs.Get(c.P.ParentPID)
		if !ok {
			return Result{Status: StatusNotFound}
		}
		return Result{Status: StatusSuccess, Str: parent.ImageBase()}
	})
	return res.(Result).Str
}

// Sleep suspends the caller for the given duration of virtual time (scaled
// by the machine's sleep factor).
func (c *Context) Sleep(d time.Duration) {
	c.invoke("Sleep", []any{d}, func() any {
		c.M.Sleep(d)
		return Result{Status: StatusSuccess}
	})
}

// WaitForSingleObject waits on a process handle. Because the scheduler is
// cooperative FIFO, a child cannot complete while its parent blocks; the
// call models the polling wait malware droppers use, advancing time and
// reporting whether the target has already exited.
func (c *Context) WaitForSingleObject(p *winsim.Process, timeout time.Duration) Status {
	res := c.invoke("WaitForSingleObject", []any{p, timeout}, func() any {
		if p != nil && p.State == winsim.ProcessExited {
			return Result{Status: StatusSuccess}
		}
		c.M.Sleep(timeout)
		return Result{Status: StatusTimeout}
	})
	return res.(Result).Status
}

// InjectIntoProcess models cross-process code injection (WriteProcessMemory
// + CreateRemoteThread collapsed into one observable operation). Injection
// into protected processes fails.
func (c *Context) InjectIntoProcess(pid int) Status {
	p, ok := c.M.Procs.Get(pid)
	success := ok && p.State != winsim.ProcessExited && !p.Protected
	target := ""
	if ok {
		target = p.Image
	}
	c.M.Record(trace.Event{
		Kind: trace.KindProcessInject, PID: c.P.PID, Image: c.P.Image,
		Target: target, Success: success,
	})
	c.M.Clock.Advance(2 * time.Millisecond)
	if !success {
		return StatusAccessDenied
	}
	return StatusSuccess
}

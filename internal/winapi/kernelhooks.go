package winapi

import (
	"fmt"
	"sort"
	"strings"
)

// Kernel-level hooking (§VI-A of the paper: "we plan to extend SCARECROW
// with kernel/hypervisor-based hooking"). Kernel hooks interpose on the
// system-call dispatch layer (the SSDT analogue), machine-wide:
//
//   - they catch raw-syscall stubs that bypass every user-mode hook
//     (Context.DirectSyscall), and
//   - they also sit underneath the user-mode chain for the same Nt* entry
//     points, so a call that passes through user hooks untouched can still
//     be deceived at the kernel boundary;
//   - unlike inline hooks they rewrite no prologues: anti-hooking byte
//     checks cannot see them.
//
// Only native (Nt*) entry points dispatch through the kernel gate; Win32
// wrappers reach it via their underlying Nt call in reality, which the
// model approximates by keeping Win32-level results at the user layer.

// kernelHookable reports whether an API name is a native system call.
func kernelHookable(api string) bool { return strings.HasPrefix(api, "Nt") }

// InstallKernelHook interposes handler on the named system call for every
// process on the machine. Later installs wrap earlier ones, as with
// user-mode hooks.
func (s *System) InstallKernelHook(api string, handler HookHandler) error {
	if s.M.Faults.InjectionFault() {
		return fmt.Errorf("winapi: injected fault: kernel hook installation for %q failed", api)
	}
	meta, ok := apiCatalog[api]
	if !ok {
		return fmt.Errorf("winapi: unknown API %q", api)
	}
	_ = meta
	if !kernelHookable(api) {
		return fmt.Errorf("winapi: %q is not a system call; kernel hooks cover Nt* entry points only", api)
	}
	if s.kernelHooks == nil {
		s.kernelHooks = make(map[string][]HookHandler)
	}
	s.kernelHooks[api] = append(s.kernelHooks[api], handler)
	return nil
}

// KernelHookedAPIs returns the system calls currently hooked at the
// kernel layer, sorted for deterministic reports.
func (s *System) KernelHookedAPIs() []string {
	out := make([]string, 0, len(s.kernelHooks))
	for name := range s.kernelHooks {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// dispatchSyscall runs the kernel hook chain for a system call, bottoming
// out at the genuine kernel implementation. It is the single gate both
// ntdll-routed calls and raw syscall stubs pass through.
func (c *Context) dispatchSyscall(name string, args []any, genuine func() any) any {
	chain := c.sys.kernelHooks[name]
	if len(chain) == 0 {
		return genuine()
	}
	call := &Call{Name: name, Args: args, c: c, kchain: chain, genuine: genuine, idx: len(chain)}
	return call.run(len(chain) - 1)
}

package winapi

import (
	"testing"
	"time"

	"scarecrow/internal/winsim"
)

func TestTimingAndDebugAuxiliaryAPIs(t *testing.T) {
	m := winsim.NewCuckooSandbox(1, false)
	sys := NewSystem(m)
	ctx := sys.Context(sys.Launch(`C:\a.exe`, "", nil))

	ctx.OutputDebugString("probe")
	ctx.SetUnhandledExceptionFilter()
	if d := ctx.RaiseException(); d <= 0 {
		t.Errorf("exception dispatch cost = %v", d)
	}
	q1 := ctx.QueryPerformanceCounter()
	ctx.Sleep(10 * time.Millisecond)
	q2 := ctx.QueryPerformanceCounter()
	if q2 <= q1 {
		t.Error("QPC not monotonic across sleep")
	}
	c1 := ctx.RDTSC()
	res := ctx.CPUID()
	c2 := ctx.RDTSC()
	if c2 <= c1 {
		t.Error("TSC not monotonic across CPUID")
	}
	if !res.HypervisorBit {
		t.Error("stock VM must expose the hypervisor bit")
	}
}

func TestProcessAuxiliaryAPIs(t *testing.T) {
	m := winsim.NewBareMetalSandbox(1)
	sys := NewSystem(m)
	p := sys.Launch(`C:\a.exe`, "a.exe --flag", nil)
	ctx := sys.Context(p)

	if got := ctx.GetCurrentProcessId(); got != p.PID {
		t.Errorf("PID = %d, want %d", got, p.PID)
	}
	if got := ctx.GetCommandLine(); got != "a.exe --flag" {
		t.Errorf("command line = %q", got)
	}
	entries := ctx.CreateToolhelp32Snapshot()
	if len(entries) < 8 {
		t.Errorf("snapshot = %d entries", len(entries))
	}
	seenSelf := false
	for _, e := range entries {
		if e.PID == p.PID && e.Image == "a.exe" {
			seenSelf = true
		}
	}
	if !seenSelf {
		t.Error("snapshot missing the calling process")
	}

	explorer := m.Procs.FindByImage("explorer.exe")[0]
	if st := ctx.OpenProcess(explorer.PID); !st.OK() {
		t.Errorf("OpenProcess(explorer) = %v", st)
	}
	if st := ctx.OpenProcess(999999); st.OK() {
		t.Error("OpenProcess on bogus PID succeeded")
	}
	if st := ctx.TerminateProcess(999999); st.OK() {
		t.Error("TerminateProcess on bogus PID succeeded")
	}

	// WaitForSingleObject: queued (not yet run) children time out; exited
	// children signal immediately.
	child, st := ctx.CreateProcess(`C:\child.exe`, "")
	if !st.OK() {
		t.Fatal(st)
	}
	if st := ctx.WaitForSingleObject(child, 100*time.Millisecond); st != StatusTimeout {
		t.Errorf("wait on pending child = %v, want TIMEOUT", st)
	}
	m.ExitProcess(child, 0)
	if st := ctx.WaitForSingleObject(child, time.Millisecond); !st.OK() {
		t.Errorf("wait on exited child = %v", st)
	}

	// ShellExecuteExW launches like CreateProcess.
	sh, st := ctx.ShellExecuteExW(`C:\shelled.exe`, "shelled")
	if !st.OK() || sh == nil {
		t.Errorf("ShellExecuteExW = %v", st)
	}
}

func TestNetworkAuxiliaryAPIs(t *testing.T) {
	m := winsim.NewEndUserMachine(1)
	sys := NewSystem(m)
	ctx := sys.Context(sys.Launch(`C:\a.exe`, "", nil))

	addr, st := ctx.Getaddrinfo("site001.example.com")
	if !st.OK() || addr == "" {
		t.Errorf("getaddrinfo = %q, %v", addr, st)
	}
	if st := ctx.Connect(addr); !st.OK() {
		t.Errorf("connect = %v", st)
	}
	if st := ctx.Connect("203.0.113.200"); st.OK() {
		t.Error("connect to dead address succeeded")
	}
	cache := ctx.DnsGetCacheDataTable()
	if len(cache) == 0 {
		t.Error("DNS cache empty on end-user machine")
	}
}

func TestRegistryAuxiliaryAPIs(t *testing.T) {
	_, ctx := newTestSystem(t)
	if st := ctx.RegCreateKeyEx(`HKLM\SOFTWARE\Aux\One`); !st.OK() {
		t.Fatal(st)
	}
	name, st := ctx.NtEnumerateKey(`HKLM\SOFTWARE\Aux`, 0)
	if !st.OK() || name != "One" {
		t.Errorf("NtEnumerateKey = %q, %v", name, st)
	}
	if _, st := ctx.NtEnumerateKey(`HKLM\SOFTWARE\Aux`, 5); st != StatusNoMoreItems {
		t.Errorf("past-end enum = %v", st)
	}
	if _, st := ctx.NtEnumerateKey(`HKLM\Missing`, 0); st.OK() {
		t.Error("enum on missing key succeeded")
	}
	if st := ctx.NtCreateFile(`C:\Windows\System32\kernel32.dll`); !st.OK() {
		t.Errorf("NtCreateFile = %v", st)
	}
	info, st := ctx.GetFileAttributes(`C:\Windows\explorer.exe`)
	if !st.OK() || info.Kind != winsim.FileRegular {
		t.Errorf("GetFileAttributes = %+v, %v", info, st)
	}
}

func TestSystemIntrospection(t *testing.T) {
	m := winsim.NewBareMetalSandbox(1)
	sys := NewSystem(m)
	p := sys.Launch(`C:\a.exe`, "", nil)
	ctx := sys.Context(p)

	if ctx.System() != sys {
		t.Error("Context.System mismatch")
	}
	if err := sys.InstallHook(p.PID, "GetTickCount", func(c *Context, call *Call) any {
		return call.Original()
	}); err != nil {
		t.Fatal(err)
	}
	if got := sys.HookedAPIs(p.PID); len(got) != 1 || got[0] != "GetTickCount" {
		t.Errorf("HookedAPIs = %v", got)
	}
	data := sys.ProcData(p.PID)
	data["key"] = 7
	if sys.ProcData(p.PID)["key"] != 7 {
		t.Error("ProcData not persistent")
	}
	if s := sys.String(); s == "" {
		t.Error("System.String empty")
	}
	if names := APINames(); len(names) < 40 {
		t.Errorf("APINames = %d entries", len(names))
	}
	if sys.QueueLen() != 1 || sys.ExecutedCount() != 0 {
		t.Errorf("queue=%d executed=%d", sys.QueueLen(), sys.ExecutedCount())
	}
}

func TestKernelHookDispatchPaths(t *testing.T) {
	m := winsim.NewEndUserMachine(1)
	sys := NewSystem(m)
	p := sys.Launch(`C:\a.exe`, "", nil)
	ctx := sys.Context(p)

	calls := 0
	err := sys.InstallKernelHook("NtQueryAttributesFile", func(c *Context, call *Call) any {
		calls++
		if call.StrArg(0) == `C:\fake.sys` {
			return Result{Status: StatusSuccess}
		}
		return call.Original()
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := sys.KernelHookedAPIs(); len(got) != 1 {
		t.Errorf("KernelHookedAPIs = %v", got)
	}
	// Route 1: the ntdll-routed API crosses the gate.
	if _, st := ctx.NtQueryAttributesFile(`C:\fake.sys`); !st.OK() {
		t.Error("API route not intercepted at the kernel gate")
	}
	// Route 2: the raw syscall stub crosses the gate too.
	if got := ctx.DirectSyscall("NtQueryAttributesFile", `C:\fake.sys`); got != StatusSuccess {
		t.Errorf("raw syscall route = %v", got)
	}
	// Pass-through stays genuine on both routes.
	if _, st := ctx.NtQueryAttributesFile(`C:\Windows\explorer.exe`); !st.OK() {
		t.Error("genuine pass-through broken")
	}
	if calls < 3 {
		t.Errorf("kernel handler saw %d calls", calls)
	}
	// Unknown raw syscalls report NOT_SUPPORTED.
	if got := ctx.DirectSyscall("NtBogus"); got != StatusNotSupported {
		t.Errorf("unknown syscall = %v", got)
	}
}

func TestCallArgAccessors(t *testing.T) {
	call := &Call{Name: "X", Args: []any{"s", 7}}
	if call.Arg(0) != "s" || call.Arg(1) != 7 {
		t.Error("Arg")
	}
	if call.Arg(-1) != nil || call.Arg(5) != nil {
		t.Error("out-of-range Arg should be nil")
	}
	if call.StrArg(0) != "s" || call.StrArg(1) != "" {
		t.Error("StrArg")
	}
}

func TestStatusStringAllCodes(t *testing.T) {
	codes := []Status{
		StatusSuccess, StatusFileNotFound, StatusAccessDenied,
		StatusInvalidParam, StatusNotSupported, StatusNoMoreItems,
		StatusNotFound, StatusHostNotFound, StatusTimeout,
		StatusInvalidHandle, StatusAlreadyExists, StatusWriteProtected,
	}
	seen := map[string]bool{}
	for _, c := range codes {
		s := c.String()
		if s == "" || seen[s] {
			t.Errorf("status %d renders %q", int(c), s)
		}
		seen[s] = true
	}
}

package winapi

import (
	"fmt"
	"sort"
)

// HookHandler is customized code interposed on an API function. It receives
// the call description and must return the API's result bundle. Handlers
// may inspect and rewrite arguments, fabricate results, or call
// call.Original() to invoke the next handler in the chain (ultimately the
// real function) — the trampoline of classic inline hooking.
type HookHandler func(c *Context, call *Call) any

// HookTable is a prebuilt, shareable set of hook chains: the in-memory
// image of an injected DLL's patch set. A deployment builds its table once
// and attaches it to every target process with InstallHookTable — O(1) per
// process instead of re-installing every hook chain per injection, which
// is exactly how a real DLL's hook body is mapped once and patched into
// each process. A table must not be mutated after its first install; the
// processes sharing it would observe the change retroactively.
type HookTable struct {
	handlers map[string][]HookHandler
}

// NewHookTable returns an empty hook table.
func NewHookTable() *HookTable {
	return &HookTable{handlers: make(map[string][]HookHandler)}
}

// Hook appends handler to the table's chain for the named API, validating
// the name against the catalog exactly like InstallHook. Later hooks wrap
// earlier ones once the table is installed.
func (t *HookTable) Hook(api string, handler HookHandler) error {
	meta, ok := apiCatalog[api]
	if !ok {
		return fmt.Errorf("winapi: unknown API %q", api)
	}
	if !meta.hookable {
		return fmt.Errorf("winapi: API %q is not hookable from user mode", api)
	}
	t.handlers[api] = append(t.handlers[api], handler)
	return nil
}

// hook appends without catalog validation — for the sandbox monitor table
// built from profile data in NewSystem, which must not fail construction.
func (t *HookTable) hook(api string, handler HookHandler) {
	t.handlers[api] = append(t.handlers[api], handler)
}

// Call describes one in-flight API invocation as seen by a hook handler.
// Dispatch is by index into the process's combined hook chain (kernel
// chain below, user chain above), so one Call value serves the whole
// chain with no per-handler trampoline closures.
type Call struct {
	// Name is the API name from the catalog.
	Name string
	// Args are the call arguments in declaration order.
	Args []any

	c       *Context
	st      *procState // user-mode chain source; nil for pure kernel dispatch
	kchain  []HookHandler
	genuine func() any
	idx     int // combined-chain index of the running handler
}

// Original invokes the rest of the hook chain and finally the genuine API,
// returning its result bundle. Calling it more than once re-executes the
// remainder of the chain.
func (call *Call) Original() any { return call.run(call.idx - 1) }

// run executes combined-chain position i: a handler for i >= 0, the
// genuine implementation below the chain for i < 0.
func (call *Call) run(i int) any {
	if i < 0 {
		if call.genuine == nil {
			return nil
		}
		return call.genuine()
	}
	h := call.handler(i)
	saved := call.idx
	call.idx = i
	out := h(call.c, call)
	call.idx = saved
	return out
}

// handler resolves combined-chain position i: kernel hooks occupy the low
// indices (they sit at the syscall gate, beneath every user-mode hook),
// user-mode hooks the high ones. Higher index = installed later = runs
// earlier.
func (call *Call) handler(i int) HookHandler {
	if i < len(call.kchain) {
		return call.kchain[i]
	}
	return call.st.handlerAt(call.Name, i-len(call.kchain))
}

// Arg returns argument i, or nil when absent.
func (call *Call) Arg(i int) any {
	if i < 0 || i >= len(call.Args) {
		return nil
	}
	return call.Args[i]
}

// StrArg returns argument i as a string ("" when absent or not a string).
func (call *Call) StrArg(i int) string {
	s, _ := call.Arg(i).(string)
	return s
}

// Classic hot-patch prologue of Win32 API functions: mov edi,edi; push
// ebp; mov ebp,esp. Anti-hooking code checks the first two bytes (Figure 1
// of the paper).
var cleanPrologue = []byte{0x8B, 0xFF, 0x55, 0x8B, 0xEC}

// hookedPrologue returns the prologue after an inline hook is written: a
// JMP rel32 to the hook body. The displacement bytes are synthesized from
// the API name so different hooks look different, as in reality.
func hookedPrologue(api string) []byte {
	var h uint32 = 2166136261
	for i := 0; i < len(api); i++ {
		h = (h ^ uint32(api[i])) * 16777619
	}
	return []byte{0xE9, byte(h), byte(h >> 8), byte(h >> 16), byte(h >> 24)}
}

// prologueCache precomputes the hooked prologue for every catalog entry:
// the bytes are a pure function of the API name, so every process hooking
// an API shows the same patch, and reads need no per-call synthesis.
// Read-only after init.
var prologueCache = func() map[string][]byte {
	m := make(map[string][]byte, len(apiCatalog))
	for name := range apiCatalog {
		m[name] = hookedPrologue(name)
	}
	return m
}()

// procState is the per-process user-mode state the System tracks: attached
// hook tables, per-process hook chains, and arbitrary per-process data
// hook packages stash (e.g. a deception session). Maps are allocated
// lazily; a process that is never hooked costs one small struct.
type procState struct {
	// tables are shared hook tables in attach order; their chains sit
	// below (run after) any per-process installs.
	tables []*HookTable
	// local holds per-process InstallHook chains.
	local map[string][]HookHandler
	// Data lets hook packages (Scarecrow) keep per-process state.
	Data map[string]any
}

func newProcState() *procState { return &procState{} }

// chainLen returns the combined user-mode chain length for the API.
func (st *procState) chainLen(api string) int {
	n := len(st.local[api])
	for _, t := range st.tables {
		n += len(t.handlers[api])
	}
	return n
}

// handlerAt resolves user-chain position i in install order: attached
// tables first (attach order, each in table order), then local installs.
func (st *procState) handlerAt(api string, i int) HookHandler {
	for _, t := range st.tables {
		chain := t.handlers[api]
		if i < len(chain) {
			return chain[i]
		}
		i -= len(chain)
	}
	return st.local[api][i]
}

// hooked reports whether any user-mode hook covers the API.
func (st *procState) hooked(api string) bool {
	if len(st.local[api]) > 0 {
		return true
	}
	for _, t := range st.tables {
		if len(t.handlers[api]) > 0 {
			return true
		}
	}
	return false
}

// InstallHook interposes handler on the named API for the given process.
// The target function's prologue is rewritten to a JMP, making the hook
// itself observable to anti-hooking checks — which is a feature, not a bug,
// for Scarecrow. Later installs wrap earlier ones, and per-process installs
// wrap any attached hook table.
func (s *System) InstallHook(pid int, api string, handler HookHandler) error {
	if s.M.Faults.InjectionFault() {
		return fmt.Errorf("winapi: injected fault: hook installation for %q failed in PID %d", api, pid)
	}
	meta, ok := apiCatalog[api]
	if !ok {
		return fmt.Errorf("winapi: unknown API %q", api)
	}
	if !meta.hookable {
		return fmt.Errorf("winapi: API %q is not hookable from user mode", api)
	}
	st := s.stateFor(pid)
	if st.local == nil {
		st.local = make(map[string][]HookHandler)
	}
	st.local[api] = append(st.local[api], handler)
	return nil
}

// InstallHookTable attaches a prebuilt hook table to the process: one
// injection, one fault point, every chain in the table live at once. The
// same table may be attached to any number of processes; it must not be
// mutated afterwards.
func (s *System) InstallHookTable(pid int, t *HookTable) error {
	if s.M.Faults.InjectionFault() {
		return fmt.Errorf("winapi: injected fault: hook table installation failed in PID %d", pid)
	}
	st := s.stateFor(pid)
	st.tables = append(st.tables, t)
	return nil
}

// HookedAPIs returns the names of APIs currently hooked in the process,
// sorted so reports built from it replay deterministically.
func (s *System) HookedAPIs(pid int) []string {
	st := s.stateFor(pid)
	seen := make(map[string]bool)
	for name, chain := range st.local {
		if len(chain) > 0 {
			seen[name] = true
		}
	}
	for _, t := range st.tables {
		for name, chain := range t.handlers {
			if len(chain) > 0 {
				seen[name] = true
			}
		}
	}
	out := make([]string, 0, len(seen))
	for name := range seen {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// ReadFunctionPrologue models reading the first bytes of an API function's
// code directly from memory. It is not an API call: it cannot be hooked,
// consumes only a memory-read cost, and is exactly how anti-hooking malware
// detects inline hooks.
func (c *Context) ReadFunctionPrologue(api string) []byte {
	c.M.Clock.Advance(memoryReadCost)
	st := c.sys.stateFor(c.P.PID)
	src := cleanPrologue
	if st.hooked(api) {
		if b, ok := prologueCache[api]; ok {
			src = b
		} else {
			src = hookedPrologue(api)
		}
	}
	out := make([]byte, len(src))
	copy(out, src)
	return out
}

// PrologueIntact reports whether the named API still begins with the
// hot-patch prologue (mov edi,edi) in this process — the check_hook test
// from Figure 1 of the paper.
func (c *Context) PrologueIntact(api string) bool {
	c.M.Clock.Advance(memoryReadCost)
	return !c.sys.stateFor(c.P.PID).hooked(api)
}

// invoke runs one API call: it charges the call cost, records the APICall
// trace event, then dispatches through the process's hook chain (outermost
// handler first) down to the genuine implementation. Native entry points
// bottom out at the kernel syscall gate, where machine-wide kernel hooks
// (if any) interpose beneath the user-mode chain.
func (c *Context) invoke(name string, args []any, genuine func() any) any {
	meta, ok := apiCatalog[name]
	if !ok {
		panic(fmt.Sprintf("winapi: API %q missing from catalog", name))
	}
	// Real-time enforcement happens before the call executes: a killed
	// process never reaches its next API, an isolated one has network
	// calls denied here, a throttled one pays injected delay first.
	if out, blocked := c.applyEnforcement(name); blocked {
		c.M.Clock.Advance(meta.cost)
		c.recordAPICall(name)
		return out
	}
	c.M.Clock.Advance(meta.cost)
	c.recordAPICall(name)

	st := c.sys.stateFor(c.P.PID)
	userLen := st.chainLen(name)
	var kchain []HookHandler
	if kernelHookable(name) {
		kchain = c.sys.kernelHooks[name]
	}
	total := len(kchain) + userLen
	if total == 0 {
		return genuine()
	}
	call := &Call{Name: name, Args: args, c: c, st: st, kchain: kchain, genuine: genuine, idx: total}
	return call.run(total - 1)
}

package winapi

import (
	"fmt"
	"sort"
)

// HookHandler is customized code interposed on an API function. It receives
// the call description and must return the API's result bundle. Handlers
// may inspect and rewrite arguments, fabricate results, or call
// call.Original() to invoke the next handler in the chain (ultimately the
// real function) — the trampoline of classic inline hooking.
type HookHandler func(c *Context, call *Call) any

// Call describes one in-flight API invocation as seen by a hook handler.
type Call struct {
	// Name is the API name from the catalog.
	Name string
	// Args are the call arguments in declaration order.
	Args []any
	next func() any
}

// Original invokes the rest of the hook chain and finally the genuine API,
// returning its result bundle. Calling it more than once re-executes the
// remainder of the chain.
func (call *Call) Original() any { return call.next() }

// Arg returns argument i, or nil when absent.
func (call *Call) Arg(i int) any {
	if i < 0 || i >= len(call.Args) {
		return nil
	}
	return call.Args[i]
}

// StrArg returns argument i as a string ("" when absent or not a string).
func (call *Call) StrArg(i int) string {
	s, _ := call.Arg(i).(string)
	return s
}

// Classic hot-patch prologue of Win32 API functions: mov edi,edi; push
// ebp; mov ebp,esp. Anti-hooking code checks the first two bytes (Figure 1
// of the paper).
var cleanPrologue = []byte{0x8B, 0xFF, 0x55, 0x8B, 0xEC}

// hookedPrologue returns the prologue after an inline hook is written: a
// JMP rel32 to the hook body. The displacement bytes are synthesized from
// the API name so different hooks look different, as in reality.
func hookedPrologue(api string) []byte {
	var h uint32 = 2166136261
	for i := 0; i < len(api); i++ {
		h = (h ^ uint32(api[i])) * 16777619
	}
	return []byte{0xE9, byte(h), byte(h >> 8), byte(h >> 16), byte(h >> 24)}
}

// procState is the per-process user-mode state the System tracks: hook
// chains, patched prologues, injected DLLs, and arbitrary per-process data
// hook packages stash (e.g. a deception session).
type procState struct {
	hooks     map[string][]HookHandler
	prologues map[string][]byte
	// Data lets hook packages (Scarecrow) keep per-process state.
	Data map[string]any
}

func newProcState() *procState {
	return &procState{
		hooks:     make(map[string][]HookHandler),
		prologues: make(map[string][]byte),
		Data:      make(map[string]any),
	}
}

// InstallHook interposes handler on the named API for the given process.
// The target function's prologue is rewritten to a JMP, making the hook
// itself observable to anti-hooking checks — which is a feature, not a bug,
// for Scarecrow. Later installs wrap earlier ones.
func (s *System) InstallHook(pid int, api string, handler HookHandler) error {
	if s.M.Faults.InjectionFault() {
		return fmt.Errorf("winapi: injected fault: hook installation for %q failed in PID %d", api, pid)
	}
	meta, ok := apiCatalog[api]
	if !ok {
		return fmt.Errorf("winapi: unknown API %q", api)
	}
	if !meta.hookable {
		return fmt.Errorf("winapi: API %q is not hookable from user mode", api)
	}
	st := s.stateFor(pid)
	st.hooks[api] = append(st.hooks[api], handler)
	st.prologues[api] = hookedPrologue(api)
	return nil
}

// HookedAPIs returns the names of APIs currently hooked in the process,
// sorted so reports built from it replay deterministically.
func (s *System) HookedAPIs(pid int) []string {
	st := s.stateFor(pid)
	out := make([]string, 0, len(st.hooks))
	for name := range st.hooks {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// ReadFunctionPrologue models reading the first bytes of an API function's
// code directly from memory. It is not an API call: it cannot be hooked,
// consumes only a memory-read cost, and is exactly how anti-hooking malware
// detects inline hooks.
func (c *Context) ReadFunctionPrologue(api string) []byte {
	c.M.Clock.Advance(memoryReadCost)
	st := c.sys.stateFor(c.P.PID)
	if b, ok := st.prologues[api]; ok {
		out := make([]byte, len(b))
		copy(out, b)
		return out
	}
	out := make([]byte, len(cleanPrologue))
	copy(out, cleanPrologue)
	return out
}

// PrologueIntact reports whether the named API still begins with the
// hot-patch prologue (mov edi,edi) in this process — the check_hook test
// from Figure 1 of the paper.
func (c *Context) PrologueIntact(api string) bool {
	b := c.ReadFunctionPrologue(api)
	return len(b) >= 2 && b[0] == 0x8B && b[1] == 0xFF
}

// invoke runs one API call: it charges the call cost, records the APICall
// trace event, then dispatches through the process's hook chain (outermost
// handler first) down to the genuine implementation.
func (c *Context) invoke(name string, args []any, genuine func() any) any {
	meta, ok := apiCatalog[name]
	if !ok {
		panic(fmt.Sprintf("winapi: API %q missing from catalog", name))
	}
	c.M.Clock.Advance(meta.cost)
	c.recordAPICall(name)

	// Native entry points bottom out at the kernel syscall gate, where
	// machine-wide kernel hooks (if any) interpose beneath the user-mode
	// chain.
	if kernelHookable(name) {
		inner := genuine
		genuine = func() any { return c.dispatchSyscall(name, args, inner) }
	}

	st := c.sys.stateFor(c.P.PID)
	chain := st.hooks[name]
	if len(chain) == 0 {
		return genuine()
	}
	// Build the trampoline: handler i's Original() runs handler i-1, and
	// the first handler's Original() runs the genuine function. The most
	// recently installed handler executes first.
	next := genuine
	for i := 0; i < len(chain); i++ {
		handler := chain[i]
		inner := next
		next = func() any {
			return handler(c, &Call{Name: name, Args: args, next: inner})
		}
	}
	return next()
}

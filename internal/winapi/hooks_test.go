package winapi

import (
	"testing"

	"scarecrow/internal/winsim"
)

func newTestSystem(t *testing.T) (*System, *Context) {
	t.Helper()
	m := winsim.NewBareMetalSandbox(1)
	sys := NewSystem(m)
	p := sys.Launch(`C:\Users\john\target.exe`, "target.exe", nil)
	return sys, sys.Context(p)
}

func TestPrologueIntactByDefault(t *testing.T) {
	_, ctx := newTestSystem(t)
	if !ctx.PrologueIntact("DeleteFile") {
		t.Error("unhooked function should have the hot-patch prologue")
	}
	b := ctx.ReadFunctionPrologue("DeleteFile")
	if b[0] != 0x8B || b[1] != 0xFF {
		t.Errorf("prologue = % x", b)
	}
}

func TestInstallHookPatchesPrologue(t *testing.T) {
	sys, ctx := newTestSystem(t)
	if err := sys.InstallHook(ctx.P.PID, "DeleteFile", func(c *Context, call *Call) any {
		return call.Original()
	}); err != nil {
		t.Fatal(err)
	}
	if ctx.PrologueIntact("DeleteFile") {
		t.Error("hooked function should expose a JMP prologue")
	}
	if b := ctx.ReadFunctionPrologue("DeleteFile"); b[0] != 0xE9 {
		t.Errorf("prologue = % x, want JMP (E9)", b)
	}
	// Other processes remain unpatched: hooks are per-process (DLL
	// injection scope).
	other := sys.Launch(`C:\other.exe`, "other.exe", nil)
	if !sys.Context(other).PrologueIntact("DeleteFile") {
		t.Error("hook leaked into another process")
	}
}

func TestInstallHookRejectsUnknownAndUnhookable(t *testing.T) {
	sys, ctx := newTestSystem(t)
	if err := sys.InstallHook(ctx.P.PID, "NoSuchAPI", nil); err == nil {
		t.Error("unknown API accepted")
	}
	if err := sys.InstallHook(ctx.P.PID, "WMIQuery", nil); err == nil {
		t.Error("COM-transport API must not be hookable")
	}
}

func TestHookManipulatesResult(t *testing.T) {
	sys, ctx := newTestSystem(t)
	const key = `HKLM\SOFTWARE\Oracle\VirtualBox Guest Additions`
	if st := ctx.RegOpenKeyEx(key); st.OK() {
		t.Fatal("key should not exist on bare metal")
	}
	err := sys.InstallHook(ctx.P.PID, "RegOpenKeyEx", func(c *Context, call *Call) any {
		if call.StrArg(0) == key {
			return Result{Status: StatusSuccess}
		}
		return call.Original()
	})
	if err != nil {
		t.Fatal(err)
	}
	if st := ctx.RegOpenKeyEx(key); !st.OK() {
		t.Error("hook did not fabricate success")
	}
	// Unrelated keys still hit the genuine registry.
	if st := ctx.RegOpenKeyEx(`HKLM\SOFTWARE\Microsoft\Windows NT\CurrentVersion`); !st.OK() {
		t.Error("pass-through broken")
	}
	if st := ctx.RegOpenKeyEx(`HKLM\SOFTWARE\Nothing`); st.OK() {
		t.Error("missing key fabricated unexpectedly")
	}
}

func TestHookChainOrderOutermostLast(t *testing.T) {
	sys, ctx := newTestSystem(t)
	var order []string
	mk := func(tag string) HookHandler {
		return func(c *Context, call *Call) any {
			order = append(order, tag)
			return call.Original()
		}
	}
	if err := sys.InstallHook(ctx.P.PID, "GetTickCount", mk("first")); err != nil {
		t.Fatal(err)
	}
	if err := sys.InstallHook(ctx.P.PID, "GetTickCount", mk("second")); err != nil {
		t.Fatal(err)
	}
	ctx.GetTickCount()
	if len(order) != 2 || order[0] != "second" || order[1] != "first" {
		t.Errorf("chain order = %v, want [second first]", order)
	}
}

func TestMonitorHookedAPIsPatchEveryProcess(t *testing.T) {
	m := winsim.NewCuckooSandbox(1, false)
	sys := NewSystem(m)
	p := sys.Launch(`C:\sample.exe`, "sample.exe", nil)
	ctx := sys.Context(p)
	if ctx.PrologueIntact("ShellExecuteExW") {
		t.Error("Cuckoo monitor hook not visible")
	}
	if !ctx.PrologueIntact("DeleteFile") {
		t.Error("unmonitored API patched")
	}
	// The monitor hook passes calls through unchanged.
	if _, st := ctx.ShellExecuteExW(`C:\Windows\System32\notepad.exe`, "notepad"); !st.OK() {
		t.Error("monitor hook broke the call")
	}
}

func TestHookedPrologueDeterministic(t *testing.T) {
	a := hookedPrologue("RegOpenKeyEx")
	b := hookedPrologue("RegOpenKeyEx")
	c := hookedPrologue("DeleteFile")
	if string(a) != string(b) {
		t.Error("prologue not deterministic")
	}
	if string(a) == string(c) {
		t.Error("different APIs share a displacement")
	}
}

package winapi

import (
	"strings"

	"scarecrow/internal/trace"
	"scarecrow/internal/winsim"
)

// DiskSpace is the GetDiskFreeSpaceEx result bundle.
type DiskSpace struct {
	TotalBytes uint64
	FreeBytes  uint64
}

// VolumeInfo is the GetVolumeInformation result bundle.
type VolumeInfo struct {
	SerialNumber uint32
	FileSystem   string
}

// CreateFile opens an existing file or device. Opening device objects such
// as \\.\VBoxGuest is a standard VM-guest probe.
func (c *Context) CreateFile(path string) Status {
	res := c.invoke("CreateFile", []any{path}, func() any {
		_, ok := c.M.FS.Stat(path)
		c.M.Record(trace.Event{
			Kind: trace.KindFileQuery, PID: c.P.PID, Image: c.P.Image,
			Target: path, Success: ok,
		})
		if !ok {
			return Result{Status: StatusFileNotFound}
		}
		return Result{Status: StatusSuccess}
	})
	return res.(Result).Status
}

// NtCreateFile is the native-layer open (Table III lists it for the
// missing-DLL wear-and-tear artifact).
func (c *Context) NtCreateFile(path string) Status {
	res := c.invoke("NtCreateFile", []any{path}, func() any {
		_, ok := c.M.FS.Stat(path)
		c.M.Record(trace.Event{
			Kind: trace.KindFileQuery, PID: c.P.PID, Image: c.P.Image,
			Target: path, Success: ok,
		})
		if !ok {
			return Result{Status: StatusFileNotFound}
		}
		return Result{Status: StatusSuccess}
	})
	return res.(Result).Status
}

// NtQueryAttributesFile probes file existence without opening it — the
// system call Table I's sample 9437eab uses against vmmouse.sys and
// friends.
func (c *Context) NtQueryAttributesFile(path string) (winsim.FileInfo, Status) {
	res := c.invoke("NtQueryAttributesFile", []any{path}, func() any {
		info, ok := c.M.FS.Stat(path)
		c.M.Record(trace.Event{
			Kind: trace.KindFileQuery, PID: c.P.PID, Image: c.P.Image,
			Target: path, Success: ok,
		})
		if !ok {
			return Result{Status: StatusFileNotFound}
		}
		return Result{Status: StatusSuccess, FileInfo: info}
	})
	r := res.(Result)
	return r.FileInfo, r.Status
}

// GetFileAttributes is the Win32-layer existence/metadata probe.
func (c *Context) GetFileAttributes(path string) (winsim.FileInfo, Status) {
	res := c.invoke("GetFileAttributes", []any{path}, func() any {
		info, ok := c.M.FS.Stat(path)
		c.M.Record(trace.Event{
			Kind: trace.KindFileQuery, PID: c.P.PID, Image: c.P.Image,
			Target: path, Success: ok,
		})
		if !ok {
			return Result{Status: StatusFileNotFound}
		}
		return Result{Status: StatusSuccess, FileInfo: info}
	})
	r := res.(Result)
	return r.FileInfo, r.Status
}

// WriteFile creates or replaces a file with data.
func (c *Context) WriteFile(path string, data []byte) Status {
	res := c.invoke("WriteFile", []any{path, data}, func() any {
		err := c.M.FS.WriteFile(path, data)
		c.M.Record(trace.Event{
			Kind: trace.KindFileWrite, PID: c.P.PID, Image: c.P.Image,
			Target: path, Success: err == nil,
		})
		if err != nil {
			return Result{Status: StatusAccessDenied}
		}
		return Result{Status: StatusSuccess}
	})
	return res.(Result).Status
}

// ReadFile returns a file's contents.
func (c *Context) ReadFile(path string) ([]byte, Status) {
	res := c.invoke("ReadFile", []any{path}, func() any {
		data, ok := c.M.FS.ReadFile(path)
		c.M.Record(trace.Event{
			Kind: trace.KindFileRead, PID: c.P.PID, Image: c.P.Image,
			Target: path, Success: ok,
		})
		if !ok {
			return Result{Status: StatusFileNotFound}
		}
		return Result{Status: StatusSuccess, Data: data}
	})
	r := res.(Result)
	return r.Data, r.Status
}

// DeleteFile removes a file.
func (c *Context) DeleteFile(path string) Status {
	res := c.invoke("DeleteFile", []any{path}, func() any {
		ok := c.M.FS.Delete(path)
		c.M.Record(trace.Event{
			Kind: trace.KindFileDelete, PID: c.P.PID, Image: c.P.Image,
			Target: path, Success: ok,
		})
		if !ok {
			return Result{Status: StatusFileNotFound}
		}
		return Result{Status: StatusSuccess}
	})
	return res.(Result).Status
}

// FindFirstFile lists the entries of a directory matching a wildcard
// pattern (the FindFirstFile/FindNextFile sweep collapsed into one call).
// The final path component may use "*" and "?" wildcards, as on Windows:
// "C:\dir\*", "C:\dir\*.docx", "C:\dir\report?.xls".
func (c *Context) FindFirstFile(pattern string) ([]string, Status) {
	res := c.invoke("FindFirstFile", []any{pattern}, func() any {
		dir, leaf := splitPattern(pattern)
		var names []string
		for _, name := range c.M.FS.List(dir) {
			if matchLeaf(leaf, baseNameOf(name)) {
				names = append(names, name)
			}
		}
		c.M.Record(trace.Event{
			Kind: trace.KindFileQuery, PID: c.P.PID, Image: c.P.Image,
			Target: dir, Detail: "enum=" + leaf, Success: len(names) > 0,
		})
		if len(names) == 0 {
			return Result{Status: StatusFileNotFound}
		}
		return Result{Status: StatusSuccess, Strs: names}
	})
	r := res.(Result)
	return r.Strs, r.Status
}

// splitPattern separates a search pattern into its directory and leaf
// wildcard. A pattern without wildcards in the leaf means "everything in
// this directory" when it ends in a separator, otherwise the leaf is an
// exact-name filter.
func splitPattern(pattern string) (dir, leaf string) {
	p := strings.ReplaceAll(pattern, "/", `\`)
	i := strings.LastIndexByte(p, '\\')
	if i < 0 {
		return p, "*"
	}
	dir, leaf = p[:i], p[i+1:]
	if leaf == "" {
		leaf = "*"
	}
	return dir, leaf
}

// matchLeaf implements Windows-style case-insensitive wildcard matching
// with "*" (any run) and "?" (any single character).
func matchLeaf(pattern, name string) bool {
	return matchFold(strings.ToLower(pattern), strings.ToLower(name))
}

func matchFold(p, s string) bool {
	// Classic backtracking wildcard match, linear thanks to the single
	// star-resume point.
	var starP, starS = -1, 0
	i, j := 0, 0
	for j < len(s) {
		switch {
		case i < len(p) && (p[i] == '?' || p[i] == s[j]):
			i++
			j++
		case i < len(p) && p[i] == '*':
			starP, starS = i, j
			i++
		case starP >= 0:
			starS++
			i, j = starP+1, starS
		default:
			return false
		}
	}
	for i < len(p) && p[i] == '*' {
		i++
	}
	return i == len(p)
}

// GetDiskFreeSpaceEx reports the capacity of the volume owning path.
// Implausibly small disks are a classic sandbox tell (Malwr's 5 GB C:).
func (c *Context) GetDiskFreeSpaceEx(path string) (DiskSpace, Status) {
	res := c.invoke("GetDiskFreeSpaceEx", []any{path}, func() any {
		v := c.M.FS.VolumeFor(path)
		if v == nil {
			return Result{Status: StatusInvalidParam}
		}
		return Result{Status: StatusSuccess, Disk: DiskSpace{
			TotalBytes: v.TotalBytes, FreeBytes: v.FreeBytes,
		}}
	})
	r := res.(Result)
	return r.Disk, r.Status
}

// GetVolumeInformation returns the volume serial and filesystem name.
func (c *Context) GetVolumeInformation(path string) (VolumeInfo, Status) {
	res := c.invoke("GetVolumeInformation", []any{path}, func() any {
		v := c.M.FS.VolumeFor(path)
		if v == nil {
			return Result{Status: StatusInvalidParam}
		}
		return Result{Status: StatusSuccess, Vol: VolumeInfo{
			SerialNumber: v.SerialNumber, FileSystem: "NTFS",
		}}
	})
	r := res.(Result)
	return r.Vol, r.Status
}

// GetDriveType reports the drive category; all modeled volumes are fixed
// disks.
func (c *Context) GetDriveType(path string) (uint64, Status) {
	const driveFixed = 3
	res := c.invoke("GetDriveType", []any{path}, func() any {
		if c.M.FS.VolumeFor(path) == nil {
			return Result{Status: StatusInvalidParam}
		}
		return Result{Status: StatusSuccess, Num: driveFixed}
	})
	r := res.(Result)
	return r.Num, r.Status
}

package winapi

import (
	"scarecrow/internal/trace"

	"scarecrow/internal/winsim"
)

// FindWindow looks for a top-level window by class and/or title —
// the debugger-window probe from §II-B(d) of the paper.
func (c *Context) FindWindow(class, title string) (winsim.Window, Status) {
	res := c.invoke("FindWindow", []any{class, title}, func() any {
		w, ok := c.M.Windows.Find(class, title)
		c.M.Record(trace.Event{
			Kind: trace.KindWindowQuery, PID: c.P.PID, Image: c.P.Image,
			Target: class + "|" + title, Success: ok,
		})
		if !ok {
			return Result{Status: StatusNotFound}
		}
		return Result{Status: StatusSuccess, Window: w}
	})
	r := res.(Result)
	return r.Window, r.Status
}

// EnumWindows returns the class names of all top-level windows.
func (c *Context) EnumWindows() []string {
	res := c.invoke("EnumWindows", nil, func() any {
		return Result{Status: StatusSuccess, Strs: c.M.Windows.Classes()}
	})
	return res.(Result).Strs
}

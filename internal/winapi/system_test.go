package winapi

import (
	"testing"
	"time"

	"scarecrow/internal/trace"
	"scarecrow/internal/winsim"
)

func TestSchedulerRunsRegisteredProgram(t *testing.T) {
	m := winsim.NewBareMetalSandbox(1)
	sys := NewSystem(m)
	var ran bool
	sys.RegisterProgram(`C:\sample.exe`, func(ctx *Context) int {
		ran = true
		return ExitOK
	})
	p := sys.Launch(`C:\sample.exe`, "sample.exe", nil)
	sys.Run(time.Minute)
	if !ran {
		t.Fatal("program body did not run")
	}
	if p.State != winsim.ProcessExited || p.ExitCode != ExitOK {
		t.Errorf("state=%v code=%d", p.State, p.ExitCode)
	}
}

func TestSchedulerUnregisteredImageExitsCleanly(t *testing.T) {
	m := winsim.NewBareMetalSandbox(1)
	sys := NewSystem(m)
	p := sys.Launch(`C:\dropped.tmp.exe`, "dropped", nil)
	sys.Run(time.Minute)
	if p.State != winsim.ProcessExited {
		t.Error("unregistered image did not exit")
	}
}

func TestExitProcessUnwinds(t *testing.T) {
	m := winsim.NewBareMetalSandbox(1)
	sys := NewSystem(m)
	reached := false
	sys.RegisterProgram(`C:\sample.exe`, func(ctx *Context) int {
		ctx.ExitProcess(7)
		reached = true
		return ExitOK
	})
	p := sys.Launch(`C:\sample.exe`, "", nil)
	sys.Run(time.Minute)
	if reached {
		t.Error("code after ExitProcess executed")
	}
	if p.ExitCode != 7 {
		t.Errorf("exit code = %d, want 7", p.ExitCode)
	}
}

func TestBudgetCutsOffInfiniteLoop(t *testing.T) {
	m := winsim.NewBareMetalSandbox(1)
	sys := NewSystem(m)
	iterations := 0
	sys.RegisterProgram(`C:\sleeper.exe`, func(ctx *Context) int {
		for {
			ctx.Sleep(100 * time.Millisecond)
			iterations++
		}
	})
	p := sys.Launch(`C:\sleeper.exe`, "", nil)
	start := m.Clock.Now()
	sys.Run(time.Minute)
	if p.State != winsim.ProcessRunning {
		t.Errorf("state = %v, want still running at window end", p.State)
	}
	if got := m.Clock.Now() - start; got != time.Minute {
		t.Errorf("elapsed = %v, want exactly 1m", got)
	}
	if iterations < 500 {
		t.Errorf("iterations = %d, want ~599", iterations)
	}
}

func TestSelfSpawnLoopBoundedByBudget(t *testing.T) {
	m := winsim.NewBareMetalSandbox(1)
	sys := NewSystem(m)
	sys.RegisterProgram(`C:\spawner.exe`, func(ctx *Context) int {
		if ctx.IsDebuggerPresent() {
			// Pretend deception tripped: respawn and bail, like the
			// paper's self-spawning samples.
			_, _ = ctx.CreateProcess(ctx.GetModuleFileName(), ctx.GetCommandLine())
			return ExitFailure
		}
		return ExitOK
	})
	p := sys.Launch(`C:\spawner.exe`, "spawner.exe", nil)
	// Force the debugger answer via a hook on every process, mimicking
	// Scarecrow, to produce the endless respawn chain.
	sys.ChildLaunched = func(parent, child *winsim.Process) {
		_ = sys.InstallHook(child.PID, "IsDebuggerPresent", func(c *Context, call *Call) any {
			return Result{Status: StatusSuccess, Bool: true}
		})
	}
	_ = sys.InstallHook(p.PID, "IsDebuggerPresent", func(c *Context, call *Call) any {
		return Result{Status: StatusSuccess, Bool: true}
	})
	sys.Run(time.Minute)

	spawns := trace.Summarize(m.Tracer.Events()).SelfSpawns
	if spawns < 100 {
		t.Errorf("self-spawns = %d, want hundreds within one minute", spawns)
	}
	if m.Clock.Now() > time.Minute {
		t.Errorf("clock overran budget: %v", m.Clock.Now())
	}
}

func TestMaxProcessesBackstop(t *testing.T) {
	m := winsim.NewBareMetalSandbox(1)
	sys := NewSystem(m)
	sys.MaxProcesses = 10
	sys.RegisterProgram(`C:\fork.exe`, func(ctx *Context) int {
		_, _ = ctx.CreateProcess(`C:\fork.exe`, "")
		_, _ = ctx.CreateProcess(`C:\fork.exe`, "")
		return ExitOK
	})
	sys.Launch(`C:\fork.exe`, "", nil)
	ran := sys.Run(time.Hour)
	if ran != 10 {
		t.Errorf("ran = %d, want MaxProcesses", ran)
	}
}

func TestChildProcessesRunAfterParent(t *testing.T) {
	m := winsim.NewBareMetalSandbox(1)
	sys := NewSystem(m)
	var order []string
	sys.RegisterProgram(`C:\parent.exe`, func(ctx *Context) int {
		order = append(order, "parent")
		_, _ = ctx.CreateProcess(`C:\child.exe`, "")
		order = append(order, "parent-after-create")
		return ExitOK
	})
	sys.RegisterProgram(`C:\child.exe`, func(ctx *Context) int {
		order = append(order, "child")
		return ExitOK
	})
	sys.Launch(`C:\parent.exe`, "", nil)
	sys.Run(time.Minute)
	want := []string{"parent", "parent-after-create", "child"}
	if len(order) != 3 || order[0] != want[0] || order[1] != want[1] || order[2] != want[2] {
		t.Errorf("order = %v, want %v", order, want)
	}
}

func TestParentProcessImage(t *testing.T) {
	m := winsim.NewBareMetalSandbox(1)
	sys := NewSystem(m)
	explorer := m.Procs.FindByImage("explorer.exe")[0]
	p := sys.Launch(`C:\a.exe`, "", explorer)
	if got := sys.Context(p).ParentProcessImage(); got != "explorer.exe" {
		t.Errorf("parent image = %q", got)
	}
}

func TestProtectedProcessResistsTermination(t *testing.T) {
	m := winsim.NewBareMetalSandbox(1)
	sys := NewSystem(m)
	victim := m.Procs.Create(`C:\tools\olydbg.exe`, "", 4, 0)
	victim.State = winsim.ProcessRunning
	victim.Protected = true
	p := sys.Launch(`C:\mal.exe`, "", nil)
	ctx := sys.Context(p)
	if st := ctx.TerminateProcess(victim.PID); st != StatusAccessDenied {
		t.Errorf("TerminateProcess = %v, want ACCESS_DENIED", st)
	}
	if victim.State == winsim.ProcessExited {
		t.Error("protected process died")
	}
	if st := ctx.InjectIntoProcess(victim.PID); st != StatusAccessDenied {
		t.Errorf("InjectIntoProcess = %v, want ACCESS_DENIED", st)
	}
}

func TestAPITraceEventsRecorded(t *testing.T) {
	m := winsim.NewBareMetalSandbox(1)
	sys := NewSystem(m)
	p := sys.Launch(`C:\a.exe`, "", nil)
	ctx := sys.Context(p)
	ctx.IsDebuggerPresent()
	ctx.IsDebuggerPresent()
	ctx.GetTickCount()
	s := trace.Summarize(m.Tracer.Events())
	if s.APICalls["IsDebuggerPresent"] != 2 {
		t.Errorf("IsDebuggerPresent calls = %d", s.APICalls["IsDebuggerPresent"])
	}
	if s.APICalls["GetTickCount"] != 1 {
		t.Errorf("GetTickCount calls = %d", s.APICalls["GetTickCount"])
	}
}

package winapi

import (
	"strings"

	"scarecrow/internal/trace"
)

// GetModuleHandle reports whether a module is loaded in the process,
// returning a non-zero pseudo-address when present. Probing for
// SbieDll.dll, dbghelp.dll, or sandbox monitor DLLs is a standard evasion
// check.
func (c *Context) GetModuleHandle(name string) (uint64, Status) {
	res := c.invoke("GetModuleHandle", []any{name}, func() any {
		if !c.P.HasModule(name) {
			return Result{Status: StatusNotFound}
		}
		return Result{Status: StatusSuccess, Num: moduleAddr(name)}
	})
	r := res.(Result)
	return r.Num, r.Status
}

// LoadLibrary loads a DLL into the process when its file exists on disk (or
// it is a known system DLL), emitting the ImageLoad kernel event.
func (c *Context) LoadLibrary(name string) (uint64, Status) {
	res := c.invoke("LoadLibrary", []any{name}, func() any {
		base := strings.ToLower(name)
		known := c.M.FS.Exists(`C:\Windows\System32\`+base) || c.M.FS.Exists(name)
		if !known {
			c.M.Record(trace.Event{
				Kind: trace.KindImageLoad, PID: c.P.PID, Image: c.P.Image,
				Target: name, Success: false,
			})
			return Result{Status: StatusFileNotFound}
		}
		if c.P.LoadModule(baseNameOf(name)) {
			c.M.Record(trace.Event{
				Kind: trace.KindImageLoad, PID: c.P.PID, Image: c.P.Image,
				Target: name, Success: true,
			})
		}
		return Result{Status: StatusSuccess, Num: moduleAddr(name)}
	})
	r := res.(Result)
	return r.Num, r.Status
}

// GetProcAddress resolves an export from a loaded module. The simulation
// exposes the exports evasion checks look for: every catalogued API
// resolves from its owning system DLL, and Wine/sandbox-specific exports
// resolve only where the environment provides them (never, in these
// profiles — Scarecrow fakes them instead).
func (c *Context) GetProcAddress(module, proc string) (uint64, Status) {
	res := c.invoke("GetProcAddress", []any{module, proc}, func() any {
		if !c.P.HasModule(module) {
			return Result{Status: StatusInvalidHandle}
		}
		if APIKnown(proc) {
			return Result{Status: StatusSuccess, Num: moduleAddr(module + "!" + proc)}
		}
		// Non-catalogued exports (wine_get_unix_file_name, ...) exist only
		// if the environment explicitly exports them.
		return Result{Status: StatusNotFound}
	})
	r := res.(Result)
	return r.Num, r.Status
}

// moduleAddr derives a stable pseudo base address from a module name.
func moduleAddr(name string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(name); i++ {
		h = (h ^ uint64(name[i])) * 1099511628211
	}
	return 0x7ff000000000 | (h & 0xffffff000)
}

func baseNameOf(path string) string {
	if i := strings.LastIndexAny(path, `\/`); i >= 0 {
		return path[i+1:]
	}
	return path
}

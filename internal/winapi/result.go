package winapi

import "scarecrow/internal/winsim"

// Result is the uniform bundle every modeled API returns through the hook
// chain. Genuine implementations and hook handlers both produce a Result;
// each API wrapper extracts the fields it declares. A single shared type
// (rather than one per API) lets deception engines fabricate results
// without reaching into per-API internals — the moral equivalent of writing
// the out-parameters of the real calling convention.
//
// Only the fields an API documents are meaningful for that API; the rest
// stay zero.
type Result struct {
	Status   Status
	Bool     bool
	Num      uint64
	Str      string
	Strs     []string
	Data     []byte
	Code     int
	Value    winsim.Value
	KeyInfo  KeyInfo
	FileInfo winsim.FileInfo
	Disk     DiskSpace
	Vol      VolumeInfo
	Ver      OSVersionInfo
	SysInfo  SystemInfo
	Mem      MemoryStatus
	Adapters []AdapterInfo
	Entries  []ProcessEntry
	Proc     *winsim.Process
	Window   winsim.Window
}

package winapi

import (
	"testing"
	"time"

	"scarecrow/internal/winsim"
)

func TestRegistryAPIs(t *testing.T) {
	_, ctx := newTestSystem(t)
	const key = `HKLM\SOFTWARE\TestVendor\App`
	if st := ctx.RegCreateKeyEx(key); !st.OK() {
		t.Fatal(st)
	}
	if st := ctx.RegSetValueEx(key, "Version", winsim.StringValue("1.0")); !st.OK() {
		t.Fatal(st)
	}
	v, st := ctx.RegQueryValueEx(key, "Version")
	if !st.OK() || v.Str != "1.0" {
		t.Fatalf("query = %+v, %v", v, st)
	}
	if _, st := ctx.NtQueryValueKey(key, "Missing"); st.OK() {
		t.Error("missing value should fail")
	}
	info, st := ctx.NtQueryKey(`HKLM\SOFTWARE\TestVendor`)
	if !st.OK() || info.SubkeyCount != 1 {
		t.Errorf("NtQueryKey = %+v, %v", info, st)
	}
	name, st := ctx.RegEnumKeyEx(`HKLM\SOFTWARE\TestVendor`, 0)
	if !st.OK() || name != "App" {
		t.Errorf("enum = %q, %v", name, st)
	}
	if _, st := ctx.RegEnumKeyEx(`HKLM\SOFTWARE\TestVendor`, 1); st != StatusNoMoreItems {
		t.Errorf("enum past end = %v", st)
	}
	if st := ctx.RegDeleteKey(key); !st.OK() {
		t.Error(st)
	}
	if st := ctx.NtOpenKeyEx(key); st.OK() {
		t.Error("deleted key opened")
	}
}

func TestFileAPIs(t *testing.T) {
	_, ctx := newTestSystem(t)
	if st := ctx.WriteFile(`C:\Users\john\a.txt`, []byte("data")); !st.OK() {
		t.Fatal(st)
	}
	data, st := ctx.ReadFile(`C:\Users\john\a.txt`)
	if !st.OK() || string(data) != "data" {
		t.Fatalf("read = %q, %v", data, st)
	}
	info, st := ctx.NtQueryAttributesFile(`C:\Users\john\a.txt`)
	if !st.OK() || info.Size != 4 {
		t.Errorf("attributes = %+v, %v", info, st)
	}
	if st := ctx.DeleteFile(`C:\Users\john\a.txt`); !st.OK() {
		t.Error(st)
	}
	if st := ctx.CreateFile(`C:\Users\john\a.txt`); st.OK() {
		t.Error("deleted file opened")
	}
	names, st := ctx.FindFirstFile(`C:\Windows\System32\*`)
	if !st.OK() || len(names) == 0 {
		t.Errorf("FindFirstFile = %v, %v", names, st)
	}
}

func TestDiskAndVolumeAPIs(t *testing.T) {
	_, ctx := newTestSystem(t)
	disk, st := ctx.GetDiskFreeSpaceEx(`C:\`)
	if !st.OK() || disk.TotalBytes != 500<<30 {
		t.Errorf("disk = %+v, %v", disk, st)
	}
	vol, st := ctx.GetVolumeInformation(`C:\`)
	if !st.OK() || vol.FileSystem != "NTFS" {
		t.Errorf("vol = %+v, %v", vol, st)
	}
	if _, st := ctx.GetDiskFreeSpaceEx(`Z:\`); st.OK() {
		t.Error("unknown drive succeeded")
	}
	dt, st := ctx.GetDriveType(`C:\`)
	if !st.OK() || dt != 3 {
		t.Errorf("drive type = %d, %v", dt, st)
	}
}

func TestSysinfoAPIs(t *testing.T) {
	_, ctx := newTestSystem(t)
	if si := ctx.GetSystemInfo(); si.NumberOfProcessors != 4 {
		t.Errorf("cores = %d", si.NumberOfProcessors)
	}
	if mem := ctx.GlobalMemoryStatusEx(); mem.TotalPhysBytes != 8<<30 {
		t.Errorf("ram = %d", mem.TotalPhysBytes)
	}
	if name := ctx.GetComputerName(); name != "ANALYSIS-07" {
		t.Errorf("computer = %q", name)
	}
	if user := ctx.GetUserName(); user != "john" {
		t.Errorf("user = %q", user)
	}
	if ver := ctx.GetVersionEx(); ver.Major != 6 || ver.Minor != 1 {
		t.Errorf("version = %+v", ver)
	}
	if _, st := ctx.IsNativeVhdBoot(); st != StatusNotSupported {
		t.Errorf("IsNativeVhdBoot on Win7 = %v, want NOT_SUPPORTED", st)
	}
	quota, st := ctx.NtQuerySystemInformation(SystemRegistryQuotaInformation)
	if !st.OK() || quota != 53<<20 {
		t.Errorf("quota = %d, %v", quota, st)
	}
	if adapters := ctx.GetAdaptersInfo(); len(adapters) != 1 {
		t.Errorf("adapters = %v", adapters)
	}
}

func TestWMIQueryAnswersIdentity(t *testing.T) {
	m := winsim.NewCuckooSandbox(1, false)
	sys := NewSystem(m)
	ctx := sys.Context(sys.Launch(`C:\a.exe`, "", nil))
	if s, st := ctx.WMIQuery("Win32_ComputerSystem", "Model"); !st.OK() || s != "VirtualBox" {
		t.Errorf("WMI model = %q, %v", s, st)
	}
	if _, st := ctx.WMIQuery("Win32_Foo", "Bar"); st.OK() {
		t.Error("unknown WMI class succeeded")
	}
}

func TestModuleAPIs(t *testing.T) {
	_, ctx := newTestSystem(t)
	if _, st := ctx.GetModuleHandle("SbieDll.dll"); st.OK() {
		t.Error("SbieDll reported loaded")
	}
	if _, st := ctx.GetModuleHandle("kernel32.dll"); !st.OK() {
		t.Error("kernel32 missing")
	}
	if _, st := ctx.LoadLibrary("user32.dll"); !st.OK() {
		t.Error("user32 load failed")
	}
	if !ctx.P.HasModule("user32.dll") {
		t.Error("module list not updated")
	}
	if _, st := ctx.LoadLibrary("sbiedll.dll"); st.OK() {
		t.Error("nonexistent DLL loaded")
	}
	if _, st := ctx.GetProcAddress("kernel32.dll", "IsDebuggerPresent"); !st.OK() {
		t.Error("catalogued export did not resolve")
	}
	if _, st := ctx.GetProcAddress("kernel32.dll", "wine_get_unix_file_name"); st.OK() {
		t.Error("wine export resolved on Windows")
	}
	if _, st := ctx.GetProcAddress("notloaded.dll", "X"); st != StatusInvalidHandle {
		t.Error("unloaded module accepted")
	}
}

func TestDebugAndTimingAPIs(t *testing.T) {
	_, ctx := newTestSystem(t)
	if ctx.IsDebuggerPresent() {
		t.Error("debugger reported on clean machine")
	}
	if ctx.CheckRemoteDebuggerPresent() {
		t.Error("remote debugger reported")
	}
	if port, st := ctx.QueryDebugPort(); !st.OK() || port != 0 {
		t.Errorf("debug port = %d, %v", port, st)
	}
	t0 := ctx.GetTickCount()
	ctx.Sleep(500 * time.Millisecond)
	t1 := ctx.GetTickCount()
	if d := t1 - t0; d < 500 || d > 510 {
		t.Errorf("tick delta across 500ms sleep = %d", d)
	}
	peb := ctx.ReadPEB()
	if peb.NumberOfProcessors != 4 || peb.BeingDebugged {
		t.Errorf("PEB = %+v", peb)
	}
}

func TestDirectSyscallBypassesHooks(t *testing.T) {
	sys, ctx := newTestSystem(t)
	const key = `HKLM\SOFTWARE\Oracle\VirtualBox Guest Additions`
	err := sys.InstallHook(ctx.P.PID, "NtOpenKeyEx", func(c *Context, call *Call) any {
		return Result{Status: StatusSuccess} // deceive: key "exists"
	})
	if err != nil {
		t.Fatal(err)
	}
	if st := ctx.NtOpenKeyEx(key); !st.OK() {
		t.Fatal("hooked path should be deceived")
	}
	if got := ctx.DirectSyscall("NtOpenKeyEx", key); got != StatusFileNotFound {
		t.Errorf("direct syscall = %v, want genuine FILE_NOT_FOUND", got)
	}
	if got := ctx.DirectSyscall("NtSomethingElse"); got != StatusNotSupported {
		t.Errorf("unknown syscall = %v", got)
	}
}

func TestNetworkAPIs(t *testing.T) {
	m := winsim.NewEndUserMachine(1)
	sys := NewSystem(m)
	ctx := sys.Context(sys.Launch(`C:\a.exe`, "", nil))
	if _, st := ctx.DnsQuery("site001.example.com"); !st.OK() {
		t.Error("real domain failed")
	}
	if _, st := ctx.DnsQuery("xkcd1953substitute.invalid"); st.OK() {
		t.Error("NX domain resolved on end-user machine")
	}
	mc := winsim.NewCuckooSandbox(1, false)
	sysc := NewSystem(mc)
	cctx := sysc.Context(sysc.Launch(`C:\a.exe`, "", nil))
	addr, st := cctx.DnsQuery("xkcd1953substitute.invalid")
	if !st.OK() || addr != mc.Net.SinkholeIP {
		t.Errorf("sandbox sinkhole = %q, %v", addr, st)
	}
	if code, st := cctx.InternetOpenUrl(addr); !st.OK() || code != 200 {
		t.Errorf("sinkhole HTTP = %d, %v", code, st)
	}
}

func TestWindowAPIs(t *testing.T) {
	m := winsim.NewBareMetalSandbox(1)
	m.Windows.Add(winsim.Window{Class: "OLLYDBG", Title: "OllyDbg", PID: 1})
	sys := NewSystem(m)
	ctx := sys.Context(sys.Launch(`C:\a.exe`, "", nil))
	if _, st := ctx.FindWindow("OLLYDBG", ""); !st.OK() {
		t.Error("FindWindow failed")
	}
	if _, st := ctx.FindWindow("WinDbgFrameClass", ""); st.OK() {
		t.Error("nonexistent window found")
	}
	classes := ctx.EnumWindows()
	if len(classes) < 2 {
		t.Errorf("EnumWindows = %v", classes)
	}
}

func TestGetCursorPosThroughAPI(t *testing.T) {
	m := winsim.NewEndUserMachine(1)
	m.Mouse = winsim.NewMouse(true, 100, 100)
	sys := NewSystem(m)
	ctx := sys.Context(sys.Launch(`C:\a.exe`, "", nil))
	x1, y1 := ctx.GetCursorPos()
	ctx.Sleep(2 * time.Second)
	x2, y2 := ctx.GetCursorPos()
	if x1 == x2 && y1 == y2 {
		t.Error("active mouse static through API")
	}
}

func TestEvtNextPaging(t *testing.T) {
	_, ctx := newTestSystem(t)
	page, total := ctx.EvtNext(0, 100)
	if total != 8000 {
		t.Errorf("total events = %d, want 8000 (sandbox usage)", total)
	}
	if len(page) != 100 {
		t.Errorf("page = %d entries", len(page))
	}
	if _, total2 := ctx.EvtNext(total, 100); total2 != total {
		t.Error("offset past end changed total")
	}
}

func TestStatusStrings(t *testing.T) {
	if StatusSuccess.String() != "SUCCESS" || !StatusSuccess.OK() {
		t.Error("success formatting")
	}
	if StatusFileNotFound.String() != "ERROR_FILE_NOT_FOUND" {
		t.Error("file-not-found formatting")
	}
	if Status(424242).String() != "ERROR_424242" {
		t.Error("unknown status formatting")
	}
}

func TestFindFirstFileWildcards(t *testing.T) {
	_, ctx := newTestSystem(t)
	for _, f := range []string{`C:\docs\a.docx`, `C:\docs\b.docx`, `C:\docs\c.xlsx`, `C:\docs\ab.txt`} {
		if st := ctx.WriteFile(f, []byte("x")); !st.OK() {
			t.Fatal(st)
		}
	}
	tests := []struct {
		pattern string
		want    int
	}{
		{`C:\docs\*`, 4},
		{`C:\docs\*.docx`, 2},
		{`C:\docs\*.DOCX`, 2}, // case-insensitive
		{`C:\docs\?.docx`, 2},
		{`C:\docs\a*`, 2}, // a.docx, ab.txt
		{`C:\docs\a.docx`, 1},
		{`C:\docs\*.pdf`, 0},
	}
	for _, tt := range tests {
		names, st := ctx.FindFirstFile(tt.pattern)
		if tt.want == 0 {
			if st.OK() {
				t.Errorf("%q matched %v", tt.pattern, names)
			}
			continue
		}
		if !st.OK() || len(names) != tt.want {
			t.Errorf("%q -> %d matches (%v), want %d", tt.pattern, len(names), st, tt.want)
		}
	}
}

func TestMatchFoldEdgeCases(t *testing.T) {
	tests := []struct {
		p, s string
		want bool
	}{
		{"*", "", true},
		{"", "", true},
		{"", "x", false},
		{"**a*", "bca", true},
		{"?*?", "ab", true},
		{"?*?", "a", false},
		{"a*b*c", "aXXbYYc", true},
		{"a*b*c", "aXXcYYb", false},
	}
	for _, tt := range tests {
		if got := matchFold(tt.p, tt.s); got != tt.want {
			t.Errorf("matchFold(%q, %q) = %v", tt.p, tt.s, got)
		}
	}
}

package winapi

import "time"

// Real-time enforcement: the deterrence tier (internal/deter) watches the
// live trace through the recorder tap and decides, per process, whether a
// payload must be stopped. The decision cannot be applied at the moment of
// detection — the tap fires deep inside the API call that tripped it, with
// no unwinding channel of its own — so it is applied here, at the next API
// boundary the offending process crosses. That is exactly how a real EDR
// sensor works: the kernel callback that saw the canary touch flags the
// process, and the user-mode hook kills it on its next system call.

// EnforcementAction classifies what the enforcer does to a flagged
// process at its next API call.
type EnforcementAction int

const (
	// EnforceNone lets the call proceed untouched.
	EnforceNone EnforcementAction = iota
	// EnforceKill terminates the calling process before the call runs.
	EnforceKill
	// EnforceThrottle injects virtual-clock delay ahead of every call, so
	// the observation window closes before the payload gets far.
	EnforceThrottle
	// EnforceIsolate denies network APIs (DNS, connect, HTTP) while
	// letting local calls proceed — the quarantine-VLAN move.
	EnforceIsolate
)

func (a EnforcementAction) String() string {
	switch a {
	case EnforceNone:
		return "none"
	case EnforceKill:
		return "kill"
	case EnforceThrottle:
		return "throttle"
	case EnforceIsolate:
		return "isolate"
	default:
		return "none"
	}
}

// Enforcement is the decision an Enforcer returns for one API call.
type Enforcement struct {
	Action EnforcementAction
	// ExitCode is the exit status a kill imposes (0 defaults to 137, the
	// conventional SIGKILL status).
	ExitCode int
	// Delay is the virtual time a throttle injects ahead of the call.
	Delay time.Duration
}

// killExitCode is the default exit status an enforcement kill imposes.
const killExitCode = 137

// networkAPIs lists the API names an isolated process is denied. The set
// mirrors internal/winapi/network.go's entry points.
var networkAPIs = map[string]bool{
	"DnsQuery":        true,
	"getaddrinfo":     true,
	"InternetOpenUrl": true,
	"connect":         true,
}

// applyEnforcement consults the system's enforcer (if any) before an API
// call executes. It returns (result, true) when the call must not run —
// an isolated process's denied network call — and unwinds the program
// body entirely for a kill (the scheduler's exitPanic channel, the same
// one ExitProcess uses). Throttles charge their delay and let the call
// proceed; the charge may itself raise winsim.BudgetExceeded, which the
// scheduler recovers as the window closing on the throttled payload.
func (c *Context) applyEnforcement(name string) (any, bool) {
	if c.sys.Enforcer == nil {
		return nil, false
	}
	enf := c.sys.Enforcer(c.P.PID, name)
	switch enf.Action {
	case EnforceKill:
		code := enf.ExitCode
		if code == 0 {
			code = killExitCode
		}
		panic(exitPanic{code: code})
	case EnforceThrottle:
		if enf.Delay > 0 {
			c.M.Clock.Advance(enf.Delay)
		}
	case EnforceIsolate:
		if networkAPIs[name] {
			return Result{Status: StatusAccessDenied}, true
		}
	}
	return nil, false
}

package winapi

import (
	"strings"
)

// SystemInfo is the GetSystemInfo result bundle.
type SystemInfo struct {
	NumberOfProcessors int
	ProcessorBrand     string
}

// MemoryStatus is the GlobalMemoryStatusEx result bundle.
type MemoryStatus struct {
	TotalPhysBytes uint64
	AvailPhysBytes uint64
}

// OSVersionInfo is the GetVersionEx result bundle.
type OSVersionInfo struct {
	Major int
	Minor int
	Build int
}

// AdapterInfo is one GetAdaptersInfo row.
type AdapterInfo struct {
	MAC string
}

// GetSystemInfo reports processor topology.
func (c *Context) GetSystemInfo() SystemInfo {
	res := c.invoke("GetSystemInfo", nil, func() any {
		return Result{Status: StatusSuccess, SysInfo: SystemInfo{
			NumberOfProcessors: c.M.HW.NumCores,
			ProcessorBrand:     c.M.HW.CPUBrand,
		}}
	})
	return res.(Result).SysInfo
}

// GlobalMemoryStatusEx reports physical memory. Table I's sample 9fac72a
// was deactivated by Scarecrow's deceptive answer here.
func (c *Context) GlobalMemoryStatusEx() MemoryStatus {
	res := c.invoke("GlobalMemoryStatusEx", nil, func() any {
		total := c.M.HW.RAMBytes
		return Result{Status: StatusSuccess, Mem: MemoryStatus{
			TotalPhysBytes: total, AvailPhysBytes: total / 2,
		}}
	})
	return res.(Result).Mem
}

// GetComputerName returns the host name.
func (c *Context) GetComputerName() string {
	res := c.invoke("GetComputerName", nil, func() any {
		return Result{Status: StatusSuccess, Str: c.M.HW.ComputerName}
	})
	return res.(Result).Str
}

// GetUserName returns the logged-in user name.
func (c *Context) GetUserName() string {
	res := c.invoke("GetUserName", nil, func() any {
		return Result{Status: StatusSuccess, Str: c.M.HW.UserName}
	})
	return res.(Result).Str
}

// GetVersionEx returns the OS version.
func (c *Context) GetVersionEx() OSVersionInfo {
	res := c.invoke("GetVersionEx", nil, func() any {
		return Result{Status: StatusSuccess, Ver: OSVersionInfo{
			Major: c.M.OS.Major, Minor: c.M.OS.Minor, Build: c.M.OS.Build,
		}}
	})
	return res.(Result).Ver
}

// IsNativeVhdBoot reports whether the system booted from a VHD. The API
// only exists from Windows 8 (6.2); on the evaluation's Windows 7 machines
// it fails with ERROR_NOT_SUPPORTED — the paper's explanation for one
// missed Pafish feature.
func (c *Context) IsNativeVhdBoot() (bool, Status) {
	res := c.invoke("IsNativeVhdBoot", nil, func() any {
		if !c.M.OS.AtLeast(6, 2) {
			return Result{Status: StatusNotSupported}
		}
		return Result{Status: StatusSuccess, Bool: false}
	})
	r := res.(Result)
	return r.Bool, r.Status
}

// System information classes modeled by NtQuerySystemInformation.
const (
	SystemProcessInformation        = "SystemProcessInformation"
	SystemRegistryQuotaInformation  = "SystemRegistryQuotaInformation"
	SystemKernelDebuggerInformation = "SystemKernelDebuggerInformation"
)

// NtQuerySystemInformation answers the modeled information classes:
// process counts, registry quota usage (the regSize wear-and-tear
// artifact), and kernel debugger presence.
func (c *Context) NtQuerySystemInformation(class string) (uint64, Status) {
	res := c.invoke("NtQuerySystemInformation", []any{class}, func() any {
		return c.genuineSystemInformation(class)
	})
	r := res.(Result)
	return r.Num, r.Status
}

func (c *Context) genuineSystemInformation(class string) Result {
	switch class {
	case SystemProcessInformation:
		return Result{Status: StatusSuccess, Num: uint64(len(c.M.Procs.Running()))}
	case SystemRegistryQuotaInformation:
		return Result{Status: StatusSuccess, Num: c.M.RegistryQuotaUsed}
	case SystemKernelDebuggerInformation:
		var n uint64
		if c.M.KernelDebuggerPresent {
			n = 1
		}
		return Result{Status: StatusSuccess, Num: n}
	default:
		return Result{Status: StatusInvalidParam}
	}
}

// GetAdaptersInfo lists network adapters with their MAC addresses.
func (c *Context) GetAdaptersInfo() []AdapterInfo {
	res := c.invoke("GetAdaptersInfo", nil, func() any {
		adapters := make([]AdapterInfo, 0, len(c.M.HW.MACs))
		for _, mac := range c.M.HW.MACs {
			adapters = append(adapters, AdapterInfo{MAC: mac})
		}
		return Result{Status: StatusSuccess, Adapters: adapters}
	})
	return res.(Result).Adapters
}

// PackCursorPos packs a cursor position into the Num field of a Result,
// the transport GetCursorPos uses through hook chains.
func PackCursorPos(x, y int) uint64 {
	return uint64(uint32(x))<<32 | uint64(uint32(y))
}

// GetCursorPos samples the pointer position at the current virtual time.
func (c *Context) GetCursorPos() (x, y int) {
	res := c.invoke("GetCursorPos", nil, func() any {
		cx, cy := c.M.Mouse.CursorAt(c.M.Clock.TickCount())
		return Result{Status: StatusSuccess, Num: PackCursorPos(cx, cy)}
	})
	packed := res.(Result).Num
	return int(int32(uint32(packed >> 32))), int(int32(uint32(packed)))
}

// EvtNext pages through the system event log, returning up to max event
// source names starting at offset. Total event volume and source diversity
// are the sysevt/syssrc wear-and-tear artifacts.
func (c *Context) EvtNext(offset, max int) ([]string, int) {
	res := c.invoke("EvtNext", []any{offset, max}, func() any {
		return Result{
			Status: StatusSuccess,
			Strs:   c.M.EventLog.Sources(),
			Num:    uint64(c.M.EventLog.Count()),
		}
	})
	r := res.(Result)
	total := int(r.Num)
	if offset >= total {
		return nil, total
	}
	// The returned page carries source names cyclically; callers count
	// events and distinct sources from the pages.
	n := max
	if offset+n > total {
		n = total - offset
	}
	page := make([]string, 0, n)
	for i := 0; i < n; i++ {
		if len(r.Strs) == 0 {
			break
		}
		page = append(page, r.Strs[(offset+i)%len(r.Strs)])
	}
	return page, total
}

// DnsGetCacheDataTable returns the client DNS cache entries (the
// dnscacheEntries wear-and-tear artifact).
func (c *Context) DnsGetCacheDataTable() []string {
	res := c.invoke("DnsGetCacheDataTable", nil, func() any {
		return Result{Status: StatusSuccess, Strs: c.M.Net.Cache.Entries()}
	})
	return res.(Result).Strs
}

// WMIQuery answers a WMI identity query of the form class.property against
// the hardware profile. COM-based WMI is a separate transport from the
// Win32 APIs, which is why Scarecrow's user-level hooks do not cover it
// (the three WMI-based Pafish VirtualBox checks stay un-deceived).
func (c *Context) WMIQuery(class, property string) (string, Status) {
	res := c.invoke("WMIQuery", []any{class, property}, func() any {
		hw := c.M.HW
		switch strings.ToLower(class + "." + property) {
		case "win32_bios.serialnumber":
			return Result{Status: StatusSuccess, Str: hw.BIOSSerial}
		case "win32_computersystem.manufacturer":
			return Result{Status: StatusSuccess, Str: hw.SystemManufacturer}
		case "win32_computersystem.model":
			return Result{Status: StatusSuccess, Str: hw.SystemProductName}
		case "win32_diskdrive.model":
			return Result{Status: StatusSuccess, Str: hw.DiskModel}
		default:
			return Result{Status: StatusInvalidParam}
		}
	})
	r := res.(Result)
	return r.Str, r.Status
}

package winapi

import (
	"scarecrow/internal/trace"
	"scarecrow/internal/winsim"
)

// KeyInfo is the result bundle of NtQueryKey: the counts a caller needs to
// size enumeration buffers — and the counts wear-and-tear fingerprinting
// cares about.
type KeyInfo struct {
	SubkeyCount int
	ValueCount  int
}

// RegOpenKeyEx opens a registry key, returning StatusSuccess when it
// exists. This is the classic existence probe evasive malware uses against
// keys such as SOFTWARE\Oracle\VirtualBox Guest Additions.
func (c *Context) RegOpenKeyEx(path string) Status {
	res := c.invoke("RegOpenKeyEx", []any{path}, func() any {
		ok := c.M.Registry.KeyExists(path)
		c.M.Record(trace.Event{
			Kind: trace.KindRegOpenKey, PID: c.P.PID, Image: c.P.Image,
			Target: path, Success: ok,
		})
		if !ok {
			return Result{Status: StatusFileNotFound}
		}
		return Result{Status: StatusSuccess}
	})
	return res.(Result).Status
}

// NtOpenKeyEx is the native-layer variant of RegOpenKeyEx. Scarecrow hooks
// both layers (Table III lists NtOpenKeyEx among the wear-and-tear APIs).
func (c *Context) NtOpenKeyEx(path string) Status {
	res := c.invoke("NtOpenKeyEx", []any{path}, func() any {
		ok := c.M.Registry.KeyExists(path)
		c.M.Record(trace.Event{
			Kind: trace.KindRegOpenKey, PID: c.P.PID, Image: c.P.Image,
			Target: path, Success: ok,
		})
		if !ok {
			return Result{Status: StatusFileNotFound}
		}
		return Result{Status: StatusSuccess}
	})
	return res.(Result).Status
}

// RegQueryValueEx reads a value under a key.
func (c *Context) RegQueryValueEx(path, name string) (winsim.Value, Status) {
	res := c.invoke("RegQueryValueEx", []any{path, name}, func() any {
		return c.genuineQueryValue(path, name)
	})
	r := res.(Result)
	return r.Value, r.Status
}

// NtQueryValueKey is the native-layer value read.
func (c *Context) NtQueryValueKey(path, name string) (winsim.Value, Status) {
	res := c.invoke("NtQueryValueKey", []any{path, name}, func() any {
		return c.genuineQueryValue(path, name)
	})
	r := res.(Result)
	return r.Value, r.Status
}

func (c *Context) genuineQueryValue(path, name string) Result {
	v, ok := c.M.Registry.QueryValue(path, name)
	c.M.Record(trace.Event{
		Kind: trace.KindRegQueryValue, PID: c.P.PID, Image: c.P.Image,
		Target: path, Detail: "value=" + name, Success: ok,
	})
	if !ok {
		return Result{Status: StatusFileNotFound}
	}
	return Result{Status: StatusSuccess, Value: v}
}

// NtQueryKey returns subkey/value counts for a key.
func (c *Context) NtQueryKey(path string) (KeyInfo, Status) {
	res := c.invoke("NtQueryKey", []any{path}, func() any {
		k, ok := c.M.Registry.OpenKey(path)
		c.M.Record(trace.Event{
			Kind: trace.KindRegQueryValue, PID: c.P.PID, Image: c.P.Image,
			Target: path, Detail: "info", Success: ok,
		})
		if !ok {
			return Result{Status: StatusFileNotFound}
		}
		return Result{Status: StatusSuccess, KeyInfo: KeyInfo{
			SubkeyCount: k.SubkeyCount(), ValueCount: k.ValueCount(),
		}}
	})
	r := res.(Result)
	return r.KeyInfo, r.Status
}

// RegEnumKeyEx returns the name of the index-th subkey.
func (c *Context) RegEnumKeyEx(path string, index int) (string, Status) {
	res := c.invoke("RegEnumKeyEx", []any{path, index}, func() any {
		k, ok := c.M.Registry.OpenKey(path)
		if !ok {
			return Result{Status: StatusFileNotFound}
		}
		names := k.SubkeyNames()
		c.M.Record(trace.Event{
			Kind: trace.KindRegEnumKey, PID: c.P.PID, Image: c.P.Image,
			Target: path, Success: true,
		})
		if index < 0 || index >= len(names) {
			return Result{Status: StatusNoMoreItems}
		}
		return Result{Status: StatusSuccess, Str: names[index]}
	})
	r := res.(Result)
	return r.Str, r.Status
}

// NtEnumerateKey is the native-layer subkey enumeration.
func (c *Context) NtEnumerateKey(path string, index int) (string, Status) {
	res := c.invoke("NtEnumerateKey", []any{path, index}, func() any {
		k, ok := c.M.Registry.OpenKey(path)
		if !ok {
			return Result{Status: StatusFileNotFound}
		}
		names := k.SubkeyNames()
		if index < 0 || index >= len(names) {
			return Result{Status: StatusNoMoreItems}
		}
		return Result{Status: StatusSuccess, Str: names[index]}
	})
	r := res.(Result)
	return r.Str, r.Status
}

// RegCreateKeyEx creates a key (and ancestors).
func (c *Context) RegCreateKeyEx(path string) Status {
	res := c.invoke("RegCreateKeyEx", []any{path}, func() any {
		_, err := c.M.Registry.CreateKey(path)
		c.M.Record(trace.Event{
			Kind: trace.KindRegCreateKey, PID: c.P.PID, Image: c.P.Image,
			Target: path, Success: err == nil,
		})
		if err != nil {
			return Result{Status: StatusInvalidParam}
		}
		return Result{Status: StatusSuccess}
	})
	return res.(Result).Status
}

// RegSetValueEx writes a value, creating the key if needed.
func (c *Context) RegSetValueEx(path, name string, v winsim.Value) Status {
	res := c.invoke("RegSetValueEx", []any{path, name, v}, func() any {
		err := c.M.Registry.SetValue(path, name, v)
		c.M.Record(trace.Event{
			Kind: trace.KindRegSetValue, PID: c.P.PID, Image: c.P.Image,
			Target: path, Detail: "value=" + name, Success: err == nil,
		})
		if err != nil {
			return Result{Status: StatusInvalidParam}
		}
		return Result{Status: StatusSuccess}
	})
	return res.(Result).Status
}

// RegDeleteKey removes a key and its subtree.
func (c *Context) RegDeleteKey(path string) Status {
	res := c.invoke("RegDeleteKey", []any{path}, func() any {
		ok := c.M.Registry.DeleteKey(path)
		c.M.Record(trace.Event{
			Kind: trace.KindRegDeleteKey, PID: c.P.PID, Image: c.P.Image,
			Target: path, Success: ok,
		})
		if !ok {
			return Result{Status: StatusFileNotFound}
		}
		return Result{Status: StatusSuccess}
	})
	return res.(Result).Status
}

package winapi

import (
	"fmt"
	"strings"
	"time"

	"scarecrow/internal/trace"
	"scarecrow/internal/winsim"
)

// ExitCode values programs conventionally return.
const (
	ExitOK      = 0
	ExitFailure = 1
)

// Program is the body of a simulated executable. It runs when the scheduler
// dispatches a process whose image the program is registered under, and
// returns the process exit code. Programs observe the machine exclusively
// through the Context's API surface (plus the modeled direct-memory and
// direct-syscall bypasses).
type Program func(ctx *Context) int

// Context is the view one process has of the system: the API surface bound
// to a (machine, process) pair.
type Context struct {
	// M is the underlying machine and P the calling process.
	M *winsim.Machine
	P *winsim.Process

	sys *System
}

// System returns the owning System (used by deployment frameworks such as
// the Scarecrow controller to install hooks and launch children).
func (c *Context) System() *System { return c.sys }

func (c *Context) recordAPICall(name string) {
	c.M.Record(trace.Event{
		Kind: trace.KindAPICall, PID: c.P.PID, Image: c.P.Image,
		Target: name, Success: true,
	})
}

// queueEntry is one pending process execution.
type queueEntry struct {
	proc *winsim.Process
}

// System owns the user-mode world of one machine: registered program
// images, per-process hook state, and the deterministic run queue.
type System struct {
	// M is the machine this system runs on.
	M *winsim.Machine

	programs map[string]Program // normalized image path -> body
	states   map[int]*procState
	queue    []queueEntry
	// kernelHooks is the machine-wide syscall-gate hook table (see
	// kernelhooks.go); nil until the first InstallKernelHook.
	kernelHooks map[string][]HookHandler

	// ChildLaunched, when non-nil, is called after a process is created
	// and queued, before it runs. The Scarecrow controller uses it to
	// follow injection into descendants of the target.
	ChildLaunched func(parent, child *winsim.Process)

	// MaxProcesses bounds the number of processes one Run may execute, as
	// a backstop against runaway fork bombs.
	MaxProcesses int

	// Enforcer, when non-nil, is consulted before every API call with the
	// calling PID and API name; its decision is applied at that boundary
	// (see enforce.go). The real-time deterrence tier installs it to kill,
	// throttle, or isolate a flagged payload mid-run. Nil costs nothing.
	Enforcer func(pid int, api string) Enforcement

	// monitor is the environment's own analysis-monitor hook table (e.g.
	// the Cuckoo in-guest monitor), built once from the machine profile
	// and attached to every process created later; nil when the profile
	// monitors nothing.
	monitor *HookTable

	executed int
}

// monitorPassthrough is the body of every environment-monitor hook: the
// sandbox's monitor observes, it does not rewrite.
func monitorPassthrough(c *Context, call *Call) any { return call.Original() }

// NewSystem wraps a machine with an empty user-mode world. The machine's
// MonitorHookedAPIs (its own analysis monitor, e.g. the Cuckoo in-guest
// monitor) are materialized as pass-through hooks in every process created
// later.
func NewSystem(m *winsim.Machine) *System {
	s := &System{
		M:            m,
		programs:     make(map[string]Program),
		states:       make(map[int]*procState),
		MaxProcesses: 20000,
	}
	if len(m.MonitorHookedAPIs) > 0 {
		s.monitor = NewHookTable()
		for _, api := range m.MonitorHookedAPIs {
			// Unchecked install: profile data is not a deployment and must
			// not make machine construction fallible.
			s.monitor.hook(api, monitorPassthrough)
		}
	}
	return s
}

func (s *System) stateFor(pid int) *procState {
	st, ok := s.states[pid]
	if !ok {
		st = newProcState()
		s.states[pid] = st
		// The environment's own monitor hooks every analyzed process.
		if s.monitor != nil {
			st.tables = append(st.tables, s.monitor)
		}
	}
	return st
}

// ProcData returns the per-process data map hook packages may use.
func (s *System) ProcData(pid int) map[string]any {
	st := s.stateFor(pid)
	if st.Data == nil {
		st.Data = make(map[string]any)
	}
	return st.Data
}

// RegisterProgram binds a program body to an executable image path. The
// same body runs for every process created from that image (including
// self-spawns).
func (s *System) RegisterProgram(image string, body Program) {
	s.programs[winsim.NormalizePath(image)] = body
}

// ProgramFor returns the body registered for an image, if any.
func (s *System) ProgramFor(image string) (Program, bool) {
	p, ok := s.programs[winsim.NormalizePath(image)]
	return p, ok
}

// Launch creates a process for the image (emitting the kernel event) and
// queues it for execution. parent may be nil for top-level launches.
func (s *System) Launch(image, cmdline string, parent *winsim.Process) *winsim.Process {
	child := s.M.SpawnProcess(image, cmdline, parent)
	s.queue = append(s.queue, queueEntry{proc: child})
	if s.ChildLaunched != nil && parent != nil {
		s.ChildLaunched(parent, child)
	}
	return child
}

// Context builds an API context for an existing process.
func (s *System) Context(p *winsim.Process) *Context {
	return &Context{M: s.M, P: p, sys: s}
}

// exitPanic unwinds a program body when it calls ExitProcess.
type exitPanic struct{ code int }

// Run executes queued processes in FIFO order until the queue drains or the
// virtual time budget expires. It returns the number of processes that ran
// (fully or partially). Processes still on the queue or cut off mid-body
// when the budget expires remain in ProcessRunning/ProcessPending state —
// the same truncation a one-minute sandbox observation window imposes.
func (s *System) Run(budget time.Duration) int {
	deadline := s.M.Clock.Now() + budget
	s.M.Clock.SetDeadline(deadline)
	defer s.M.Clock.SetDeadline(0)

	ran := 0
	for len(s.queue) > 0 {
		if s.executed >= s.MaxProcesses {
			break
		}
		entry := s.queue[0]
		s.queue = s.queue[1:]
		if entry.proc.State == winsim.ProcessExited {
			continue // killed (e.g. by a mitigation policy) before it ran
		}
		s.executed++
		ran++
		if expired := s.runOne(entry.proc); expired {
			break
		}
	}
	return ran
}

// runOne executes a single process body, returning true when the time
// budget expired during the run.
func (s *System) runOne(p *winsim.Process) (expired bool) {
	p.State = winsim.ProcessRunning
	ctx := s.Context(p)

	body, registered := s.programs[winsim.NormalizePath(p.Image)]

	defer func() {
		r := recover()
		switch v := r.(type) {
		case nil:
		case exitPanic:
			s.M.ExitProcess(p, v.code)
		case winsim.BudgetExceeded:
			expired = true // process was still running when the window closed
		default:
			panic(v)
		}
	}()

	s.M.Clock.Advance(processStartupCost)
	if !registered {
		// Unregistered images (dropped binaries with no modeled body) start
		// and exit cleanly; their creation is what the traces care about.
		s.M.ExitProcess(p, ExitOK)
		return false
	}
	code := body(ctx)
	s.M.ExitProcess(p, code)
	return false
}

// QueueLen returns the number of processes waiting to run.
func (s *System) QueueLen() int { return len(s.queue) }

// ExecutedCount returns how many processes have been dispatched so far.
func (s *System) ExecutedCount() int { return s.executed }

// String summarizes the system state for debugging.
func (s *System) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "system profile=%s queued=%d executed=%d programs=%d",
		s.M.Profile, len(s.queue), s.executed, len(s.programs))
	return sb.String()
}

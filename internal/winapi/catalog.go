package winapi

import (
	"sort"
	"time"
)

// apiMeta describes one modeled API function: its virtual call cost and
// whether user-level hooks can intercept it at all.
type apiMeta struct {
	// cost is the virtual time one call consumes.
	cost time.Duration
	// hookable marks APIs reachable by user-level inline hooking. Direct
	// memory reads and raw instructions are modeled elsewhere and never
	// appear here.
	hookable bool
}

// Catalog of every API the simulation models. Hook installation validates
// names against this table, so a typo in a deceptive-resource hook fails
// loudly instead of silently never firing.
var apiCatalog = map[string]apiMeta{
	// Registry (advapi32 + ntdll).
	"RegOpenKeyEx":    {cost: 60 * time.Microsecond, hookable: true},
	"RegQueryValueEx": {cost: 60 * time.Microsecond, hookable: true},
	"RegEnumKeyEx":    {cost: 60 * time.Microsecond, hookable: true},
	"RegCreateKeyEx":  {cost: 80 * time.Microsecond, hookable: true},
	"RegSetValueEx":   {cost: 80 * time.Microsecond, hookable: true},
	"RegDeleteKey":    {cost: 80 * time.Microsecond, hookable: true},
	"NtOpenKeyEx":     {cost: 40 * time.Microsecond, hookable: true},
	"NtQueryKey":      {cost: 40 * time.Microsecond, hookable: true},
	"NtQueryValueKey": {cost: 40 * time.Microsecond, hookable: true},
	"NtEnumerateKey":  {cost: 40 * time.Microsecond, hookable: true},

	// Files and volumes.
	"CreateFile":            {cost: 120 * time.Microsecond, hookable: true},
	"NtCreateFile":          {cost: 100 * time.Microsecond, hookable: true},
	"NtQueryAttributesFile": {cost: 60 * time.Microsecond, hookable: true},
	"GetFileAttributes":     {cost: 60 * time.Microsecond, hookable: true},
	"WriteFile":             {cost: 200 * time.Microsecond, hookable: true},
	"ReadFile":              {cost: 150 * time.Microsecond, hookable: true},
	"DeleteFile":            {cost: 120 * time.Microsecond, hookable: true},
	"FindFirstFile":         {cost: 120 * time.Microsecond, hookable: true},
	"GetDiskFreeSpaceEx":    {cost: 80 * time.Microsecond, hookable: true},
	"GetVolumeInformation":  {cost: 80 * time.Microsecond, hookable: true},
	"GetDriveType":          {cost: 40 * time.Microsecond, hookable: true},

	// Processes, modules, threads.
	"CreateProcess":             {cost: 30 * time.Millisecond, hookable: true},
	"ShellExecuteExW":           {cost: 35 * time.Millisecond, hookable: true},
	"ExitProcess":               {cost: 500 * time.Microsecond, hookable: true},
	"TerminateProcess":          {cost: 1 * time.Millisecond, hookable: true},
	"OpenProcess":               {cost: 80 * time.Microsecond, hookable: true},
	"CreateToolhelp32Snapshot":  {cost: 2 * time.Millisecond, hookable: true},
	"GetCurrentProcessId":       {cost: 1 * time.Microsecond, hookable: true},
	"GetModuleFileName":         {cost: 30 * time.Microsecond, hookable: true},
	"GetCommandLine":            {cost: 1 * time.Microsecond, hookable: true},
	"GetModuleHandle":           {cost: 20 * time.Microsecond, hookable: true},
	"LoadLibrary":               {cost: 2 * time.Millisecond, hookable: true},
	"GetProcAddress":            {cost: 20 * time.Microsecond, hookable: true},
	"NtQueryInformationProcess": {cost: 50 * time.Microsecond, hookable: true},
	"Sleep":                     {cost: 5 * time.Microsecond, hookable: true},
	"WaitForSingleObject":       {cost: 20 * time.Microsecond, hookable: true},

	// Debugger and timing.
	"IsDebuggerPresent":           {cost: 1 * time.Microsecond, hookable: true},
	"CheckRemoteDebuggerPresent":  {cost: 40 * time.Microsecond, hookable: true},
	"OutputDebugString":           {cost: 30 * time.Microsecond, hookable: true},
	"GetTickCount":                {cost: 1 * time.Microsecond, hookable: true},
	"QueryPerformanceCounter":     {cost: 2 * time.Microsecond, hookable: true},
	"SetUnhandledExceptionFilter": {cost: 20 * time.Microsecond, hookable: true},
	"RaiseException":              {cost: 150 * time.Microsecond, hookable: true},

	// System information.
	"GetSystemInfo":            {cost: 20 * time.Microsecond, hookable: true},
	"GlobalMemoryStatusEx":     {cost: 30 * time.Microsecond, hookable: true},
	"GetComputerName":          {cost: 20 * time.Microsecond, hookable: true},
	"GetUserName":              {cost: 20 * time.Microsecond, hookable: true},
	"GetVersionEx":             {cost: 20 * time.Microsecond, hookable: true},
	"NtQuerySystemInformation": {cost: 120 * time.Microsecond, hookable: true},
	"GetAdaptersInfo":          {cost: 300 * time.Microsecond, hookable: true},
	"IsNativeVhdBoot":          {cost: 30 * time.Microsecond, hookable: true},
	"GetCursorPos":             {cost: 10 * time.Microsecond, hookable: true},
	"EvtNext":                  {cost: 500 * time.Microsecond, hookable: true},
	"DnsGetCacheDataTable":     {cost: 300 * time.Microsecond, hookable: true},
	"WMIQuery":                 {cost: 5 * time.Millisecond, hookable: false}, // COM transport, not a Win32 export

	// Network.
	"DnsQuery":        {cost: 5 * time.Millisecond, hookable: true},
	"getaddrinfo":     {cost: 5 * time.Millisecond, hookable: true},
	"InternetOpenUrl": {cost: 40 * time.Millisecond, hookable: true},
	"connect":         {cost: 10 * time.Millisecond, hookable: true},

	// GUI.
	"FindWindow":  {cost: 100 * time.Microsecond, hookable: true},
	"EnumWindows": {cost: 400 * time.Microsecond, hookable: true},
}

// APIKnown reports whether the catalog models the named API.
func APIKnown(name string) bool {
	_, ok := apiCatalog[name]
	return ok
}

// APINames returns all modeled API names, sorted: the list feeds verdict
// documents and check catalogs, which must replay byte-identical.
func APINames() []string {
	out := make([]string, 0, len(apiCatalog))
	for n := range apiCatalog {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Modeled instruction-level costs (not hookable; they are raw instructions,
// not API calls).
const (
	processStartupCost = 60 * time.Millisecond
	memoryReadCost     = 200 * time.Nanosecond
	directSyscallCost  = 30 * time.Microsecond
)

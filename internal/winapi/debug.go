package winapi

import (
	"time"

	"scarecrow/internal/winsim"
)

// IsDebuggerPresent reads the PEB BeingDebugged flag through the API —
// the single most common evasion probe in the paper's corpus (815 of the
// 823 self-spawning MalGene samples call it).
func (c *Context) IsDebuggerPresent() bool {
	res := c.invoke("IsDebuggerPresent", nil, func() any {
		return Result{Status: StatusSuccess, Bool: c.P.PEB.BeingDebugged}
	})
	return res.(Result).Bool
}

// CheckRemoteDebuggerPresent asks the kernel whether a debugger is attached
// to the process.
func (c *Context) CheckRemoteDebuggerPresent() bool {
	res := c.invoke("CheckRemoteDebuggerPresent", nil, func() any {
		return Result{Status: StatusSuccess, Bool: c.M.DebuggerAttachedPIDs[c.P.PID]}
	})
	return res.(Result).Bool
}

// QueryDebugPort is NtQueryInformationProcess(ProcessDebugPort): non-zero
// when a debugger is attached.
func (c *Context) QueryDebugPort() (uint64, Status) {
	res := c.invoke("NtQueryInformationProcess", []any{"ProcessDebugPort"}, func() any {
		var port uint64
		if c.M.DebuggerAttachedPIDs[c.P.PID] {
			port = 0xdeb9
		}
		return Result{Status: StatusSuccess, Num: port}
	})
	r := res.(Result)
	return r.Num, r.Status
}

// OutputDebugString emits a debug string; under a real debugger the call
// behaves differently, but no evaluated profile attaches one.
func (c *Context) OutputDebugString(s string) {
	c.invoke("OutputDebugString", []any{s}, func() any {
		return Result{Status: StatusSuccess}
	})
}

// GetTickCount returns the system uptime in milliseconds. Low uptime is a
// sandbox tell (machines reset before every sample); Scarecrow's hook
// returns deceptively small values (Table I: sample ad0d7d0's trigger).
func (c *Context) GetTickCount() uint64 {
	res := c.invoke("GetTickCount", nil, func() any {
		return Result{Status: StatusSuccess, Num: c.M.Clock.TickCount()}
	})
	return res.(Result).Num
}

// QueryPerformanceCounter returns a high-resolution timestamp in virtual
// nanoseconds.
func (c *Context) QueryPerformanceCounter() uint64 {
	res := c.invoke("QueryPerformanceCounter", nil, func() any {
		return Result{Status: StatusSuccess, Num: uint64(c.M.Clock.Uptime())}
	})
	return res.(Result).Num
}

// RDTSC executes the rdtsc instruction. It is not an API call: it cannot
// be hooked from user mode, which is why the paper's implementation does
// not handle timing-based checks.
func (c *Context) RDTSC() uint64 {
	return c.M.HW.RDTSC(c.M.Clock)
}

// CPUID executes the cpuid instruction (unhookable, like RDTSC).
func (c *Context) CPUID() winsim.CPUIDResult {
	return c.M.HW.CPUID(c.M.Clock)
}

// SetUnhandledExceptionFilter registers an exception filter; modeled as a
// timing-relevant no-op.
func (c *Context) SetUnhandledExceptionFilter() {
	c.invoke("SetUnhandledExceptionFilter", nil, func() any {
		return Result{Status: StatusSuccess}
	})
}

// RaiseException dispatches a software exception through the default
// handling path and returns the virtual time the dispatch consumed.
// Debuggers and shadow-page analysis systems inflate this cost; §II-B(g)
// of the paper has Scarecrow inject a deceptive discrepancy here.
func (c *Context) RaiseException() time.Duration {
	start := c.M.Clock.Now()
	c.invoke("RaiseException", nil, func() any {
		return Result{Status: StatusSuccess}
	})
	return c.M.Clock.Now() - start
}

// ReadPEB returns a copy of the process environment block read directly
// from process memory. No API is involved: hooks never see it. This is the
// bypass that defeated Scarecrow for sample cbdda64 in Table I.
func (c *Context) ReadPEB() winsim.PEB {
	c.M.Clock.Advance(memoryReadCost)
	return c.P.PEB
}

// DirectSyscall issues the named Nt* system call through a raw syscall
// stub instead of the ntdll export, skipping every USER-MODE hook — the
// hook-bypass route §VI-A of the paper acknowledges. It still crosses the
// kernel syscall gate, so kernel-level hooks (the paper's future-work
// extension) do intercept it. Only native-layer calls can be issued this
// way.
func (c *Context) DirectSyscall(name string, args ...any) any {
	c.M.Clock.Advance(directSyscallCost)
	genuine := func() any {
		switch name {
		case "NtOpenKeyEx":
			if c.M.Registry.KeyExists(str(args, 0)) {
				return Result{Status: StatusSuccess}
			}
			return Result{Status: StatusFileNotFound}
		case "NtQueryAttributesFile":
			if c.M.FS.Exists(str(args, 0)) {
				return Result{Status: StatusSuccess}
			}
			return Result{Status: StatusFileNotFound}
		case "NtQuerySystemInformation":
			return c.genuineSystemInformation(str(args, 0))
		default:
			return Result{Status: StatusNotSupported}
		}
	}
	res, ok := c.dispatchSyscall(name, args, genuine).(Result)
	if !ok {
		return StatusInvalidParam
	}
	switch name {
	case "NtQuerySystemInformation":
		return res.Num
	default:
		return res.Status
	}
}

func str(args []any, i int) string {
	if i >= len(args) {
		return ""
	}
	s, _ := args[i].(string)
	return s
}

// Package winapi is the user-mode API surface that programs — malware
// specimens, benign software, fingerprinting tools, and Scarecrow itself —
// use to observe and mutate a simulated Windows machine (internal/winsim).
//
// The package reproduces the two mechanisms the paper's realization rests
// on (Section III):
//
//   - Per-process inline hooking with modeled function prologues: installing
//     a hook rewrites the first bytes of the target function from the
//     classic "mov edi,edi; push ebp; mov ebp,esp" hot-patch prologue to a
//     JMP, exactly the artifact anti-hooking malware looks for (Figure 1 of
//     the paper). Hook handlers can inspect arguments, manipulate results,
//     and call through to the original function.
//
//   - A deterministic cooperative scheduler that launches program bodies as
//     simulated processes, bounds each run by a virtual time budget, and
//     propagates created child processes (so DLL-injection style deployment
//     can follow process trees).
//
// Direct-memory PEB reads and direct syscalls are modeled as explicit
// bypass routes that skip hook chains, preserving the limitations the paper
// reports for user-level hooking.
package winapi

import "strconv"

// Status is a simplified Win32/NTSTATUS result code.
type Status int

// Status codes used across the API surface. Values follow Win32 error
// numbers where one exists.
const (
	StatusSuccess        Status = 0
	StatusFileNotFound   Status = 2
	StatusAccessDenied   Status = 5
	StatusInvalidParam   Status = 87
	StatusNotSupported   Status = 50
	StatusNoMoreItems    Status = 259
	StatusNotFound       Status = 1168
	StatusHostNotFound   Status = 11001
	StatusTimeout        Status = 1460
	StatusInvalidHandle  Status = 6
	StatusAlreadyExists  Status = 183
	StatusWriteProtected Status = 19
)

// OK reports whether the status is success.
func (s Status) OK() bool { return s == StatusSuccess }

// String renders the status code.
func (s Status) String() string {
	switch s {
	case StatusSuccess:
		return "SUCCESS"
	case StatusFileNotFound:
		return "ERROR_FILE_NOT_FOUND"
	case StatusAccessDenied:
		return "ERROR_ACCESS_DENIED"
	case StatusInvalidParam:
		return "ERROR_INVALID_PARAMETER"
	case StatusNotSupported:
		return "ERROR_NOT_SUPPORTED"
	case StatusNoMoreItems:
		return "ERROR_NO_MORE_ITEMS"
	case StatusNotFound:
		return "ERROR_NOT_FOUND"
	case StatusHostNotFound:
		return "WSAHOST_NOT_FOUND"
	case StatusTimeout:
		return "ERROR_TIMEOUT"
	case StatusInvalidHandle:
		return "ERROR_INVALID_HANDLE"
	case StatusAlreadyExists:
		return "ERROR_ALREADY_EXISTS"
	case StatusWriteProtected:
		return "ERROR_WRITE_PROTECT"
	default:
		return "ERROR_" + strconv.Itoa(int(s))
	}
}

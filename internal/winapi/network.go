package winapi

import (
	"scarecrow/internal/trace"
)

// DnsQuery resolves a domain name, emitting the DNSQuery kernel event.
// Whether non-existent domains resolve is the environment signal WannaCry's
// kill switch keys on: sinkholing sandboxes answer, real networks do not.
func (c *Context) DnsQuery(domain string) (string, Status) {
	res := c.invoke("DnsQuery", []any{domain}, func() any {
		return c.genuineResolve(domain)
	})
	r := res.(Result)
	return r.Str, r.Status
}

// Getaddrinfo is the socket-layer resolution path; same semantics as
// DnsQuery, separately hookable.
func (c *Context) Getaddrinfo(domain string) (string, Status) {
	res := c.invoke("getaddrinfo", []any{domain}, func() any {
		return c.genuineResolve(domain)
	})
	r := res.(Result)
	return r.Str, r.Status
}

func (c *Context) genuineResolve(domain string) Result {
	addr, ok := c.M.Net.Resolve(domain)
	c.M.Record(trace.Event{
		Kind: trace.KindDNSQuery, PID: c.P.PID, Image: c.P.Image,
		Target: domain, Detail: "addr=" + addr, Success: ok,
	})
	if !ok {
		return Result{Status: StatusHostNotFound}
	}
	return Result{Status: StatusSuccess, Str: addr}
}

// InternetOpenUrl performs an HTTP GET against a resolved address,
// returning 200 when something answers.
func (c *Context) InternetOpenUrl(addr string) (int, Status) {
	res := c.invoke("InternetOpenUrl", []any{addr}, func() any {
		ok := c.M.Net.HTTPGet(addr)
		c.M.Record(trace.Event{
			Kind: trace.KindHTTPRequest, PID: c.P.PID, Image: c.P.Image,
			Target: addr, Success: ok,
		})
		if !ok {
			return Result{Status: StatusTimeout}
		}
		return Result{Status: StatusSuccess, Code: 200}
	})
	r := res.(Result)
	return r.Code, r.Status
}

// Connect opens a TCP connection to an address.
func (c *Context) Connect(addr string) Status {
	res := c.invoke("connect", []any{addr}, func() any {
		ok := c.M.Net.HTTPGet(addr)
		c.M.Record(trace.Event{
			Kind: trace.KindTCPConnect, PID: c.P.PID, Image: c.P.Image,
			Target: addr, Success: ok,
		})
		if !ok {
			return Result{Status: StatusTimeout}
		}
		return Result{Status: StatusSuccess}
	})
	return res.(Result).Status
}

package trace

import "testing"

// The tap is the real-time deterrence tier's view of the trace: it must
// see every event, in order, synchronously with Record.
func TestTapObservesEveryEventInOrder(t *testing.T) {
	r := NewRecorder()
	defer r.Release()

	var seen []Event
	r.Tap(func(e Event) { seen = append(seen, e) })
	for i := 0; i < 10; i++ {
		r.Record(Event{Kind: KindFileWrite, PID: i, Target: "x"})
	}
	if len(seen) != 10 {
		t.Fatalf("tap saw %d events, want 10", len(seen))
	}
	for i, e := range seen {
		if e.PID != i {
			t.Fatalf("tap event %d has PID %d, want %d (order broken)", i, e.PID, i)
		}
	}
	if r.Len() != 10 {
		t.Fatalf("recorder holds %d events, want 10 (tap must not replace recording)", r.Len())
	}
}

func TestTapNilUninstalls(t *testing.T) {
	r := NewRecorder()
	defer r.Release()

	calls := 0
	r.Tap(func(Event) { calls++ })
	r.Record(Event{Kind: KindFileRead})
	r.Tap(nil)
	r.Record(Event{Kind: KindFileRead})
	if calls != 1 {
		t.Fatalf("tap called %d times, want 1 (nil must uninstall)", calls)
	}
}

// Release returns recorders to the package pool; a future NewRecorder call
// that happens to reuse one must never inherit a previous run's observer.
func TestReleaseClearsTap(t *testing.T) {
	calls := 0
	r := NewRecorder()
	r.Tap(func(Event) { calls++ })
	r.Release()

	// Drain the pool until we (very likely) get the same recorder back;
	// either way, no recorder from the pool may carry a tap.
	for i := 0; i < 8; i++ {
		nr := NewRecorder()
		nr.Record(Event{Kind: KindAPICall})
		nr.Release()
	}
	if calls != 0 {
		t.Fatalf("released recorder's tap fired %d times after Release", calls)
	}
}

// A clone is a different run: it copies events, not the observer.
func TestCloneDoesNotCopyTap(t *testing.T) {
	r := NewRecorder()
	defer r.Release()

	calls := 0
	r.Tap(func(Event) { calls++ })
	r.Record(Event{Kind: KindFileWrite})

	nr := r.Clone()
	defer nr.Release()
	nr.Record(Event{Kind: KindFileWrite})
	if calls != 1 {
		t.Fatalf("tap fired %d times, want 1 (clone must not inherit the tap)", calls)
	}
	if nr.Len() != 2 {
		t.Fatalf("clone holds %d events, want 2", nr.Len())
	}
}

// Package trace models the kernel activity stream that the evaluation
// harness records for every execution, mirroring the role Fibratus plays in
// the paper's experiment environment (Figure 3). Events cover process and
// thread lifecycle, file system I/O, registry operations, DLL
// loading/unloading, and network activity.
//
// The package also provides trace comparison primitives: the paper's
// deactivation verdicts are computed by diffing the trace of a sample run
// without Scarecrow against the trace of the same sample run with Scarecrow
// (Section IV-C).
package trace

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"
)

// Kind identifies the class of a kernel event.
type Kind int

// Event kinds, one per kernel activity class traced by the harness.
const (
	KindProcessCreate Kind = iota + 1
	KindProcessExit
	KindThreadCreate
	KindThreadExit
	KindFileCreate
	KindFileWrite
	KindFileRead
	KindFileDelete
	KindFileQuery
	KindRegOpenKey
	KindRegCreateKey
	KindRegQueryValue
	KindRegSetValue
	KindRegDeleteKey
	KindRegDeleteValue
	KindRegEnumKey
	KindImageLoad
	KindImageUnload
	KindDNSQuery
	KindTCPConnect
	KindHTTPRequest
	KindAPICall
	KindProcessInject
	KindWindowQuery
	KindAlert
)

var kindNames = map[Kind]string{
	KindProcessCreate:  "ProcessCreate",
	KindProcessExit:    "ProcessExit",
	KindThreadCreate:   "ThreadCreate",
	KindThreadExit:     "ThreadExit",
	KindFileCreate:     "FileCreate",
	KindFileWrite:      "FileWrite",
	KindFileRead:       "FileRead",
	KindFileDelete:     "FileDelete",
	KindFileQuery:      "FileQuery",
	KindRegOpenKey:     "RegOpenKey",
	KindRegCreateKey:   "RegCreateKey",
	KindRegQueryValue:  "RegQueryValue",
	KindRegSetValue:    "RegSetValue",
	KindRegDeleteKey:   "RegDeleteKey",
	KindRegDeleteValue: "RegDeleteValue",
	KindRegEnumKey:     "RegEnumKey",
	KindImageLoad:      "ImageLoad",
	KindImageUnload:    "ImageUnload",
	KindDNSQuery:       "DNSQuery",
	KindTCPConnect:     "TCPConnect",
	KindHTTPRequest:    "HTTPRequest",
	KindAPICall:        "APICall",
	KindProcessInject:  "ProcessInject",
	KindWindowQuery:    "WindowQuery",
	KindAlert:          "Alert",
}

// String returns the human-readable name of the event kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// MarshalJSON encodes the kind by name ("FileWrite"), never by ordinal:
// verdict documents served over the wire must stay stable when new kinds
// are inserted into the enum.
func (k Kind) MarshalJSON() ([]byte, error) {
	name, ok := kindNames[k]
	if !ok {
		return nil, fmt.Errorf("trace: kind %d has no name; extend kindNames", int(k))
	}
	return json.Marshal(name)
}

// UnmarshalJSON decodes a kind from its name.
func (k *Kind) UnmarshalJSON(data []byte) error {
	var name string
	if err := json.Unmarshal(data, &name); err != nil {
		return fmt.Errorf("trace: decoding kind: %w", err)
	}
	kind, ok := kindByName[name]
	if !ok {
		return fmt.Errorf("trace: unknown event kind %q", name)
	}
	*k = kind
	return nil
}

// Event is a single kernel activity record.
type Event struct {
	// Time is the virtual timestamp at which the event occurred.
	Time time.Duration
	// Kind classifies the event.
	Kind Kind
	// PID and Image identify the acting process.
	PID   int
	Image string
	// Target names the object the event acted on: a file path, registry
	// key, image name, domain, address, API name, or child image.
	Target string
	// Detail carries event-specific extra data (value names, byte counts,
	// status codes) in "k=v" form.
	Detail string
	// Success records whether the underlying operation succeeded.
	Success bool
}

// String renders the event in a compact single-line form suitable for logs.
func (e Event) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-12s %-14s pid=%d image=%s target=%q", e.Time, e.Kind, e.PID, e.Image, e.Target)
	if e.Detail != "" {
		sb.WriteString(" ")
		sb.WriteString(e.Detail)
	}
	if !e.Success {
		sb.WriteString(" status=failed")
	}
	return sb.String()
}

// Mutating reports whether the event represents a durable change to system
// state (process creation, file writes/deletes, registry modifications).
// Mutating events are the "significant activities" the paper's verdict logic
// compares across runs.
func (e Event) Mutating() bool {
	switch e.Kind {
	case KindProcessCreate, KindFileCreate, KindFileWrite, KindFileDelete,
		KindRegCreateKey, KindRegSetValue, KindRegDeleteKey, KindRegDeleteValue,
		KindProcessInject:
		return e.Success
	default:
		return false
	}
}

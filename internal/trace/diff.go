package trace

import (
	"fmt"
	"sort"
	"strings"
)

// Summary condenses a trace into the significant-activity sets the paper's
// verdict logic works with (Section IV-C): processes created, files
// written/created/deleted, and registry keys/values modified. Self-spawn
// counts are tracked separately because a self-spawning loop is itself a
// deactivation signal under Scarecrow.
// The JSON field names are part of scarecrowd's verdict wire format;
// encoding/json emits map keys sorted, so two summaries of the same
// execution always serialize byte-identically.
type Summary struct {
	// ProcessesCreated maps child image name (lowercased) to creation count,
	// excluding self-spawns of the root image.
	ProcessesCreated map[string]int `json:"processes_created,omitempty"`
	// SelfSpawns counts creations of processes whose image equals the
	// spawning process's own image.
	SelfSpawns int `json:"self_spawns,omitempty"`
	// FilesWritten maps file paths (lowercased) written or created.
	FilesWritten map[string]int `json:"files_written,omitempty"`
	// FilesDeleted maps file paths (lowercased) deleted.
	FilesDeleted map[string]int `json:"files_deleted,omitempty"`
	// RegistryModified maps modified registry keys (lowercased) to the
	// number of set/create/delete operations against them.
	RegistryModified map[string]int `json:"registry_modified,omitempty"`
	// Injections counts process-injection events.
	Injections int `json:"injections,omitempty"`
	// APICalls maps API names to invocation counts.
	APICalls map[string]int `json:"api_calls,omitempty"`
	// DNSQueries maps queried domains (lowercased) to counts.
	DNSQueries map[string]int `json:"dns_queries,omitempty"`
}

// Summarize builds a Summary from a sequence of events.
func Summarize(events []Event) Summary {
	s := Summary{
		ProcessesCreated: make(map[string]int),
		FilesWritten:     make(map[string]int),
		FilesDeleted:     make(map[string]int),
		RegistryModified: make(map[string]int),
		APICalls:         make(map[string]int),
		DNSQueries:       make(map[string]int),
	}
	for _, e := range events {
		if !e.Success && e.Kind != KindAPICall && e.Kind != KindDNSQuery {
			continue
		}
		switch e.Kind {
		case KindProcessCreate:
			child := strings.ToLower(baseName(e.Target))
			parent := strings.ToLower(baseName(e.Image))
			if child == parent {
				s.SelfSpawns++
			} else {
				s.ProcessesCreated[child]++
			}
		case KindFileCreate, KindFileWrite:
			s.FilesWritten[strings.ToLower(e.Target)]++
		case KindFileDelete:
			s.FilesDeleted[strings.ToLower(e.Target)]++
		case KindRegCreateKey, KindRegSetValue, KindRegDeleteKey, KindRegDeleteValue:
			s.RegistryModified[strings.ToLower(e.Target)]++
		case KindProcessInject:
			s.Injections++
		case KindAPICall:
			s.APICalls[e.Target]++
		case KindDNSQuery:
			s.DNSQueries[strings.ToLower(e.Target)]++
		}
	}
	return s
}

// Mutations returns the count of all durable state changes in the summary,
// excluding self-spawns.
func (s Summary) Mutations() int {
	n := s.Injections
	for _, c := range s.ProcessesCreated {
		n += c
	}
	for _, c := range s.FilesWritten {
		n += c
	}
	for _, c := range s.FilesDeleted {
		n += c
	}
	for _, c := range s.RegistryModified {
		n += c
	}
	return n
}

// Diff describes the significant activities present in a baseline trace but
// absent from a protected trace. A non-empty Diff for a malware sample means
// Scarecrow suppressed those activities.
// Every list is sorted (missingKeys sorts), so a Diff serializes
// deterministically — scarecrowd's cached verdicts rely on it.
type Diff struct {
	// MissingProcesses lists child images created in the baseline run but
	// not in the protected run.
	MissingProcesses []string `json:"missing_processes,omitempty"`
	// MissingFileWrites lists files written in the baseline run only.
	MissingFileWrites []string `json:"missing_file_writes,omitempty"`
	// MissingFileDeletes lists files deleted in the baseline run only.
	MissingFileDeletes []string `json:"missing_file_deletes,omitempty"`
	// MissingRegistryMods lists registry keys modified in the baseline run
	// only.
	MissingRegistryMods []string `json:"missing_registry_mods,omitempty"`
	// InjectionsSuppressed is the number of baseline injections with no
	// counterpart in the protected run.
	InjectionsSuppressed int `json:"injections_suppressed,omitempty"`
}

// Empty reports whether the protected run reproduced every significant
// activity of the baseline run.
func (d Diff) Empty() bool {
	return len(d.MissingProcesses) == 0 &&
		len(d.MissingFileWrites) == 0 &&
		len(d.MissingFileDeletes) == 0 &&
		len(d.MissingRegistryMods) == 0 &&
		d.InjectionsSuppressed == 0
}

// String renders the diff as a short multi-line report.
func (d Diff) String() string {
	if d.Empty() {
		return "no suppressed activities"
	}
	var sb strings.Builder
	writeList := func(label string, items []string) {
		if len(items) == 0 {
			return
		}
		fmt.Fprintf(&sb, "%s: %s\n", label, strings.Join(items, ", "))
	}
	writeList("suppressed processes", d.MissingProcesses)
	writeList("suppressed file writes", d.MissingFileWrites)
	writeList("suppressed file deletes", d.MissingFileDeletes)
	writeList("suppressed registry mods", d.MissingRegistryMods)
	if d.InjectionsSuppressed > 0 {
		fmt.Fprintf(&sb, "suppressed injections: %d\n", d.InjectionsSuppressed)
	}
	return strings.TrimRight(sb.String(), "\n")
}

// Compare diffs a baseline summary (without Scarecrow) against a protected
// summary (with Scarecrow) and reports the baseline activities missing from
// the protected run.
func Compare(baseline, protected Summary) Diff {
	var d Diff
	d.MissingProcesses = missingKeys(baseline.ProcessesCreated, protected.ProcessesCreated)
	d.MissingFileWrites = missingKeys(baseline.FilesWritten, protected.FilesWritten)
	d.MissingFileDeletes = missingKeys(baseline.FilesDeleted, protected.FilesDeleted)
	d.MissingRegistryMods = missingKeys(baseline.RegistryModified, protected.RegistryModified)
	if baseline.Injections > protected.Injections {
		d.InjectionsSuppressed = baseline.Injections - protected.Injections
	}
	return d
}

func missingKeys(baseline, protected map[string]int) []string {
	var out []string
	for k := range baseline {
		if protected[k] == 0 {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

func baseName(path string) string {
	if i := strings.LastIndexAny(path, `\/`); i >= 0 {
		return path[i+1:]
	}
	return path
}

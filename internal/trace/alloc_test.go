package trace

import (
	"testing"
	"time"
)

// Record must be allocation-free once the event array has grown to the
// run's working size — the recorder pool exists precisely so that a
// machine execution recording thousands of events reuses the previous
// run's backing array instead of re-growing it.
func TestRecordAllocBudget(t *testing.T) {
	r := NewRecorder()
	defer r.Release()
	ev := Event{Kind: KindFileRead, PID: 4242, Target: `C:\sample.exe`, Time: time.Millisecond}
	// Pre-grow well past what the measurement loop appends so the only
	// allocations AllocsPerRun can see are genuine regressions (a copy or
	// boxing on the Record path), not amortized slice growth.
	for i := 0; i < 8192; i++ {
		r.Record(ev)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		r.Record(ev)
	})
	if allocs > 0.1 {
		t.Errorf("Recorder.Record allocates %.2f objects/op on the steady state, want 0", allocs)
	}
}

// Release hands the backing array back through the pool: a release/acquire
// cycle must not shrink capacity, and the recycled recorder starts empty.
func TestReleaseRecyclesCapacity(t *testing.T) {
	r := NewRecorder()
	for i := 0; i < 4096; i++ {
		r.Record(Event{Kind: KindProcessCreate, PID: i})
	}
	r.Release()
	nr := NewRecorder()
	defer nr.Release()
	if nr.Len() != 0 {
		t.Fatalf("recycled recorder holds %d stale events", nr.Len())
	}
}

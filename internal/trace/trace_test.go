package trace

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func ev(kind Kind, image, target string) Event {
	return Event{Kind: kind, PID: 100, Image: image, Target: target, Success: true}
}

func TestRecorderBasics(t *testing.T) {
	r := NewRecorder()
	r.Record(ev(KindProcessCreate, `C:\a.exe`, `C:\b.exe`))
	r.Record(Event{Kind: KindFileWrite, Time: 2 * time.Second, PID: 100, Image: `C:\a.exe`, Target: `C:\x.txt`, Success: true})
	if r.Len() != 2 {
		t.Fatalf("Len = %d", r.Len())
	}
	if got := len(r.ByKind(KindFileWrite)); got != 1 {
		t.Errorf("ByKind = %d", got)
	}
	if got := len(r.ByPID(100)); got != 2 {
		t.Errorf("ByPID = %d", got)
	}
	if got := len(r.Since(time.Second)); got != 1 {
		t.Errorf("Since = %d", got)
	}
	events := r.Events()
	events[0].PID = 999 // mutation must not leak back
	if r.Events()[0].PID != 100 {
		t.Error("Events did not copy")
	}
	r.Reset()
	if r.Len() != 0 {
		t.Error("Reset failed")
	}
}

func TestSummarizeSelfSpawnsVsChildren(t *testing.T) {
	events := []Event{
		ev(KindProcessCreate, `C:\mal.exe`, `C:\mal.exe`),
		ev(KindProcessCreate, `C:\mal.exe`, `C:\Users\x\MAL.EXE`), // self-spawn, case/path differ
		ev(KindProcessCreate, `C:\mal.exe`, `C:\Windows\svchost.exe`),
		ev(KindFileWrite, `C:\mal.exe`, `C:\evil.dll`),
		ev(KindRegSetValue, `C:\mal.exe`, `HKLM\Software\Run`),
		{Kind: KindFileWrite, PID: 1, Image: `C:\mal.exe`, Target: `C:\fail.txt`, Success: false},
	}
	s := Summarize(events)
	if s.SelfSpawns != 2 {
		t.Errorf("SelfSpawns = %d, want 2", s.SelfSpawns)
	}
	if s.ProcessesCreated["svchost.exe"] != 1 {
		t.Errorf("ProcessesCreated = %v", s.ProcessesCreated)
	}
	if len(s.FilesWritten) != 1 {
		t.Errorf("FilesWritten = %v (failed writes must not count)", s.FilesWritten)
	}
	if s.Mutations() != 3 { // svchost + evil.dll + reg
		t.Errorf("Mutations = %d, want 3", s.Mutations())
	}
}

func TestCompareDiff(t *testing.T) {
	baseline := Summarize([]Event{
		ev(KindProcessCreate, `C:\mal.exe`, `svchost.exe`),
		ev(KindFileWrite, `C:\mal.exe`, `C:\evil.dll`),
		ev(KindFileDelete, `C:\mal.exe`, `C:\mal.exe`),
		ev(KindRegSetValue, `C:\mal.exe`, `HKLM\Run`),
		ev(KindProcessInject, `C:\mal.exe`, `explorer.exe`),
	})
	protected := Summarize([]Event{
		ev(KindRegSetValue, `C:\mal.exe`, `HKLM\Run`),
	})
	d := Compare(baseline, protected)
	if d.Empty() {
		t.Fatal("diff should not be empty")
	}
	if len(d.MissingProcesses) != 1 || d.MissingProcesses[0] != "svchost.exe" {
		t.Errorf("MissingProcesses = %v", d.MissingProcesses)
	}
	if len(d.MissingFileWrites) != 1 || len(d.MissingFileDeletes) != 1 {
		t.Errorf("file diffs = %v / %v", d.MissingFileWrites, d.MissingFileDeletes)
	}
	if len(d.MissingRegistryMods) != 0 {
		t.Errorf("MissingRegistryMods = %v", d.MissingRegistryMods)
	}
	if d.InjectionsSuppressed != 1 {
		t.Errorf("InjectionsSuppressed = %d", d.InjectionsSuppressed)
	}
	if d.String() == "no suppressed activities" {
		t.Error("String() for non-empty diff")
	}
}

func TestCompareIdenticalTracesEmpty(t *testing.T) {
	events := []Event{
		ev(KindProcessCreate, `C:\b.exe`, `child.exe`),
		ev(KindFileWrite, `C:\b.exe`, `C:\out.txt`),
	}
	d := Compare(Summarize(events), Summarize(events))
	if !d.Empty() {
		t.Errorf("diff of identical traces = %v", d)
	}
	if d.String() != "no suppressed activities" {
		t.Errorf("String = %q", d.String())
	}
}

func TestEventMutating(t *testing.T) {
	tests := []struct {
		e    Event
		want bool
	}{
		{Event{Kind: KindFileWrite, Success: true}, true},
		{Event{Kind: KindFileWrite, Success: false}, false},
		{Event{Kind: KindRegQueryValue, Success: true}, false},
		{Event{Kind: KindProcessCreate, Success: true}, true},
		{Event{Kind: KindAPICall, Success: true}, false},
	}
	for _, tt := range tests {
		if got := tt.e.Mutating(); got != tt.want {
			t.Errorf("Mutating(%v success=%v) = %v", tt.e.Kind, tt.e.Success, got)
		}
	}
}

func TestKindString(t *testing.T) {
	if KindProcessCreate.String() != "ProcessCreate" {
		t.Error("KindProcessCreate name")
	}
	if Kind(999).String() != "Kind(999)" {
		t.Error("unknown kind formatting")
	}
}

// Property: Compare(a, a) is always empty, and a diff never reports more
// missing processes than the baseline created.
func TestCompareProperties(t *testing.T) {
	f := func(targets []uint8) bool {
		var events []Event
		for _, b := range targets {
			events = append(events, ev(KindProcessCreate, `C:\m.exe`, "child"+string(rune('a'+b%5))+".exe"))
		}
		s := Summarize(events)
		if !Compare(s, s).Empty() {
			return false
		}
		d := Compare(s, Summary{ProcessesCreated: map[string]int{}})
		return len(d.MissingProcesses) <= len(s.ProcessesCreated)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	events := []Event{
		{Time: 5 * time.Millisecond, Kind: KindProcessCreate, PID: 40, Image: `C:\a.exe`, Target: `C:\b.exe`, Success: true},
		{Time: 7 * time.Millisecond, Kind: KindRegSetValue, PID: 44, Target: `HKLM\Run`, Detail: "value=X", Success: true},
		{Time: 9 * time.Millisecond, Kind: KindDNSQuery, PID: 44, Target: "c2.example", Success: false},
	}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, events); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(events) {
		t.Fatalf("round trip length %d", len(back))
	}
	for i := range events {
		if back[i] != events[i] {
			t.Errorf("event %d: %+v != %+v", i, back[i], events[i])
		}
	}
}

func TestReadJSONLErrors(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader(`{"kind":"NoSuchKind","pid":1,"ok":true}`)); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, err := ReadJSONL(strings.NewReader(`not json`)); err == nil {
		t.Error("garbage accepted")
	}
	events, err := ReadJSONL(strings.NewReader(""))
	if err != nil || len(events) != 0 {
		t.Errorf("empty stream: %v, %v", events, err)
	}
}

// Property: any event sequence survives serialization unchanged.
func TestJSONLRoundTripProperty(t *testing.T) {
	f := func(pids []uint8) bool {
		var events []Event
		for i, p := range pids {
			events = append(events, Event{
				Time: time.Duration(i) * time.Millisecond,
				Kind: KindAPICall, PID: int(p),
				Target: "API" + string(rune('A'+p%26)), Success: p%2 == 0,
			})
		}
		var buf bytes.Buffer
		if err := WriteJSONL(&buf, events); err != nil {
			return false
		}
		back, err := ReadJSONL(&buf)
		if err != nil || len(back) != len(events) {
			return false
		}
		for i := range events {
			if back[i] != events[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

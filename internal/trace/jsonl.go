package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// JSON-lines serialization of kernel traces: one event per line. This is
// the wire format the Figure 3 agents use to stream activities to the
// proxy in real time ("to avoid possible corruption of runtime traces"),
// and the on-disk format for archiving runs.

// jsonEvent is the wire shape of one event.
type jsonEvent struct {
	TimeNS  int64  `json:"t"`
	Kind    string `json:"kind"`
	PID     int    `json:"pid"`
	Image   string `json:"image,omitempty"`
	Target  string `json:"target,omitempty"`
	Detail  string `json:"detail,omitempty"`
	Success bool   `json:"ok"`
}

var kindByName = func() map[string]Kind {
	m := make(map[string]Kind, len(kindNames))
	for k, n := range kindNames {
		m[n] = k
	}
	return m
}()

// WriteJSONL streams events to w, one JSON object per line.
func WriteJSONL(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, e := range events {
		if err := enc.Encode(jsonEvent{
			TimeNS: int64(e.Time), Kind: e.Kind.String(), PID: e.PID,
			Image: e.Image, Target: e.Target, Detail: e.Detail, Success: e.Success,
		}); err != nil {
			return fmt.Errorf("trace: encoding event: %w", err)
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a JSON-lines trace stream back into events.
func ReadJSONL(r io.Reader) ([]Event, error) {
	var out []Event
	dec := json.NewDecoder(r)
	for {
		var je jsonEvent
		if err := dec.Decode(&je); err == io.EOF {
			return out, nil
		} else if err != nil {
			return nil, fmt.Errorf("trace: decoding event %d: %w", len(out), err)
		}
		kind, ok := kindByName[je.Kind]
		if !ok {
			return nil, fmt.Errorf("trace: unknown event kind %q at event %d", je.Kind, len(out))
		}
		out = append(out, Event{
			Time: time.Duration(je.TimeNS), Kind: kind, PID: je.PID,
			Image: je.Image, Target: je.Target, Detail: je.Detail, Success: je.Success,
		})
	}
}

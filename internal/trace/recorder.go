package trace

import (
	"sync"
	"time"
)

// Recorder accumulates kernel events for one machine execution. It is safe
// for concurrent use, though the deterministic scheduler drives it from a
// single goroutine in practice.
type Recorder struct {
	mu     sync.Mutex
	events []Event
	// tap, when non-nil, observes every event synchronously as it is
	// recorded — the real-time deterrence tier's live view of the trace
	// (post-run consumers keep using Events/Filter). The tap runs under
	// the recorder's mutex and must not call back into the recorder.
	tap func(Event)
}

// recorderPool recycles recorders — and, more importantly, their event
// backing arrays — across runs. A one-minute observation window records
// thousands of events; reusing the array makes the steady-state Record
// path allocation-free.
var recorderPool = sync.Pool{New: func() any { return new(Recorder) }}

// NewRecorder returns an empty trace recorder drawn from the package pool.
// Callers that finish with a recorder may hand it back with Release; those
// that never do simply leave it to the garbage collector.
func NewRecorder() *Recorder {
	return recorderPool.Get().(*Recorder)
}

// Release clears the recorder and returns it to the package pool. The
// caller must not touch the recorder afterwards — slices previously
// obtained from Events, Filter, or ByKind remain valid (they are copies),
// but the recorder itself will be reused by a future NewRecorder call.
func (r *Recorder) Release() {
	r.mu.Lock()
	clear(r.events) // drop string references so pooled capacity pins nothing
	r.events = r.events[:0]
	r.tap = nil // pooled reuse must never inherit a previous run's observer
	r.mu.Unlock()
	recorderPool.Put(r)
}

// Tap registers fn as the live per-event observer, replacing any previous
// tap (nil uninstalls). Record invokes the tap synchronously after
// appending, so a streaming detector sees events in exactly recorded
// order, at the virtual time they happen — not after the run. The tap is
// called under the recorder's mutex: it must not call back into the
// recorder (read the event it was handed instead).
func (r *Recorder) Tap(fn func(Event)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.tap = fn
}

// Record appends an event to the trace.
func (r *Recorder) Record(e Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events = append(r.events, e)
	if r.tap != nil {
		r.tap(e)
	}
}

// Events returns a copy of all recorded events in order.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, len(r.events))
	copy(out, r.events)
	return out
}

// Len returns the number of recorded events.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// Clone returns an independent recorder holding a copy of the events
// recorded so far. Used by winsim's snapshot subsystem: every machine
// cloned from a snapshot must own its own recorder, so concurrent cloned
// runs can never interleave trace events. The tap is deliberately not
// copied: a clone is a different run, and its observer (if any) must be
// installed explicitly.
func (r *Recorder) Clone() *Recorder {
	r.mu.Lock()
	defer r.mu.Unlock()
	nr := NewRecorder()
	if len(r.events) > 0 {
		nr.events = append(nr.events, r.events...)
	}
	return nr
}

// Reset discards all recorded events.
func (r *Recorder) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events = nil
}

// Filter returns the recorded events matching pred, in order.
func (r *Recorder) Filter(pred func(Event) bool) []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Event
	for _, e := range r.events {
		if pred(e) {
			out = append(out, e)
		}
	}
	return out
}

// ByKind returns the recorded events of the given kind.
func (r *Recorder) ByKind(k Kind) []Event {
	return r.Filter(func(e Event) bool { return e.Kind == k })
}

// ByPID returns the recorded events attributed to the given process.
func (r *Recorder) ByPID(pid int) []Event {
	return r.Filter(func(e Event) bool { return e.PID == pid })
}

// Since returns the events recorded at or after the given virtual time.
func (r *Recorder) Since(t time.Duration) []Event {
	return r.Filter(func(e Event) bool { return e.Time >= t })
}

package trace

import (
	"sync"
	"time"
)

// Recorder accumulates kernel events for one machine execution. It is safe
// for concurrent use, though the deterministic scheduler drives it from a
// single goroutine in practice.
type Recorder struct {
	mu     sync.Mutex
	events []Event
}

// NewRecorder returns an empty trace recorder.
func NewRecorder() *Recorder {
	return &Recorder{}
}

// Record appends an event to the trace.
func (r *Recorder) Record(e Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events = append(r.events, e)
}

// Events returns a copy of all recorded events in order.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, len(r.events))
	copy(out, r.events)
	return out
}

// Len returns the number of recorded events.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// Clone returns an independent recorder holding a copy of the events
// recorded so far. Used by winsim's snapshot subsystem: every machine
// cloned from a snapshot must own its own recorder, so concurrent cloned
// runs can never interleave trace events.
func (r *Recorder) Clone() *Recorder {
	r.mu.Lock()
	defer r.mu.Unlock()
	nr := &Recorder{}
	if len(r.events) > 0 {
		nr.events = make([]Event, len(r.events))
		copy(nr.events, r.events)
	}
	return nr
}

// Reset discards all recorded events.
func (r *Recorder) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events = nil
}

// Filter returns the recorded events matching pred, in order.
func (r *Recorder) Filter(pred func(Event) bool) []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Event
	for _, e := range r.events {
		if pred(e) {
			out = append(out, e)
		}
	}
	return out
}

// ByKind returns the recorded events of the given kind.
func (r *Recorder) ByKind(k Kind) []Event {
	return r.Filter(func(e Event) bool { return e.Kind == k })
}

// ByPID returns the recorded events attributed to the given process.
func (r *Recorder) ByPID(pid int) []Event {
	return r.Filter(func(e Event) bool { return e.PID == pid })
}

// Since returns the events recorded at or after the given virtual time.
func (r *Recorder) Since(t time.Duration) []Event {
	return r.Filter(func(e Event) bool { return e.Time >= t })
}

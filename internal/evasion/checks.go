// Package evasion catalogs the environment-fingerprinting techniques
// evasive malware uses (Section II-B of the paper groups them into
// software, hardware, and network resources). The same probes are shared
// by the malware specimens (internal/malware), Pafish (internal/pafish),
// and the wear-and-tear fingerprinter (internal/weartear), so a deception
// that steers one consumer steers them all — exactly the paper's point
// about evasive techniques being "standardized and modularized".
package evasion

import (
	"strings"
	"time"

	"scarecrow/internal/winapi"
)

// Technique classifies how a check observes the environment, which
// determines whether user-level hooking can deceive it.
type Technique string

// Techniques.
const (
	TechRegistry      Technique = "registry"
	TechFile          Technique = "file"
	TechProcess       Technique = "process"
	TechModule        Technique = "module"
	TechWindow        Technique = "window"
	TechDebuggerAPI   Technique = "debugger-api"
	TechHardwareAPI   Technique = "hardware-api"
	TechIdentity      Technique = "identity"
	TechParent        Technique = "parent-process"
	TechHookDetect    Technique = "hook-detection"
	TechNetwork       Technique = "network"
	TechTiming        Technique = "timing"
	TechCPUID         Technique = "cpuid"
	TechPEB           Technique = "peb-memory"
	TechDirectSyscall Technique = "direct-syscall"
	TechWearTear      Technique = "wear-and-tear"
)

// Techniques lists every Technique constant, in declaration order. The
// specimen-synthesis fuzzer closes its catalog loop over this list: a
// technique the generator cannot express is itself a camouflage blind
// spot. A checks_test AST sweep keeps the list in sync with the constant
// block above.
func Techniques() []Technique {
	return []Technique{
		TechRegistry, TechFile, TechProcess, TechModule, TechWindow,
		TechDebuggerAPI, TechHardwareAPI, TechIdentity, TechParent,
		TechHookDetect, TechNetwork, TechTiming, TechCPUID, TechPEB,
		TechDirectSyscall, TechWearTear,
	}
}

// Check is one evasion probe: it returns true when the environment looks
// like an analysis environment to the malware.
type Check struct {
	// Name identifies the probe (e.g. "reg:vmware-tools").
	Name string
	// Technique classifies the observation channel.
	Technique Technique
	// Probe runs the check in a process context.
	Probe func(ctx *winapi.Context) bool
}

// Detect runs the check.
func (c Check) Detect(ctx *winapi.Context) bool { return c.Probe(ctx) }

// AnyDetects evaluates the logical disjunction of checks (the ⋁ of Case I):
// it returns the first check that fires, if any. Evaluation is
// short-circuit, like compiled evasive logic.
func AnyDetects(ctx *winapi.Context, checks []Check) (Check, bool) {
	for _, c := range checks {
		if c.Probe(ctx) {
			return c, true
		}
	}
	return Check{}, false
}

// RegistryKey probes a key's existence via RegOpenKeyEx.
func RegistryKey(name, key string) Check {
	return Check{Name: name, Technique: TechRegistry, Probe: func(ctx *winapi.Context) bool {
		return ctx.RegOpenKeyEx(key).OK()
	}}
}

// NtRegistryKey probes a key via the native NtOpenKeyEx layer.
func NtRegistryKey(name, key string) Check {
	return Check{Name: name, Technique: TechRegistry, Probe: func(ctx *winapi.Context) bool {
		return ctx.NtOpenKeyEx(key).OK()
	}}
}

// RegistryValueContains probes whether a registry value contains a marker
// substring (case-insensitive), e.g. "VBOX" in SystemBiosVersion.
func RegistryValueContains(name, key, value, marker string) Check {
	return Check{Name: name, Technique: TechRegistry, Probe: func(ctx *winapi.Context) bool {
		v, st := ctx.RegQueryValueEx(key, value)
		return st.OK() && strings.Contains(strings.ToLower(v.Str), strings.ToLower(marker))
	}}
}

// FileExists probes a path via NtQueryAttributesFile (the system call Table
// I's sample 9437eab uses).
func FileExists(name, path string) Check {
	return Check{Name: name, Technique: TechFile, Probe: func(ctx *winapi.Context) bool {
		_, st := ctx.NtQueryAttributesFile(path)
		return st.OK()
	}}
}

// DeviceOpens probes a device object via CreateFile.
func DeviceOpens(name, device string) Check {
	return Check{Name: name, Technique: TechFile, Probe: func(ctx *winapi.Context) bool {
		return ctx.CreateFile(device).OK()
	}}
}

// ProcessRunning scans the Toolhelp snapshot for any of the given image
// names.
func ProcessRunning(name string, images ...string) Check {
	want := make(map[string]bool, len(images))
	for _, img := range images {
		want[strings.ToLower(img)] = true
	}
	return Check{Name: name, Technique: TechProcess, Probe: func(ctx *winapi.Context) bool {
		for _, e := range ctx.CreateToolhelp32Snapshot() {
			if want[e.Image] {
				return true
			}
		}
		return false
	}}
}

// ModuleLoaded probes for a loaded DLL via GetModuleHandle.
func ModuleLoaded(name, dll string) Check {
	return Check{Name: name, Technique: TechModule, Probe: func(ctx *winapi.Context) bool {
		_, st := ctx.GetModuleHandle(dll)
		return st.OK()
	}}
}

// ExportResolves probes for a vendor-specific export (the classic Wine
// check resolves wine_get_unix_file_name from kernel32).
func ExportResolves(name, module, export string) Check {
	return Check{Name: name, Technique: TechModule, Probe: func(ctx *winapi.Context) bool {
		_, st := ctx.GetProcAddress(module, export)
		return st.OK()
	}}
}

// WindowPresent probes FindWindow by class name.
func WindowPresent(name, class string) Check {
	return Check{Name: name, Technique: TechWindow, Probe: func(ctx *winapi.Context) bool {
		_, st := ctx.FindWindow(class, "")
		return st.OK()
	}}
}

// DebuggerAPI is the IsDebuggerPresent() probe — the most common evasion
// call in the paper's corpus.
func DebuggerAPI() Check {
	return Check{Name: "IsDebuggerPresent", Technique: TechDebuggerAPI,
		Probe: func(ctx *winapi.Context) bool { return ctx.IsDebuggerPresent() }}
}

// RemoteDebugger is the CheckRemoteDebuggerPresent() probe.
func RemoteDebugger() Check {
	return Check{Name: "CheckRemoteDebuggerPresent", Technique: TechDebuggerAPI,
		Probe: func(ctx *winapi.Context) bool { return ctx.CheckRemoteDebuggerPresent() }}
}

// LowUptime flags tick counts below the threshold (freshly reset sandbox).
func LowUptime(threshold time.Duration) Check {
	return Check{Name: "GetTickCount", Technique: TechTiming, Probe: func(ctx *winapi.Context) bool {
		return ctx.GetTickCount() < uint64(threshold.Milliseconds())
	}}
}

// SmallDisk flags volumes smaller than min bytes.
func SmallDisk(min uint64) Check {
	return Check{Name: "GetDiskFreeSpaceEx", Technique: TechHardwareAPI, Probe: func(ctx *winapi.Context) bool {
		disk, st := ctx.GetDiskFreeSpaceEx(`C:\`)
		return st.OK() && disk.TotalBytes < min
	}}
}

// SmallRAM flags physical memory at or below max bytes.
func SmallRAM(max uint64) Check {
	return Check{Name: "GlobalMemoryStatusEx", Technique: TechHardwareAPI, Probe: func(ctx *winapi.Context) bool {
		return ctx.GlobalMemoryStatusEx().TotalPhysBytes <= max
	}}
}

// FewCoresAPI flags processor counts below min as seen through
// GetSystemInfo.
func FewCoresAPI(min int) Check {
	return Check{Name: "GetSystemInfo", Technique: TechHardwareAPI, Probe: func(ctx *winapi.Context) bool {
		return ctx.GetSystemInfo().NumberOfProcessors < min
	}}
}

// FewCoresPEB reads NumberOfProcessors directly from the PEB, bypassing
// every user-level hook — the probe Scarecrow cannot deceive (Table I,
// sample cbdda64).
func FewCoresPEB(min int) Check {
	return Check{Name: "PEB.NumberOfProcessors", Technique: TechPEB, Probe: func(ctx *winapi.Context) bool {
		return ctx.ReadPEB().NumberOfProcessors < min
	}}
}

// PEBBeingDebugged reads the debugger flag directly from memory.
func PEBBeingDebugged() Check {
	return Check{Name: "PEB.BeingDebugged", Technique: TechPEB, Probe: func(ctx *winapi.Context) bool {
		return ctx.ReadPEB().BeingDebugged
	}}
}

// SuspiciousUserName flags sandbox-typical account names.
func SuspiciousUserName(names ...string) Check {
	bad := make(map[string]bool, len(names))
	for _, n := range names {
		bad[strings.ToLower(n)] = true
	}
	return Check{Name: "GetUserName", Technique: TechIdentity, Probe: func(ctx *winapi.Context) bool {
		return bad[strings.ToLower(ctx.GetUserName())]
	}}
}

// SuspiciousComputerName flags sandbox-typical host names.
func SuspiciousComputerName(markers ...string) Check {
	return Check{Name: "GetComputerName", Technique: TechIdentity, Probe: func(ctx *winapi.Context) bool {
		host := strings.ToLower(ctx.GetComputerName())
		for _, m := range markers {
			if strings.Contains(host, strings.ToLower(m)) {
				return true
			}
		}
		return false
	}}
}

// SamplePath flags executables run from canonical sandbox sample paths.
func SamplePath() Check {
	return Check{Name: "GetModuleFileName", Technique: TechIdentity, Probe: func(ctx *winapi.Context) bool {
		p := strings.ToLower(ctx.GetModuleFileName())
		return strings.Contains(p, `\sample`) || strings.Contains(p, `\virus`) ||
			strings.Contains(p, `\malware`) || p == `c:\sample.exe`
	}}
}

// SandboxParent flags parent processes other than the usual interactive
// launchers — how malware spots analysis daemons (and the Scarecrow
// controller, deliberately).
func SandboxParent() Check {
	interactive := map[string]bool{"explorer.exe": true, "cmd.exe": true, "": true}
	return Check{Name: "NtQueryInformationProcess", Technique: TechParent, Probe: func(ctx *winapi.Context) bool {
		return !interactive[ctx.ParentProcessImage()]
	}}
}

// InlineHook reads the first bytes of the named APIs directly from memory
// and flags any missing hot-patch prologue — Figure 1's check_hook.
func InlineHook(apis ...string) Check {
	return Check{Name: "prologue:" + strings.Join(apis, ","), Technique: TechHookDetect,
		Probe: func(ctx *winapi.Context) bool {
			for _, api := range apis {
				if !ctx.PrologueIntact(api) {
					return true
				}
			}
			return false
		}}
}

// NXDomainResolves flags environments where a non-existent domain answers:
// DNS sinkholes (WannaCry's kill switch, Case II).
func NXDomainResolves(domain string) Check {
	return Check{Name: "DnsQuery:" + domain, Technique: TechNetwork, Probe: func(ctx *winapi.Context) bool {
		addr, st := ctx.DnsQuery(domain)
		if !st.OK() {
			return false
		}
		code, st := ctx.InternetOpenUrl(addr)
		return st.OK() && code == 200
	}}
}

// SleepPatch measures a Sleep against the tick stream and flags
// environments where slept time does not pass (sleep skipping or tick
// manipulation).
func SleepPatch(d time.Duration) Check {
	return Check{Name: "Sleep/GetTickCount", Technique: TechTiming, Probe: func(ctx *winapi.Context) bool {
		t0 := ctx.GetTickCount()
		ctx.Sleep(d)
		t1 := ctx.GetTickCount()
		return t1-t0 < uint64(d.Milliseconds())*9/10
	}}
}

// RDTSCVMExit measures the cycle cost of CPUID between two RDTSCs and
// flags trap-and-emulate hypervisors.
func RDTSCVMExit(thresholdCycles uint64) Check {
	return Check{Name: "rdtsc_diff_vmexit", Technique: TechCPUID, Probe: func(ctx *winapi.Context) bool {
		c1 := ctx.RDTSC()
		ctx.CPUID()
		c2 := ctx.RDTSC()
		return c2-c1 > thresholdCycles
	}}
}

// CPUIDHypervisorBit tests bit 31 of ECX for CPUID leaf 1.
func CPUIDHypervisorBit() Check {
	return Check{Name: "cpuid_hv_bit", Technique: TechCPUID, Probe: func(ctx *winapi.Context) bool {
		return ctx.CPUID().HypervisorBit
	}}
}

// CPUIDVendor flags known hypervisor vendor strings from leaf 0x40000000.
func CPUIDVendor(vendors ...string) Check {
	return Check{Name: "cpu_known_vm_vendors", Technique: TechCPUID, Probe: func(ctx *winapi.Context) bool {
		got := strings.ToLower(ctx.CPUID().HypervisorVendor)
		if got == "" {
			return false
		}
		for _, v := range vendors {
			if strings.Contains(got, strings.ToLower(v)) {
				return true
			}
		}
		return false
	}}
}

// VMMAC flags adapters with virtual-machine MAC prefixes.
func VMMAC(prefixes ...string) Check {
	return Check{Name: "GetAdaptersInfo", Technique: TechHardwareAPI, Probe: func(ctx *winapi.Context) bool {
		for _, a := range ctx.GetAdaptersInfo() {
			mac := strings.ToLower(a.MAC)
			for _, p := range prefixes {
				if strings.HasPrefix(mac, strings.ToLower(p)) {
					return true
				}
			}
		}
		return false
	}}
}

// DiskModelContains flags VM identity strings in the SCSI disk identifier.
func DiskModelContains(name string, markers ...string) Check {
	const scsiKey = `HKLM\HARDWARE\DEVICEMAP\Scsi\Scsi Port 0\Scsi Bus 0\Target Id 0\Logical Unit Id 0`
	return Check{Name: name, Technique: TechRegistry, Probe: func(ctx *winapi.Context) bool {
		v, st := ctx.RegQueryValueEx(scsiKey, "Identifier")
		if !st.OK() {
			return false
		}
		id := strings.ToLower(v.Str)
		for _, m := range markers {
			if strings.Contains(id, strings.ToLower(m)) {
				return true
			}
		}
		return false
	}}
}

// MouseInactive samples the cursor across a short sleep and flags a frozen
// pointer.
func MouseInactive(wait time.Duration) Check {
	return Check{Name: "GetCursorPos", Technique: TechHardwareAPI, Probe: func(ctx *winapi.Context) bool {
		x1, y1 := ctx.GetCursorPos()
		ctx.Sleep(wait)
		x2, y2 := ctx.GetCursorPos()
		return x1 == x2 && y1 == y2
	}}
}

// WMIIdentity flags a WMI identity property equal to or containing a
// marker. WMI rides COM, not the hooked Win32 exports, so Scarecrow's
// user-level deception cannot steer it.
func WMIIdentity(name, class, property, marker string) Check {
	return Check{Name: name, Technique: TechDirectSyscall, Probe: func(ctx *winapi.Context) bool {
		v, st := ctx.WMIQuery(class, property)
		return st.OK() && strings.Contains(strings.ToLower(v), strings.ToLower(marker))
	}}
}

// NtRegistryValueContains probes a registry value through NtQueryValueKey
// for a marker substring.
func NtRegistryValueContains(name, key, value, marker string) Check {
	return Check{Name: name, Technique: TechRegistry, Probe: func(ctx *winapi.Context) bool {
		v, st := ctx.NtQueryValueKey(key, value)
		return st.OK() && strings.Contains(strings.ToLower(v.Str), strings.ToLower(marker))
	}}
}

// KernelDebugger asks NtQuerySystemInformation whether a kernel debugger
// is attached.
func KernelDebugger() Check {
	return Check{Name: "NtQuerySystemInformation", Technique: TechDebuggerAPI,
		Probe: func(ctx *winapi.Context) bool {
			n, st := ctx.NtQuerySystemInformation(winapi.SystemKernelDebuggerInformation)
			return st.OK() && n != 0
		}}
}

// WMIIdentityEquals flags a WMI identity property exactly equal to a
// marker (e.g. VirtualBox's default BIOS serial "0").
func WMIIdentityEquals(name, class, property, want string) Check {
	return Check{Name: name, Technique: TechDirectSyscall, Probe: func(ctx *winapi.Context) bool {
		v, st := ctx.WMIQuery(class, property)
		return st.OK() && strings.EqualFold(v, want)
	}}
}

// DirectSyscallRegistryKey probes a registry key through a raw syscall
// stub, bypassing user-level hooks entirely (§VI-A's acknowledged bypass).
func DirectSyscallRegistryKey(name, key string) Check {
	return Check{Name: name, Technique: TechDirectSyscall, Probe: func(ctx *winapi.Context) bool {
		st, _ := ctx.DirectSyscall("NtOpenKeyEx", key).(winapi.Status)
		return st.OK()
	}}
}

// SlowExceptionDispatch measures the round-trip cost of raising and
// handling a software exception. Debuggers and shadow-page analysis
// systems inflate it far beyond the native dispatch path — and so does
// Scarecrow's §II-B(g) deceptive timing discrepancy.
func SlowExceptionDispatch(threshold time.Duration) Check {
	return Check{Name: "RaiseException", Technique: TechTiming, Probe: func(ctx *winapi.Context) bool {
		return ctx.RaiseException() > threshold
	}}
}

// FreshDNSCache flags a client DNS resolver cache at or below max entries —
// the first wear-and-tear artifact of Miramirkhani et al. (dnscacheEntries):
// an actively used machine accumulates hundreds of cached names, a freshly
// provisioned analysis image only a handful.
func FreshDNSCache(max int) Check {
	return Check{Name: "DnsGetCacheDataTable", Technique: TechWearTear, Probe: func(ctx *winapi.Context) bool {
		return len(ctx.DnsGetCacheDataTable()) <= max
	}}
}

// SparseEventLog flags a system event log holding at most max total events
// (the sysevt wear-and-tear artifact): real machines log hundreds of
// thousands of events over their lifetime.
func SparseEventLog(max int) Check {
	return Check{Name: "EvtNext", Technique: TechWearTear, Probe: func(ctx *winapi.Context) bool {
		_, total := ctx.EvtNext(0, 1)
		return total <= max
	}}
}

// FewAutoRuns flags a Run key carrying at most max autostart entries (the
// autoRunCount artifact): installed software accretes autoruns, pristine
// sandbox images carry almost none.
func FewAutoRuns(max int) Check {
	return Check{Name: "NtQueryKey", Technique: TechWearTear, Probe: func(ctx *winapi.Context) bool {
		info, st := ctx.NtQueryKey(`HKLM\Software\Microsoft\Windows\CurrentVersion\Run`)
		return st.OK() && info.ValueCount <= max
	}}
}

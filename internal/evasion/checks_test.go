package evasion

import (
	"testing"
	"time"

	"scarecrow/internal/core"
	"scarecrow/internal/winapi"
	"scarecrow/internal/winsim"
)

func ctxOn(m *winsim.Machine) *winapi.Context {
	sys := winapi.NewSystem(m)
	p := sys.Launch(`C:\probe.exe`, "probe.exe", nil)
	return sys.Context(p)
}

func TestChecksOnStockCuckoo(t *testing.T) {
	ctx := ctxOn(winsim.NewCuckooSandbox(1, false))
	tests := []struct {
		check Check
		want  bool
	}{
		{RegistryKey("guestadd", `HKLM\SOFTWARE\Oracle\VirtualBox Guest Additions`), true},
		{NtRegistryKey("svc", `HKLM\SYSTEM\CurrentControlSet\Services\VBoxGuest`), true},
		{RegistryValueContains("bios", `HKLM\HARDWARE\Description\System`, "SystemBiosVersion", "VBOX"), true},
		{FileExists("vboxmouse", `C:\Windows\System32\drivers\VBoxMouse.sys`), true},
		{DeviceOpens("vboxguest", `\\.\VBoxGuest`), true},
		{ProcessRunning("tray", "vboxtray.exe"), true},
		{ProcessRunning("nothing", "idontexist.exe"), false},
		{ModuleLoaded("sbie", "SbieDll.dll"), false},
		{DebuggerAPI(), false},
		{RemoteDebugger(), false},
		{CPUIDHypervisorBit(), true},
		{CPUIDVendor("VBoxVBoxVBox"), true},
		{CPUIDVendor("VMwareVMware"), false},
		{RDTSCVMExit(1000), true},
		{VMMAC("08:00:27"), true},
		{VMMAC("00:50:56"), false},
		{DiskModelContains("model", "VBOX"), true},
		{SmallRAM(1 << 30), true},
		{SmallDisk(60 << 30), false},
		{FewCoresAPI(2), false},
		{LowUptime(12 * time.Minute), false},
		{WMIIdentity("wmi", "Win32_ComputerSystem", "Model", "VirtualBox"), true},
		{InlineHook("ShellExecuteExW"), true}, // Cuckoo monitor hook
		{InlineHook("DeleteFile"), false},
	}
	for _, tt := range tests {
		t.Run(tt.check.Name, func(t *testing.T) {
			if got := tt.check.Detect(ctx); got != tt.want {
				t.Errorf("detect = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestChecksOnEndUser(t *testing.T) {
	ctx := ctxOn(winsim.NewEndUserMachine(1))
	tests := []struct {
		check Check
		want  bool
	}{
		{RegistryKey("guestadd", `HKLM\SOFTWARE\Oracle\VirtualBox Guest Additions`), false},
		{FileExists("vboxmouse", `C:\Windows\System32\drivers\VBoxMouse.sys`), false},
		{CPUIDHypervisorBit(), false},
		{VMMAC("00:50:56"), true}, // VMware Workstation vmnet adapter
		{SmallRAM(1 << 30), false},
		{FewCoresPEB(2), false},
		{SuspiciousUserName("sandbox", "currentuser"), false},
		{SuspiciousComputerName("sandbox"), false},
		{NXDomainResolves("kjqwerhkjqwhe.invalid"), false},
		{MouseInactive(2 * time.Second), true}, // nobody at the mouse during the run
		{SleepPatch(500 * time.Millisecond), false},
	}
	for _, tt := range tests {
		t.Run(tt.check.Name, func(t *testing.T) {
			if got := tt.check.Detect(ctx); got != tt.want {
				t.Errorf("detect = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestSandboxParentCheck(t *testing.T) {
	m := winsim.NewCuckooSandbox(1, false)
	sys := winapi.NewSystem(m)
	agent := m.Procs.FindByImage("pythonw.exe")[0]
	p := sys.Launch(`C:\sample.exe`, "", agent)
	if !SandboxParent().Detect(sys.Context(p)) {
		t.Error("analysis-daemon parent not flagged")
	}
	explorer := m.Procs.FindByImage("explorer.exe")[0]
	p2 := sys.Launch(`C:\sample.exe`, "", explorer)
	if SandboxParent().Detect(sys.Context(p2)) {
		t.Error("explorer parent flagged")
	}
}

func TestNXDomainResolvesOnSinkholingSandbox(t *testing.T) {
	ctx := ctxOn(winsim.NewCuckooSandbox(1, false))
	if !NXDomainResolves("kjqwerhkjqwhe.invalid").Detect(ctx) {
		t.Error("sinkholing sandbox should answer NX domains")
	}
}

func TestPEBChecks(t *testing.T) {
	ctx := ctxOn(winsim.NewCuckooSandbox(1, false))
	if FewCoresPEB(2).Detect(ctx) {
		t.Error("2-core guest flagged by <2 check")
	}
	if !FewCoresPEB(4).Detect(ctx) {
		t.Error("2-core guest not flagged by <4 check")
	}
	if PEBBeingDebugged().Detect(ctx) {
		t.Error("PEB debugger flag set without debugger")
	}
}

func TestAnyDetectsShortCircuits(t *testing.T) {
	ctx := ctxOn(winsim.NewCuckooSandbox(1, false))
	calls := 0
	counting := Check{Name: "counting", Technique: TechFile, Probe: func(*winapi.Context) bool {
		calls++
		return false
	}}
	hit, ok := AnyDetects(ctx, []Check{
		counting,
		CPUIDHypervisorBit(), // fires
		counting,             // must not run
	})
	if !ok || hit.Name != "cpuid_hv_bit" {
		t.Fatalf("AnyDetects = %v, %v", hit.Name, ok)
	}
	if calls != 1 {
		t.Errorf("short-circuit broken: %d probe calls", calls)
	}
	if _, ok := AnyDetects(ctx, nil); ok {
		t.Error("empty disjunction detected something")
	}
}

func TestDirectSyscallRegistryKeyBypassesHooks(t *testing.T) {
	m := winsim.NewEndUserMachine(1)
	sys := winapi.NewSystem(m)
	p := sys.Launch(`C:\probe.exe`, "", nil)
	ctx := sys.Context(p)
	// Hook NtOpenKeyEx to lie; the direct-syscall check must see through.
	err := sys.InstallHook(p.PID, "NtOpenKeyEx", func(c *winapi.Context, call *winapi.Call) any {
		return winapi.Result{Status: winapi.StatusSuccess}
	})
	if err != nil {
		t.Fatal(err)
	}
	hooked := NtRegistryKey("hooked", `HKLM\SOFTWARE\Oracle\VirtualBox Guest Additions`)
	direct := DirectSyscallRegistryKey("direct", `HKLM\SOFTWARE\Oracle\VirtualBox Guest Additions`)
	if !hooked.Detect(ctx) {
		t.Error("hooked probe should be deceived")
	}
	if direct.Detect(ctx) {
		t.Error("direct syscall probe must bypass the hook")
	}
}

func TestAdditionalChecksAgainstScarecrow(t *testing.T) {
	// Deploy a default-config Scarecrow and confirm the remaining check
	// constructors are deceived (or correctly not).
	m := winsim.NewEndUserMachine(1)
	sys := winapi.NewSystem(m)
	sys.RegisterProgram(`C:\t.exe`, func(ctx *winapi.Context) int { return 0 })
	ctrl, err := core.Deploy(sys, core.NewEngine(core.NewDB(), core.RecommendedConfig(m.Profile)))
	if err != nil {
		t.Fatal(err)
	}
	target, err := ctrl.LaunchTarget(`C:\t.exe`, "")
	if err != nil {
		t.Fatal(err)
	}
	ctx := sys.Context(target)

	tests := []struct {
		check Check
		want  bool
	}{
		{ExportResolves("wine", "kernel32.dll", "wine_get_unix_file_name"), true},
		{WindowPresent("olly", "OLLYDBG"), true},
		{WindowPresent("nothing", "RealAppClass"), false},
		{SamplePath(), true},
		{NtRegistryValueContains("bios", `HKLM\HARDWARE\Description\System`, "SystemBiosVersion", "VBOX"), true},
		{NtRegistryValueContains("bios-neg", `HKLM\HARDWARE\Description\System`, "SystemBiosVersion", "PHOENIX"), false},
		{KernelDebugger(), true},
		{RemoteDebugger(), false}, // unhooked in the final 29: stays genuine
		{WMIIdentityEquals("serial", "Win32_BIOS", "SerialNumber", "0"), false}, // WMI unreachable by user hooks
	}
	for _, tt := range tests {
		t.Run(tt.check.Name, func(t *testing.T) {
			if got := tt.check.Detect(ctx); got != tt.want {
				t.Errorf("detect = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestWMIIdentityEqualsOnGuest(t *testing.T) {
	ctx := ctxOn(winsim.NewCuckooSandbox(1, false))
	if !WMIIdentityEquals("serial", "Win32_BIOS", "SerialNumber", "0").Detect(ctx) {
		t.Error("VBox default BIOS serial not flagged")
	}
	if WMIIdentityEquals("serial", "Win32_BIOS", "SerialNumber", "00").Detect(ctx) {
		t.Error("near-miss serial flagged")
	}
}

func TestSlowExceptionDispatch(t *testing.T) {
	ctx := ctxOn(winsim.NewEndUserMachine(1))
	if SlowExceptionDispatch(time.Millisecond).Detect(ctx) {
		t.Error("native dispatch flagged as slow")
	}
	if !SlowExceptionDispatch(time.Nanosecond).Detect(ctx) {
		t.Error("nanosecond threshold should always flag")
	}
}

func TestSamplePathVariants(t *testing.T) {
	m := winsim.NewBareMetalSandbox(1)
	sys := winapi.NewSystem(m)
	for _, tt := range []struct {
		image string
		want  bool
	}{
		{`C:\sample.exe`, true},
		{`C:\virus\a.exe`, true},
		{`C:\malware\b.exe`, true},
		{`C:\Users\john\report.exe`, false},
	} {
		p := sys.Launch(tt.image, "", nil)
		if got := SamplePath().Detect(sys.Context(p)); got != tt.want {
			t.Errorf("SamplePath(%q) = %v, want %v", tt.image, got, tt.want)
		}
	}
}

package evasion

import "time"

// CatalogEntry is the composition metadata for one parameterized evasion
// probe: everything the specimen-synthesis fuzzer (internal/synth) needs
// to build, mutate, and diagnose a check without knowing its internals.
// The catalog is the machine-readable form of the check constructors in
// this package — the same probes the hand-written specimens use — so a
// predicate synthesized from it exercises exactly the evasive logic real
// samples compose.
type CatalogEntry struct {
	// Name is the stable entry identifier (e.g. "file:vboxmouse"). Gap
	// fixtures serialize it, so renaming an entry breaks replay.
	Name string
	// Technique classifies the observation channel.
	Technique Technique
	// Resource names the artifact the probe observes — the thing a gap
	// report says the deception DB should have answered for.
	Resource string
	// Variants is how many parameter variants Build accepts (≥ 1).
	// Variant 0 is the canonical form; higher variants tighten or loosen
	// thresholds and timing deltas.
	Variants int
	// Build constructs the check at the given variant. Out-of-range
	// variants are clamped into [0, Variants).
	Build func(variant int) Check
}

// clampVariant folds any int into a valid variant index.
func clampVariant(v, n int) int {
	if n <= 1 {
		return 0
	}
	if v < 0 {
		v = -v
	}
	return v % n
}

// BuildVariant constructs the entry's check with the variant clamped into
// range, so codec-decoded fixtures can never index out of bounds.
func (e CatalogEntry) BuildVariant(v int) Check {
	return e.Build(clampVariant(v, e.Variants))
}

// Catalog returns the full composition catalog, ordered by technique
// grouping then name. Every Technique constant is represented — the
// synth coverage test fails the build otherwise — and every entry's
// probes are the same constructors the hand-written specimen corpus
// uses.
func Catalog() []CatalogEntry {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	return []CatalogEntry{
		// --- registry ---
		{Name: "reg:vmware-tools", Technique: TechRegistry,
			Resource: `HKLM\SOFTWARE\VMware, Inc.\VMware Tools`, Variants: 1,
			Build: func(int) Check {
				return RegistryKey("reg:vmware-tools", `HKLM\SOFTWARE\VMware, Inc.\VMware Tools`)
			}},
		{Name: "reg:vbox-guestadd", Technique: TechRegistry,
			Resource: `HKLM\SOFTWARE\Oracle\VirtualBox Guest Additions`, Variants: 2,
			Build: func(v int) Check {
				if v == 1 {
					return NtRegistryKey("reg:vbox-guestadd", `HKLM\SOFTWARE\Oracle\VirtualBox Guest Additions`)
				}
				return RegistryKey("reg:vbox-guestadd", `HKLM\SOFTWARE\Oracle\VirtualBox Guest Additions`)
			}},
		{Name: "reg:biosversion-vm", Technique: TechRegistry,
			Resource: `HKLM\HARDWARE\Description\System\SystemBiosVersion`, Variants: 2,
			Build: func(v int) Check {
				marker := "vbox"
				if v == 1 {
					marker = "bochs"
				}
				return RegistryValueContains("reg:biosversion-vm",
					`HKLM\HARDWARE\Description\System`, "SystemBiosVersion", marker)
			}},
		{Name: "reg:scsi-vm-disk", Technique: TechRegistry,
			Resource: `HKLM\HARDWARE\DEVICEMAP\Scsi ... Identifier`, Variants: 1,
			Build: func(int) Check {
				return DiskModelContains("reg:scsi-vm-disk", "vmware", "vbox", "qemu", "virtual")
			}},
		{Name: "reg:wine", Technique: TechRegistry,
			Resource: `HKCU\Software\Wine`, Variants: 1,
			Build: func(int) Check { return RegistryKey("reg:wine", `HKCU\Software\Wine`) }},
		{Name: "reg:deepfreeze", Technique: TechRegistry,
			Resource: `HKLM\SOFTWARE\Faronics\Deep Freeze 6`, Variants: 1,
			Build: func(int) Check {
				return RegistryKey("reg:deepfreeze", `HKLM\SOFTWARE\Faronics\Deep Freeze 6`)
			}},

		// --- file ---
		{Name: "file:vboxmouse", Technique: TechFile,
			Resource: `C:\Windows\System32\drivers\VBoxMouse.sys`, Variants: 1,
			Build: func(int) Check {
				return FileExists("file:vboxmouse", `C:\Windows\System32\drivers\VBoxMouse.sys`)
			}},
		{Name: "file:vmmouse", Technique: TechFile,
			Resource: `C:\Windows\System32\drivers\vmmouse.sys`, Variants: 1,
			Build: func(int) Check {
				return FileExists("file:vmmouse", `C:\Windows\System32\drivers\vmmouse.sys`)
			}},
		{Name: "file:sandbox-folder", Technique: TechFile,
			Resource: `C:\sandbox`, Variants: 2,
			Build: func(v int) Check {
				path := `C:\sandbox`
				if v == 1 {
					path = `C:\analysis\agent.py`
				}
				return FileExists("file:sandbox-folder", path)
			}},
		{Name: "file:deepfreeze", Technique: TechFile,
			Resource: `C:\Program Files\Faronics\Deep Freeze\DFServ.exe`, Variants: 1,
			Build: func(int) Check {
				return FileExists("file:deepfreeze", `C:\Program Files\Faronics\Deep Freeze\DFServ.exe`)
			}},

		// --- process ---
		{Name: "proc:vbox-service", Technique: TechProcess,
			Resource: "vboxservice.exe, vboxtray.exe", Variants: 1,
			Build: func(int) Check {
				return ProcessRunning("proc:vbox-service", "vboxservice.exe", "vboxtray.exe")
			}},
		{Name: "proc:analysis-tools", Technique: TechProcess,
			Resource: "ollydbg.exe, wireshark.exe, procmon.exe", Variants: 2,
			Build: func(v int) Check {
				if v == 1 {
					return ProcessRunning("proc:analysis-tools", "idaq.exe", "x64dbg.exe", "procexp.exe")
				}
				return ProcessRunning("proc:analysis-tools", "ollydbg.exe", "wireshark.exe", "procmon.exe")
			}},
		{Name: "proc:deepfreeze", Technique: TechProcess,
			Resource: "dfserv.exe, frzstate2k.exe", Variants: 1,
			Build: func(int) Check {
				return ProcessRunning("proc:deepfreeze", "dfserv.exe", "frzstate2k.exe")
			}},

		// --- module ---
		{Name: "mod:sbiedll", Technique: TechModule,
			Resource: "SbieDll.dll", Variants: 1,
			Build: func(int) Check { return ModuleLoaded("mod:sbiedll", "SbieDll.dll") }},
		{Name: "mod:cuckoomon", Technique: TechModule,
			Resource: "cuckoomon.dll", Variants: 1,
			Build: func(int) Check { return ModuleLoaded("mod:cuckoomon", "cuckoomon.dll") }},
		{Name: "mod:wine-export", Technique: TechModule,
			Resource: "kernel32!wine_get_unix_file_name", Variants: 1,
			Build: func(int) Check {
				return ExportResolves("mod:wine-export", "kernel32.dll", "wine_get_unix_file_name")
			}},

		// --- window ---
		{Name: "win:ollydbg", Technique: TechWindow,
			Resource: "OLLYDBG", Variants: 1,
			Build: func(int) Check { return WindowPresent("win:ollydbg", "OLLYDBG") }},
		{Name: "win:sandboxie", Technique: TechWindow,
			Resource: "SandboxieControlWndClass", Variants: 1,
			Build: func(int) Check { return WindowPresent("win:sandboxie", "SandboxieControlWndClass") }},

		// --- debugger API ---
		{Name: "dbg:isdebuggerpresent", Technique: TechDebuggerAPI,
			Resource: "IsDebuggerPresent", Variants: 1,
			Build: func(int) Check { return DebuggerAPI() }},
		{Name: "dbg:remote", Technique: TechDebuggerAPI,
			Resource: "CheckRemoteDebuggerPresent", Variants: 1,
			Build: func(int) Check { return RemoteDebugger() }},
		{Name: "dbg:kernel", Technique: TechDebuggerAPI,
			Resource: "NtQuerySystemInformation(KernelDebugger)", Variants: 1,
			Build: func(int) Check { return KernelDebugger() }},

		// --- hardware API ---
		{Name: "hw:small-disk", Technique: TechHardwareAPI,
			Resource: "GetDiskFreeSpaceEx", Variants: 3,
			Build: func(v int) Check { return SmallDisk([]uint64{60 << 30, 100 << 30, 128 << 30}[v]) }},
		{Name: "hw:small-ram", Technique: TechHardwareAPI,
			Resource: "GlobalMemoryStatusEx", Variants: 3,
			Build: func(v int) Check { return SmallRAM([]uint64{1 << 30, 2 << 30, 4 << 30}[v]) }},
		{Name: "hw:few-cores", Technique: TechHardwareAPI,
			Resource: "GetSystemInfo", Variants: 2,
			Build: func(v int) Check { return FewCoresAPI([]int{2, 4}[v]) }},
		{Name: "hw:vm-mac", Technique: TechHardwareAPI,
			Resource: "GetAdaptersInfo", Variants: 1,
			Build: func(int) Check { return VMMAC("08:00:27", "00:0c:29", "00:50:56", "00:05:69") }},
		{Name: "hw:mouse-idle", Technique: TechHardwareAPI,
			Resource: "GetCursorPos", Variants: 3,
			Build: func(v int) Check { return MouseInactive([]time.Duration{ms(100), ms(500), ms(2000)}[v]) }},

		// --- identity ---
		{Name: "id:username", Technique: TechIdentity,
			Resource: "GetUserName", Variants: 1,
			Build: func(int) Check {
				return SuspiciousUserName("sandbox", "virus", "malware", "currentuser")
			}},
		{Name: "id:computername", Technique: TechIdentity,
			Resource: "GetComputerName", Variants: 1,
			Build: func(int) Check { return SuspiciousComputerName("sandbox", "cuckoo") }},
		{Name: "id:samplepath", Technique: TechIdentity,
			Resource: "GetModuleFileName", Variants: 1,
			Build: func(int) Check { return SamplePath() }},

		// --- parent process ---
		{Name: "par:sandbox-parent", Technique: TechParent,
			Resource: "NtQueryInformationProcess(ParentPID)", Variants: 1,
			Build: func(int) Check { return SandboxParent() }},

		// --- hook detection ---
		{Name: "hook:prologue", Technique: TechHookDetect,
			Resource: "API prologue bytes", Variants: 3,
			Build: func(v int) Check {
				switch v {
				case 1:
					return InlineHook("RegOpenKeyEx", "CreateFile")
				case 2:
					return InlineHook("GetTickCount")
				default:
					return InlineHook("IsDebuggerPresent")
				}
			}},

		// --- network ---
		{Name: "net:nxdomain", Technique: TechNetwork,
			Resource: "DNS sinkhole", Variants: 2,
			Build: func(v int) Check {
				domain := "synth-killswitch-a.invalid"
				if v == 1 {
					domain = "synth-killswitch-b.invalid"
				}
				return NXDomainResolves(domain)
			}},

		// --- timing (thresholds and sleep lengths are the timing-delta
		// variants the generator mutates over) ---
		{Name: "time:low-uptime", Technique: TechTiming,
			Resource: "GetTickCount", Variants: 3,
			Build: func(v int) Check {
				return LowUptime([]time.Duration{5 * time.Minute, 12 * time.Minute, 25 * time.Minute}[v])
			}},
		{Name: "time:sleep-skip", Technique: TechTiming,
			Resource: "Sleep/GetTickCount", Variants: 3,
			Build: func(v int) Check {
				return SleepPatch([]time.Duration{ms(50), ms(250), ms(1000)}[v])
			}},
		{Name: "time:slow-exception", Technique: TechTiming,
			Resource: "RaiseException", Variants: 2,
			Build: func(v int) Check {
				return SlowExceptionDispatch([]time.Duration{ms(1), ms(10)}[v])
			}},

		// --- cpuid ---
		{Name: "cpu:hv-bit", Technique: TechCPUID,
			Resource: "CPUID leaf 1 ECX[31]", Variants: 1,
			Build: func(int) Check { return CPUIDHypervisorBit() }},
		{Name: "cpu:rdtsc-vmexit", Technique: TechCPUID,
			Resource: "rdtsc/cpuid/rdtsc", Variants: 3,
			Build: func(v int) Check { return RDTSCVMExit([]uint64{1000, 2500, 4000}[v]) }},
		{Name: "cpu:vm-vendor", Technique: TechCPUID,
			Resource: "CPUID leaf 0x40000000", Variants: 1,
			Build: func(int) Check { return CPUIDVendor("vmware", "vbox", "kvm", "tcg", "xen") }},

		// --- PEB memory ---
		{Name: "peb:few-cores", Technique: TechPEB,
			Resource: "PEB.NumberOfProcessors", Variants: 2,
			Build: func(v int) Check { return FewCoresPEB([]int{2, 4}[v]) }},
		{Name: "peb:debugged", Technique: TechPEB,
			Resource: "PEB.BeingDebugged", Variants: 1,
			Build: func(int) Check { return PEBBeingDebugged() }},

		// --- direct syscall / out-of-band ---
		{Name: "wmi:bios-serial", Technique: TechDirectSyscall,
			Resource: "Win32_BIOS.SerialNumber", Variants: 1,
			Build: func(int) Check {
				return WMIIdentityEquals("wmi:bios-serial", "Win32_BIOS", "SerialNumber", "0")
			}},
		{Name: "wmi:model-vm", Technique: TechDirectSyscall,
			Resource: "Win32_ComputerSystem.Model", Variants: 1,
			Build: func(int) Check {
				return WMIIdentity("wmi:model-vm", "Win32_ComputerSystem", "Model", "virtual")
			}},
		{Name: "sys:direct-regkey", Technique: TechDirectSyscall,
			Resource: `syscall NtOpenKeyEx HKLM\SOFTWARE\VMware, Inc.\VMware Tools`, Variants: 1,
			Build: func(int) Check {
				return DirectSyscallRegistryKey("sys:direct-regkey", `HKLM\SOFTWARE\VMware, Inc.\VMware Tools`)
			}},

		// --- wear and tear ---
		{Name: "wt:dns-cache", Technique: TechWearTear,
			Resource: "DnsGetCacheDataTable", Variants: 2,
			Build: func(v int) Check { return FreshDNSCache([]int{8, 16}[v]) }},
		{Name: "wt:event-log", Technique: TechWearTear,
			Resource: "EvtNext total", Variants: 2,
			Build: func(v int) Check { return SparseEventLog([]int{10000, 50000}[v]) }},
		{Name: "wt:autoruns", Technique: TechWearTear,
			Resource: `Run key value count`, Variants: 2,
			Build: func(v int) Check { return FewAutoRuns([]int{5, 10}[v]) }},
	}
}

package evasion

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// TestCatalogEntriesWellFormed checks the structural invariants the
// synthesis fuzzer relies on: unique names, positive variant counts, and
// Build producing a check whose Technique matches the entry's at every
// declared variant (the generator diagnoses gaps by entry technique, so
// a mismatch would misfile a gap report).
func TestCatalogEntriesWellFormed(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range Catalog() {
		if e.Name == "" {
			t.Fatal("catalog entry with empty name")
		}
		if seen[e.Name] {
			t.Fatalf("duplicate catalog entry name %q", e.Name)
		}
		seen[e.Name] = true
		if e.Variants < 1 {
			t.Fatalf("%s: Variants = %d, want >= 1", e.Name, e.Variants)
		}
		if e.Resource == "" {
			t.Fatalf("%s: empty Resource", e.Name)
		}
		if e.Build == nil {
			t.Fatalf("%s: nil Build", e.Name)
		}
		for v := 0; v < e.Variants; v++ {
			c := e.Build(v)
			if c.Probe == nil {
				t.Fatalf("%s variant %d: nil Probe", e.Name, v)
			}
			if c.Technique != e.Technique {
				t.Fatalf("%s variant %d: check technique %q != entry technique %q",
					e.Name, v, c.Technique, e.Technique)
			}
		}
	}
}

// TestCatalogCoversEveryTechnique fails when a Technique constant has no
// catalog entry: a technique the fuzzer cannot synthesize is itself a
// camouflage blind spot (satellite 3 of ISSUE 8).
func TestCatalogCoversEveryTechnique(t *testing.T) {
	covered := map[Technique]bool{}
	for _, e := range Catalog() {
		covered[e.Technique] = true
	}
	for _, tech := range Techniques() {
		if !covered[tech] {
			t.Errorf("technique %q has no catalog entry — the synthesis fuzzer cannot express it", tech)
		}
	}
}

// TestCatalogVariantClamp proves BuildVariant never indexes out of
// bounds, whatever int a decoded fixture carries.
func TestCatalogVariantClamp(t *testing.T) {
	for _, e := range Catalog() {
		for _, v := range []int{-1, 0, e.Variants - 1, e.Variants, e.Variants + 7, -1 << 40, 1 << 40} {
			c := e.BuildVariant(v)
			if c.Probe == nil {
				t.Fatalf("%s: BuildVariant(%d) returned nil probe", e.Name, v)
			}
		}
	}
}

// TestTechniquesMatchesConstBlock parses checks.go and asserts that
// Techniques() enumerates exactly the Technique constants declared
// there, in declaration order — the same pattern as
// winapi/coverage_test.go: adding a constant without teaching the
// fuzzer about it fails the build.
func TestTechniquesMatchesConstBlock(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "checks.go", nil, 0)
	if err != nil {
		t.Fatalf("parse checks.go: %v", err)
	}
	var declared []string
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.CONST {
			continue
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			ident, ok := vs.Type.(*ast.Ident)
			if !ok || ident.Name != "Technique" {
				continue
			}
			for _, name := range vs.Names {
				if strings.HasPrefix(name.Name, "Tech") {
					declared = append(declared, name.Name)
				}
			}
		}
	}
	if len(declared) == 0 {
		t.Fatal("found no Technique constants in checks.go")
	}

	// Map constant values back to identifiers via the catalog of known
	// constants; Techniques() returns values, so compare by value set
	// and count.
	listed := Techniques()
	if len(listed) != len(declared) {
		t.Fatalf("Techniques() lists %d techniques, const block declares %d — keep them in sync",
			len(listed), len(declared))
	}
	unique := map[Technique]bool{}
	for _, tech := range listed {
		if unique[tech] {
			t.Fatalf("Techniques() lists %q twice", tech)
		}
		unique[tech] = true
	}
}

// TestCatalogOrderDeterministic guards the fingerprint stability the
// gap-fixture format depends on: two Catalog() calls agree, and names
// group by technique so reports read coherently.
func TestCatalogOrderDeterministic(t *testing.T) {
	a, b := Catalog(), Catalog()
	if len(a) != len(b) {
		t.Fatalf("catalog length unstable: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Name != b[i].Name {
			t.Fatalf("catalog order unstable at %d: %q vs %q", i, a[i].Name, b[i].Name)
		}
	}
}

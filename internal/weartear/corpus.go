package weartear

import (
	"math/rand"
	"reflect"

	"scarecrow/internal/winapi"
	"scarecrow/internal/winsim"
)

// JitterUsage scales every count in a usage level by a random factor in
// [1-spread, 1+spread], producing realistic variation for training
// corpora. Boolean fields flip with probability spread/2.
func JitterUsage(u winsim.UsageLevel, rng *rand.Rand, spread float64) winsim.UsageLevel {
	v := reflect.ValueOf(&u).Elem()
	for i := 0; i < v.NumField(); i++ {
		f := v.Field(i)
		switch f.Kind() {
		case reflect.Int:
			factor := 1 + (rng.Float64()*2-1)*spread
			scaled := int(float64(f.Int()) * factor)
			if f.Int() > 0 && scaled < 0 {
				scaled = 0
			}
			f.SetInt(int64(scaled))
		case reflect.Bool:
			if rng.Float64() < spread/2 {
				f.SetBool(!f.Bool())
			}
		}
	}
	return u
}

// ExtractFrom launches a prober process on the machine and extracts the
// full artifact vector through its API context.
func ExtractFrom(m *winsim.Machine) []float64 {
	sys := winapi.NewSystem(m)
	p := sys.Launch(`C:\weartear\prober.exe`, "prober.exe", nil)
	return Vector(sys.Context(p))
}

// Corpus builds a labeled training corpus: n sandbox machines (alternating
// bare-metal and Cuckoo images, near-pristine usage) and n end-user
// machines (worn usage), all with ±30% jitter.
func Corpus(n int, seed int64) []Sample {
	rng := rand.New(rand.NewSource(seed))
	samples := make([]Sample, 0, 2*n)
	for i := 0; i < n; i++ {
		usage := JitterUsage(winsim.SandboxUsage(), rng, 0.3)
		var m *winsim.Machine
		if i%2 == 0 {
			m = winsim.NewCleanBareMetalWithUsage(rng.Int63(), usage)
		} else {
			m = winsim.NewCuckooSandboxWithUsage(rng.Int63(), false, usage)
		}
		samples = append(samples, Sample{Features: ExtractFrom(m), Label: LabelSandbox})
	}
	for i := 0; i < n; i++ {
		usage := JitterUsage(winsim.EndUserUsage(), rng, 0.3)
		m := winsim.NewEndUserMachineWithUsage(rng.Int63(), usage)
		samples = append(samples, Sample{Features: ExtractFrom(m), Label: LabelEndUser})
	}
	return samples
}

// TrainDefault trains the fingerprinting tree on a standard corpus,
// matching the original work's setup (decision tree over the artifact
// vector).
func TrainDefault(seed int64) (*Tree, error) {
	return Train(Corpus(40, seed), Names(), 4)
}

// randSource builds a deterministic RNG for tests and corpora.
func randSource(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

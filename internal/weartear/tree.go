package weartear

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Label classifies an environment.
type Label int

// Labels.
const (
	LabelSandbox Label = iota + 1
	LabelEndUser
)

// String renders the label.
func (l Label) String() string {
	switch l {
	case LabelSandbox:
		return "sandbox"
	case LabelEndUser:
		return "end-user"
	default:
		return "unknown"
	}
}

// Sample is one labeled artifact vector.
type Sample struct {
	Features []float64
	Label    Label
}

// Tree is a binary CART decision tree over artifact vectors.
type Tree struct {
	root         *node
	featureNames []string
}

type node struct {
	// Leaf fields.
	leaf  bool
	label Label
	// Split fields.
	feature   int
	threshold float64
	left      *node // feature <= threshold
	right     *node // feature > threshold
}

// Train fits a CART tree (Gini impurity, axis-aligned splits) to the
// samples. featureNames are used for rendering; maxDepth bounds the tree.
func Train(samples []Sample, featureNames []string, maxDepth int) (*Tree, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("weartear: no training samples")
	}
	width := len(samples[0].Features)
	for _, s := range samples {
		if len(s.Features) != width {
			return nil, fmt.Errorf("weartear: inconsistent feature widths %d vs %d", len(s.Features), width)
		}
	}
	t := &Tree{featureNames: featureNames}
	t.root = build(samples, maxDepth)
	return t, nil
}

func majority(samples []Sample) Label {
	counts := map[Label]int{}
	for _, s := range samples {
		counts[s.Label]++
	}
	best, bestN := LabelSandbox, -1
	for l, n := range counts {
		if n > bestN || (n == bestN && l < best) {
			best, bestN = l, n
		}
	}
	return best
}

func gini(samples []Sample) float64 {
	if len(samples) == 0 {
		return 0
	}
	counts := map[Label]int{}
	for _, s := range samples {
		counts[s.Label]++
	}
	g := 1.0
	for _, n := range counts {
		p := float64(n) / float64(len(samples))
		g -= p * p
	}
	return g
}

func pure(samples []Sample) bool {
	for i := 1; i < len(samples); i++ {
		if samples[i].Label != samples[0].Label {
			return false
		}
	}
	return true
}

func build(samples []Sample, depth int) *node {
	if depth == 0 || pure(samples) || len(samples) < 4 {
		return &node{leaf: true, label: majority(samples)}
	}
	bestGain := 0.0
	bestFeature, bestThreshold := -1, 0.0
	parent := gini(samples)
	width := len(samples[0].Features)
	for f := 0; f < width; f++ {
		values := make([]float64, 0, len(samples))
		for _, s := range samples {
			values = append(values, s.Features[f])
		}
		sort.Float64s(values)
		for i := 0; i+1 < len(values); i++ {
			if values[i] == values[i+1] {
				continue
			}
			thr := (values[i] + values[i+1]) / 2
			var left, right []Sample
			for _, s := range samples {
				if s.Features[f] <= thr {
					left = append(left, s)
				} else {
					right = append(right, s)
				}
			}
			if len(left) == 0 || len(right) == 0 {
				continue
			}
			weighted := (float64(len(left))*gini(left) + float64(len(right))*gini(right)) / float64(len(samples))
			if gain := parent - weighted; gain > bestGain+1e-12 {
				bestGain, bestFeature, bestThreshold = gain, f, thr
			}
		}
	}
	if bestFeature < 0 {
		return &node{leaf: true, label: majority(samples)}
	}
	var left, right []Sample
	for _, s := range samples {
		if s.Features[bestFeature] <= bestThreshold {
			left = append(left, s)
		} else {
			right = append(right, s)
		}
	}
	return &node{
		feature:   bestFeature,
		threshold: bestThreshold,
		left:      build(left, depth-1),
		right:     build(right, depth-1),
	}
}

// Classify labels one artifact vector.
func (t *Tree) Classify(features []float64) Label {
	n := t.root
	for !n.leaf {
		if features[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.label
}

// Accuracy evaluates the tree on labeled samples.
func (t *Tree) Accuracy(samples []Sample) float64 {
	if len(samples) == 0 {
		return math.NaN()
	}
	correct := 0
	for _, s := range samples {
		if t.Classify(s.Features) == s.Label {
			correct++
		}
	}
	return float64(correct) / float64(len(samples))
}

// UsedFeatures returns the indices of features the tree splits on.
func (t *Tree) UsedFeatures() []int {
	seen := map[int]struct{}{}
	var walk func(*node)
	walk = func(n *node) {
		if n == nil || n.leaf {
			return
		}
		seen[n.feature] = struct{}{}
		walk(n.left)
		walk(n.right)
	}
	walk(t.root)
	out := make([]int, 0, len(seen))
	for f := range seen {
		out = append(out, f)
	}
	sort.Ints(out)
	return out
}

// String renders the tree.
func (t *Tree) String() string {
	var sb strings.Builder
	var walk func(n *node, indent string)
	walk = func(n *node, indent string) {
		if n.leaf {
			fmt.Fprintf(&sb, "%s-> %s\n", indent, n.label)
			return
		}
		name := fmt.Sprintf("f%d", n.feature)
		if n.feature < len(t.featureNames) {
			name = t.featureNames[n.feature]
		}
		fmt.Fprintf(&sb, "%s%s <= %.2f?\n", indent, name, n.threshold)
		walk(n.left, indent+"  ")
		walk(n.right, indent+"  ")
	}
	walk(t.root, "")
	return sb.String()
}

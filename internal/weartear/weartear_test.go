package weartear

import (
	"testing"
	"testing/quick"
	"time"

	"scarecrow/internal/core"
	"scarecrow/internal/winapi"
	"scarecrow/internal/winsim"
)

func TestCatalogShape(t *testing.T) {
	arts := All()
	if len(arts) != 44 {
		t.Fatalf("artifacts = %d, want 44 (Miramirkhani et al.)", len(arts))
	}
	cats := map[string]int{}
	top5, faked := 0, 0
	names := map[string]bool{}
	for _, a := range arts {
		cats[a.Category]++
		if a.Top5 {
			top5++
		}
		if a.Faked {
			faked++
		}
		if names[a.Name] {
			t.Errorf("duplicate artifact %s", a.Name)
		}
		names[a.Name] = true
		if len(a.APIs) == 0 {
			t.Errorf("artifact %s lists no associated APIs", a.Name)
		}
	}
	if len(cats) != 5 {
		t.Errorf("categories = %v, want 5", cats)
	}
	if top5 != 5 {
		t.Errorf("top-5 artifacts = %d", top5)
	}
	if faked != 16 {
		t.Errorf("faked artifacts = %d, want 16 (top 5 + 11 registry, Table III)", faked)
	}
	if cats[CatRegistry] != 16 {
		t.Errorf("registry category = %d, want 16 (the largest category)", cats[CatRegistry])
	}
}

func TestVectorSeparatesEnvironments(t *testing.T) {
	sandbox := ExtractFrom(winsim.NewCleanBareMetal(1))
	user := ExtractFrom(winsim.NewEndUserMachine(1))
	names := Names()
	idx := func(name string) int {
		for i, n := range names {
			if n == name {
				return i
			}
		}
		t.Fatalf("artifact %s missing", name)
		return -1
	}
	for _, top := range []string{"dnscacheEntries", "sysevt", "syssrc", "deviceClsCount", "autoRunCount"} {
		i := idx(top)
		if sandbox[i] >= user[i] {
			t.Errorf("%s: sandbox %.0f >= end-user %.0f", top, sandbox[i], user[i])
		}
	}
	if got := sandbox[idx("dnscacheEntries")]; got != 4 {
		t.Errorf("sandbox dnscacheEntries = %.0f, want 4", got)
	}
	if got := sandbox[idx("sysevt")]; got < 7000 || got > 8100 {
		t.Errorf("sandbox sysevt = %.0f, want ~8000", got)
	}
	if got := user[idx("totalMissingDlls")]; got != 37 {
		t.Errorf("end-user totalMissingDlls = %.0f, want 37", got)
	}
}

func TestTreeTrainsAndClassifies(t *testing.T) {
	tree, err := TrainDefault(7)
	if err != nil {
		t.Fatal(err)
	}
	train := Corpus(40, 7)
	if acc := tree.Accuracy(train); acc < 0.99 {
		t.Errorf("training accuracy = %.3f", acc)
	}
	holdout := Corpus(20, 99)
	if acc := tree.Accuracy(holdout); acc < 0.95 {
		t.Errorf("holdout accuracy = %.3f, want >= 0.95", acc)
	}
	if s := tree.String(); s == "" {
		t.Error("empty tree rendering")
	}
	if len(tree.UsedFeatures()) == 0 {
		t.Error("tree uses no features")
	}
}

// TestTableIIISteering is the paper's wear-and-tear experiment: a worn
// end-user machine classifies as end-user; the same machine under
// Scarecrow's wear-and-tear extension presents sandbox-typical artifact
// values and classifies as a sandbox.
func TestTableIIISteering(t *testing.T) {
	tree, err := TrainDefault(7)
	if err != nil {
		t.Fatal(err)
	}

	raw := ExtractFrom(winsim.NewEndUserMachine(3))
	if got := tree.Classify(raw); got != LabelEndUser {
		t.Fatalf("raw end-user machine classified as %v", got)
	}

	m := winsim.NewEndUserMachine(3)
	sys := winapi.NewSystem(m)
	var deceived []float64
	sys.RegisterProgram(`C:\weartear\prober.exe`, func(ctx *winapi.Context) int {
		deceived = Vector(ctx)
		return winapi.ExitOK
	})
	cfg := core.DefaultConfig()
	cfg.WearAndTear = true
	ctrl, err := core.Deploy(sys, core.NewEngine(core.NewDB(), cfg))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctrl.LaunchTarget(`C:\weartear\prober.exe`, "prober.exe"); err != nil {
		t.Fatal(err)
	}
	sys.Run(time.Minute)
	if deceived == nil {
		t.Fatal("prober did not run")
	}
	if got := tree.Classify(deceived); got != LabelSandbox {
		t.Errorf("deceived end-user machine classified as %v, want sandbox", got)
	}

	// Every Table III fake lands on its sandbox-typical value.
	names := Names()
	wantExact := map[string]float64{
		"dnscacheEntries": 4, "sysevt": 8000, "syssrc": 9,
		"deviceClsCount": 29, "autoRunCount": 3, "regSize": 53,
		"uninstallCount": 6, "totalSharedDlls": 115, "totalAppPaths": 14,
		"totalActiveSetup": 12, "shimCacheCount": 40, "MUICacheEntries": 12,
		"FireruleCount": 130, "USBStorCount": 1,
	}
	for i, n := range names {
		want, ok := wantExact[n]
		if !ok {
			continue
		}
		if deceived[i] != want {
			t.Errorf("faked %s = %.0f, want %.0f", n, deceived[i], want)
		}
	}
	// Non-faked registry artifacts keep their genuine worn values...
	for i, n := range names {
		if n == "typedURLsCount" && deceived[i] < 20 {
			t.Errorf("non-faked typedURLsCount steered: %.0f", deceived[i])
		}
		// ...while profile-directory probes cascade through the deceived
		// GetUserName answer ("currentuser") and find an empty profile —
		// an emergent, sandbox-consistent side effect of identity fakes.
		if n == "browserCacheFiles" && deceived[i] != 0 {
			t.Errorf("browserCacheFiles = %.0f, want 0 via identity cascade", deceived[i])
		}
	}
}

func TestTreeUsesTopArtifacts(t *testing.T) {
	// The original paper reports the top-5 artifacts were used by all of
	// its decision trees; our corpus should reproduce their primacy: the
	// tree's first split must be one of the faked artifacts, otherwise
	// Scarecrow's steering could not flip the decision.
	tree, err := TrainDefault(7)
	if err != nil {
		t.Fatal(err)
	}
	arts := All()
	for _, f := range tree.UsedFeatures() {
		if arts[f].Faked {
			return // at least one steered artifact drives the tree
		}
	}
	t.Error("decision tree uses no Scarecrow-steered artifacts")
}

func TestJitterUsageProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := randSource(seed)
		u := JitterUsage(winsim.SandboxUsage(), rng, 0.3)
		// Jitter must stay within 30% of the baseline for counts.
		base := winsim.SandboxUsage()
		if u.DNSCacheEntries < 0 || u.EventLogEvents < 0 {
			return false
		}
		lo := int(float64(base.EventLogEvents) * 0.69)
		hi := int(float64(base.EventLogEvents)*1.31) + 1
		return u.EventLogEvents >= lo && u.EventLogEvents <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTrainRejectsBadInput(t *testing.T) {
	if _, err := Train(nil, nil, 3); err == nil {
		t.Error("empty corpus accepted")
	}
	bad := []Sample{
		{Features: []float64{1, 2}, Label: LabelSandbox},
		{Features: []float64{1}, Label: LabelEndUser},
	}
	if _, err := Train(bad, nil, 3); err == nil {
		t.Error("ragged corpus accepted")
	}
}

func TestLabelString(t *testing.T) {
	if LabelSandbox.String() != "sandbox" || LabelEndUser.String() != "end-user" {
		t.Error("label names")
	}
	if Label(0).String() != "unknown" {
		t.Error("unknown label")
	}
}

// TestForestSteering extends Table III to an ensemble: the paper's
// argument requires the faked artifacts to steer *all* decision trees; a
// bagged forest confirms it — every tree votes "sandbox" for the deceived
// end-user machine.
func TestForestSteering(t *testing.T) {
	forest, err := TrainForest(Corpus(40, 7), Names(), 9, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	if forest.Size() != 9 {
		t.Fatalf("forest size = %d", forest.Size())
	}
	if acc := forest.Accuracy(Corpus(20, 99)); acc < 0.95 {
		t.Errorf("holdout accuracy = %.2f", acc)
	}

	raw := ExtractFrom(winsim.NewEndUserMachine(3))
	if forest.Classify(raw) != LabelEndUser {
		t.Fatal("raw end-user machine misclassified by the forest")
	}

	m := winsim.NewEndUserMachine(3)
	sys := winapi.NewSystem(m)
	var deceived []float64
	sys.RegisterProgram(`C:\weartear\prober.exe`, func(ctx *winapi.Context) int {
		deceived = Vector(ctx)
		return winapi.ExitOK
	})
	cfg := core.DefaultConfig()
	cfg.WearAndTear = true
	ctrl, err := core.Deploy(sys, core.NewEngine(core.NewDB(), cfg))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctrl.LaunchTarget(`C:\weartear\prober.exe`, "prober.exe"); err != nil {
		t.Fatal(err)
	}
	sys.Run(time.Minute)

	if got := forest.Classify(deceived); got != LabelSandbox {
		t.Errorf("forest vote = %v, want sandbox", got)
	}
	if frac := forest.SteeredFraction(deceived); frac < 0.99 {
		t.Errorf("steered fraction = %.2f, want every tree steered (Table III's premise)", frac)
	}
	if len(forest.UsedFeatures()) == 0 {
		t.Error("forest uses no features")
	}
}

func TestTrainForestRejectsBadInput(t *testing.T) {
	if _, err := TrainForest(nil, nil, 3, 3, 1); err == nil {
		t.Error("empty corpus accepted")
	}
	if _, err := TrainForest(Corpus(2, 1), Names(), 0, 3, 1); err == nil {
		t.Error("zero-size forest accepted")
	}
}

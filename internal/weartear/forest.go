package weartear

import (
	"fmt"
	"math/rand"
)

// Forest is a bagged ensemble of CART trees — Miramirkhani et al. speak of
// "decision trees" in the plural, and the paper's Table III argument
// ("the top 5 artifacts ... were used by all of their decision trees")
// is about steering every tree at once. The ensemble classifies by
// majority vote.
type Forest struct {
	trees []*Tree
}

// TrainForest fits n trees, each on a bootstrap resample of the corpus.
func TrainForest(samples []Sample, featureNames []string, n, maxDepth int, seed int64) (*Forest, error) {
	if n <= 0 {
		return nil, fmt.Errorf("weartear: forest size %d", n)
	}
	if len(samples) == 0 {
		return nil, fmt.Errorf("weartear: no training samples")
	}
	rng := rand.New(rand.NewSource(seed))
	f := &Forest{}
	for i := 0; i < n; i++ {
		boot := make([]Sample, len(samples))
		for j := range boot {
			boot[j] = samples[rng.Intn(len(samples))]
		}
		tree, err := Train(boot, featureNames, maxDepth)
		if err != nil {
			return nil, fmt.Errorf("weartear: tree %d: %w", i, err)
		}
		f.trees = append(f.trees, tree)
	}
	return f, nil
}

// Classify returns the majority-vote label.
func (f *Forest) Classify(features []float64) Label {
	votes := map[Label]int{}
	for _, t := range f.trees {
		votes[t.Classify(features)]++
	}
	if votes[LabelEndUser] > votes[LabelSandbox] {
		return LabelEndUser
	}
	return LabelSandbox
}

// Accuracy evaluates the ensemble on labeled samples.
func (f *Forest) Accuracy(samples []Sample) float64 {
	if len(samples) == 0 {
		return 0
	}
	correct := 0
	for _, s := range samples {
		if f.Classify(s.Features) == s.Label {
			correct++
		}
	}
	return float64(correct) / float64(len(samples))
}

// Size returns the number of trees.
func (f *Forest) Size() int { return len(f.trees) }

// UsedFeatures unions the feature indices across all trees.
func (f *Forest) UsedFeatures() []int {
	seen := map[int]struct{}{}
	for _, t := range f.trees {
		for _, idx := range t.UsedFeatures() {
			seen[idx] = struct{}{}
		}
	}
	out := make([]int, 0, len(seen))
	for idx := range seen {
		out = append(out, idx)
	}
	return out
}

// SteeredFraction reports what share of trees individually classify the
// vector as a sandbox — how uniformly Scarecrow's fakes steer the
// ensemble.
func (f *Forest) SteeredFraction(features []float64) float64 {
	if len(f.trees) == 0 {
		return 0
	}
	n := 0
	for _, t := range f.trees {
		if t.Classify(features) == LabelSandbox {
			n++
		}
	}
	return float64(n) / float64(len(f.trees))
}

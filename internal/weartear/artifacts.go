// Package weartear reimplements the wear-and-tear artifact fingerprinting
// of Miramirkhani et al. ("Spotless Sandboxes", IEEE S&P 2017), the second
// state-of-the-art evasion technique the paper evaluates Scarecrow against
// (Table III). It models 44 artifacts in 5 categories ("aging" signals of
// an actively used machine), extracts them through the same hooked API
// surface malware would use, and trains a CART decision tree to separate
// sandboxes from used end-user machines.
//
// Scarecrow's wear-and-tear extension (core.Config.WearAndTear) steers the
// top-5 artifacts plus the full registry category — 16 artifacts — to
// sandbox-typical values; the experiment shows that this flips the
// classifier's decision on a genuinely worn end-user machine.
package weartear

import (
	"fmt"
	"strings"

	"scarecrow/internal/winapi"
	"scarecrow/internal/winsim"
)

// Artifact categories.
const (
	CatSystem   = "system"
	CatDisk     = "disk"
	CatNetwork  = "network"
	CatRegistry = "registry"
	CatBrowser  = "browser"
)

// Artifact is one wear-and-tear signal.
type Artifact struct {
	// Name matches the paper's artifact identifiers where Table III names
	// one (dnscacheEntries, sysevt, ...).
	Name string
	// Category is one of the five artifact categories.
	Category string
	// Top5 marks the five most effective artifacts of the original paper
	// (used by all of its decision trees).
	Top5 bool
	// Faked marks artifacts Scarecrow's Table III extension steers.
	Faked bool
	// APIs lists the associated calls (Table III's last column).
	APIs []string
	// Extract reads the artifact value through the API surface.
	Extract func(ctx *winapi.Context) float64
}

// regSubkeys returns an extractor counting subkeys of a key via NtQueryKey.
func regSubkeys(key string) func(*winapi.Context) float64 {
	return func(ctx *winapi.Context) float64 {
		info, st := ctx.NtQueryKey(key)
		if !st.OK() {
			return 0
		}
		return float64(info.SubkeyCount)
	}
}

// regValues returns an extractor counting values of a key via NtQueryKey.
func regValues(key string) func(*winapi.Context) float64 {
	return func(ctx *winapi.Context) float64 {
		info, st := ctx.NtQueryKey(key)
		if !st.OK() {
			return 0
		}
		return float64(info.ValueCount)
	}
}

// dirCount returns an extractor counting entries of a directory.
func dirCount(dirPattern string) func(*winapi.Context) float64 {
	return func(ctx *winapi.Context) float64 {
		names, st := ctx.FindFirstFile(dirPattern)
		if !st.OK() {
			return 0
		}
		return float64(len(names))
	}
}

// userDir expands %USER% in a pattern with the logged-in account name.
func userDir(ctx *winapi.Context, pattern string) string {
	return strings.ReplaceAll(pattern, "%USER%", ctx.GetUserName())
}

// All returns the 44 artifacts in a fixed order.
func All() []Artifact {
	var a []Artifact
	add := func(art Artifact) { a = append(a, art) }

	// --- Top 5 (all faked by Scarecrow; Table III "Top 5" rows). ---
	add(Artifact{Name: "dnscacheEntries", Category: CatNetwork, Top5: true, Faked: true,
		APIs: []string{"DnsGetCacheDataTable"},
		Extract: func(ctx *winapi.Context) float64 {
			return float64(len(ctx.DnsGetCacheDataTable()))
		}})
	add(Artifact{Name: "sysevt", Category: CatSystem, Top5: true, Faked: true,
		APIs: []string{"EvtNext"},
		Extract: func(ctx *winapi.Context) float64 {
			_, total := ctx.EvtNext(0, 512)
			return float64(total)
		}})
	add(Artifact{Name: "syssrc", Category: CatSystem, Top5: true, Faked: true,
		APIs: []string{"EvtNext"},
		Extract: func(ctx *winapi.Context) float64 {
			page, _ := ctx.EvtNext(0, 8000)
			distinct := make(map[string]struct{})
			for _, src := range page {
				distinct[src] = struct{}{}
			}
			return float64(len(distinct))
		}})
	add(Artifact{Name: "deviceClsCount", Category: CatSystem, Top5: true, Faked: true,
		APIs:    []string{"NtOpenKeyEx", "NtQueryKey"},
		Extract: regSubkeys(winsim.RegDeviceClassesKey)})
	add(Artifact{Name: "autoRunCount", Category: CatRegistry, Top5: true, Faked: true,
		APIs:    []string{"NtOpenKeyEx", "NtQueryKey"},
		Extract: regValues(winsim.RegRunKey)})

	// --- Registry category (Table III "Registry related" rows, faked). ---
	add(Artifact{Name: "regSize", Category: CatRegistry, Faked: true,
		APIs: []string{"NtQuerySystemInformation"},
		Extract: func(ctx *winapi.Context) float64 {
			quota, st := ctx.NtQuerySystemInformation(winapi.SystemRegistryQuotaInformation)
			if !st.OK() {
				return 0
			}
			return float64(quota) / (1 << 20) // MB
		}})
	add(Artifact{Name: "uninstallCount", Category: CatRegistry, Faked: true,
		APIs: []string{"NtOpenKeyEx", "NtQueryKey"}, Extract: regSubkeys(winsim.RegUninstallKey)})
	add(Artifact{Name: "totalSharedDlls", Category: CatRegistry, Faked: true,
		APIs: []string{"NtOpenKeyEx", "NtQueryKey"}, Extract: regValues(winsim.RegSharedDllsKey)})
	add(Artifact{Name: "totalAppPaths", Category: CatRegistry, Faked: true,
		APIs: []string{"NtOpenKeyEx", "NtQueryKey"}, Extract: regSubkeys(winsim.RegAppPathsKey)})
	add(Artifact{Name: "totalActiveSetup", Category: CatRegistry, Faked: true,
		APIs: []string{"NtOpenKeyEx", "NtQueryKey"}, Extract: regSubkeys(winsim.RegActiveSetupKey)})
	add(Artifact{Name: "totalMissingDlls", Category: CatRegistry, Faked: true,
		APIs: []string{"NtOpenKeyEx", "NtQueryKey", "NtCreateFile"},
		Extract: func(ctx *winapi.Context) float64 {
			// Registered shared DLLs whose backing file cannot be opened.
			// Under deception the SharedDlls count itself is steered, so
			// the probe samples proportionally.
			info, st := ctx.NtQueryKey(winsim.RegSharedDllsKey)
			if !st.OK() || info.ValueCount == 0 {
				return 0
			}
			missing := 0
			// Sample the canonical shared DLL paths the usage model lays
			// down; absent entries count as missing.
			for i := 1; i <= info.ValueCount; i++ {
				path := sharedDllPath(i)
				if !ctx.NtCreateFile(path).OK() {
					missing++
				}
			}
			return float64(missing)
		}})
	add(Artifact{Name: "usrassistCount", Category: CatRegistry, Faked: true,
		APIs: []string{"NtOpenKeyEx", "NtQueryKey"},
		Extract: func(ctx *winapi.Context) float64 {
			total := 0.0
			for i := 1; ; i++ {
				sub, st := ctx.RegEnumKeyEx(winsim.RegUserAssistKey, i-1)
				if !st.OK() {
					break
				}
				countKey := winsim.RegUserAssistKey + `\` + sub + `\Count`
				info, st := ctx.NtQueryKey(countKey)
				if st.OK() {
					total += float64(info.ValueCount)
				}
			}
			return total
		}})
	add(Artifact{Name: "shimCacheCount", Category: CatRegistry, Faked: true,
		APIs: []string{"NtOpenKeyEx", "NtQueryValueKey"}, Extract: regValues(winsim.RegShimCacheKey)})
	add(Artifact{Name: "MUICacheEntries", Category: CatRegistry, Faked: true,
		APIs: []string{"NtOpenKeyEx", "NtQueryKey"}, Extract: regValues(winsim.RegMUICacheKey)})
	add(Artifact{Name: "FireruleCount", Category: CatRegistry, Faked: true,
		APIs: []string{"NtOpenKeyEx", "NtQueryKey"}, Extract: regValues(winsim.RegFirewallRulesKey)})
	add(Artifact{Name: "USBStorCount", Category: CatRegistry, Faked: true,
		APIs: []string{"NtOpenKeyEx", "NtQueryKey"}, Extract: regSubkeys(winsim.RegUSBStorKey)})

	// --- Registry category, not faked (beyond Table III's subset). ---
	add(Artifact{Name: "typedURLsCount", Category: CatRegistry,
		APIs: []string{"NtOpenKeyEx", "NtQueryKey"}, Extract: regValues(winsim.RegTypedURLsKey)})
	add(Artifact{Name: "recentDocsCount", Category: CatRegistry,
		APIs: []string{"NtOpenKeyEx", "NtQueryKey"}, Extract: regValues(winsim.RegRecentDocsKey)})
	add(Artifact{Name: "runMRUCount", Category: CatRegistry,
		APIs: []string{"NtOpenKeyEx", "NtQueryKey"}, Extract: regValues(winsim.RegRunMRUKey)})
	add(Artifact{Name: "mountedDevicesCount", Category: CatRegistry,
		APIs: []string{"NtOpenKeyEx", "NtQueryKey"}, Extract: regValues(winsim.RegMountedDevicesKey)})

	// --- System (beyond the top-5 system artifacts). ---
	add(Artifact{Name: "uptimeMinutes", Category: CatSystem,
		APIs: []string{"GetTickCount"},
		Extract: func(ctx *winapi.Context) float64 {
			return float64(ctx.GetTickCount()) / 60000
		}})
	add(Artifact{Name: "processCount", Category: CatSystem,
		APIs: []string{"CreateToolhelp32Snapshot"},
		Extract: func(ctx *winapi.Context) float64 {
			return float64(len(ctx.CreateToolhelp32Snapshot()))
		}})
	add(Artifact{Name: "startMenuShortcuts", Category: CatSystem,
		APIs:    []string{"FindFirstFile"},
		Extract: dirCount(`C:\ProgramData\Microsoft\Windows\Start Menu\Programs\*`)})
	add(Artifact{Name: "tempFileCount", Category: CatSystem,
		APIs: []string{"FindFirstFile"}, Extract: dirCount(`C:\Windows\Temp\*`)})
	add(Artifact{Name: "userProfileCount", Category: CatSystem,
		APIs: []string{"FindFirstFile"}, Extract: dirCount(`C:\Users\*`)})
	add(Artifact{Name: "installedProgramDirs", Category: CatSystem,
		APIs: []string{"FindFirstFile"}, Extract: dirCount(`C:\Program Files\*`)})
	add(Artifact{Name: "systemDriverCount", Category: CatSystem,
		APIs: []string{"FindFirstFile"}, Extract: dirCount(`C:\Windows\System32\drivers\*`)})

	// --- Disk. ---
	add(Artifact{Name: "totalDiskGB", Category: CatDisk,
		APIs: []string{"GetDiskFreeSpaceEx"},
		Extract: func(ctx *winapi.Context) float64 {
			disk, st := ctx.GetDiskFreeSpaceEx(`C:\`)
			if !st.OK() {
				return 0
			}
			return float64(disk.TotalBytes) / (1 << 30)
		}})
	add(Artifact{Name: "usedDiskFraction", Category: CatDisk,
		APIs: []string{"GetDiskFreeSpaceEx"},
		Extract: func(ctx *winapi.Context) float64 {
			disk, st := ctx.GetDiskFreeSpaceEx(`C:\`)
			if !st.OK() || disk.TotalBytes == 0 {
				return 0
			}
			return 1 - float64(disk.FreeBytes)/float64(disk.TotalBytes)
		}})
	add(Artifact{Name: "downloadsCount", Category: CatDisk,
		APIs: []string{"FindFirstFile"},
		Extract: func(ctx *winapi.Context) float64 {
			return dirCount(userDir(ctx, `C:\Users\%USER%\Downloads\*`))(ctx)
		}})
	add(Artifact{Name: "documentsCount", Category: CatDisk,
		APIs: []string{"FindFirstFile"},
		Extract: func(ctx *winapi.Context) float64 {
			return dirCount(userDir(ctx, `C:\Users\%USER%\Documents\*`))(ctx)
		}})
	add(Artifact{Name: "desktopItemCount", Category: CatDisk,
		APIs: []string{"FindFirstFile"},
		Extract: func(ctx *winapi.Context) float64 {
			return dirCount(userDir(ctx, `C:\Users\%USER%\Desktop\*`))(ctx)
		}})
	add(Artifact{Name: "sharedDllFilesOnDisk", Category: CatDisk,
		APIs: []string{"FindFirstFile"},
		Extract: func(ctx *winapi.Context) float64 {
			names, st := ctx.FindFirstFile(`C:\Windows\System32\*`)
			if !st.OK() {
				return 0
			}
			n := 0
			for _, f := range names {
				if strings.HasSuffix(strings.ToLower(f), ".dll") {
					n++
				}
			}
			return float64(n)
		}})
	add(Artifact{Name: "recycleActivity", Category: CatDisk,
		APIs: []string{"FindFirstFile"}, Extract: dirCount(`C:\$Recycle.Bin\*`)})
	add(Artifact{Name: "programDataDirs", Category: CatDisk,
		APIs: []string{"FindFirstFile"}, Extract: dirCount(`C:\ProgramData\*`)})

	// --- Network (beyond dnscacheEntries). ---
	add(Artifact{Name: "hostsFileSize", Category: CatNetwork,
		APIs: []string{"ReadFile"},
		Extract: func(ctx *winapi.Context) float64 {
			data, st := ctx.ReadFile(`C:\Windows\System32\drivers\etc\hosts`)
			if !st.OK() {
				return 0
			}
			return float64(len(data))
		}})
	add(Artifact{Name: "networkProfilesCount", Category: CatNetwork,
		APIs: []string{"NtOpenKeyEx", "NtQueryKey"}, Extract: regSubkeys(winsim.RegNetworkProfiles)})
	add(Artifact{Name: "mappedDrivesCount", Category: CatNetwork,
		APIs: []string{"NtOpenKeyEx", "NtQueryKey"}, Extract: regSubkeys(winsim.RegMappedDrivesKey)})
	add(Artifact{Name: "proxyConfigured", Category: CatNetwork,
		APIs: []string{"RegQueryValueEx"},
		Extract: func(ctx *winapi.Context) float64 {
			v, st := ctx.RegQueryValueEx(winsim.RegProxySettingsKey, "ProxyEnable")
			if !st.OK() {
				return 0
			}
			return float64(v.Num)
		}})

	// --- Browser. ---
	add(Artifact{Name: "browserCacheFiles", Category: CatBrowser,
		APIs: []string{"FindFirstFile"},
		Extract: func(ctx *winapi.Context) float64 {
			return dirCount(userDir(ctx, `C:\Users\%USER%\AppData\Local\Browser\Cache\*`))(ctx)
		}})
	add(Artifact{Name: "cookieCount", Category: CatBrowser,
		APIs: []string{"FindFirstFile"},
		Extract: func(ctx *winapi.Context) float64 {
			return dirCount(userDir(ctx, `C:\Users\%USER%\AppData\Roaming\Browser\Cookies\*`))(ctx)
		}})
	add(Artifact{Name: "typedURLDomains", Category: CatBrowser,
		APIs: []string{"NtOpenKeyEx", "NtQueryKey"}, Extract: regValues(winsim.RegTypedURLsKey)})
	add(Artifact{Name: "historyPresence", Category: CatBrowser,
		APIs: []string{"FindFirstFile"},
		Extract: func(ctx *winapi.Context) float64 {
			if dirCount(userDir(ctx, `C:\Users\%USER%\AppData\Local\Browser\Cache\*`))(ctx) > 0 {
				return 1
			}
			return 0
		}})
	add(Artifact{Name: "bookmarkProxy", Category: CatBrowser,
		APIs: []string{"FindFirstFile"},
		Extract: func(ctx *winapi.Context) float64 {
			return dirCount(userDir(ctx, `C:\Users\%USER%\Favorites\*`))(ctx)
		}})

	return a
}

func sharedDllPath(i int) string {
	return fmt.Sprintf(`C:\Windows\System32\shared%04d.dll`, i)
}

// Vector extracts all artifact values in catalog order.
func Vector(ctx *winapi.Context) []float64 {
	arts := All()
	out := make([]float64, len(arts))
	for i, a := range arts {
		out[i] = a.Extract(ctx)
	}
	return out
}

// Names returns the artifact names in catalog order.
func Names() []string {
	arts := All()
	out := make([]string, len(arts))
	for i, a := range arts {
		out[i] = a.Name
	}
	return out
}

package deter

import (
	"reflect"
	"testing"

	"scarecrow/internal/winsim"
)

// Planting must be a pure function of (profile, seed, config): two
// machines built alike get byte-identical canaries, so monitored verdicts
// stay reproducible.
func TestPlantDeterministic(t *testing.T) {
	m1 := winsim.NewProfileMachine(winsim.ProfileBareMetalSandbox, 7)
	m2 := winsim.NewProfileMachine(winsim.ProfileBareMetalSandbox, 7)
	p1, err := Plant(m1, PlantConfig{Seed: 3})
	if err != nil {
		t.Fatalf("plant 1: %v", err)
	}
	p2, err := Plant(m2, PlantConfig{Seed: 3})
	if err != nil {
		t.Fatalf("plant 2: %v", err)
	}
	if !reflect.DeepEqual(p1.Canaries, p2.Canaries) {
		t.Fatalf("plans differ:\n%v\nvs\n%v", p1.Canaries, p2.Canaries)
	}
	if p1.BaselineCount() != p2.BaselineCount() {
		t.Fatalf("baselines differ: %d vs %d", p1.BaselineCount(), p2.BaselineCount())
	}
	for _, c := range p1.Canaries {
		if c.Kind == CanaryHoneypotDir {
			continue
		}
		if c.Kind == CanaryDecoyFile {
			b1, ok1 := m1.FS.ReadFile(c.Path)
			b2, ok2 := m2.FS.ReadFile(c.Path)
			if !ok1 || !ok2 || string(b1) != string(b2) {
				t.Fatalf("decoy %s content differs across machines", c.Path)
			}
			if fnv64a(b1) != c.Fingerprint {
				t.Fatalf("decoy %s fingerprint does not match content", c.Path)
			}
		}
	}
}

// A planted machine cloned through the snapshot pool must carry identical
// canaries — the service's pooled labs depend on it.
func TestPlantSurvivesSnapshotClone(t *testing.T) {
	m := winsim.NewProfileMachine(winsim.ProfileBareMetalSandbox, 1)
	plan, err := Plant(m, PlantConfig{})
	if err != nil {
		t.Fatalf("plant: %v", err)
	}
	snap := m.Snapshot()
	c1 := snap.Clone(11)
	c2 := snap.Clone(11)
	for _, c := range plan.Canaries {
		if c.Kind != CanaryDecoyFile {
			continue
		}
		b1, ok1 := c1.FS.ReadFile(c.Path)
		b2, ok2 := c2.FS.ReadFile(c.Path)
		if !ok1 || !ok2 {
			t.Fatalf("decoy %s missing from clone", c.Path)
		}
		if string(b1) != string(b2) || fnv64a(b1) != c.Fingerprint {
			t.Fatalf("decoy %s differs across clones of the same snapshot", c.Path)
		}
	}
}

func TestCanaryLookups(t *testing.T) {
	m := winsim.NewProfileMachine(winsim.ProfileBareMetalSandbox, 1)
	plan, err := Plant(m, PlantConfig{})
	if err != nil {
		t.Fatalf("plant: %v", err)
	}
	user := m.HW.UserName
	if _, ok := plan.CanaryFile(`C:\Users\` + user + `\Documents\` + decoyNames[0]); !ok {
		t.Fatalf("decoy in Documents not recognized")
	}
	// Case-insensitive, and paths inside the honeypot match through it.
	hp := `c:\users\` + user + `\documents\` + honeypotDirName
	if c, ok := plan.CanaryFile(hp + `\anything.bin`); !ok || c.Kind != CanaryHoneypotDir {
		t.Fatalf("honeypot child lookup = %v, %v; want honeypot-dir canary", c, ok)
	}
	if plan.BaselineFile(hp + `\anything.bin`) {
		t.Fatalf("honeypot content must not be baseline")
	}
	// Registry canaries match by prefix across hive aliases.
	if c, ok := plan.CanaryKey(`HKCU\Software\WalletVault\sub`); !ok || c.Kind != CanaryRegistryKey {
		t.Fatalf("registry canary prefix lookup failed: %v, %v", c, ok)
	}
	if _, ok := plan.CanaryKey(`HKLM\SOFTWARE\Microsoft\Windows`); ok {
		t.Fatalf("unrelated registry key matched a canary")
	}
	// The profile's real user files are baseline, not canary.
	if plan.BaselineCount() == 0 {
		t.Fatalf("baseline is empty; profile files were not captured")
	}
}

// Tampering attribution: a rewritten decoy and a destroyed honeypot show
// up in the post-run fingerprint pass.
func TestTamperedAttribution(t *testing.T) {
	m := winsim.NewProfileMachine(winsim.ProfileBareMetalSandbox, 1)
	plan, err := Plant(m, PlantConfig{})
	if err != nil {
		t.Fatalf("plant: %v", err)
	}
	if got := plan.Tampered(m); len(got) != 0 {
		t.Fatalf("fresh plant reports %d tampered canaries", len(got))
	}
	victim := plan.Canaries[0]
	if victim.Kind != CanaryDecoyFile {
		t.Fatalf("plan order changed; first canary is %v", victim.Kind)
	}
	if err := m.FS.WriteFile(victim.Path, []byte("ciphertext")); err != nil {
		t.Fatalf("overwrite: %v", err)
	}
	got := plan.Tampered(m)
	if len(got) != 1 || got[0].Path != victim.Path {
		t.Fatalf("tampered = %v, want exactly %s", got, victim.Path)
	}
}

func TestPlantRequiresUser(t *testing.T) {
	m := winsim.NewMachine("blank", 1)
	m.HW.UserName = ""
	if _, err := Plant(m, PlantConfig{}); err == nil {
		t.Fatalf("plant on a userless machine must error, not panic or succeed")
	}
}

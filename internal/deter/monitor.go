package deter

import (
	"fmt"
	"time"

	"scarecrow/internal/trace"
	"scarecrow/internal/winapi"
	"scarecrow/internal/winsim"
)

// Action is the enforcement a monitor applies to a flagged payload.
type Action string

// Enforcement actions.
const (
	// ActionKill terminates the flagged process at its next API call.
	ActionKill Action = "kill"
	// ActionThrottle injects virtual delay ahead of every call the flagged
	// process makes, so the observation window closes on it.
	ActionThrottle Action = "throttle"
	// ActionIsolate denies the flagged process's network calls.
	ActionIsolate Action = "isolate"
	// ActionObserve detects and reports but never enforces.
	ActionObserve Action = "observe"
)

// ParseAction resolves an action name; "" means ActionKill.
func ParseAction(s string) (Action, error) {
	switch Action(s) {
	case "":
		return ActionKill, nil
	case ActionKill, ActionThrottle, ActionIsolate, ActionObserve:
		return Action(s), nil
	}
	return "", fmt.Errorf("deter: unknown action %q (want kill, throttle, isolate, or observe)", s)
}

// MonitorConfig configures one monitored run.
type MonitorConfig struct {
	// Action is what happens to a flagged process (default kill).
	Action Action
	// Detector tunes the online scorer.
	Detector DetectorConfig
	// ThrottleDelay is the per-call delay ActionThrottle injects
	// (default 250ms of virtual time).
	ThrottleDelay time.Duration
	// OnDetection, when non-nil, observes every detection as it fires —
	// the /v1/monitor streaming hook. It runs synchronously inside the
	// recorder tap and must not block.
	OnDetection func(Detection)
}

// Monitor wires a plan and a detector into one machine run: install
// Observe as the recorder tap and Enforce as the system enforcer, run the
// sample, then read Outcome. A monitor serves exactly one run and is
// single-goroutine by construction — both callbacks fire inside the
// deterministic scheduler — so it needs no locking.
type Monitor struct {
	m    *winsim.Machine
	plan *Plan
	det  *Detector
	cfg  MonitorConfig

	start      time.Duration
	detections []Detection
	lost       map[string]bool
	enforced   bool
	enforcedAt time.Duration
	enforcePID int
	lostAtEnf  int
}

// NewMonitor builds a monitor for one run on the planted machine. The
// detector's entropy signal reads written content through the machine's
// file system.
func NewMonitor(m *winsim.Machine, plan *Plan, cfg MonitorConfig) *Monitor {
	if cfg.Action == "" {
		cfg.Action = ActionKill
	}
	if cfg.ThrottleDelay <= 0 {
		cfg.ThrottleDelay = 250 * time.Millisecond
	}
	det := NewDetector(plan, cfg.Detector)
	det.SetContentFn(m.FS.ReadFile)
	return &Monitor{
		m: m, plan: plan, det: det, cfg: cfg,
		start: m.Clock.Now(),
		lost:  make(map[string]bool),
	}
}

// Observe is the recorder tap: it feeds the detector, accounts real files
// lost, and surfaces detections to the streaming hook.
func (mo *Monitor) Observe(e trace.Event) {
	// A baseline file overwritten or deleted is lost; canaries are not
	// counted (losing them is their job).
	if e.Success && (e.Kind == trace.KindFileWrite || e.Kind == trace.KindFileDelete) {
		if mo.plan.BaselineFile(e.Target) {
			mo.lost[winsim.NormalizePath(e.Target)] = true
		}
	}
	dets := mo.det.Observe(e)
	if len(dets) == 0 {
		return
	}
	mo.detections = append(mo.detections, dets...)
	if mo.cfg.OnDetection != nil {
		for _, d := range dets {
			mo.cfg.OnDetection(d)
		}
	}
}

// Enforce is the winapi enforcer: flagged processes get the configured
// action at their next API boundary. The first enforcement freezes the
// files-lost counter — that is the "files lost before kill" the verdict
// reports.
func (mo *Monitor) Enforce(pid int, api string) winapi.Enforcement {
	if mo.cfg.Action == ActionObserve || !mo.det.Flagged(pid) {
		return winapi.Enforcement{}
	}
	if !mo.enforced {
		mo.enforced = true
		mo.enforcedAt = mo.m.Clock.Now()
		mo.enforcePID = pid
		mo.lostAtEnf = len(mo.lost)
	}
	switch mo.cfg.Action {
	case ActionThrottle:
		return winapi.Enforcement{Action: winapi.EnforceThrottle, Delay: mo.cfg.ThrottleDelay}
	case ActionIsolate:
		return winapi.Enforcement{Action: winapi.EnforceIsolate}
	default:
		return winapi.Enforcement{Action: winapi.EnforceKill}
	}
}

// Outcome is the deterrence verdict of one monitored run.
type Outcome struct {
	// Action is the enforcement mode the run used.
	Action Action
	// Detected reports whether any signal fired; Deterred whether an
	// enforcement was actually applied.
	Detected bool
	Deterred bool
	// PID is the first enforced process (0 when none).
	PID int
	// TimeToDetect is virtual time from sample launch to the first
	// detection; EnforcedAt from launch to the first enforcement. Both are
	// 0 when the corresponding thing never happened.
	TimeToDetect time.Duration
	EnforcedAt   time.Duration
	// FilesLost counts real (baseline, non-canary) files overwritten or
	// deleted before the first enforcement — or across the whole run when
	// nothing was enforced.
	FilesLost int
	// CanariesPlanted/Touched/Tampered summarize canary contact;
	// TamperedCanaries lists post-run fingerprint mismatches in plan
	// order (attribution).
	CanariesPlanted  int
	CanariesTouched  int
	CanariesTampered int
	TamperedCanaries []Canary
	// Detections is the full detection stream in firing order.
	Detections []Detection
}

// Outcome computes the run's deterrence verdict. Call it after the
// scheduler has drained (or the window expired).
func (mo *Monitor) Outcome() Outcome {
	out := Outcome{
		Action:          mo.cfg.Action,
		Detected:        len(mo.detections) > 0,
		Deterred:        mo.enforced,
		PID:             mo.enforcePID,
		CanariesPlanted: len(mo.plan.Canaries),
		Detections:      mo.detections,
	}
	if out.Detected {
		out.TimeToDetect = mo.detections[0].Time - mo.start
	}
	if mo.enforced {
		out.EnforcedAt = mo.enforcedAt - mo.start
		out.FilesLost = mo.lostAtEnf
	} else {
		out.FilesLost = len(mo.lost)
	}
	touched := make(map[string]bool)
	tampered := make(map[string]bool)
	for _, d := range mo.detections {
		switch d.Signal {
		case SignalCanaryTouch:
			touched[winsim.NormalizePath(d.Target)] = true
		case SignalCanaryTamper:
			tampered[winsim.NormalizePath(d.Target)] = true
		}
	}
	out.CanariesTouched = len(touched)
	out.CanariesTampered = len(tampered)
	out.TamperedCanaries = mo.plan.Tampered(mo.m)
	return out
}

package deter

import (
	"reflect"
	"testing"
	"time"

	"scarecrow/internal/trace"
	"scarecrow/internal/winsim"
)

func testPlan(t testing.TB) (*winsim.Machine, *Plan) {
	t.Helper()
	m := winsim.NewProfileMachine(winsim.ProfileBareMetalSandbox, 1)
	plan, err := Plant(m, PlantConfig{})
	if err != nil {
		t.Fatalf("plant: %v", err)
	}
	return m, plan
}

func TestDetectorCanaryTouchFlags(t *testing.T) {
	_, plan := testPlan(t)
	d := NewDetector(plan, DetectorConfig{})
	canary := plan.Canaries[0].Path

	dets := d.Observe(trace.Event{Kind: trace.KindFileRead, PID: 9, Target: canary, Success: true, Time: time.Second})
	if len(dets) != 1 || dets[0].Signal != SignalCanaryTouch {
		t.Fatalf("canary read produced %v, want one canary-touch", dets)
	}
	if !d.Flagged(9) {
		t.Fatalf("canary touch (weight 1.0) must flag the process at the default kill score")
	}
	// Same canary again: deduplicated.
	if dets := d.Observe(trace.Event{Kind: trace.KindFileRead, PID: 9, Target: canary, Success: true, Time: 2 * time.Second}); len(dets) != 0 {
		t.Fatalf("repeat touch re-fired: %v", dets)
	}
	// A failed access still counts: the attempt is the tell.
	if dets := d.Observe(trace.Event{Kind: trace.KindFileRead, PID: 10, Target: plan.Canaries[1].Path, Success: false, Time: time.Second}); len(dets) != 1 {
		t.Fatalf("failed canary access did not fire: %v", dets)
	}
}

func TestDetectorCanaryTamper(t *testing.T) {
	_, plan := testPlan(t)
	d := NewDetector(plan, DetectorConfig{})
	canary := plan.Canaries[0].Path
	dets := d.Observe(trace.Event{Kind: trace.KindFileWrite, PID: 4, Target: canary, Success: true, Time: time.Second})
	want := map[string]bool{SignalCanaryTouch: true, SignalCanaryTamper: true}
	if len(dets) != 2 || !want[dets[0].Signal] || !want[dets[1].Signal] {
		t.Fatalf("canary overwrite produced %v, want touch+tamper", dets)
	}
}

func TestDetectorMassEnumAndOverwrite(t *testing.T) {
	_, plan := testPlan(t)
	d := NewDetector(plan, DetectorConfig{})
	now := time.Second
	ev := func(kind trace.Kind, target, detail string) []Detection {
		now += 10 * time.Millisecond
		return d.Observe(trace.Event{Kind: kind, PID: 7, Target: target, Detail: detail, Success: true, Time: now})
	}

	var got []Detection
	got = append(got, ev(trace.KindFileQuery, `C:\work\a`, "enum=*")...)
	got = append(got, ev(trace.KindFileQuery, `C:\work\b`, "enum=*")...)
	if len(got) != 1 || got[0].Signal != SignalMassEnum {
		t.Fatalf("two enumerations inside the window produced %v, want mass-enumeration", got)
	}

	got = nil
	for _, f := range []string{`C:\work\a\1.doc`, `C:\work\a\2.doc`, `C:\work\a\3.doc`} {
		ev(trace.KindFileRead, f, "")
		got = append(got, ev(trace.KindFileWrite, f+".enc", "")...)
		got = append(got, ev(trace.KindFileDelete, f, "")...)
	}
	var ow int
	for _, det := range got {
		if det.Signal == SignalReadOverwrite {
			ow++
		}
	}
	if ow != 1 {
		t.Fatalf("read-then-overwrite fired %d times across %v, want once", ow, got)
	}
	if !d.Flagged(7) {
		t.Fatalf("enum+overwrite signals did not flag the process")
	}
}

func TestDetectorEntropyJump(t *testing.T) {
	_, plan := testPlan(t)
	d := NewDetector(plan, DetectorConfig{})
	content := map[string][]byte{}
	d.SetContentFn(func(path string) ([]byte, bool) {
		b, ok := content[path]
		return b, ok
	})

	low := make([]byte, 256) // all zeros: 0 bits/byte
	high := make([]byte, 256)
	streamCipherTest(high)
	content[`C:\u\plain.txt`] = low
	content[`C:\u\cipher.bin`] = high

	if dets := d.Observe(trace.Event{Kind: trace.KindFileWrite, PID: 3, Target: `C:\u\plain.txt`, Success: true, Time: time.Second}); len(dets) != 0 {
		t.Fatalf("low-entropy write fired: %v", dets)
	}
	dets := d.Observe(trace.Event{Kind: trace.KindFileWrite, PID: 3, Target: `C:\u\cipher.bin`, Success: true, Time: 2 * time.Second})
	if len(dets) != 1 || dets[0].Signal != SignalEntropyJump {
		t.Fatalf("ciphertext write produced %v, want entropy-jump", dets)
	}
}

// streamCipherTest fills buf with the malware package's keystream shape
// (xorshift64*), locally so the test does not import it.
func streamCipherTest(buf []byte) {
	var x uint64 = 88172645463325252
	for i := range buf {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		buf[i] = byte((x * 2685821657736338717) >> 56)
	}
}

func TestDetectorShadowDelete(t *testing.T) {
	_, plan := testPlan(t)
	d := NewDetector(plan, DetectorConfig{})
	dets := d.Observe(trace.Event{Kind: trace.KindProcessCreate, PID: 5, Target: `C:\Windows\System32\vssadmin.exe`, Success: true, Time: time.Second})
	if len(dets) != 1 || dets[0].Signal != SignalShadowDelete {
		t.Fatalf("vssadmin spawn produced %v, want shadow-delete", dets)
	}
	if !d.Flagged(5) {
		t.Fatalf("shadow deletion (weight 1.0) must flag")
	}
}

// Signals outside the window no longer contribute to the score.
func TestDetectorWindowExpiry(t *testing.T) {
	_, plan := testPlan(t)
	d := NewDetector(plan, DetectorConfig{Window: time.Second, EnumThreshold: 2})
	d.Observe(trace.Event{Kind: trace.KindFileQuery, PID: 2, Target: `C:\a`, Detail: "enum=*", Success: true, Time: 0})
	// Ten seconds later: the first enumeration has aged out of the window.
	dets := d.Observe(trace.Event{Kind: trace.KindFileQuery, PID: 2, Target: `C:\b`, Detail: "enum=*", Success: true, Time: 10 * time.Second})
	if len(dets) != 0 {
		t.Fatalf("stale enumeration still counted: %v", dets)
	}
}

// The detector is a pure function of the event sequence: replaying the
// same stream yields identical detections.
func TestDetectorDeterministicReplay(t *testing.T) {
	_, plan := testPlan(t)
	events := []trace.Event{
		{Kind: trace.KindFileQuery, PID: 1, Target: `C:\u\Documents`, Detail: "enum=*", Success: true, Time: 1 * time.Second},
		{Kind: trace.KindFileRead, PID: 1, Target: plan.Canaries[0].Path, Success: true, Time: 2 * time.Second},
		{Kind: trace.KindFileWrite, PID: 1, Target: plan.Canaries[0].Path + ".enc", Success: true, Time: 3 * time.Second},
		{Kind: trace.KindProcessCreate, PID: 1, Target: `vssadmin.exe`, Success: true, Time: 4 * time.Second},
		{Kind: trace.KindRegQueryValue, PID: 1, Target: canaryRegKeys[0], Success: true, Time: 5 * time.Second},
	}
	run := func() []Detection {
		d := NewDetector(plan, DetectorConfig{})
		var out []Detection
		for _, e := range events {
			out = append(out, d.Observe(e)...)
		}
		return out
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("replay diverged:\n%v\nvs\n%v", a, b)
	}
	if len(a) == 0 {
		t.Fatalf("replay produced no detections at all")
	}
}

// FuzzDetectorWindow drives the online scorer with an arbitrary event
// stream: it must never panic, detections must be time-ordered and carry
// non-negative scores, and a replay must be bit-identical.
func FuzzDetectorWindow(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, int64(1), uint8(2))
	f.Add([]byte{0xff, 0x00, 0x80, 0x7f}, int64(100), uint8(0))
	f.Add([]byte("enumenumenum"), int64(-5), uint8(9))

	m := winsim.NewProfileMachine(winsim.ProfileBareMetalSandbox, 1)
	plan, err := Plant(m, PlantConfig{})
	if err != nil {
		f.Fatalf("plant: %v", err)
	}
	kinds := []trace.Kind{
		trace.KindFileQuery, trace.KindFileRead, trace.KindFileWrite,
		trace.KindFileDelete, trace.KindFileCreate, trace.KindProcessCreate,
		trace.KindRegOpenKey, trace.KindRegSetValue, trace.KindRegDeleteKey,
		trace.KindAPICall,
	}
	targets := []string{
		plan.Canaries[0].Path,
		plan.Canaries[len(plan.Canaries)-1].Path,
		`C:\Users\u\Documents\report.docx`,
		`C:\Users\u\Documents\report.docx.enc`,
		`C:\Windows\System32\vssadmin.exe`,
		canaryRegKeys[0] + `\sub`,
		`HKLM\SOFTWARE\Microsoft`,
		"",
	}
	details := []string{"", "enum=*", "bytes=100"}

	f.Fuzz(func(t *testing.T, data []byte, windowNS int64, seed uint8) {
		cfg := DetectorConfig{Window: time.Duration(windowNS)}
		events := make([]trace.Event, 0, len(data)/2)
		now := time.Duration(seed) * time.Millisecond
		for i := 0; i+1 < len(data); i += 2 {
			now += time.Duration(data[i]&0x3f) * time.Millisecond
			events = append(events, trace.Event{
				Kind:    kinds[int(data[i])%len(kinds)],
				PID:     1 + int(data[i+1]%4),
				Target:  targets[int(data[i+1])%len(targets)],
				Detail:  details[int(data[i]>>6)%len(details)],
				Success: data[i+1]&1 == 0,
				Time:    now,
			})
		}
		run := func() []Detection {
			d := NewDetector(plan, cfg)
			var out []Detection
			for _, e := range events {
				out = append(out, d.Observe(e)...)
			}
			return out
		}
		a := run()
		for i, det := range a {
			if det.Score < 0 || det.Weight < 0 {
				t.Fatalf("detection %d has negative score/weight: %+v", i, det)
			}
			if i > 0 && det.Time < a[i-1].Time {
				t.Fatalf("detections out of time order at %d: %v then %v", i, a[i-1].Time, det.Time)
			}
		}
		if b := run(); !reflect.DeepEqual(a, b) {
			t.Fatalf("replay diverged for the same stream")
		}
	})
}

// Package deter is the real-time ransomware deterrence tier: where the
// rest of the codebase deactivates evasive malware by feeding its evasive
// logic (the paper's camouflage), this package handles the specimens that
// pass the camouflage — or were never evasive to begin with — by watching
// the live kernel-event stream and stopping a destructive payload while it
// runs. It has three parts, mirroring a minimal EDR:
//
//   - Plant seeds a machine with canaries before the sample launches:
//     decoy files whose names sort ahead of the user's real documents,
//     a honeypot directory, and registry keys advertising wallets and
//     credentials. Every canary is content-fingerprinted so tampering is
//     attributable after the fact.
//   - Detector scores the event stream online (delivered through
//     trace.Recorder.Tap) against ransomware tells: canary touches, mass
//     file enumeration, read-then-overwrite patterns, entropy-jump
//     writes, and shadow-copy deletion.
//   - Monitor glues the two to winapi's enforcement boundary: a flagged
//     process is killed, throttled, or isolated at its next API call.
//
// Everything is deterministic: planting is a pure function of
// (machine, seed), the detector consumes virtual-clock timestamps only,
// and plans never iterate maps into output. The package returns errors
// rather than panicking — it runs inside scarecrowd's serving path.
package deter

import (
	"fmt"
	"sort"
	"strings"

	"scarecrow/internal/winsim"
)

// CanaryKind classifies a planted canary.
type CanaryKind string

// Canary kinds.
const (
	CanaryDecoyFile   CanaryKind = "decoy-file"
	CanaryHoneypotDir CanaryKind = "honeypot-dir"
	CanaryRegistryKey CanaryKind = "registry-key"
)

// PlantConfig controls what Plant seeds into a machine. The zero value
// asks for the defaults; set a count to -1 to disable that canary class.
type PlantConfig struct {
	// Seed varies decoy contents (not names or placement) so two
	// deployments are distinguishable while each stays reproducible.
	Seed int64
	// DecoysPerDir is the number of decoy files planted in each user
	// content directory (default 2, -1 disables).
	DecoysPerDir int
	// RegistryKeys is the number of canary registry keys planted under
	// HKCU\Software (default 2, -1 disables).
	RegistryKeys int
	// NoHoneypot skips the honeypot directory.
	NoHoneypot bool
}

func (c PlantConfig) withDefaults() PlantConfig {
	if c.DecoysPerDir == 0 {
		c.DecoysPerDir = 2
	}
	if c.RegistryKeys == 0 {
		c.RegistryKeys = 2
	}
	return c
}

// Canary is one planted tripwire.
type Canary struct {
	// Kind classifies the canary; Path is the file path or registry key.
	Kind CanaryKind `json:"kind"`
	Path string     `json:"path"`
	// Fingerprint is the FNV-64a hash of the planted content (file bytes
	// or registry value string); a post-run mismatch means the canary was
	// tampered with, attributably.
	Fingerprint uint64 `json:"fingerprint"`
}

// Plan is the result of planting: the canary set plus the baseline file
// inventory used to account real files lost before enforcement fired.
type Plan struct {
	// User is the profile owner whose directories were seeded.
	User string
	// Canaries lists every planted canary in deterministic order (files
	// by path, then registry keys by path) — never map-range order.
	Canaries []Canary

	files    map[string]Canary // normalized file path -> canary
	keys     map[string]Canary // normalized registry key -> canary
	baseline map[string]bool   // normalized non-canary regular files at plant time
}

// CanaryFile returns the canary planted at the given file path, if any.
// The honeypot directory matches both itself and anything beneath it.
func (p *Plan) CanaryFile(path string) (Canary, bool) {
	norm := winsim.NormalizePath(path)
	if c, ok := p.files[norm]; ok {
		return c, true
	}
	// A path inside the honeypot directory is a honeypot touch too.
	for i := strings.LastIndexByte(norm, '\\'); i > 0; i = strings.LastIndexByte(norm, '\\') {
		norm = norm[:i]
		if c, ok := p.files[norm]; ok && c.Kind == CanaryHoneypotDir {
			return c, true
		}
	}
	return Canary{}, false
}

// CanaryKey returns the canary registry key the given path names or sits
// beneath, if any.
func (p *Plan) CanaryKey(path string) (Canary, bool) {
	norm := normalizeRegKey(path)
	if c, ok := p.keys[norm]; ok {
		return c, true
	}
	for i := strings.LastIndexByte(norm, '\\'); i > 0; i = strings.LastIndexByte(norm, '\\') {
		norm = norm[:i]
		if c, ok := p.keys[norm]; ok {
			return c, true
		}
	}
	return Canary{}, false
}

// BaselineFile reports whether path named a real (non-canary) regular
// file when the plan was planted — the population FilesLost counts over.
func (p *Plan) BaselineFile(path string) bool {
	return p.baseline[winsim.NormalizePath(path)]
}

// BaselineCount returns how many real files the baseline holds.
func (p *Plan) BaselineCount() int { return len(p.baseline) }

// Tampered re-fingerprints every canary against the machine's current
// state and returns the ones that were modified or destroyed, in plan
// order. This is the post-run attribution pass.
func (p *Plan) Tampered(m *winsim.Machine) []Canary {
	var out []Canary
	for _, c := range p.Canaries {
		switch c.Kind {
		case CanaryDecoyFile:
			data, ok := m.FS.ReadFile(c.Path)
			if !ok || fnv64a(data) != c.Fingerprint {
				out = append(out, c)
			}
		case CanaryHoneypotDir:
			if !m.FS.Exists(c.Path) {
				out = append(out, c)
			}
		case CanaryRegistryKey:
			v, ok := m.Registry.QueryValue(c.Path, canaryValueName)
			if !ok || fnv64a([]byte(v.Str)) != c.Fingerprint {
				out = append(out, c)
			}
		}
	}
	return out
}

// Decoy file names. They start with '!' and '0' so FindFirstFile's sorted
// listing surfaces them before the user's real documents — a payload that
// walks a directory in order touches a canary before it costs a file.
var decoyNames = []string{
	"!important_passwords.txt",
	"!wallet_recovery_seed.txt",
	"0_bank_accounts.csv",
	"0_bitcoin_keys.dat",
	"1_tax_return_2025.pdf",
	"1_insurance_scans.zip",
}

// honeypotDirName sorts first inside Documents; everything beneath it is
// a tripwire.
const honeypotDirName = "!backup_keys"

// Canary registry key paths (planted in order up to RegistryKeys).
var canaryRegKeys = []string{
	`HKEY_CURRENT_USER\Software\WalletVault`,
	`HKEY_CURRENT_USER\Software\CryptoKeyStore`,
	`HKEY_CURRENT_USER\Software\PasswordSafe9`,
}

// canaryValueName is the value planted under each canary registry key.
const canaryValueName = "seed"

// Plant seeds the machine with the configured canaries and captures the
// baseline file inventory. It must run before the sample launches (the
// winsim mutators emit no trace events, so planting never pollutes the
// run's trace). The returned plan is a pure function of the machine's
// profile content and cfg — two machines built from the same profile and
// seed yield byte-identical plans.
func Plant(m *winsim.Machine, cfg PlantConfig) (*Plan, error) {
	cfg = cfg.withDefaults()
	user := m.HW.UserName
	if user == "" {
		return nil, fmt.Errorf("deter: profile %q has no user to plant canaries for", m.Profile)
	}
	p := &Plan{
		User:     user,
		files:    make(map[string]Canary),
		keys:     make(map[string]Canary),
		baseline: make(map[string]bool),
	}

	dirs := []string{
		`C:\Users\` + user + `\Documents`,
		`C:\Users\` + user + `\Downloads`,
		`C:\Users\` + user + `\Desktop`,
	}
	addFile := func(kind CanaryKind, path string, fp uint64) {
		c := Canary{Kind: kind, Path: path, Fingerprint: fp}
		p.files[winsim.NormalizePath(path)] = c
		p.Canaries = append(p.Canaries, c)
	}

	if cfg.DecoysPerDir > 0 {
		n := cfg.DecoysPerDir
		if n > len(decoyNames) {
			n = len(decoyNames)
		}
		for _, dir := range dirs {
			for i := 0; i < n; i++ {
				path := dir + `\` + decoyNames[i]
				content := decoyContent(cfg.Seed, path)
				if err := m.FS.WriteFile(path, content); err != nil {
					return nil, fmt.Errorf("deter: planting %s: %w", path, err)
				}
				addFile(CanaryDecoyFile, path, fnv64a(content))
			}
		}
	}

	if !cfg.NoHoneypot {
		dir := dirs[0] + `\` + honeypotDirName
		m.FS.MkdirAll(dir)
		addFile(CanaryHoneypotDir, dir, 0)
		for i := 0; i < 2 && i < len(decoyNames); i++ {
			path := dir + `\` + decoyNames[i]
			content := decoyContent(cfg.Seed, path)
			if err := m.FS.WriteFile(path, content); err != nil {
				return nil, fmt.Errorf("deter: planting %s: %w", path, err)
			}
			addFile(CanaryDecoyFile, path, fnv64a(content))
		}
	}

	if cfg.RegistryKeys > 0 {
		n := cfg.RegistryKeys
		if n > len(canaryRegKeys) {
			n = len(canaryRegKeys)
		}
		for i := 0; i < n; i++ {
			key := canaryRegKeys[i]
			if _, err := m.Registry.CreateKey(key); err != nil {
				return nil, fmt.Errorf("deter: planting %s: %w", key, err)
			}
			content := decoyContent(cfg.Seed, key)
			if err := m.Registry.SetValue(key, canaryValueName, winsim.StringValue(string(content))); err != nil {
				return nil, fmt.Errorf("deter: planting %s: %w", key, err)
			}
			c := Canary{Kind: CanaryRegistryKey, Path: key, Fingerprint: fnv64a(content)}
			p.keys[normalizeRegKey(key)] = c
			p.Canaries = append(p.Canaries, c)
		}
	}

	// Baseline: every real (non-canary) regular file present now. Walk
	// visits nodes in normalized-path order, so the map's insertion is
	// deterministic even though only membership matters.
	m.FS.Walk(func(info winsim.FileInfo) {
		if info.Kind != winsim.FileRegular {
			return
		}
		norm := winsim.NormalizePath(info.Path)
		if _, ok := p.files[norm]; ok {
			return
		}
		p.baseline[norm] = true
	})

	// Canaries were appended files-then-keys in loop order; sort within
	// kind by path for a stable, documented plan order.
	sort.SliceStable(p.Canaries, func(i, j int) bool {
		if p.Canaries[i].Kind != p.Canaries[j].Kind {
			return kindRank(p.Canaries[i].Kind) < kindRank(p.Canaries[j].Kind)
		}
		return p.Canaries[i].Path < p.Canaries[j].Path
	})
	return p, nil
}

func kindRank(k CanaryKind) int {
	switch k {
	case CanaryDecoyFile:
		return 0
	case CanaryHoneypotDir:
		return 1
	default:
		return 2
	}
}

// decoyContent synthesizes deterministic, low-entropy, plausible file
// content for a canary. Low entropy matters: the entropy-jump signal must
// fire only when a payload rewrites the decoy with ciphertext.
func decoyContent(seed int64, path string) []byte {
	h := fnv64a([]byte(fmt.Sprintf("%d|%s", seed, strings.ToLower(path))))
	var sb strings.Builder
	fmt.Fprintf(&sb, "account backup %016x\n", h)
	for i := 0; i < 8; i++ {
		h = h*6364136223846793005 + 1442695040888963407
		fmt.Fprintf(&sb, "entry %d: user john balance %d notes kept offline\n", i, h%100000)
	}
	return []byte(sb.String())
}

// fnv64a hashes bytes with FNV-64a (inline to keep deter dependency-free).
func fnv64a(b []byte) uint64 {
	var h uint64 = 14695981039346656037
	for _, c := range b {
		h = (h ^ uint64(c)) * 1099511628211
	}
	return h
}

// normalizeRegKey canonicalizes a registry key path for case-insensitive
// prefix matching: hive aliases expanded, separators collapsed, lowercase.
func normalizeRegKey(path string) string {
	p := strings.ToLower(strings.ReplaceAll(path, "/", `\`))
	p = strings.Trim(p, `\`)
	parts := strings.Split(p, `\`)
	if len(parts) > 0 {
		switch parts[0] {
		case "hklm":
			parts[0] = "hkey_local_machine"
		case "hkcu":
			parts[0] = "hkey_current_user"
		case "hkcr":
			parts[0] = "hkey_classes_root"
		case "hku":
			parts[0] = "hkey_users"
		}
	}
	return strings.Join(parts, `\`)
}

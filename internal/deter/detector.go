package deter

import (
	"math"
	"strings"
	"time"

	"scarecrow/internal/trace"
	"scarecrow/internal/winsim"
)

// Detection signals, in rough order of confidence.
const (
	// SignalCanaryTouch: any read/stat/enumeration of a planted canary.
	// Nothing legitimate has a reason to look at them.
	SignalCanaryTouch = "canary-touch"
	// SignalCanaryTamper: a canary was overwritten or deleted.
	SignalCanaryTamper = "canary-tamper"
	// SignalMassEnum: directory enumerations crossing the threshold inside
	// the window — the walk every file-encrypting payload starts with.
	SignalMassEnum = "mass-enumeration"
	// SignalReadOverwrite: files read and then overwritten (in place or
	// under a new extension) crossing the threshold — the encrypt loop.
	SignalReadOverwrite = "read-then-overwrite"
	// SignalEntropyJump: a write whose content is near-random (ciphertext)
	// where low-entropy user data lived.
	SignalEntropyJump = "entropy-jump"
	// SignalShadowDelete: vssadmin/wbadmin/bcdedit spawned — backup and
	// shadow-copy destruction ahead of encryption.
	SignalShadowDelete = "shadow-delete"
)

// DetectorConfig tunes the online scorer. The zero value means defaults.
type DetectorConfig struct {
	// Window is the virtual-time horizon signals stay live in the score.
	Window time.Duration
	// KillScore is the windowed score at which a process is flagged for
	// enforcement.
	KillScore float64

	// Per-signal weights.
	CanaryWeight    float64
	TamperWeight    float64
	EnumWeight      float64
	OverwriteWeight float64
	EntropyWeight   float64
	ShadowWeight    float64

	// EnumThreshold is how many directory enumerations inside the window
	// fire SignalMassEnum; OverwriteThreshold the same for
	// read-then-overwrite pairs.
	EnumThreshold      int
	OverwriteThreshold int

	// EntropyHighBits is the Shannon entropy (bits/byte) at or above which
	// a write counts as ciphertext; writes smaller than EntropyMinSize are
	// ignored (tiny buffers read as high-entropy noise).
	EntropyHighBits float64
	EntropyMinSize  int
}

func (c DetectorConfig) withDefaults() DetectorConfig {
	if c.Window <= 0 {
		c.Window = 10 * time.Second
	}
	if c.KillScore <= 0 {
		c.KillScore = 1.0
	}
	if c.CanaryWeight <= 0 {
		c.CanaryWeight = 1.0
	}
	if c.TamperWeight <= 0 {
		c.TamperWeight = 1.0
	}
	if c.EnumWeight <= 0 {
		c.EnumWeight = 0.4
	}
	if c.OverwriteWeight <= 0 {
		c.OverwriteWeight = 0.6
	}
	if c.EntropyWeight <= 0 {
		c.EntropyWeight = 0.5
	}
	if c.ShadowWeight <= 0 {
		c.ShadowWeight = 1.0
	}
	if c.EnumThreshold <= 0 {
		c.EnumThreshold = 2
	}
	if c.OverwriteThreshold <= 0 {
		c.OverwriteThreshold = 3
	}
	if c.EntropyHighBits <= 0 {
		c.EntropyHighBits = 7.0
	}
	if c.EntropyMinSize <= 0 {
		c.EntropyMinSize = 64
	}
	return c
}

// Detection is one signal firing for one process.
type Detection struct {
	// Time is the virtual timestamp of the event that fired the signal.
	Time time.Duration `json:"time_ns"`
	// PID is the process the signal attributes to.
	PID int `json:"pid"`
	// Signal names the tell (see the Signal* constants).
	Signal string `json:"signal"`
	// Target is the object involved (file, key, or image), when one is.
	Target string `json:"target,omitempty"`
	// Weight is this signal's contribution; Score the process's windowed
	// total after it fired.
	Weight float64 `json:"weight"`
	Score  float64 `json:"score"`
	// Detail carries signal-specific context in "k=v" form.
	Detail string `json:"detail,omitempty"`
}

// pidState is the detector's per-process memory.
type pidState struct {
	reads      map[string]time.Duration // normalized path -> last successful read
	enums      []time.Duration          // enumeration event times (window-pruned)
	fires      map[string]time.Duration // signal -> last fire time
	touched    map[string]bool          // canary paths already reported as touched
	tampered   map[string]bool          // canary paths already reported as tampered
	entropyHit map[string]bool          // paths already reported as entropy jumps
	shadowHit  map[string]bool          // shadow-tool images already reported
	pattern    map[string]bool          // original paths already counted as overwritten
	overwrites int
	enumFired  bool
	owFired    bool
	flagged    bool
}

func newPIDState() *pidState {
	return &pidState{
		reads:      make(map[string]time.Duration),
		fires:      make(map[string]time.Duration),
		touched:    make(map[string]bool),
		tampered:   make(map[string]bool),
		entropyHit: make(map[string]bool),
		shadowHit:  make(map[string]bool),
		pattern:    make(map[string]bool),
	}
}

// Detector scores the live event stream against the plan's canaries. It is
// single-goroutine by design: it runs inside the recorder tap, which the
// deterministic scheduler drives serially, so it needs no locking. It
// consumes only event timestamps (virtual clock) — never wall time — and
// is therefore fully deterministic and replayable.
type Detector struct {
	cfg  DetectorConfig
	plan *Plan
	// content, when non-nil, resolves a written file's bytes for entropy
	// scoring (wired to the machine's FS by the Monitor; nil skips the
	// entropy signal, e.g. in pure-replay tests).
	content func(path string) ([]byte, bool)
	pids    map[int]*pidState
}

// NewDetector returns a detector scoring against the plan's canaries.
func NewDetector(plan *Plan, cfg DetectorConfig) *Detector {
	return &Detector{cfg: cfg.withDefaults(), plan: plan, pids: make(map[int]*pidState)}
}

// SetContentFn installs the written-content resolver the entropy signal
// needs (typically machine.FS.ReadFile).
func (d *Detector) SetContentFn(fn func(path string) ([]byte, bool)) { d.content = fn }

// Flagged reports whether the process's windowed score has ever crossed
// KillScore. Flags are sticky: a payload that trips the detector stays
// flagged even after the window slides past the signals.
func (d *Detector) Flagged(pid int) bool {
	st, ok := d.pids[pid]
	return ok && st.flagged
}

// Observe consumes one trace event and returns the detections it fired
// (usually none). Detections come back in deterministic order.
func (d *Detector) Observe(e trace.Event) []Detection {
	if e.PID == 0 {
		return nil
	}
	st, ok := d.pids[e.PID]
	if !ok {
		st = newPIDState()
		d.pids[e.PID] = st
	}
	var out []Detection

	switch e.Kind {
	case trace.KindFileQuery:
		out = d.canaryFile(e, st, out)
		if strings.HasPrefix(e.Detail, "enum=") {
			out = d.enumeration(e, st, out)
		}
	case trace.KindFileCreate:
		out = d.canaryFile(e, st, out)
	case trace.KindFileRead:
		out = d.canaryFile(e, st, out)
		if e.Success {
			st.reads[winsim.NormalizePath(e.Target)] = e.Time
		}
	case trace.KindFileWrite:
		out = d.canaryWrite(e, st, out)
		if e.Success {
			out = d.overwrite(e, st, out)
			out = d.entropy(e, st, out)
		}
	case trace.KindFileDelete:
		out = d.canaryWrite(e, st, out)
		if e.Success {
			out = d.overwrite(e, st, out)
		}
	case trace.KindRegOpenKey, trace.KindRegQueryValue, trace.KindRegEnumKey:
		out = d.canaryKey(e, st, false, out)
	case trace.KindRegSetValue, trace.KindRegDeleteKey, trace.KindRegDeleteValue, trace.KindRegCreateKey:
		out = d.canaryKey(e, st, true, out)
	case trace.KindProcessCreate:
		out = d.shadow(e, st, out)
	}

	for _, det := range out {
		if det.Score >= d.cfg.KillScore {
			st.flagged = true
		}
	}
	return out
}

// fire records a signal for the process and builds its detection.
func (d *Detector) fire(e trace.Event, st *pidState, signal string, weight float64, detail string) Detection {
	st.fires[signal] = e.Time
	return Detection{
		Time: e.Time, PID: e.PID, Signal: signal, Target: e.Target,
		Weight: weight, Score: d.score(st, e.Time), Detail: detail,
	}
}

// score sums the weights of signals that fired inside the window ending
// at now. Iterating the small fires map is fine: the sum is
// order-independent.
func (d *Detector) score(st *pidState, now time.Duration) float64 {
	total := 0.0
	for signal, t := range st.fires {
		if now-t > d.cfg.Window {
			continue
		}
		switch signal {
		case SignalCanaryTouch:
			total += d.cfg.CanaryWeight
		case SignalCanaryTamper:
			total += d.cfg.TamperWeight
		case SignalMassEnum:
			total += d.cfg.EnumWeight
		case SignalReadOverwrite:
			total += d.cfg.OverwriteWeight
		case SignalEntropyJump:
			total += d.cfg.EntropyWeight
		case SignalShadowDelete:
			total += d.cfg.ShadowWeight
		}
	}
	return total
}

// canaryFile fires SignalCanaryTouch on any access to a planted file
// canary — even a failed one: the attempt is the tell. Once per
// (process, canary).
func (d *Detector) canaryFile(e trace.Event, st *pidState, out []Detection) []Detection {
	c, ok := d.plan.CanaryFile(e.Target)
	if !ok || st.touched[c.Path] {
		return out
	}
	st.touched[c.Path] = true
	return append(out, d.fire(e, st, SignalCanaryTouch, d.cfg.CanaryWeight, "kind="+string(c.Kind)))
}

// canaryWrite fires SignalCanaryTamper when a canary is overwritten or
// deleted (and counts the touch first if this is the process's first
// contact with it).
func (d *Detector) canaryWrite(e trace.Event, st *pidState, out []Detection) []Detection {
	c, ok := d.plan.CanaryFile(e.Target)
	if !ok {
		return out
	}
	if !st.touched[c.Path] {
		st.touched[c.Path] = true
		out = append(out, d.fire(e, st, SignalCanaryTouch, d.cfg.CanaryWeight, "kind="+string(c.Kind)))
	}
	if e.Success && !st.tampered[c.Path] {
		st.tampered[c.Path] = true
		out = append(out, d.fire(e, st, SignalCanaryTamper, d.cfg.TamperWeight, "kind="+string(c.Kind)))
	}
	return out
}

// canaryKey handles registry canaries; mutate marks set/delete operations,
// which count as tampering.
func (d *Detector) canaryKey(e trace.Event, st *pidState, mutate bool, out []Detection) []Detection {
	c, ok := d.plan.CanaryKey(e.Target)
	if !ok {
		return out
	}
	if !st.touched[c.Path] {
		st.touched[c.Path] = true
		out = append(out, d.fire(e, st, SignalCanaryTouch, d.cfg.CanaryWeight, "kind="+string(c.Kind)))
	}
	if mutate && !st.tampered[c.Path] {
		st.tampered[c.Path] = true
		out = append(out, d.fire(e, st, SignalCanaryTamper, d.cfg.TamperWeight, "kind="+string(c.Kind)))
	}
	return out
}

// enumeration counts directory listings in the window and fires
// SignalMassEnum once the threshold is crossed (once per process).
func (d *Detector) enumeration(e trace.Event, st *pidState, out []Detection) []Detection {
	st.enums = append(st.enums, e.Time)
	cut := 0
	for cut < len(st.enums) && e.Time-st.enums[cut] > d.cfg.Window {
		cut++
	}
	st.enums = st.enums[cut:]
	if st.enumFired || len(st.enums) < d.cfg.EnumThreshold {
		return out
	}
	st.enumFired = true
	return append(out, d.fire(e, st, SignalMassEnum, d.cfg.EnumWeight,
		"dirs="+itoa(len(st.enums))))
}

// overwrite detects the encrypt loop's shape: a write or delete whose
// target — directly, or with the appended extension stripped — was read
// inside the window. Each original path counts once; the signal fires
// when the count crosses the threshold (once per process).
func (d *Detector) overwrite(e trace.Event, st *pidState, out []Detection) []Detection {
	norm := winsim.NormalizePath(e.Target)
	candidates := []string{norm}
	if i := strings.LastIndexByte(norm, '.'); i > 0 {
		candidates = append(candidates, norm[:i])
	}
	for _, cand := range candidates {
		t, ok := st.reads[cand]
		if !ok || e.Time-t > d.cfg.Window || st.pattern[cand] {
			continue
		}
		st.pattern[cand] = true
		st.overwrites++
		break
	}
	if st.owFired || st.overwrites < d.cfg.OverwriteThreshold {
		return out
	}
	st.owFired = true
	return append(out, d.fire(e, st, SignalReadOverwrite, d.cfg.OverwriteWeight,
		"pairs="+itoa(st.overwrites)))
}

// entropy fires SignalEntropyJump when a written file's bytes measure as
// ciphertext. Once per (process, path).
func (d *Detector) entropy(e trace.Event, st *pidState, out []Detection) []Detection {
	if d.content == nil {
		return out
	}
	norm := winsim.NormalizePath(e.Target)
	if st.entropyHit[norm] {
		return out
	}
	data, ok := d.content(e.Target)
	if !ok || len(data) < d.cfg.EntropyMinSize {
		return out
	}
	bits := shannonBits(data)
	if bits < d.cfg.EntropyHighBits {
		return out
	}
	st.entropyHit[norm] = true
	return append(out, d.fire(e, st, SignalEntropyJump, d.cfg.EntropyWeight,
		"bits="+formatBits(bits)))
}

// shadowTools are the image basenames whose launch signals backup
// destruction.
var shadowTools = map[string]bool{
	"vssadmin.exe": true,
	"wbadmin.exe":  true,
	"bcdedit.exe":  true,
	"wmic.exe":     true,
}

// shadow fires SignalShadowDelete when the process spawns a shadow-copy /
// backup destruction tool. The event's PID is the parent — the specimen.
func (d *Detector) shadow(e trace.Event, st *pidState, out []Detection) []Detection {
	base := strings.ToLower(e.Target)
	if i := strings.LastIndexByte(base, '\\'); i >= 0 {
		base = base[i+1:]
	}
	if !shadowTools[base] || st.shadowHit[base] {
		return out
	}
	st.shadowHit[base] = true
	return append(out, d.fire(e, st, SignalShadowDelete, d.cfg.ShadowWeight, "tool="+base))
}

// shannonBits returns the Shannon entropy of the data in bits per byte
// (0 for uniform content, 8 for ideal ciphertext).
func shannonBits(data []byte) float64 {
	if len(data) == 0 {
		return 0
	}
	var hist [256]int
	for _, b := range data {
		hist[b]++
	}
	n := float64(len(data))
	bits := 0.0
	for _, c := range hist {
		if c == 0 {
			continue
		}
		p := float64(c) / n
		bits -= p * math.Log2(p)
	}
	return bits
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// formatBits renders entropy with two decimals without fmt in the hot
// path.
func formatBits(b float64) string {
	whole := int(b)
	frac := int((b - float64(whole)) * 100)
	return itoa(whole) + "." + pad2(frac)
}

func pad2(n int) string {
	if n < 0 {
		n = 0
	}
	if n < 10 {
		return "0" + itoa(n)
	}
	return itoa(n)
}

// Package front is scarecrow's scale-out tier: one HTTP front that
// shards verdict traffic across N scarecrowd backends.
//
// The front owns no verdicts. It consistent-hashes each request's
// canonical verdict key (service.RouteKey) onto a backend and reverse-
// proxies /v1/submit, /v1/verdict, and /v1/result there, so every
// cell's cache entry and WAL record lives on exactly one machine and
// the backends' determinism guarantees — byte-identical replay, exact
// coalescing — survive the hop. Campaign manifests fan out as
// per-backend Cells sub-campaigns (each backend receives only the
// cells its shard owns) and the backends' SSE streams merge into one
// front-level stream with its own monotonic sequence and Last-Event-ID
// resume. Backends are health-checked and marked degraded rather than
// failing the whole front; a degraded backend parks only the keys it
// owns. Sub-campaigns are tagged, and backends checkpoint campaign
// progress into their WAL, so a backend killed mid-sweep resumes its
// share on restart and the front's follower re-finds it by tag.
package front

import (
	"context"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"
)

// Options configures a Front.
type Options struct {
	// Backends lists the scarecrowd base URLs (http://host:port). Order
	// defines shard indices: every front replica must use the same list
	// in the same order to route identically.
	Backends []string
	// Vnodes is the ring points per backend (default 64).
	Vnodes int
	// HealthInterval paces the background backend health checks
	// (default 2s).
	HealthInterval time.Duration
	// FrontID namespaces the sub-campaign tags this front creates
	// (default "front"). Give concurrent fronts distinct IDs so their
	// backend-side checkpoints cannot collide.
	FrontID string
	// MaxJobs caps one front campaign's expanded cell count (default
	// 16384, matching the campaign engine).
	MaxJobs int
	// EventRing bounds the merged per-campaign event memory (default
	// 4096).
	EventRing int
	// Client issues all backend requests. Nil means a default client
	// with no overall timeout (SSE streams are long-lived); individual
	// control requests bound themselves with contexts.
	Client *http.Client
}

func (o Options) withDefaults() Options {
	if o.Vnodes <= 0 {
		o.Vnodes = defaultVnodes
	}
	if o.HealthInterval <= 0 {
		o.HealthInterval = 2 * time.Second
	}
	if o.FrontID == "" {
		o.FrontID = "front"
	}
	if o.MaxJobs <= 0 {
		o.MaxJobs = 16384
	}
	if o.EventRing <= 0 {
		o.EventRing = 4096
	}
	return o
}

// backend is one scarecrowd shard as the front sees it.
type backend struct {
	idx  int
	base string // base URL, no trailing slash

	mu      sync.Mutex
	healthy bool
	lastErr string
	checked time.Time
}

// setHealth records one health observation.
func (b *backend) setHealth(healthy bool, errMsg string, at time.Time) {
	b.mu.Lock()
	b.healthy = healthy
	b.lastErr = errMsg
	b.checked = at
	b.mu.Unlock()
}

func (b *backend) isHealthy() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.healthy
}

// backendStatus is one backend's row in /statusz.
type backendStatus struct {
	Index   int    `json:"index"`
	URL     string `json:"url"`
	Healthy bool   `json:"healthy"`
	Error   string `json:"error,omitempty"`
}

func (b *backend) status() backendStatus {
	b.mu.Lock()
	defer b.mu.Unlock()
	return backendStatus{Index: b.idx, URL: b.base, Healthy: b.healthy, Error: b.lastErr}
}

// Front is the shard router. Create with New, serve Handler, Start the
// health loop, Close on shutdown.
type Front struct {
	opts     Options
	ring     *ring
	backends []*backend
	client   *http.Client
	ctx      context.Context
	cancel   context.CancelFunc
	wg       sync.WaitGroup

	mu        sync.Mutex
	nextID    uint64
	campaigns map[string]*frontCampaign
	order     []string
}

// New builds a front over the configured backends. Backends start
// healthy (optimistically) and the first health sweep corrects that
// within one interval; Start must be called for the sweeps to run.
func New(opts Options) (*Front, error) {
	if len(opts.Backends) == 0 {
		return nil, fmt.Errorf("front: no backends configured")
	}
	opts = opts.withDefaults()
	f := &Front{
		opts:      opts,
		ring:      newRing(len(opts.Backends), opts.Vnodes),
		client:    opts.Client,
		campaigns: make(map[string]*frontCampaign),
	}
	if f.client == nil {
		f.client = &http.Client{}
	}
	f.ctx, f.cancel = context.WithCancel(context.Background())
	for i, raw := range opts.Backends {
		base := strings.TrimRight(raw, "/")
		if !strings.HasPrefix(base, "http://") && !strings.HasPrefix(base, "https://") {
			return nil, fmt.Errorf("front: backend %d %q is not an http(s) URL", i, raw)
		}
		b := &backend{idx: i, base: base}
		b.setHealth(true, "", time.Time{})
		f.backends = append(f.backends, b)
	}
	return f, nil
}

// Start launches the background health checker.
func (f *Front) Start() {
	f.wg.Add(1)
	go f.healthLoop()
}

// Close stops the health loop and aborts campaign followers. In-flight
// proxied requests are not interrupted.
func (f *Front) Close() {
	f.cancel()
	f.wg.Wait()
}

func (f *Front) healthLoop() {
	defer f.wg.Done()
	t := time.NewTicker(f.opts.HealthInterval)
	defer t.Stop()
	f.sweepHealth()
	for {
		select {
		case <-t.C:
			f.sweepHealth()
		case <-f.ctx.Done():
			return
		}
	}
}

func (f *Front) sweepHealth() {
	for _, b := range f.backends {
		f.checkBackend(b)
	}
}

// checkBackend probes one backend's /healthz. Anything but a 200 —
// refused connection, drain's 503 — marks it degraded; the shard it
// owns parks while the rest of the front keeps serving.
func (f *Front) checkBackend(b *backend) bool {
	ctx, cancel := context.WithTimeout(f.ctx, f.opts.HealthInterval)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.base+"/healthz", nil)
	if err != nil {
		b.setHealth(false, err.Error(), time.Now())
		return false
	}
	resp, err := f.client.Do(req)
	if err != nil {
		b.setHealth(false, err.Error(), time.Now())
		return false
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b.setHealth(false, fmt.Sprintf("healthz returned %d", resp.StatusCode), time.Now())
		return false
	}
	b.setHealth(true, "", time.Now())
	return true
}

// waitHealthy polls a backend's /healthz directly (not waiting for the
// background sweep) until it answers 200 or the front closes. Campaign
// followers park here while their backend is down or restarting.
func (f *Front) waitHealthy(b *backend) bool {
	delay := 50 * time.Millisecond
	for {
		if f.checkBackend(b) {
			return true
		}
		select {
		case <-time.After(delay):
		case <-f.ctx.Done():
			return false
		}
		if delay < time.Second {
			delay *= 2
		}
	}
}

// Statusz is the front's /statusz document.
type Statusz struct {
	FrontID   string          `json:"front_id"`
	Backends  []backendStatus `json:"backends"`
	Healthy   int             `json:"healthy_backends"`
	Campaigns int             `json:"campaigns"`
}

// Status snapshots the front's view of its backends and campaigns.
func (f *Front) Status() Statusz {
	st := Statusz{FrontID: f.opts.FrontID}
	for _, b := range f.backends {
		s := b.status()
		st.Backends = append(st.Backends, s)
		if s.Healthy {
			st.Healthy++
		}
	}
	f.mu.Lock()
	st.Campaigns = len(f.campaigns)
	f.mu.Unlock()
	return st
}

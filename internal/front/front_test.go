package front

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"scarecrow/internal/campaign"
	"scarecrow/internal/service"
	"scarecrow/internal/store"
)

// swapHandler lets a test replace a backend's entire handler (simulated
// restart) or take it down (simulated crash) behind one stable URL.
type swapHandler struct {
	mu   sync.Mutex
	h    http.Handler
	down bool
}

func (s *swapHandler) set(h http.Handler) {
	s.mu.Lock()
	s.h = h
	s.down = false
	s.mu.Unlock()
}

func (s *swapHandler) setDown() {
	s.mu.Lock()
	s.down = true
	s.mu.Unlock()
}

// setUp clears a simulated outage, restoring the installed handler.
func (s *swapHandler) setUp() {
	s.mu.Lock()
	s.down = false
	s.mu.Unlock()
}

func (s *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	h, down := s.h, s.down
	s.mu.Unlock()
	if down || h == nil {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, `{"error":"backend down"}`)
		return
	}
	h.ServeHTTP(w, r)
}

// testBackend is one in-process scarecrowd: service + campaign engine +
// optional durable store, behind a swapHandler so tests can crash and
// restart it without changing its URL. Fields are only mutated from the
// test goroutine.
type testBackend struct {
	t    *testing.T
	dir  string // store dir; "" = no persistence
	swap *swapHandler
	ts   *httptest.Server
	srv  *service.Server
	eng  *campaign.Engine
	st   *store.Store
}

func newTestBackend(t *testing.T, persist bool, engOpts campaign.Options) *testBackend {
	t.Helper()
	tb := &testBackend{t: t, swap: &swapHandler{}}
	if persist {
		tb.dir = t.TempDir()
	}
	tb.boot(engOpts)
	tb.ts = httptest.NewServer(tb.swap)
	t.Cleanup(func() {
		tb.ts.Close()
		tb.stop()
	})
	return tb
}

// boot builds a fresh service + engine (reopening the store when
// persistent) and installs them as the live handler.
func (tb *testBackend) boot(engOpts campaign.Options) {
	tb.t.Helper()
	if tb.dir != "" {
		st, err := store.Open(tb.dir, store.Options{NoBackground: true})
		if err != nil {
			tb.t.Fatalf("opening store: %v", err)
		}
		tb.st = st
		engOpts.Checkpoints = st
	}
	srv := service.NewServer(service.Config{Workers: 2, QueueDepth: 32, CacheSize: 256, Store: tb.st})
	srv.Start()
	eng := campaign.NewEngine(srv, engOpts)
	mux := http.NewServeMux()
	mux.Handle("/", srv.Handler())
	eng.Register(mux)
	tb.srv, tb.eng = srv, eng
	tb.swap.set(mux)
}

// stop gracefully drains the current incarnation (campaigns abort and
// checkpoint) and closes the store.
func (tb *testBackend) stop() {
	tb.t.Helper()
	if tb.srv == nil {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := tb.srv.Shutdown(ctx); err != nil {
		tb.t.Errorf("backend shutdown: %v", err)
	}
	if err := tb.eng.Drain(ctx); err != nil {
		tb.t.Errorf("engine drain: %v", err)
	}
	if tb.st != nil {
		if err := tb.st.Close(); err != nil {
			tb.t.Errorf("store close: %v", err)
		}
		tb.st = nil
	}
	tb.srv, tb.eng = nil, nil
}

// crash takes the backend down mid-flight: the handler answers 503,
// live connections (SSE streams included) are severed, and the old
// incarnation is drained in the background the way a dying process's
// work simply stops mattering.
func (tb *testBackend) crash() {
	tb.t.Helper()
	tb.swap.setDown()
	tb.ts.CloseClientConnections()
	tb.stop()
}

// restart boots a fresh incarnation over the surviving store and
// resumes checkpointed campaigns, as scarecrowd does at startup.
func (tb *testBackend) restart(engOpts campaign.Options) {
	tb.t.Helper()
	tb.boot(engOpts)
	if _, err := tb.eng.Resume(); err != nil {
		tb.t.Fatalf("resume after restart: %v", err)
	}
}

// startFront builds a front over the given backends.
func startFront(t *testing.T, opts Options, backends ...*testBackend) *Front {
	t.Helper()
	for _, tb := range backends {
		opts.Backends = append(opts.Backends, tb.ts.URL)
	}
	f, err := New(opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	f.Start()
	t.Cleanup(f.Close)
	return f
}

func postJSON(t *testing.T, url string, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	return resp
}

func readBody(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	buf, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading body: %v", err)
	}
	return buf
}

// specimenOwnedBy finds a catalog specimen whose default-submission
// route key lands on the given backend index.
func specimenOwnedBy(t *testing.T, f *Front, idx int) string {
	t.Helper()
	for _, name := range []string{"kasidet", "wannacry", "locky", "scaware", "spawner", "toolkiller"} {
		key, err := service.RouteKey(service.SubmitRequest{Specimen: name})
		if err != nil {
			t.Fatalf("RouteKey(%s): %v", name, err)
		}
		if f.ring.owner(key) == idx {
			return name
		}
	}
	t.Fatalf("no catalog specimen routes to backend %d", idx)
	return ""
}

// The front proxies /v1/verdict to the owning backend with verdict
// bytes untouched and the cache/job headers preserved (job ID
// namespaced into the front's space).
func TestVerdictProxyByteIdentical(t *testing.T) {
	b0 := newTestBackend(t, false, campaign.Options{})
	b1 := newTestBackend(t, false, campaign.Options{})
	f := startFront(t, Options{}, b0, b1)
	ts := httptest.NewServer(f.Handler())
	defer ts.Close()

	spec := specimenOwnedBy(t, f, 1)
	body := fmt.Sprintf(`{"specimen":%q}`, spec)

	resp := postJSON(t, ts.URL+"/v1/verdict", body)
	front1 := readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("verdict via front = %d: %s", resp.StatusCode, front1)
	}
	job := resp.Header.Get("X-Scarecrow-Job")
	if !strings.HasPrefix(job, "b1-") {
		t.Fatalf("X-Scarecrow-Job = %q, want b1- namespaced", job)
	}

	// Same submission straight to the backend: identical bytes.
	direct := readBody(t, postJSON(t, b1.ts.URL+"/v1/verdict", body))
	if !bytes.Equal(front1, direct) {
		t.Fatalf("front verdict differs from backend verdict:\n%s\n%s", front1, direct)
	}

	// Replay through the front: cache hit header preserved, bytes exact.
	resp = postJSON(t, ts.URL+"/v1/verdict", body)
	front2 := readBody(t, resp)
	if resp.Header.Get("X-Scarecrow-Cache") != "hit" {
		t.Fatalf("replay lost X-Scarecrow-Cache: %v", resp.Header)
	}
	if !bytes.Equal(front1, front2) {
		t.Fatalf("replay bytes differ through the front")
	}
}

// Async flow: submit through the front, poll the namespaced job ID, get
// the owning backend's verdict.
func TestSubmitResultRoundTrip(t *testing.T) {
	b0 := newTestBackend(t, false, campaign.Options{})
	b1 := newTestBackend(t, false, campaign.Options{})
	f := startFront(t, Options{}, b0, b1)
	ts := httptest.NewServer(f.Handler())
	defer ts.Close()

	spec := specimenOwnedBy(t, f, 0)
	resp := postJSON(t, ts.URL+"/v1/submit", fmt.Sprintf(`{"specimen":%q}`, spec))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", resp.StatusCode, readBody(t, resp))
	}
	var sub struct {
		ID     string `json:"id"`
		Result string `json:"result"`
	}
	if err := json.Unmarshal(readBody(t, resp), &sub); err != nil {
		t.Fatalf("decoding submit response: %v", err)
	}
	if !strings.HasPrefix(sub.ID, "b0-") || sub.Result != "/v1/result/"+sub.ID {
		t.Fatalf("submit response not namespaced: %+v", sub)
	}

	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(ts.URL + sub.Result)
		if err != nil {
			t.Fatalf("poll: %v", err)
		}
		var res struct {
			ID      string          `json:"id"`
			State   string          `json:"state"`
			Verdict json.RawMessage `json:"verdict"`
		}
		if err := json.Unmarshal(readBody(t, resp), &res); err != nil {
			t.Fatalf("decoding result: %v", err)
		}
		if res.ID != sub.ID {
			t.Fatalf("result ID %q != submitted %q", res.ID, sub.ID)
		}
		if res.State == "done" {
			if len(res.Verdict) == 0 {
				t.Fatal("done result carries no verdict")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s did not finish", sub.ID)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Unknown and malformed job IDs are 404s.
	for _, id := range []string{"b9-j00000001", "nonsense", "b0-"} {
		resp, err := http.Get(ts.URL + "/v1/result/" + id)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("result %q = %d, want 404", id, resp.StatusCode)
		}
	}
}

// The backend's backpressure and drain responses pass through the front
// verbatim: the 429's Retry-After is the backend's own deterministic
// per-key jitter, not a front-synthesized value, and the 503 and
// X-Scarecrow-* headers survive untouched. Pinned with a stub backend
// so the expected header values are exact.
func TestBackpressureHeaderPassthrough(t *testing.T) {
	stub := http.NewServeMux()
	stub.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, `{"status":"ok"}`)
	})
	stub.HandleFunc("/v1/submit", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "7")
		w.WriteHeader(http.StatusTooManyRequests)
		fmt.Fprintln(w, `{"error":"queue full"}`)
	})
	stub.HandleFunc("/v1/verdict", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Scarecrow-Job", "j00000042")
		w.Header().Set("X-Scarecrow-Cache", "hit")
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, `{"error":"service draining"}`)
	})
	backend := httptest.NewServer(stub)
	defer backend.Close()

	f, err := New(Options{Backends: []string{backend.URL}})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ts := httptest.NewServer(f.Handler())
	defer ts.Close()

	resp := postJSON(t, ts.URL+"/v1/submit", `{"specimen":"kasidet"}`)
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("submit = %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "7" {
		t.Fatalf("Retry-After = %q through the front, want the backend's verbatim \"7\"", got)
	}
	if !bytes.Contains(body, []byte("queue full")) {
		t.Fatalf("429 body rewritten: %s", body)
	}

	resp = postJSON(t, ts.URL+"/v1/verdict", `{"specimen":"kasidet"}`)
	body = readBody(t, resp)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("verdict = %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Scarecrow-Cache"); got != "hit" {
		t.Fatalf("X-Scarecrow-Cache = %q, want verbatim \"hit\"", got)
	}
	if got := resp.Header.Get("X-Scarecrow-Job"); got != "b0-j00000042" {
		t.Fatalf("X-Scarecrow-Job = %q, want namespaced b0-j00000042", got)
	}
	if !bytes.Contains(body, []byte("draining")) {
		t.Fatalf("503 body rewritten: %s", body)
	}
}

// A degraded backend parks only its own shard: keys it owns answer 503,
// keys owned by healthy backends keep serving, and the front's healthz
// reports degraded rather than down.
func TestDegradedBackendParksOnlyItsShard(t *testing.T) {
	b0 := newTestBackend(t, false, campaign.Options{})
	b1 := newTestBackend(t, false, campaign.Options{})
	f := startFront(t, Options{HealthInterval: 20 * time.Millisecond}, b0, b1)
	ts := httptest.NewServer(f.Handler())
	defer ts.Close()

	deadSpec := specimenOwnedBy(t, f, 1)
	liveSpec := specimenOwnedBy(t, f, 0)
	b1.crash()
	// Wait for the health sweep to notice.
	deadline := time.Now().Add(10 * time.Second)
	for f.backends[1].isHealthy() {
		if time.Now().After(deadline) {
			t.Fatal("health sweep never marked the crashed backend degraded")
		}
		time.Sleep(10 * time.Millisecond)
	}

	resp := postJSON(t, ts.URL+"/v1/verdict", fmt.Sprintf(`{"specimen":%q}`, deadSpec))
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusServiceUnavailable || !bytes.Contains(body, []byte("degraded")) {
		t.Fatalf("dead shard answered %d: %s", resp.StatusCode, body)
	}
	resp = postJSON(t, ts.URL+"/v1/verdict", fmt.Sprintf(`{"specimen":%q}`, liveSpec))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("live shard answered %d: %s", resp.StatusCode, readBody(t, resp))
	}
	resp.Body.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body = readBody(t, resp)
	if resp.StatusCode != http.StatusOK || !bytes.Contains(body, []byte("degraded")) {
		t.Fatalf("front healthz = %d %s, want 200 degraded", resp.StatusCode, body)
	}
}

// sseEvent is one parsed frame of a front event stream.
type sseEvent struct {
	id   uint64
	ev   campaign.Event
	kind string
}

// readSSE consumes an SSE body until EOF, returning the parsed frames.
func readSSE(t *testing.T, r io.Reader) []sseEvent {
	t.Helper()
	var out []sseEvent
	var cur sseEvent
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "id: "):
			fmt.Sscanf(line, "id: %d", &cur.id)
		case strings.HasPrefix(line, "event: "):
			cur.kind = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &cur.ev); err != nil {
				t.Fatalf("undecodable SSE data: %v", err)
			}
		case line == "":
			if cur.kind != "" {
				out = append(out, cur)
			}
			cur = sseEvent{}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("reading SSE: %v", err)
	}
	return out
}

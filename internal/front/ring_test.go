package front

import (
	"fmt"
	"testing"
)

// Two rings built from the same configuration agree on every key — the
// property that lets front replicas (and restarts) route identically
// with no coordination.
func TestRingDeterministic(t *testing.T) {
	a := newRing(4, 0)
	b := newRing(4, 0)
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("cat:spec%d|baremetal-sandbox|%d", i%7, i)
		if a.owner(key) != b.owner(key) {
			t.Fatalf("rings disagree on %q: %d vs %d", key, a.owner(key), b.owner(key))
		}
	}
}

// Every backend owns a meaningful share of the key space: no shard sits
// idle, none soaks the fleet.
func TestRingSpread(t *testing.T) {
	for _, n := range []int{2, 4, 8} {
		r := newRing(n, 0)
		counts := make([]int, n)
		const keys = 4000
		for i := 0; i < keys; i++ {
			counts[r.owner(fmt.Sprintf("cat:spec%d|baremetal-sandbox|%d", i%13, i))]++
		}
		want := keys / n
		for b, c := range counts {
			// 64 vnodes keeps shares within a loose 3x band of uniform.
			if c < want/3 || c > want*3 {
				t.Errorf("n=%d: backend %d owns %d of %d keys (uniform %d)", n, b, c, keys, want)
			}
		}
	}
}

// A single backend owns everything without hashing.
func TestRingSingleBackend(t *testing.T) {
	r := newRing(1, 0)
	for i := 0; i < 50; i++ {
		if got := r.owner(fmt.Sprintf("key%d", i)); got != 0 {
			t.Fatalf("single-backend ring routed key%d to %d", i, got)
		}
	}
}

// Ownership moves only for keys whose arc changed when a backend is
// added — most keys keep their owner (the point of consistent hashing).
func TestRingStabilityOnGrowth(t *testing.T) {
	r4 := newRing(4, 0)
	r5 := newRing(5, 0)
	const keys = 4000
	moved := 0
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("cat:spec%d|baremetal-sandbox|%d", i%13, i)
		if r4.owner(key) != r5.owner(key) {
			moved++
		}
	}
	// Ideal is 1/5 of keys; allow a wide band but far below rehash-all.
	if moved > keys/2 {
		t.Fatalf("adding one backend moved %d/%d keys; consistent hashing should move ~%d", moved, keys, keys/5)
	}
}

package front

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"scarecrow/internal/service"
)

// Proxying deliberately preserves the backend's wire behaviour instead
// of re-deriving it: verdict bytes pass through untouched (replay stays
// byte-identical through the front), a 429's Retry-After is the
// backend's own deterministic per-key jitter forwarded verbatim, and
// the X-Scarecrow-* headers survive the hop. The only rewrite is job-ID
// namespacing — "b<idx>-" prefixes route GET /v1/result back to the
// backend that owns the job.

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// Handler returns the front's HTTP mux: the verdict-service surface
// (/v1/submit, /v1/verdict, /v1/result/), the campaign surface
// (/v1/campaign...), and the front's own /healthz and /statusz.
func (f *Front) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/submit", f.handleSubmit)
	mux.HandleFunc("/v1/verdict", f.handleVerdict)
	mux.HandleFunc("/v1/monitor", f.handleMonitor)
	mux.HandleFunc("/v1/result/", f.handleResult)
	mux.HandleFunc("POST /v1/campaign", f.handleCampaignLaunch)
	mux.HandleFunc("GET /v1/campaign", f.handleCampaignList)
	mux.HandleFunc("GET /v1/campaign/{id}", f.handleCampaignSnapshot)
	mux.HandleFunc("GET /v1/campaign/{id}/events", f.handleCampaignEvents)
	mux.HandleFunc("/healthz", f.handleHealthz)
	mux.HandleFunc("/statusz", f.handleStatusz)
	return mux
}

// jobID namespaces a backend job ID into the front's ID space.
func jobID(idx int, id string) string {
	return fmt.Sprintf("b%d-%s", idx, id)
}

// splitJobID parses a front job ID back into (backend index, backend
// job ID).
func splitJobID(id string) (int, string, bool) {
	if !strings.HasPrefix(id, "b") {
		return 0, "", false
	}
	head, rest, ok := strings.Cut(id[1:], "-")
	if !ok || head == "" || rest == "" {
		return 0, "", false
	}
	idx, err := strconv.Atoi(head)
	if err != nil || idx < 0 {
		return 0, "", false
	}
	return idx, rest, true
}

// routeBody reads and decodes a submit-shaped request and resolves the
// owning backend. The raw bytes come back too: the proxy forwards the
// client's exact body, not a re-marshal.
func (f *Front) routeBody(w http.ResponseWriter, r *http.Request) (*backend, []byte, bool) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "POST required"})
		return nil, nil, false
	}
	raw, err := io.ReadAll(r.Body)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("reading request: %v", err)})
		return nil, nil, false
	}
	var req service.SubmitRequest
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("decoding request: %v", err)})
		return nil, nil, false
	}
	key, err := service.RouteKey(req)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return nil, nil, false
	}
	b := f.backends[f.ring.owner(key)]
	if !b.isHealthy() {
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{
			Error: fmt.Sprintf("backend %d (%s) degraded; key %q parked until it recovers", b.idx, b.base, key),
		})
		return nil, nil, false
	}
	return b, raw, true
}

// proxyPost forwards a POST body to one backend path and returns the
// response. A transport error marks the backend degraded immediately —
// no waiting for the next health sweep — and surfaces as 502.
func (f *Front) proxyPost(w http.ResponseWriter, r *http.Request, b *backend, path string, body []byte) (*http.Response, bool) {
	req, err := http.NewRequestWithContext(r.Context(), http.MethodPost, b.base+path, bytes.NewReader(body))
	if err != nil {
		writeJSON(w, http.StatusBadGateway, errorResponse{Error: err.Error()})
		return nil, false
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := f.client.Do(req)
	if err != nil {
		b.setHealth(false, err.Error(), time.Now())
		writeJSON(w, http.StatusBadGateway, errorResponse{
			Error: fmt.Sprintf("backend %d (%s): %v", b.idx, b.base, err),
		})
		return nil, false
	}
	return resp, true
}

// passthroughHeaders copies the backend's semantically load-bearing
// headers verbatim, rewriting only the job-ID header into the front's
// namespace. The list is explicit (not a map range) so the copy is
// deterministic and reviewable: Retry-After carries the backend's
// per-key jitter, X-Scarecrow-Cache the cache disposition.
func passthroughHeaders(w http.ResponseWriter, resp *http.Response, idx int) {
	for _, name := range []string{"Content-Type", "Retry-After", "X-Scarecrow-Cache"} {
		if v := resp.Header.Get(name); v != "" {
			w.Header().Set(name, v)
		}
	}
	if v := resp.Header.Get("X-Scarecrow-Job"); v != "" {
		w.Header().Set("X-Scarecrow-Job", jobID(idx, v))
	}
}

// handleSubmit routes an async submission to the owning backend and
// namespaces the returned job ID.
func (f *Front) handleSubmit(w http.ResponseWriter, r *http.Request) {
	b, raw, ok := f.routeBody(w, r)
	if !ok {
		return
	}
	resp, ok := f.proxyPost(w, r, b, "/v1/submit", raw)
	if !ok {
		return
	}
	defer resp.Body.Close()
	passthroughHeaders(w, resp, b.idx)
	if resp.StatusCode != http.StatusAccepted {
		// Error statuses (429, 503, 400) pass through byte for byte —
		// the headers above already carried Retry-After.
		w.WriteHeader(resp.StatusCode)
		_, _ = io.Copy(w, resp.Body)
		return
	}
	var sub struct {
		ID       string          `json:"id"`
		State    json.RawMessage `json:"state"`
		CacheHit bool            `json:"cache_hit"`
		Result   string          `json:"result"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		writeJSON(w, http.StatusBadGateway, errorResponse{Error: fmt.Sprintf("backend %d: undecodable submit response: %v", b.idx, err)})
		return
	}
	sub.ID = jobID(b.idx, sub.ID)
	sub.Result = "/v1/result/" + sub.ID
	writeJSON(w, http.StatusAccepted, sub)
}

// handleVerdict routes a synchronous submission. The response body is
// raw verdict JSON and is streamed through untouched, so the bytes a
// client sees through the front are exactly the backend's — and
// therefore exactly the WAL's.
func (f *Front) handleVerdict(w http.ResponseWriter, r *http.Request) {
	b, raw, ok := f.routeBody(w, r)
	if !ok {
		return
	}
	resp, ok := f.proxyPost(w, r, b, "/v1/verdict", raw)
	if !ok {
		return
	}
	defer resp.Body.Close()
	passthroughHeaders(w, resp, b.idx)
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
}

// handleMonitor routes a streaming deterrence run to the owning backend
// and relays the SSE frames as they arrive. The monitor body carries an
// extra "action" field on top of the submit shape, so routing decodes
// service.MonitorRequest rather than going through routeBody; the shard
// key is still the embedded submission's canonical verdict key, so a
// monitored run lands on the same cell that owns the specimen's verdicts.
func (f *Front) handleMonitor(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "POST required"})
		return
	}
	raw, err := io.ReadAll(r.Body)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("reading request: %v", err)})
		return
	}
	var req service.MonitorRequest
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("decoding request: %v", err)})
		return
	}
	key, err := service.RouteKey(req.SubmitRequest)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	b := f.backends[f.ring.owner(key)]
	if !b.isHealthy() {
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{
			Error: fmt.Sprintf("backend %d (%s) degraded; key %q parked until it recovers", b.idx, b.base, key),
		})
		return
	}
	resp, ok := f.proxyPost(w, r, b, "/v1/monitor", raw)
	if !ok {
		return
	}
	defer resp.Body.Close()
	passthroughHeaders(w, resp, b.idx)
	w.WriteHeader(resp.StatusCode)
	if resp.StatusCode != http.StatusOK {
		_, _ = io.Copy(w, resp.Body)
		return
	}
	flushCopy(w, resp.Body)
}

// flushCopy relays a streaming body chunk by chunk, flushing after every
// read so SSE frames reach the client as they happen instead of pooling
// in the front's write buffer until the backend run completes.
func flushCopy(w http.ResponseWriter, body io.Reader) {
	flusher, _ := w.(http.Flusher)
	buf := make([]byte, 16<<10)
	for {
		n, err := body.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		if err != nil {
			return
		}
	}
}

// handleResult routes a poll to the backend encoded in the job ID.
func (f *Front) handleResult(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "GET required"})
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/v1/result/")
	idx, rest, ok := splitJobID(id)
	if !ok || idx >= len(f.backends) {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: fmt.Sprintf("unknown job %q", id)})
		return
	}
	b := f.backends[idx]
	req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, b.base+"/v1/result/"+rest, nil)
	if err != nil {
		writeJSON(w, http.StatusBadGateway, errorResponse{Error: err.Error()})
		return
	}
	resp, err := f.client.Do(req)
	if err != nil {
		b.setHealth(false, err.Error(), time.Now())
		writeJSON(w, http.StatusBadGateway, errorResponse{
			Error: fmt.Sprintf("backend %d (%s): %v", b.idx, b.base, err),
		})
		return
	}
	defer resp.Body.Close()
	passthroughHeaders(w, resp, b.idx)
	if resp.StatusCode != http.StatusOK {
		w.WriteHeader(resp.StatusCode)
		_, _ = io.Copy(w, resp.Body)
		return
	}
	var res struct {
		ID       string          `json:"id"`
		State    json.RawMessage `json:"state"`
		CacheHit bool            `json:"cache_hit,omitempty"`
		Verdict  json.RawMessage `json:"verdict,omitempty"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		writeJSON(w, http.StatusBadGateway, errorResponse{Error: fmt.Sprintf("backend %d: undecodable result: %v", b.idx, err)})
		return
	}
	res.ID = jobID(b.idx, res.ID)
	writeJSON(w, http.StatusOK, res)
}

// handleHealthz reports the front's aggregate liveness: ok while every
// backend is healthy, degraded (still 200 — the front itself serves)
// while some are, 503 only when none are.
func (f *Front) handleHealthz(w http.ResponseWriter, r *http.Request) {
	st := f.Status()
	switch {
	case st.Healthy == len(st.Backends):
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	case st.Healthy > 0:
		writeJSON(w, http.StatusOK, map[string]string{"status": "degraded"})
	default:
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "down"})
	}
}

func (f *Front) handleStatusz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, f.Status())
}

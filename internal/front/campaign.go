package front

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"scarecrow/internal/campaign"
	"scarecrow/internal/service"
)

// Campaign fan-out. A manifest POSTed to the front expands into its
// explicit cell list, each cell routes to its shard owner, and every
// backend receives one tagged Cells sub-campaign holding exactly the
// cells it owns. One follower goroutine per shard streams that
// backend's SSE events into the front campaign, which re-sequences them
// under a single front-level monotonic counter — so a client of the
// merged stream gets the same contract a single backend gives: dense
// sequence numbers, Last-Event-ID resume, snapshot-on-gap, terminal
// summary.
//
// Followers own crash recovery. A backend that dies mid-sweep is
// checkpointing its sub-campaign into its WAL; when it restarts, its
// engine resumes the sub-campaign under the same tag, and the follower
// — parked on the backend's /healthz — re-finds it by that tag and
// re-streams from the beginning. The per-shard pending set dedupes
// replayed events (first report of a cell wins) and detects loss (cells
// still pending after a backend summary relaunch in a fresh round), so
// the merged stream reports every cell exactly once even across kills.

// frontCampaign is one merged sweep. Immutable above mu; guarded below.
type frontCampaign struct {
	id      string
	tag     string // tag namespace for this campaign's sub-campaigns
	total   int
	started time.Time
	done    chan struct{}
	ring    int
	shards  int // backends owning at least one cell

	mu         sync.Mutex
	state      string
	completed  int
	errors     int
	cacheHits  int
	categories map[string]int
	wall       time.Duration
	events     []campaign.Event // ring: events[0].Seq is the oldest retained
	nextSeq    uint64
	subs       map[chan struct{}]bool
	shardsDone int
	shardState []string // per-shard progress note for /statusz
}

// cellKey canonicalizes one cell to the service's routing identity —
// the same string RouteKey yields for the cell's submission, which is
// also reconstructible from a backend verdict event. It is both the
// shard-routing key and the exactly-once dedupe key.
func cellKey(specimen, profile string, seed int64) string {
	spec := "cat:" + specimen
	if len(specimen) >= 4 && specimen[:4] == "syn:" {
		spec = specimen
	}
	if profile == "" {
		profile = string(service.DefaultProfile)
	}
	return fmt.Sprintf("%s|%s|%d", spec, profile, seed)
}

// launchCampaign expands a manifest, shards its cells, and starts the
// per-shard followers.
func (f *Front) launchCampaign(m campaign.Manifest) (*frontCampaign, error) {
	cells, err := m.ExpandCells(f.opts.MaxJobs)
	if err != nil {
		return nil, err
	}
	// Shard by route key. Predicate cells' display names (syn:<fp>) come
	// from the same canonical fingerprint RouteKey uses, so front and
	// backend agree on every cell's identity.
	owned := make([][]campaign.Cell, len(f.backends))
	keys := make([][]string, len(f.backends))
	for _, cl := range cells {
		seed := cl.Seed
		req := service.SubmitRequest{Specimen: cl.Specimen, Predicate: cl.Predicate, Profile: cl.Profile, Seed: &seed}
		key, err := service.RouteKey(req)
		if err != nil {
			return nil, fmt.Errorf("front: cell %q: %w", cl.Specimen, err)
		}
		idx := f.ring.owner(key)
		owned[idx] = append(owned[idx], cl)
		keys[idx] = append(keys[idx], key)
	}

	f.mu.Lock()
	f.nextID++
	fc := &frontCampaign{
		id:         fmt.Sprintf("f%08d", f.nextID),
		total:      len(cells),
		started:    time.Now(),
		done:       make(chan struct{}),
		ring:       f.opts.EventRing,
		state:      campaign.StateRunning,
		categories: make(map[string]int),
		subs:       make(map[chan struct{}]bool),
		shardState: make([]string, len(f.backends)),
	}
	fc.tag = m.Tag
	if fc.tag == "" {
		fc.tag = f.opts.FrontID + "/" + fc.id
	}
	for idx := range owned {
		if len(owned[idx]) > 0 {
			fc.shards++
		}
	}
	f.campaigns[fc.id] = fc
	f.order = append(f.order, fc.id)
	f.mu.Unlock()

	for idx := range owned {
		if len(owned[idx]) == 0 {
			continue
		}
		f.wg.Add(1)
		go f.followShard(fc, idx, owned[idx], keys[idx], m.Quota)
	}
	return fc, nil
}

func (f *Front) lookupCampaign(id string) (*frontCampaign, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	fc, ok := f.campaigns[id]
	return fc, ok
}

// followShard drives one backend's share of a campaign to completion,
// across backend deaths and restarts. pending tracks the cells this
// shard still owes the merged stream, keyed by route key; the loop
// terminates only when pending drains (every cell reported exactly
// once) or the front closes.
func (f *Front) followShard(fc *frontCampaign, idx int, cells []campaign.Cell, keys []string, quota int) {
	defer f.wg.Done()
	b := f.backends[idx]
	pending := make(map[string]campaign.Cell, len(cells))
	for i := range cells {
		pending[keys[i]] = cells[i]
	}
	round := 0
	for len(pending) > 0 {
		select {
		case <-f.ctx.Done():
			fc.shardFinished(idx, fmt.Sprintf("aborted with %d cells unreported", len(pending)))
			return
		default:
		}
		tag := fmt.Sprintf("%s/b%d", fc.tag, idx)
		if round > 0 {
			// A fresh round sweeps only the unreported cells; committed
			// ones replay from the backend's WAL as instant cache hits.
			tag = fmt.Sprintf("%s/b%d/r%d", fc.tag, idx, round)
		}
		fc.noteShard(idx, fmt.Sprintf("round %d: %d cells pending", round, len(pending)))
		// Adopt the backend's live campaign for this tag if one exists —
		// after a crash, that is the checkpoint-resumed sub-campaign —
		// otherwise launch one covering the pending cells.
		campID, ok := f.findByTag(b, tag)
		if !ok {
			var permanent bool
			var err error
			campID, permanent, err = f.launchSub(b, campaign.Manifest{Cells: pendingCells(pending), Quota: quota, Tag: tag})
			if err != nil {
				fc.noteShard(idx, fmt.Sprintf("round %d: launch: %v", round, err))
				if permanent {
					// The backend rejected the manifest outright (4xx):
					// retrying cannot help. Report every pending cell as
					// errored so the merged sweep still terminates.
					f.failPending(fc, pending, err)
					break
				}
				f.waitHealthy(b) // false only when the front closed; the select above exits then
				continue
			}
		}
		if err := f.streamSub(fc, b, campID, pending); err != nil {
			// Stream severed mid-campaign: the backend died or drained.
			// Park until it answers /healthz again, then re-find its
			// resumed campaign by tag and re-stream; the pending map
			// swallows replayed events.
			fc.noteShard(idx, fmt.Sprintf("round %d: stream: %v", round, err))
			f.waitHealthy(b)
			continue
		}
		// Clean summary. Anything still pending was dropped from the
		// backend's event ring (or aborted by a drain) — sweep it in a
		// fresh round rather than replaying the whole shard.
		if len(pending) > 0 {
			round++
		}
	}
	fc.shardFinished(idx, "done")
}

func sortedKeys(pending map[string]campaign.Cell) []string {
	keys := make([]string, 0, len(pending))
	for k := range pending { // aggregate + sort below: order-safe
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func pendingCells(pending map[string]campaign.Cell) []campaign.Cell {
	keys := sortedKeys(pending)
	cells := make([]campaign.Cell, 0, len(keys))
	for _, k := range keys {
		cells = append(cells, pending[k])
	}
	return cells
}

// failPending reports every still-pending cell of a shard as errored —
// the terminal path for manifests a backend permanently rejects.
func (f *Front) failPending(fc *frontCampaign, pending map[string]campaign.Cell, cause error) {
	for _, key := range sortedKeys(pending) {
		cl := pending[key]
		name := cl.Specimen
		if name == "" {
			// Predicate cell: its display name is the syn: prefix of its
			// route key.
			name = key[:strings.IndexByte(key, '|')]
		}
		fc.record(campaign.Event{
			Type:     "verdict",
			Specimen: name,
			Profile:  cl.Profile,
			Seed:     cl.Seed,
			Category: "error",
			Error:    cause.Error(),
		})
		delete(pending, key)
	}
}

// findByTag asks one backend for its newest campaign carrying a tag.
func (f *Front) findByTag(b *backend, tag string) (string, bool) {
	req, err := http.NewRequestWithContext(f.ctx, http.MethodGet, b.base+"/v1/campaign", nil)
	if err != nil {
		return "", false
	}
	resp, err := f.client.Do(req)
	if err != nil {
		return "", false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", false
	}
	var sums []campaign.Summary
	if err := json.NewDecoder(resp.Body).Decode(&sums); err != nil {
		return "", false
	}
	id := ""
	for _, s := range sums {
		// Engine IDs are zero-padded to equal width: string max = newest.
		if s.Tag == tag && s.ID > id {
			id = s.ID
		}
	}
	return id, id != ""
}

// launchSub POSTs one sub-campaign manifest to a backend. permanent
// marks rejections retrying cannot fix (4xx).
func (f *Front) launchSub(b *backend, m campaign.Manifest) (id string, permanent bool, err error) {
	body, err := json.Marshal(m)
	if err != nil {
		return "", true, err
	}
	req, err := http.NewRequestWithContext(f.ctx, http.MethodPost, b.base+"/v1/campaign", bytes.NewReader(body))
	if err != nil {
		return "", true, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := f.client.Do(req)
	if err != nil {
		b.setHealth(false, err.Error(), time.Now())
		return "", false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		buf, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		err := fmt.Errorf("backend %d: launch returned %d: %s", b.idx, resp.StatusCode, bytes.TrimSpace(buf))
		return "", resp.StatusCode >= 400 && resp.StatusCode < 500, err
	}
	var launched struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&launched); err != nil {
		return "", false, fmt.Errorf("backend %d: undecodable launch response: %w", b.idx, err)
	}
	return launched.ID, false, nil
}

// streamSub consumes one backend campaign's SSE stream from the start,
// recording each first-seen pending cell into the merged campaign.
// Returns nil when the backend's terminal summary arrives, an error if
// the stream severs first. Replays are harmless: a cell no longer
// pending is skipped. Snapshot events (the backend's ring dropped
// events) are absorbed — cells they hid stay pending and a later round
// collects them.
func (f *Front) streamSub(fc *frontCampaign, b *backend, campID string, pending map[string]campaign.Cell) error {
	req, err := http.NewRequestWithContext(f.ctx, http.MethodGet, b.base+"/v1/campaign/"+campID+"/events", nil)
	if err != nil {
		return err
	}
	resp, err := f.client.Do(req)
	if err != nil {
		b.setHealth(false, err.Error(), time.Now())
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("backend %d: events returned %d", b.idx, resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	var data []byte
	for sc.Scan() {
		line := sc.Bytes()
		switch {
		case bytes.HasPrefix(line, []byte("data: ")):
			data = append([]byte(nil), line[len("data: "):]...)
		case len(line) == 0 && data != nil:
			var ev campaign.Event
			if err := json.Unmarshal(data, &ev); err != nil {
				return fmt.Errorf("backend %d: undecodable event: %w", b.idx, err)
			}
			data = nil
			switch ev.Type {
			case "verdict":
				key := cellKey(ev.Specimen, ev.Profile, ev.Seed)
				if _, ok := pending[key]; ok {
					delete(pending, key)
					fc.record(ev)
				}
			case "summary":
				return nil
			}
			// Snapshots only mark a gap; nothing to merge.
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	return fmt.Errorf("backend %d: event stream ended before the summary", b.idx)
}

// record merges one backend verdict event into the front stream under
// the front's own sequence space, finishing the campaign when the last
// cell lands.
func (fc *frontCampaign) record(ev campaign.Event) {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	fc.completed++
	fc.categories[ev.Category]++
	if ev.CacheHit {
		fc.cacheHits++
	}
	if ev.Error != "" {
		fc.errors++
	}
	fc.appendLocked(campaign.Event{
		Type:     "verdict",
		Specimen: ev.Specimen,
		Profile:  ev.Profile,
		Seed:     ev.Seed,
		Category: ev.Category,
		CacheHit: ev.CacheHit,
		Error:    ev.Error,
	})
	if fc.completed == fc.total && fc.state == campaign.StateRunning {
		fc.finishLocked(campaign.StateDone)
	}
}

func (fc *frontCampaign) noteShard(idx int, note string) {
	fc.mu.Lock()
	fc.shardState[idx] = note
	fc.mu.Unlock()
}

// shardFinished marks one follower done. If a follower aborts with
// cells unreported (front shutdown), the campaign finishes aborted once
// every follower has stopped.
func (fc *frontCampaign) shardFinished(idx int, note string) {
	fc.mu.Lock()
	fc.shardState[idx] = note
	fc.shardsDone++
	if fc.shardsDone == fc.shards && fc.state == campaign.StateRunning && fc.completed < fc.total {
		fc.finishLocked(campaign.StateAborted)
	}
	fc.mu.Unlock()
}

// finishLocked moves the campaign to a terminal state and appends the
// summary event. Caller holds fc.mu.
func (fc *frontCampaign) finishLocked(state string) {
	fc.state = state
	fc.wall = time.Since(fc.started)
	summary := fc.summaryLocked()
	fc.appendLocked(campaign.Event{Type: "summary", Summary: &summary})
	close(fc.done)
}

func (fc *frontCampaign) snapshot() campaign.Summary {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	return fc.summaryLocked()
}

func (fc *frontCampaign) summaryLocked() campaign.Summary {
	wall := fc.wall
	if fc.state == campaign.StateRunning {
		wall = time.Since(fc.started)
	}
	cats := make(map[string]int, len(fc.categories))
	for k, v := range fc.categories {
		cats[k] = v
	}
	s := campaign.Summary{
		ID:         fc.id,
		Tag:        fc.tag,
		State:      fc.state,
		Total:      fc.total,
		Completed:  fc.completed,
		Errors:     fc.errors,
		CacheHits:  fc.cacheHits,
		Categories: cats,
		WallS:      wall.Seconds(),
	}
	if wall > 0 {
		s.VerdictsPerS = float64(fc.completed) / wall.Seconds()
	}
	return s
}

// appendLocked assigns the next front sequence number, trims the ring,
// and wakes subscribers. Caller holds fc.mu.
func (fc *frontCampaign) appendLocked(ev campaign.Event) {
	fc.nextSeq++
	ev.Seq = fc.nextSeq
	ev.Completed = fc.completed
	ev.Total = fc.total
	fc.events = append(fc.events, ev)
	if len(fc.events) > fc.ring {
		fc.events = fc.events[len(fc.events)-fc.ring:]
	}
	for ch := range fc.subs { //maporder:ok — wakeup poke, every subscriber gets one, order is moot
		select {
		case ch <- struct{}{}:
		default:
		}
	}
}

func (fc *frontCampaign) eventsSince(after uint64) (evs []campaign.Event, oldest uint64) {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	if len(fc.events) > 0 {
		oldest = fc.events[0].Seq
	}
	for _, ev := range fc.events {
		if ev.Seq > after {
			evs = append(evs, ev)
		}
	}
	return evs, oldest
}

func (fc *frontCampaign) subscribe() chan struct{} {
	ch := make(chan struct{}, 1)
	fc.mu.Lock()
	fc.subs[ch] = true
	fc.mu.Unlock()
	return ch
}

func (fc *frontCampaign) unsubscribe(ch chan struct{}) {
	fc.mu.Lock()
	delete(fc.subs, ch)
	fc.mu.Unlock()
}

// HTTP surface — the same shapes the single-backend campaign API
// serves, so clients (scarebench's follower included) cannot tell a
// front from a backend.

func (f *Front) handleCampaignLaunch(w http.ResponseWriter, r *http.Request) {
	var m campaign.Manifest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&m); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("decoding manifest: %v", err)})
		return
	}
	fc, err := f.launchCampaign(m)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusCreated, map[string]any{
		"id":     fc.id,
		"total":  fc.total,
		"result": "/v1/campaign/" + fc.id,
		"events": "/v1/campaign/" + fc.id + "/events",
	})
}

func (f *Front) handleCampaignList(w http.ResponseWriter, r *http.Request) {
	f.mu.Lock()
	fcs := make([]*frontCampaign, 0, len(f.order))
	for _, id := range f.order {
		fcs = append(fcs, f.campaigns[id])
	}
	f.mu.Unlock()
	out := make([]campaign.Summary, 0, len(fcs))
	for _, fc := range fcs {
		out = append(out, fc.snapshot())
	}
	writeJSON(w, http.StatusOK, out)
}

func (f *Front) handleCampaignSnapshot(w http.ResponseWriter, r *http.Request) {
	fc, ok := f.lookupCampaign(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: fmt.Sprintf("unknown campaign %q", r.PathValue("id"))})
		return
	}
	writeJSON(w, http.StatusOK, fc.snapshot())
}

// resumeSeq reads the client's resume position: Last-Event-ID or
// ?after=, zero meaning "from the start" — identical to the backend's
// contract, but over the front's merged sequence space.
func resumeSeq(r *http.Request) uint64 {
	raw := r.Header.Get("Last-Event-ID")
	if q := r.URL.Query().Get("after"); q != "" {
		raw = q
	}
	if raw == "" {
		return 0
	}
	n, err := strconv.ParseUint(raw, 10, 64)
	if err != nil {
		return 0
	}
	return n
}

// handleCampaignEvents streams the merged campaign as SSE with resume
// and snapshot-on-gap, exactly like a single backend's stream.
func (f *Front) handleCampaignEvents(w http.ResponseWriter, r *http.Request) {
	fc, ok := f.lookupCampaign(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: fmt.Sprintf("unknown campaign %q", r.PathValue("id"))})
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: "response writer cannot stream"})
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	last := resumeSeq(r)
	sub := fc.subscribe()
	defer fc.unsubscribe(sub)
	for {
		evs, oldest := fc.eventsSince(last)
		if oldest > 0 && last+1 < oldest {
			snap := fc.snapshot()
			gap := campaign.Event{
				Seq:       oldest - 1,
				Type:      "snapshot",
				Completed: snap.Completed,
				Total:     snap.Total,
				Summary:   &snap,
			}
			if err := writeEvent(w, gap); err != nil {
				return
			}
			last = gap.Seq
		}
		terminal := false
		for _, ev := range evs {
			if err := writeEvent(w, ev); err != nil {
				return
			}
			last = ev.Seq
			if ev.Type == "summary" {
				terminal = true
			}
		}
		fl.Flush()
		if terminal {
			return
		}
		select {
		case <-sub:
		case <-r.Context().Done():
			return
		}
	}
}

func writeEvent(w io.Writer, ev campaign.Event) error {
	data, err := json.Marshal(ev)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, data)
	return err
}

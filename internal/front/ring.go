package front

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// ring is a consistent-hash ring over backend indices. Each backend
// contributes vnodes points, hashed from a stable label, so ownership
// of the key space (1) spreads evenly without a coordinated assignment,
// and (2) is a pure function of the backend list — every front replica
// configured with the same -backends flag routes every key identically,
// and a front restart changes nothing. Keys are the service's canonical
// verdict keys (service.RouteKey), so one cell's cache entry and WAL
// record always live on exactly one backend.
type ring struct {
	points []point // sorted by hash; owner = first point clockwise
	n      int
}

type point struct {
	hash    uint64
	backend int
}

// defaultVnodes balances spread against ring size: 64 points per
// backend keeps the per-backend share within a few percent of uniform
// for small N while the whole ring stays a few KB.
const defaultVnodes = 64

func newRing(backends, vnodes int) *ring {
	if vnodes <= 0 {
		vnodes = defaultVnodes
	}
	r := &ring{n: backends, points: make([]point, 0, backends*vnodes)}
	for b := 0; b < backends; b++ {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, point{
				hash:    hash64(fmt.Sprintf("backend-%d/vnode-%d", b, v)),
				backend: b,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash ties (vanishingly rare with 64-bit points) break by index
		// so the ring is still a deterministic function of the config.
		return r.points[i].backend < r.points[j].backend
	})
	return r
}

// owner returns the backend index owning a key: the first ring point at
// or clockwise of the key's hash.
func (r *ring) owner(key string) int {
	if r.n == 1 {
		return 0
	}
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].backend
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

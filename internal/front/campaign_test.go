package front

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"scarecrow/internal/campaign"
)

// launchFront POSTs a manifest to the front and returns the campaign ID
// and total.
func launchFront(t *testing.T, ts *httptest.Server, manifest string) (string, int) {
	t.Helper()
	resp := postJSON(t, ts.URL+"/v1/campaign", manifest)
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("launch = %d: %s", resp.StatusCode, body)
	}
	var launched struct {
		ID    string `json:"id"`
		Total int    `json:"total"`
	}
	if err := json.Unmarshal(body, &launched); err != nil {
		t.Fatalf("decoding launch: %v", err)
	}
	return launched.ID, launched.Total
}

// waitFrontDone polls the front snapshot until the campaign is
// terminal.
func waitFrontDone(t *testing.T, ts *httptest.Server, id string) campaign.Summary {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		sum := frontSnapshot(t, ts, id)
		if sum.State != campaign.StateRunning {
			return sum
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign %s did not finish: %+v", id, sum)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func frontSnapshot(t *testing.T, ts *httptest.Server, id string) campaign.Summary {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/campaign/" + id)
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	var sum campaign.Summary
	if err := json.Unmarshal(readBody(t, resp), &sum); err != nil {
		t.Fatalf("decoding snapshot: %v", err)
	}
	return sum
}

// checkMergedStream asserts the merged-stream invariants on a full
// from-zero read: dense front sequence numbers, exactly one verdict per
// cell, one terminal summary. Returns verdict counts per cell key.
func checkMergedStream(t *testing.T, evs []sseEvent, total int) map[string]int {
	t.Helper()
	perCell := make(map[string]int)
	verdicts := 0
	summaries := 0
	for i, e := range evs {
		if e.id != uint64(i)+evs[0].id {
			t.Fatalf("sparse merged sequence at %d: id %d follows %d", i, e.id, evs[0].id)
		}
		switch e.kind {
		case "verdict":
			verdicts++
			perCell[cellKey(e.ev.Specimen, e.ev.Profile, e.ev.Seed)]++
		case "summary":
			summaries++
			if i != len(evs)-1 {
				t.Fatalf("summary at %d is not terminal", i)
			}
		}
	}
	if verdicts != total || summaries != 1 {
		t.Fatalf("merged stream carried %d verdicts, %d summaries; want %d, 1", verdicts, summaries, total)
	}
	for key, n := range perCell {
		if n != 1 {
			t.Fatalf("cell %s reported %d times in the merged stream", key, n)
		}
	}
	if len(perCell) != total {
		t.Fatalf("%d distinct cells reported, want %d", len(perCell), total)
	}
	return perCell
}

// A cross-product manifest fans out across both backends — each backend
// runs only the cells its shard owns — and the merged stream carries
// every cell exactly once under a dense front-level sequence.
func TestCampaignFanOutAndMerge(t *testing.T) {
	b0 := newTestBackend(t, false, campaign.Options{})
	b1 := newTestBackend(t, false, campaign.Options{})
	f := startFront(t, Options{}, b0, b1)
	ts := httptest.NewServer(f.Handler())
	defer ts.Close()

	id, total := launchFront(t, ts, `{"specimens":["kasidet","wannacry","locky"],"seeds":[1,2,3,4]}`)
	if total != 12 {
		t.Fatalf("total = %d, want 12", total)
	}
	sum := waitFrontDone(t, ts, id)
	if sum.State != campaign.StateDone || sum.Completed != 12 || sum.Errors != 0 {
		t.Fatalf("summary = %+v", sum)
	}

	resp, err := http.Get(ts.URL + "/v1/campaign/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	evs := readSSE(t, resp.Body)
	resp.Body.Close()
	checkMergedStream(t, evs, 12)

	// Both backends really share the sweep: each ran a strict subset.
	for i, tb := range []*testBackend{b0, b1} {
		sums := tb.eng.List()
		if len(sums) != 1 {
			t.Fatalf("backend %d ran %d campaigns, want 1", i, len(sums))
		}
		if sums[0].Total == 0 || sums[0].Total >= 12 {
			t.Fatalf("backend %d owned %d cells; fan-out did not shard", i, sums[0].Total)
		}
		if sums[0].Completed != sums[0].Total {
			t.Fatalf("backend %d sub-campaign incomplete: %+v", i, sums[0])
		}
	}
}

// Last-Event-ID resume over the merged stream: a reconnecting client
// sees exactly the events after its last-seen front sequence number.
func TestMergedStreamResume(t *testing.T) {
	b0 := newTestBackend(t, false, campaign.Options{})
	b1 := newTestBackend(t, false, campaign.Options{})
	f := startFront(t, Options{}, b0, b1)
	ts := httptest.NewServer(f.Handler())
	defer ts.Close()

	id, total := launchFront(t, ts, `{"specimens":["kasidet","wannacry"],"seeds":[1,2,3]}`)
	waitFrontDone(t, ts, id)

	full := readSSEFrom(t, ts, id, 0)
	checkMergedStream(t, full, total)
	mid := full[2].id

	resumed := readSSEFrom(t, ts, id, mid)
	if len(resumed) != len(full)-3 {
		t.Fatalf("resume after %d returned %d events, want %d", mid, len(resumed), len(full)-3)
	}
	for i, e := range resumed {
		want := full[i+3]
		if e.id != want.id || e.kind != want.kind || e.ev.Specimen != want.ev.Specimen {
			t.Fatalf("resumed event %d = %+v, want %+v", i, e, want)
		}
	}
}

// A client resuming from before the front ring's oldest retained event
// gets a snapshot carrying the true aggregate, then the tail.
func TestMergedStreamSnapshotOnGap(t *testing.T) {
	b0 := newTestBackend(t, false, campaign.Options{})
	f := startFront(t, Options{EventRing: 4}, b0)
	ts := httptest.NewServer(f.Handler())
	defer ts.Close()

	id, total := launchFront(t, ts, `{"specimens":["kasidet"],"seeds":[1,2,3,4,5,6,7,8,9,10]}`)
	waitFrontDone(t, ts, id)

	evs := readSSEFrom(t, ts, id, 0)
	if len(evs) == 0 || evs[0].kind != "snapshot" {
		t.Fatalf("gap resume did not open with a snapshot: %+v", evs)
	}
	snap := evs[0].ev.Summary
	if snap == nil || snap.Completed != total || snap.Total != total {
		t.Fatalf("snapshot aggregate wrong: %+v", snap)
	}
	last := evs[len(evs)-1]
	if last.kind != "summary" || last.ev.Summary.Completed != total {
		t.Fatalf("stream after snapshot did not end in the summary: %+v", last)
	}
}

// One backend's own event ring wraps while the front is disconnected
// from it. On reconnect the backend sends snapshot-on-gap; the follower
// sweeps the hidden cells in a fresh round, and the merged view stays
// consistent — every cell exactly once, correct aggregate.
func TestBackendRingWrapSelfHeals(t *testing.T) {
	b0 := newTestBackend(t, false, campaign.Options{EventRing: 4})
	f := startFront(t, Options{HealthInterval: time.Hour}, b0)
	ts := httptest.NewServer(f.Handler())
	defer ts.Close()

	// Cut the follower's stream as soon as the sub-campaign lands: the
	// backend sweeps all 16 cells while the front is parked, wrapping
	// its 4-event ring.
	id, total := launchFront(t, ts, `{"specimens":["kasidet","wannacry"],"seeds":[1,2,3,4,5,6,7,8]}`)
	waitBackendHasCampaigns(t, b0, 1)
	b0.swap.setDown()
	b0.ts.CloseClientConnections()
	waitBackendIdle(t, b0, 1)
	b0.swap.setUp()

	sum := waitFrontDone(t, ts, id)
	if sum.State != campaign.StateDone || sum.Completed != total || sum.Errors != 0 {
		t.Fatalf("summary after ring wrap = %+v", sum)
	}
	evs := readSSEFrom(t, ts, id, 0)
	checkMergedStream(t, evs, total)
	// The self-heal really took a second backend round.
	if got := len(b0.eng.List()); got < 2 {
		t.Fatalf("backend ran %d campaigns; ring wrap should have forced a recovery round", got)
	}
}

// A backend dying mid-campaign and restarting from its WAL checkpoint:
// the follower re-finds the resumed sub-campaign by tag, committed
// cells replay as cache hits, and the merged stream still reports every
// cell exactly once with no losses and no duplicates.
func TestBackendRestartMidCampaignResumes(t *testing.T) {
	b0 := newTestBackend(t, true, campaign.Options{CheckpointEvery: 1})
	b1 := newTestBackend(t, false, campaign.Options{})
	f := startFront(t, Options{HealthInterval: time.Hour}, b0, b1)
	ts := httptest.NewServer(f.Handler())
	defer ts.Close()

	id, total := launchFront(t, ts, `{"specimens":["kasidet","wannacry","locky"],"seeds":[1,2,3,4,5,6]}`)

	// Let some progress land, then kill the persistent backend.
	deadline := time.Now().Add(30 * time.Second)
	for frontSnapshot(t, ts, id).Completed < 3 {
		if time.Now().After(deadline) {
			t.Fatal("campaign made no progress before the crash")
		}
		time.Sleep(5 * time.Millisecond)
	}
	b0.crash()
	b0.restart(campaign.Options{CheckpointEvery: 1})

	sum := waitFrontDone(t, ts, id)
	if sum.State != campaign.StateDone || sum.Completed != total || sum.Errors != 0 {
		t.Fatalf("summary after crash+restart = %+v", sum)
	}
	evs := readSSEFrom(t, ts, id, 0)
	checkMergedStream(t, evs, total)
}

// readSSEFrom reads a front campaign stream to EOF with a resume
// position (0 = from the start), via the Last-Event-ID header when
// nonzero.
func readSSEFrom(t *testing.T, ts *httptest.Server, id string, after uint64) []sseEvent {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/campaign/"+id+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	if after > 0 {
		req.Header.Set("Last-Event-ID", fmt.Sprintf("%d", after))
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events = %d", resp.StatusCode)
	}
	return readSSE(t, resp.Body)
}

// waitBackendHasCampaigns waits until a backend's engine has launched
// at least n campaigns.
func waitBackendHasCampaigns(t *testing.T, tb *testBackend, n int) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for len(tb.eng.List()) < n {
		if time.Now().After(deadline) {
			t.Fatalf("backend never saw %d campaigns", n)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// waitBackendIdle waits until a backend's engine reports at least n
// campaigns all terminal.
func waitBackendIdle(t *testing.T, tb *testBackend, n int) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		sums := tb.eng.List()
		done := 0
		for _, s := range sums {
			if s.State != campaign.StateRunning {
				done++
			}
		}
		if len(sums) >= n && done == len(sums) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("backend never went idle: %+v", sums)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

package front

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"scarecrow/internal/campaign"
	"scarecrow/internal/service"
)

// The front proxies /v1/monitor to the backend that owns the specimen's
// verdict key and relays the SSE stream untouched: detection frames
// before the verdict frame, bypass header preserved, bytes identical to
// a direct backend request.
func TestMonitorProxyStreams(t *testing.T) {
	b0 := newTestBackend(t, false, campaign.Options{})
	b1 := newTestBackend(t, false, campaign.Options{})
	f := startFront(t, Options{}, b0, b1)
	ts := httptest.NewServer(f.Handler())
	defer ts.Close()

	spec := "wannacry"
	key, err := service.RouteKey(service.SubmitRequest{Specimen: spec})
	if err != nil {
		t.Fatalf("RouteKey: %v", err)
	}
	owner := []*testBackend{b0, b1}[f.ring.owner(key)]
	body := fmt.Sprintf(`{"specimen":%q, "seed": 42}`, spec)

	resp := postJSON(t, ts.URL+"/v1/monitor", body)
	front := readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("monitor via front = %d: %s", resp.StatusCode, front)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q, want text/event-stream", ct)
	}
	if cc := resp.Header.Get("X-Scarecrow-Cache"); cc != "bypass" {
		t.Fatalf("X-Scarecrow-Cache = %q, want bypass", cc)
	}
	stream := string(front)
	det := strings.Index(stream, "event: detection")
	ver := strings.Index(stream, "event: verdict")
	if det < 0 || ver < 0 || det > ver {
		t.Fatalf("stream must carry a detection frame before the verdict:\n%s", stream)
	}
	if !strings.Contains(stream, `"category":"deterred"`) {
		t.Fatalf("verdict frame not deterred:\n%s", stream)
	}

	direct := readBody(t, postJSON(t, owner.ts.URL+"/v1/monitor", body))
	if !bytes.Equal(front, direct) {
		t.Fatalf("front stream differs from backend stream:\n%s\nvs\n%s", front, direct)
	}
}

// Malformed monitor bodies are refused at the front without touching a
// backend.
func TestMonitorProxyRejectsUnknownFields(t *testing.T) {
	b0 := newTestBackend(t, false, campaign.Options{})
	f := startFront(t, Options{}, b0)
	ts := httptest.NewServer(f.Handler())
	defer ts.Close()

	resp := postJSON(t, ts.URL+"/v1/monitor", `{"specimen": "wannacry", "bogus": true}`)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field = %d, want 400", resp.StatusCode)
	}
	if st := b0.srv.Snapshot(); st.MonitorRuns != 0 {
		t.Fatalf("bad request reached the backend: %d runs", st.MonitorRuns)
	}
}

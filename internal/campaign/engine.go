package campaign

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"scarecrow/internal/analysis"
	"scarecrow/internal/service"
)

// Submitter is the slice of the verdict service a campaign needs:
// *service.Server satisfies it, and tests can wrap it to inject
// failures.
type Submitter interface {
	Submit(service.SubmitRequest) (*service.Job, error)
}

// Options sizes the engine.
type Options struct {
	// MaxJobs caps one manifest's expanded job count (default 16384).
	MaxJobs int
	// DefaultQuota is the in-flight width for manifests that do not set
	// one (default 4).
	DefaultQuota int
	// MaxQuota caps the width a manifest may request (default 16): even
	// a greedy campaign leaves queue slots for interactive traffic.
	MaxQuota int
	// QueueRetry is the fallback backoff after ErrQueueFull (default
	// 50ms, doubling to 1s). It only paces retries while the campaign
	// has nothing of its own in flight — otherwise the runner waits for
	// one of its own completions, which is the event that actually frees
	// a queue slot.
	QueueRetry time.Duration
	// Checkpoints, when set, makes campaign progress durable: a record
	// is written at launch, every CheckpointEvery completions, and at
	// finish (including drain-abort), so Resume on the next start picks
	// up interrupted sweeps. Nil disables checkpointing.
	Checkpoints CheckpointStore
	// CheckpointEvery is the completion stride between periodic
	// checkpoint writes (default 8).
	CheckpointEvery int
	// EventRing overrides the per-campaign event ring capacity (default
	// 4096). Tests shrink it to force snapshot-on-gap resumes.
	EventRing int
}

func (o Options) withDefaults() Options {
	if o.MaxJobs <= 0 {
		o.MaxJobs = 16384
	}
	if o.DefaultQuota <= 0 {
		o.DefaultQuota = 4
	}
	if o.MaxQuota <= 0 {
		o.MaxQuota = 16
	}
	if o.QueueRetry <= 0 {
		o.QueueRetry = 50 * time.Millisecond
	}
	if o.CheckpointEvery <= 0 {
		o.CheckpointEvery = 8
	}
	if o.EventRing <= 0 {
		o.EventRing = eventRing
	}
	return o
}

// Engine launches campaigns against a verdict service and keeps their
// state addressable for the HTTP layer.
type Engine struct {
	sub  Submitter
	opts Options

	mu        sync.Mutex
	nextID    uint64
	campaigns map[string]*Campaign
	order     []string
}

// NewEngine builds an engine over a verdict submitter.
func NewEngine(sub Submitter, opts Options) *Engine {
	return &Engine{
		sub:       sub,
		opts:      opts.withDefaults(),
		campaigns: make(map[string]*Campaign),
	}
}

// Launch validates and expands a manifest, registers the campaign, and
// starts its runner. The campaign is immediately addressable; Done()
// closes when it reaches a terminal state.
func (e *Engine) Launch(m Manifest) (*Campaign, error) {
	return e.launch(m, m.checkpointName(), 0)
}

// launch is the shared path behind Launch and Resume: ckptName is the
// campaign's durable identity, resumedFrom the checkpointed watermark
// it restarts from (0 for a fresh launch).
func (e *Engine) launch(m Manifest, ckptName string, resumedFrom int) (*Campaign, error) {
	jobs, err := m.expand(e.opts.MaxJobs)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	e.nextID++
	id := fmt.Sprintf("c%08d", e.nextID)
	c := newCampaign(id, m, jobs, e.opts.EventRing)
	c.ckptName = ckptName
	c.resumedFrom = resumedFrom
	e.campaigns[id] = c
	e.order = append(e.order, id)
	e.mu.Unlock()

	// The launch record makes the campaign itself durable before any
	// cell runs: a process killed a millisecond from now still resumes.
	e.checkpoint(c, StateRunning)
	go e.run(c)
	return c, nil
}

// Lookup returns a campaign by ID.
func (e *Engine) Lookup(id string) (*Campaign, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	c, ok := e.campaigns[id]
	return c, ok
}

// List returns summaries of every campaign in launch order.
func (e *Engine) List() []Summary {
	e.mu.Lock()
	ids := make([]string, len(e.order))
	copy(ids, e.order)
	cs := make([]*Campaign, 0, len(ids))
	for _, id := range ids {
		cs = append(cs, e.campaigns[id])
	}
	e.mu.Unlock()
	out := make([]Summary, 0, len(cs))
	for _, c := range cs {
		out = append(out, c.Snapshot())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// quota clamps a manifest's requested width into [1, MaxQuota].
func (e *Engine) quota(m Manifest) int {
	q := m.Quota
	if q <= 0 {
		q = e.opts.DefaultQuota
	}
	if q > e.opts.MaxQuota {
		q = e.opts.MaxQuota
	}
	return q
}

// run drives one campaign: fan jobs into the service under the quota
// semaphore, tally each verdict as it lands, finish with the summary
// event. Job order is deterministic; completion order is not.
func (e *Engine) run(c *Campaign) {
	quota := e.quota(c.manifest)
	sem := make(chan struct{}, quota)
	// freed is poked on every own-job completion: the event that actually
	// frees a service queue slot, and what submit blocks on under
	// backpressure instead of a wall-clock sleep.
	freed := make(chan struct{}, quota)
	var wg sync.WaitGroup
	aborted := false
	for _, js := range c.jobs {
		sem <- struct{}{}
		job, err := e.submit(js.request(), freed)
		if err != nil {
			<-sem
			if errors.Is(err, service.ErrDraining) {
				// The service is shutting down: nothing else will be
				// accepted, so stop fanning out. Jobs already in flight
				// still drain and are tallied below.
				aborted = true
				break
			}
			// Resolution failures (unknown specimen, bad profile) are
			// per-job errors, not campaign failures: a mixed manifest
			// reports them and sweeps on.
			c.recordVerdict(js, "error", false, err.Error())
			continue
		}
		wg.Add(1)
		go func(js jobSpec, job *service.Job) {
			defer wg.Done()
			defer func() { <-sem }()
			<-job.Done()
			category, cacheHit, jobErr := tally(job)
			c.recordVerdict(js, category, cacheHit, jobErr)
			e.maybeCheckpoint(c)
			select {
			case freed <- struct{}{}:
			default:
			}
		}(js, job)
	}
	wg.Wait()
	state := StateDone
	if aborted {
		state = StateAborted
	}
	// The final checkpoint lands before finish closes done: by the time
	// any waiter (the daemon's drain path included) observes the
	// terminal state, the record a restart will read is already durable.
	// An aborted record resumes; a done record is skipped.
	e.checkpoint(c, state)
	c.finish(state)
}

// Drain blocks until every launched campaign reaches a terminal state —
// and therefore, when checkpointing is on, until each one's final
// checkpoint is durable — or the context expires. The daemon calls this
// between draining the verdict service and closing the store, so a
// graceful shutdown mid-campaign leaves the same resumable record a
// SIGKILL does.
func (e *Engine) Drain(ctx context.Context) error {
	e.mu.Lock()
	cs := make([]*Campaign, 0, len(e.campaigns))
	for _, id := range e.order {
		cs = append(cs, e.campaigns[id])
	}
	e.mu.Unlock()
	for _, c := range cs {
		select {
		case <-c.Done():
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return nil
}

// tally extracts the event fields from a completed job's verdict bytes.
func tally(job *service.Job) (category string, cacheHit bool, jobErr string) {
	doc, err := analysis.UnmarshalVerdict(job.Verdict())
	if err != nil {
		return "error", job.CacheHit(), fmt.Sprintf("undecodable verdict: %v", err)
	}
	return doc.Category, job.CacheHit(), doc.Error
}

// submit pushes one request through the service, absorbing queue-full
// backpressure. The retry wakes on the campaign's own next completion —
// the queue slots ahead of us are (at least partly) our own jobs, so a
// completion is the signal that space opened up — with an exponential
// timer as the fallback for slots held by other clients. A stale freed
// poke at worst costs one extra refused Submit before waiting again.
// Draining and client errors surface to the caller.
func (e *Engine) submit(req service.SubmitRequest, freed <-chan struct{}) (*service.Job, error) {
	backoff := e.opts.QueueRetry
	for {
		job, err := e.sub.Submit(req)
		if err == nil || !errors.Is(err, service.ErrQueueFull) {
			return job, err
		}
		t := time.NewTimer(backoff)
		select {
		case <-freed:
			t.Stop()
		case <-t.C:
			if backoff < time.Second {
				backoff *= 2
			}
		}
	}
}

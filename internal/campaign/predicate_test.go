package campaign

import (
	"encoding/json"
	"strings"
	"testing"

	"scarecrow/internal/service"
	"scarecrow/internal/synth"
)

// A manifest mixing named specimens and synthesized predicates sweeps
// every cell; predicate cells are labeled syn:<fingerprint> in the
// event stream.
func TestCampaignWithPredicates(t *testing.T) {
	tree := &synth.Node{Op: synth.OpLeaf, Entry: "file:deepfreeze"}
	raw, err := json.Marshal(tree)
	if err != nil {
		t.Fatal(err)
	}

	s := startServer(t, service.Config{})
	e := NewEngine(s, Options{})
	c, err := e.Launch(Manifest{
		Specimens:  []string{"kasidet"},
		Predicates: []json.RawMessage{raw},
		Seeds:      []int64{1, 2},
	})
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	sum := waitCampaign(t, c)
	if sum.State != StateDone || sum.Completed != 4 || sum.Errors != 0 {
		t.Fatalf("campaign summary: %+v", sum)
	}

	evs, _ := c.eventsSince(0)
	wantLabel := "syn:" + tree.Fingerprint()
	synCells := 0
	for _, ev := range evs {
		if ev.Type == "verdict" && ev.Specimen == wantLabel {
			synCells++
			if ev.Category == "" {
				t.Errorf("predicate cell has no category: %+v", ev)
			}
		}
	}
	if synCells != 2 {
		t.Fatalf("saw %d predicate verdict events, want 2 (one per seed)", synCells)
	}
}

// Malformed predicates fail the whole launch with a client error —
// before any job is enqueued.
func TestCampaignRejectsBadPredicate(t *testing.T) {
	e := NewEngine(nil, Options{})
	for name, raw := range map[string]string{
		"bad-json":      `{`,
		"unknown-entry": `{"op":"leaf","entry":"no:such"}`,
		"not-arity":     `{"op":"not","kids":[]}`,
	} {
		_, err := e.Launch(Manifest{Predicates: []json.RawMessage{json.RawMessage(raw)}})
		if err == nil {
			t.Errorf("%s: launch accepted a malformed predicate", name)
		} else if !strings.Contains(err.Error(), "predicate 0") {
			t.Errorf("%s: error %q does not name the offending predicate", name, err)
		}
	}
}

// Campaign checkpointing: the engine periodically writes progress
// records into the verdict store's WAL so a killed daemon *resumes* its
// in-flight campaigns on restart instead of silently forgetting them.
//
// The division of labour with the verdict WAL is deliberate. Completed
// verdicts are already durable the moment they commit — what a crash
// loses is the campaign itself: which manifest was in flight, and how
// far it had got. The checkpoint record carries exactly that. Resume
// re-launches the recorded manifest in full; every cell whose verdict
// was committed before the crash replays from the WAL as a byte-
// identical cache hit at disk speed, so only the genuinely lost cells
// pay a lab run. That keeps the record small (no per-cell bitmap to
// maintain on the hot path) while guaranteeing the resumed campaign's
// event stream still covers every cell — nothing lost, and consumers
// that dedupe by cell see nothing duplicated.
package campaign

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
)

// CheckpointStore is the slice of the durable store the engine needs
// for campaign checkpoints. *store.Store satisfies it; tests use an
// in-memory fake.
type CheckpointStore interface {
	// PutCheckpoint durably writes (or overwrites) the named record.
	PutCheckpoint(name string, val []byte) error
	// GetCheckpoint returns the newest committed value for the name.
	GetCheckpoint(name string) ([]byte, bool, error)
	// Checkpoints lists the live checkpoint names, sorted.
	Checkpoints() ([]string, error)
}

// checkpointRecord is the JSON payload of one campaign checkpoint.
type checkpointRecord struct {
	// V versions the record format.
	V int `json:"v"`
	// State is the campaign state at write time; "done" records are
	// terminal and never resumed.
	State string `json:"state"`
	// Completed is the progress watermark when the record was written —
	// diagnostic and reporting only; resume correctness comes from the
	// verdict WAL, not from this counter.
	Completed int `json:"completed"`
	// Total is the expanded cell count.
	Total int `json:"total"`
	// Manifest is the full launch manifest, so a restarted engine can
	// re-expand the identical cell list.
	Manifest Manifest `json:"manifest"`
}

const checkpointVersion = 1

// checkpointName derives the durable identity of a campaign. A tagged
// manifest (the front tags each sub-campaign it fans out) checkpoints
// under its tag, so the re-launched campaign after a crash overwrites
// the same record. Untagged manifests fall back to a content hash —
// stable across restarts, unlike engine-assigned IDs, which begin again
// at c00000001 in every process.
func (m Manifest) checkpointName() string {
	if m.Tag != "" {
		return m.Tag
	}
	buf, err := json.Marshal(m)
	if err != nil {
		// Manifest is plain data; Marshal cannot fail in practice. A
		// constant fallback keeps the name deterministic regardless.
		buf = []byte("unmarshalable")
	}
	h := fnv.New64a()
	h.Write(buf)
	return fmt.Sprintf("m%016x", h.Sum64())
}

// checkpoint writes the campaign's current progress under its durable
// name. state is the state to record (the campaign's own state field
// flips to terminal only in finish, which runs after the final
// checkpoint so the record is durable before waiters wake). Write
// failures are advisory — the WAL is an accelerator for restart, not a
// dependency of the running sweep — but are counted on the campaign for
// the /statusz surface.
func (e *Engine) checkpoint(c *Campaign, state string) {
	if e.opts.Checkpoints == nil {
		return
	}
	c.mu.Lock()
	rec := checkpointRecord{
		V:         checkpointVersion,
		State:     state,
		Completed: c.completed,
		Total:     len(c.jobs),
		Manifest:  c.manifest,
	}
	c.mu.Unlock()
	buf, err := json.Marshal(rec)
	if err == nil {
		err = e.opts.Checkpoints.PutCheckpoint(c.ckptName, buf)
	}
	if err != nil {
		c.mu.Lock()
		c.ckptErrors++
		c.mu.Unlock()
	}
}

// maybeCheckpoint writes a periodic progress record when the campaign
// has completed another CheckpointEvery cells since the last one. Runs
// on job-completion goroutines; the write itself happens outside the
// campaign lock.
func (e *Engine) maybeCheckpoint(c *Campaign) {
	if e.opts.Checkpoints == nil {
		return
	}
	c.mu.Lock()
	due := c.state == StateRunning && c.completed > 0 &&
		c.completed-c.lastCkpt >= e.opts.CheckpointEvery
	if due {
		c.lastCkpt = c.completed
	}
	c.mu.Unlock()
	if due {
		e.checkpoint(c, StateRunning)
	}
}

// Resume re-launches every checkpointed campaign that had not reached
// "done" when the process last stopped — SIGKILL mid-sweep and graceful
// drain alike. It returns the resumed campaigns. Call it once at
// startup, after the engine (and its service) are ready to accept
// submissions; committed cells replay from the verdict WAL as cache
// hits, so a resumed sweep re-runs only the work that was actually
// lost.
func (e *Engine) Resume() ([]*Campaign, error) {
	if e.opts.Checkpoints == nil {
		return nil, nil
	}
	names, err := e.opts.Checkpoints.Checkpoints()
	if err != nil {
		return nil, fmt.Errorf("campaign: listing checkpoints: %w", err)
	}
	var resumed []*Campaign
	var firstErr error
	for _, name := range names {
		buf, ok, err := e.opts.Checkpoints.GetCheckpoint(name)
		if err != nil || !ok {
			if err != nil && firstErr == nil {
				firstErr = fmt.Errorf("campaign: reading checkpoint %s: %w", name, err)
			}
			continue
		}
		var rec checkpointRecord
		if err := json.Unmarshal(buf, &rec); err != nil {
			// An undecodable record is skipped, not fatal: one corrupt
			// checkpoint must not stop the others from resuming.
			if firstErr == nil {
				firstErr = fmt.Errorf("campaign: decoding checkpoint %s: %w", name, err)
			}
			continue
		}
		if rec.State == StateDone {
			continue
		}
		c, err := e.launch(rec.Manifest, name, rec.Completed)
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("campaign: resuming %s: %w", name, err)
			}
			continue
		}
		resumed = append(resumed, c)
	}
	return resumed, firstErr
}

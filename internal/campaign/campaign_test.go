package campaign

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"scarecrow/internal/service"
)

func startServer(t *testing.T, cfg service.Config) *service.Server {
	t.Helper()
	if cfg.Workers == 0 {
		cfg.Workers = 2
	}
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = 16
	}
	if cfg.CacheSize == 0 {
		cfg.CacheSize = 64
	}
	s := service.NewServer(cfg)
	s.Start()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
	})
	return s
}

func waitCampaign(t *testing.T, c *Campaign) Summary {
	t.Helper()
	select {
	case <-c.Done():
	case <-time.After(60 * time.Second):
		t.Fatalf("campaign %s did not finish: %+v", c.ID, c.Snapshot())
	}
	return c.Snapshot()
}

func TestManifestExpansion(t *testing.T) {
	jobs, err := Manifest{
		Specimens: []string{"a", "b"},
		Profiles:  []string{"p1", "p2"},
		Seeds:     []int64{1, 2, 3},
	}.expand(100)
	if err != nil {
		t.Fatalf("expand: %v", err)
	}
	if len(jobs) != 12 {
		t.Fatalf("expanded %d jobs, want 12", len(jobs))
	}
	// Deterministic specimen-major order; first cell is (a, p1, 1).
	sameCell := func(j jobSpec, spec, prof string, seed int64) bool {
		return j.Specimen == spec && j.Profile == prof && j.Seed == seed && j.Predicate == nil
	}
	if !sameCell(jobs[0], "a", "p1", 1) || !sameCell(jobs[11], "b", "p2", 3) {
		t.Fatalf("unexpected expansion order: first %+v last %+v", jobs[0], jobs[11])
	}

	// Defaults: empty profile means "service default", seeds default to 1.
	jobs, err = Manifest{Specimens: []string{"a"}}.expand(100)
	if err != nil {
		t.Fatalf("expand defaults: %v", err)
	}
	if len(jobs) != 1 || !sameCell(jobs[0], "a", "", 1) {
		t.Fatalf("default expansion: %+v", jobs)
	}

	if _, err := (Manifest{}).expand(100); err == nil {
		t.Fatal("empty manifest expanded without error")
	}
	if _, err := (Manifest{Specimens: []string{"a", "b", "c"}}).expand(2); err == nil {
		t.Fatal("over-limit manifest expanded without error")
	}
}

// A full sweep: every cell of the cross product completes, the category
// tallies sum to the job count, and the event stream is exactly one
// verdict event per job followed by one terminal summary with dense
// sequence numbers.
func TestCampaignSweepTalliesAndEvents(t *testing.T) {
	s := startServer(t, service.Config{})
	e := NewEngine(s, Options{})
	c, err := e.Launch(Manifest{
		Specimens: []string{"kasidet", "wannacry"},
		Seeds:     []int64{1, 2},
	})
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	sum := waitCampaign(t, c)

	if sum.State != StateDone {
		t.Fatalf("state = %q, want done", sum.State)
	}
	if sum.Total != 4 || sum.Completed != 4 {
		t.Fatalf("completed %d/%d, want 4/4", sum.Completed, sum.Total)
	}
	if sum.Errors != 0 {
		t.Fatalf("errors = %d, want 0", sum.Errors)
	}
	var catTotal int
	for _, n := range sum.Categories {
		catTotal += n
	}
	if catTotal != 4 {
		t.Fatalf("category tallies sum to %d, want 4 (%v)", catTotal, sum.Categories)
	}
	if sum.WallS <= 0 || sum.VerdictsPerS <= 0 {
		t.Fatalf("throughput not recorded: %+v", sum)
	}

	evs, oldest := c.eventsSince(0)
	if oldest != 1 || len(evs) != 5 {
		t.Fatalf("got %d events from seq %d, want 5 from 1", len(evs), oldest)
	}
	for i, ev := range evs {
		if ev.Seq != uint64(i+1) {
			t.Fatalf("event %d has seq %d, want dense numbering", i, ev.Seq)
		}
	}
	for _, ev := range evs[:4] {
		if ev.Type != "verdict" || ev.Category == "" {
			t.Fatalf("non-verdict event before the summary: %+v", ev)
		}
	}
	fin := evs[4]
	if fin.Type != "summary" || fin.Summary == nil || fin.Summary.Completed != 4 {
		t.Fatalf("terminal event is not the summary: %+v", fin)
	}
}

// Unresolvable specimens fail their own cell, not the sweep: the
// campaign still reaches "done" with the bad cells tallied as errors.
func TestMixedManifestRecordsPerJobErrors(t *testing.T) {
	s := startServer(t, service.Config{})
	e := NewEngine(s, Options{})
	c, err := e.Launch(Manifest{Specimens: []string{"kasidet", "no-such-specimen"}})
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	sum := waitCampaign(t, c)
	if sum.State != StateDone {
		t.Fatalf("state = %q, want done", sum.State)
	}
	if sum.Completed != 2 || sum.Errors != 1 {
		t.Fatalf("completed %d errors %d, want 2 and 1", sum.Completed, sum.Errors)
	}
	if sum.Categories["error"] != 1 {
		t.Fatalf("error category tally = %d, want 1 (%v)", sum.Categories["error"], sum.Categories)
	}
}

// Resubmitting a finished manifest is a replay: every verdict comes from
// the cache (or store), no new lab runs.
func TestResubmittedCampaignReplaysFromCache(t *testing.T) {
	s := startServer(t, service.Config{})
	e := NewEngine(s, Options{})
	m := Manifest{Specimens: []string{"kasidet", "locky"}, Seeds: []int64{3}}

	c1, err := e.Launch(m)
	if err != nil {
		t.Fatalf("Launch cold: %v", err)
	}
	waitCampaign(t, c1)
	runs := s.Snapshot().LabRuns

	c2, err := e.Launch(m)
	if err != nil {
		t.Fatalf("Launch warm: %v", err)
	}
	sum := waitCampaign(t, c2)
	if sum.CacheHits != 2 {
		t.Fatalf("warm campaign cache hits = %d, want 2", sum.CacheHits)
	}
	if got := s.Snapshot().LabRuns; got != runs {
		t.Fatalf("warm campaign ran the lab (%d -> %d runs)", runs, got)
	}
}

// countingSubmitter tracks, at each submission, how many previously
// submitted jobs are still unfinished — the quota invariant says this
// never exceeds the campaign's width, because the runner only submits
// while holding a semaphore slot that is released strictly after the
// job's Done channel closes.
type countingSubmitter struct {
	inner Submitter

	mu   sync.Mutex
	jobs []*service.Job
	max  int
}

func (cs *countingSubmitter) Submit(req service.SubmitRequest) (*service.Job, error) {
	job, err := cs.inner.Submit(req)
	if err != nil {
		return job, err
	}
	cs.mu.Lock()
	cs.jobs = append(cs.jobs, job)
	live := 0
	for _, j := range cs.jobs {
		select {
		case <-j.Done():
		default:
			live++
		}
	}
	if live > cs.max {
		cs.max = live
	}
	cs.mu.Unlock()
	return job, nil
}

func (cs *countingSubmitter) maxInflight() int {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return cs.max
}

// The quota is a hard bound on campaign fan-out: with quota 2 the
// service never holds more than 2 of the campaign's jobs, regardless of
// worker count or queue depth.
func TestQuotaBoundsCampaignInflight(t *testing.T) {
	s := startServer(t, service.Config{Workers: 4, QueueDepth: 32})
	cs := &countingSubmitter{inner: s}
	e := NewEngine(cs, Options{})
	c, err := e.Launch(Manifest{
		Specimens: []string{"kasidet"},
		Seeds:     []int64{1, 2, 3, 4, 5, 6, 7, 8},
		Quota:     2,
	})
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	sum := waitCampaign(t, c)
	if sum.Completed != 8 {
		t.Fatalf("completed %d, want 8", sum.Completed)
	}
	if got := cs.maxInflight(); got > 2 {
		t.Fatalf("max in-flight campaign jobs = %d, quota was 2", got)
	}
}

// flakySubmitter rejects the first n submissions with ErrQueueFull, then
// delegates — the runner must absorb transient backpressure.
type flakySubmitter struct {
	inner Submitter

	mu        sync.Mutex
	rejects   int
	rejected  int
	drainFrom int // after this many successes, everything is ErrDraining (0 = never)
	accepted  int
}

func (fs *flakySubmitter) Submit(req service.SubmitRequest) (*service.Job, error) {
	fs.mu.Lock()
	if fs.rejected < fs.rejects {
		fs.rejected++
		fs.mu.Unlock()
		return nil, service.ErrQueueFull
	}
	if fs.drainFrom > 0 && fs.accepted >= fs.drainFrom {
		fs.mu.Unlock()
		return nil, service.ErrDraining
	}
	fs.accepted++
	fs.mu.Unlock()
	return fs.inner.Submit(req)
}

func TestRunnerRetriesQueueFull(t *testing.T) {
	s := startServer(t, service.Config{})
	fs := &flakySubmitter{inner: s, rejects: 3}
	e := NewEngine(fs, Options{QueueRetry: time.Millisecond})
	c, err := e.Launch(Manifest{Specimens: []string{"kasidet", "locky"}})
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	sum := waitCampaign(t, c)
	if sum.State != StateDone || sum.Completed != 2 {
		t.Fatalf("campaign did not recover from queue-full: %+v", sum)
	}
}

// A draining service aborts the remainder of the sweep: jobs already
// accepted are tallied, the rest are never submitted, and the terminal
// state says so.
func TestDrainingServiceAbortsCampaign(t *testing.T) {
	s := startServer(t, service.Config{})
	fs := &flakySubmitter{inner: s, drainFrom: 2}
	e := NewEngine(fs, Options{})
	c, err := e.Launch(Manifest{
		Specimens: []string{"kasidet"},
		Seeds:     []int64{1, 2, 3, 4, 5},
	})
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	sum := waitCampaign(t, c)
	if sum.State != StateAborted {
		t.Fatalf("state = %q, want aborted", sum.State)
	}
	if sum.Completed != 2 {
		t.Fatalf("completed %d, want the 2 accepted before the drain", sum.Completed)
	}
}

// readSSE consumes an event stream until EOF, decoding each frame and
// checking the id: line matches the payload's seq.
func readSSE(t *testing.T, body *bufio.Scanner) []Event {
	t.Helper()
	var (
		evs  []Event
		id   string
		typ  string
		data string
	)
	flush := func() {
		if data == "" {
			return
		}
		var ev Event
		if err := json.Unmarshal([]byte(data), &ev); err != nil {
			t.Fatalf("decoding SSE data %q: %v", data, err)
		}
		if id != fmt.Sprint(ev.Seq) {
			t.Fatalf("SSE id %q does not match payload seq %d", id, ev.Seq)
		}
		if typ != ev.Type {
			t.Fatalf("SSE event %q does not match payload type %q", typ, ev.Type)
		}
		evs = append(evs, ev)
		id, typ, data = "", "", ""
	}
	for body.Scan() {
		line := body.Text()
		switch {
		case line == "":
			flush()
		case strings.HasPrefix(line, "id: "):
			id = strings.TrimPrefix(line, "id: ")
		case strings.HasPrefix(line, "event: "):
			typ = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data = strings.TrimPrefix(line, "data: ")
		default:
			t.Fatalf("unexpected SSE line %q", line)
		}
	}
	flush()
	return evs
}

func campaignTestServer(t *testing.T) (*httptest.Server, *Engine) {
	t.Helper()
	s := startServer(t, service.Config{})
	e := NewEngine(s, Options{})
	mux := http.NewServeMux()
	mux.Handle("/", s.Handler())
	e.Register(mux)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts, e
}

// The full HTTP surface: launch a sweep, stream its events live to the
// terminal summary, then confirm the snapshot endpoint agrees.
func TestHTTPLaunchStreamSnapshot(t *testing.T) {
	ts, _ := campaignTestServer(t)

	resp, err := http.Post(ts.URL+"/v1/campaign", "application/json",
		strings.NewReader(`{"specimens":["kasidet","locky"],"seeds":[1,2]}`))
	if err != nil {
		t.Fatalf("launch: %v", err)
	}
	var launched launchResponse
	if err := json.NewDecoder(resp.Body).Decode(&launched); err != nil {
		t.Fatalf("decoding launch response: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated || launched.Total != 4 {
		t.Fatalf("launch: status %d total %d, want 201 and 4", resp.StatusCode, launched.Total)
	}

	// Stream live: the handler holds the connection until the terminal
	// summary, then closes.
	stream, err := http.Get(ts.URL + launched.Events)
	if err != nil {
		t.Fatalf("events: %v", err)
	}
	defer stream.Body.Close()
	if ct := stream.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events Content-Type = %q", ct)
	}
	evs := readSSE(t, bufio.NewScanner(stream.Body))
	if len(evs) != 5 {
		t.Fatalf("streamed %d events, want 4 verdicts + 1 summary", len(evs))
	}
	fin := evs[len(evs)-1]
	if fin.Type != "summary" || fin.Summary == nil || fin.Summary.State != StateDone {
		t.Fatalf("stream did not end with a done summary: %+v", fin)
	}

	snap, err := http.Get(ts.URL + launched.Result)
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	defer snap.Body.Close()
	var sum Summary
	if err := json.NewDecoder(snap.Body).Decode(&sum); err != nil {
		t.Fatalf("decoding snapshot: %v", err)
	}
	if sum.State != StateDone || sum.Completed != 4 {
		t.Fatalf("snapshot disagrees with stream: %+v", sum)
	}

	// List includes the campaign.
	list, err := http.Get(ts.URL + "/v1/campaign")
	if err != nil {
		t.Fatalf("list: %v", err)
	}
	defer list.Body.Close()
	var sums []Summary
	if err := json.NewDecoder(list.Body).Decode(&sums); err != nil {
		t.Fatalf("decoding list: %v", err)
	}
	if len(sums) != 1 || sums[0].ID != launched.ID {
		t.Fatalf("list = %+v, want the launched campaign", sums)
	}
}

// Last-Event-ID resume: a reconnecting client supplies the last id it
// saw and receives exactly the rest of the stream, nothing twice.
func TestSSEResumeWithLastEventID(t *testing.T) {
	ts, e := campaignTestServer(t)
	c, err := e.Launch(Manifest{Specimens: []string{"kasidet", "locky", "wannacry"}})
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	waitCampaign(t, c)

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/campaign/"+c.ID+"/events", nil)
	req.Header.Set("Last-Event-ID", "2")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	defer resp.Body.Close()
	evs := readSSE(t, bufio.NewScanner(resp.Body))
	// 3 verdicts + summary = seqs 1..4; resuming after 2 yields 3 and 4.
	if len(evs) != 2 || evs[0].Seq != 3 || evs[1].Type != "summary" {
		t.Fatalf("resume after 2 returned %+v, want seqs 3..4", evs)
	}

	// The ?after= query form works for curl-style clients.
	resp2, err := http.Get(ts.URL + "/v1/campaign/" + c.ID + "/events?after=3")
	if err != nil {
		t.Fatalf("resume via query: %v", err)
	}
	defer resp2.Body.Close()
	evs = readSSE(t, bufio.NewScanner(resp2.Body))
	if len(evs) != 1 || evs[0].Type != "summary" {
		t.Fatalf("query resume returned %+v, want just the summary", evs)
	}
}

// A client resuming from before the ring's oldest retained event gets a
// snapshot event carrying the aggregate, then the live tail — lossy in
// events, lossless in tallies.
func TestSSEResumeBeyondRingGetsSnapshot(t *testing.T) {
	e := NewEngine(nil, Options{})
	jobs := []jobSpec{{Specimen: "synthetic", Seed: 1}}
	c := newCampaign("c00000001", Manifest{Specimens: []string{"synthetic"}}, jobs, eventRing)
	e.mu.Lock()
	e.campaigns[c.ID] = c
	e.order = append(e.order, c.ID)
	e.mu.Unlock()
	// Overflow the ring so seq 1 is long gone.
	for i := 0; i < eventRing+100; i++ {
		c.recordVerdict(jobs[0], "deactivated", true, "")
	}
	c.finish(StateDone)

	mux := http.NewServeMux()
	e.Register(mux)
	ts := httptest.NewServer(mux)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/campaign/" + c.ID + "/events")
	if err != nil {
		t.Fatalf("events: %v", err)
	}
	defer resp.Body.Close()
	evs := readSSE(t, bufio.NewScanner(resp.Body))
	if len(evs) == 0 || evs[0].Type != "snapshot" || evs[0].Summary == nil {
		t.Fatalf("stream did not open with a gap snapshot: %+v", evs[:1])
	}
	if evs[len(evs)-1].Type != "summary" {
		t.Fatalf("stream did not end with the summary")
	}
	// Snapshot + retained ring: dense ids from the snapshot on.
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq != evs[i-1].Seq+1 {
			t.Fatalf("gap after the snapshot: %d then %d", evs[i-1].Seq, evs[i].Seq)
		}
	}
}

// Unknown campaigns and malformed manifests are client errors.
func TestHTTPClientErrors(t *testing.T) {
	ts, _ := campaignTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/campaign/c99999999")
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown campaign: status %d, want 404", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/v1/campaign/c99999999/events")
	if err != nil {
		t.Fatalf("events: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown campaign events: status %d, want 404", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/v1/campaign", "application/json", strings.NewReader(`{"specimens":[]}`))
	if err != nil {
		t.Fatalf("launch: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty manifest: status %d, want 400", resp.StatusCode)
	}
}

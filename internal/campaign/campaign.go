// Package campaign is scarecrowd's batch layer: corpus-scale sweeps
// through the verdict service without corpus-scale polling.
//
// A campaign is a manifest — specimen list × profile list × seed list —
// fanned into the service's worker queue under a per-campaign quota, so
// a thousand-job sweep trickles through at a bounded in-flight width and
// interactive /v1/verdict traffic keeps getting queue slots. Progress is
// pushed, not polled: every completed verdict appends an event to the
// campaign's ring buffer and GET /v1/campaign/{id}/events streams them
// as Server-Sent Events, with Last-Event-ID resume so a dropped client
// reconnects and misses nothing that is still in the ring. The terminal
// event is a summary: per-category verdict counts, error tally, wall
// time, throughput.
//
// Campaigns compose with the durable store: resubmitting a manifest
// whose verdicts are already committed streams cache-hit events at disk
// speed and re-runs only the missing keys.
package campaign

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"scarecrow/internal/service"
	"scarecrow/internal/synth"
)

// Manifest is the body of POST /v1/campaign: the batch to sweep. The job
// list is the cross product (Specimens + Predicates) × Profiles × Seeds —
// or, for sub-campaigns fanned out by a shard front, the explicit Cells
// list.
type Manifest struct {
	// Specimens lists catalog names (wannacry, joe:<id>, mg:<id>, ...).
	Specimens []string `json:"specimens,omitempty"`
	// Predicates lists synthesized predicate trees (synth.Node JSON) to
	// sweep alongside the named specimens — the fuzzer's campaign-scale
	// submission path. Each is validated at launch (HTTP 400 on a
	// malformed tree).
	Predicates []json.RawMessage `json:"predicates,omitempty"`
	// Profiles lists machine profiles (default: the service default).
	Profiles []string `json:"profiles,omitempty"`
	// Seeds lists machine seeds (default: [1]).
	Seeds []int64 `json:"seeds,omitempty"`
	// Quota bounds this campaign's in-flight jobs inside the service
	// queue (default/cap set by the engine) — the fairness knob that
	// keeps a batch from starving interactive traffic.
	Quota int `json:"quota,omitempty"`
	// Cells lists explicit (specimen-or-predicate, profile, seed) cells
	// instead of a cross product — the shape scarefront uses to hand
	// each backend exactly the cells its shard owns (an arbitrary subset
	// of a cross product is not itself a cross product). Mutually
	// exclusive with Specimens/Predicates/Profiles/Seeds.
	Cells []Cell `json:"cells,omitempty"`
	// Tag is an optional caller-supplied label, surfaced in summaries
	// and used as the campaign's durable checkpoint identity: a crashed
	// backend resumes a tagged campaign under the same tag, which is how
	// a front re-finds the sub-campaigns it fanned out.
	Tag string `json:"tag,omitempty"`
}

// Cell is one explicit campaign cell. Exactly one of Specimen and
// Predicate must be set.
type Cell struct {
	// Specimen names a catalog sample, as in Manifest.Specimens.
	Specimen string `json:"specimen,omitempty"`
	// Predicate carries a synthesized predicate tree (synth.Node JSON);
	// the cell is labelled "syn:<fingerprint>" in events.
	Predicate json.RawMessage `json:"predicate,omitempty"`
	// Profile is the machine profile ("" = service default).
	Profile string `json:"profile,omitempty"`
	// Seed drives machine construction.
	Seed int64 `json:"seed"`
}

// jobSpec is one expanded (specimen, profile, seed) cell. Synthesized
// cells carry the predicate JSON in Predicate and a "syn:<fingerprint>"
// display label in Specimen (the label also names the cell in SSE
// events; the service ignores it when Predicate is set).
type jobSpec struct {
	Specimen  string
	Predicate json.RawMessage
	Profile   string
	Seed      int64
}

func (j jobSpec) request() service.SubmitRequest {
	seed := j.Seed
	if len(j.Predicate) > 0 {
		return service.SubmitRequest{Predicate: j.Predicate, Profile: j.Profile, Seed: &seed}
	}
	return service.SubmitRequest{Specimen: j.Specimen, Profile: j.Profile, Seed: &seed}
}

// expand validates the manifest shape and builds the job list in
// deterministic specimen-major order (named specimens first, then
// predicates in manifest order). A Cells manifest expands in cell
// order instead.
func (m Manifest) expand(maxJobs int) ([]jobSpec, error) {
	if len(m.Cells) > 0 {
		return m.expandCells(maxJobs)
	}
	if len(m.Specimens) == 0 && len(m.Predicates) == 0 {
		return nil, fmt.Errorf("campaign: manifest lists no specimens, predicates, or cells")
	}
	type cell struct {
		name string
		pred json.RawMessage
	}
	cells := make([]cell, 0, len(m.Specimens)+len(m.Predicates))
	for _, spec := range m.Specimens {
		cells = append(cells, cell{name: spec})
	}
	for i, raw := range m.Predicates {
		var n *synth.Node
		if err := json.Unmarshal(raw, &n); err != nil {
			return nil, fmt.Errorf("campaign: predicate %d: %w", i, err)
		}
		if err := synth.CheckBounds(n); err != nil {
			return nil, fmt.Errorf("campaign: predicate %d: %w", i, err)
		}
		if err := n.Validate(synth.EntryIndex()); err != nil {
			return nil, fmt.Errorf("campaign: predicate %d: %w", i, err)
		}
		cells = append(cells, cell{name: "syn:" + n.Fingerprint(), pred: raw})
	}
	profiles := m.Profiles
	if len(profiles) == 0 {
		profiles = []string{""} // service default
	}
	seeds := m.Seeds
	if len(seeds) == 0 {
		seeds = []int64{1}
	}
	total := len(cells) * len(profiles) * len(seeds)
	if total > maxJobs {
		return nil, fmt.Errorf("campaign: %d jobs exceeds the per-campaign limit of %d", total, maxJobs)
	}
	jobs := make([]jobSpec, 0, total)
	for _, c := range cells {
		for _, prof := range profiles {
			for _, seed := range seeds {
				jobs = append(jobs, jobSpec{Specimen: c.name, Predicate: c.pred, Profile: prof, Seed: seed})
			}
		}
	}
	return jobs, nil
}

// expandCells builds the job list from an explicit Cells manifest, in
// cell order.
func (m Manifest) expandCells(maxJobs int) ([]jobSpec, error) {
	if len(m.Specimens) > 0 || len(m.Predicates) > 0 || len(m.Profiles) > 0 || len(m.Seeds) > 0 {
		return nil, fmt.Errorf("campaign: cells are mutually exclusive with specimens/predicates/profiles/seeds")
	}
	if len(m.Cells) > maxJobs {
		return nil, fmt.Errorf("campaign: %d jobs exceeds the per-campaign limit of %d", len(m.Cells), maxJobs)
	}
	jobs := make([]jobSpec, 0, len(m.Cells))
	for i, cl := range m.Cells {
		hasSpec, hasPred := cl.Specimen != "", len(cl.Predicate) > 0
		if hasSpec == hasPred {
			return nil, fmt.Errorf("campaign: cell %d: exactly one of specimen and predicate must be set", i)
		}
		js := jobSpec{Specimen: cl.Specimen, Profile: cl.Profile, Seed: cl.Seed}
		if hasPred {
			var n *synth.Node
			if err := json.Unmarshal(cl.Predicate, &n); err != nil {
				return nil, fmt.Errorf("campaign: cell %d: %w", i, err)
			}
			if err := synth.CheckBounds(n); err != nil {
				return nil, fmt.Errorf("campaign: cell %d: %w", i, err)
			}
			if err := n.Validate(synth.EntryIndex()); err != nil {
				return nil, fmt.Errorf("campaign: cell %d: %w", i, err)
			}
			js.Specimen = "syn:" + n.Fingerprint()
			js.Predicate = cl.Predicate
		}
		jobs = append(jobs, js)
	}
	return jobs, nil
}

// ExpandCells expands the manifest into its explicit cell list — the
// same cells, in the same order, the engine itself would run, with the
// same validation. A shard front uses this to fan one cross-product
// manifest out as per-backend Cells sub-manifests.
func (m Manifest) ExpandCells(maxJobs int) ([]Cell, error) {
	jobs, err := m.expand(maxJobs)
	if err != nil {
		return nil, err
	}
	cells := make([]Cell, 0, len(jobs))
	for _, j := range jobs {
		c := Cell{Profile: j.Profile, Seed: j.Seed}
		if len(j.Predicate) > 0 {
			c.Predicate = j.Predicate
		} else {
			c.Specimen = j.Specimen
		}
		cells = append(cells, c)
	}
	return cells, nil
}

// Campaign lifecycle states.
const (
	StateRunning = "running"
	// StateDone: every job completed (possibly with per-job errors).
	StateDone = "done"
	// StateAborted: the service started draining mid-campaign; the
	// remaining jobs were never run.
	StateAborted = "aborted"
)

// Event is one entry in a campaign's stream. Verdict events carry the
// per-job outcome plus a progress counter; the terminal summary event
// carries the aggregate.
type Event struct {
	Seq  uint64 `json:"seq"`
	Type string `json:"type"` // "verdict" | "summary" | "snapshot"

	// Verdict fields.
	Specimen string `json:"specimen,omitempty"`
	Profile  string `json:"profile,omitempty"`
	Seed     int64  `json:"seed"`
	Category string `json:"category,omitempty"`
	CacheHit bool   `json:"cache_hit,omitempty"`
	Error    string `json:"error,omitempty"`

	// Progress at the time of the event.
	Completed int `json:"completed"`
	Total     int `json:"total"`

	// Summary payload (summary and snapshot events).
	Summary *Summary `json:"summary,omitempty"`
}

// Summary aggregates a campaign: the paper's corpus-sweep numbers in
// wire form.
type Summary struct {
	ID         string         `json:"id"`
	Tag        string         `json:"tag,omitempty"`
	State      string         `json:"state"`
	Total      int            `json:"total"`
	Completed  int            `json:"completed"`
	Errors     int            `json:"errors"`
	CacheHits  int            `json:"cache_hits"`
	Categories map[string]int `json:"categories,omitempty"`

	WallS        float64 `json:"wall_s"`
	VerdictsPerS float64 `json:"verdicts_per_s"`

	// ResumedFrom is the checkpointed completion watermark this campaign
	// was resumed from (0 for a fresh launch).
	ResumedFrom int `json:"resumed_from,omitempty"`
	// CheckpointErrors counts failed checkpoint writes — advisory, the
	// sweep itself is unaffected.
	CheckpointErrors int `json:"checkpoint_errors,omitempty"`
}

// eventRing is the default bound on each campaign's event memory. Large
// enough that any live SSE consumer (or a reconnect within the same
// sweep) resumes losslessly; a consumer further behind than this gets a
// snapshot event and continues from there.
const eventRing = 4096

// Campaign is one running or finished sweep. Everything above mu is
// immutable after construction; everything below it is guarded.
type Campaign struct {
	// ID addresses the campaign in /v1/campaign/{id}.
	ID string

	manifest    Manifest
	jobs        []jobSpec
	started     time.Time
	done        chan struct{}
	ring        int    // event ring capacity
	ckptName    string // durable checkpoint identity (tag or manifest hash)
	resumedFrom int    // checkpointed watermark at resume (0 = fresh)

	mu         sync.Mutex
	state      string
	completed  int
	errors     int
	cacheHits  int
	categories map[string]int
	wall       time.Duration
	events     []Event // ring: events[0].Seq is the oldest retained
	nextSeq    uint64
	subs       map[chan struct{}]bool
	lastCkpt   int // completed watermark at the last periodic checkpoint
	ckptErrors int
}

func newCampaign(id string, m Manifest, jobs []jobSpec, ring int) *Campaign {
	if ring <= 0 {
		ring = eventRing
	}
	return &Campaign{
		ID:         id,
		manifest:   m,
		jobs:       jobs,
		started:    time.Now(),
		done:       make(chan struct{}),
		ring:       ring,
		state:      StateRunning,
		categories: make(map[string]int),
		subs:       make(map[chan struct{}]bool),
	}
}

// Done returns a channel closed when the campaign reaches a terminal
// state.
func (c *Campaign) Done() <-chan struct{} { return c.done }

// Total returns the expanded job count.
func (c *Campaign) Total() int { return len(c.jobs) }

// Snapshot aggregates the campaign's current state.
func (c *Campaign) Snapshot() Summary {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.summaryLocked()
}

func (c *Campaign) summaryLocked() Summary {
	wall := c.wall
	if c.state == StateRunning {
		wall = time.Since(c.started)
	}
	cats := make(map[string]int, len(c.categories))
	for k, v := range c.categories {
		cats[k] = v
	}
	s := Summary{
		ID:               c.ID,
		Tag:              c.manifest.Tag,
		State:            c.state,
		Total:            len(c.jobs),
		Completed:        c.completed,
		Errors:           c.errors,
		CacheHits:        c.cacheHits,
		Categories:       cats,
		WallS:            wall.Seconds(),
		ResumedFrom:      c.resumedFrom,
		CheckpointErrors: c.ckptErrors,
	}
	if wall > 0 {
		s.VerdictsPerS = float64(c.completed) / wall.Seconds()
	}
	return s
}

// recordVerdict tallies one completed job and appends its event.
func (c *Campaign) recordVerdict(js jobSpec, category string, cacheHit bool, jobErr string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.completed++
	c.categories[category]++
	if cacheHit {
		c.cacheHits++
	}
	if jobErr != "" {
		c.errors++
	}
	c.appendLocked(Event{
		Type:     "verdict",
		Specimen: js.Specimen,
		Profile:  js.Profile,
		Seed:     js.Seed,
		Category: category,
		CacheHit: cacheHit,
		Error:    jobErr,
	})
}

// finish moves the campaign to a terminal state and appends the summary
// event — always the stream's last event.
func (c *Campaign) finish(state string) {
	c.mu.Lock()
	c.state = state
	c.wall = time.Since(c.started)
	summary := c.summaryLocked()
	c.appendLocked(Event{Type: "summary", Summary: &summary})
	c.mu.Unlock()
	close(c.done)
}

// appendLocked assigns the next sequence number, trims the ring, and
// wakes subscribers. Caller holds c.mu.
func (c *Campaign) appendLocked(ev Event) {
	c.nextSeq++
	ev.Seq = c.nextSeq
	ev.Completed = c.completed
	ev.Total = len(c.jobs)
	c.events = append(c.events, ev)
	if len(c.events) > c.ring {
		c.events = c.events[len(c.events)-c.ring:]
	}
	for ch := range c.subs { //maporder:ok — wakeup poke, every subscriber gets one, order is moot
		select {
		case ch <- struct{}{}:
		default:
		}
	}
}

// eventsSince returns retained events with Seq > after, plus the oldest
// retained sequence number (0 when the ring is empty) so callers can
// detect a resume gap.
func (c *Campaign) eventsSince(after uint64) (evs []Event, oldest uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.events) > 0 {
		oldest = c.events[0].Seq
	}
	for _, ev := range c.events {
		if ev.Seq > after {
			evs = append(evs, ev)
		}
	}
	return evs, oldest
}

// subscribe registers a wake channel signalled on every append.
func (c *Campaign) subscribe() chan struct{} {
	ch := make(chan struct{}, 1)
	c.mu.Lock()
	c.subs[ch] = true
	c.mu.Unlock()
	return ch
}

func (c *Campaign) unsubscribe(ch chan struct{}) {
	c.mu.Lock()
	delete(c.subs, ch)
	c.mu.Unlock()
}

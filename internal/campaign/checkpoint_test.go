package campaign

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"

	"scarecrow/internal/service"
	"scarecrow/internal/store"
)

func shutdownServer(t *testing.T, s *service.Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Errorf("Shutdown: %v", err)
	}
}

// memCheckpoints is an in-memory CheckpointStore that records write
// order, so tests can assert when checkpoints happen, not just that
// they do.
type memCheckpoints struct {
	mu     sync.Mutex
	recs   map[string][]byte
	writes []string // names in write order
	fail   bool
}

func newMemCheckpoints() *memCheckpoints {
	return &memCheckpoints{recs: make(map[string][]byte)}
}

func (m *memCheckpoints) PutCheckpoint(name string, val []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.fail {
		return fmt.Errorf("fake checkpoint store: injected failure")
	}
	m.recs[name] = append([]byte(nil), val...)
	m.writes = append(m.writes, name)
	return nil
}

func (m *memCheckpoints) GetCheckpoint(name string) ([]byte, bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	val, ok := m.recs[name]
	return val, ok, nil
}

func (m *memCheckpoints) Checkpoints() ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	names := make([]string, 0, len(m.recs))
	for name := range m.recs { // test fake; Resume sorts nothing on it
		names = append(names, name)
	}
	return names, nil
}

func (m *memCheckpoints) record(t *testing.T, name string) checkpointRecord {
	t.Helper()
	buf, ok, _ := m.GetCheckpoint(name)
	if !ok {
		t.Fatalf("no checkpoint named %q", name)
	}
	var rec checkpointRecord
	if err := json.Unmarshal(buf, &rec); err != nil {
		t.Fatalf("checkpoint %q undecodable: %v", name, err)
	}
	return rec
}

func (m *memCheckpoints) writeCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.writes)
}

func TestCellsManifestExpansion(t *testing.T) {
	pred := json.RawMessage(`{"op":"leaf","entry":"file:deepfreeze"}`)
	jobs, err := Manifest{Cells: []Cell{
		{Specimen: "kasidet", Profile: "p1", Seed: 7},
		{Predicate: pred, Seed: 3},
		{Specimen: "kasidet", Seed: 7}, // duplicates are the caller's business
	}}.expand(100)
	if err != nil {
		t.Fatalf("expand cells: %v", err)
	}
	if len(jobs) != 3 {
		t.Fatalf("expanded %d jobs, want 3", len(jobs))
	}
	if jobs[0].Specimen != "kasidet" || jobs[0].Profile != "p1" || jobs[0].Seed != 7 {
		t.Fatalf("cell 0 expanded to %+v", jobs[0])
	}
	if jobs[1].Predicate == nil || jobs[1].Specimen == "" || jobs[1].Specimen[:4] != "syn:" {
		t.Fatalf("predicate cell label = %q, want syn:<fp>", jobs[1].Specimen)
	}

	bad := []Manifest{
		{Cells: []Cell{{Specimen: "a", Seed: 1}}, Specimens: []string{"b"}},
		{Cells: []Cell{{Specimen: "a", Seed: 1}}, Seeds: []int64{2}},
		{Cells: []Cell{{Seed: 1}}},                                       // neither specimen nor predicate
		{Cells: []Cell{{Specimen: "a", Predicate: pred, Seed: 1}}},       // both
		{Cells: []Cell{{Predicate: json.RawMessage(`{"op":`), Seed: 1}}}, // malformed tree
	}
	for i, m := range bad {
		if _, err := m.expand(100); err == nil {
			t.Errorf("bad cells manifest %d expanded without error", i)
		}
	}
	if _, err := (Manifest{Cells: []Cell{{Specimen: "a", Seed: 1}, {Specimen: "b", Seed: 1}}}).expand(1); err == nil {
		t.Fatal("over-limit cells manifest expanded without error")
	}
}

// The engine writes a checkpoint at launch, periodically during the
// sweep, and a terminal "done" record before Done() closes.
func TestCheckpointLifecycle(t *testing.T) {
	s := startServer(t, service.Config{})
	cps := newMemCheckpoints()
	e := NewEngine(s, Options{Checkpoints: cps, CheckpointEvery: 1})
	c, err := e.Launch(Manifest{Specimens: []string{"kasidet"}, Seeds: []int64{1, 2, 3}, Tag: "sweep-a"})
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	// The launch record is durable before any cell completes.
	if rec := cps.record(t, "sweep-a"); rec.State != StateRunning || rec.Total != 3 {
		t.Fatalf("launch record = %+v", rec)
	}
	sum := waitCampaign(t, c)
	if sum.State != StateDone || sum.CheckpointErrors != 0 {
		t.Fatalf("summary = %+v", sum)
	}
	// Terminal record: done at full completion. Done() closing after the
	// final write is the ordering under test — no sleep needed.
	rec := cps.record(t, "sweep-a")
	if rec.State != StateDone || rec.Completed != 3 || rec.V != checkpointVersion {
		t.Fatalf("final record = %+v", rec)
	}
	if rec.Manifest.Tag != "sweep-a" || len(rec.Manifest.Specimens) != 1 {
		t.Fatalf("final record manifest = %+v", rec.Manifest)
	}
	// launch + up to 3 periodic (stride 1) + final.
	if n := cps.writeCount(); n < 3 || n > 5 {
		t.Fatalf("wrote %d checkpoints, want launch+periodic+final in [3,5]", n)
	}

	// A done record is not resumed.
	e2 := NewEngine(s, Options{Checkpoints: cps})
	resumed, err := e2.Resume()
	if err != nil || len(resumed) != 0 {
		t.Fatalf("Resume over done records = %v, %v", resumed, err)
	}
}

// Checkpoint write failures are advisory: the sweep completes and the
// failure count lands in the summary.
func TestCheckpointFailureIsAdvisory(t *testing.T) {
	s := startServer(t, service.Config{})
	cps := newMemCheckpoints()
	cps.fail = true
	e := NewEngine(s, Options{Checkpoints: cps, CheckpointEvery: 1})
	c, err := e.Launch(Manifest{Specimens: []string{"kasidet"}})
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	sum := waitCampaign(t, c)
	if sum.State != StateDone {
		t.Fatalf("state = %q, want done despite checkpoint failures", sum.State)
	}
	if sum.CheckpointErrors == 0 {
		t.Fatal("checkpoint failures not surfaced in summary")
	}
}

// A drain mid-campaign writes an aborted record; a fresh engine's
// Resume picks it up and completes the sweep.
func TestDrainWritesResumableCheckpoint(t *testing.T) {
	s := startServer(t, service.Config{})
	cps := newMemCheckpoints()
	fs := &flakySubmitter{inner: s, drainFrom: 2}
	e := NewEngine(fs, Options{Checkpoints: cps})
	m := Manifest{Specimens: []string{"kasidet"}, Seeds: []int64{1, 2, 3, 4, 5}, Tag: "drained"}
	c, err := e.Launch(m)
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	if sum := waitCampaign(t, c); sum.State != StateAborted || sum.Completed != 2 {
		t.Fatalf("aborted summary = %+v", sum)
	}
	rec := cps.record(t, "drained")
	if rec.State != StateAborted || rec.Completed != 2 || rec.Total != 5 {
		t.Fatalf("drain record = %+v", rec)
	}

	// "Restart": a new engine over the same checkpoint store and a
	// healthy submitter resumes and finishes the whole manifest.
	e2 := NewEngine(s, Options{Checkpoints: cps})
	resumed, err := e2.Resume()
	if err != nil {
		t.Fatalf("Resume: %v", err)
	}
	if len(resumed) != 1 {
		t.Fatalf("resumed %d campaigns, want 1", len(resumed))
	}
	sum := waitCampaign(t, resumed[0])
	if sum.State != StateDone || sum.Completed != 5 || sum.Total != 5 {
		t.Fatalf("resumed summary = %+v", sum)
	}
	if sum.ResumedFrom != 2 || sum.Tag != "drained" {
		t.Fatalf("resume provenance missing: %+v", sum)
	}
	// The terminal record is now done: a third start resumes nothing.
	if rec := cps.record(t, "drained"); rec.State != StateDone || rec.Completed != 5 {
		t.Fatalf("post-resume record = %+v", rec)
	}
}

// Resume skips corrupt records but still resumes the healthy ones, and
// reports the first decode error.
func TestResumeSkipsCorruptRecord(t *testing.T) {
	s := startServer(t, service.Config{})
	cps := newMemCheckpoints()
	cps.recs["broken"] = []byte("not json")
	rec, _ := json.Marshal(checkpointRecord{
		V: checkpointVersion, State: StateAborted, Completed: 0, Total: 1,
		Manifest: Manifest{Specimens: []string{"kasidet"}, Tag: "ok"},
	})
	cps.recs["ok"] = rec

	e := NewEngine(s, Options{Checkpoints: cps})
	resumed, err := e.Resume()
	if err == nil {
		t.Fatal("Resume swallowed the corrupt record")
	}
	if len(resumed) != 1 {
		t.Fatalf("resumed %d campaigns, want the healthy 1", len(resumed))
	}
	if sum := waitCampaign(t, resumed[0]); sum.State != StateDone {
		t.Fatalf("healthy resume did not complete: %+v", sum)
	}
}

// End to end over the real store: a sweep aborted at 2/5 resumes on a
// fresh service sharing the WAL; the two committed cells replay as
// cache hits and only the lost three run in the lab.
func TestResumeReplaysFromStore(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{NoBackground: true})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}

	s1 := service.NewServer(service.Config{Workers: 2, QueueDepth: 16, CacheSize: 64, Store: st})
	s1.Start()
	fs := &flakySubmitter{inner: s1, drainFrom: 2}
	e1 := NewEngine(fs, Options{Checkpoints: st})
	m := Manifest{Specimens: []string{"kasidet"}, Seeds: []int64{1, 2, 3, 4, 5}}
	c1, err := e1.Launch(m)
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	if sum := waitCampaign(t, c1); sum.State != StateAborted || sum.Completed != 2 {
		t.Fatalf("aborted summary = %+v", sum)
	}
	shutdownServer(t, s1)
	if err := st.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// "Restart": reopen the WAL, fresh service and engine over it.
	st2, err := store.Open(dir, store.Options{NoBackground: true})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer st2.Close()
	s2 := service.NewServer(service.Config{Workers: 2, QueueDepth: 16, CacheSize: 64, Store: st2})
	s2.Start()
	defer shutdownServer(t, s2)
	e2 := NewEngine(s2, Options{Checkpoints: st2})
	resumed, err := e2.Resume()
	if err != nil || len(resumed) != 1 {
		t.Fatalf("Resume = %v, %v; want 1 campaign", resumed, err)
	}
	sum := waitCampaign(t, resumed[0])
	if sum.State != StateDone || sum.Completed != 5 {
		t.Fatalf("resumed summary = %+v", sum)
	}
	// The two cells committed before the crash came back from the WAL.
	if sum.CacheHits != 2 {
		t.Fatalf("cache hits = %d, want exactly the 2 committed cells", sum.CacheHits)
	}
	if sum.ResumedFrom != 2 {
		t.Fatalf("resumed_from = %d, want 2", sum.ResumedFrom)
	}
}

// Untagged manifests checkpoint under a content hash that is stable
// across engines (restarts), and distinct manifests get distinct names.
func TestCheckpointNameStability(t *testing.T) {
	a := Manifest{Specimens: []string{"kasidet"}, Seeds: []int64{1, 2}}
	b := Manifest{Specimens: []string{"kasidet"}, Seeds: []int64{1, 2}}
	c := Manifest{Specimens: []string{"kasidet"}, Seeds: []int64{1, 3}}
	if a.checkpointName() != b.checkpointName() {
		t.Fatal("identical manifests hash to different checkpoint names")
	}
	if a.checkpointName() == c.checkpointName() {
		t.Fatal("distinct manifests collide")
	}
	if got := (Manifest{Tag: "x", Specimens: []string{"a"}}).checkpointName(); got != "x" {
		t.Fatalf("tagged manifest checkpoints under %q, want its tag", got)
	}
}

// Drain waits for every campaign's terminal state (and therefore its
// final checkpoint) and honors context cancellation.
func TestEngineDrain(t *testing.T) {
	s := startServer(t, service.Config{})
	cps := newMemCheckpoints()
	e := NewEngine(s, Options{Checkpoints: cps})
	c, err := e.Launch(Manifest{Specimens: []string{"kasidet"}, Seeds: []int64{1, 2}, Tag: "drainme"})
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := e.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	select {
	case <-c.Done():
	default:
		t.Fatal("Drain returned before the campaign finished")
	}
	if rec := cps.record(t, "drainme"); rec.State != StateDone {
		t.Fatalf("record after drain = %+v, want done", rec)
	}
}

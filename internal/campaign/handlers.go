package campaign

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
)

// launchResponse is the body of POST /v1/campaign.
type launchResponse struct {
	ID    string `json:"id"`
	Total int    `json:"total"`
	// Result and Events point at the snapshot and stream endpoints.
	Result string `json:"result"`
	Events string `json:"events"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// Register mounts the campaign API on a mux, alongside (not inside) the
// verdict service's handler:
//
//	POST /v1/campaign             — launch a batch sweep from a manifest
//	GET  /v1/campaign             — list campaign summaries
//	GET  /v1/campaign/{id}        — one campaign's summary snapshot
//	GET  /v1/campaign/{id}/events — SSE verdict stream with resume
func (e *Engine) Register(mux *http.ServeMux) {
	mux.HandleFunc("POST /v1/campaign", e.handleLaunch)
	mux.HandleFunc("GET /v1/campaign", e.handleList)
	mux.HandleFunc("GET /v1/campaign/{id}", e.handleSnapshot)
	mux.HandleFunc("GET /v1/campaign/{id}/events", e.handleEvents)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func (e *Engine) handleLaunch(w http.ResponseWriter, r *http.Request) {
	var m Manifest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&m); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("decoding manifest: %v", err)})
		return
	}
	c, err := e.Launch(m)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusCreated, launchResponse{
		ID:     c.ID,
		Total:  c.Total(),
		Result: "/v1/campaign/" + c.ID,
		Events: "/v1/campaign/" + c.ID + "/events",
	})
}

func (e *Engine) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, e.List())
}

func (e *Engine) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	c, ok := e.Lookup(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: fmt.Sprintf("unknown campaign %q", r.PathValue("id"))})
		return
	}
	writeJSON(w, http.StatusOK, c.Snapshot())
}

// resumeSeq reads the client's resume position: the standard
// Last-Event-ID header (set automatically by EventSource reconnects) or
// an explicit ?after= for plain HTTP clients. Zero means "from the
// start".
func resumeSeq(r *http.Request) uint64 {
	raw := r.Header.Get("Last-Event-ID")
	if q := r.URL.Query().Get("after"); q != "" {
		raw = q
	}
	if raw == "" {
		return 0
	}
	n, err := strconv.ParseUint(raw, 10, 64)
	if err != nil {
		return 0
	}
	return n
}

// handleEvents streams a campaign as Server-Sent Events: one verdict
// event per completed job, a terminal summary event, then EOF. Resume
// is lossless while the requested position is still in the event ring;
// a client further behind gets a snapshot event carrying the current
// aggregate and continues live from there.
func (e *Engine) handleEvents(w http.ResponseWriter, r *http.Request) {
	c, ok := e.Lookup(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: fmt.Sprintf("unknown campaign %q", r.PathValue("id"))})
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: "response writer cannot stream"})
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	last := resumeSeq(r)
	sub := c.subscribe()
	defer c.unsubscribe(sub)
	for {
		evs, oldest := c.eventsSince(last)
		if oldest > 0 && last+1 < oldest {
			// The ring dropped events between the resume position and the
			// oldest retained one: re-sync with an aggregate snapshot so
			// the client's tallies stay correct, then continue live.
			snap := c.Snapshot()
			gap := Event{
				Seq:       oldest - 1,
				Type:      "snapshot",
				Completed: snap.Completed,
				Total:     snap.Total,
				Summary:   &snap,
			}
			if err := writeEvent(w, gap); err != nil {
				return
			}
			last = gap.Seq
		}
		terminal := false
		for _, ev := range evs {
			if err := writeEvent(w, ev); err != nil {
				return
			}
			last = ev.Seq
			if ev.Type == "summary" {
				terminal = true
			}
		}
		fl.Flush()
		if terminal {
			return
		}
		select {
		case <-sub:
		case <-r.Context().Done():
			return
		}
	}
}

// writeEvent renders one SSE frame. The JSON payload is a single line,
// so one data: field suffices.
func writeEvent(w io.Writer, ev Event) error {
	data, err := json.Marshal(ev)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, data)
	return err
}

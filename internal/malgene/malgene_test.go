package malgene

import (
	"testing"
	"time"

	"scarecrow/internal/core"
	"scarecrow/internal/evasion"
	"scarecrow/internal/malware"
	"scarecrow/internal/trace"
	"scarecrow/internal/winapi"
	"scarecrow/internal/winsim"
)

// novelSample evades on a registry key the stock deception database does
// not know, so Scarecrow initially fails to deactivate it.
func novelSample() *malware.Specimen {
	const novelKey = `HKLM\SOFTWARE\VxStream\AnalysisAgent`
	return &malware.Specimen{
		ID: "novel01", Family: "test", Source: malware.SourceMalGene,
		Image:   malware.ImagePath("novel01"),
		Checks:  []evasion.Check{evasion.NtRegistryKey("ntreg:vxstream", novelKey)},
		React:   malware.ReactTerminate(),
		Payload: malware.PayloadDropper("payload.exe"),
	}
}

// runOn executes the sample on a machine, optionally making the probed key
// genuinely present (the "other environment" MalGene compares against).
func runOn(m *winsim.Machine, s *malware.Specimen, plantKey bool) []trace.Event {
	if plantKey {
		if _, err := m.Registry.CreateKey(`HKLM\SOFTWARE\VxStream\AnalysisAgent`); err != nil {
			panic(err)
		}
	}
	sys := winapi.NewSystem(m)
	s.Register(sys)
	m.FS.Touch(s.Image, 64<<10)
	root := sys.Launch(s.Image, s.ID, nil)
	sys.Run(time.Minute)
	return m.Tracer.Filter(func(e trace.Event) bool { return e.PID >= root.PID })
}

func TestAlignIdenticalTraces(t *testing.T) {
	s := novelSample()
	a := runOn(winsim.NewBareMetalSandbox(1), s, false)
	b := runOn(winsim.NewBareMetalSandbox(2), s, false)
	if _, ok := ExtractSignature(a, b); ok {
		t.Error("identical behaviours yielded a signature")
	}
}

func TestExtractSignatureFindsNovelResource(t *testing.T) {
	s := novelSample()
	// Environment A: the VxStream-like sandbox (key present) — evaded.
	evaded := runOn(winsim.NewBareMetalSandbox(1), s, true)
	// Environment B: clean machine — malicious activity exposed.
	exposed := runOn(winsim.NewBareMetalSandbox(1), s, false)

	sig, ok := ExtractSignature(evaded, exposed)
	if !ok {
		t.Fatal("no signature extracted")
	}
	if sig.Kind != trace.KindRegOpenKey {
		t.Errorf("signature kind = %v", sig.Kind)
	}
	if got := sig.Resource; got != `HKLM\SOFTWARE\VxStream\AnalysisAgent` {
		t.Errorf("signature resource = %q", got)
	}
	if !sig.EvadedOutcome {
		t.Error("probe should have succeeded in the evaded environment")
	}
	if sig.String() == "" {
		t.Error("empty rendering")
	}
}

// TestContinuousLearningPipeline is the §II-C loop end to end: Scarecrow
// misses a novel sample, MalGene's comparison surfaces the evasion
// signature, the database learns it, and the sample is deactivated on the
// next encounter.
func TestContinuousLearningPipeline(t *testing.T) {
	s := novelSample()

	runProtected := func(db *core.DB) trace.Summary {
		m := winsim.NewEndUserMachine(5)
		sys := winapi.NewSystem(m)
		s.Register(sys)
		m.FS.Touch(s.Image, 64<<10)
		ctrl, err := core.Deploy(sys, core.NewEngine(db, core.RecommendedConfig(m.Profile)))
		if err != nil {
			t.Fatal(err)
		}
		root, err := ctrl.LaunchTarget(s.Image, s.ID)
		if err != nil {
			t.Fatal(err)
		}
		sys.Run(time.Minute)
		return trace.Summarize(m.Tracer.Filter(func(e trace.Event) bool {
			return e.PID >= root.PID
		}))
	}

	// Stock database: the novel key is unknown, the probe fails, the
	// payload runs — Scarecrow misses.
	stock := core.NewDB()
	if sum := runProtected(stock); len(sum.FilesWritten) == 0 {
		t.Fatal("sample should act under the stock database")
	}

	// Learn from a MalGene trace pair.
	evaded := runOn(winsim.NewBareMetalSandbox(1), s, true)
	exposed := runOn(winsim.NewBareMetalSandbox(1), s, false)
	sig, ok := ExtractSignature(evaded, exposed)
	if !ok {
		t.Fatal("no signature")
	}
	learned := core.NewDB()
	if !sig.ExtendDB(learned) {
		t.Fatal("signature not foldable into the database")
	}

	// Extended database: the probe is deceived, the sample deactivates.
	if sum := runProtected(learned); len(sum.FilesWritten) != 0 {
		t.Error("sample still acts after learning the signature")
	}
}

func TestAlignDivergencePosition(t *testing.T) {
	mk := func(targets ...string) []trace.Event {
		var out []trace.Event
		for _, tg := range targets {
			out = append(out, trace.Event{Kind: trace.KindFileQuery, Target: tg, Success: true})
		}
		return out
	}
	a := mk("x", "y", "z", "q")
	b := mk("x", "y", "w", "q")
	ai, bi := Align(a, b)
	if ai != 2 || bi != 2 {
		t.Errorf("divergence = %d,%d, want 2,2", ai, bi)
	}
	// Prefix-aligned sequences diverge at the shorter's end.
	ai, bi = Align(mk("x"), mk("x", "y"))
	if ai != 1 || bi != 1 {
		t.Errorf("prefix divergence = %d,%d", ai, bi)
	}
}

func TestSignatureExtendDBKinds(t *testing.T) {
	db := core.NewDB()
	if (Signature{Kind: trace.KindAPICall, Resource: "IsDebuggerPresent"}).ExtendDB(db) {
		t.Error("API probes need no resource extension")
	}
	if !(Signature{Kind: trace.KindFileQuery, Resource: `C:\vxstream\agent.dll`}).ExtendDB(db) {
		t.Error("file signature rejected")
	}
	if _, ok := db.MatchFile(`C:\vxstream\agent.dll`); !ok {
		t.Error("file signature not learned")
	}
}

// Package malgene reimplements the evasion-signature extraction pipeline
// of MalGene (Kirat & Vigna, CCS 2015) that §II-C proposes as Scarecrow's
// continuous source of new deceptive resources: given two kernel traces of
// the same sample — one from an environment it evaded, one from an
// environment where it exposed malicious activity — align the traces,
// locate the first behavioural divergence, and report the last
// environment-query event before it. That query is the evasion signature;
// its resource extends the deception database.
//
// The paper notes MalGene's caveat, which this implementation preserves:
// only the FIRST diverging resource is reported per trace pair, so samples
// combining several evasive techniques yield one signature at a time.
package malgene

import (
	"fmt"
	"strings"

	"scarecrow/internal/core"
	"scarecrow/internal/trace"
)

// maxAlign caps the alignment window; kernel traces of respawning samples
// run to hundreds of thousands of events while divergence is always near
// the front.
const maxAlign = 4096

// Signature is one extracted evasion signature.
type Signature struct {
	// Kind is the query event class (RegOpenKey, FileQuery, APICall, ...).
	Kind trace.Kind
	// Resource is the probed object (key path, file path, API name).
	Resource string
	// EvadedOutcome records whether the probe succeeded in the evaded
	// environment.
	EvadedOutcome bool
	// DivergeIndex is the position in the evaded trace where behaviour
	// split.
	DivergeIndex int
}

// String renders the signature.
func (s Signature) String() string {
	return fmt.Sprintf("%s(%s) succeeded=%v @%d", s.Kind, s.Resource, s.EvadedOutcome, s.DivergeIndex)
}

// eventKey canonicalizes an event for alignment: the kind plus target,
// ignoring PIDs and timestamps (machines differ across environments).
func eventKey(e trace.Event) string {
	return e.Kind.String() + "|" + strings.ToLower(e.Target)
}

// Align computes the longest common subsequence alignment of two event
// sequences and returns, for each sequence, the index of the first event
// not part of the common alignment (len(...) when the sequences never
// diverge).
func Align(a, b []trace.Event) (int, int) {
	if len(a) > maxAlign {
		a = a[:maxAlign]
	}
	if len(b) > maxAlign {
		b = b[:maxAlign]
	}
	n, m := len(a), len(b)
	// dp[i][j] = LCS length of a[i:], b[j:].
	dp := make([][]int32, n+1)
	for i := range dp {
		dp[i] = make([]int32, m+1)
	}
	for i := n - 1; i >= 0; i-- {
		ka := eventKey(a[i])
		for j := m - 1; j >= 0; j-- {
			if ka == eventKey(b[j]) {
				dp[i][j] = dp[i+1][j+1] + 1
			} else if dp[i+1][j] >= dp[i][j+1] {
				dp[i][j] = dp[i+1][j]
			} else {
				dp[i][j] = dp[i][j+1]
			}
		}
	}
	// Walk the alignment; the first skip is the divergence point.
	i, j := 0, 0
	for i < n && j < m {
		if eventKey(a[i]) == eventKey(b[j]) {
			i, j = i+1, j+1
			continue
		}
		return i, j
	}
	return i, j
}

// queryKinds are the environment-probe event classes a signature can name.
var queryKinds = map[trace.Kind]bool{
	trace.KindRegOpenKey:    true,
	trace.KindRegQueryValue: true,
	trace.KindRegEnumKey:    true,
	trace.KindFileQuery:     true,
	trace.KindWindowQuery:   true,
	trace.KindDNSQuery:      true,
	trace.KindAPICall:       true,
	trace.KindImageLoad:     true,
}

// apiProbes are APICall targets that constitute environment probes (as
// opposed to utility calls every program makes).
var apiProbes = map[string]bool{
	"IsDebuggerPresent": true, "CheckRemoteDebuggerPresent": true,
	"GetTickCount": true, "GlobalMemoryStatusEx": true,
	"GetSystemInfo": true, "GetDiskFreeSpaceEx": true,
	"GetModuleHandle": true, "GetProcAddress": true,
	"GetAdaptersInfo": true, "NtQuerySystemInformation": true,
	"GetUserName": true, "GetComputerName": true, "GetCursorPos": true,
	"GetModuleFileName": true,
}

// ExtractSignature aligns the evaded and exposed traces of one sample and
// returns the evasion signature: the last environment query in the evaded
// trace at or before the divergence point.
func ExtractSignature(evaded, exposed []trace.Event) (Signature, bool) {
	di, _ := Align(evaded, exposed)
	if di >= len(evaded) && di >= len(exposed) {
		return Signature{}, false // traces identical: nothing diverged
	}
	if di > len(evaded) {
		di = len(evaded)
	}
	for i := min(di, len(evaded)-1); i >= 0; i-- {
		e := evaded[i]
		if !queryKinds[e.Kind] {
			continue
		}
		if e.Kind == trace.KindAPICall && !apiProbes[e.Target] {
			continue
		}
		return Signature{
			Kind:          e.Kind,
			Resource:      e.Target,
			EvadedOutcome: e.Success,
			DivergeIndex:  di,
		}, true
	}
	return Signature{}, false
}

// ExtendDB folds a signature into a deception database, returning false
// when the signature names a probe class the database cannot express
// (timing or pure API probes need no new resource: the hooks already cover
// them).
func (s Signature) ExtendDB(db *core.DB) bool {
	switch s.Kind {
	case trace.KindRegOpenKey, trace.KindRegQueryValue, trace.KindRegEnumKey:
		db.AddRegKey(s.Resource, core.VendorCuckoo)
		return true
	case trace.KindFileQuery:
		db.AddFile(s.Resource, core.VendorCuckoo)
		return true
	case trace.KindImageLoad:
		db.AddFile(s.Resource, core.VendorCuckoo)
		return true
	default:
		return false
	}
}

package analysis

import (
	"sort"
	"strings"
	"testing"

	"scarecrow/internal/malware"
)

// TestCoverageKeysFromRealRun drives a registry-probing specimen through
// the lab and asserts the coverage set carries all three key classes —
// api: from the trace summary, hook: and db: from the trigger stream —
// sorted and duplicate-free.
func TestCoverageKeysFromRealRun(t *testing.T) {
	lab := NewLab(0)
	var spec *malware.Specimen
	for _, s := range malware.JoeSecuritySamples() {
		if len(s.Checks) > 0 {
			spec = s
			break
		}
	}
	if spec == nil {
		t.Fatal("no checked specimen in corpus")
	}
	res := lab.RunSample(spec, 1)
	if res.Err != nil {
		t.Fatalf("run: %v", res.Err)
	}
	keys := res.CoverageKeys()
	if len(keys) == 0 {
		t.Fatal("no coverage keys from a real run")
	}
	if !sort.StringsAreSorted(keys) {
		t.Errorf("coverage keys not sorted: %v", keys)
	}
	seen := map[string]bool{}
	classes := map[string]bool{}
	for _, k := range keys {
		if seen[k] {
			t.Errorf("duplicate coverage key %q", k)
		}
		seen[k] = true
		switch {
		case strings.HasPrefix(k, CovAPI):
			classes[CovAPI] = true
		case strings.HasPrefix(k, CovHook):
			classes[CovHook] = true
		case strings.HasPrefix(k, CovDB):
			classes[CovDB] = true
		default:
			t.Errorf("coverage key %q has unknown prefix", k)
		}
	}
	if !classes[CovAPI] {
		t.Error("no api: coverage keys — trace summary not reflected")
	}
	if res.Verdict.Category == VerdictDeactivated && !classes[CovHook] {
		t.Error("deactivated run produced no hook: coverage keys")
	}
}

// TestCoverageKeysDeterministic runs the same specimen at the same seed
// twice and expects identical coverage sets.
func TestCoverageKeysDeterministic(t *testing.T) {
	lab := NewLab(0)
	spec := malware.JoeSecuritySamples()[0]
	a := lab.RunSampleSeeded(spec, 7).CoverageKeys()
	b := lab.RunSampleSeeded(spec, 7).CoverageKeys()
	if len(a) != len(b) {
		t.Fatalf("coverage cardinality unstable: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("coverage key %d unstable: %q vs %q", i, a[i], b[i])
		}
	}
}

// TestCoverageKeysErrorResult: error results contribute no coverage.
func TestCoverageKeysErrorResult(t *testing.T) {
	res := SampleResult{Err: errSentinel}
	if keys := res.CoverageKeys(); keys != nil {
		t.Fatalf("error result produced coverage %v", keys)
	}
}

var errSentinel = &coverageTestError{}

type coverageTestError struct{}

func (*coverageTestError) Error() string { return "sentinel" }

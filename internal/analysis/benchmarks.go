package analysis

import (
	"fmt"
	"strings"
	"time"

	"scarecrow/internal/benign"
	"scarecrow/internal/core"
	"scarecrow/internal/malware"
	"scarecrow/internal/trace"
	"scarecrow/internal/winapi"
	"scarecrow/internal/winsim"
)

// BenignRow is one program's outcome in the §IV-C benign-impact
// evaluation.
type BenignRow struct {
	Program      string
	RawOK        bool
	ProtectedOK  bool
	DiffEmpty    bool
	RawMutations int
}

// BenignReport is the full benign-software evaluation.
type BenignReport struct {
	Rows []BenignRow
}

// AllUnaffected reports whether every program installed and operated
// identically with and without Scarecrow.
func (r BenignReport) AllUnaffected() bool {
	for _, row := range r.Rows {
		if !row.RawOK || !row.ProtectedOK || !row.DiffEmpty {
			return false
		}
	}
	return true
}

// String renders the report.
func (r BenignReport) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-24s %-8s %-12s %-10s %s\n", "program", "raw-ok", "protected-ok", "identical", "mutations")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%-24s %-8v %-12v %-10v %d\n",
			row.Program, row.RawOK, row.ProtectedOK, row.DiffEmpty, row.RawMutations)
	}
	fmt.Fprintf(&sb, "all unaffected: %v\n", r.AllUnaffected())
	return sb.String()
}

// RunBenign evaluates the top-20 CNET programs with and without Scarecrow
// on end-user machines.
func RunBenign(seed int64) (BenignReport, error) {
	report := BenignReport{}
	for _, p := range benign.Top20() {
		rawOK, rawSum, err := runBenignProgram(p, seed, false)
		if err != nil {
			return BenignReport{}, err
		}
		protOK, protSum, err := runBenignProgram(p, seed, true)
		if err != nil {
			return BenignReport{}, err
		}
		suppressed := trace.Compare(rawSum, protSum)
		extra := trace.Compare(protSum, rawSum)
		report.Rows = append(report.Rows, BenignRow{
			Program:      p.Name,
			RawOK:        rawOK,
			ProtectedOK:  protOK,
			DiffEmpty:    suppressed.Empty() && extra.Empty(),
			RawMutations: rawSum.Mutations(),
		})
	}
	return report, nil
}

func runBenignProgram(p benign.Program, seed int64, protected bool) (bool, trace.Summary, error) {
	m := winsim.NewEndUserMachine(seed)
	benign.ProvisionDomains(m, []benign.Program{p})
	sys := winapi.NewSystem(m)
	ok := false
	sys.RegisterProgram(p.InstallerImage, func(ctx *winapi.Context) int {
		ok = p.Run(ctx)
		return winapi.ExitOK
	})
	m.FS.Touch(p.InstallerImage, 40<<20)
	var rootPID int
	if protected {
		ctrl, err := core.Deploy(sys, core.NewEngine(core.NewDB(), core.RecommendedConfig(m.Profile)))
		if err != nil {
			return false, trace.Summary{}, fmt.Errorf("analysis: deploying scarecrow for %s: %w", p.Name, err)
		}
		root, err := ctrl.LaunchTarget(p.InstallerImage, p.Name)
		if err != nil {
			return false, trace.Summary{}, fmt.Errorf("analysis: launching %s: %w", p.Name, err)
		}
		rootPID = root.PID
	} else {
		shell, err := agentProcess(m)
		if err != nil {
			return false, trace.Summary{}, err
		}
		rootPID = sys.Launch(p.InstallerImage, p.Name, shell).PID
	}
	sys.Run(ObservationWindow)
	return ok, subtreeSummary(m, rootPID), nil
}

// CaseStudyReport is the Case I / Case II outcome for one case-study
// sample run on end-user machines.
type CaseStudyReport struct {
	Sample   string
	Raw      Execution
	Verdict  Verdict
	Triggers []core.TriggerReport
}

// String renders the case study.
func (r CaseStudyReport) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "case %s: deactivated=%v\n", r.Sample, r.Verdict.Deactivated)
	fmt.Fprintf(&sb, "  without scarecrow: %d mutations\n", r.Verdict.RawMutations)
	fmt.Fprintf(&sb, "  with scarecrow:    %d mutations\n", r.Verdict.ProtectedMutations)
	if len(r.Triggers) > 0 {
		fmt.Fprintf(&sb, "  first trigger: %s\n", r.Triggers[0])
	}
	return sb.String()
}

// RunCaseStudy executes a case-study specimen on end-user machines (the
// deployment target of Section V) with and without Scarecrow.
func RunCaseStudy(s *malware.Specimen, seed int64) (CaseStudyReport, error) {
	lab := &Lab{
		Profile: winsim.ProfileEndUser,
		Seed:    seed,
		Config:  core.RecommendedConfig(string(winsim.ProfileEndUser)),
	}
	res := lab.RunSample(s, 1)
	if res.Err != nil {
		return CaseStudyReport{}, res.Err
	}
	return CaseStudyReport{
		Sample:   s.ID + " (" + s.Family + ")",
		Raw:      res.Raw,
		Verdict:  res.Verdict,
		Triggers: res.Protected.Triggers,
	}, nil
}

// HookOverhead measures the virtual-time cost of one hooked versus one
// unhooked API call — the §III "negligible performance overhead" claim,
// quantified in the modeled cost domain.
func HookOverhead() (unhooked, hooked time.Duration, err error) {
	m := winsim.NewEndUserMachine(1)
	sys := winapi.NewSystem(m)
	p := sys.Launch(`C:\bench.exe`, "", nil)
	ctx := sys.Context(p)
	start := m.Clock.Now()
	_ = ctx.RegOpenKeyEx(`HKLM\SOFTWARE\Microsoft\Windows NT\CurrentVersion`)
	unhooked = m.Clock.Now() - start

	ctrl, err := core.Deploy(sys, core.NewEngine(core.NewDB(), core.DefaultConfig()))
	if err != nil {
		return 0, 0, fmt.Errorf("analysis: deploying scarecrow: %w", err)
	}
	if err := ctrl.Watch(p); err != nil {
		return 0, 0, fmt.Errorf("analysis: hooking bench process: %w", err)
	}
	start = m.Clock.Now()
	_ = ctx.RegOpenKeyEx(`HKLM\SOFTWARE\Microsoft\Windows NT\CurrentVersion`)
	hooked = m.Clock.Now() - start
	return unhooked, hooked, nil
}

package analysis

import (
	"fmt"
	"sort"
	"strings"

	"scarecrow/internal/core"
	"scarecrow/internal/malgene"
	"scarecrow/internal/malware"
	"scarecrow/internal/trace"
	"scarecrow/internal/winapi"
	"scarecrow/internal/winsim"
)

// SignatureSurvey is the §II-C learning pipeline run at corpus scale:
// every sample that behaves differently between the clean reference and an
// analysis rig contributes one MalGene evasion signature.
type SignatureSurvey struct {
	Samples int
	// Extracted counts samples that yielded a signature.
	Extracted int
	// ByKind histograms the signature event kinds.
	ByKind map[string]int
	// ByAPI histograms APICall signatures by probed API.
	ByAPI map[string]int
	// Learned counts signatures that fold into the deception database as
	// new resources (API-probe signatures need no new resource — the
	// hooks already cover those APIs).
	Learned int
}

// String renders the survey.
func (s SignatureSurvey) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "signature survey: %d samples, %d signatures extracted, %d fold into the resource DB\n",
		s.Samples, s.Extracted, s.Learned)
	kinds := make([]string, 0, len(s.ByKind))
	for k := range s.ByKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		fmt.Fprintf(&sb, "  %-16s %d\n", k, s.ByKind[k])
	}
	apis := make([]string, 0, len(s.ByAPI))
	for a := range s.ByAPI {
		apis = append(apis, a)
	}
	sort.Strings(apis)
	for _, a := range apis {
		fmt.Fprintf(&sb, "  api probe: %-28s %d\n", a, s.ByAPI[a])
	}
	return sb.String()
}

// SurveySignatures runs each sample on the clean reference and on the
// analysis rigs, aligns every diverging trace pair, and aggregates the
// extracted evasion signatures — reproducing how the paper proposes to
// keep the deception database current.
func SurveySignatures(samples []*malware.Specimen, seed int64) (SignatureSurvey, error) {
	survey := SignatureSurvey{
		Samples: len(samples),
		ByKind:  make(map[string]int),
		ByAPI:   make(map[string]int),
	}
	db := core.NewDB()
	for i, s := range samples {
		exposed, err := rawEvents(nil, s, seed+int64(i))
		if err != nil {
			return SignatureSurvey{}, err
		}
		var sig malgene.Signature
		found := false
		for _, r := range analysisRigs() {
			evaded, err := rawEvents(r.prepare, s, seed+int64(i))
			if err != nil {
				return SignatureSurvey{}, err
			}
			if got, ok := malgene.ExtractSignature(evaded, exposed); ok {
				sig, found = got, true
				break
			}
		}
		if !found {
			continue
		}
		survey.Extracted++
		survey.ByKind[sig.Kind.String()]++
		if sig.Kind == trace.KindAPICall {
			survey.ByAPI[sig.Resource]++
		}
		if sig.ExtendDB(db) {
			survey.Learned++
		}
	}
	return survey, nil
}

// rawEvents runs a sample without Scarecrow and returns its subtree's raw
// event stream (for trace alignment, which needs events rather than
// summaries). Attribution walks parent links, like subtreeSummary: a PID
// threshold would misattribute events of unrelated processes created after
// the sample.
func rawEvents(prepare func(*winsim.Machine, *winsim.Process), s *malware.Specimen, seed int64) ([]trace.Event, error) {
	var m *winsim.Machine
	if prepare == nil {
		m = winsim.NewCleanBareMetal(seed)
	} else {
		m = winsim.NewCuckooSandbox(seed, false)
	}
	sys := winapi.NewSystem(m)
	s.Register(sys)
	m.FS.Touch(s.Image, 180<<10)
	parent, err := agentProcess(m)
	if err != nil {
		return nil, err
	}
	root := sys.Launch(s.Image, s.ID, parent)
	if prepare != nil {
		prepare(m, root)
	}
	sys.Run(ObservationWindow)
	desc := subtreeDescendants(m, root.PID)
	return m.Tracer.Filter(func(e trace.Event) bool { return desc[e.PID] }), nil
}

package analysis

import "sort"

// Coverage key prefixes. The synthesis fuzzer's feedback signal is the
// set of these keys a run produced: which APIs the specimen exercised,
// which hooks Scarecrow consulted, and which deception-DB entries
// matched. A generation that lights up a key no earlier generation did
// is "interesting" and seeds further mutation.
const (
	// CovAPI prefixes API names invoked during the protected run
	// ("api:GetTickCount").
	CovAPI = "api:"
	// CovHook prefixes hook trigger APIs — the deceptions that actually
	// fired ("hook:RegOpenKeyEx").
	CovHook = "hook:"
	// CovDB prefixes matched deception-DB entries as category/resource
	// ("db:registry/hklm\software\...").
	CovDB = "db:"
)

// CoverageKeys flattens a sample result into the sorted, deduplicated
// set of coverage keys the synthesis fuzzer feeds back into mutation
// biasing. Error results yield nil. The order is lexicographic —
// deterministic regardless of map iteration — so fingerprinting a
// coverage set is stable across runs (ISSUE 8 satellite 4).
func (r SampleResult) CoverageKeys() []string {
	if r.Err != nil {
		return nil
	}
	set := make(map[string]struct{}, len(r.Protected.Summary.APICalls)+2*len(r.Protected.Triggers))
	for api := range r.Protected.Summary.APICalls {
		set[CovAPI+api] = struct{}{}
	}
	for api := range r.Raw.Summary.APICalls {
		set[CovAPI+api] = struct{}{}
	}
	for _, trig := range r.Protected.Triggers {
		set[CovHook+trig.API] = struct{}{}
		if trig.Resource != "" {
			set[CovDB+string(trig.Category)+"/"+trig.Resource] = struct{}{}
		}
	}
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

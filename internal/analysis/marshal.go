package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"scarecrow/internal/core"
	"scarecrow/internal/trace"
)

// VerdictDoc is the wire form of one SampleResult: everything a verdict
// consumer needs, flattened into JSON-stable fields. Serialization is
// deterministic — map keys are sorted by encoding/json, trace.Diff lists
// are pre-sorted, and triggers keep virtual-time order — so the same
// (specimen, profile, seed) always marshals to the same bytes. scarecrowd
// caches and coalesces on exactly that property.
type VerdictDoc struct {
	// Specimen identity.
	Specimen string `json:"specimen"`
	Family   string `json:"family,omitempty"`
	Source   string `json:"source,omitempty"`

	// The §IV-C decision.
	Category    string `json:"category"`
	Deactivated bool   `json:"deactivated"`
	SpawnLoop   bool   `json:"spawn_loop,omitempty"`
	// FirstTrigger is the Table I trigger column ("IsDebuggerPresent()",
	// "Hook detection", "N/A").
	FirstTrigger string `json:"first_trigger"`

	// Human-readable behaviour comparison (Table I columns 2–3).
	BehaviourWithout string `json:"behaviour_without"`
	BehaviourWith    string `json:"behaviour_with"`

	// Machine-readable evidence.
	Suppressed            trace.Diff           `json:"suppressed"`
	UsedIsDebuggerPresent bool                 `json:"used_isdebuggerpresent,omitempty"`
	RawMutations          int                  `json:"raw_mutations"`
	ProtectedMutations    int                  `json:"protected_mutations"`
	Triggers              []core.TriggerReport `json:"triggers,omitempty"`
	Alerts                []string             `json:"alerts,omitempty"`
	HookDetectionLikely   bool                 `json:"hook_detection_likely,omitempty"`

	// Run accounting.
	VirtualNS       int64  `json:"virtual_ns"`
	Attempts        int    `json:"attempts"`
	RecoveredPanics int    `json:"recovered_panics,omitempty"`
	Error           string `json:"error,omitempty"`
}

// Doc flattens the result into its wire form.
func (r SampleResult) Doc() VerdictDoc {
	doc := VerdictDoc{
		Category:              r.Verdict.Category.String(),
		Deactivated:           r.Verdict.Deactivated,
		SpawnLoop:             r.Verdict.SpawnLoop,
		FirstTrigger:          r.FirstTrigger(),
		BehaviourWithout:      r.BehaviourWithout(),
		BehaviourWith:         r.BehaviourWith(),
		Suppressed:            r.Verdict.Suppressed,
		UsedIsDebuggerPresent: r.Verdict.UsedIsDebuggerPresent,
		RawMutations:          r.Verdict.RawMutations,
		ProtectedMutations:    r.Verdict.ProtectedMutations,
		Triggers:              r.Protected.Triggers,
		Alerts:                r.Protected.Alerts,
		HookDetectionLikely:   r.Protected.HookDetectionLikely,
		VirtualNS:             int64(r.Raw.VirtualTime + r.Protected.VirtualTime),
		Attempts:              r.Attempts,
		RecoveredPanics:       r.RecoveredPanics,
	}
	if r.Specimen != nil {
		doc.Specimen = r.Specimen.ID
		doc.Family = r.Specimen.Family
		doc.Source = string(r.Specimen.Source)
	}
	if r.Err != nil {
		doc.Error = r.Err.Error()
	}
	return doc
}

// Virtual returns the total machine-clock time the paired run modeled.
func (d VerdictDoc) Virtual() time.Duration {
	return time.Duration(d.VirtualNS)
}

// verdictEncoder pairs a reusable buffer with a JSON encoder writing into
// it, so the per-verdict encoding scratch is pooled rather than
// reallocated. The encoder keeps default HTML escaping, which is what
// json.Marshal uses — the output stays byte-identical (modulo the trailing
// newline Encode appends, trimmed below).
type verdictEncoder struct {
	buf bytes.Buffer
	enc *json.Encoder
}

var verdictEncoders = sync.Pool{New: func() any {
	ve := &verdictEncoder{}
	ve.enc = json.NewEncoder(&ve.buf)
	return ve
}}

// AppendJSON appends the document's canonical verdict JSON to dst and
// returns the extended slice. The bytes are identical to json.Marshal's;
// the encoding scratch comes from a pool, so a caller reusing dst across
// verdicts marshals with near-zero steady-state allocation.
func (d VerdictDoc) AppendJSON(dst []byte) ([]byte, error) {
	ve := verdictEncoders.Get().(*verdictEncoder)
	ve.buf.Reset()
	if err := ve.enc.Encode(d); err != nil {
		verdictEncoders.Put(ve)
		return nil, fmt.Errorf("analysis: marshalling verdict for %s: %w", d.Specimen, err)
	}
	out := ve.buf.Bytes()
	dst = append(dst, out[:len(out)-1]...) // Encode appends a newline
	verdictEncoders.Put(ve)
	return dst, nil
}

// MarshalVerdict renders the result as canonical verdict JSON — the bytes
// scarecrowd serves, caches, and load-tests against. Identical results
// marshal to identical bytes.
func (r SampleResult) MarshalVerdict() ([]byte, error) {
	return r.Doc().AppendJSON(nil)
}

// UnmarshalVerdict parses canonical verdict JSON back into its document
// form. Consumers downstream of the wire bytes — the campaign engine
// tallying per-category counts, clients post-processing a sweep — use
// this instead of ad-hoc map decoding so field renames break loudly.
func UnmarshalVerdict(data []byte) (VerdictDoc, error) {
	var doc VerdictDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return VerdictDoc{}, fmt.Errorf("analysis: unmarshalling verdict: %w", err)
	}
	return doc, nil
}

package analysis

import (
	"reflect"
	"strings"
	"testing"

	"scarecrow/internal/malware"
	"scarecrow/internal/trace"
	"scarecrow/internal/winsim"
)

// faultAt returns a FaultPlanFor hook firing plan for one (index, attempt)
// pair only.
func faultAt(index, attempt int, plan winsim.FaultPlan) func(int, int) *winsim.FaultPlan {
	return func(i, a int) *winsim.FaultPlan {
		if i == index && a == attempt {
			return &plan
		}
		return nil
	}
}

// The tentpole guarantee: one injected machine fault fails exactly its own
// run; the other nine samples produce verdicts identical to a fault-free
// sweep, and the health report accounts for the loss.
func TestRunCorpusSurvivesWorkerPanic(t *testing.T) {
	corpus := malware.MalGeneCorpus()[:10]

	faulted := NewLab(42)
	faulted.FaultPlanFor = faultAt(3, 1, winsim.FaultPlan{FailFileOp: 1})
	results, report := faulted.Sweep(corpus)

	if report.Samples != 10 || report.VerdictErrors != 1 || report.RecoveredPanics != 1 {
		t.Fatalf("report = %+v, want Samples=10 VerdictErrors=1 RecoveredPanics=1", report)
	}
	bad := results[3]
	if bad.Err == nil {
		t.Fatal("faulted run must record an error")
	}
	if !strings.Contains(bad.Err.Error(), "injected fault") {
		t.Errorf("error %q does not mention the injected fault", bad.Err)
	}
	if bad.Stack == "" {
		t.Error("recovered panic must capture a stack trace")
	}
	if bad.Verdict.Category != VerdictError || bad.Verdict.Deactivated {
		t.Errorf("faulted verdict = %+v, want Category=VerdictError and not deactivated", bad.Verdict)
	}
	if bad.RecoveredPanics != 1 || bad.Attempts != 1 {
		t.Errorf("faulted result: RecoveredPanics=%d Attempts=%d, want 1 and 1", bad.RecoveredPanics, bad.Attempts)
	}

	baseline, baseReport := NewLab(42).Sweep(corpus)
	if baseReport.VerdictErrors != 0 || baseReport.RecoveredPanics != 0 {
		t.Fatalf("fault-free sweep reported failures: %+v", baseReport)
	}
	for i := range corpus {
		if i == 3 {
			continue
		}
		if results[i].Err != nil {
			t.Fatalf("sample %d: unfaulted run errored: %v", i, results[i].Err)
		}
		if !reflect.DeepEqual(results[i].Verdict, baseline[i].Verdict) {
			t.Errorf("sample %d: verdict diverged from the fault-free sweep", i)
		}
	}
}

// An injection fault surfaces through the error path (Deploy/LaunchTarget
// return errors), not as a panic — containment records it without a stack.
func TestInjectionFaultIsContainedError(t *testing.T) {
	corpus := malware.MalGeneCorpus()[:2]
	lab := NewLab(42)
	lab.FaultPlanFor = faultAt(0, 1, winsim.FaultPlan{FailInjection: true})
	results, report := lab.Sweep(corpus)

	if report.VerdictErrors != 1 {
		t.Fatalf("report = %+v, want exactly one VerdictError", report)
	}
	bad := results[0]
	if bad.Err == nil || !strings.Contains(bad.Err.Error(), "injected fault") {
		t.Fatalf("err = %v, want an injection-fault error", bad.Err)
	}
	if bad.RecoveredPanics != 0 {
		t.Errorf("error-path failure must not count as a recovered panic (got %d)", bad.RecoveredPanics)
	}
	if bad.Stack != "" {
		t.Error("error-path failure must not capture a panic stack")
	}
	if results[1].Err != nil {
		t.Errorf("neighbouring sample failed: %v", results[1].Err)
	}
}

// A process-table fault panics mid-simulation and is recovered like any
// other machine fault.
func TestProcessFaultIsContained(t *testing.T) {
	corpus := malware.MalGeneCorpus()[:1]
	lab := NewLab(42)
	lab.FaultPlanFor = faultAt(0, 1, winsim.FaultPlan{FailProcOp: 1})
	results, report := lab.Sweep(corpus)

	if report.VerdictErrors != 1 || report.RecoveredPanics != 1 {
		t.Fatalf("report = %+v, want VerdictErrors=1 RecoveredPanics=1", report)
	}
	if results[0].Verdict.Category != VerdictError {
		t.Errorf("verdict category = %v, want VerdictError", results[0].Verdict.Category)
	}
}

// With RetryFailures set, a fault that fires only on the first attempt is
// absorbed: the retry runs on a re-imaged machine and the sweep records a
// recovery instead of a failure.
func TestRetryRecoversFailedRun(t *testing.T) {
	corpus := malware.MalGeneCorpus()[:3]
	lab := NewLab(42)
	lab.RetryFailures = true
	lab.FaultPlanFor = faultAt(1, 1, winsim.FaultPlan{FailFileOp: 1})
	results, report := lab.Sweep(corpus)

	if report.VerdictErrors != 0 {
		t.Fatalf("report = %+v, want no VerdictErrors after recovery", report)
	}
	if report.Retries != 1 || report.Recovered != 1 || report.RecoveredPanics != 1 {
		t.Fatalf("report = %+v, want Retries=1 Recovered=1 RecoveredPanics=1", report)
	}
	res := results[1]
	if res.Err != nil {
		t.Fatalf("retried run still failed: %v", res.Err)
	}
	if res.Attempts != 2 || res.RecoveredPanics != 1 {
		t.Errorf("retried result: Attempts=%d RecoveredPanics=%d, want 2 and 1", res.Attempts, res.RecoveredPanics)
	}
	if res.Verdict.Category == VerdictError {
		t.Error("recovered run must carry a real verdict")
	}
}

// A fault that fires on both attempts stays a failure even under retry.
func TestRetryExhaustionStaysFailed(t *testing.T) {
	corpus := malware.MalGeneCorpus()[:1]
	lab := NewLab(42)
	lab.RetryFailures = true
	lab.FaultPlanFor = func(i, a int) *winsim.FaultPlan {
		return &winsim.FaultPlan{FailFileOp: 1}
	}
	results, report := lab.Sweep(corpus)

	if report.VerdictErrors != 1 || report.Retries != 1 || report.Recovered != 0 {
		t.Fatalf("report = %+v, want VerdictErrors=1 Retries=1 Recovered=0", report)
	}
	if results[0].RecoveredPanics != 2 {
		t.Errorf("RecoveredPanics = %d, want 2 (one per attempt)", results[0].RecoveredPanics)
	}
}

// Two sweeps with the same seed and the same fault plan must agree on
// everything except wall-clock time.
func TestSweepDeterminismWithFaults(t *testing.T) {
	corpus := malware.MalGeneCorpus()[:8]
	run := func() ([]SampleResult, RunReport) {
		lab := NewLab(7)
		lab.RetryFailures = true
		lab.FaultPlanFor = faultAt(2, 1, winsim.FaultPlan{FailRegOp: 5, FailFileOp: 4})
		return lab.Sweep(corpus)
	}
	resA, repA := run()
	resB, repB := run()

	repA.Wall, repB.Wall = 0, 0
	if repA != repB {
		t.Fatalf("reports diverged:\n  %+v\n  %+v", repA, repB)
	}
	for i := range resA {
		if (resA[i].Err == nil) != (resB[i].Err == nil) {
			t.Fatalf("sample %d: error presence diverged", i)
		}
		if resA[i].Err != nil && resA[i].Err.Error() != resB[i].Err.Error() {
			t.Errorf("sample %d: error text diverged:\n  %v\n  %v", i, resA[i].Err, resB[i].Err)
		}
		if !reflect.DeepEqual(resA[i].Verdict, resB[i].Verdict) {
			t.Errorf("sample %d: verdict diverged", i)
		}
	}
}

// A profile without an analysis agent or explorer cannot parent a sample;
// that is an error, not an index-out-of-range panic.
func TestAgentProcessMissingAgent(t *testing.T) {
	m := winsim.NewMachine("stripped", 1)
	if _, err := agentProcess(m); err == nil {
		t.Fatal("agentProcess on a process-less machine must error")
	} else if !strings.Contains(err.Error(), "stripped") {
		t.Errorf("error %q does not name the profile", err)
	}
}

// Even through the contained path, a stripped profile yields an error
// result rather than killing the run.
func TestRunSampleStrippedProfileIsContained(t *testing.T) {
	lab := NewLab(1)
	lab.Profile = winsim.ProfileName("stripped")
	res := lab.RunSample(malware.MalGeneCorpus()[0], 1)
	if res.Err == nil {
		t.Fatal("run on a stripped profile must record an error")
	}
	if res.Verdict.Category != VerdictError {
		t.Errorf("verdict category = %v, want VerdictError", res.Verdict.Category)
	}
}

// subtreeSummary must attribute by parent chain: an unrelated process that
// merely starts after the sample (higher PID) is excluded even when its
// events succeed. The old threshold filter (e.PID >= rootPID) claimed them.
func TestSubtreeSummaryExcludesUnrelatedProcess(t *testing.T) {
	m := winsim.NewProfileMachine(winsim.ProfileBareMetalSandbox, 1)
	agent, err := agentProcess(m)
	if err != nil {
		t.Fatal(err)
	}

	root := m.Procs.Create(`C:\sample.exe`, "sample.exe", agent.PID, 0)
	child := m.Procs.Create(`C:\dropped.exe`, "dropped.exe", root.PID, 0)
	unrelated := m.Procs.Create(`C:\svchost.exe`, "svchost.exe", agent.PID, 0)
	if unrelated.PID <= root.PID {
		t.Fatalf("test setup: unrelated PID %d must exceed root PID %d", unrelated.PID, root.PID)
	}

	m.Record(trace.Event{Kind: trace.KindFileWrite, PID: child.PID,
		Image: child.Image, Target: `C:\payload.bin`, Success: true})
	m.Record(trace.Event{Kind: trace.KindFileWrite, PID: unrelated.PID,
		Image: unrelated.Image, Target: `C:\unrelated.log`, Success: true})

	sum := subtreeSummary(m, root.PID)
	if len(sum.FilesWritten) != 1 {
		t.Fatalf("FilesWritten = %v, want exactly the child's write", sum.FilesWritten)
	}
	if _, ok := sum.FilesWritten[`c:\payload.bin`]; !ok {
		t.Error("the sample subtree's own write is missing")
	}
	if _, ok := sum.FilesWritten[`c:\unrelated.log`]; ok {
		t.Error("an unrelated later process's write was misattributed to the sample")
	}
}

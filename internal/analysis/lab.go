// Package analysis is the experiment environment of Figure 3: a cluster of
// simulated bare-metal Windows machines, each reset to a clean state before
// every sample (a winsim.Machine cloned per run from a per-profile template
// snapshot models the Deep Freeze reset in O(1); see Lab.acquireMachine),
// an agent that runs the sample for one virtual minute with or without
// Scarecrow, and kernel-activity tracing throughout. On top of the lab sit
// the verdict logic of §IV-C and runners that regenerate every table and
// figure of the evaluation.
//
// Failure is a first-class outcome: a run that errors or panics is
// contained to its own SampleResult (Err, VerdictError) and the sweep
// continues — one bad machine never loses the other 1,053 results. See
// DESIGN.md's error-handling contract.
package analysis

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"scarecrow/internal/core"
	"scarecrow/internal/malware"
	"scarecrow/internal/trace"
	"scarecrow/internal/winapi"
	"scarecrow/internal/winsim"
)

// ObservationWindow is how long the agent lets each sample run before the
// machine is reset (the paper's one minute).
const ObservationWindow = time.Minute

// SpawnLoopThreshold is the self-spawn count above which a sample is
// considered caught in a deception-induced respawn loop (§IV-C: "spawned
// itself more than 10 times").
const SpawnLoopThreshold = 10

// Lab is the analysis cluster configuration.
type Lab struct {
	// Profile selects the cluster machines; the paper's evaluation runs on
	// bare metal (anti-VM samples would short-circuit on VMs).
	Profile winsim.ProfileName
	// Seed drives machine construction; each run derives its own seed so
	// machines vary like real cluster nodes while staying reproducible.
	Seed int64
	// Config is the Scarecrow deployment configuration for protected runs.
	Config core.Config
	// DB, when non-nil, replaces the stock deception database for
	// protected runs (e.g. one extended by a config file or a crawl).
	DB *core.DB
	// Workers bounds run parallelism (the cluster width). Zero means
	// GOMAXPROCS.
	Workers int
	// RetryFailures makes a sweep retry a failed run once on a fresh
	// machine with a derived seed (the cluster operator's "re-image and
	// requeue" move) before recording the failure.
	RetryFailures bool
	// FaultPlanFor, when non-nil, arms the machines of run index (attempt
	// 1 or 2) with a deterministic fault plan. Test-and-drill hook: nil
	// return leaves the run unfaulted.
	FaultPlanFor func(index, attempt int) *winsim.FaultPlan
	// DisablePooling forces every run to rebuild its machine from scratch
	// instead of cloning the per-profile template snapshot — the A/B
	// timing knob for comparing the O(1) reset against the full re-image.
	// Results are bit-identical either way (the differential harness in
	// differential_test.go enforces it).
	DisablePooling bool

	// poolMu guards the lazily built template snapshot. The template is
	// keyed by profile so a Lab whose Profile is reassigned between runs
	// transparently rebuilds it.
	poolMu          sync.Mutex
	template        *winsim.Snapshot
	templateProfile winsim.ProfileName
}

// templateSeed seeds the pool's template machine. The value is irrelevant
// to clones — Snapshot.Clone re-seeds — but fixed so template construction
// is reproducible.
const templateSeed = 0

// acquireMachine is the cluster's Deep Freeze reset: it returns a machine
// for the given seed, cloned from the per-profile template snapshot in O(1)
// (or built from scratch when pooling is disabled). Profile construction
// never consumes the machine RNG, so a clone re-seeded for this run is
// bit-identical to NewProfileMachine(profile, seed).
func (l *Lab) acquireMachine(seed int64) *winsim.Machine {
	if l.DisablePooling {
		return winsim.NewProfileMachine(l.Profile, seed)
	}
	l.poolMu.Lock()
	if l.template == nil || l.templateProfile != l.Profile {
		l.template = winsim.NewProfileMachine(l.Profile, templateSeed).Snapshot()
		l.templateProfile = l.Profile
	}
	template := l.template
	l.poolMu.Unlock()
	return template.Clone(seed)
}

// NewLab returns the paper's evaluation setup: bare-metal machines and the
// recommended Scarecrow configuration for them.
func NewLab(seed int64) *Lab {
	return &Lab{
		Profile: winsim.ProfileBareMetalSandbox,
		Seed:    seed,
		Config:  core.RecommendedConfig(string(winsim.ProfileBareMetalSandbox)),
	}
}

// Execution is one sample run on one freshly reset machine.
type Execution struct {
	// Summary condenses the kernel activities of the sample's process
	// subtree.
	Summary trace.Summary
	// Triggers is the Scarecrow IPC trigger stream (empty for raw runs).
	Triggers []core.TriggerReport
	// Alerts carries the mitigation alarms raised (protected runs only).
	Alerts []string
	// HookDetectionLikely marks protected runs where the sample went
	// quiet without any trigger report: the deception that fired was a
	// direct-memory artifact (prologue bytes) Scarecrow plants but cannot
	// observe being read.
	HookDetectionLikely bool
	// VirtualTime is the machine's clock at the end of the run.
	VirtualTime time.Duration
}

// runRaw executes the specimen without Scarecrow: the agent (python.exe)
// launches it, as in the real cluster.
func (l *Lab) runRaw(s *malware.Specimen, seed int64, plan *winsim.FaultPlan) (Execution, error) {
	m := l.acquireMachine(seed)
	if plan != nil {
		m.ArmFaults(*plan)
	}
	sys := winapi.NewSystem(m)
	s.Register(sys)
	m.FS.Touch(s.Image, 180<<10)
	parent, err := agentProcess(m)
	if err != nil {
		return Execution{}, err
	}
	root := sys.Launch(s.Image, s.ID, parent)
	sys.Run(ObservationWindow)
	ex := Execution{Summary: subtreeSummary(m, root.PID), VirtualTime: m.Clock.Now()}
	// The machine is discarded now; recycle its event buffer. Summaries
	// hold copies, never the recorder's own slice.
	m.Tracer.Release()
	return ex, nil
}

// runProtected executes the specimen under the Scarecrow controller.
func (l *Lab) runProtected(s *malware.Specimen, seed int64, plan *winsim.FaultPlan) (Execution, error) {
	m := l.acquireMachine(seed)
	if plan != nil {
		m.ArmFaults(*plan)
	}
	sys := winapi.NewSystem(m)
	s.Register(sys)
	m.FS.Touch(s.Image, 180<<10)
	db := l.DB
	if db == nil {
		db = core.NewDB()
	}
	ctrl, err := core.Deploy(sys, core.NewEngine(db, l.Config))
	if err != nil {
		return Execution{}, fmt.Errorf("analysis: deploying scarecrow: %w", err)
	}
	root, err := ctrl.LaunchTarget(s.Image, s.ID)
	if err != nil {
		return Execution{}, fmt.Errorf("analysis: launching %s: %w", s.ID, err)
	}
	sys.Run(ObservationWindow)
	ex := Execution{
		Summary:     subtreeSummary(m, root.PID),
		Triggers:    ctrl.Session.Triggers(),
		Alerts:      ctrl.Session.Alerts(),
		VirtualTime: m.Clock.Now(),
	}
	m.Tracer.Release()
	return ex, nil
}

// agentProcess returns the machine's analysis agent when present (the
// bare-metal cluster) and explorer otherwise. A profile providing neither
// cannot parent a sample and is reported as an error rather than an
// index-out-of-range panic.
func agentProcess(m *winsim.Machine) (*winsim.Process, error) {
	for _, image := range []string{"python.exe", "pythonw.exe", "explorer.exe"} {
		if agents := m.Procs.FindByImage(image); len(agents) > 0 {
			return agents[0], nil
		}
	}
	return nil, fmt.Errorf("analysis: profile %q has no analysis agent or explorer.exe to parent the sample", m.Profile)
}

// subtreeDescendants returns the PID set of the sample's process tree,
// built by walking actual parent links. ProcessTable.All returns creation
// order and parents are always created before their children, so one pass
// suffices.
func subtreeDescendants(m *winsim.Machine, rootPID int) map[int]bool {
	desc := map[int]bool{rootPID: true}
	for _, p := range m.Procs.All() {
		if desc[p.ParentPID] {
			desc[p.PID] = true
		}
	}
	return desc
}

// subtreeSummary condenses the kernel events attributable to the sample's
// process tree. Attribution follows parent links — a PID threshold would
// also claim unrelated processes that merely started after the sample
// (engine- or agent-spawned work in protected runs), corrupting the
// file/registry diff the verdict rests on.
func subtreeSummary(m *winsim.Machine, rootPID int) trace.Summary {
	desc := subtreeDescendants(m, rootPID)
	return trace.Summarize(m.Tracer.Filter(func(e trace.Event) bool {
		return desc[e.PID]
	}))
}

// SampleResult is the paired-execution outcome for one sample.
type SampleResult struct {
	Specimen  *malware.Specimen
	Raw       Execution
	Protected Execution
	Verdict   Verdict
	// Err is set when the run failed (launch error, injected fault,
	// recovered panic); the Verdict is then VerdictError and both
	// executions are zero. The failure is contained: surrounding sweeps
	// keep going.
	Err error
	// Stack holds the goroutine stack of a recovered panic ("" for plain
	// errors).
	Stack string
	// Attempts counts how many times the run executed (2 after a retry).
	Attempts int
	// RecoveredPanics counts panics recovered across those attempts.
	RecoveredPanics int
}

// RunSample executes a sample with and without Scarecrow on freshly reset
// machines ("at about the same time", §IV-C) and computes the verdict.
// Failures — including panics out of the simulation — are contained into
// the result's Err/Stack fields, never propagated.
func (l *Lab) RunSample(s *malware.Specimen, runSeed int64) SampleResult {
	res := l.runContained(s, runSeed, nil)
	res.Attempts = 1
	return res
}

// RunSampleSeeded executes one contained paired run on machines seeded
// exactly with seed, independent of the lab's own Seed. This is the
// verdict-service entry point: scarecrowd keys its cache on
// (specimen, profile, seed), so the machine seed must be a pure function
// of the request, not of which worker's lab happens to serve it. A Lab is
// not safe for concurrent use — the service gives each worker its own.
func (l *Lab) RunSampleSeeded(s *malware.Specimen, seed int64) SampleResult {
	// runContained derives the machine seed as l.Seed^runSeed; cancel the
	// lab term so the machines see exactly seed.
	res := l.runContained(s, l.Seed^seed, nil)
	res.Attempts = 1
	return res
}

// runContained is the containment boundary: one paired execution whose
// panics are recovered into the result. This is the lab's analogue of the
// scheduler's exitPanic/BudgetExceeded recovery — but for faults nobody
// sanctioned.
func (l *Lab) runContained(s *malware.Specimen, runSeed int64, plan *winsim.FaultPlan) (res SampleResult) {
	res.Specimen = s
	defer func() {
		if r := recover(); r != nil {
			res.Err = fmt.Errorf("analysis: run of %s panicked: %v", s.ID, r)
			res.Stack = string(debug.Stack())
			res.RecoveredPanics++
			res.Verdict = Verdict{Category: VerdictError}
		}
	}()
	raw, err := l.runRaw(s, l.Seed^runSeed, plan)
	if err != nil {
		res.Err = err
		res.Verdict = Verdict{Category: VerdictError}
		return res
	}
	prot, err := l.runProtected(s, l.Seed^runSeed, plan)
	if err != nil {
		res.Err = err
		res.Verdict = Verdict{Category: VerdictError}
		return res
	}
	if len(prot.Triggers) == 0 {
		// No hooked API observed a probe; if the sample still changed
		// behaviour, the planted prologue bytes are the only deception it
		// can have read.
		prot.HookDetectionLikely = true
	}
	res.Raw = raw
	res.Protected = prot
	res.Verdict = Judge(raw, prot)
	return res
}

// retrySeedSalt derives the second-attempt run seed: a re-imaged cluster
// node is a different machine, but a reproducibly different one.
const retrySeedSalt = 0x5ca3ec40

// runIndexed executes corpus position i, applying the lab's fault plan and
// retry policy.
func (l *Lab) runIndexed(i int, s *malware.Specimen) SampleResult {
	runSeed := int64(i + 1)
	res := l.runContained(s, runSeed, l.planFor(i, 1))
	res.Attempts = 1
	if res.Err != nil && l.RetryFailures {
		retry := l.runContained(s, runSeed^retrySeedSalt, l.planFor(i, 2))
		retry.Attempts = 2
		retry.RecoveredPanics += res.RecoveredPanics
		res = retry
	}
	return res
}

func (l *Lab) planFor(index, attempt int) *winsim.FaultPlan {
	if l.FaultPlanFor == nil {
		return nil
	}
	return l.FaultPlanFor(index, attempt)
}

// RunReport is the health summary of one corpus sweep: how many runs
// failed, what was recovered, and what the sweep cost in wall and virtual
// time. VerdictErrors tells figure/table readers how many samples are
// excluded from the verdict counts.
type RunReport struct {
	// Samples is the corpus size.
	Samples int
	// VerdictErrors counts runs whose final outcome is VerdictError.
	VerdictErrors int
	// RecoveredPanics counts panics recovered across all attempts.
	RecoveredPanics int
	// Retries counts second attempts; Recovered counts those that
	// succeeded.
	Retries   int
	Recovered int
	// Workers is the cluster width used.
	Workers int
	// Wall is the real elapsed sweep time; Virtual sums the machine-clock
	// time of every execution (the cluster-minutes the sweep modeled).
	Wall    time.Duration
	Virtual time.Duration
}

// Throughput returns machine executions per wall-clock second (each sample
// costs two executions: raw and protected). The sweep-rate figure the
// benchmarks report.
func (r RunReport) Throughput() float64 {
	if r.Wall <= 0 {
		return 0
	}
	return float64(2*r.Samples) / r.Wall.Seconds()
}

// String renders the health summary the way labrunner prints it.
func (r RunReport) String() string {
	return fmt.Sprintf(
		"sweep health: %d runs, %d failed (VerdictError), %d recovered panics, %d retries (%d recovered), %d workers, %.1fs wall, %s virtual",
		r.Samples, r.VerdictErrors, r.RecoveredPanics, r.Retries, r.Recovered,
		r.Workers, r.Wall.Seconds(), r.Virtual)
}

// Sweep evaluates many samples in parallel (the machine cluster of
// Figure 3) and reports sweep health. Results keep corpus order; a failed
// run occupies its slot with Err set and a VerdictError verdict while the
// rest of the sweep completes normally.
func (l *Lab) Sweep(samples []*malware.Specimen) ([]SampleResult, RunReport) {
	workers := l.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	start := time.Now()
	results := make([]SampleResult, len(samples))
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				results[i] = l.runIndexed(i, samples[i])
			}
		}()
	}
	for i := range samples {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	report := RunReport{Samples: len(samples), Workers: workers, Wall: time.Since(start)}
	for _, res := range results {
		if res.Err != nil {
			report.VerdictErrors++
		}
		report.RecoveredPanics += res.RecoveredPanics
		if res.Attempts > 1 {
			report.Retries++
			if res.Err == nil {
				report.Recovered++
			}
		}
		report.Virtual += res.Raw.VirtualTime + res.Protected.VirtualTime
	}
	return results, report
}

// RunCorpus evaluates many samples in parallel, discarding the health
// report. Results keep corpus order.
func (l *Lab) RunCorpus(samples []*malware.Specimen) []SampleResult {
	results, _ := l.Sweep(samples)
	return results
}

// Package analysis is the experiment environment of Figure 3: a cluster of
// simulated bare-metal Windows machines, each reset to a clean state before
// every sample (a fresh winsim.Machine per run models the Deep Freeze
// reset), an agent that runs the sample for one virtual minute with or
// without Scarecrow, and kernel-activity tracing throughout. On top of the
// lab sit the verdict logic of §IV-C and runners that regenerate every
// table and figure of the evaluation.
package analysis

import (
	"runtime"
	"sync"
	"time"

	"scarecrow/internal/core"
	"scarecrow/internal/malware"
	"scarecrow/internal/trace"
	"scarecrow/internal/winapi"
	"scarecrow/internal/winsim"
)

// ObservationWindow is how long the agent lets each sample run before the
// machine is reset (the paper's one minute).
const ObservationWindow = time.Minute

// SpawnLoopThreshold is the self-spawn count above which a sample is
// considered caught in a deception-induced respawn loop (§IV-C: "spawned
// itself more than 10 times").
const SpawnLoopThreshold = 10

// Lab is the analysis cluster configuration.
type Lab struct {
	// Profile selects the cluster machines; the paper's evaluation runs on
	// bare metal (anti-VM samples would short-circuit on VMs).
	Profile winsim.ProfileName
	// Seed drives machine construction; each run derives its own seed so
	// machines vary like real cluster nodes while staying reproducible.
	Seed int64
	// Config is the Scarecrow deployment configuration for protected runs.
	Config core.Config
	// DB, when non-nil, replaces the stock deception database for
	// protected runs (e.g. one extended by a config file or a crawl).
	DB *core.DB
	// Workers bounds run parallelism (the cluster width). Zero means
	// GOMAXPROCS.
	Workers int
}

// NewLab returns the paper's evaluation setup: bare-metal machines and the
// recommended Scarecrow configuration for them.
func NewLab(seed int64) *Lab {
	return &Lab{
		Profile: winsim.ProfileBareMetalSandbox,
		Seed:    seed,
		Config:  core.RecommendedConfig(string(winsim.ProfileBareMetalSandbox)),
	}
}

// Execution is one sample run on one freshly reset machine.
type Execution struct {
	// Summary condenses the kernel activities of the sample's process
	// subtree.
	Summary trace.Summary
	// Triggers is the Scarecrow IPC trigger stream (empty for raw runs).
	Triggers []core.TriggerReport
	// Alerts carries the mitigation alarms raised (protected runs only).
	Alerts []string
	// HookDetectionLikely marks protected runs where the sample went
	// quiet without any trigger report: the deception that fired was a
	// direct-memory artifact (prologue bytes) Scarecrow plants but cannot
	// observe being read.
	HookDetectionLikely bool
}

// runRaw executes the specimen without Scarecrow: the agent (python.exe)
// launches it, as in the real cluster.
func (l *Lab) runRaw(s *malware.Specimen, seed int64) Execution {
	m := winsim.NewProfileMachine(l.Profile, seed)
	sys := winapi.NewSystem(m)
	s.Register(sys)
	m.FS.Touch(s.Image, 180<<10)
	parent := agentProcess(m)
	root := sys.Launch(s.Image, s.ID, parent)
	sys.Run(ObservationWindow)
	return Execution{Summary: subtreeSummary(m, root.PID)}
}

// runProtected executes the specimen under the Scarecrow controller.
func (l *Lab) runProtected(s *malware.Specimen, seed int64) Execution {
	m := winsim.NewProfileMachine(l.Profile, seed)
	sys := winapi.NewSystem(m)
	s.Register(sys)
	m.FS.Touch(s.Image, 180<<10)
	db := l.DB
	if db == nil {
		db = core.NewDB()
	}
	ctrl := core.Deploy(sys, core.NewEngine(db, l.Config))
	root, err := ctrl.LaunchTarget(s.Image, s.ID)
	if err != nil {
		panic("analysis: " + err.Error())
	}
	sys.Run(ObservationWindow)
	return Execution{
		Summary:  subtreeSummary(m, root.PID),
		Triggers: ctrl.Session.Triggers(),
		Alerts:   ctrl.Session.Alerts(),
	}
}

// agentProcess returns the machine's analysis agent when present (the
// bare-metal cluster) and explorer otherwise.
func agentProcess(m *winsim.Machine) *winsim.Process {
	if agents := m.Procs.FindByImage("python.exe"); len(agents) > 0 {
		return agents[0]
	}
	if agents := m.Procs.FindByImage("pythonw.exe"); len(agents) > 0 {
		return agents[0]
	}
	return m.Procs.FindByImage("explorer.exe")[0]
}

// subtreeSummary condenses the kernel events attributable to the sample's
// process tree. PIDs allocate monotonically, so everything at or above the
// root PID belongs to the sample's subtree.
func subtreeSummary(m *winsim.Machine, rootPID int) trace.Summary {
	return trace.Summarize(m.Tracer.Filter(func(e trace.Event) bool {
		return e.PID >= rootPID
	}))
}

// SampleResult is the paired-execution outcome for one sample.
type SampleResult struct {
	Specimen  *malware.Specimen
	Raw       Execution
	Protected Execution
	Verdict   Verdict
}

// RunSample executes a sample with and without Scarecrow on freshly reset
// machines ("at about the same time", §IV-C) and computes the verdict.
func (l *Lab) RunSample(s *malware.Specimen, runSeed int64) SampleResult {
	raw := l.runRaw(s, l.Seed^runSeed)
	prot := l.runProtected(s, l.Seed^runSeed)
	if len(prot.Triggers) == 0 {
		// No hooked API observed a probe; if the sample still changed
		// behaviour, the planted prologue bytes are the only deception it
		// can have read.
		prot.HookDetectionLikely = true
	}
	return SampleResult{
		Specimen:  s,
		Raw:       raw,
		Protected: prot,
		Verdict:   Judge(raw, prot),
	}
}

// RunCorpus evaluates many samples in parallel (the machine cluster of
// Figure 3). Results keep corpus order.
func (l *Lab) RunCorpus(samples []*malware.Specimen) []SampleResult {
	workers := l.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	results := make([]SampleResult, len(samples))
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				results[i] = l.RunSample(samples[i], int64(i+1))
			}
		}()
	}
	for i := range samples {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return results
}

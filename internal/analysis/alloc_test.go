package analysis

import (
	"bytes"
	"encoding/json"
	"testing"

	"scarecrow/internal/malware"
)

// sampleDoc runs one real specimen through the lab and returns its verdict
// document — the same shape the service marshals on every completion.
func sampleDoc(t *testing.T) VerdictDoc {
	t.Helper()
	lab := NewLab(0)
	s, err := malware.Resolve("kasidet")
	if err != nil {
		t.Fatal(err)
	}
	res := lab.RunSampleSeeded(s, 1)
	if res.Err != nil {
		t.Fatalf("lab run failed: %v", res.Err)
	}
	return res.Doc()
}

// AppendJSON exists so the service can render verdicts without a fresh
// buffer per request; this pins the pooled encoder's steady state.
func TestAppendJSONAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("the race detector intentionally defeats sync.Pool reuse; the budget is unmeasurable")
	}
	doc := sampleDoc(t)
	var buf []byte
	var err error
	// Warm the destination buffer to its working size first.
	if buf, err = doc.AppendJSON(buf); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		buf, err = doc.AppendJSON(buf[:0])
		if err != nil {
			t.Fatal(err)
		}
	})
	// One allocation per op is the encoding/json floor for this document;
	// anything above 2 means the encoder pool or buffer reuse regressed.
	if allocs > 2 {
		t.Errorf("AppendJSON allocates %.1f objects/op, budget is 2", allocs)
	}
}

// AppendJSON must be byte-identical to json.Marshal: verdict bytes are the
// store's canonical record format, and two renderings of the same document
// must never diverge (determinism is what makes last-write-wins exact).
func TestAppendJSONMatchesMarshal(t *testing.T) {
	doc := sampleDoc(t)
	want, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	got, err := doc.AppendJSON(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("AppendJSON diverges from json.Marshal:\n got %s\nwant %s", got, want)
	}
	// Appending to a non-empty prefix must leave the prefix intact.
	withPrefix, err := doc.AppendJSON([]byte("prefix:"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(withPrefix, append([]byte("prefix:"), want...)) {
		t.Fatalf("AppendJSON clobbered its prefix: %s", withPrefix)
	}
}

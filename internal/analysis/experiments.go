package analysis

import (
	"fmt"
	"sort"
	"strings"

	"scarecrow/internal/malware"
)

// Table1Row is one line of the paper's Table I.
type Table1Row struct {
	SampleID         string
	WithoutScarecrow string
	WithScarecrow    string
	Trigger          string
	Deactivated      bool
}

// Table1Report is the full Table I reproduction.
type Table1Report struct {
	Rows []Table1Row
	// Health summarizes the sweep that produced the rows.
	Health RunReport
}

// DeactivatedCount returns how many of the 13 samples were deactivated.
func (r Table1Report) DeactivatedCount() int {
	n := 0
	for _, row := range r.Rows {
		if row.Deactivated {
			n++
		}
	}
	return n
}

// String renders the report like Table I.
func (r Table1Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-8s | %-38s | %-38s | %-28s | %s\n", "Sample", "Without SCARECROW", "With SCARECROW", "Trigger", "Eff.")
	sb.WriteString(strings.Repeat("-", 125) + "\n")
	for _, row := range r.Rows {
		eff := "Y"
		if !row.Deactivated {
			eff = "N"
		}
		fmt.Fprintf(&sb, "%-8s | %-38s | %-38s | %-28s | %s\n",
			row.SampleID, clip(row.WithoutScarecrow, 38), clip(row.WithScarecrow, 38), clip(row.Trigger, 28), eff)
	}
	fmt.Fprintf(&sb, "deactivated: %d/%d\n", r.DeactivatedCount(), len(r.Rows))
	return sb.String()
}

func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}

// Table1 reproduces the Table I experiment: the 13 Joe Security samples
// run with and without Scarecrow on the bare-metal cluster.
func Table1(lab *Lab) Table1Report {
	results, health := lab.Sweep(malware.JoeSecuritySamples())
	report := Table1Report{Health: health}
	for _, res := range results {
		if res.Err != nil {
			report.Rows = append(report.Rows, Table1Row{
				SampleID:         res.Specimen.ID,
				WithoutScarecrow: "run failed: " + res.Err.Error(),
				WithScarecrow:    "run failed",
				Trigger:          "N/A",
			})
			continue
		}
		report.Rows = append(report.Rows, Table1Row{
			SampleID:         res.Specimen.ID,
			WithoutScarecrow: res.BehaviourWithout(),
			WithScarecrow:    res.BehaviourWith(),
			Trigger:          res.FirstTrigger(),
			Deactivated:      res.Verdict.Deactivated,
		})
	}
	return report
}

// FamilyOutcome aggregates Figure 4 per family.
type FamilyOutcome struct {
	Family      string
	Total       int
	Deactivated int
	// SpawnLoops counts samples deactivated through the self-spawn loop.
	SpawnLoops int
	// CreatedProcesses counts deactivated samples whose raw run created
	// new processes; ModifiedFilesReg counts those whose raw run modified
	// files or registry (the stacked sub-bars of Figure 4).
	CreatedProcesses int
	ModifiedFilesReg int
}

// Figure4Report is the MalGene corpus evaluation (§IV-C + Figure 4).
type Figure4Report struct {
	Families []FamilyOutcome
	// Aggregates over the whole corpus.
	Total                   int
	Deactivated             int
	SpawnLoopSamples        int
	SpawnersUsingIsDebugger int
	// Health summarizes the sweep; Health.VerdictErrors samples are counted
	// in Total but excluded from every verdict-derived figure.
	Health RunReport
}

// DeactivationRate returns the headline percentage (the paper's 89.56%).
func (r Figure4Report) DeactivationRate() float64 {
	if r.Total == 0 {
		return 0
	}
	return 100 * float64(r.Deactivated) / float64(r.Total)
}

// SpawnLoopRate returns the self-spawner percentage (the paper's 78.08%).
func (r Figure4Report) SpawnLoopRate() float64 {
	if r.Total == 0 {
		return 0
	}
	return 100 * float64(r.SpawnLoopSamples) / float64(r.Total)
}

// Family returns the named family's outcome.
func (r Figure4Report) Family(name string) (FamilyOutcome, bool) {
	for _, f := range r.Families {
		if f.Family == name {
			return f, true
		}
	}
	return FamilyOutcome{}, false
}

// TopFamilies returns the n largest families, by total then name.
func (r Figure4Report) TopFamilies(n int) []FamilyOutcome {
	out := make([]FamilyOutcome, len(r.Families))
	copy(out, r.Families)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Total != out[j].Total {
			return out[i].Total > out[j].Total
		}
		return out[i].Family < out[j].Family
	})
	if n > len(out) {
		n = len(out)
	}
	return out[:n]
}

// String renders the Figure 4 series: per-family totals and deactivation
// bars for the top 10 families, plus corpus aggregates.
func (r Figure4Report) String() string {
	var sb strings.Builder
	sb.WriteString("Figure 4 — effectiveness on the MalGene corpus (top 10 families)\n")
	fmt.Fprintf(&sb, "%-12s %6s %12s %11s %10s %10s\n", "family", "total", "deactivated", "spawnloops", "proc-w/o", "filereg-w/o")
	for _, f := range r.TopFamilies(10) {
		fmt.Fprintf(&sb, "%-12s %6d %12d %11d %10d %10d\n",
			f.Family, f.Total, f.Deactivated, f.SpawnLoops, f.CreatedProcesses, f.ModifiedFilesReg)
	}
	fmt.Fprintf(&sb, "corpus: %d samples, %d (%.2f%%) deactivated, %d (%.2f%%) self-spawn loops, %d spawners used IsDebuggerPresent\n",
		r.Total, r.Deactivated, r.DeactivationRate(), r.SpawnLoopSamples, r.SpawnLoopRate(), r.SpawnersUsingIsDebugger)
	return sb.String()
}

// Figure4 reproduces the §IV-C corpus experiment over the given samples
// (pass malware.MalGeneCorpus() for the full 1,054).
func Figure4(lab *Lab, corpus []*malware.Specimen) Figure4Report {
	results, health := lab.Sweep(corpus)
	byFamily := make(map[string]*FamilyOutcome)
	report := Figure4Report{Health: health}
	for _, res := range results {
		fam, ok := byFamily[res.Specimen.Family]
		if !ok {
			fam = &FamilyOutcome{Family: res.Specimen.Family}
			byFamily[res.Specimen.Family] = fam
		}
		fam.Total++
		report.Total++
		// An errored run contributes to Total (the sample was in the
		// corpus) but to no verdict-derived count.
		if res.Err != nil || !res.Verdict.Deactivated {
			continue
		}
		fam.Deactivated++
		report.Deactivated++
		if res.Verdict.SpawnLoop {
			fam.SpawnLoops++
			report.SpawnLoopSamples++
			if res.Verdict.UsedIsDebuggerPresent {
				report.SpawnersUsingIsDebugger++
			}
		}
		if len(res.Raw.Summary.ProcessesCreated) > 0 {
			fam.CreatedProcesses++
		}
		if len(res.Raw.Summary.FilesWritten) > 0 || len(res.Raw.Summary.RegistryModified) > 0 ||
			len(res.Raw.Summary.FilesDeleted) > 0 {
			fam.ModifiedFilesReg++
		}
	}
	for _, name := range malware.FamilyNames() {
		if fam, ok := byFamily[name]; ok {
			report.Families = append(report.Families, *fam)
		}
	}
	// Families outside the generated layout (ad-hoc corpora) keep their
	// outcomes too.
	known := make(map[string]bool)
	for _, f := range report.Families {
		known[f.Family] = true
	}
	var extra []string
	for name := range byFamily {
		if !known[name] {
			extra = append(extra, name)
		}
	}
	sort.Strings(extra)
	for _, name := range extra {
		report.Families = append(report.Families, *byFamily[name])
	}
	return report
}

package analysis

import (
	"encoding/json"
	"fmt"
	"runtime/debug"
	"time"

	"scarecrow/internal/deter"
	"scarecrow/internal/malware"
	"scarecrow/internal/winapi"
	"scarecrow/internal/winsim"
)

// MonitorOptions configures one monitored (deterrence-tier) run.
type MonitorOptions struct {
	// Action is the enforcement applied to a flagged payload (default
	// kill).
	Action deter.Action
	// Detector and Plant tune the online scorer and the canary layout;
	// zero values mean the package defaults.
	Detector deter.DetectorConfig
	Plant    deter.PlantConfig
	// ThrottleDelay overrides the per-call throttle delay.
	ThrottleDelay time.Duration
	// OnDetection streams detections as they fire (the /v1/monitor hook).
	// It runs inside the simulation's single goroutine.
	OnDetection func(deter.Detection)
}

// MonitoredResult is the outcome of one monitored run.
type MonitoredResult struct {
	Specimen *malware.Specimen
	Profile  winsim.ProfileName
	Seed     int64
	// Outcome is the deterrence verdict; Category restates it in verdict
	// terms: VerdictDeterred when enforcement fired, VerdictSurvived when
	// the payload ran out the window untouched, VerdictError on failure.
	Outcome  deter.Outcome
	Category VerdictCategory
	// VirtualTime is the machine clock at the end of the run.
	VirtualTime time.Duration
	// Err/Stack contain a contained failure, exactly like SampleResult.
	Err   error
	Stack string
}

// RunMonitoredSeeded executes one monitored run: the machine is seeded
// purely from seed (the lab term is cancelled, matching RunSampleSeeded),
// canaries are planted before launch, the deterrence monitor taps the
// live trace, and enforcement applies at API boundaries. Unlike the
// paired raw/protected runs, a monitored run is single-execution and is
// never cached — it exists to be streamed.
//
// Failures, including panics out of the simulation, are contained into
// the result's Err/Stack fields.
func (l *Lab) RunMonitoredSeeded(s *malware.Specimen, seed int64, opts MonitorOptions) (res MonitoredResult) {
	res = MonitoredResult{Specimen: s, Profile: l.Profile, Seed: seed, Category: VerdictError}
	defer func() {
		if r := recover(); r != nil {
			res.Err = fmt.Errorf("analysis: monitored run of %s panicked: %v", s.ID, r)
			res.Stack = string(debug.Stack())
			res.Category = VerdictError
		}
	}()

	m := l.acquireMachine(seed)
	plan, err := deter.Plant(m, opts.Plant)
	if err != nil {
		res.Err = err
		return res
	}
	sys := winapi.NewSystem(m)
	s.Register(sys)
	m.FS.Touch(s.Image, 180<<10)
	parent, err := agentProcess(m)
	if err != nil {
		res.Err = err
		return res
	}
	mon := deter.NewMonitor(m, plan, deter.MonitorConfig{
		Action:        opts.Action,
		Detector:      opts.Detector,
		ThrottleDelay: opts.ThrottleDelay,
		OnDetection:   opts.OnDetection,
	})
	m.Tracer.Tap(mon.Observe)
	sys.Enforcer = mon.Enforce

	sys.Launch(s.Image, s.ID, parent)
	sys.Run(ObservationWindow)

	res.Outcome = mon.Outcome()
	res.VirtualTime = m.Clock.Now()
	switch {
	case res.Outcome.Deterred:
		res.Category = VerdictDeterred
	default:
		res.Category = VerdictSurvived
	}
	res.Err = nil
	m.Tracer.Tap(nil)
	m.Tracer.Release()
	return res
}

// MonitorDoc is the JSON wire form of a monitored run — the /v1/monitor
// final frame and the scarebench -monitor row.
type MonitorDoc struct {
	Specimen string `json:"specimen"`
	Family   string `json:"family"`
	Source   string `json:"source"`
	Profile  string `json:"profile"`
	Seed     int64  `json:"seed"`
	Category string `json:"category"`
	Action   string `json:"action"`

	Detected         bool  `json:"detected"`
	Deterred         bool  `json:"deterred"`
	TimeToDetectNS   int64 `json:"time_to_detect_ns"`
	EnforcedAtNS     int64 `json:"enforced_at_ns"`
	FilesLost        int   `json:"files_lost_before_kill"`
	CanariesPlanted  int   `json:"canaries_planted"`
	CanariesTouched  int   `json:"canaries_touched"`
	CanariesTampered int   `json:"canaries_tampered"`
	DetectionCount   int   `json:"detection_count"`
	VirtualNS        int64 `json:"virtual_ns"`

	Detections []deter.Detection `json:"detections,omitempty"`
	Error      string            `json:"error,omitempty"`
}

// Doc converts the result to its wire form.
func (r MonitoredResult) Doc() MonitorDoc {
	doc := MonitorDoc{
		Profile:  string(r.Profile),
		Seed:     r.Seed,
		Category: r.Category.String(),
		Action:   string(r.Outcome.Action),

		Detected:         r.Outcome.Detected,
		Deterred:         r.Outcome.Deterred,
		TimeToDetectNS:   int64(r.Outcome.TimeToDetect),
		EnforcedAtNS:     int64(r.Outcome.EnforcedAt),
		FilesLost:        r.Outcome.FilesLost,
		CanariesPlanted:  r.Outcome.CanariesPlanted,
		CanariesTouched:  r.Outcome.CanariesTouched,
		CanariesTampered: r.Outcome.CanariesTampered,
		DetectionCount:   len(r.Outcome.Detections),
		VirtualNS:        int64(r.VirtualTime),
		Detections:       r.Outcome.Detections,
	}
	if r.Specimen != nil {
		doc.Specimen = r.Specimen.ID
		doc.Family = r.Specimen.Family
		doc.Source = string(r.Specimen.Source)
	}
	if r.Err != nil {
		doc.Error = r.Err.Error()
	}
	return doc
}

// Marshal renders the doc as JSON. Monitored runs are streamed, not
// cached, so this takes the plain encoding/json path rather than the
// pooled verdict marshaller.
func (d MonitorDoc) Marshal() ([]byte, error) { return json.Marshal(d) }

package analysis

import (
	"sort"
	"strconv"
	"strings"

	"scarecrow/internal/trace"
)

// VerdictCategory classifies a sample result for table/figure accounting.
type VerdictCategory int

const (
	// VerdictSurvived: the sample's malicious behaviour went through
	// despite Scarecrow.
	VerdictSurvived VerdictCategory = iota
	// VerdictDeactivated: Scarecrow stopped the sample (§IV-C criteria).
	VerdictDeactivated
	// VerdictError: the run itself failed (launch error, injected fault,
	// recovered panic). Errored samples are excluded from the
	// deactivated/survived counts and surfaced via RunReport.
	VerdictError
	// VerdictDeterred: the real-time deterrence tier (internal/deter)
	// detected the payload mid-run and enforced against it — the monitored
	// analogue of VerdictDeactivated for samples whose evasive logic the
	// camouflage could not stop (see RunMonitoredSeeded).
	VerdictDeterred
)

func (c VerdictCategory) String() string {
	switch c {
	case VerdictSurvived:
		return "survived"
	case VerdictDeactivated:
		return "deactivated"
	case VerdictError:
		return "error"
	case VerdictDeterred:
		return "deterred"
	default:
		return "survived"
	}
}

// Verdict is the §IV-C deactivation decision for one sample, computed
// purely from the two executions' traces.
type Verdict struct {
	// Deactivated is the headline outcome: Scarecrow stopped the sample's
	// malicious behaviour.
	Deactivated bool
	// Category restates the outcome including the error case; a Verdict
	// built by Judge is never VerdictError.
	Category VerdictCategory
	// SpawnLoop marks samples that respawned themselves more than the
	// threshold under Scarecrow (counted as deactivated: the loop never
	// reaches code beyond the evasive logic).
	SpawnLoop bool
	// Suppressed lists the baseline activities missing from the protected
	// run (the trace-comparison criterion).
	Suppressed trace.Diff
	// UsedIsDebuggerPresent records whether the protected run invoked
	// IsDebuggerPresent (the §IV-C statistic: 815 of 823 spawners did).
	UsedIsDebuggerPresent bool
	// RawMutations and ProtectedMutations count durable changes per run.
	RawMutations       int
	ProtectedMutations int
}

// Judge derives the verdict from a raw/protected execution pair.
func Judge(raw, prot Execution) Verdict {
	v := Verdict{
		SpawnLoop:             prot.Summary.SelfSpawns > SpawnLoopThreshold,
		Suppressed:            trace.Compare(raw.Summary, prot.Summary),
		UsedIsDebuggerPresent: prot.Summary.APICalls["IsDebuggerPresent"] > 0,
		RawMutations:          raw.Summary.Mutations(),
		ProtectedMutations:    prot.Summary.Mutations(),
	}
	v.Deactivated = v.SpawnLoop || !v.Suppressed.Empty()
	if v.Deactivated {
		v.Category = VerdictDeactivated
	}
	return v
}

// FirstTrigger renders the sample's first fingerprinting trigger the way
// Table I prints it: the reporting API, or "Hook detection" when the
// deception that fired was the planted prologue bytes, or "N/A" when
// Scarecrow never came into play.
func (r SampleResult) FirstTrigger() string {
	if len(r.Protected.Triggers) > 0 {
		t := r.Protected.Triggers[0]
		if t.Category == "network" {
			return t.API + "() [sinkhole " + t.Resource + "]"
		}
		if t.API == "GetModuleFileName" {
			return "The name of malware"
		}
		return t.API + "()"
	}
	if r.Verdict.Deactivated && r.Protected.HookDetectionLikely {
		return "Hook detection"
	}
	return "N/A"
}

// BehaviourWithout summarizes the raw run for Table I's second column.
func (r SampleResult) BehaviourWithout() string {
	return describe(r.Raw.Summary)
}

// BehaviourWith summarizes the protected run for Table I's third column.
func (r SampleResult) BehaviourWith() string {
	if r.Verdict.SpawnLoop {
		return "self-spawn loop"
	}
	return describe(r.Protected.Summary)
}

func describe(s trace.Summary) string {
	var parts []string
	if len(s.ProcessesCreated) > 0 {
		names := make([]string, 0, len(s.ProcessesCreated))
		for n := range s.ProcessesCreated {
			names = append(names, n)
		}
		sort.Strings(names)
		parts = append(parts, "create "+strings.Join(names, ", "))
	}
	if s.SelfSpawns > 0 {
		parts = append(parts, "spawn itself")
	}
	if len(s.FilesWritten) > 0 {
		parts = append(parts, plural(len(s.FilesWritten), "file write"))
	}
	if len(s.FilesDeleted) > 0 {
		parts = append(parts, plural(len(s.FilesDeleted), "file delete"))
	}
	if len(s.RegistryModified) > 0 {
		parts = append(parts, plural(len(s.RegistryModified), "registry mod"))
	}
	if s.Injections > 0 {
		parts = append(parts, plural(s.Injections, "injection"))
	}
	if len(parts) == 0 {
		return "no durable activity"
	}
	return strings.Join(parts, "; ")
}

func plural(n int, noun string) string {
	if n == 1 {
		return "1 " + noun
	}
	return strconv.Itoa(n) + " " + noun + "s"
}

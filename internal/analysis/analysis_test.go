package analysis

import (
	"strconv"
	"strings"
	"testing"

	"scarecrow/internal/core"
	"scarecrow/internal/malware"
	"scarecrow/internal/trace"
	"scarecrow/internal/winsim"
)

// TestTableI reproduces Table I: 12 of the 13 Joe Security samples are
// deactivated; only the PEB-reading cbdda64 survives; and each sample's
// first trigger matches the paper's trigger column.
func TestTableI(t *testing.T) {
	report := Table1(NewLab(42))
	if len(report.Rows) != 13 {
		t.Fatalf("rows = %d", len(report.Rows))
	}
	if got := report.DeactivatedCount(); got != 12 {
		t.Errorf("deactivated = %d, want 12", got)
	}
	wantTriggers := map[string]string{
		"9fac72a": "GlobalMemoryStatusEx()",
		"d80e956": "GetModuleHandle()",
		"0af4ef5": "Hook detection",
		"3616a11": "IsDebuggerPresent()",
		"f504ef6": "IsDebuggerPresent()",
		"cbdda64": "N/A",
		"9437eab": "NtQueryValueKey()",
		"40d19fb": "IsDebuggerPresent()",
		"ad0d7d0": "GetTickCount()",
		"06a4059": "NtQuerySystemInformation()",
		"f1a1288": "IsDebuggerPresent()",
		"61f847b": "IsDebuggerPresent()",
		"564ac87": "The name of malware",
	}
	for _, row := range report.Rows {
		want, ok := wantTriggers[row.SampleID]
		if !ok {
			t.Errorf("unexpected sample %s", row.SampleID)
			continue
		}
		if row.Trigger != want {
			t.Errorf("%s trigger = %q, want %q", row.SampleID, row.Trigger, want)
		}
		if (row.SampleID == "cbdda64") == row.Deactivated {
			t.Errorf("%s deactivated = %v", row.SampleID, row.Deactivated)
		}
	}
	if s := report.String(); !strings.Contains(s, "deactivated: 12/13") {
		t.Errorf("report rendering: %q", s)
	}
}

// TestTableIBehaviours spot-checks the behaviour columns of Table I.
func TestTableIBehaviours(t *testing.T) {
	report := Table1(NewLab(42))
	byID := map[string]Table1Row{}
	for _, row := range report.Rows {
		byID[row.SampleID] = row
	}
	// 61f847b encrypts file systems without Scarecrow, sleeps with it.
	if row := byID["61f847b"]; !strings.Contains(row.WithoutScarecrow, "file delete") {
		t.Errorf("61f847b raw behaviour = %q", row.WithoutScarecrow)
	}
	if row := byID["61f847b"]; row.WithScarecrow != "no durable activity" {
		t.Errorf("61f847b protected behaviour = %q", row.WithScarecrow)
	}
	// d80e956 creates svchost.exe and injects without Scarecrow.
	if row := byID["d80e956"]; !strings.Contains(row.WithoutScarecrow, "svchost.exe") ||
		!strings.Contains(row.WithoutScarecrow, "injection") {
		t.Errorf("d80e956 raw behaviour = %q", row.WithoutScarecrow)
	}
	// 3616a11 spawns itself under Scarecrow.
	if row := byID["3616a11"]; row.WithScarecrow != "self-spawn loop" {
		t.Errorf("3616a11 protected behaviour = %q", row.WithScarecrow)
	}
	// cbdda64 behaves identically in both runs.
	if row := byID["cbdda64"]; row.WithoutScarecrow != row.WithScarecrow {
		t.Errorf("cbdda64 behaviours differ: %q vs %q", row.WithoutScarecrow, row.WithScarecrow)
	}
}

// TestFigure4FullCorpus reproduces every aggregate of §IV-C and Figure 4
// from the complete 1,054-sample corpus. This is the heaviest test in the
// repository (~2,100 machine executions); -short skips it.
func TestFigure4FullCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("full corpus run skipped in -short mode")
	}
	report := Figure4(NewLab(42), malware.MalGeneCorpus())

	if report.Total != 1054 {
		t.Fatalf("total = %d, want 1054", report.Total)
	}
	if report.Deactivated != 944 {
		t.Errorf("deactivated = %d, want 944", report.Deactivated)
	}
	if rate := report.DeactivationRate(); rate < 89.55 || rate > 89.57 {
		t.Errorf("deactivation rate = %.2f%%, want 89.56%%", rate)
	}
	if report.SpawnLoopSamples != 823 {
		t.Errorf("spawn-loop samples = %d, want 823", report.SpawnLoopSamples)
	}
	if rate := report.SpawnLoopRate(); rate < 78.07 || rate > 78.09 {
		t.Errorf("spawn-loop rate = %.2f%%, want 78.08%%", rate)
	}
	if report.SpawnersUsingIsDebugger != 815 {
		t.Errorf("IsDebuggerPresent spawners = %d, want 815", report.SpawnersUsingIsDebugger)
	}

	symmi, ok := report.Family("Symmi")
	if !ok {
		t.Fatal("Symmi missing")
	}
	if symmi.Total != 484 || symmi.Deactivated != 478 || symmi.SpawnLoops != 473 ||
		symmi.CreatedProcesses != 26 || symmi.ModifiedFilesReg != 449 {
		t.Errorf("Symmi = %+v, want 484/478/473/26/449", symmi)
	}
	selfdel, ok := report.Family("Selfdel")
	if !ok {
		t.Fatal("Selfdel missing")
	}
	if selfdel.Total != 30 || selfdel.Deactivated > 5 {
		t.Errorf("Selfdel = %+v, want mostly indeterminate", selfdel)
	}
	if len(report.Families) != 61 {
		t.Errorf("families = %d, want 61", len(report.Families))
	}
	top := report.TopFamilies(10)
	if top[0].Family != "Symmi" {
		t.Errorf("top family = %s", top[0].Family)
	}
	if s := report.String(); !strings.Contains(s, "89.56%") {
		t.Errorf("rendering: %s", s)
	}
}

// TestFigure4Subset keeps a fast corpus check in the default test run: the
// first 60 samples are all Symmi debugger-spawners and must all deactivate
// via the spawn loop.
func TestFigure4Subset(t *testing.T) {
	corpus := malware.MalGeneCorpus()[:60]
	report := Figure4(NewLab(42), corpus)
	if report.Total != 60 || report.Deactivated != 60 {
		t.Fatalf("subset: %d/%d deactivated", report.Deactivated, report.Total)
	}
	if report.SpawnLoopSamples != 60 || report.SpawnersUsingIsDebugger != 60 {
		t.Errorf("subset spawners: loops=%d isdbg=%d", report.SpawnLoopSamples, report.SpawnersUsingIsDebugger)
	}
}

func TestBenignEvaluation(t *testing.T) {
	report, err := RunBenign(7)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Rows) != 20 {
		t.Fatalf("rows = %d", len(report.Rows))
	}
	if !report.AllUnaffected() {
		t.Errorf("benign software affected:\n%s", report)
	}
	for _, row := range report.Rows {
		if row.RawMutations == 0 {
			t.Errorf("%s performed no installs?", row.Program)
		}
	}
}

func TestCaseStudies(t *testing.T) {
	wc, err := RunCaseStudy(malware.WannaCry(), 7)
	if err != nil {
		t.Fatal(err)
	}
	if !wc.Verdict.Deactivated {
		t.Error("WannaCry not deactivated")
	}
	if wc.Verdict.RawMutations == 0 {
		t.Error("WannaCry inert without Scarecrow")
	}
	if len(wc.Triggers) == 0 || wc.Triggers[0].API != "DnsQuery" {
		t.Errorf("WannaCry trigger = %v", wc.Triggers)
	}

	lk, err := RunCaseStudy(malware.Locky(), 7)
	if err != nil {
		t.Fatal(err)
	}
	if !lk.Verdict.Deactivated {
		t.Error("Locky not deactivated")
	}

	// Kasidet self-deactivates on this end-user machine even without
	// Scarecrow (the VMware vmnet MAC), so its raw run shows nothing to
	// suppress; run it through the bare-metal lab instead.
	res := NewLab(7).RunSample(malware.Kasidet(), 1)
	if !res.Verdict.Deactivated {
		t.Error("Kasidet not deactivated on bare metal")
	}
	if res.Verdict.RawMutations == 0 {
		t.Error("Kasidet inert without Scarecrow on bare metal")
	}
}

func TestHookOverheadShape(t *testing.T) {
	unhooked, hooked, err := HookOverhead()
	if err != nil {
		t.Fatal(err)
	}
	if unhooked <= 0 || hooked <= 0 {
		t.Fatalf("costs: %v / %v", unhooked, hooked)
	}
	if hooked < unhooked {
		t.Errorf("hooked call cheaper than unhooked: %v < %v", hooked, unhooked)
	}
	// "Negligible overhead": interposition adds no modeled syscall cost.
	if hooked > 3*unhooked {
		t.Errorf("hook overhead out of band: %v vs %v", hooked, unhooked)
	}
}

func TestMitigationAlertsSurface(t *testing.T) {
	lab := NewLab(42)
	spawner := malware.CorpusSelfSpawner()
	res := lab.RunSample(spawner, 1)
	if len(res.Protected.Alerts) == 0 {
		t.Error("no mitigation alert for the 474-spawn exemplar")
	}
	if res.Protected.Summary.SelfSpawns != 474 {
		t.Errorf("exemplar spawns = %d, want 474", res.Protected.Summary.SelfSpawns)
	}
}

// TestProfileIsolationDefeatsDetector is the §VI-B counter-evolution
// experiment: conflicting-vendor probing unmasks a stock deployment, while
// profile isolation keeps the deception consistent and deactivates the
// detector.
func TestProfileIsolationDefeatsDetector(t *testing.T) {
	detector := malware.ScarecrowAware()

	stock := NewLab(42)
	res := stock.RunSample(detector, 1)
	if res.Verdict.Deactivated {
		t.Error("stock Scarecrow should be unmasked by conflicting vendors")
	}
	if res.Protected.Summary.Mutations() == 0 {
		t.Error("unmasked detector should have attacked")
	}

	isolated := NewLab(42)
	isolated.Config.ProfileIsolation = true
	res = isolated.RunSample(detector, 1)
	if !res.Verdict.Deactivated {
		t.Error("profile isolation should deactivate the detector")
	}
	if res.Protected.Summary.Mutations() != 0 {
		t.Error("detector attacked despite isolation")
	}
}

// TestTable2RunnerMatchesPaper re-checks a few signature cells through the
// analysis-level runner (the pafish package holds the exhaustive cell
// assertions).
func TestTable2RunnerMatchesPaper(t *testing.T) {
	r, err := Table2(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Environments) != 3 {
		t.Fatalf("environments = %v", r.Environments)
	}
	vm := r.Cells["VM sandbox"]
	if vm["VirtualBox"].Without != 16 || vm["VirtualBox"].With != 14 {
		t.Errorf("VM VirtualBox = %+v", vm["VirtualBox"])
	}
	if vm["CPU information"].Without != 3 || vm["CPU information"].With != 0 {
		t.Errorf("VM CPU = %+v", vm["CPU information"])
	}
	eu := r.Cells["End-user machine"]
	if eu["VMware"].Without != 1 || eu["VMware"].With != 4 {
		t.Errorf("EU VMware = %+v", eu["VMware"])
	}
	if !strings.Contains(r.String(), "VirtualBox") {
		t.Error("rendering")
	}
}

// TestTable3RunnerSteersClassifier verifies the end-to-end Table III
// outcome through the analysis-level runner.
func TestTable3RunnerSteersClassifier(t *testing.T) {
	r, err := Table3(7)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Steered() {
		t.Fatalf("classifier not steered: raw=%v protected=%v", r.RawLabel, r.ProtectedLabel)
	}
	if len(r.Rows) != 16 {
		t.Errorf("faked artifacts = %d, want 16", len(r.Rows))
	}
	if r.TreeAccuracy < 0.95 {
		t.Errorf("tree accuracy = %.2f", r.TreeAccuracy)
	}
	for _, row := range r.Rows {
		if row.Artifact == "dnscacheEntries" && row.FakedValue != 4 {
			t.Errorf("dnscacheEntries faked to %.0f", row.FakedValue)
		}
		if row.Artifact == "regSize" && row.FakedValue != 53 {
			t.Errorf("regSize faked to %.0f MB", row.FakedValue)
		}
	}
}

// TestKernelExtensionClosesBypass verifies the implemented §VI-A future
// work: samples probing via raw syscalls defeat the paper's user-level
// deployment but not the kernel syscall gate.
func TestKernelExtensionClosesBypass(t *testing.T) {
	report := KernelExtension(42)
	if report.Samples < 20 {
		t.Fatalf("direct-syscall samples = %d", report.Samples)
	}
	if report.DeactivatedUserOnly != 0 {
		t.Errorf("user-only deployment deactivated %d raw-syscall samples, want 0", report.DeactivatedUserOnly)
	}
	if report.DeactivatedWithGate != report.Samples {
		t.Errorf("kernel gate deactivated %d/%d: %v",
			report.DeactivatedWithGate, report.Samples, report.StillFailing)
	}
}

// TestEvasionBaseline quantifies the motivation: most of the evasive
// corpus hides inside a stock sandbox without any Scarecrow involved.
func TestEvasionBaseline(t *testing.T) {
	full := malware.MalGeneCorpus()
	var slice []*malware.Specimen
	for i := 0; i < len(full); i += len(full) / 150 {
		slice = append(slice, full[i])
	}
	report, err := EvasionBaseline(slice, 42)
	if err != nil {
		t.Fatal(err)
	}
	if rate := report.EvasionRate(); rate < 75 {
		t.Errorf("sandbox evasion rate = %.1f%%, want the large majority (paper cites >80%% of malware evading)", rate)
	}
}

// TestToolKillerStoppedByProtectedDecoys exercises §II-B(b)'s process
// protection: the tool-killing sample acts freely on a clean host but
// stands down when Scarecrow's decoy forensic tools refuse to die.
func TestToolKillerStoppedByProtectedDecoys(t *testing.T) {
	res := NewLab(42).RunSample(malware.ToolKiller(), 1)
	if res.Verdict.RawMutations == 0 {
		t.Fatal("tool killer inert without Scarecrow")
	}
	if !res.Verdict.Deactivated {
		t.Error("tool killer not deactivated by protected decoys")
	}
	if res.Verdict.ProtectedMutations != 0 {
		t.Error("tool killer acted despite unkillable decoys")
	}
}

// TestRunCorpusParallelConsistency: the parallel cluster produces exactly
// the results a one-worker cluster does (each run owns its machine, so
// parallelism must not perturb verdicts).
func TestRunCorpusParallelConsistency(t *testing.T) {
	corpus := malware.MalGeneCorpus()[:40]
	serial := NewLab(42)
	serial.Workers = 1
	parallel := NewLab(42)
	parallel.Workers = 8
	a := serial.RunCorpus(corpus)
	b := parallel.RunCorpus(corpus)
	for i := range a {
		va, vb := a[i].Verdict, b[i].Verdict
		if va.Deactivated != vb.Deactivated || va.SpawnLoop != vb.SpawnLoop ||
			va.RawMutations != vb.RawMutations || va.ProtectedMutations != vb.ProtectedMutations {
			t.Errorf("sample %s: serial %+v vs parallel %+v", a[i].Specimen.ID, va, vb)
		}
	}
}

// TestLabDeterminism: identical labs produce identical reports.
func TestLabDeterminism(t *testing.T) {
	corpus := malware.MalGeneCorpus()[:30]
	r1 := Figure4(NewLab(42), corpus)
	r2 := Figure4(NewLab(42), corpus)
	if r1.Deactivated != r2.Deactivated || r1.SpawnLoopSamples != r2.SpawnLoopSamples {
		t.Errorf("reports differ: %+v vs %+v", r1, r2)
	}
	// A different seed still yields the same verdicts (mechanisms, not
	// randomness, drive outcomes).
	r3 := Figure4(NewLab(977), corpus)
	if r1.Deactivated != r3.Deactivated {
		t.Errorf("verdicts seed-sensitive: %d vs %d", r1.Deactivated, r3.Deactivated)
	}
}

// TestVerdictJudgeDirectly covers the verdict matrix on synthetic
// executions.
func TestVerdictJudgeDirectly(t *testing.T) {
	mut := func(files int, spawns int, isdbg int) Execution {
		sum := trace.Summary{
			ProcessesCreated: map[string]int{},
			FilesWritten:     map[string]int{},
			FilesDeleted:     map[string]int{},
			RegistryModified: map[string]int{},
			APICalls:         map[string]int{"IsDebuggerPresent": isdbg},
			DNSQueries:       map[string]int{},
			SelfSpawns:       spawns,
		}
		for i := 0; i < files; i++ {
			sum.FilesWritten["c:\\f"+strconv.Itoa(i)] = 1
		}
		return Execution{Summary: sum}
	}
	tests := []struct {
		name        string
		raw, prot   Execution
		deactivated bool
		spawnLoop   bool
	}{
		{"suppressed payload", mut(3, 0, 0), mut(0, 0, 0), true, false},
		{"spawn loop", mut(2, 0, 0), mut(2, 400, 400), true, true},
		{"identical behaviour", mut(2, 0, 0), mut(2, 0, 0), false, false},
		{"inert both", mut(0, 0, 0), mut(0, 0, 0), false, false},
		{"below spawn threshold", mut(1, 0, 0), mut(1, 5, 5), false, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			v := Judge(tt.raw, tt.prot)
			if v.Deactivated != tt.deactivated || v.SpawnLoop != tt.spawnLoop {
				t.Errorf("verdict = %+v", v)
			}
		})
	}
}

// TestReportRenderings covers every report's String form on small inputs.
func TestReportRenderings(t *testing.T) {
	fig := Figure4(NewLab(42), malware.MalGeneCorpus()[:12])
	if s := fig.String(); !strings.Contains(s, "Figure 4") || !strings.Contains(s, "Symmi") {
		t.Errorf("figure rendering: %q", s)
	}
	if fig.DeactivationRate() <= 0 || fig.SpawnLoopRate() <= 0 {
		t.Error("rates")
	}
	if _, ok := fig.Family("Symmi"); !ok {
		t.Error("family lookup")
	}
	if _, ok := fig.Family("Nope"); ok {
		t.Error("bogus family found")
	}
	if top := fig.TopFamilies(100); len(top) == 0 {
		t.Error("top families")
	}

	benign, err := RunBenign(7)
	if err != nil {
		t.Fatal(err)
	}
	if s := benign.String(); !strings.Contains(s, "all unaffected") {
		t.Errorf("benign rendering: %q", s)
	}
	cs, err := RunCaseStudy(malware.Locky(), 7)
	if err != nil {
		t.Fatal(err)
	}
	if s := cs.String(); !strings.Contains(s, "deactivated=true") {
		t.Errorf("case rendering: %q", s)
	}
	ke := KernelExtension(42)
	if s := ke.String(); !strings.Contains(s, "kernel gate") {
		t.Errorf("kernel rendering: %q", s)
	}
	eb := EvasionBaselineReport{Samples: 10, EvadedSandbox: 8}
	if s := eb.String(); !strings.Contains(s, "80.0%") {
		t.Errorf("baseline rendering: %q", s)
	}
	cr := CrawlReport{Files: 1, Processes: 2, RegistryKeys: 3}
	if s := cr.String(); !strings.Contains(s, "unique files") {
		t.Errorf("crawl rendering: %q", s)
	}
}

// TestFullStackLadder quantifies the §VI-A ladder over the residual 110
// samples: the kernel gate recovers the raw-syscall probes, the deception
// hypervisor recovers the timing probes, and direct PEB reads plus the
// indeterminate Selfdel family remain.
func TestFullStackLadder(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full corpus to find the residual set")
	}
	r := FullStack(42)
	if r.Samples != 110 {
		t.Fatalf("residual = %d, want 110", r.Samples)
	}
	if len(r.Tiers) != 3 {
		t.Fatalf("tiers = %d", len(r.Tiers))
	}
	if r.Tiers[0].Deactivated != 0 {
		t.Errorf("user tier recovered %d", r.Tiers[0].Deactivated)
	}
	if r.Tiers[1].Deactivated != 24 {
		t.Errorf("kernel tier recovered %d, want the 24 raw-syscall samples", r.Tiers[1].Deactivated)
	}
	if r.Tiers[2].Deactivated != 52 {
		t.Errorf("hypervisor tier recovered %d, want 52 (24 syscall + 28 timing)", r.Tiers[2].Deactivated)
	}
	if !strings.Contains(r.String(), "residual corpus") {
		t.Error("rendering")
	}
}

// TestSignatureSurvey runs the §II-C learning pipeline over a stratified
// corpus slice: most samples yield an evasion signature, API probes
// dominate (IsDebuggerPresent, as §IV-C reports), and resource-type
// signatures fold into the database.
func TestSignatureSurvey(t *testing.T) {
	full := malware.MalGeneCorpus()
	var slice []*malware.Specimen
	for i := 0; i < len(full); i += len(full) / 100 {
		slice = append(slice, full[i])
	}
	survey, err := SurveySignatures(slice, 42)
	if err != nil {
		t.Fatal(err)
	}
	if survey.Extracted < survey.Samples/2 {
		t.Errorf("extracted %d/%d signatures", survey.Extracted, survey.Samples)
	}
	if survey.ByAPI["IsDebuggerPresent"] == 0 {
		t.Error("IsDebuggerPresent absent from API-probe signatures")
	}
	if survey.ByKind["APICall"] == 0 {
		t.Errorf("kinds = %v", survey.ByKind)
	}
	if s := survey.String(); !strings.Contains(s, "signature survey") {
		t.Error("rendering")
	}
}

// TestFigure4DeploymentSiteInvariance re-runs the full corpus with the
// cluster machines swapped for end-user machines (Scarecrow's actual
// deployment target): the aggregates must hold — deactivation is driven
// by the deception, not by the bare-metal lab.
func TestFigure4DeploymentSiteInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("full corpus run skipped in -short mode")
	}
	lab := NewLab(42)
	lab.Profile = winsim.ProfileEndUser
	lab.Config = core.RecommendedConfig(string(winsim.ProfileEndUser))
	report := Figure4(lab, malware.MalGeneCorpus())
	if report.Deactivated != 944 {
		t.Errorf("deactivated on end-user machines = %d, want 944", report.Deactivated)
	}
	if report.SpawnLoopSamples != 823 {
		t.Errorf("spawn loops on end-user machines = %d, want 823", report.SpawnLoopSamples)
	}
}

package analysis

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
	"testing/quick"

	"scarecrow/internal/malware"
	"scarecrow/internal/trace"
)

// stratifiedCorpus returns every len/n-th sample of the MalGene corpus —
// about n samples spanning all 61 families and every evasion mechanism, the
// same slicing TestSignatureSurvey uses.
func stratifiedCorpus(n int) []*malware.Specimen {
	full := malware.MalGeneCorpus()
	step := len(full) / n
	if step < 1 {
		step = 1
	}
	var out []*malware.Specimen
	for i := 0; i < len(full); i += step {
		out = append(out, full[i])
	}
	return out
}

// TestDifferentialPooledVsFresh is the headline harness of the snapshot
// pool: two sweeps over a stratified ~100-sample corpus slice, one cloning
// machines from the per-profile template snapshot (the default) and one
// rebuilding every machine from scratch (DisablePooling), must produce
// bit-identical SampleResults — verdicts, trace summaries, trigger streams,
// alerts, virtual clocks, everything. Any divergence means a clone leaked
// state the sharing contract in winsim/snapshot.go promised it would not.
func TestDifferentialPooledVsFresh(t *testing.T) {
	corpus := stratifiedCorpus(100)

	pooled := NewLab(42)
	fresh := NewLab(42)
	fresh.DisablePooling = true

	pooledResults, pooledReport := pooled.Sweep(corpus)
	freshResults, freshReport := fresh.Sweep(corpus)

	if len(pooledResults) != len(freshResults) {
		t.Fatalf("result counts differ: pooled %d, fresh %d", len(pooledResults), len(freshResults))
	}
	mismatches := 0
	for i := range pooledResults {
		if !reflect.DeepEqual(pooledResults[i], freshResults[i]) {
			mismatches++
			if mismatches <= 3 {
				t.Errorf("sample %s diverged:\npooled: %+v\nfresh:  %+v",
					corpus[i].ID, pooledResults[i], freshResults[i])
			}
		}
	}
	if mismatches > 0 {
		t.Fatalf("%d/%d samples diverged between pooled and fresh sweeps", mismatches, len(corpus))
	}

	// Sweep health must match too, apart from wall-clock time.
	pooledReport.Wall, freshReport.Wall = 0, 0
	if !reflect.DeepEqual(pooledReport, freshReport) {
		t.Errorf("sweep reports diverged:\npooled: %+v\nfresh:  %+v", pooledReport, freshReport)
	}
}

// TestDifferentialTable1 re-runs the Table I experiment both ways: the
// pooled rows must equal the fresh-build rows cell for cell, and both must
// still deactivate 12 of 13 samples as the paper reports.
func TestDifferentialTable1(t *testing.T) {
	pooledLab := NewLab(42)
	freshLab := NewLab(42)
	freshLab.DisablePooling = true

	pooled := Table1(pooledLab)
	fresh := Table1(freshLab)

	if !reflect.DeepEqual(pooled.Rows, fresh.Rows) {
		t.Errorf("Table 1 rows diverged:\npooled: %+v\nfresh:  %+v", pooled.Rows, fresh.Rows)
	}
	if got := pooled.DeactivatedCount(); got != 12 {
		t.Errorf("pooled Table 1 deactivated %d/13 samples, paper reports 12", got)
	}
}

// TestPooledRunDeterminism is the testing/quick property behind the pool:
// for any (sample, seed) pair, running the sample twice through the same
// pooled lab yields identical results — the template snapshot is never
// perturbed by the runs cloned from it.
func TestPooledRunDeterminism(t *testing.T) {
	corpus := stratifiedCorpus(100)
	lab := NewLab(42)
	property := func(sampleIdx uint16, seed int64) bool {
		s := corpus[int(sampleIdx)%len(corpus)]
		a := lab.RunSample(s, seed)
		b := lab.RunSample(s, seed)
		return reflect.DeepEqual(a, b)
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 15}); err != nil {
		t.Errorf("pooled runs are not deterministic: %v", err)
	}
}

// TestPooledClonesDoNotShareRecorder is the regression test for the
// template-reuse bug class: machines cloned from the same snapshot must not
// share a trace.Recorder (or RNG), or concurrent runs interleave each
// other's kernel events. Run under -race this also catches unsynchronized
// sharing that happens to produce disjoint traces.
func TestPooledClonesDoNotShareRecorder(t *testing.T) {
	lab := NewLab(42)
	m1 := lab.acquireMachine(1)
	m2 := lab.acquireMachine(2)
	if m1 == m2 {
		t.Fatal("acquireMachine returned the same machine twice")
	}
	if m1.Tracer == m2.Tracer {
		t.Fatal("cloned machines share a trace.Recorder")
	}
	if m1.Rand() == m2.Rand() {
		t.Fatal("cloned machines share an RNG")
	}

	// Concurrent clones each record their own marker stream; afterwards
	// every machine's trace must contain only its own markers.
	const clones, events = 8, 200
	machines := make([]int, clones)
	var wg sync.WaitGroup
	for c := 0; c < clones; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			m := lab.acquireMachine(int64(100 + c))
			for i := 0; i < events; i++ {
				m.Tracer.Record(trace.Event{
					Kind:   trace.KindFileWrite,
					Target: fmt.Sprintf("clone-%d", c),
				})
			}
			machines[c] = countForeign(m.Tracer, fmt.Sprintf("clone-%d", c))
		}(c)
	}
	wg.Wait()
	for c, foreign := range machines {
		if foreign != 0 {
			t.Errorf("clone %d saw %d events from other clones in its trace", c, foreign)
		}
	}
}

// countForeign returns how many recorded events do not carry the given
// target marker.
func countForeign(r *trace.Recorder, marker string) int {
	n := 0
	for _, e := range r.Events() {
		if e.Target != marker {
			n++
		}
	}
	return n
}

package analysis

import (
	"bytes"
	"testing"

	"scarecrow/internal/deter"
	"scarecrow/internal/malware"
)

// Stock ransomware on an unprotected machine must be detected and killed
// before it costs more than a handful of real files — the deterrence
// tier's headline guarantee.
func TestMonitoredWannaCryDeterred(t *testing.T) {
	l := NewLab(1)
	res := l.RunMonitoredSeeded(malware.WannaCry(), 42, MonitorOptions{})
	if res.Err != nil {
		t.Fatalf("monitored run failed: %v\n%s", res.Err, res.Stack)
	}
	if res.Category != VerdictDeterred {
		t.Fatalf("category = %s, want deterred (outcome: %+v)", res.Category, res.Outcome)
	}
	if !res.Outcome.Detected || len(res.Outcome.Detections) == 0 {
		t.Fatalf("deterred without detections: %+v", res.Outcome)
	}
	if res.Outcome.FilesLost > 5 {
		t.Fatalf("lost %d real files before the kill, want <= 5", res.Outcome.FilesLost)
	}
	if res.Outcome.TimeToDetect <= 0 || res.Outcome.EnforcedAt < res.Outcome.TimeToDetect {
		t.Fatalf("implausible timeline: detect at %v, enforce at %v",
			res.Outcome.TimeToDetect, res.Outcome.EnforcedAt)
	}
	if res.Outcome.CanariesTouched == 0 {
		t.Fatalf("no canary was touched; detection rested on %v", res.Outcome.Detections[0].Signal)
	}
}

// The gated variants pass their evasive checks on bare metal (that is
// their point) and must still be deterred, including the MalGene stand-in.
func TestMonitoredGatedVariantsDeterred(t *testing.T) {
	l := NewLab(1)
	for _, name := range []string{"wannacry-gated", "locky-gated", "cryptowall", "locky"} {
		s, err := malware.Resolve(name)
		if err != nil {
			t.Fatalf("resolve %s: %v", name, err)
		}
		res := l.RunMonitoredSeeded(s, 7, MonitorOptions{})
		if res.Err != nil {
			t.Fatalf("%s: %v", name, res.Err)
		}
		if res.Category != VerdictDeterred {
			t.Errorf("%s: category = %s, want deterred", name, res.Category)
		}
		if res.Outcome.FilesLost > 5 {
			t.Errorf("%s: lost %d files before kill, want <= 5", name, res.Outcome.FilesLost)
		}
	}
}

// Observe mode reports without enforcing: the payload runs to completion
// and the loss counter shows what deterrence prevented.
func TestMonitoredObserveMode(t *testing.T) {
	l := NewLab(1)
	res := l.RunMonitoredSeeded(malware.WannaCry(), 42, MonitorOptions{Action: deter.ActionObserve})
	if res.Err != nil {
		t.Fatalf("observe run failed: %v", res.Err)
	}
	if res.Category != VerdictSurvived || res.Outcome.Deterred {
		t.Fatalf("observe mode must never deter: %s %+v", res.Category, res.Outcome)
	}
	if !res.Outcome.Detected {
		t.Fatalf("observe mode still detects; got none")
	}
	if res.Outcome.FilesLost == 0 {
		t.Fatalf("unenforced ransomware lost no files — the kill-mode comparison is meaningless")
	}
	if len(res.Outcome.TamperedCanaries) == 0 {
		t.Fatalf("unenforced ransomware left canaries untampered")
	}
}

// Throttle mode must also deter: injected delay closes the window on the
// payload.
func TestMonitoredThrottleDeterred(t *testing.T) {
	l := NewLab(1)
	res := l.RunMonitoredSeeded(malware.WannaCry(), 42, MonitorOptions{Action: deter.ActionThrottle})
	if res.Err != nil {
		t.Fatalf("throttle run failed: %v", res.Err)
	}
	if res.Category != VerdictDeterred {
		t.Fatalf("throttle category = %s, want deterred", res.Category)
	}
}

// The monitored doc is byte-identical with pooling on and off — the
// differential-harness guarantee extended to the deterrence tier.
func TestMonitoredDifferentialPooling(t *testing.T) {
	run := func(disable bool) []byte {
		l := NewLab(1)
		l.DisablePooling = disable
		res := l.RunMonitoredSeeded(malware.WannaCry(), 9, MonitorOptions{})
		if res.Err != nil {
			t.Fatalf("run (pooling disabled=%v): %v", disable, res.Err)
		}
		b, err := res.Doc().Marshal()
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		return b
	}
	pooled, fresh := run(false), run(true)
	if !bytes.Equal(pooled, fresh) {
		t.Fatalf("pooled and from-scratch monitored docs differ:\n%s\nvs\n%s", pooled, fresh)
	}
}

// A specimen that never does anything destructive survives unmolested —
// no false-positive enforcement on benign-looking activity.
func TestMonitoredBenignSurvives(t *testing.T) {
	l := NewLab(1)
	s, err := malware.Resolve("spawner")
	if err != nil {
		t.Fatalf("resolve: %v", err)
	}
	res := l.RunMonitoredSeeded(s, 3, MonitorOptions{})
	if res.Err != nil {
		t.Fatalf("run: %v", res.Err)
	}
	if res.Category != VerdictSurvived {
		t.Fatalf("non-ransomware specimen got %s (detections: %v)", res.Category, res.Outcome.Detections)
	}
}

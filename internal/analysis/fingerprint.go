package analysis

import (
	"fmt"
	"strings"
	"time"

	"scarecrow/internal/core"
	"scarecrow/internal/pafish"
	"scarecrow/internal/weartear"
	"scarecrow/internal/winapi"
	"scarecrow/internal/winsim"
)

// Table2Cell is one (environment, category) pair of Table II.
type Table2Cell struct {
	With    int
	Without int
}

// Table2Report reproduces Table II: Pafish trigger counts per category on
// the three environments, with and without Scarecrow.
type Table2Report struct {
	// Environments in column order: bare-metal sandbox, VM sandbox,
	// end-user machine.
	Environments []string
	// Cells maps environment -> category -> counts.
	Cells map[string]map[string]Table2Cell
	// Totals maps category -> feature count.
	Totals map[string]int
}

// String renders the table.
func (r Table2Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-24s", "Feature Categories")
	for _, env := range r.Environments {
		fmt.Fprintf(&sb, " | %-13s", clip(env, 13))
	}
	sb.WriteString("\n")
	fmt.Fprintf(&sb, "%-24s", "(# of features)")
	for range r.Environments {
		fmt.Fprintf(&sb, " | %5s %5s ", "w/", "w/o")
	}
	sb.WriteString("\n" + strings.Repeat("-", 24+len(r.Environments)*16) + "\n")
	for _, cat := range pafish.CategoryOrder {
		fmt.Fprintf(&sb, "%-20s (%2d)", clip(cat, 20), r.Totals[cat])
		for _, env := range r.Environments {
			cell := r.Cells[env][cat]
			fmt.Fprintf(&sb, " | %5d %5d ", cell.With, cell.Without)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// pafishOn runs the Pafish battery on a machine profile, optionally under
// Scarecrow.
func pafishOn(profile winsim.ProfileName, seed int64, protected bool) (pafish.Report, error) {
	m := winsim.NewProfileMachine(profile, seed)
	sys := winapi.NewSystem(m)
	var report pafish.Report
	sys.RegisterProgram(`C:\pafish\pafish.exe`, func(ctx *winapi.Context) int {
		report = pafish.Run(ctx)
		return winapi.ExitOK
	})
	if protected {
		ctrl, err := core.Deploy(sys, core.NewEngine(core.NewDB(), core.RecommendedConfig(string(profile))))
		if err != nil {
			return pafish.Report{}, fmt.Errorf("analysis: deploying scarecrow on %s: %w", profile, err)
		}
		if _, err := ctrl.LaunchTarget(`C:\pafish\pafish.exe`, "pafish.exe"); err != nil {
			return pafish.Report{}, fmt.Errorf("analysis: launching pafish: %w", err)
		}
	} else {
		shells := m.Procs.FindByImage("explorer.exe")
		if len(shells) == 0 {
			return pafish.Report{}, fmt.Errorf("analysis: profile %q has no explorer.exe to launch pafish from", profile)
		}
		sys.Launch(`C:\pafish\pafish.exe`, "pafish.exe", shells[0])
	}
	sys.Run(ObservationWindow)
	return report, nil
}

// Table2 reproduces the Table II experiment. The with-Scarecrow VM column
// uses the hardened Cuckoo guest, matching the paper's setup (CPUID
// results and MAC updated alongside the Scarecrow deployment).
func Table2(seed int64) (Table2Report, error) {
	type envSpec struct {
		name string
		raw  winsim.ProfileName
		sc   winsim.ProfileName
	}
	envs := []envSpec{
		{"Bare-metal sandbox", winsim.ProfileBareMetalSandbox, winsim.ProfileBareMetalSandbox},
		{"VM sandbox", winsim.ProfileCuckooSandbox, winsim.ProfileCuckooHardened},
		{"End-user machine", winsim.ProfileEndUser, winsim.ProfileEndUser},
	}
	report := Table2Report{Cells: make(map[string]map[string]Table2Cell)}
	for _, env := range envs {
		report.Environments = append(report.Environments, env.name)
		with, err := pafishOn(env.sc, seed, true)
		if err != nil {
			return Table2Report{}, err
		}
		without, err := pafishOn(env.raw, seed, false)
		if err != nil {
			return Table2Report{}, err
		}
		cells := make(map[string]Table2Cell)
		wc, woc := with.CategoryCounts(), without.CategoryCounts()
		for _, cat := range pafish.CategoryOrder {
			cells[cat] = Table2Cell{With: wc[cat], Without: woc[cat]}
		}
		report.Cells[env.name] = cells
		if report.Totals == nil {
			report.Totals = with.CategoryTotals()
		}
	}
	return report, nil
}

// Table3Row is one faked artifact of Table III with its steered value.
type Table3Row struct {
	Artifact     string
	Category     string
	Top5         bool
	GenuineValue float64
	FakedValue   float64
	APIs         []string
}

// Table3Report reproduces the wear-and-tear experiment: artifact steering
// plus the classifier flip.
type Table3Report struct {
	Rows []Table3Row
	// RawLabel and ProtectedLabel are the decision-tree classifications of
	// the end-user machine without and with the wear-and-tear extension.
	RawLabel       weartear.Label
	ProtectedLabel weartear.Label
	// TreeAccuracy is the classifier's holdout accuracy.
	TreeAccuracy float64
}

// Steered reports whether Scarecrow flipped the classification.
func (r Table3Report) Steered() bool {
	return r.RawLabel == weartear.LabelEndUser && r.ProtectedLabel == weartear.LabelSandbox
}

// String renders the report like Table III (artifact, faked value, APIs).
func (r Table3Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-18s %-9s %-5s %10s %10s  %s\n", "artifact", "category", "top5", "genuine", "faked", "associated APIs")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%-18s %-9s %-5v %10.0f %10.0f  %s\n",
			row.Artifact, row.Category, row.Top5, row.GenuineValue, row.FakedValue,
			strings.Join(row.APIs, ","))
	}
	fmt.Fprintf(&sb, "classifier: raw end-user -> %s, with scarecrow -> %s (holdout accuracy %.2f)\n",
		r.RawLabel, r.ProtectedLabel, r.TreeAccuracy)
	return sb.String()
}

// Table3 reproduces the wear-and-tear steering experiment of Table III.
func Table3(seed int64) (Table3Report, error) {
	tree, err := weartear.TrainDefault(seed)
	if err != nil {
		return Table3Report{}, fmt.Errorf("analysis: training wear-and-tear tree: %w", err)
	}
	holdout := weartear.Corpus(20, seed+99)

	genuine := weartear.ExtractFrom(winsim.NewEndUserMachine(seed))

	m := winsim.NewEndUserMachine(seed)
	sys := winapi.NewSystem(m)
	var deceived []float64
	sys.RegisterProgram(`C:\weartear\prober.exe`, func(ctx *winapi.Context) int {
		deceived = weartear.Vector(ctx)
		return winapi.ExitOK
	})
	cfg := core.RecommendedConfig(m.Profile)
	cfg.WearAndTear = true
	ctrl, err := core.Deploy(sys, core.NewEngine(core.NewDB(), cfg))
	if err != nil {
		return Table3Report{}, fmt.Errorf("analysis: deploying scarecrow: %w", err)
	}
	if _, err := ctrl.LaunchTarget(`C:\weartear\prober.exe`, "prober.exe"); err != nil {
		return Table3Report{}, fmt.Errorf("analysis: launching prober: %w", err)
	}
	sys.Run(ObservationWindow)

	report := Table3Report{
		RawLabel:       tree.Classify(genuine),
		ProtectedLabel: tree.Classify(deceived),
		TreeAccuracy:   tree.Accuracy(holdout),
	}
	for i, art := range weartear.All() {
		if !art.Faked {
			continue
		}
		report.Rows = append(report.Rows, Table3Row{
			Artifact:     art.Name,
			Category:     art.Category,
			Top5:         art.Top5,
			GenuineValue: genuine[i],
			FakedValue:   deceived[i],
			APIs:         art.APIs,
		})
	}
	return report, nil
}

// CrawlReport wraps the §II-C crawl outcome for the CLI.
type CrawlReport struct {
	Files        int
	Processes    int
	RegistryKeys int
	Elapsed      time.Duration
}

// String renders the crawl summary.
func (r CrawlReport) String() string {
	return fmt.Sprintf("crawl-and-diff: %d unique files, %d unique processes, %d unique registry entries (%.1fs)",
		r.Files, r.Processes, r.RegistryKeys, r.Elapsed.Seconds())
}

//go:build race

package analysis

// raceEnabled reports whether this test binary was built with the race
// detector, which deliberately defeats sync.Pool reuse to expose races —
// making pooled-path allocation budgets unmeasurable.
const raceEnabled = true

package analysis

import (
	"fmt"
	"strings"

	"scarecrow/internal/malware"
	"scarecrow/internal/trace"
	"scarecrow/internal/winapi"
	"scarecrow/internal/winsim"
)

// KernelExtensionReport compares user-only hooking against the §VI-A
// kernel extension on the corpus samples that bypass user-mode hooks via
// raw syscalls.
type KernelExtensionReport struct {
	Samples             int
	DeactivatedUserOnly int
	DeactivatedWithGate int
	StillFailing        []string // sample IDs surviving even the kernel gate
}

// String renders the report.
func (r KernelExtensionReport) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "direct-syscall samples: %d\n", r.Samples)
	fmt.Fprintf(&sb, "deactivated, user-level hooks only: %d\n", r.DeactivatedUserOnly)
	fmt.Fprintf(&sb, "deactivated, with the kernel gate:  %d\n", r.DeactivatedWithGate)
	if len(r.StillFailing) > 0 {
		fmt.Fprintf(&sb, "still failing: %s\n", strings.Join(r.StillFailing, ", "))
	}
	return sb.String()
}

// KernelExtension runs every direct-syscall sample of the corpus twice:
// under the stock user-level deployment (where the paper's implementation
// fails) and with the kernel syscall gate enabled (the §VI-A future work,
// implemented).
func KernelExtension(seed int64) KernelExtensionReport {
	var directSamples []*malware.Specimen
	for _, s := range malware.MalGeneCorpus() {
		if strings.Contains(s.Notes, "raw-syscall") {
			directSamples = append(directSamples, s)
		}
	}
	report := KernelExtensionReport{Samples: len(directSamples)}

	user := NewLab(seed)
	for _, res := range user.RunCorpus(directSamples) {
		if res.Verdict.Deactivated {
			report.DeactivatedUserOnly++
		}
	}

	kernel := NewLab(seed)
	kernel.Config.KernelHooks = true
	for _, res := range kernel.RunCorpus(directSamples) {
		if res.Verdict.Deactivated {
			report.DeactivatedWithGate++
		} else {
			report.StillFailing = append(report.StillFailing, res.Specimen.ID)
		}
	}
	return report
}

// EvasionBaselineReport quantifies the motivation behind the paper: how
// much of the evasive corpus goes quiet inside analysis environments (the
// >80%-of-malware-evades statistic the introduction cites). Samples are
// run raw — no Scarecrow anywhere — on a clean reference machine and on
// the analysis rigs the MalGene dataset was confirmed against: a
// freshly-reverted single-core emulator-like guest, a debugger rig, and a
// Sandboxie rig.
type EvasionBaselineReport struct {
	Samples int
	// EvadedSandbox counts samples whose mutating behaviour on the clean
	// reference machine disappears inside at least one analysis rig.
	EvadedSandbox int
	// PerRig counts evasions per rig name.
	PerRig map[string]int
}

// EvasionRate returns the percentage of samples evading the sandbox.
func (r EvasionBaselineReport) EvasionRate() float64 {
	if r.Samples == 0 {
		return 0
	}
	return 100 * float64(r.EvadedSandbox) / float64(r.Samples)
}

// String renders the report.
func (r EvasionBaselineReport) String() string {
	return fmt.Sprintf("evasion baseline: %d/%d samples (%.1f%%) change behaviour inside at least one stock analysis rig",
		r.EvadedSandbox, r.Samples, r.EvasionRate())
}

// EvasionBaseline runs corpus samples raw on the clean reference and on
// each analysis rig, counting how many evade at least one rig. This is the
// problem statement, not the defense.
func EvasionBaseline(samples []*malware.Specimen, seed int64) (EvasionBaselineReport, error) {
	report := EvasionBaselineReport{Samples: len(samples), PerRig: make(map[string]int)}
	rigs := analysisRigs()
	for i, s := range samples {
		ref, err := rawOn(nil, s, seed+int64(i))
		if err != nil {
			return EvasionBaselineReport{}, err
		}
		evaded := false
		for _, rig := range rigs {
			inRig, err := rawOn(rig.prepare, s, seed+int64(i))
			if err != nil {
				return EvasionBaselineReport{}, err
			}
			if behaviourDiverges(ref, inRig) {
				report.PerRig[rig.name]++
				evaded = true
			}
		}
		if evaded {
			report.EvadedSandbox++
		}
	}
	return report, nil
}

// behaviourDiverges implements the MalGene confirmation criterion: the
// sample did something on the reference machine and its runtime behaviour
// in the rig differs — activities suppressed, or evasive reactions (such
// as the debugger-escape respawn) appearing that the reference never
// showed.
func behaviourDiverges(ref, inRig trace.Summary) bool {
	if ref.Mutations() == 0 {
		return false
	}
	return !trace.Compare(ref, inRig).Empty() || inRig.SelfSpawns != ref.SelfSpawns
}

// rig is one analysis environment of the baseline suite: a machine
// mutator applied between launch and execution.
type rig struct {
	name    string
	prepare func(m *winsim.Machine, root *winsim.Process)
}

// analysisRigs returns the environments the baseline compares against.
func analysisRigs() []rig {
	return []rig{
		{"emulator-guest", func(m *winsim.Machine, root *winsim.Process) {
			// A freshly reverted single-core emulator-like guest running
			// samples from the canonical path (approximating the Anubis
			// environment the MalGene corpus came from).
			m.Clock.SetDeadline(0)
			m.HW.NumCores = 1
			m.HW.RAMBytes = 512 << 20
			root.PEB.NumberOfProcessors = 1
		}},
		{"debugger-rig", func(m *winsim.Machine, root *winsim.Process) {
			m.DebuggerAttachedPIDs[root.PID] = true
			root.PEB.BeingDebugged = true
			m.KernelDebuggerPresent = true
			dbg := m.Procs.Create(`C:	ools\ollydbg.exe`, "ollydbg.exe", 4, 0)
			dbg.State = winsim.ProcessRunning
			m.Windows.Add(winsim.Window{Class: "OLLYDBG", Title: "OllyDbg", PID: dbg.PID})
		}},
		{"sandboxie-rig", func(m *winsim.Machine, root *winsim.Process) {
			root.LoadModule("SbieDll.dll")
		}},
	}
}

// rawOn runs a sample on a fresh Cuckoo-guest machine with an optional
// rig mutator (nil = the clean bare-metal reference).
func rawOn(prepare func(*winsim.Machine, *winsim.Process), s *malware.Specimen, seed int64) (trace.Summary, error) {
	var m *winsim.Machine
	if prepare == nil {
		m = winsim.NewCleanBareMetal(seed)
	} else {
		m = winsim.NewCuckooSandbox(seed, false)
		// Freshly reverted guest: minutes of uptime.
		m.Clock = winsim.NewClock(3*60*1e9, 2.6)
	}
	sys := winapi.NewSystem(m)
	s.Register(sys)
	m.FS.Touch(s.Image, 180<<10)
	parent, err := agentProcess(m)
	if err != nil {
		return trace.Summary{}, err
	}
	root := sys.Launch(s.Image, s.ID, parent)
	if prepare != nil {
		prepare(m, root)
	}
	sys.Run(ObservationWindow)
	return subtreeSummary(m, root.PID), nil
}

// TierOutcome is one deployment tier's result over the residual corpus.
type TierOutcome struct {
	Tier        string
	Deactivated int
}

// FullStackReport evaluates the §VI-A ladder over the 110 corpus samples
// the paper's user-level deployment cannot deactivate: how many fall to
// the kernel syscall gate, how many more to the deception hypervisor, and
// what remains (direct PEB reads, and the indeterminate Selfdel family).
type FullStackReport struct {
	Samples int
	Tiers   []TierOutcome
}

// String renders the ladder.
func (r FullStackReport) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "residual corpus (undeceived by the paper's deployment): %d samples\n", r.Samples)
	for _, tier := range r.Tiers {
		fmt.Fprintf(&sb, "  %-28s deactivates %3d\n", tier.Tier, tier.Deactivated)
	}
	return sb.String()
}

// FullStack runs the residual samples through the three deployment tiers.
func FullStack(seed int64) FullStackReport {
	// The residual set: everything the stock lab does not deactivate.
	stock := NewLab(seed)
	var residual []*malware.Specimen
	for _, res := range stock.RunCorpus(malware.MalGeneCorpus()) {
		if !res.Verdict.Deactivated {
			residual = append(residual, res.Specimen)
		}
	}
	report := FullStackReport{Samples: len(residual)}

	run := func(tier string, mutate func(*Lab)) {
		lab := NewLab(seed)
		mutate(lab)
		n := 0
		for _, res := range lab.RunCorpus(residual) {
			if res.Verdict.Deactivated {
				n++
			}
		}
		report.Tiers = append(report.Tiers, TierOutcome{Tier: tier, Deactivated: n})
	}
	run("user-level hooks (paper)", func(*Lab) {})
	run("+ kernel syscall gate", func(l *Lab) { l.Config.KernelHooks = true })
	run("+ deception hypervisor", func(l *Lab) {
		l.Config.KernelHooks = true
		l.Config.HypervisorDeception = true
	})
	return report
}

// Package pafish reimplements Pafish (Paranoid Fish), the open-source
// analysis-environment fingerprinting tool the paper evaluates Scarecrow
// against (Table II). Every check is executed mechanically against the
// simulated machine through the same API surface malware uses, so the
// per-category trigger counts of Table II emerge from the environment
// profiles and Scarecrow's hooks rather than being scripted.
//
// The feature set follows the paper's Table II category sizes: Debuggers
// (1), CPU information (4), Generic sandbox (12), Hook (2), Sandboxie (1),
// Wine (2), VirtualBox (17), VMware (8), Qemu detection (3), Bochs (3),
// Cuckoo (3) — 56 evidence features in 11 categories. (The paper's prose
// says "54 pieces of evidence"; its own table rows sum to 56, and this
// implementation follows the table.)
package pafish

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"scarecrow/internal/evasion"
	"scarecrow/internal/winapi"
)

// Category names exactly as Table II prints them.
const (
	CatDebuggers  = "Debuggers"
	CatCPU        = "CPU information"
	CatGeneric    = "Generic sandbox"
	CatHook       = "Hook"
	CatSandboxie  = "Sandboxie"
	CatWine       = "Wine"
	CatVirtualBox = "VirtualBox"
	CatVMware     = "VMware"
	CatQemu       = "Qemu detection"
	CatBochs      = "Bochs"
	CatCuckoo     = "Cuckoo"
)

// CategoryOrder is the Table II row order.
var CategoryOrder = []string{
	CatDebuggers, CatCPU, CatGeneric, CatHook, CatSandboxie, CatWine,
	CatVirtualBox, CatVMware, CatQemu, CatBochs, CatCuckoo,
}

// Feature is one evidence feature: a named check in a category.
type Feature struct {
	Category string
	Check    evasion.Check
}

// Result is one executed feature.
type Result struct {
	Category  string
	Name      string
	Triggered bool
}

// Report is a full Pafish run.
type Report struct {
	Results []Result
}

// Triggered returns the number of evidence features that fired.
func (r Report) Triggered() int {
	n := 0
	for _, res := range r.Results {
		if res.Triggered {
			n++
		}
	}
	return n
}

// CategoryCounts returns triggered counts per category.
func (r Report) CategoryCounts() map[string]int {
	out := make(map[string]int)
	for _, res := range r.Results {
		if res.Triggered {
			out[res.Category]++
		}
	}
	return out
}

// CategoryTotals returns the number of features per category.
func (r Report) CategoryTotals() map[string]int {
	out := make(map[string]int)
	for _, res := range r.Results {
		out[res.Category]++
	}
	return out
}

// TriggeredNames returns the names of fired features, sorted.
func (r Report) TriggeredNames() []string {
	var out []string
	for _, res := range r.Results {
		if res.Triggered {
			out = append(out, res.Name)
		}
	}
	sort.Strings(out)
	return out
}

// String renders the report as a Table II style column.
func (r Report) String() string {
	counts, totals := r.CategoryCounts(), r.CategoryTotals()
	var sb strings.Builder
	for _, cat := range CategoryOrder {
		fmt.Fprintf(&sb, "%-22s (%2d): %d\n", cat, totals[cat], counts[cat])
	}
	return sb.String()
}

// Features returns the full evidence-feature battery in execution order.
func Features() []Feature {
	var f []Feature
	add := func(cat string, c evasion.Check) { f = append(f, Feature{Category: cat, Check: c}) }

	// Debuggers (1).
	add(CatDebuggers, evasion.DebuggerAPI())

	// CPU information (4).
	add(CatCPU, rdtscDiff(750))
	add(CatCPU, evasion.RDTSCVMExit(1000))
	add(CatCPU, evasion.CPUIDHypervisorBit())
	add(CatCPU, evasion.CPUIDVendor("VBoxVBoxVBox", "VMwareVMware", "KVMKVMKVM", "XenVMMXenVMM", "prl hyperv", "TCGTCGTCG"))

	// Generic sandbox (12).
	add(CatGeneric, evasion.MouseInactive(2*time.Second))
	add(CatGeneric, evasion.SuspiciousUserName("sandbox", "virus", "malware", "sample", "currentuser"))
	add(CatGeneric, evasion.SuspiciousComputerName("sandbox", "malware", "maltest"))
	add(CatGeneric, evasion.SamplePath())
	add(CatGeneric, evasion.SmallDisk(60<<30))
	add(CatGeneric, evasion.SmallRAM(1<<30))
	add(CatGeneric, evasion.FewCoresAPI(2))
	add(CatGeneric, evasion.LowUptime(12*time.Minute))
	add(CatGeneric, evasion.DiskModelContains("gensandbox_drive_model", "VBOX", "QEMU", "VMWARE", "VIRTUAL HD"))
	add(CatGeneric, evasion.SleepPatch(500*time.Millisecond))
	add(CatGeneric, rdtscSleepAccel())
	add(CatGeneric, nativeVhdBoot())

	// Hook (2): stock Cuckoo hooks ShellExecuteExW; Scarecrow hooks both.
	add(CatHook, evasion.InlineHook("ShellExecuteExW"))
	add(CatHook, evasion.InlineHook("DeleteFile"))

	// Sandboxie (1).
	add(CatSandboxie, evasion.ModuleLoaded("sboxie_sbiedll", "SbieDll.dll"))

	// Wine (2).
	add(CatWine, evasion.ExportResolves("wine_get_unix_file_name", "kernel32.dll", "wine_get_unix_file_name"))
	add(CatWine, evasion.RegistryKey("wine_reg", `HKCU\Software\Wine`))

	// VirtualBox (17).
	add(CatVirtualBox, evasion.RegistryValueContains("vbox_reg_bios", `HKLM\HARDWARE\Description\System`, "SystemBiosVersion", "VBOX"))
	add(CatVirtualBox, evasion.RegistryValueContains("vbox_reg_video", `HKLM\HARDWARE\Description\System`, "VideoBiosVersion", "VIRTUALBOX"))
	add(CatVirtualBox, evasion.RegistryKey("vbox_reg_guestadd", `HKLM\SOFTWARE\Oracle\VirtualBox Guest Additions`))
	add(CatVirtualBox, evasion.RegistryKey("vbox_reg_svc_guest", `HKLM\SYSTEM\CurrentControlSet\Services\VBoxGuest`))
	add(CatVirtualBox, evasion.RegistryKey("vbox_reg_svc_service", `HKLM\SYSTEM\CurrentControlSet\Services\VBoxService`))
	add(CatVirtualBox, evasion.RegistryKey("vbox_reg_acpi_dsdt", `HKLM\HARDWARE\ACPI\DSDT\VBOX__`))
	add(CatVirtualBox, evasion.FileExists("vbox_file_mouse", `C:\Windows\System32\drivers\VBoxMouse.sys`))
	add(CatVirtualBox, evasion.FileExists("vbox_file_guest", `C:\Windows\System32\drivers\VBoxGuest.sys`))
	add(CatVirtualBox, evasion.FileExists("vbox_file_sf", `C:\Windows\System32\drivers\VBoxSF.sys`))
	add(CatVirtualBox, evasion.FileExists("vbox_file_video", `C:\Windows\System32\drivers\VBoxVideo.sys`))
	add(CatVirtualBox, evasion.ProcessRunning("vbox_proc_service", "vboxservice.exe"))
	add(CatVirtualBox, evasion.ProcessRunning("vbox_proc_tray", "vboxtray.exe"))
	add(CatVirtualBox, evasion.VMMAC("08:00:27"))
	add(CatVirtualBox, evasion.WindowPresent("vbox_window_tray", "VBoxTrayToolWndClass"))
	add(CatVirtualBox, evasion.WMIIdentityEquals("vbox_wmi_bios_serial", "Win32_BIOS", "SerialNumber", "0"))
	add(CatVirtualBox, evasion.WMIIdentity("vbox_wmi_model", "Win32_ComputerSystem", "Model", "VirtualBox"))
	add(CatVirtualBox, evasion.WMIIdentity("vbox_wmi_manufacturer", "Win32_ComputerSystem", "Manufacturer", "Oracle"))

	// VMware (8).
	add(CatVMware, evasion.RegistryKey("vmware_reg_tools", `HKLM\SOFTWARE\VMware, Inc.\VMware Tools`))
	add(CatVMware, evasion.DiskModelContains("vmware_reg_scsi", "VMWARE"))
	add(CatVMware, evasion.FileExists("vmware_file_vmmouse", `C:\Windows\System32\drivers\vmmouse.sys`))
	add(CatVMware, evasion.FileExists("vmware_file_vmhgfs", `C:\Windows\System32\drivers\vmhgfs.sys`))
	add(CatVMware, evasion.DeviceOpens("vmware_device_hgfs", `\\.\HGFS`))
	add(CatVMware, evasion.ProcessRunning("vmware_proc_tools", "vmtoolsd.exe", "vmwaretray.exe", "vmwareuser.exe"))
	add(CatVMware, evasion.VMMAC("00:05:69", "00:0c:29", "00:50:56", "00:1c:14"))
	add(CatVMware, evasion.WMIIdentity("vmware_wmi_bios_serial", "Win32_BIOS", "SerialNumber", "VMware-"))

	// Qemu detection (3).
	add(CatQemu, evasion.DiskModelContains("qemu_reg_scsi", "QEMU"))
	add(CatQemu, evasion.RegistryValueContains("qemu_reg_bios", `HKLM\HARDWARE\Description\System`, "SystemBiosVersion", "QEMU"))
	add(CatQemu, evasion.CPUIDVendor("TCGTCGTCG"))

	// Bochs (3).
	add(CatBochs, evasion.RegistryValueContains("bochs_reg_bios", `HKLM\HARDWARE\Description\System`, "SystemBiosVersion", "BOCHS"))
	add(CatBochs, cpuBrandQuirk("bochs_cpu_amd_quirk", "QEMU Virtual CPU"))
	add(CatBochs, cpuBrandQuirk("bochs_cpu_intel_quirk", "              Intel(R) Pentium(R) 4 CPU        "))

	// Cuckoo (3): artifacts of the Cuckoo 1.x monitor that 2.0.3 no longer
	// exposes — which is why the column is zero even on the Cuckoo sandbox.
	add(CatCuckoo, evasion.DeviceOpens("cuckoo_pipe", `\\.\pipe\cuckoo`))
	add(CatCuckoo, agentPortOpen())
	add(CatCuckoo, monitorModulePresent())

	return f
}

// Run executes the full battery in the given process context.
func Run(ctx *winapi.Context) Report {
	var report Report
	for _, feat := range Features() {
		report.Results = append(report.Results, Result{
			Category:  feat.Category,
			Name:      feat.Check.Name,
			Triggered: feat.Check.Probe(ctx),
		})
	}
	return report
}

// rdtscDiff measures back-to-back RDTSC cost; only instruction-trapping
// emulators inflate it.
func rdtscDiff(threshold uint64) evasion.Check {
	return evasion.Check{Name: "rdtsc_diff", Technique: evasion.TechCPUID,
		Probe: func(ctx *winapi.Context) bool {
			c1 := ctx.RDTSC()
			c2 := ctx.RDTSC()
			return c2-c1 > threshold
		}}
}

// rdtscSleepAccel flags environments that fast-forward sleeps without
// advancing the TSC consistently.
func rdtscSleepAccel() evasion.Check {
	return evasion.Check{Name: "rdtsc_sleep_accel", Technique: evasion.TechTiming,
		Probe: func(ctx *winapi.Context) bool {
			const sleep = 500 * time.Millisecond
			c1 := ctx.RDTSC()
			ctx.Sleep(sleep)
			c2 := ctx.RDTSC()
			expected := uint64(float64(sleep.Nanoseconds()) * 2.0) // conservative 2 GHz floor
			return c2-c1 < expected/2
		}}
}

// nativeVhdBoot flags VHD-booted systems; the API needs Windows 8+, so on
// the evaluation's Windows 7 machines it can never trigger (the paper's
// "unsupported system version" miss).
func nativeVhdBoot() evasion.Check {
	return evasion.Check{Name: "IsNativeVhdBoot", Technique: evasion.TechHardwareAPI,
		Probe: func(ctx *winapi.Context) bool {
			vhd, st := ctx.IsNativeVhdBoot()
			return st.OK() && vhd
		}}
}

// cpuBrandQuirk flags emulator-typical CPU brand strings.
func cpuBrandQuirk(name, marker string) evasion.Check {
	return evasion.Check{Name: name, Technique: evasion.TechCPUID,
		Probe: func(ctx *winapi.Context) bool {
			return strings.Contains(ctx.GetSystemInfo().ProcessorBrand, marker)
		}}
}

// agentPortOpen probes the loopback agent port of Cuckoo 1.x.
func agentPortOpen() evasion.Check {
	return evasion.Check{Name: "cuckoo_agent_port", Technique: evasion.TechNetwork,
		Probe: func(ctx *winapi.Context) bool {
			return ctx.Connect("127.0.0.1:8000").OK()
		}}
}

// monitorModulePresent walks the in-memory module list (not the
// GetModuleHandle API) for the legacy cuckoomon DLL.
func monitorModulePresent() evasion.Check {
	return evasion.Check{Name: "cuckoo_monitor_module", Technique: evasion.TechPEB,
		Probe: func(ctx *winapi.Context) bool {
			return ctx.P.HasModule("cuckoomon.dll")
		}}
}

package pafish

import (
	"testing"
	"time"

	"scarecrow/internal/core"
	"scarecrow/internal/winapi"
	"scarecrow/internal/winsim"
)

// runRaw executes Pafish directly on a machine (no Scarecrow), launched
// from explorer like a user double-click.
func runRaw(t *testing.T, profile winsim.ProfileName) Report {
	t.Helper()
	m := winsim.NewProfileMachine(profile, 1)
	sys := winapi.NewSystem(m)
	var report Report
	sys.RegisterProgram(`C:\pafish\pafish.exe`, func(ctx *winapi.Context) int {
		report = Run(ctx)
		return winapi.ExitOK
	})
	parent := m.Procs.FindByImage("explorer.exe")[0]
	sys.Launch(`C:\pafish\pafish.exe`, "pafish.exe", parent)
	sys.Run(time.Minute)
	return report
}

// runProtected executes Pafish under the Scarecrow controller on a machine.
func runProtected(t *testing.T, profile winsim.ProfileName) Report {
	t.Helper()
	m := winsim.NewProfileMachine(profile, 1)
	sys := winapi.NewSystem(m)
	var report Report
	sys.RegisterProgram(`C:\pafish\pafish.exe`, func(ctx *winapi.Context) int {
		report = Run(ctx)
		return winapi.ExitOK
	})
	ctrl, err := core.Deploy(sys, core.NewEngine(core.NewDB(), core.RecommendedConfig(string(profile))))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctrl.LaunchTarget(`C:\pafish\pafish.exe`, "pafish.exe"); err != nil {
		t.Fatal(err)
	}
	sys.Run(time.Minute)
	return report
}

func TestFeatureBatteryShape(t *testing.T) {
	feats := Features()
	if len(feats) != 56 {
		t.Fatalf("features = %d, want 56 (Table II row sums)", len(feats))
	}
	wantPerCat := map[string]int{
		CatDebuggers: 1, CatCPU: 4, CatGeneric: 12, CatHook: 2,
		CatSandboxie: 1, CatWine: 2, CatVirtualBox: 17, CatVMware: 8,
		CatQemu: 3, CatBochs: 3, CatCuckoo: 3,
	}
	got := make(map[string]int)
	for _, f := range feats {
		got[f.Category]++
	}
	for cat, want := range wantPerCat {
		if got[cat] != want {
			t.Errorf("%s: %d features, want %d", cat, got[cat], want)
		}
	}
}

// TestTableII asserts every cell of the paper's Table II: trigger counts
// per category on the three environments, with and without Scarecrow.
func TestTableII(t *testing.T) {
	want := map[string]struct {
		rawProfile winsim.ProfileName
		scProfile  winsim.ProfileName
		cells      map[string][2]int // category -> [with, without]
	}{
		"bare-metal sandbox": {
			rawProfile: winsim.ProfileBareMetalSandbox,
			scProfile:  winsim.ProfileBareMetalSandbox,
			cells: map[string][2]int{
				CatDebuggers: {1, 0}, CatCPU: {0, 0}, CatGeneric: {10, 1},
				CatHook: {2, 0}, CatSandboxie: {1, 0}, CatWine: {2, 0},
				CatVirtualBox: {14, 0}, CatVMware: {4, 0}, CatQemu: {1, 0},
				CatBochs: {1, 0}, CatCuckoo: {0, 0},
			},
		},
		// The with-Scarecrow VM column uses the hardened guest: the paper
		// "modified CPUID instruction results and updated the MAC address
		// of the Cuckoo sandbox" alongside deploying Scarecrow.
		"virtual machine sandbox": {
			rawProfile: winsim.ProfileCuckooSandbox,
			scProfile:  winsim.ProfileCuckooHardened,
			cells: map[string][2]int{
				CatDebuggers: {1, 0}, CatCPU: {0, 3}, CatGeneric: {9, 3},
				CatHook: {2, 1}, CatSandboxie: {1, 0}, CatWine: {2, 0},
				CatVirtualBox: {14, 16}, CatVMware: {4, 0}, CatQemu: {1, 0},
				CatBochs: {1, 0}, CatCuckoo: {0, 0},
			},
		},
		"end-user machine": {
			rawProfile: winsim.ProfileEndUser,
			scProfile:  winsim.ProfileEndUser,
			cells: map[string][2]int{
				CatDebuggers: {1, 0}, CatCPU: {1, 1}, CatGeneric: {9, 1},
				CatHook: {2, 0}, CatSandboxie: {1, 0}, CatWine: {2, 0},
				CatVirtualBox: {14, 0}, CatVMware: {4, 1}, CatQemu: {1, 0},
				CatBochs: {1, 0}, CatCuckoo: {0, 0},
			},
		},
	}
	for env, spec := range want {
		t.Run(env, func(t *testing.T) {
			raw := runRaw(t, spec.rawProfile).CategoryCounts()
			protected := runProtected(t, spec.scProfile).CategoryCounts()
			for cat, cells := range spec.cells {
				if got := protected[cat]; got != cells[0] {
					t.Errorf("%s with Scarecrow: %d, want %d", cat, got, cells[0])
				}
				if got := raw[cat]; got != cells[1] {
					t.Errorf("%s without Scarecrow: %d, want %d", cat, got, cells[1])
				}
			}
		})
	}
}

// TestEnvironmentsIndistinguishableUnderScarecrow verifies the paper's
// headline Table II claim: with Scarecrow enabled, the three environments
// present the same fingerprint except for the CPU timing features
// Scarecrow does not handle.
func TestEnvironmentsIndistinguishableUnderScarecrow(t *testing.T) {
	bm := runProtected(t, winsim.ProfileBareMetalSandbox)
	vm := runProtected(t, winsim.ProfileCuckooHardened)
	eu := runProtected(t, winsim.ProfileEndUser)
	bmC, vmC, euC := bm.CategoryCounts(), vm.CategoryCounts(), eu.CategoryCounts()
	for _, cat := range CategoryOrder {
		if cat == CatCPU || cat == CatGeneric {
			continue // timing features differ; everything else must align
		}
		if bmC[cat] != vmC[cat] || bmC[cat] != euC[cat] {
			t.Errorf("%s: bm=%d vm=%d eu=%d — environments distinguishable", cat, bmC[cat], vmC[cat], euC[cat])
		}
	}
}

func TestReportRendering(t *testing.T) {
	r := runRaw(t, winsim.ProfileCuckooSandbox)
	if r.Triggered() == 0 {
		t.Fatal("stock VM triggered nothing")
	}
	s := r.String()
	if s == "" {
		t.Error("empty rendering")
	}
	names := r.TriggeredNames()
	if len(names) != r.Triggered() {
		t.Errorf("TriggeredNames len = %d, Triggered = %d", len(names), r.Triggered())
	}
}

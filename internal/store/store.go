package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Options tunes a Store. The zero value is ready for production use.
type Options struct {
	// SegmentBytes rotates the active segment once it grows past this
	// size (default 4 MiB). Smaller segments mean more frequent sealing
	// and compaction; tests use tiny values to exercise rotation.
	SegmentBytes int64
	// Fsync forces an fsync after every append. Off by default: the
	// store's durability promise is "survives SIGKILL of the process",
	// which plain write(2) already gives; Fsync extends it to machine
	// crashes at a large throughput cost.
	Fsync bool
	// CompactMinSegments is the number of sealed segments that triggers
	// background compaction (default 2).
	CompactMinSegments int
	// NoBackground disables the compaction goroutine; Compact must then
	// be called explicitly. Tests use this for determinism.
	NoBackground bool
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.CompactMinSegments <= 0 {
		o.CompactMinSegments = 2
	}
	return o
}

// Stats is a point-in-time snapshot of the store's state and counters.
type Stats struct {
	Keys       int   `json:"keys"`
	Segments   int   `json:"segments"`
	TotalBytes int64 `json:"total_bytes"`
	LiveBytes  int64 `json:"live_bytes"`

	Puts        uint64 `json:"puts"`
	Gets        uint64 `json:"gets"`
	Hits        uint64 `json:"hits"`
	Compactions uint64 `json:"compactions"`
	// RecoveredKeys counts keys rebuilt from disk at Open — the warm
	// inventory a restarted daemon starts with.
	RecoveredKeys int `json:"recovered_keys"`
	// TruncatedBytes is how much torn tail Open cut off the newest
	// segment (0 after a clean shutdown).
	TruncatedBytes int64 `json:"truncated_bytes"`
}

// recLoc addresses one committed record.
type recLoc struct {
	seg  *segment
	off  int64 // offset of the record frame within the segment file
	size int64 // full framed length
}

// segment is one log file. Sealed segments are immutable; only the
// newest segment accepts appends.
type segment struct {
	seq  uint64
	path string
	f    *os.File
	size int64
	// lastFor maps each key to its newest record in this segment; it is
	// what the sidecar index persists at seal time. Only maintained for
	// the active segment and for freshly written compacted segments.
	lastFor map[string]recLoc
}

// Store is the durable verdict store. All methods are safe for
// concurrent use.
type Store struct {
	dir  string
	opts Options

	compactc chan struct{}
	stopc    chan struct{}
	bg       sync.WaitGroup

	// Advisory counters, atomic so Get can bump them under the read
	// lock without a writer lock round-trip.
	puts, gets, hits, compactions atomic.Uint64

	mu     sync.RWMutex
	segs   []*segment // ascending seq; last is active
	keydir map[string]recLoc
	closed bool
	// buf is the append-path frame scratch, reused across Put/PutBatch
	// calls (safe: writers hold mu exclusively). one is Put's single-record
	// batch, so the single-record path allocates nothing either.
	buf []byte
	one [1]Record

	totalBytes, liveBytes int64
	recoveredKeys         int
	truncatedBytes        int64
}

// Open loads (or creates) a store rooted at dir, replaying every segment
// to rebuild the key directory. A torn tail in the newest segment is
// truncated back to its last fully-committed record; corruption anywhere
// else is an error, because sealed segments are only ever written
// whole-and-synced.
func Open(dir string, opts Options) (*Store, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating %s: %w", dir, err)
	}
	s := &Store{
		dir:      dir,
		opts:     opts,
		compactc: make(chan struct{}, 1),
		stopc:    make(chan struct{}),
		keydir:   make(map[string]recLoc),
	}
	if err := s.load(); err != nil {
		s.closeFiles()
		return nil, err
	}
	if !opts.NoBackground {
		s.bg.Add(1)
		go s.compactLoop()
	}
	return s, nil
}

// load discovers and replays the segment files.
func (s *Store) load() error {
	names, err := filepath.Glob(filepath.Join(s.dir, "seg-*"+segSuffix))
	if err != nil {
		return fmt.Errorf("store: listing segments: %w", err)
	}
	sort.Strings(names)
	for i, name := range names {
		seq, err := segSeq(name)
		if err != nil {
			return err
		}
		seg, err := openSegment(name, seq)
		if err != nil {
			return err
		}
		s.segs = append(s.segs, seg)
		active := i == len(names)-1
		if err := s.replaySegment(seg, active); err != nil {
			return err
		}
	}
	s.recoveredKeys = len(s.keydir)
	if len(s.segs) == 0 {
		if _, err := s.addSegmentLocked(1); err != nil {
			return err
		}
	}
	return nil
}

// replaySegment rebuilds keydir entries from one segment, via its
// sidecar index when present (sealed segments only) or a full scan. For
// the active segment a decode failure marks the torn tail and the file
// is truncated there; a sealed segment never has one — it was synced
// whole before the next segment existed — so corruption there is fatal.
func (s *Store) replaySegment(seg *segment, active bool) error {
	var entries []scanEntry
	fromIndex := false
	if !active {
		entries, fromIndex = loadIndex(seg)
	}
	if !fromIndex {
		var goodEnd int64
		var scanErr error
		entries, goodEnd, scanErr = scanSegment(seg)
		if scanErr != nil {
			if !active {
				return fmt.Errorf("store: sealed segment %s is corrupt: %w", filepath.Base(seg.path), scanErr)
			}
			// Torn tail on the active segment: cut it off. Everything
			// before goodEnd was fully framed, so the store recovers
			// exactly the committed prefix.
			s.truncatedBytes += seg.size - goodEnd
			if err := seg.f.Truncate(goodEnd); err != nil {
				return fmt.Errorf("store: truncating torn tail of %s: %w", filepath.Base(seg.path), err)
			}
			seg.size = goodEnd
		}
	}
	for _, e := range entries {
		s.applyLocked(e.key, recLoc{seg: seg, off: e.off, size: e.size})
	}
	s.totalBytes += seg.size - int64(len(segmentMagic))
	if active {
		seg.lastFor = make(map[string]recLoc, len(entries))
		for _, e := range entries {
			seg.lastFor[e.key] = recLoc{seg: seg, off: e.off, size: e.size}
		}
	}
	return nil
}

// applyLocked records key → loc in the keydir, maintaining the
// live-bytes accounting for overwrites.
func (s *Store) applyLocked(key string, loc recLoc) {
	if old, ok := s.keydir[key]; ok {
		s.liveBytes -= old.size
	}
	s.keydir[key] = loc
	s.liveBytes += loc.size
}

// Record is one key/value pair for PutBatch.
type Record struct {
	Key string
	Val []byte
}

// validateRecord rejects keys and values the framing cannot represent.
func validateRecord(key string, val []byte) error {
	if key == "" {
		return fmt.Errorf("store: empty key")
	}
	if len(key) > maxKeyLen || len(val) > maxValLen {
		return fmt.Errorf("store: record too large (key %d, val %d bytes)", len(key), len(val))
	}
	return nil
}

// Put appends the (key, val) record to the active segment. The record is
// committed — it survives a process kill — once Put returns. The
// checkpoint namespace is reserved: use PutCheckpoint for those.
func (s *Store) Put(key string, val []byte) error {
	if IsCheckpointKey(key) {
		return fmt.Errorf("store: key %q is in the reserved checkpoint namespace (use PutCheckpoint)", key)
	}
	if err := validateRecord(key, val); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.one[0] = Record{Key: key, Val: val}
	err := s.putBatchLocked(s.one[:])
	s.one[0] = Record{} // drop the value reference
	return err
}

// PutBatch appends every record in one group commit: one lock
// acquisition, one frame buffer, one write(2), and (in Fsync mode) one
// fsync for the whole batch. All records are committed once PutBatch
// returns; none are committed if validation fails up front. Torn-tail
// recovery is unaffected — the batch is framed as ordinary consecutive
// records, so a crash mid-write replays the committed prefix of the
// batch, exactly as with individual Puts.
func (s *Store) PutBatch(recs []Record) error {
	if len(recs) == 0 {
		return nil
	}
	for _, r := range recs {
		if IsCheckpointKey(r.Key) {
			return fmt.Errorf("store: key %q is in the reserved checkpoint namespace (use PutCheckpoint)", r.Key)
		}
		if err := validateRecord(r.Key, r.Val); err != nil {
			return err
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.putBatchLocked(recs)
}

// putBatchLocked frames and writes a validated batch. The caller holds
// s.mu exclusively.
func (s *Store) putBatchLocked(recs []Record) error {
	if s.closed {
		return fmt.Errorf("store: closed")
	}
	s.puts.Add(uint64(len(recs)))
	seg := s.segs[len(s.segs)-1]
	buf := s.buf[:0]
	for _, r := range recs {
		buf = appendRecordTo(buf, r.Key, r.Val)
	}
	s.buf = buf
	if _, err := seg.f.WriteAt(buf, seg.size); err != nil {
		return fmt.Errorf("store: appending to %s: %w", filepath.Base(seg.path), err)
	}
	if s.opts.Fsync {
		if err := seg.f.Sync(); err != nil {
			return fmt.Errorf("store: fsync %s: %w", filepath.Base(seg.path), err)
		}
	}
	if seg.lastFor == nil {
		seg.lastFor = make(map[string]recLoc)
	}
	off := seg.size
	for _, r := range recs {
		loc := recLoc{seg: seg, off: off, size: recordLen(len(r.Key), len(r.Val))}
		off += loc.size
		s.applyLocked(r.Key, loc)
		seg.lastFor[r.Key] = loc
	}
	s.totalBytes += off - seg.size
	seg.size = off

	if seg.size >= s.opts.SegmentBytes+int64(len(segmentMagic)) {
		if err := s.rotateLocked(); err != nil {
			return err
		}
	}
	return nil
}

// rotateLocked seals the active segment (sync + sidecar index) and opens
// the next one, then pokes the compaction goroutine.
func (s *Store) rotateLocked() error {
	active := s.segs[len(s.segs)-1]
	if err := active.f.Sync(); err != nil {
		return fmt.Errorf("store: sealing %s: %w", filepath.Base(active.path), err)
	}
	if err := writeIndex(active); err != nil {
		return err
	}
	active.lastFor = nil // sealed: the sidecar owns this now
	if _, err := s.addSegmentLocked(active.seq + 1); err != nil {
		return err
	}
	select {
	case s.compactc <- struct{}{}:
	default:
	}
	return nil
}

// addSegmentLocked creates and appends a fresh active segment.
func (s *Store) addSegmentLocked(seq uint64) (*segment, error) {
	seg, err := createSegment(s.dir, seq)
	if err != nil {
		return nil, err
	}
	s.segs = append(s.segs, seg)
	return seg, nil
}

// Get returns the newest committed value for key. The returned slice is
// freshly read from disk and owned by the caller.
func (s *Store) Get(key string) ([]byte, bool, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.gets.Add(1)
	loc, ok := s.keydir[key]
	if !ok {
		return nil, false, nil
	}
	val, err := readRecord(loc, key)
	if err != nil {
		return nil, false, err
	}
	s.hits.Add(1)
	return val, true, nil
}

// Has reports whether key has a committed value.
func (s *Store) Has(key string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.keydir[key]
	return ok
}

// Len returns the number of live keys.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.keydir)
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Stats snapshots the counters.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return Stats{
		Keys:           len(s.keydir),
		Segments:       len(s.segs),
		TotalBytes:     s.totalBytes,
		LiveBytes:      s.liveBytes,
		Puts:           s.puts.Load(),
		Gets:           s.gets.Load(),
		Hits:           s.hits.Load(),
		Compactions:    s.compactions.Load(),
		RecoveredKeys:  s.recoveredKeys,
		TruncatedBytes: s.truncatedBytes,
	}
}

// Sync forces the active segment to stable storage.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: closed")
	}
	return s.segs[len(s.segs)-1].f.Sync()
}

// compactLoop runs compaction whenever a rotation signals enough sealed
// segments have piled up.
func (s *Store) compactLoop() {
	defer s.bg.Done()
	for {
		select {
		case <-s.stopc:
			return
		case <-s.compactc:
			// Errors here are advisory: the log stays correct without
			// compaction, just larger; the next rotation retries.
			_ = s.Compact()
		}
	}
}

// Compact folds every sealed segment into one deduplicated segment with
// a sidecar index, then removes the originals. Replay equivalence holds
// at every crash point: the merged segment takes the highest sealed
// sequence number, so a crash between the rename and the removals
// replays old-then-merged with last-write-wins yielding the same keydir.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: closed")
	}
	if len(s.segs)-1 < s.opts.CompactMinSegments {
		return nil
	}
	sealed := s.segs[:len(s.segs)-1]
	merged, err := mergeSegments(s.dir, sealed, s.keydir)
	if err != nil {
		return err
	}

	// Swap the keydir entries that still point into the sealed set; keys
	// overwritten in the active segment meanwhile keep their newer entry.
	inSealed := make(map[*segment]bool, len(sealed))
	for _, seg := range sealed {
		inSealed[seg] = true
	}
	var reclaimed int64
	for _, seg := range sealed {
		reclaimed += seg.size - int64(len(segmentMagic))
	}
	for key, loc := range merged.lastFor {
		if cur, ok := s.keydir[key]; ok && inSealed[cur.seg] {
			s.applyLocked(key, loc)
		}
	}
	merged.lastFor = nil
	for _, seg := range sealed {
		_ = seg.f.Close()
		if seg.path == merged.path {
			// The merged file was renamed over this one; the old bytes
			// are already gone and the new index is already in place.
			continue
		}
		_ = os.Remove(seg.path)
		_ = os.Remove(indexPath(seg.path))
	}
	s.segs = append([]*segment{merged}, s.segs[len(s.segs)-1:]...)
	s.totalBytes += merged.size - int64(len(segmentMagic)) - reclaimed
	s.compactions.Add(1)
	return nil
}

// Close stops background work and closes every segment file. The store
// is unusable afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	close(s.stopc)
	s.bg.Wait()

	s.mu.Lock()
	defer s.mu.Unlock()
	var firstErr error
	if n := len(s.segs); n > 0 {
		if err := s.segs[n-1].f.Sync(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	s.closeFilesLocked(&firstErr)
	return firstErr
}

func (s *Store) closeFiles() {
	s.mu.Lock()
	defer s.mu.Unlock()
	var discard error
	s.closeFilesLocked(&discard)
}

func (s *Store) closeFilesLocked(firstErr *error) {
	for _, seg := range s.segs {
		if err := seg.f.Close(); err != nil && *firstErr == nil {
			*firstErr = err
		}
	}
	s.segs = nil
}

// segSuffix / naming helpers. Segments sort lexically in sequence order.
const segSuffix = ".wal"

func segName(seq uint64) string { return fmt.Sprintf("seg-%012d%s", seq, segSuffix) }

func segSeq(path string) (uint64, error) {
	base := filepath.Base(path)
	var seq uint64
	if _, err := fmt.Sscanf(strings.TrimSuffix(base, segSuffix), "seg-%d", &seq); err != nil {
		return 0, fmt.Errorf("store: unrecognized segment name %q", base)
	}
	return seq, nil
}

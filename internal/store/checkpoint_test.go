package store

import (
	"reflect"
	"testing"
)

func TestCheckpointPutGetList(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{NoBackground: true})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer s.Close()

	if _, ok, err := s.GetCheckpoint("camp-a"); err != nil || ok {
		t.Fatalf("GetCheckpoint on empty store = %v, %v", ok, err)
	}
	if err := s.PutCheckpoint("camp-a", []byte(`{"completed":1}`)); err != nil {
		t.Fatalf("PutCheckpoint: %v", err)
	}
	if err := s.PutCheckpoint("camp-b", []byte(`{"completed":2}`)); err != nil {
		t.Fatalf("PutCheckpoint: %v", err)
	}
	// Overwrite: last write wins, exactly like a verdict key.
	if err := s.PutCheckpoint("camp-a", []byte(`{"completed":9}`)); err != nil {
		t.Fatalf("PutCheckpoint overwrite: %v", err)
	}

	val, ok, err := s.GetCheckpoint("camp-a")
	if err != nil || !ok || string(val) != `{"completed":9}` {
		t.Fatalf("GetCheckpoint camp-a = %q, %v, %v", val, ok, err)
	}
	names, err := s.Checkpoints()
	if err != nil {
		t.Fatalf("Checkpoints: %v", err)
	}
	if !reflect.DeepEqual(names, []string{"camp-a", "camp-b"}) {
		t.Fatalf("Checkpoints = %v, want sorted [camp-a camp-b]", names)
	}
}

// Checkpoints ride the same WAL as verdicts: a reopened store recovers
// them alongside the verdict keys, last write winning.
func TestCheckpointSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{NoBackground: true})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := s.Put("cat:kasidet|baremetal-sandbox|1", []byte(`{"category":"deactivated"}`)); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := s.PutCheckpoint("sweep", []byte(`{"completed":3}`)); err != nil {
		t.Fatalf("PutCheckpoint: %v", err)
	}
	if err := s.PutCheckpoint("sweep", []byte(`{"completed":7}`)); err != nil {
		t.Fatalf("PutCheckpoint: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2, err := Open(dir, Options{NoBackground: true})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	val, ok, err := s2.GetCheckpoint("sweep")
	if err != nil || !ok || string(val) != `{"completed":7}` {
		t.Fatalf("reopened GetCheckpoint = %q, %v, %v", val, ok, err)
	}
	names, err := s2.Checkpoints()
	if err != nil || !reflect.DeepEqual(names, []string{"sweep"}) {
		t.Fatalf("reopened Checkpoints = %v, %v", names, err)
	}
	// The verdict key is untouched by the checkpoint traffic.
	if v, ok, _ := s2.Get("cat:kasidet|baremetal-sandbox|1"); !ok || string(v) != `{"category":"deactivated"}` {
		t.Fatalf("verdict key lost across reopen: %q, %v", v, ok)
	}
}

// The checkpoint namespace is reserved: verdict writes cannot collide
// with it, accidentally or otherwise.
func TestCheckpointNamespaceReserved(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{NoBackground: true})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer s.Close()

	if err := s.Put("ckpt!sneaky", []byte("x")); err == nil {
		t.Fatal("Put accepted a checkpoint-namespace key")
	}
	if err := s.PutBatch([]Record{{Key: "ok", Val: []byte("v")}, {Key: "ckpt!sneaky", Val: []byte("x")}}); err == nil {
		t.Fatal("PutBatch accepted a checkpoint-namespace key")
	}
	// The failed batch must be all-or-nothing: "ok" was not committed.
	if _, ok, _ := s.Get("ok"); ok {
		t.Fatal("rejected batch committed a prefix")
	}
	if err := s.PutCheckpoint("", []byte("x")); err == nil {
		t.Fatal("PutCheckpoint accepted an empty name")
	}
	if !IsCheckpointKey("ckpt!x") || IsCheckpointKey("cat:x") {
		t.Fatal("IsCheckpointKey misclassifies")
	}
}

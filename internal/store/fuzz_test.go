package store

import (
	"bytes"
	"encoding/binary"
	"os"
	"testing"
)

// FuzzWALDecode hammers the record framing: decodeRecord must never
// panic, must never consume more bytes than it was given, and anything
// it accepts must re-encode to exactly the bytes it decoded (the frame
// is canonical, so decode∘encode is the identity on valid frames).
func FuzzWALDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(appendRecord(nil, "cat:kasidet|baremetal-sandbox|1", []byte(`{"category":"deactivated"}`)))
	f.Add(appendRecord(nil, "k", nil))
	// A truncated frame and a flipped-CRC frame seed the torn-tail and
	// corruption branches.
	frame := appendRecord(nil, "cat:wannacry|cuckoo-vbox|7", []byte(`{"category":"survived"}`))
	f.Add(frame[:len(frame)-3])
	flipped := append([]byte(nil), frame...)
	flipped[len(flipped)-1] ^= 0x01
	f.Add(flipped)
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	// A header claiming key/value lengths far beyond any segment: the
	// decoder must reject it by bounds check, never allocate for it.
	var huge [recordHeaderLen]byte
	binary.LittleEndian.PutUint32(huge[0:4], 1<<31)
	binary.LittleEndian.PutUint32(huge[4:8], 1<<31)
	f.Add(huge[:])
	// Two records framed into one buffer by a group commit decode as
	// ordinary consecutive frames.
	f.Add(appendRecordTo(appendRecordTo(nil, "a", []byte("1")), "b", []byte("2")))

	f.Fuzz(func(t *testing.T, b []byte) {
		key, val, n, err := decodeRecord(b)
		if err != nil {
			return
		}
		if n <= 0 || n > int64(len(b)) {
			t.Fatalf("decode consumed %d of %d bytes", n, len(b))
		}
		if n != recordLen(len(key), len(val)) {
			t.Fatalf("frame length %d does not match payload lengths (key %d, val %d)", n, len(key), len(val))
		}
		re := appendRecord(nil, key, val)
		if !bytes.Equal(re, b[:n]) {
			t.Fatalf("decode/encode not canonical:\n in %x\nout %x", b[:n], re)
		}
	})
}

// FuzzStoreReopen feeds arbitrary tails onto a valid WAL prefix: Open
// must always succeed (truncating whatever garbage follows the committed
// records) and must always serve the committed prefix intact.
func FuzzStoreReopen(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00})
	f.Add(appendRecord(nil, "extra", []byte("committed-too")))
	frame := appendRecord(nil, "torn", []byte("half-written"))
	f.Add(frame[:len(frame)/2])

	f.Fuzz(func(t *testing.T, tail []byte) {
		dir := t.TempDir()
		s, err := Open(dir, Options{NoBackground: true})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Put("committed", []byte("value")); err != nil {
			t.Fatal(err)
		}
		s.Close()

		segPath := dir + "/" + segName(1)
		fh, err := os.OpenFile(segPath, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := fh.Write(tail); err != nil {
			t.Fatal(err)
		}
		fh.Close()

		r, err := Open(dir, Options{NoBackground: true})
		if err != nil {
			t.Fatalf("Open with fuzzed tail: %v", err)
		}
		defer r.Close()
		got, ok, err := r.Get("committed")
		if err != nil || !ok || string(got) != "value" {
			t.Fatalf("committed record lost under tail %x: %q ok=%v err=%v", tail, got, ok, err)
		}
	})
}

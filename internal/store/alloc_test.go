package store

import (
	"testing"
)

// The group-commit path frames records into the store's reusable buffer
// and issues one write per batch; on the steady state (warm frame buffer,
// existing key) a Put must not allocate. This pins that property.
func TestPutAllocBudget(t *testing.T) {
	s, err := Open(t.TempDir(), Options{NoBackground: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	key := "cat:kasidet|baremetal-sandbox|1"
	val := []byte(`{"category":"deactivated","confidence":0.97}`)
	// Warm the frame buffer and install the key.
	if err := s.Put(key, val); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if err := s.Put(key, val); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 2 {
		t.Errorf("steady-state Put allocates %.1f objects/op, budget is 2", allocs)
	}
}

// PutBatch amortizes the same way: one frame buffer, one write, one lock
// acquisition for the whole batch.
func TestPutBatchAllocBudget(t *testing.T) {
	s, err := Open(t.TempDir(), Options{NoBackground: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	batch := []Record{
		{Key: "cat:kasidet|baremetal-sandbox|1", Val: []byte(`{"category":"deactivated"}`)},
		{Key: "cat:wannacry|baremetal-sandbox|1", Val: []byte(`{"category":"survived"}`)},
		{Key: "cat:locky|baremetal-sandbox|1", Val: []byte(`{"category":"deactivated"}`)},
		{Key: "cat:spawner|baremetal-sandbox|1", Val: []byte(`{"category":"deactivated"}`)},
	}
	if err := s.PutBatch(batch); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if err := s.PutBatch(batch); err != nil {
			t.Fatal(err)
		}
	})
	perRecord := allocs / float64(len(batch))
	if perRecord > 2 {
		t.Errorf("steady-state PutBatch allocates %.2f objects/record, budget is 2", perRecord)
	}
}

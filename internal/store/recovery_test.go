package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// The recovery invariant, exhaustively: truncate the WAL at every byte
// offset inside the final record and reopen. The store must recover
// exactly the fully-committed prefix — every earlier record byte-for-
// byte, the torn record gone, and the file cut back to the last good
// frame boundary.
func TestRecoveryTruncatesTornTailAtEveryOffset(t *testing.T) {
	master := t.TempDir()
	const nKeys = 8
	want := make(map[string][]byte, nKeys)
	s := openTest(t, master, Options{SegmentBytes: 1 << 20}) // one segment
	for i := 0; i < nKeys; i++ {
		key := fmt.Sprintf("cat:kasidet|baremetal-sandbox|%d", i)
		val := []byte(fmt.Sprintf(`{"specimen":"kasidet","seed":%d,"category":"deactivated"}`, i))
		mustPut(t, s, key, val)
		want[key] = val
	}
	s.Close()

	segPath := filepath.Join(master, segName(1))
	whole, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}

	// Locate the final record's frame boundaries by re-scanning.
	offsets := []int64{int64(len(segmentMagic))}
	off := int64(len(segmentMagic))
	for off < int64(len(whole)) {
		_, _, n, err := decodeRecord(whole[off:])
		if err != nil {
			t.Fatalf("master WAL does not scan: %v", err)
		}
		off += n
		offsets = append(offsets, off)
	}
	lastStart := offsets[len(offsets)-2]
	lastEnd := offsets[len(offsets)-1]
	lastKey := fmt.Sprintf("cat:kasidet|baremetal-sandbox|%d", nKeys-1)

	for cut := lastStart; cut <= lastEnd; cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName(1)), whole[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		r, err := Open(dir, Options{NoBackground: true})
		if err != nil {
			t.Fatalf("cut %d: Open: %v", cut, err)
		}

		committed := cut == lastEnd
		wantKeys := nKeys - 1
		if committed {
			wantKeys = nKeys
		}
		if r.Len() != wantKeys {
			t.Fatalf("cut %d: recovered %d keys, want %d", cut, r.Len(), wantKeys)
		}
		for key, val := range want {
			if key == lastKey && !committed {
				if _, ok, _ := r.Get(key); ok {
					t.Fatalf("cut %d: torn record %s resurrected", cut, key)
				}
				continue
			}
			got, ok, err := r.Get(key)
			if err != nil || !ok {
				t.Fatalf("cut %d: Get(%s) ok=%v err=%v", cut, key, ok, err)
			}
			if !bytes.Equal(got, val) {
				t.Fatalf("cut %d: %s = %s, want %s", cut, key, got, val)
			}
		}

		st := r.Stats()
		wantTrunc := cut - lastStart
		if committed {
			wantTrunc = 0
		}
		if st.TruncatedBytes != wantTrunc {
			t.Fatalf("cut %d: TruncatedBytes = %d, want %d", cut, st.TruncatedBytes, wantTrunc)
		}

		// The file itself must have been cut back to the boundary, and a
		// fresh Put must then append cleanly and survive another reopen.
		if fi, err := os.Stat(filepath.Join(dir, segName(1))); err != nil {
			t.Fatal(err)
		} else if wantSize := lastStart; !committed && fi.Size() != wantSize {
			t.Fatalf("cut %d: file size %d after recovery, want %d", cut, fi.Size(), wantSize)
		}
		if err := r.Put("post-recovery", []byte("appended")); err != nil {
			t.Fatalf("cut %d: Put after recovery: %v", cut, err)
		}
		r.Close()
		rr, err := Open(dir, Options{NoBackground: true})
		if err != nil {
			t.Fatalf("cut %d: second reopen: %v", cut, err)
		}
		if got := mustGet(t, rr, "post-recovery"); string(got) != "appended" {
			t.Fatalf("cut %d: post-recovery append lost: %q", cut, got)
		}
		rr.Close()
	}
}

// A torn tail in a sealed (non-final) segment is not recoverable noise —
// sealed segments were synced whole — so Open must refuse.
func TestCorruptSealedSegmentIsFatal(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{SegmentBytes: 128})
	for i := 0; i < 20; i++ {
		mustPut(t, s, fmt.Sprintf("key-%02d", i), []byte("verdict-bytes-with-some-heft"))
	}
	if s.Stats().Segments < 2 {
		t.Fatal("need at least one sealed segment")
	}
	s.Close()

	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*"+segSuffix))
	first := segs[0]
	// Remove its index so the scan path runs, then flip a payload byte.
	os.Remove(indexPath(first))
	buf, err := os.ReadFile(first)
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)/2] ^= 0xff
	if err := os.WriteFile(first, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{NoBackground: true}); err == nil {
		t.Fatal("Open accepted a corrupt sealed segment")
	}
}

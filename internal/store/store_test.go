package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func openTest(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	opts.NoBackground = true
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func mustPut(t *testing.T, s *Store, key string, val []byte) {
	t.Helper()
	if err := s.Put(key, val); err != nil {
		t.Fatalf("Put(%s): %v", key, err)
	}
}

func mustGet(t *testing.T, s *Store, key string) []byte {
	t.Helper()
	val, ok, err := s.Get(key)
	if err != nil {
		t.Fatalf("Get(%s): %v", key, err)
	}
	if !ok {
		t.Fatalf("Get(%s): missing", key)
	}
	return val
}

func TestPutGetRoundtrip(t *testing.T) {
	s := openTest(t, t.TempDir(), Options{})
	verdict := []byte(`{"specimen":"kasidet","category":"deactivated"}`)
	mustPut(t, s, "cat:kasidet|baremetal-sandbox|1", verdict)
	got := mustGet(t, s, "cat:kasidet|baremetal-sandbox|1")
	if !bytes.Equal(got, verdict) {
		t.Fatalf("roundtrip mismatch: %s vs %s", got, verdict)
	}
	if _, ok, err := s.Get("absent"); err != nil || ok {
		t.Fatalf("Get(absent) = ok=%v err=%v, want miss", ok, err)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
	// The caller owns the returned slice: mutating it must not corrupt
	// later reads.
	got[0] = 'X'
	if again := mustGet(t, s, "cat:kasidet|baremetal-sandbox|1"); !bytes.Equal(again, verdict) {
		t.Fatalf("returned slice aliases the store: %s", again)
	}
}

func TestOverwriteLastWins(t *testing.T) {
	s := openTest(t, t.TempDir(), Options{})
	mustPut(t, s, "k", []byte("v1"))
	mustPut(t, s, "k", []byte("v2"))
	if got := mustGet(t, s, "k"); string(got) != "v2" {
		t.Fatalf("Get after overwrite = %q, want v2", got)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d after overwrite, want 1", s.Len())
	}
	st := s.Stats()
	if st.LiveBytes >= st.TotalBytes {
		t.Fatalf("overwrite left no dead bytes: live %d, total %d", st.LiveBytes, st.TotalBytes)
	}
}

// Reopen rebuilds the keydir from disk: every committed verdict is
// byte-identical after a restart, with zero truncation on a clean close.
func TestReopenServesCommittedVerdicts(t *testing.T) {
	dir := t.TempDir()
	want := make(map[string][]byte)
	s := openTest(t, dir, Options{SegmentBytes: 256}) // force several rotations
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("cat:mg%04d|cuckoo-vbox|%d", i, i%3)
		val := []byte(fmt.Sprintf(`{"specimen":"mg%04d","category":"deactivated","seed":%d}`, i, i%3))
		mustPut(t, s, key, val)
		want[key] = val
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	r := openTest(t, dir, Options{SegmentBytes: 256})
	st := r.Stats()
	if st.RecoveredKeys != len(want) {
		t.Fatalf("recovered %d keys, want %d", st.RecoveredKeys, len(want))
	}
	if st.TruncatedBytes != 0 {
		t.Fatalf("clean reopen truncated %d bytes", st.TruncatedBytes)
	}
	for key, val := range want {
		if got := mustGet(t, r, key); !bytes.Equal(got, val) {
			t.Fatalf("reopened %s = %s, want %s", key, got, val)
		}
	}
}

// Rotation seals segments with a sidecar index; reopen must use them
// (and survive one being deleted by falling back to a scan).
func TestSealedSegmentsCarryIndexes(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{SegmentBytes: 128})
	for i := 0; i < 30; i++ {
		mustPut(t, s, fmt.Sprintf("key-%02d", i), []byte("verdict-bytes-with-some-heft"))
	}
	if got := s.Stats().Segments; got < 3 {
		t.Fatalf("expected several segments, got %d", got)
	}
	s.Close()

	idx, err := filepath.Glob(filepath.Join(dir, "*.idx"))
	if err != nil || len(idx) == 0 {
		t.Fatalf("no sidecar indexes written (err %v)", err)
	}
	// Remove one index: reopen must still recover everything via scan.
	if err := os.Remove(idx[0]); err != nil {
		t.Fatal(err)
	}
	r := openTest(t, dir, Options{SegmentBytes: 128})
	if r.Len() != 30 {
		t.Fatalf("reopen without one index recovered %d keys, want 30", r.Len())
	}
	for i := 0; i < 30; i++ {
		mustGet(t, r, fmt.Sprintf("key-%02d", i))
	}
}

// A stale index (left by a crash between segment replacement and index
// rewrite) must be rejected by the size check, not believed.
func TestStaleIndexIgnored(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{SegmentBytes: 128})
	for i := 0; i < 20; i++ {
		mustPut(t, s, fmt.Sprintf("key-%02d", i), []byte("verdict-bytes-with-some-heft"))
	}
	s.Close()
	idx, _ := filepath.Glob(filepath.Join(dir, "*.idx"))
	if len(idx) == 0 {
		t.Fatal("no indexes written")
	}
	// Grow the indexed segment: the index's recorded size no longer
	// matches, so it must be ignored in favour of a scan.
	seg := idx[0][:len(idx[0])-len(".idx")] + segSuffix
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	extra := appendRecord(nil, "key-00", []byte("newer-value"))
	if _, err := f.Write(extra); err != nil {
		t.Fatal(err)
	}
	f.Close()

	r := openTest(t, dir, Options{SegmentBytes: 1 << 20})
	if got := mustGet(t, r, "key-00"); string(got) != "newer-value" {
		t.Fatalf("stale index shadowed the appended record: got %q", got)
	}
}

func TestCompactionDropsDeadRecordsAndPreservesReads(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{SegmentBytes: 128})
	// Overwrite a small key set many times so sealed segments are mostly
	// dead records.
	for round := 0; round < 10; round++ {
		for i := 0; i < 5; i++ {
			mustPut(t, s, fmt.Sprintf("key-%d", i), []byte(fmt.Sprintf("round-%02d-value-%d-padpadpad", round, i)))
		}
	}
	before := s.Stats()
	if before.Segments < 3 {
		t.Fatalf("want several segments before compaction, got %d", before.Segments)
	}
	if err := s.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	after := s.Stats()
	if after.Compactions != 1 {
		t.Fatalf("Compactions = %d, want 1", after.Compactions)
	}
	if after.Segments != 2 { // merged + active
		t.Fatalf("segments after compaction = %d, want 2", after.Segments)
	}
	if after.TotalBytes >= before.TotalBytes {
		t.Fatalf("compaction reclaimed nothing: %d -> %d bytes", before.TotalBytes, after.TotalBytes)
	}
	for i := 0; i < 5; i++ {
		if got := mustGet(t, s, fmt.Sprintf("key-%d", i)); string(got) != fmt.Sprintf("round-09-value-%d-padpadpad", i) {
			t.Fatalf("post-compaction read wrong: %s", got)
		}
	}
	// And the compacted layout must survive a reopen.
	s.Close()
	r := openTest(t, dir, Options{SegmentBytes: 128})
	for i := 0; i < 5; i++ {
		if got := mustGet(t, r, fmt.Sprintf("key-%d", i)); string(got) != fmt.Sprintf("round-09-value-%d-padpadpad", i) {
			t.Fatalf("post-compaction reopen read wrong: %s", got)
		}
	}
}

func TestConcurrentPutGet(t *testing.T) {
	s := openTest(t, t.TempDir(), Options{SegmentBytes: 512})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				key := fmt.Sprintf("w%d-k%d", w, i)
				if err := s.Put(key, []byte(key+"-value")); err != nil {
					t.Errorf("Put(%s): %v", key, err)
					return
				}
				val, ok, err := s.Get(key)
				if err != nil || !ok || string(val) != key+"-value" {
					t.Errorf("Get(%s) = %q ok=%v err=%v", key, val, ok, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if s.Len() != 8*50 {
		t.Fatalf("Len = %d, want %d", s.Len(), 8*50)
	}
}

// The background compactor is exercised separately from the deterministic
// tests: rotations signal it, and the store stays readable throughout.
func TestBackgroundCompaction(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 100; i++ {
		mustPut(t, s, fmt.Sprintf("key-%d", i%7), []byte("a-verdict-sized-value-padding-padding"))
	}
	for i := 0; i < 7; i++ {
		mustGet(t, s, fmt.Sprintf("key-%d", i))
	}
}

func TestPutValidation(t *testing.T) {
	s := openTest(t, t.TempDir(), Options{})
	if err := s.Put("", []byte("v")); err == nil {
		t.Fatal("empty key accepted")
	}
	if err := s.Put(string(make([]byte, maxKeyLen+1)), []byte("v")); err == nil {
		t.Fatal("oversized key accepted")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("k", []byte("v")); err == nil {
		t.Fatal("Put on closed store accepted")
	}
	if _, _, err := s.Get("k"); err != nil {
		// Get on a closed store may fail at the file layer; it must not
		// panic. Either a miss or an error is acceptable.
		t.Logf("Get after close: %v", err)
	}
}

func TestOpenRejectsForeignFile(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, segName(1)), []byte("not a wal"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{NoBackground: true}); err == nil {
		t.Fatal("foreign segment file accepted")
	}
}

// The small accessors: Dir echoes the root, Has answers without reading
// the value, Sync flushes (and is callable on a store opened without
// Fsync).
func TestAccessorsAndSync(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{NoBackground: true})
	if s.Dir() != dir {
		t.Fatalf("Dir() = %q, want %q", s.Dir(), dir)
	}
	if s.Has("k") {
		t.Fatal("Has on an empty store")
	}
	mustPut(t, s, "k", []byte("v"))
	if !s.Has("k") {
		t.Fatal("Has misses a committed key")
	}
	if s.Has("other") {
		t.Fatal("Has reports a never-written key")
	}
	if err := s.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}

	// Fsync mode exercises the per-put sync path end to end.
	fdir := t.TempDir()
	fs := openTest(t, fdir, Options{NoBackground: true, Fsync: true})
	mustPut(t, fs, "fk", []byte("fv"))
	if got := mustGet(t, fs, "fk"); string(got) != "fv" {
		t.Fatalf("fsync store Get = %q", got)
	}
}

// PutBatch is the group-commit path: every record in the batch must be
// committed (and survive a reopen) after one call.
func TestPutBatchCommitsAllRecords(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{})
	recs := make([]Record, 16)
	for i := range recs {
		recs[i] = Record{
			Key: fmt.Sprintf("cat:batch-%02d|baremetal-sandbox|1", i),
			Val: []byte(fmt.Sprintf(`{"specimen":"batch-%02d"}`, i)),
		}
	}
	if err := s.PutBatch(recs); err != nil {
		t.Fatalf("PutBatch: %v", err)
	}
	if err := s.PutBatch(nil); err != nil {
		t.Fatalf("PutBatch(nil): %v", err)
	}
	for _, r := range recs {
		if got := mustGet(t, s, r.Key); !bytes.Equal(got, r.Val) {
			t.Fatalf("Get(%s) = %q, want %q", r.Key, got, r.Val)
		}
	}
	if got := s.Stats().Puts; got != uint64(len(recs)) {
		t.Fatalf("Puts = %d, want %d", got, len(recs))
	}
	s.Close()

	r := openTest(t, dir, Options{})
	for _, rec := range recs {
		if got := mustGet(t, r, rec.Key); !bytes.Equal(got, rec.Val) {
			t.Fatalf("after reopen, Get(%s) = %q, want %q", rec.Key, got, rec.Val)
		}
	}
}

// A batch rejected by validation must commit nothing: all-or-nothing at
// the validation boundary.
func TestPutBatchValidatesBeforeWriting(t *testing.T) {
	s := openTest(t, t.TempDir(), Options{})
	err := s.PutBatch([]Record{
		{Key: "good", Val: []byte("v")},
		{Key: "", Val: []byte("bad")},
	})
	if err == nil {
		t.Fatal("PutBatch with empty key succeeded")
	}
	if s.Has("good") {
		t.Fatal("invalid batch committed its valid prefix")
	}
}

// A crash mid-batch tears the tail of the group-committed write; recovery
// must keep exactly the fully framed prefix of the batch, the same
// guarantee individual Puts give.
func TestPutBatchTornTailRecoversPrefix(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{})
	mustPut(t, s, "before", []byte("committed"))
	if err := s.PutBatch([]Record{
		{Key: "b0", Val: []byte("first")},
		{Key: "b1", Val: []byte("second")},
		{Key: "b2", Val: []byte("third")},
	}); err != nil {
		t.Fatalf("PutBatch: %v", err)
	}
	s.Close()

	// Tear the last record's trailer off, as a crash mid-write(2) would.
	segPath := filepath.Join(dir, segName(1))
	st, err := os.Stat(segPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(segPath, st.Size()-2); err != nil {
		t.Fatal(err)
	}

	r := openTest(t, dir, Options{})
	for key, want := range map[string]string{"before": "committed", "b0": "first", "b1": "second"} {
		if got := mustGet(t, r, key); string(got) != want {
			t.Fatalf("Get(%s) = %q, want %q", key, got, want)
		}
	}
	if r.Has("b2") {
		t.Fatal("torn final record of the batch survived recovery")
	}
	if r.Stats().TruncatedBytes == 0 {
		t.Fatal("recovery reported no truncated bytes for a torn tail")
	}
}

// A batch that pushes the active segment past its size budget must still
// rotate, exactly like the equivalent sequence of Puts.
func TestPutBatchRotates(t *testing.T) {
	s := openTest(t, t.TempDir(), Options{SegmentBytes: 64})
	recs := make([]Record, 8)
	for i := range recs {
		recs[i] = Record{Key: fmt.Sprintf("rot-%d", i), Val: bytes.Repeat([]byte("x"), 32)}
	}
	if err := s.PutBatch(recs); err != nil {
		t.Fatalf("PutBatch: %v", err)
	}
	if segs := s.Stats().Segments; segs < 2 {
		t.Fatalf("Segments = %d after oversized batch, want rotation", segs)
	}
	for _, r := range recs {
		if got := mustGet(t, s, r.Key); !bytes.Equal(got, r.Val) {
			t.Fatalf("Get(%s) lost after rotation", r.Key)
		}
	}
}

package store

import (
	"fmt"
	"sort"
	"strings"
)

// checkpointPrefix namespaces checkpoint records inside the WAL's key
// space. Verdict keys all start with a specimen identity ("cat:",
// "rcp:", "syn:", or a bare specimen ID), so the prefix cleanly
// partitions the keydir into two record kinds sharing one log: the same
// framing, the same torn-tail recovery, the same compaction. A
// checkpoint is just a record whose key says "this is progress state,
// not a verdict".
const checkpointPrefix = "ckpt!"

// IsCheckpointKey reports whether a raw WAL key names a checkpoint
// record rather than a verdict.
func IsCheckpointKey(key string) bool {
	return strings.HasPrefix(key, checkpointPrefix)
}

// PutCheckpoint durably writes (or overwrites) the named checkpoint
// record. Like Put, the record is committed — it survives a process
// kill — once the call returns.
func (s *Store) PutCheckpoint(name string, val []byte) error {
	if name == "" {
		return fmt.Errorf("store: empty checkpoint name")
	}
	if err := validateRecord(checkpointPrefix+name, val); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.one[0] = Record{Key: checkpointPrefix + name, Val: val}
	err := s.putBatchLocked(s.one[:])
	s.one[0] = Record{} // drop the value reference
	return err
}

// GetCheckpoint returns the newest committed value of the named
// checkpoint record.
func (s *Store) GetCheckpoint(name string) ([]byte, bool, error) {
	return s.Get(checkpointPrefix + name)
}

// Checkpoints lists the live checkpoint names, sorted. A restarted
// daemon scans this to find campaigns that were in flight when the
// process died.
func (s *Store) Checkpoints() ([]string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, fmt.Errorf("store: closed")
	}
	var names []string
	for key := range s.keydir { // aggregate + sort below: order-safe
		if strings.HasPrefix(key, checkpointPrefix) {
			names = append(names, strings.TrimPrefix(key, checkpointPrefix))
		}
	}
	sort.Strings(names)
	return names, nil
}

// Package store is scarecrowd's durable verdict store: a segmented,
// append-only write-ahead log of canonical verdict bytes keyed by the
// service's (specimen|profile|seed) triple.
//
// The design is bitcask-shaped. Writes append CRC-framed records to the
// active segment — one write(2) per record, so a committed Put survives a
// SIGKILL of the process (an optional fsync mode extends that to machine
// crashes). Reads go through an in-memory keydir mapping each key to its
// newest record's location and are served with a single pread. Opening a
// directory replays every segment to rebuild the keydir; a torn tail in
// the newest segment — the only segment a crash can tear — is truncated
// back to the last fully-committed record, so recovery is exactly "the
// prefix that was durably framed". Background compaction folds sealed
// segments into one deduplicated segment plus a sidecar index, so reopen
// cost and disk usage track the live key set, not append history.
//
// Determinism makes this store exact rather than approximate: a verdict's
// bytes are a pure function of its key, so last-write-wins merging can
// never replace a verdict with a different one.
package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Record framing. Every record is
//
//	u32 keyLen | u32 valLen | key | val | u32 crc
//
// with all integers little-endian and crc the IEEE CRC-32 of everything
// before it (lengths and payloads). The CRC trailer means a record is
// committed if and only if its final byte is on disk: recovery scans
// forward and stops at the first frame that is short or fails its
// checksum, which is precisely the torn tail of an interrupted append.
const (
	recordHeaderLen  = 8
	recordTrailerLen = 4

	// maxKeyLen / maxValLen bound the length fields so a corrupt header
	// cannot make recovery allocate gigabytes or walk past a torn tail
	// into garbage that happens to parse.
	maxKeyLen = 1 << 16
	maxValLen = 1 << 26
)

// segmentMagic opens every segment file; a file without it is not ours
// and Open refuses to touch it.
var segmentMagic = []byte("SCWAL001")

// appendRecordTo appends one framed record to the end of buf and returns
// the extended slice. The CRC covers only this record's own bytes, so
// multiple records framed into one buffer — a group commit — decode
// exactly as if they had been appended one write at a time.
func appendRecordTo(buf []byte, key string, val []byte) []byte {
	start := len(buf)
	var hdr [recordHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(key)))
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(val)))
	buf = append(buf, hdr[:]...)
	buf = append(buf, key...)
	buf = append(buf, val...)
	var crc [recordTrailerLen]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(buf[start:]))
	return append(buf, crc[:]...)
}

// appendRecord frames key/val into buf (reused across calls) and returns
// the encoded record.
func appendRecord(buf []byte, key string, val []byte) []byte {
	return appendRecordTo(buf[:0], key, val)
}

// recordLen returns the full framed size of a record for the given
// payload lengths.
func recordLen(keyLen, valLen int) int64 {
	return int64(recordHeaderLen + keyLen + valLen + recordTrailerLen)
}

// decodeRecord parses one record at the start of b. It returns the key,
// value, and framed length consumed. A short buffer, an over-limit
// length, or a checksum mismatch returns an error; callers at the tail
// of the active segment treat any error as the torn-tail boundary.
// The returned val aliases b.
func decodeRecord(b []byte) (key string, val []byte, n int64, err error) {
	if len(b) < recordHeaderLen {
		return "", nil, 0, fmt.Errorf("store: short record header: %d bytes", len(b))
	}
	keyLen := binary.LittleEndian.Uint32(b[0:4])
	valLen := binary.LittleEndian.Uint32(b[4:8])
	if keyLen == 0 || keyLen > maxKeyLen {
		return "", nil, 0, fmt.Errorf("store: implausible key length %d", keyLen)
	}
	if valLen > maxValLen {
		return "", nil, 0, fmt.Errorf("store: implausible value length %d", valLen)
	}
	total := recordLen(int(keyLen), int(valLen))
	if int64(len(b)) < total {
		return "", nil, 0, fmt.Errorf("store: short record: have %d bytes, frame wants %d", len(b), total)
	}
	body := b[:total-recordTrailerLen]
	want := binary.LittleEndian.Uint32(b[total-recordTrailerLen : total])
	if got := crc32.ChecksumIEEE(body); got != want {
		return "", nil, 0, fmt.Errorf("store: record checksum mismatch: %08x != %08x", got, want)
	}
	key = string(b[recordHeaderLen : recordHeaderLen+keyLen])
	val = b[recordHeaderLen+keyLen : total-recordTrailerLen]
	return key, val, total, nil
}

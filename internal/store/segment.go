package store

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// indexMagic opens a sidecar index file. The following 8 bytes are the
// size of the segment the index describes — a stale index left behind by
// a crash mid-compaction describes different content and is rejected by
// the size check (and, belt and braces, by the per-record CRC on read).
var indexMagic = []byte("SCIDX001")

// scanEntry is one record located during replay.
type scanEntry struct {
	key  string
	off  int64
	size int64
}

// createSegment writes a fresh segment file with its magic header.
func createSegment(dir string, seq uint64) (*segment, error) {
	path := filepath.Join(dir, segName(seq))
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: creating segment %s: %w", filepath.Base(path), err)
	}
	if _, err := f.Write(segmentMagic); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: writing segment header: %w", err)
	}
	return &segment{seq: seq, path: path, f: f, size: int64(len(segmentMagic))}, nil
}

// openSegment opens an existing segment and verifies its magic.
func openSegment(path string, seq uint64) (*segment, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: opening segment: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("store: stat %s: %w", filepath.Base(path), err)
	}
	magic := make([]byte, len(segmentMagic))
	if _, err := f.ReadAt(magic, 0); err != nil || !bytes.Equal(magic, segmentMagic) {
		f.Close()
		return nil, fmt.Errorf("store: %s is not a scarecrow WAL segment", filepath.Base(path))
	}
	return &segment{seq: seq, path: path, f: f, size: st.Size()}, nil
}

// scanSegment decodes every committed record in the segment. On a decode
// failure it returns the entries and the offset of the last good frame
// boundary alongside the error, so the caller can truncate a torn tail.
func scanSegment(seg *segment) (entries []scanEntry, goodEnd int64, err error) {
	buf := make([]byte, seg.size)
	if _, err := seg.f.ReadAt(buf, 0); err != nil {
		return nil, 0, fmt.Errorf("store: reading %s: %w", filepath.Base(seg.path), err)
	}
	off := int64(len(segmentMagic))
	for off < seg.size {
		key, _, n, derr := decodeRecord(buf[off:])
		if derr != nil {
			return entries, off, fmt.Errorf("store: %s at offset %d: %w", filepath.Base(seg.path), off, derr)
		}
		entries = append(entries, scanEntry{key: key, off: off, size: n})
		off += n
	}
	return entries, off, nil
}

// readRecord preads and verifies one record, returning a copy of its
// value. The key echo check catches a keydir entry gone stale (e.g. a
// stale index surviving a crashed compaction).
func readRecord(loc recLoc, key string) ([]byte, error) {
	buf := make([]byte, loc.size)
	if _, err := loc.seg.f.ReadAt(buf, loc.off); err != nil {
		return nil, fmt.Errorf("store: reading record at %s+%d: %w", filepath.Base(loc.seg.path), loc.off, err)
	}
	gotKey, val, _, err := decodeRecord(buf)
	if err != nil {
		return nil, fmt.Errorf("store: record at %s+%d: %w", filepath.Base(loc.seg.path), loc.off, err)
	}
	if gotKey != key {
		return nil, fmt.Errorf("store: record at %s+%d holds key %q, want %q", filepath.Base(loc.seg.path), loc.off, gotKey, key)
	}
	out := make([]byte, len(val))
	copy(out, val)
	return out, nil
}

// indexPath is the sidecar index for a segment file.
func indexPath(segPath string) string {
	return strings.TrimSuffix(segPath, segSuffix) + ".idx"
}

// writeIndex persists seg.lastFor as the segment's sidecar index:
// header (magic + segment size), then one CRC-framed record per key
// whose value is the (offset, frame length) pair. Written to a temp
// file and renamed so a crash never leaves a half-index.
func writeIndex(seg *segment) error {
	keys := make([]string, 0, len(seg.lastFor))
	for k := range seg.lastFor {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	var out bytes.Buffer
	out.Write(indexMagic)
	var size [8]byte
	binary.LittleEndian.PutUint64(size[:], uint64(seg.size))
	out.Write(size[:])
	var frame []byte
	for _, k := range keys {
		loc := seg.lastFor[k]
		var v [12]byte
		binary.LittleEndian.PutUint64(v[0:8], uint64(loc.off))
		binary.LittleEndian.PutUint32(v[8:12], uint32(loc.size))
		frame = appendRecord(frame, k, v[:])
		out.Write(frame)
	}

	path := indexPath(seg.path)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, out.Bytes(), 0o644); err != nil {
		return fmt.Errorf("store: writing index %s: %w", filepath.Base(tmp), err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("store: installing index %s: %w", filepath.Base(path), err)
	}
	return nil
}

// loadIndex reads a sealed segment's sidecar index. A missing, stale, or
// corrupt index is not an error — the caller falls back to a full scan.
func loadIndex(seg *segment) (entries []scanEntry, ok bool) {
	buf, err := os.ReadFile(indexPath(seg.path))
	if err != nil {
		return nil, false
	}
	hdr := len(indexMagic) + 8
	if len(buf) < hdr || !bytes.Equal(buf[:len(indexMagic)], indexMagic) {
		return nil, false
	}
	if int64(binary.LittleEndian.Uint64(buf[len(indexMagic):hdr])) != seg.size {
		return nil, false // index describes a different incarnation of this file
	}
	off := int64(hdr)
	for off < int64(len(buf)) {
		key, val, n, err := decodeRecord(buf[off:])
		if err != nil || len(val) != 12 {
			return nil, false
		}
		recOff := int64(binary.LittleEndian.Uint64(val[0:8]))
		recSize := int64(binary.LittleEndian.Uint32(val[8:12]))
		// Bounds are checked without recOff+recSize arithmetic: a corrupt
		// offset near MaxInt64 would overflow the sum to a negative value
		// that sails past a `> seg.size` comparison.
		if recSize < recordLen(1, 0) || recSize > seg.size ||
			recOff < int64(len(segmentMagic)) || recOff > seg.size-recSize {
			return nil, false
		}
		entries = append(entries, scanEntry{key: key, off: recOff, size: recSize})
		off += n
	}
	return entries, true
}

// mergeSegments compacts the live records of the sealed segments into a
// single new segment carrying the highest sealed sequence number. The
// merged file is written aside, synced, and renamed into place before
// its index is written; every crash point replays to the same keydir.
func mergeSegments(dir string, sealed []*segment, keydir map[string]recLoc) (*segment, error) {
	inSealed := make(map[*segment]bool, len(sealed))
	for _, seg := range sealed {
		inSealed[seg] = true
	}
	keys := make([]string, 0, len(keydir))
	for k, loc := range keydir {
		if inSealed[loc.seg] {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)

	seq := sealed[len(sealed)-1].seq
	final := filepath.Join(dir, segName(seq))
	tmpPath := final + ".tmp"
	f, err := os.OpenFile(tmpPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: creating merge file: %w", err)
	}
	cleanup := func() {
		f.Close()
		os.Remove(tmpPath)
	}
	if _, err := f.Write(segmentMagic); err != nil {
		cleanup()
		return nil, fmt.Errorf("store: writing merge header: %w", err)
	}
	merged := &segment{seq: seq, path: final, f: f, size: int64(len(segmentMagic)), lastFor: make(map[string]recLoc, len(keys))}
	var frame []byte
	for _, k := range keys {
		val, err := readRecord(keydir[k], k)
		if err != nil {
			cleanup()
			return nil, err
		}
		frame = appendRecord(frame, k, val)
		if _, err := f.WriteAt(frame, merged.size); err != nil {
			cleanup()
			return nil, fmt.Errorf("store: appending merge record: %w", err)
		}
		merged.lastFor[k] = recLoc{seg: merged, off: merged.size, size: int64(len(frame))}
		merged.size += int64(len(frame))
	}
	if err := f.Sync(); err != nil {
		cleanup()
		return nil, fmt.Errorf("store: syncing merge file: %w", err)
	}
	// The old index describes the file the rename is about to replace;
	// drop it first so no crash point pairs new bytes with old offsets.
	_ = os.Remove(indexPath(final))
	if err := os.Rename(tmpPath, final); err != nil {
		cleanup()
		return nil, fmt.Errorf("store: installing merged segment: %w", err)
	}
	if err := writeIndex(merged); err != nil {
		return nil, err
	}
	return merged, nil
}

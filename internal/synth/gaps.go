package synth

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"scarecrow/internal/evasion"
)

// GapKind classifies why the deception DB failed to steer a minimized
// predicate.
type GapKind string

// Gap kinds.
const (
	// GapMissingDBEntry: the predicate probes a steerable resource
	// (file/process/registry/...) the DB has no entry for — the fix
	// is a DB addition.
	GapMissingDBEntry GapKind = "missing-db-entry"
	// GapHookBypass: the predicate observes through a channel user
	// hooks cannot deceive (PEB memory, CPUID, direct syscalls/WMI) —
	// the paper's §VI-A documented blind spots.
	GapHookBypass GapKind = "hook-bypass"
	// GapInvertedProbe: the predicate inverts a check that fires on
	// genuine machines too (e.g. NOT of an always-true probe) —
	// steering it would require making the machine look *less* like
	// a sandbox, the opposite of Scarecrow's deception.
	GapInvertedProbe GapKind = "inverted-probe"
)

// GapReport is the structured output for one minimized camouflage
// gap: what survived, which techniques it spans, and which resource
// the DB or hook layer should have answered for.
type GapReport struct {
	// Fingerprint identifies the minimized predicate.
	Fingerprint string `json:"fingerprint"`
	// Canonical is the human-readable minimized predicate.
	Canonical string `json:"canonical"`
	// Size is the minimized node count.
	Size int `json:"size"`
	// Techniques are the sorted techniques the leaves span.
	Techniques []string `json:"techniques"`
	// Kind classifies the failure.
	Kind GapKind `json:"kind"`
	// Resources lists the probed resources (sorted) the deception
	// should have answered for.
	Resources []string `json:"resources"`
	// Advice names the concrete fix.
	Advice string `json:"advice"`
}

// unsteerable are the observation channels user-level hooking cannot
// deceive (§VI-A).
var unsteerable = map[evasion.Technique]bool{
	evasion.TechPEB:           true,
	evasion.TechCPUID:         true,
	evasion.TechDirectSyscall: true,
	evasion.TechHookDetect:    true,
}

// Diagnose classifies a minimized gap and names the fix. The
// classification is structural: negated leaves mean the probe
// succeeded on the genuine machine (inverted probe); leaves on
// unsteerable channels mean hook bypass; anything else is a missing
// DB entry for the probed resources.
func Diagnose(n *Node, entries map[string]evasion.CatalogEntry) GapReport {
	r := GapReport{
		Fingerprint: n.Fingerprint(),
		Canonical:   n.Canonical(),
		Size:        n.Size(),
	}
	for _, t := range TechniquesOf(n, entries) {
		r.Techniques = append(r.Techniques, string(t))
	}

	negated := false
	var walk func(m *Node, underNot bool)
	resources := map[string]bool{}
	bypass := false
	walk = func(m *Node, underNot bool) {
		switch m.Op {
		case OpLeaf:
			e := entries[m.Entry]
			resources[string(e.Technique)+"/"+e.Resource] = true
			if underNot {
				negated = true
			}
			if unsteerable[e.Technique] {
				bypass = true
			}
		case OpNot:
			walk(m.Kids[0], !underNot)
		default:
			for _, k := range m.Kids {
				walk(k, underNot)
			}
		}
	}
	walk(n, false)

	for res := range resources {
		r.Resources = append(r.Resources, res)
	}
	sort.Strings(r.Resources)

	switch {
	case negated:
		r.Kind = GapInvertedProbe
		r.Advice = "predicate inverts a probe that succeeds on genuine machines; steering requires environment hardening, not a DB entry"
	case bypass:
		r.Kind = GapHookBypass
		r.Advice = "probe observes through an unhookable channel (" + strings.Join(r.Techniques, ", ") + "); needs kernel-level or hardware-level deception (§VI-A)"
	default:
		r.Kind = GapMissingDBEntry
		r.Advice = "add deception-DB entries for: " + strings.Join(r.Resources, "; ")
	}
	return r
}

// SortReports orders gap reports deterministically: by kind, then
// fingerprint.
func SortReports(reports []GapReport) {
	sort.Slice(reports, func(i, j int) bool {
		if reports[i].Kind != reports[j].Kind {
			return reports[i].Kind < reports[j].Kind
		}
		return reports[i].Fingerprint < reports[j].Fingerprint
	})
}

// WriteFixture persists a minimized gap as a replayable fixture named
// <fingerprint>.json under dir.
func WriteFixture(dir string, f Fixture) (string, error) {
	data, err := EncodeFixture(f)
	if err != nil {
		return "", err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, f.Predicate.Fingerprint()+".json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// LoadFixtures reads every *.json fixture under dir, sorted by file
// name. A missing directory yields an empty slice.
func LoadFixtures(dir string) ([]Fixture, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	var out []Fixture
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			return nil, err
		}
		f, err := DecodeFixture(data)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", filepath.Base(p), err)
		}
		out = append(out, f)
	}
	return out, nil
}

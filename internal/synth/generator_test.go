package synth

import (
	"testing"

	"scarecrow/internal/evasion"
)

// TestGeneratorCoversCatalog closes the catalog loop (ISSUE 8
// satellite 3): across a fixed-seed generation sweep, every catalog
// entry appears in at least one synthesized predicate and every
// evasion.Technique constant is reachable. An entry the generator
// cannot express is itself a blind spot.
func TestGeneratorCoversCatalog(t *testing.T) {
	gen := NewGenerator(2, 4)
	entryHit := map[string]bool{}
	techHit := map[evasion.Technique]bool{}
	const sweep = 300
	for i := 0; i < sweep; i++ {
		n := gen.Generate()
		for _, leaf := range n.Leaves() {
			entryHit[leaf.Entry] = true
			techHit[gen.Entries()[leaf.Entry].Technique] = true
		}
	}
	for _, e := range evasion.Catalog() {
		if !entryHit[e.Name] {
			t.Errorf("catalog entry %q never appeared in %d fixed-seed generations", e.Name, sweep)
		}
	}
	for _, tech := range evasion.Techniques() {
		if !techHit[tech] {
			t.Errorf("technique %q unreachable by the generator", tech)
		}
	}
}

// TestGeneratorDeterministic: same seed, same sequence.
func TestGeneratorDeterministic(t *testing.T) {
	a, b := NewGenerator(17, 3), NewGenerator(17, 3)
	for i := 0; i < 100; i++ {
		na, nb := a.Generate(), b.Generate()
		if na.Canonical() != nb.Canonical() {
			t.Fatalf("generation %d diverges: %q vs %q", i, na.Canonical(), nb.Canonical())
		}
	}
}

// TestGeneratorRespectsBounds: generated and mutated trees always
// satisfy the codec bounds and structural validity.
func TestGeneratorRespectsBounds(t *testing.T) {
	gen := NewGenerator(19, MaxDepth)
	entries := gen.Entries()
	n := gen.Generate()
	for i := 0; i < 500; i++ {
		if err := n.Validate(entries); err != nil {
			t.Fatalf("step %d: invalid tree: %v", i, err)
		}
		if err := CheckBounds(n); err != nil {
			t.Fatalf("step %d: out of bounds: %v", i, err)
		}
		n = gen.Mutate(n)
	}
}

// TestMutateLeavesParentIntact: mutation never aliases or edits the
// parent tree.
func TestMutateLeavesParentIntact(t *testing.T) {
	gen := NewGenerator(23, 3)
	parent := gen.Generate()
	before := parent.Canonical()
	for i := 0; i < 200; i++ {
		_ = gen.Mutate(parent)
		if parent.Canonical() != before {
			t.Fatalf("mutation %d modified the parent: %q → %q", i, before, parent.Canonical())
		}
	}
}

// TestFingerprintOrderSensitive: AND(a,b) and AND(b,a) are distinct
// predicates (evaluation order is semantic under short-circuiting),
// while identical trees collide.
func TestFingerprintOrderSensitive(t *testing.T) {
	a := &Node{Op: OpLeaf, Entry: "file:deepfreeze"}
	b := &Node{Op: OpLeaf, Entry: "wt:dns-cache"}
	ab := &Node{Op: OpAnd, Kids: []*Node{a, b}}
	ba := &Node{Op: OpAnd, Kids: []*Node{b, a}}
	if ab.Fingerprint() == ba.Fingerprint() {
		t.Error("kid order not reflected in fingerprint")
	}
	if ab.Fingerprint() != ab.Clone().Fingerprint() {
		t.Error("clone fingerprint differs")
	}
}

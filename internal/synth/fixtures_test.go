package synth

import (
	"path/filepath"
	"testing"

	"scarecrow/internal/analysis"
	"scarecrow/internal/winsim"
)

// GapsDir is the standing regression corpus: every fixture here was
// once a live camouflage gap the fuzzer found and minimized; its DB
// fix has since landed, and this test replays each forever after.
const GapsDir = "testdata/gaps"

// TestGapFixtures replays every testdata/gaps fixture against the
// STOCK deception database at the fixture's recorded profile and
// seed, and requires the recorded expectation — deactivated, once the
// fix landed (ISSUE 8 acceptance criterion).
func TestGapFixtures(t *testing.T) {
	fixtures, err := LoadFixtures(GapsDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(fixtures) == 0 {
		t.Fatalf("no fixtures under %s — the planted-gap corpus is missing", GapsDir)
	}
	for _, f := range fixtures {
		f := f
		t.Run(f.Fingerprint, func(t *testing.T) {
			if f.Expect != "deactivated" {
				t.Fatalf("fixture expects %q; every landed fixture must expect deactivated", f.Expect)
			}
			ev := NewEvaluator(f.Seed)
			ev.Profile = winsim.ProfileName(f.Profile)
			out := ev.Evaluate(f.Predicate)
			if out.Err != nil {
				t.Fatalf("replay error: %v", out.Err)
			}
			if out.Category != analysis.VerdictDeactivated {
				t.Errorf("fixture %s (%s) replayed to %v, want deactivated — its DB fix regressed.\nNote: %s",
					f.Fingerprint, f.Predicate.Canonical(), out.Category, f.Note)
			}
		})
	}
}

// TestGapFixturesWereRealGaps re-proves each fixture's provenance:
// against the reconstructed legacy DB the predicate still survives.
// A fixture that never survived anything guards nothing.
func TestGapFixturesWereRealGaps(t *testing.T) {
	fixtures, err := LoadFixtures(GapsDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range fixtures {
		f := f
		t.Run(f.Fingerprint, func(t *testing.T) {
			ev := NewEvaluator(f.Seed)
			ev.Profile = winsim.ProfileName(f.Profile)
			ev.DB = legacyDB()
			if out := ev.Evaluate(f.Predicate); !out.Gap {
				t.Errorf("fixture %s does not survive the legacy DB (category=%v) — not a regression guard",
					f.Fingerprint, out.Category)
			}
		})
	}
}

// TestFixtureFileNamesMatchFingerprints: fixture files are named
// <fingerprint>.json so dedup against the corpus is a file-existence
// check.
func TestFixtureFileNamesMatchFingerprints(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join(GapsDir, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range paths {
		fixtures, err := LoadFixtures(filepath.Dir(p))
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range fixtures {
			want := f.Fingerprint + ".json"
			found := false
			for _, q := range paths {
				if filepath.Base(q) == want {
					found = true
				}
			}
			if !found {
				t.Errorf("fixture %s has no file named %s", f.Fingerprint, want)
			}
		}
		break // LoadFixtures already read the whole dir
	}
}

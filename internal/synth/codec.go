package synth

import (
	"encoding/json"
	"fmt"
)

// Codec bounds: a decoded fixture is rejected before compilation when
// it exceeds these, so hostile or corrupted fixture files cannot blow
// the stack or the evaluator's budget.
const (
	// MaxNodes bounds total tree size.
	MaxNodes = 512
	// MaxDepth bounds tree height.
	MaxDepth = 12
	// MaxDelayMS bounds a leaf's pre-probe sleep (one observation
	// window is a minute; a longer sleep would make the probe
	// unreachable).
	MaxDelayMS = 30_000
)

// FixtureVersion is the gap-fixture wire version.
const FixtureVersion = 1

// Fixture is the replayable JSON form of a minimized camouflage gap,
// stored under testdata/gaps/. TestGapFixtures replays every fixture
// forever after: once its DB fix lands, the predicate must evaluate
// to deactivated on the stock database.
type Fixture struct {
	// Version is FixtureVersion.
	Version int `json:"version"`
	// Fingerprint is the predicate's canonical fingerprint (also the
	// fixture's file name stem). DecodeFixture re-derives and checks
	// it.
	Fingerprint string `json:"fingerprint"`
	// Predicate is the minimized surviving core.
	Predicate *Node `json:"predicate"`
	// Profile is the lab machine profile the gap was found on.
	Profile string `json:"profile"`
	// Seed is the machine seed the gap reproduces at.
	Seed int64 `json:"seed"`
	// Expect is the verdict the fixture must replay to — always
	// "deactivated" once the fix lands.
	Expect string `json:"expect"`
	// Note names the DB entry or hook that closes the gap (the fix).
	Note string `json:"note,omitempty"`
}

// EncodeFixture renders a fixture as stable, indented JSON.
func EncodeFixture(f Fixture) ([]byte, error) {
	if f.Predicate == nil {
		return nil, fmt.Errorf("synth: fixture without predicate")
	}
	f.Version = FixtureVersion
	f.Fingerprint = f.Predicate.Fingerprint()
	out, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// DecodeFixture parses and validates a fixture: version, structural
// bounds, catalog membership of every leaf, and fingerprint
// integrity. It never trusts the file's own fingerprint field.
func DecodeFixture(data []byte) (Fixture, error) {
	var f Fixture
	if err := json.Unmarshal(data, &f); err != nil {
		return Fixture{}, fmt.Errorf("synth: decoding fixture: %w", err)
	}
	if f.Version != FixtureVersion {
		return Fixture{}, fmt.Errorf("synth: fixture version %d, want %d", f.Version, FixtureVersion)
	}
	if err := CheckBounds(f.Predicate); err != nil {
		return Fixture{}, err
	}
	if err := f.Predicate.Validate(EntryIndex()); err != nil {
		return Fixture{}, err
	}
	if got := f.Predicate.Fingerprint(); f.Fingerprint != "" && f.Fingerprint != got {
		return Fixture{}, fmt.Errorf("synth: fixture fingerprint %s does not match predicate %s", f.Fingerprint, got)
	}
	f.Fingerprint = f.Predicate.Fingerprint()
	return f, nil
}

// CheckBounds enforces the codec size/depth/delay bounds on a decoded
// tree.
func CheckBounds(n *Node) error {
	if n == nil {
		return fmt.Errorf("synth: fixture without predicate")
	}
	if s := n.Size(); s > MaxNodes {
		return fmt.Errorf("synth: predicate has %d nodes, max %d", s, MaxNodes)
	}
	if d := n.Depth(); d > MaxDepth {
		return fmt.Errorf("synth: predicate depth %d, max %d", d, MaxDepth)
	}
	for _, leaf := range n.Leaves() {
		if leaf.DelayMS > MaxDelayMS {
			return fmt.Errorf("synth: leaf delay %dms, max %dms", leaf.DelayMS, MaxDelayMS)
		}
	}
	return nil
}

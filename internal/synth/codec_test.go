package synth

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestFixtureRoundTrip: encode → decode is the identity on canonical
// form, fingerprint, and metadata.
func TestFixtureRoundTrip(t *testing.T) {
	gen := NewGenerator(11, 3)
	for i := 0; i < 50; i++ {
		n := gen.Generate()
		f := Fixture{
			Predicate: n,
			Profile:   "baremetal-sandbox",
			Seed:      int64(i),
			Expect:    "deactivated",
			Note:      "round-trip",
		}
		data, err := EncodeFixture(f)
		if err != nil {
			t.Fatalf("encode %s: %v", n.Canonical(), err)
		}
		got, err := DecodeFixture(data)
		if err != nil {
			t.Fatalf("decode %s: %v", n.Canonical(), err)
		}
		if got.Predicate.Canonical() != n.Canonical() {
			t.Fatalf("round trip changed predicate: %q → %q", n.Canonical(), got.Predicate.Canonical())
		}
		if got.Fingerprint != n.Fingerprint() || got.Seed != f.Seed || got.Profile != f.Profile {
			t.Fatalf("round trip changed metadata: %+v", got)
		}
	}
}

// TestDecodeRejects: tampered fingerprints, unknown entries, bad ops,
// wrong arity, oversized trees, and absurd delays are all rejected.
func TestDecodeRejects(t *testing.T) {
	valid := func() Fixture {
		return Fixture{
			Version:   FixtureVersion,
			Predicate: &Node{Op: OpLeaf, Entry: "file:deepfreeze"},
			Expect:    "deactivated",
		}
	}
	cases := []struct {
		name   string
		mangle func(*Fixture)
		errHas string
	}{
		{"wrong-version", func(f *Fixture) { f.Version = 99 }, "version"},
		{"tampered-fingerprint", func(f *Fixture) { f.Fingerprint = strings.Repeat("0", 16) }, "fingerprint"},
		{"unknown-entry", func(f *Fixture) { f.Predicate.Entry = "no:such-entry" }, "unknown catalog entry"},
		{"bad-op", func(f *Fixture) { f.Predicate.Op = "xor" }, "unknown op"},
		{"not-arity", func(f *Fixture) {
			f.Predicate = &Node{Op: OpNot, Kids: []*Node{
				{Op: OpLeaf, Entry: "file:deepfreeze"},
				{Op: OpLeaf, Entry: "file:deepfreeze"},
			}}
		}, "not with 2 kids"},
		{"and-arity", func(f *Fixture) {
			f.Predicate = &Node{Op: OpAnd, Kids: []*Node{{Op: OpLeaf, Entry: "file:deepfreeze"}}}
		}, "and with 1 kids"},
		{"leaf-with-kids", func(f *Fixture) {
			f.Predicate = &Node{Op: OpLeaf, Entry: "file:deepfreeze",
				Kids: []*Node{{Op: OpLeaf, Entry: "file:deepfreeze"}}}
		}, "leaf with"},
		{"huge-delay", func(f *Fixture) { f.Predicate.DelayMS = MaxDelayMS + 1 }, "delay"},
		{"nil-predicate", func(f *Fixture) { f.Predicate = nil }, "without predicate"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := valid()
			tc.mangle(&f)
			data, err := json.Marshal(f)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := DecodeFixture(data); err == nil {
				t.Fatalf("decode accepted a mangled fixture (%s)", tc.name)
			} else if !strings.Contains(err.Error(), tc.errHas) {
				t.Fatalf("error %q does not mention %q", err, tc.errHas)
			}
		})
	}
}

// TestDecodeRejectsOversizedTree: a tree exceeding MaxNodes or
// MaxDepth is rejected before any compilation.
func TestDecodeRejectsOversizedTree(t *testing.T) {
	leaf := func() *Node { return &Node{Op: OpLeaf, Entry: "file:deepfreeze"} }
	wide := &Node{Op: OpOr}
	for i := 0; i < MaxNodes; i++ {
		wide.Kids = append(wide.Kids, leaf())
	}
	deep := leaf()
	for i := 0; i < MaxDepth+1; i++ {
		deep = &Node{Op: OpNot, Kids: []*Node{deep}}
	}
	for name, n := range map[string]*Node{"wide": wide, "deep": deep} {
		data, err := json.Marshal(Fixture{Version: FixtureVersion, Predicate: n})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := DecodeFixture(data); err == nil {
			t.Errorf("%s tree accepted", name)
		}
	}
}

// FuzzPredicateCodec: decode never panics, and whatever decodes
// successfully re-encodes to a byte-stable fixture that decodes to
// the same canonical predicate (ISSUE 8 satellite 2).
func FuzzPredicateCodec(f *testing.F) {
	gen := NewGenerator(13, 3)
	for i := 0; i < 8; i++ {
		data, err := EncodeFixture(Fixture{
			Predicate: gen.Generate(),
			Profile:   "baremetal-sandbox",
			Expect:    "deactivated",
		})
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte(`{"version":1,"predicate":{"op":"leaf","entry":"file:deepfreeze"}}`))
	f.Add([]byte(`{"version":1,"predicate":{"op":"not","kids":[]}}`))
	f.Add([]byte(`not json`))
	f.Fuzz(func(t *testing.T, data []byte) {
		fix, err := DecodeFixture(data)
		if err != nil {
			return
		}
		out, err := EncodeFixture(fix)
		if err != nil {
			t.Fatalf("re-encode of a decoded fixture failed: %v", err)
		}
		again, err := DecodeFixture(out)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if again.Predicate.Canonical() != fix.Predicate.Canonical() {
			t.Fatalf("canonical drift: %q → %q", fix.Predicate.Canonical(), again.Predicate.Canonical())
		}
		if again.Fingerprint != fix.Fingerprint {
			t.Fatalf("fingerprint drift: %s → %s", fix.Fingerprint, again.Fingerprint)
		}
	})
}

package synth

import (
	"testing"

	"scarecrow/internal/core"
)

// legacyDB reconstructs the pre-fix deception database by ablating
// the Deep Freeze entries the planted-gap fix added to core.NewDB —
// the state of the world before ISSUE 8 landed.
func legacyDB() *core.DB {
	db := core.NewDB()
	db.RemoveFile(`C:\Program Files\Faronics\Deep Freeze\DFServ.exe`)
	db.RemoveProcess("dfserv.exe")
	db.RemoveProcess("frzstate2k.exe")
	db.RemoveRegKey(`HKLM\SOFTWARE\Faronics\Deep Freeze 6`)
	return db
}

// plantedGap is the known camouflage gap of ISSUE 8 satellite 1: a
// conjunction spanning TechTiming + TechWearTear + TechFile whose
// file leaf (a Faronics Deep Freeze binary — reboot-restore software
// the legacy DB had no entry for) defeats the deception. Under the
// legacy DB it survives; its minimal core is the single file leaf.
func plantedGap() *Node {
	return &Node{Op: OpAnd, Kids: []*Node{
		{Op: OpLeaf, Entry: "time:sleep-skip", Variant: 1},
		{Op: OpLeaf, Entry: "wt:dns-cache"},
		{Op: OpLeaf, Entry: "file:deepfreeze"},
	}}
}

// TestPlantedGapSurvivesLegacyDB pins the gap's ground truth: the
// planted conjunction survives (payload runs in both executions)
// against the legacy database and deactivates against the stock one.
func TestPlantedGapSurvivesLegacyDB(t *testing.T) {
	ev := NewEvaluator(42)
	ev.DB = legacyDB()
	out := ev.Evaluate(plantedGap())
	if out.Err != nil {
		t.Fatal(out.Err)
	}
	if !out.Gap {
		t.Fatalf("planted gap did not survive the legacy DB: category=%v rawMutations=%d",
			out.Category, out.RawMutations)
	}

	stock := NewEvaluator(42)
	if out := stock.Evaluate(plantedGap()); out.Gap {
		t.Fatalf("planted gap still survives the STOCK DB — the Deep Freeze fix regressed (category=%v)",
			out.Category)
	}
}

// TestPlantedGapFoundAndMinimized is the bounded-budget discovery
// proof: a fixed-seed fuzzer campaign against the legacy DB
// rediscovers the Deep Freeze gap within 400 generations and
// minimizes it to a single-leaf core naming a Deep Freeze resource.
func TestPlantedGapFoundAndMinimized(t *testing.T) {
	f := NewFuzzer(1, 3)
	f.Ev.DB = legacyDB()
	rep := f.Run(400)
	if rep.Generations != 400 {
		t.Fatalf("generations = %d, want 400", rep.Generations)
	}
	var hit *GapReport
	for i, g := range rep.Gaps {
		if g.Kind != GapMissingDBEntry {
			continue
		}
		min := rep.MinimizedGaps[g.Fingerprint]
		for _, leaf := range min.Leaves() {
			switch leaf.Entry {
			case "file:deepfreeze", "proc:deepfreeze", "reg:deepfreeze":
				hit = &rep.Gaps[i]
			}
		}
	}
	if hit == nil {
		for _, g := range rep.Gaps {
			t.Logf("found gap: [%s] %s", g.Kind, g.Canonical)
		}
		t.Fatal("fuzzer did not rediscover the planted Deep Freeze gap within 400 generations at seed 1")
	}
	min := rep.MinimizedGaps[hit.Fingerprint]
	if min.Size() != 1 {
		t.Errorf("minimized planted gap has %d nodes, want 1 (single leaf): %s", min.Size(), min.Canonical())
	}
	if hit.Kind != GapMissingDBEntry {
		t.Errorf("planted gap classified %s, want %s", hit.Kind, GapMissingDBEntry)
	}
	if len(hit.Resources) == 0 {
		t.Error("planted gap report names no resource")
	}
}

// TestFuzzerDeterministic: two campaigns at the same seed and budget
// produce identical reports — generation, evaluation seeding, and
// ordering are all pure functions of (seed, budget, depth).
func TestFuzzerDeterministic(t *testing.T) {
	run := func() Report {
		f := NewFuzzer(7, 3)
		f.Ev.DB = legacyDB()
		return f.Run(150)
	}
	a, b := run(), run()
	if a.Generations != b.Generations || a.UniqueCoverage != b.UniqueCoverage || len(a.Gaps) != len(b.Gaps) {
		t.Fatalf("campaign totals diverge: %+v vs %+v", a, b)
	}
	for i := range a.Gaps {
		if a.Gaps[i].Fingerprint != b.Gaps[i].Fingerprint || a.Gaps[i].Canonical != b.Gaps[i].Canonical {
			t.Fatalf("gap %d diverges: %q vs %q", i, a.Gaps[i].Canonical, b.Gaps[i].Canonical)
		}
	}
}

// TestCoverageGrowth: the coverage signal actually grows — a modest
// fixed-seed campaign lights up a healthy slice of the api:/hook:/db:
// alphabet, and unique coverage is monotone over additional budget.
func TestCoverageGrowth(t *testing.T) {
	f := NewFuzzer(3, 3)
	first := f.Run(60).UniqueCoverage
	if first < 20 {
		t.Errorf("60 generations produced only %d unique coverage keys", first)
	}
	second := f.Run(120).UniqueCoverage
	if second < first {
		t.Errorf("coverage shrank with budget: %d then %d", first, second)
	}
}

// TestEvaluatorMemoizes: re-evaluating the same predicate costs no
// second lab run.
func TestEvaluatorMemoizes(t *testing.T) {
	ev := NewEvaluator(9)
	n := plantedGap()
	_ = ev.Evaluate(n)
	runs := ev.Runs
	_ = ev.Evaluate(n.Clone())
	if ev.Runs != runs {
		t.Fatalf("memo miss: runs went %d → %d for an identical predicate", runs, ev.Runs)
	}
}

// TestBatchMatchesSerial: the worker-pool fan-out returns exactly the
// serial outcomes, in input order.
func TestBatchMatchesSerial(t *testing.T) {
	gen := NewGenerator(5, 3)
	nodes := make([]*Node, 12)
	for i := range nodes {
		nodes[i] = gen.Generate()
	}
	serial := NewEvaluator(5)
	par := NewEvaluator(5)
	par.Workers = 4
	want := serial.EvaluateBatch(nodes)
	got := par.EvaluateBatch(nodes)
	for i := range want {
		if want[i].Fingerprint != got[i].Fingerprint || want[i].Gap != got[i].Gap ||
			want[i].Category != got[i].Category {
			t.Fatalf("outcome %d diverges: %+v vs %+v", i, want[i], got[i])
		}
	}
}

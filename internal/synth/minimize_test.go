package synth

import (
	"testing"
)

// minimizerCases are predicate trees that all survive the legacy DB,
// each with a known minimal core.
func minimizerCases() []struct {
	name string
	tree *Node
	want string // canonical form of the expected minimum
} {
	df := func() *Node { return &Node{Op: OpLeaf, Entry: "file:deepfreeze"} }
	return []struct {
		name string
		tree *Node
		want string
	}{
		{
			name: "planted-conjunction",
			tree: plantedGap(),
			want: "file:deepfreeze@0",
		},
		{
			name: "already-minimal",
			tree: df(),
			want: "file:deepfreeze@0",
		},
		{
			name: "delay-stripped",
			tree: &Node{Op: OpLeaf, Entry: "file:deepfreeze", DelayMS: 1000},
			want: "file:deepfreeze@0",
		},
		{
			name: "double-negation",
			tree: &Node{Op: OpNot, Kids: []*Node{{Op: OpNot, Kids: []*Node{df()}}}},
			want: "file:deepfreeze@0",
		},
		{
			name: "disjunction-of-gaps",
			tree: &Node{Op: OpOr, Kids: []*Node{
				df(),
				{Op: OpLeaf, Entry: "proc:deepfreeze"},
			}},
			want: "file:deepfreeze@0",
		},
		{
			name: "wide-conjunction",
			tree: &Node{Op: OpAnd, Kids: []*Node{
				{Op: OpLeaf, Entry: "wt:dns-cache"},
				{Op: OpLeaf, Entry: "wt:autoruns"},
				df(),
			}},
			want: "file:deepfreeze@0",
		},
	}
}

// TestMinimizeTable: each known-gap tree shrinks to its expected
// minimal core.
func TestMinimizeTable(t *testing.T) {
	for _, tc := range minimizerCases() {
		t.Run(tc.name, func(t *testing.T) {
			ev := NewEvaluator(42)
			ev.DB = legacyDB()
			if !ev.Evaluate(tc.tree).Gap {
				t.Fatalf("precondition: %s is not a gap under the legacy DB", tc.tree.Canonical())
			}
			min := Minimize(tc.tree, ev)
			if got := min.Canonical(); got != tc.want {
				t.Errorf("minimized to %q, want %q", got, tc.want)
			}
		})
	}
}

// TestMinimizeIdempotent: minimize(minimize(p)) == minimize(p) for
// every table case (ISSUE 8 satellite 2).
func TestMinimizeIdempotent(t *testing.T) {
	for _, tc := range minimizerCases() {
		t.Run(tc.name, func(t *testing.T) {
			ev := NewEvaluator(42)
			ev.DB = legacyDB()
			once := Minimize(tc.tree, ev)
			twice := Minimize(once, ev)
			if once.Canonical() != twice.Canonical() {
				t.Errorf("not idempotent: %q then %q", once.Canonical(), twice.Canonical())
			}
		})
	}
}

// TestMinimizeDeterministic: three independent evaluators at the same
// seed minimize to byte-identical canonical forms.
func TestMinimizeDeterministic(t *testing.T) {
	for _, tc := range minimizerCases() {
		t.Run(tc.name, func(t *testing.T) {
			var got []string
			for i := 0; i < 3; i++ {
				ev := NewEvaluator(42)
				ev.DB = legacyDB()
				got = append(got, Minimize(tc.tree, ev).Canonical())
			}
			if got[0] != got[1] || got[1] != got[2] {
				t.Errorf("nondeterministic minimization: %q %q %q", got[0], got[1], got[2])
			}
		})
	}
}

// TestMinimizeResultStillSurvives: the minimizer never returns a
// predicate that no longer survives (the contract fixtures rely on).
func TestMinimizeResultStillSurvives(t *testing.T) {
	for _, tc := range minimizerCases() {
		t.Run(tc.name, func(t *testing.T) {
			ev := NewEvaluator(42)
			ev.DB = legacyDB()
			min := Minimize(tc.tree, ev)
			if !ev.Evaluate(min).Gap {
				t.Errorf("minimized predicate %q is not a gap", min.Canonical())
			}
		})
	}
}

// TestMinimizeNonGapUnchanged: minimizing a predicate that is not a
// gap returns it unchanged (clone) rather than inventing a survivor.
func TestMinimizeNonGapUnchanged(t *testing.T) {
	ev := NewEvaluator(42) // stock DB: deep freeze is steered now
	tree := plantedGap()
	min := Minimize(tree, ev)
	if min.Canonical() != tree.Canonical() {
		t.Fatalf("non-gap was rewritten: %q → %q", tree.Canonical(), min.Canonical())
	}
}

package synth

import (
	"hash/fnv"
	"sync"

	"scarecrow/internal/analysis"
	"scarecrow/internal/core"
	"scarecrow/internal/evasion"
	"scarecrow/internal/winsim"
)

// Outcome is one predicate's evaluation through the lab.
type Outcome struct {
	// Fingerprint identifies the evaluated predicate.
	Fingerprint string
	// Category is the lab verdict.
	Category analysis.VerdictCategory
	// RawMutations counts the raw run's durable changes; a survivor
	// with zero raw mutations is degenerate (its predicate fires on
	// the genuine machine too), not a camouflage gap.
	RawMutations int
	// Gap marks a genuine camouflage gap: the payload ran in BOTH
	// runs — the deception failed to steer the predicate.
	Gap bool
	// Coverage is the sorted coverage-key set of the run.
	Coverage []string
	// Err carries a contained run failure.
	Err error
}

// Evaluator runs predicates through an analysis.Lab with per-predicate
// memoization. The machine seed for a predicate is a pure function of
// (base seed, fingerprint), so outcomes are reproducible regardless of
// evaluation order or batching — which is what makes the minimizer
// deterministic and the memo cache sound.
type Evaluator struct {
	// Profile selects the lab machines (default bare-metal sandbox).
	Profile winsim.ProfileName
	// DB optionally replaces the stock deception database (the
	// planted-gap tests evaluate against a legacy DB with the fix
	// ablated).
	DB *core.DB
	// Seed is the campaign base seed.
	Seed int64
	// Workers bounds EvaluateBatch parallelism; 0 means serial.
	Workers int

	entries map[string]evasion.CatalogEntry

	mu   sync.Mutex
	memo map[string]Outcome
	lab  *analysis.Lab
	// Runs counts actual (non-memoized) lab executions.
	Runs int
}

// NewEvaluator builds an evaluator over the stock catalog.
func NewEvaluator(seed int64) *Evaluator {
	return &Evaluator{
		Profile: winsim.ProfileBareMetalSandbox,
		Seed:    seed,
		entries: EntryIndex(),
		memo:    make(map[string]Outcome),
	}
}

// Entries returns the evaluator's catalog index.
func (ev *Evaluator) Entries() map[string]evasion.CatalogEntry { return ev.entries }

// SeedFor derives the deterministic machine seed for a predicate.
func (ev *Evaluator) SeedFor(fingerprint string) int64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(fingerprint))
	return ev.Seed ^ int64(h.Sum64())
}

// labFor lazily builds the shared lab. analysis.Lab is safe for
// concurrent runs (Sweep shares one across workers); only
// reconfiguration races, and the evaluator never reconfigures after
// construction.
func (ev *Evaluator) labFor() *analysis.Lab {
	ev.mu.Lock()
	defer ev.mu.Unlock()
	if ev.lab == nil {
		lab := analysis.NewLab(0)
		lab.Profile = ev.Profile
		lab.Config = core.RecommendedConfig(string(ev.Profile))
		lab.DB = ev.DB
		ev.lab = lab
	}
	return ev.lab
}

// Evaluate runs one predicate (memoized by fingerprint).
func (ev *Evaluator) Evaluate(n *Node) Outcome {
	fp := n.Fingerprint()
	ev.mu.Lock()
	if out, ok := ev.memo[fp]; ok {
		ev.mu.Unlock()
		return out
	}
	ev.mu.Unlock()

	out := ev.evaluateUncached(n, fp)

	ev.mu.Lock()
	ev.memo[fp] = out
	ev.Runs++
	ev.mu.Unlock()
	return out
}

func (ev *Evaluator) evaluateUncached(n *Node, fp string) Outcome {
	spec, err := ToSpecimen(n, ev.entries)
	if err != nil {
		return Outcome{Fingerprint: fp, Category: analysis.VerdictError, Err: err}
	}
	res := ev.labFor().RunSampleSeeded(spec, ev.SeedFor(fp))
	out := Outcome{
		Fingerprint:  fp,
		Category:     res.Verdict.Category,
		RawMutations: res.Verdict.RawMutations,
		Coverage:     res.CoverageKeys(),
		Err:          res.Err,
	}
	out.Gap = out.Err == nil &&
		out.Category == analysis.VerdictSurvived &&
		out.RawMutations > 0
	return out
}

// EvaluateBatch fans a generation of predicates across workers —
// the campaign-engine pattern (bounded fan-out, deterministic
// per-item seeds) without the HTTP layer. Results align with the
// input slice.
func (ev *Evaluator) EvaluateBatch(nodes []*Node) []Outcome {
	out := make([]Outcome, len(nodes))
	workers := ev.Workers
	if workers <= 1 || len(nodes) <= 1 {
		for i, n := range nodes {
			out[i] = ev.Evaluate(n)
		}
		return out
	}
	if workers > len(nodes) {
		workers = len(nodes)
	}
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				out[i] = ev.Evaluate(nodes[i])
			}
		}()
	}
	for i := range nodes {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return out
}

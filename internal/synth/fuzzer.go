package synth

import (
	"sort"
)

// Fuzzer is the coverage-guided campaign loop: generate/mutate →
// evaluate through the lab → feed coverage back into corpus
// selection → minimize and deduplicate survivors. Deterministic for
// a fixed (seed, budget, max depth): generation, seeding, and
// evaluation are all pure functions of those inputs.
type Fuzzer struct {
	Gen *Generator
	Ev  *Evaluator
	// BatchSize is the generation width fanned through the evaluator
	// per round (the campaign-engine quota analogue).
	BatchSize int

	// corpus holds interesting predicates (those that produced new
	// coverage), in discovery order; mutation draws from it
	// round-robin.
	corpus []*Node
	// seen is the global coverage-key set.
	seen map[string]bool
	// gaps maps minimized-gap fingerprints to reports (dedup).
	gaps map[string]GapReport
	// minimized maps minimized fingerprints to their trees.
	minimized map[string]*Node

	// Stats.
	Generations  int
	CoverageSize int
	// NewCoverageEvents counts generations that produced at least one
	// unseen coverage key.
	NewCoverageEvents int
}

// NewFuzzer wires a generator and evaluator with a shared seed.
func NewFuzzer(seed int64, maxDepth int) *Fuzzer {
	return &Fuzzer{
		Gen:       NewGenerator(seed, maxDepth),
		Ev:        NewEvaluator(seed),
		BatchSize: 16,
		seen:      make(map[string]bool),
		gaps:      make(map[string]GapReport),
		minimized: make(map[string]*Node),
	}
}

// Report is a fuzzing campaign's outcome.
type Report struct {
	// Generations is the number of predicates evaluated (including
	// memo hits).
	Generations int
	// LabRuns is the number of actual paired lab executions.
	LabRuns int
	// UniqueCoverage is the final coverage-key count.
	UniqueCoverage int
	// Gaps are the minimized, deduplicated camouflage gaps, sorted
	// by kind then fingerprint.
	Gaps []GapReport
	// MinimizedGaps maps fingerprints to minimized predicates, for
	// fixture emission.
	MinimizedGaps map[string]*Node
}

// Run executes up to budget generations and returns the campaign
// report. Calling Run again continues the same campaign with a fresh
// budget.
func (f *Fuzzer) Run(budget int) Report {
	for f.Generations < budget {
		width := f.BatchSize
		if remaining := budget - f.Generations; width > remaining {
			width = remaining
		}
		batch := make([]*Node, width)
		for i := range batch {
			batch[i] = f.next()
		}
		outcomes := f.Ev.EvaluateBatch(batch)
		for i, out := range outcomes {
			f.Generations++
			f.observe(batch[i], out)
		}
	}
	return f.report()
}

// next picks the round's predicate: mutate a corpus member when one
// exists (biased to recent discoveries), otherwise generate fresh.
// One in four predicates is always fresh so the fuzzer keeps probing
// unexplored catalog regions even with a rich corpus.
func (f *Fuzzer) next() *Node {
	if len(f.corpus) == 0 || f.Generations%4 == 0 {
		return f.Gen.Generate()
	}
	parent := f.corpus[f.Generations%len(f.corpus)]
	return f.Gen.Mutate(parent)
}

// observe folds one outcome into coverage, corpus, and gap state.
func (f *Fuzzer) observe(n *Node, out Outcome) {
	if out.Err != nil {
		return
	}
	fresh := false
	for _, k := range out.Coverage {
		if !f.seen[k] {
			f.seen[k] = true
			fresh = true
		}
	}
	f.CoverageSize = len(f.seen)
	if fresh {
		f.NewCoverageEvents++
		f.corpus = append(f.corpus, n.Clone())
	}
	if !out.Gap {
		return
	}
	core := Minimize(n, f.Ev)
	fp := core.Fingerprint()
	if _, dup := f.gaps[fp]; dup {
		return
	}
	f.gaps[fp] = Diagnose(core, f.Ev.Entries())
	f.minimized[fp] = core
}

// report snapshots the campaign state into a Report with
// deterministic ordering.
func (f *Fuzzer) report() Report {
	r := Report{
		Generations:    f.Generations,
		LabRuns:        f.Ev.Runs,
		UniqueCoverage: f.CoverageSize,
		MinimizedGaps:  make(map[string]*Node, len(f.minimized)),
	}
	fps := make([]string, 0, len(f.gaps))
	for fp := range f.gaps {
		fps = append(fps, fp)
	}
	sort.Strings(fps)
	for _, fp := range fps {
		r.Gaps = append(r.Gaps, f.gaps[fp])
		r.MinimizedGaps[fp] = f.minimized[fp].Clone()
	}
	SortReports(r.Gaps)
	return r
}

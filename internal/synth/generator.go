package synth

import (
	"math/rand"

	"scarecrow/internal/evasion"
)

// Generator synthesizes and mutates predicate trees from the evasion
// catalog, deterministically from its seed. Catalog-entry selection
// is biased toward entries no prior generation used — the
// catalog-closure half of the coverage feedback; the run-trace half
// (api:/hook:/db: keys) biases which predicates the fuzzer keeps
// mutating.
type Generator struct {
	rng     *rand.Rand
	catalog []evasion.CatalogEntry
	entries map[string]evasion.CatalogEntry
	// used counts how many generated leaves referenced each entry;
	// pickEntry prefers never-used entries so a fixed-seed sweep
	// reaches the whole catalog quickly (TestGeneratorCoversCatalog).
	used map[string]int
	// MaxDepth bounds generated trees (connective nesting).
	MaxDepth int
}

// NewGenerator builds a deterministic generator over the full
// catalog.
func NewGenerator(seed int64, maxDepth int) *Generator {
	if maxDepth < 1 {
		maxDepth = 1
	}
	if maxDepth > MaxDepth {
		maxDepth = MaxDepth
	}
	return &Generator{
		rng:      rand.New(rand.NewSource(seed)),
		catalog:  evasion.Catalog(),
		entries:  EntryIndex(),
		used:     make(map[string]int),
		MaxDepth: maxDepth,
	}
}

// Entries exposes the generator's entry index (shared with the
// evaluator and minimizer so every component compiles against the
// same catalog).
func (g *Generator) Entries() map[string]evasion.CatalogEntry { return g.entries }

// pickEntry selects a catalog entry, strongly preferring entries no
// generated leaf has used yet. Among unused (or among all, once the
// catalog is exhausted) the pick is uniform over declaration order —
// deterministic for a fixed seed.
func (g *Generator) pickEntry() evasion.CatalogEntry {
	var fresh []evasion.CatalogEntry
	for _, e := range g.catalog {
		if g.used[e.Name] == 0 {
			fresh = append(fresh, e)
		}
	}
	pool := g.catalog
	// 7-in-8 bias toward unexplored entries; the remainder keeps
	// revisiting explored ones so conjunctions can pair old with new.
	if len(fresh) > 0 && g.rng.Intn(8) != 0 {
		pool = fresh
	}
	e := pool[g.rng.Intn(len(pool))]
	g.used[e.Name]++
	return e
}

// leaf synthesizes a random leaf: fresh-ish entry, random variant,
// occasional timing delta.
func (g *Generator) leaf() *Node {
	e := g.pickEntry()
	n := &Node{Op: OpLeaf, Entry: e.Name, Variant: g.rng.Intn(e.Variants)}
	if g.rng.Intn(6) == 0 {
		n.DelayMS = []int{50, 250, 1000, 5000}[g.rng.Intn(4)]
	}
	return n
}

// Generate synthesizes a fresh predicate tree of at most MaxDepth.
func (g *Generator) Generate() *Node {
	return g.tree(g.MaxDepth)
}

func (g *Generator) tree(depth int) *Node {
	if depth <= 1 {
		return g.leaf()
	}
	switch g.rng.Intn(10) {
	case 0, 1, 2, 3: // 40%: leaf — keep trees small on average
		return g.leaf()
	case 4: // 10%: negation
		return &Node{Op: OpNot, Kids: []*Node{g.tree(depth - 1)}}
	case 5, 6, 7: // 30%: conjunction of 2-3
		return g.connective(OpAnd, depth)
	default: // 20%: disjunction of 2-3
		return g.connective(OpOr, depth)
	}
}

func (g *Generator) connective(op Op, depth int) *Node {
	n := &Node{Op: op, Kids: make([]*Node, 2+g.rng.Intn(2))}
	for i := range n.Kids {
		n.Kids[i] = g.tree(depth - 1)
	}
	return n
}

// Mutate derives a new predicate from a parent by one structural
// edit. The parent is not modified. Mutations preserve validity and
// the MaxDepth/MaxNodes bounds (a growth that would exceed them falls
// back to a fresh leaf swap).
func (g *Generator) Mutate(parent *Node) *Node {
	n := parent.Clone()
	spots := collect(n)
	target := spots[g.rng.Intn(len(spots))]
	switch g.rng.Intn(7) {
	case 0: // replace the target subtree with a fresh leaf
		*target = *g.leaf()
	case 1: // negate the target
		if n.Depth() < g.MaxDepth {
			inner := target.Clone()
			*target = Node{Op: OpNot, Kids: []*Node{inner}}
		} else {
			*target = *g.leaf()
		}
	case 2: // wrap the target in a conjunction/disjunction with a fresh leaf
		if n.Depth() < g.MaxDepth {
			op := OpAnd
			if g.rng.Intn(2) == 1 {
				op = OpOr
			}
			inner := target.Clone()
			*target = Node{Op: op, Kids: []*Node{inner, g.leaf()}}
		} else {
			*target = *g.leaf()
		}
	case 3: // swap two kids of a connective (ordering variant)
		if len(target.Kids) >= 2 {
			i, j := g.rng.Intn(len(target.Kids)), g.rng.Intn(len(target.Kids))
			target.Kids[i], target.Kids[j] = target.Kids[j], target.Kids[i]
		} else if target.Op == OpLeaf {
			g.mutateLeaf(target)
		}
	case 4: // drop a kid from a wide connective
		if (target.Op == OpAnd || target.Op == OpOr) && len(target.Kids) > 2 {
			i := g.rng.Intn(len(target.Kids))
			target.Kids = append(target.Kids[:i:i], target.Kids[i+1:]...)
		} else if target.Op == OpLeaf {
			g.mutateLeaf(target)
		}
	case 5: // variant or delay tweak on a leaf
		if target.Op == OpLeaf {
			g.mutateLeaf(target)
		} else {
			*target = *g.leaf()
		}
	default: // unwrap a NOT
		if target.Op == OpNot {
			*target = *target.Kids[0].Clone()
		} else if target.Op == OpLeaf {
			g.mutateLeaf(target)
		}
	}
	if CheckBounds(n) != nil {
		// Mutation overflowed the codec bounds; fall back to a fresh
		// small tree so the fuzzer never stalls.
		return g.tree(2)
	}
	return n
}

// mutateLeaf tweaks a leaf's variant or timing delta in place.
func (g *Generator) mutateLeaf(leaf *Node) {
	e, ok := g.entries[leaf.Entry]
	if !ok {
		*leaf = *g.leaf()
		return
	}
	if g.rng.Intn(2) == 0 && e.Variants > 1 {
		leaf.Variant = (leaf.Variant + 1 + g.rng.Intn(e.Variants-1)) % e.Variants
	} else {
		switch g.rng.Intn(3) {
		case 0:
			leaf.DelayMS = 0
		case 1:
			leaf.DelayMS = 250
		default:
			leaf.DelayMS = 2000
		}
	}
}

// collect gathers every node in the tree (pre-order) for mutation
// targeting.
func collect(n *Node) []*Node {
	out := []*Node{n}
	for _, k := range n.Kids {
		out = append(out, collect(k)...)
	}
	return out
}

package synth

// Minimize delta-debugs a surviving predicate down to a minimal
// surviving core: it repeatedly applies the first size-reducing
// rewrite that preserves the gap, until none applies. The candidate
// order is a pure function of the tree shape and the evaluator is
// memoized with fingerprint-derived seeds, so minimization is
// deterministic and — because the result admits no further accepted
// rewrite — idempotent: Minimize(Minimize(p)) == Minimize(p).
//
// Rewrites, tried in order at each node (pre-order):
//  1. hoist: replace the whole tree with one subtree of a connective
//  2. drop: remove one kid from a ≥3-kid and/or
//  3. unwrap: replace not(x) with x
//  4. undelay: zero a leaf's timing delta
//
// The input predicate must be a gap under ev; Minimize returns the
// input unchanged (cloned) otherwise.
func Minimize(n *Node, ev *Evaluator) *Node {
	cur := n.Clone()
	if !ev.Evaluate(cur).Gap {
		return cur
	}
	for {
		next, ok := shrinkStep(cur, ev)
		if !ok {
			return cur
		}
		cur = next
	}
}

// shrinkStep returns the first candidate rewrite of cur that still
// survives as a gap.
func shrinkStep(cur *Node, ev *Evaluator) (*Node, bool) {
	for _, cand := range candidates(cur) {
		if cand.Size() >= cur.Size() && !lessDelay(cand, cur) {
			continue
		}
		if ev.Evaluate(cand).Gap {
			return cand, true
		}
	}
	return nil, false
}

// lessDelay reports whether a has strictly less total leaf delay than
// b (the undelay rewrite keeps size equal but reduces delay, so the
// size guard alone would reject it).
func lessDelay(a, b *Node) bool {
	return totalDelay(a) < totalDelay(b)
}

func totalDelay(n *Node) int {
	sum := 0
	for _, leaf := range n.Leaves() {
		sum += leaf.DelayMS
	}
	return sum
}

// candidates enumerates every single-rewrite reduction of the tree,
// in deterministic order: for each node in pre-order, hoists first,
// then drops, then unwraps, then undelays.
func candidates(root *Node) []*Node {
	var out []*Node

	// rebuild clones root with the node at path replaced by repl
	// (repl nil means "remove from parent's kids" — only valid for
	// kids of wide connectives, enforced by the caller).
	var paths [][]int
	var walk func(n *Node, path []int)
	walk = func(n *Node, path []int) {
		paths = append(paths, append([]int(nil), path...))
		for i, k := range n.Kids {
			walk(k, append(path, i))
		}
	}
	walk(root, nil)

	for _, path := range paths {
		node := at(root, path)
		switch node.Op {
		case OpAnd, OpOr:
			// hoist each kid into this node's position
			for i := range node.Kids {
				out = append(out, replaceAt(root, path, node.Kids[i].Clone()))
			}
			// drop each kid, when ≥ 3 remain
			if len(node.Kids) > 2 {
				for i := range node.Kids {
					slim := node.Clone()
					slim.Kids = append(slim.Kids[:i:i], slim.Kids[i+1:]...)
					out = append(out, replaceAt(root, path, slim))
				}
			}
		case OpNot:
			// Double negation collapses in one step: not(x) alone has
			// different semantics than not(not(x)), so the two
			// single-unwrap path would stall at a non-surviving
			// intermediate.
			if node.Kids[0].Op == OpNot {
				out = append(out, replaceAt(root, path, node.Kids[0].Kids[0].Clone()))
			}
			out = append(out, replaceAt(root, path, node.Kids[0].Clone()))
		case OpLeaf:
			if node.DelayMS > 0 {
				plain := node.Clone()
				plain.DelayMS = 0
				out = append(out, replaceAt(root, path, plain))
			}
		}
	}
	return out
}

// at resolves a kid-index path to its node.
func at(root *Node, path []int) *Node {
	n := root
	for _, i := range path {
		n = n.Kids[i]
	}
	return n
}

// replaceAt clones root with the node at path replaced by repl.
func replaceAt(root *Node, path []int, repl *Node) *Node {
	if len(path) == 0 {
		return repl
	}
	out := root.Clone()
	parent := at(out, path[:len(path)-1])
	parent.Kids[path[len(path)-1]] = repl
	return out
}

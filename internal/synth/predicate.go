// Package synth is Scarecrow's adversarial QA harness: a
// coverage-guided fuzzer that composes evasive predicates from the
// evasion check catalog, runs them as synthetic specimens through
// analysis.Lab, and minimizes every surviving predicate into the
// smallest camouflage gap that defeats the deception DB. Minimized
// gaps become replayable JSON fixtures under testdata/gaps/ and
// structured reports naming the DB entry or hook that should have
// steered them (ISSUE 8; ROADMAP "coverage-guided specimen
// synthesis").
package synth

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"time"

	"scarecrow/internal/evasion"
	"scarecrow/internal/malware"
	"scarecrow/internal/winapi"
)

// Op is a predicate-tree node operator.
type Op string

// Node operators. A leaf names a catalog entry; the connectives give
// the bounded-depth boolean grammar of the generator (§II of the
// paper calls real evasive logic "the ⋁ of checks"; conjunctions and
// negations are the compositions the hand-written corpus never
// explores).
const (
	OpLeaf Op = "leaf"
	OpNot  Op = "not"
	OpAnd  Op = "and"
	OpOr   Op = "or"
)

// Node is one predicate-tree node. Kid order is semantic: evaluation
// short-circuits left to right exactly like compiled evasive logic,
// so AND(a,b) and AND(b,a) are distinct predicates (ordering
// variants) with distinct fingerprints.
type Node struct {
	Op Op `json:"op"`
	// Entry names the catalog entry (leaves only).
	Entry string `json:"entry,omitempty"`
	// Variant selects the entry's parameter variant (leaves only;
	// clamped into range at compile time).
	Variant int `json:"variant,omitempty"`
	// DelayMS, when positive, sleeps that many virtual milliseconds
	// before probing (leaves only) — the timing-delta variant: the
	// sleep moves the probe across tick-acceleration boundaries.
	DelayMS int `json:"delay_ms,omitempty"`
	// Kids are the operands: exactly 1 for not, ≥ 2 for and/or.
	Kids []*Node `json:"kids,omitempty"`
}

// Clone deep-copies the tree.
func (n *Node) Clone() *Node {
	if n == nil {
		return nil
	}
	c := &Node{Op: n.Op, Entry: n.Entry, Variant: n.Variant, DelayMS: n.DelayMS}
	if n.Kids != nil {
		c.Kids = make([]*Node, len(n.Kids))
		for i, k := range n.Kids {
			c.Kids[i] = k.Clone()
		}
	}
	return c
}

// Size counts tree nodes — the minimizer's cost function.
func (n *Node) Size() int {
	if n == nil {
		return 0
	}
	s := 1
	for _, k := range n.Kids {
		s += k.Size()
	}
	return s
}

// Depth is the tree height (a single leaf has depth 1).
func (n *Node) Depth() int {
	if n == nil {
		return 0
	}
	d := 0
	for _, k := range n.Kids {
		if kd := k.Depth(); kd > d {
			d = kd
		}
	}
	return d + 1
}

// Leaves appends the tree's leaf nodes in evaluation order.
func (n *Node) Leaves() []*Node {
	var out []*Node
	var walk func(*Node)
	walk = func(m *Node) {
		if m == nil {
			return
		}
		if m.Op == OpLeaf {
			out = append(out, m)
			return
		}
		for _, k := range m.Kids {
			walk(k)
		}
	}
	walk(n)
	return out
}

// Canonical renders the order-preserving canonical form the
// fingerprint hashes: leaves as entry@variant(+delay), connectives
// with kid order intact. Two predicates canonicalize equal iff they
// evaluate identically on every environment, modulo variant clamping.
func (n *Node) Canonical() string {
	var b strings.Builder
	n.writeCanonical(&b)
	return b.String()
}

func (n *Node) writeCanonical(b *strings.Builder) {
	if n == nil {
		b.WriteString("nil")
		return
	}
	switch n.Op {
	case OpLeaf:
		fmt.Fprintf(b, "%s@%d", n.Entry, n.Variant)
		if n.DelayMS > 0 {
			fmt.Fprintf(b, "+%dms", n.DelayMS)
		}
	default:
		b.WriteString(string(n.Op))
		b.WriteByte('(')
		for i, k := range n.Kids {
			if i > 0 {
				b.WriteByte(',')
			}
			k.writeCanonical(b)
		}
		b.WriteByte(')')
	}
}

// Fingerprint is the canonical predicate identity: a 16-hex-digit
// FNV-1a hash of the canonical form. Gap dedup, fixture file names,
// and evaluation memoization all key on it.
func (n *Node) Fingerprint() string {
	h := fnv.New64a()
	_, _ = h.Write([]byte(n.Canonical()))
	return fmt.Sprintf("%016x", h.Sum64())
}

// Validate checks structural invariants the codec and generator both
// enforce: known ops, leaves with catalog entries and no kids,
// connectives with the right arity, non-negative delay.
func (n *Node) Validate(entries map[string]evasion.CatalogEntry) error {
	if n == nil {
		return fmt.Errorf("synth: nil node")
	}
	switch n.Op {
	case OpLeaf:
		if len(n.Kids) != 0 {
			return fmt.Errorf("synth: leaf with %d kids", len(n.Kids))
		}
		if _, ok := entries[n.Entry]; !ok {
			return fmt.Errorf("synth: unknown catalog entry %q", n.Entry)
		}
		if n.DelayMS < 0 {
			return fmt.Errorf("synth: negative delay %d", n.DelayMS)
		}
		return nil
	case OpNot:
		if len(n.Kids) != 1 {
			return fmt.Errorf("synth: not with %d kids", len(n.Kids))
		}
	case OpAnd, OpOr:
		if len(n.Kids) < 2 {
			return fmt.Errorf("synth: %s with %d kids", n.Op, len(n.Kids))
		}
	default:
		return fmt.Errorf("synth: unknown op %q", n.Op)
	}
	for _, k := range n.Kids {
		if err := k.Validate(entries); err != nil {
			return err
		}
	}
	return nil
}

// EntryIndex maps catalog entry names to their entries, built once
// per caller from evasion.Catalog().
func EntryIndex() map[string]evasion.CatalogEntry {
	idx := make(map[string]evasion.CatalogEntry)
	for _, e := range evasion.Catalog() {
		idx[e.Name] = e
	}
	return idx
}

// Compile lowers the predicate tree into a single evasion.Check whose
// probe evaluates the tree with left-to-right short-circuiting. The
// check's Technique is the first leaf's (the trigger candidate), its
// Name the fingerprint.
func Compile(n *Node, entries map[string]evasion.CatalogEntry) (evasion.Check, error) {
	if err := n.Validate(entries); err != nil {
		return evasion.Check{}, err
	}
	probe, err := compileProbe(n, entries)
	if err != nil {
		return evasion.Check{}, err
	}
	tech := evasion.Technique("composite")
	if leaves := n.Leaves(); len(leaves) > 0 {
		tech = entries[leaves[0].Entry].Technique
	}
	return evasion.Check{
		Name:      "synth:" + n.Fingerprint(),
		Technique: tech,
		Probe:     probe,
	}, nil
}

func compileProbe(n *Node, entries map[string]evasion.CatalogEntry) (func(*winapi.Context) bool, error) {
	switch n.Op {
	case OpLeaf:
		entry := entries[n.Entry]
		check := entry.BuildVariant(n.Variant)
		delay := time.Duration(n.DelayMS) * time.Millisecond
		return func(ctx *winapi.Context) bool {
			if delay > 0 {
				ctx.Sleep(delay)
			}
			return check.Probe(ctx)
		}, nil
	case OpNot:
		kid, err := compileProbe(n.Kids[0], entries)
		if err != nil {
			return nil, err
		}
		return func(ctx *winapi.Context) bool { return !kid(ctx) }, nil
	case OpAnd, OpOr:
		kids := make([]func(*winapi.Context) bool, len(n.Kids))
		for i, k := range n.Kids {
			p, err := compileProbe(k, entries)
			if err != nil {
				return nil, err
			}
			kids[i] = p
		}
		isOr := n.Op == OpOr
		return func(ctx *winapi.Context) bool {
			for _, p := range kids {
				if p(ctx) == isOr {
					return isOr
				}
			}
			return !isOr
		}, nil
	}
	return nil, fmt.Errorf("synth: unknown op %q", n.Op)
}

// SourceSynthetic tags fuzzer-generated specimens.
const SourceSynthetic = malware.Source("synthetic")

// ToSpecimen wraps the compiled predicate in the standard synthetic
// specimen body: terminate when the predicate detects an analysis
// environment, otherwise run a payload with durable side effects
// (file drop + Run-key persistence) so RawMutations distinguishes a
// genuine survivor from a degenerate predicate that fires everywhere.
func ToSpecimen(n *Node, entries map[string]evasion.CatalogEntry) (*malware.Specimen, error) {
	check, err := Compile(n, entries)
	if err != nil {
		return nil, err
	}
	id := "syn_" + n.Fingerprint()[:12]
	return &malware.Specimen{
		ID:      id,
		Family:  "synthetic",
		Source:  SourceSynthetic,
		Image:   malware.ImagePath(id),
		Checks:  []evasion.Check{check},
		React:   malware.ReactTerminate(),
		Payload: malware.Compose(malware.PayloadDropper("synth_payload.exe"), malware.PayloadRegistryPersist("SynthGap", "synth_svc.exe")),
		Notes:   "synthesized predicate " + n.Canonical(),
	}, nil
}

// TechniquesOf returns the sorted, deduplicated techniques the
// predicate's leaves span — the gap report's classification axis.
func TechniquesOf(n *Node, entries map[string]evasion.CatalogEntry) []evasion.Technique {
	set := map[evasion.Technique]bool{}
	for _, leaf := range n.Leaves() {
		set[entries[leaf.Entry].Technique] = true
	}
	out := make([]evasion.Technique, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

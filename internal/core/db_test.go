package core

import "testing"

// Overlapping directory entries must resolve by longest prefix, and the
// answer must be stable across repeated probes (the old map-iteration scan
// returned whichever entry the runtime enumerated first).
func TestMatchFileOverlappingDirs(t *testing.T) {
	db := NewDB()
	// The stock DB already carries c:\analysis; nest a vendor-specific
	// tool tree inside it.
	db.AddFile(`C:\analysis\tools`, VendorCuckoo)

	for i := 0; i < 50; i++ {
		vendor, ok := db.MatchFile(`C:\analysis\tools\dump.bin`)
		if !ok {
			t.Fatalf("probe %d: nested path did not match", i)
		}
		if vendor != VendorCuckoo {
			t.Fatalf("probe %d: got vendor %q, want the deepest entry %q", i, vendor, VendorCuckoo)
		}
	}

	// A probe inside the outer directory but outside the nested one still
	// matches the outer entry.
	vendor, ok := db.MatchFile(`C:\analysis\agent.py.bak`)
	if !ok || vendor != VendorGeneric {
		t.Fatalf("outer probe: got (%q, %v), want (%q, true)", vendor, ok, VendorGeneric)
	}
}

// Deceptive directories may live on any drive: crawled sandboxes mount
// tool trees on D: and E: too. The old scan only considered c:\ entries.
func TestMatchFileNonCDrive(t *testing.T) {
	db := NewDB()
	db.AddFile(`D:\lab\hooks`, VendorSandboxie)

	vendor, ok := db.MatchFile(`d:\lab\hooks\inject.dll`)
	if !ok {
		t.Fatal("probe under a D: deceptive directory did not match")
	}
	if vendor != VendorSandboxie {
		t.Fatalf("got vendor %q, want %q", vendor, VendorSandboxie)
	}
	if _, ok := db.MatchFile(`d:\lab\other\file.txt`); ok {
		t.Error("probe outside the deceptive directory must not match")
	}
}

// Base-name entries (no path separator) must not become directory-prefix
// candidates.
func TestMatchFileBaseNameNotPrefix(t *testing.T) {
	db := NewDB()
	db.AddFile(`vboxhook.dll`, VendorVBox)

	if _, ok := db.MatchFile(`c:\vboxhook.dll\payload.bin`); ok {
		t.Error("base-name entry must not match as a directory prefix")
	}
	if v, ok := db.MatchFile(`c:\anywhere\vboxhook.dll`); !ok || v != VendorVBox {
		t.Errorf("base-name match: got (%q, %v), want (%q, true)", v, ok, VendorVBox)
	}
}

package core

import (
	"strings"
	"testing"
	"testing/quick"
	"time"

	"scarecrow/internal/winapi"
	"scarecrow/internal/winsim"
)

// TestPropertyEveryDBRegistryKeyIsDeceived: by construction, every
// registry key in the deception database must answer SUCCESS to a probe
// from a protected process, under any casing.
func TestPropertyEveryDBRegistryKeyIsDeceived(t *testing.T) {
	_, ctx := deployOnEndUser(t, DefaultConfig())
	db := NewDB()
	keys := []string{
		`HKLM\SOFTWARE\VMware, Inc.\VMware Tools`,
		`HKLM\SOFTWARE\Oracle\VirtualBox Guest Additions`,
		`HKLM\SYSTEM\CurrentControlSet\Services\VBoxGuest`,
		`HKCU\Software\Wine`,
		`HKCU\Software\Sandboxie`,
		`HKLM\HARDWARE\ACPI\DSDT\VBOX__`,
	}
	for _, key := range keys {
		if _, ok := db.MatchRegKey(key); !ok {
			t.Fatalf("fixture key %q not in DB", key)
		}
		for _, variant := range []string{key, strings.ToUpper(key), strings.ToLower(key)} {
			if st := ctx.RegOpenKeyEx(variant); !st.OK() {
				t.Errorf("RegOpenKeyEx(%q) = %v, want deceived SUCCESS", variant, st)
			}
			if st := ctx.NtOpenKeyEx(variant); !st.OK() {
				t.Errorf("NtOpenKeyEx(%q) = %v, want deceived SUCCESS", variant, st)
			}
		}
	}
}

// TestPropertyEveryDeceptiveProcessInSnapshot: all 24 deceptive processes
// appear in the Toolhelp snapshot of a protected process and resist
// termination.
func TestPropertyEveryDeceptiveProcessInSnapshot(t *testing.T) {
	_, ctx := deployOnEndUser(t, DefaultConfig())
	inSnapshot := make(map[string]int)
	for _, e := range ctx.CreateToolhelp32Snapshot() {
		inSnapshot[e.Image] = e.PID
	}
	for _, img := range NewDB().DeceptiveProcesses() {
		pid, ok := inSnapshot[img]
		if !ok {
			t.Errorf("deceptive process %s missing from snapshot", img)
			continue
		}
		if st := ctx.TerminateProcess(pid); st != winapi.StatusAccessDenied {
			t.Errorf("TerminateProcess(%s) = %v, want ACCESS_DENIED", img, st)
		}
	}
}

// TestPropertyHooksNeverLeakAcrossProcesses: launching arbitrary numbers
// of unprotected processes never exposes patched prologues or deceptive
// answers outside the protected target.
func TestPropertyHooksNeverLeakAcrossProcesses(t *testing.T) {
	m := winsim.NewEndUserMachine(1)
	sys := winapi.NewSystem(m)
	sys.RegisterProgram(`C:\t.exe`, func(ctx *winapi.Context) int { return 0 })
	ctrl := mustDeploy(t, sys, NewEngine(NewDB(), DefaultConfig()))
	if _, err := ctrl.LaunchTarget(`C:\t.exe`, ""); err != nil {
		t.Fatal(err)
	}
	f := func(n uint8) bool {
		p := sys.Launch(`C:\bystander.exe`, "", nil)
		ctx := sys.Context(p)
		if !ctx.PrologueIntact("IsDebuggerPresent") {
			return false
		}
		if ctx.IsDebuggerPresent() {
			return false
		}
		// Deceptive registry answers must not reach the bystander.
		return !ctx.RegOpenKeyEx(`HKLM\SOFTWARE\Oracle\VirtualBox Guest Additions`).OK()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestPropertyDeterministicDeployments: identical (profile, seed, config)
// deployments produce identical trigger streams for identical probe
// sequences.
func TestPropertyDeterministicDeployments(t *testing.T) {
	probe := func() []TriggerReport {
		m := winsim.NewEndUserMachine(9)
		sys := winapi.NewSystem(m)
		sys.RegisterProgram(`C:\t.exe`, func(ctx *winapi.Context) int { return 0 })
		ctrl := mustDeploy(t, sys, NewEngine(NewDB(), DefaultConfig()))
		target, err := ctrl.LaunchTarget(`C:\t.exe`, "")
		if err != nil {
			t.Fatal(err)
		}
		ctx := sys.Context(target)
		ctx.IsDebuggerPresent()
		ctx.RegOpenKeyEx(`HKLM\SOFTWARE\VMware, Inc.\VMware Tools`)
		ctx.GetTickCount()
		ctx.DnsQuery("nxdomain-deterministic.invalid")
		return ctrl.Session.Triggers()
	}
	a, b := probe(), probe()
	if len(a) != len(b) {
		t.Fatalf("trigger counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("trigger %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestPropertyGenuineAnswersPassThroughUnchanged: for resources outside
// the database, a protected process and an unprotected process observe
// identical results (the transparency requirement (b) of Section III).
func TestPropertyGenuineAnswersPassThroughUnchanged(t *testing.T) {
	m := winsim.NewEndUserMachine(3)
	sys := winapi.NewSystem(m)
	sys.RegisterProgram(`C:\t.exe`, func(ctx *winapi.Context) int { return 0 })
	ctrl := mustDeploy(t, sys, NewEngine(NewDB(), DefaultConfig()))
	target, err := ctrl.LaunchTarget(`C:\t.exe`, "")
	if err != nil {
		t.Fatal(err)
	}
	protected := sys.Context(target)
	plain := sys.Context(sys.Launch(`C:\plain.exe`, "", nil))

	keys := []string{
		`HKLM\SOFTWARE\Microsoft\Windows NT\CurrentVersion`,
		`HKLM\SYSTEM\CurrentControlSet\Enum\IDE`,
		winsim.RegRunKey,
		`HKLM\SOFTWARE\DoesNotExist`,
	}
	for _, key := range keys {
		if a, b := protected.RegOpenKeyEx(key), plain.RegOpenKeyEx(key); a != b {
			t.Errorf("RegOpenKeyEx(%q): protected %v vs plain %v", key, a, b)
		}
	}
	files := []string{
		`C:\Windows\System32\kernel32.dll`,
		`C:\Windows\explorer.exe`,
		`C:\missing\nothing.bin`,
	}
	for _, f := range files {
		_, a := protected.GetFileAttributes(f)
		_, b := plain.GetFileAttributes(f)
		if a != b {
			t.Errorf("GetFileAttributes(%q): protected %v vs plain %v", f, a, b)
		}
	}
	// Version, command line, PID remain genuine.
	if protected.GetVersionEx() != plain.GetVersionEx() {
		t.Error("OS version faked")
	}
}

// TestPropertySpawnLedgerMonotonic: the mitigation ledger counts every
// CreateProcess exactly once, regardless of image casing.
func TestPropertySpawnLedgerMonotonic(t *testing.T) {
	f := func(spawnCount uint8) bool {
		n := int(spawnCount%32) + 1
		m := winsim.NewEndUserMachine(1)
		sys := winapi.NewSystem(m)
		sys.RegisterProgram(`C:\t.exe`, func(ctx *winapi.Context) int {
			for i := 0; i < n; i++ {
				img := `C:\CHILD.exe`
				if i%2 == 0 {
					img = `C:\child.exe`
				}
				if _, st := ctx.CreateProcess(img, ""); !st.OK() {
					return 1
				}
			}
			return 0
		})
		cfg := DefaultConfig()
		cfg.SpawnAlarmThreshold = 1 << 30 // never alarm; just count
		ctrl := mustDeploy(t, sys, NewEngine(NewDB(), cfg))
		if _, err := ctrl.LaunchTarget(`C:\t.exe`, ""); err != nil {
			return false
		}
		sys.Run(time.Minute)
		return ctrl.Session.SpawnCount("child.exe") == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

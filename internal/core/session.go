package core

import (
	"fmt"
	"sync"
	"time"
)

// TriggerReport is one fingerprinting attempt a hook observed and deceived:
// the scarecrow.dll → scarecrow.exe IPC message of Figure 2. The JSON tags
// fix the wire shape scarecrowd's verdict documents embed (virtual time as
// integer nanoseconds, lower-snake names).
type TriggerReport struct {
	// Time is the virtual time of the call.
	Time time.Duration `json:"time_ns"`
	// PID is the probing process.
	PID int `json:"pid"`
	// API is the hooked entry point that fired.
	API string `json:"api"`
	// Category classifies the deceived resource.
	Category Category `json:"category"`
	// Vendor is the analysis-environment vendor profile the resource
	// imitates.
	Vendor VendorProfile `json:"vendor,omitempty"`
	// Resource names the specific probed resource.
	Resource string `json:"resource"`
}

// String renders the report like the paper's Table I trigger column.
func (r TriggerReport) String() string {
	return fmt.Sprintf("%s() [%s/%s] %s", r.API, r.Category, r.Vendor, r.Resource)
}

// Session is the per-deployment IPC endpoint: hook handlers running inside
// target processes report triggers here; the controller reads them out.
// A session also carries the spawn ledger the active-mitigation policy
// watches.
type Session struct {
	mu       sync.Mutex
	triggers []TriggerReport
	// spawnCounts tracks CreateProcess calls per image base name for
	// fork-bomb detection (§VI-C).
	spawnCounts map[string]int
	// disabledVendors is used by profile isolation (§VI-B): once one
	// vendor's artifact is probed, conflicting vendors go dark.
	activeVendor    VendorProfile
	disabledVendors map[VendorProfile]bool
	alerts          []string
}

// NewSession returns an empty IPC session.
func NewSession() *Session {
	return &Session{
		spawnCounts:     make(map[string]int),
		disabledVendors: make(map[VendorProfile]bool),
	}
}

// Report records one deceived fingerprinting attempt.
func (s *Session) Report(r TriggerReport) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.triggers = append(s.triggers, r)
}

// Triggers returns all reports in order.
func (s *Session) Triggers() []TriggerReport {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]TriggerReport, len(s.triggers))
	copy(out, s.triggers)
	return out
}

// FirstTrigger returns the earliest report, matching Table I's "first
// trigger" column.
func (s *Session) FirstTrigger() (TriggerReport, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.triggers) == 0 {
		return TriggerReport{}, false
	}
	return s.triggers[0], true
}

// TriggerCount returns the number of reports.
func (s *Session) TriggerCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.triggers)
}

// NoteSpawn records a CreateProcess of the given image and returns the new
// count for that image.
func (s *Session) NoteSpawn(image string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.spawnCounts[image]++
	return s.spawnCounts[image]
}

// SpawnCount returns the recorded spawn count for an image.
func (s *Session) SpawnCount(image string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.spawnCounts[image]
}

// Alert records a mitigation alarm message.
func (s *Session) Alert(msg string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.alerts = append(s.alerts, msg)
}

// Alerts returns all mitigation alarms raised so far.
func (s *Session) Alerts() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, len(s.alerts))
	copy(out, s.alerts)
	return out
}

// vendorAllowed implements profile isolation: the first probed vendor
// becomes active and every other VM vendor is disabled. Vendor-neutral
// profiles (generic, debugger, sandboxie, wine, cuckoo) are never disabled
// — only mutually exclusive VM identities conflict (§VI-B's example:
// a machine cannot be a VMware and a VirtualBox guest at once).
func (s *Session) vendorAllowed(v VendorProfile, isolation bool) bool {
	if !isolation {
		return true
	}
	switch v {
	case VendorVMware, VendorVBox, VendorQemu, VendorBochs:
	default:
		return true
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.disabledVendors[v] {
		return false
	}
	if s.activeVendor == "" {
		s.activeVendor = v
		for _, other := range []VendorProfile{VendorVMware, VendorVBox, VendorQemu, VendorBochs} {
			if other != v {
				s.disabledVendors[other] = true
			}
		}
	}
	return s.activeVendor == v
}

// ActiveVendor returns the VM vendor profile locked in by profile
// isolation (empty when none probed yet or isolation is off).
func (s *Session) ActiveVendor() VendorProfile {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.activeVendor
}

// TriggerHistogram aggregates the trigger stream by category — the
// at-a-glance view the controller UI shows an operator.
func (s *Session) TriggerHistogram() map[Category]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[Category]int)
	for _, tr := range s.triggers {
		out[tr.Category]++
	}
	return out
}

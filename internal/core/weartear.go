package core

import (
	"fmt"
	"strings"

	"scarecrow/internal/winapi"
)

// WearTearFakes are the deceptive wear-and-tear answers of Table III,
// chosen from the sandbox-environment statistics of Miramirkhani et al.:
// a machine that has barely been used.
type WearTearFakes struct {
	DNSCacheEntries   int    // dnscacheEntries: "Recent 4 entries"
	EventTotal        int    // sysevt: "Recent 8K system events"
	EventSources      int    // syssrc: sources within those events
	DeviceClasses     int    // deviceClsCount: 29 subkeys
	AutoRunEntries    int    // autoRunCount: 3 value entries
	RegistryQuota     uint64 // regSize: 53M bytes
	UninstallEntries  int
	SharedDlls        int
	AppPaths          int
	ActiveSetup       int
	UserAssistEntries int
	ShimCacheEntries  int
	MUICacheEntries   int
	FirewallRules     int
	USBStorDevices    int
}

// DefaultWearTearFakes returns the Table III values.
func DefaultWearTearFakes() WearTearFakes {
	return WearTearFakes{
		DNSCacheEntries:   4,
		EventTotal:        8000,
		EventSources:      9,
		DeviceClasses:     29,
		AutoRunEntries:    3,
		RegistryQuota:     53 << 20,
		UninstallEntries:  6,
		SharedDlls:        115,
		AppPaths:          14,
		ActiveSetup:       12,
		UserAssistEntries: 7,
		ShimCacheEntries:  40,
		MUICacheEntries:   12,
		FirewallRules:     130,
		USBStorDevices:    1,
	}
}

// wtKeyFakes maps a lowercased registry-key suffix to the deceptive
// subkey/value counts NtQueryKey reports for it.
func (e *Engine) wtKeyFakes() map[string]winapi.KeyInfo {
	f := e.WearTear
	return map[string]winapi.KeyInfo{
		`control\deviceclasses`:             {SubkeyCount: f.DeviceClasses},
		`currentversion\run`:                {ValueCount: f.AutoRunEntries},
		`currentversion\uninstall`:          {SubkeyCount: f.UninstallEntries},
		`currentversion\shareddlls`:         {ValueCount: f.SharedDlls},
		`currentversion\app paths`:          {SubkeyCount: f.AppPaths},
		`active setup\installed components`: {SubkeyCount: f.ActiveSetup},
		`session manager\appcompatcache`:    {ValueCount: f.ShimCacheEntries},
		`windows\shell\muicache`:            {ValueCount: f.MUICacheEntries},
		`firewallpolicy\firewallrules`:      {ValueCount: f.FirewallRules},
		`services\usbstor`:                  {SubkeyCount: f.USBStorDevices},
	}
}

// hookWearAndTear adds the Table III hooks to the deployment table:
// EvtNext, DnsGetCacheDataTable, NtQuerySystemInformation, and
// count-steering NtQueryKey answers for the usage-related registry keys.
// The base NtOpenKey and NtQueryValueKey hooks from the 29 stay in place;
// these wrap them.
func (e *Engine) hookWearAndTear(t *winapi.HookTable, session *Session) error {
	report := func(c *winapi.Context, api, artifact string) {
		session.Report(TriggerReport{
			Time: c.M.Clock.Now(), PID: c.P.PID, API: api,
			Category: CategoryWearTear, Vendor: VendorGeneric, Resource: artifact,
		})
	}
	fakes := e.wtKeyFakes()

	hooks := map[string]winapi.HookHandler{
		"DnsGetCacheDataTable": func(c *winapi.Context, call *winapi.Call) any {
			report(c, call.Name, "dnscacheEntries")
			genuine := call.Original().(winapi.Result)
			if len(genuine.Strs) > e.WearTear.DNSCacheEntries {
				genuine.Strs = genuine.Strs[len(genuine.Strs)-e.WearTear.DNSCacheEntries:]
			}
			return genuine
		},
		"EvtNext": func(c *winapi.Context, call *winapi.Call) any {
			report(c, call.Name, "sysevt/syssrc")
			genuine := call.Original().(winapi.Result)
			genuine.Num = uint64(e.WearTear.EventTotal)
			if len(genuine.Strs) > e.WearTear.EventSources {
				genuine.Strs = genuine.Strs[:e.WearTear.EventSources]
			}
			return genuine
		},
		"NtQuerySystemInformation": func(c *winapi.Context, call *winapi.Call) any {
			if call.StrArg(0) == winapi.SystemRegistryQuotaInformation {
				report(c, call.Name, "regSize")
				return winapi.Result{Status: winapi.StatusSuccess, Num: e.WearTear.RegistryQuota}
			}
			return call.Original()
		},
		"NtQueryKey": func(c *winapi.Context, call *winapi.Call) any {
			path := strings.ToLower(call.StrArg(0))
			if strings.Contains(path, "userassist") && strings.HasSuffix(path, `\count`) {
				report(c, call.Name, "usrassistCount")
				return winapi.Result{Status: winapi.StatusSuccess,
					KeyInfo: winapi.KeyInfo{ValueCount: e.WearTear.UserAssistEntries}}
			}
			for suffix, info := range fakes {
				if strings.HasSuffix(path, suffix) {
					report(c, call.Name, suffix)
					return winapi.Result{Status: winapi.StatusSuccess, KeyInfo: info}
				}
			}
			return call.Original()
		},
	}
	for api, h := range hooks {
		if err := t.Hook(api, h); err != nil {
			return fmt.Errorf("hooking %s: %w", api, err)
		}
	}
	return nil
}

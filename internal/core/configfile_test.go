package core

import (
	"strings"
	"testing"
)

func TestParseConfigAndApply(t *testing.T) {
	const doc = `{
		"wear_and_tear": true,
		"kernel_hooks": true,
		"mitigation": "kill-on-fork",
		"spawn_alarm_threshold": 5,
		"hardware": {
			"disk_total_gb": 40, "ram_mb": 512, "num_cores": 2,
			"computer_name": "LAB-PC", "user_name": "analyst"
		},
		"extra_registry_keys": ["HKLM\\SOFTWARE\\MyLab\\Agent"],
		"extra_files": ["C:\\mylab\\monitor.dll"],
		"extra_processes": ["mymonitor.exe"]
	}`
	fc, err := ParseConfig(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	db := NewDB()
	cfg := fc.Apply(DefaultConfig(), db)

	if !cfg.WearAndTear || !cfg.KernelHooks {
		t.Error("feature toggles not applied")
	}
	if cfg.Mitigation != MitigationKillOnFork || cfg.SpawnAlarmThreshold != 5 {
		t.Error("mitigation not applied")
	}
	if !cfg.SinkholeNXDomains {
		t.Error("unset field should keep the base value")
	}
	if db.HW.DiskTotalBytes != 40<<30 || db.HW.RAMBytes != 512<<20 || db.HW.NumCores != 2 {
		t.Errorf("hardware overrides: %+v", db.HW)
	}
	if db.HW.ComputerName != "LAB-PC" || db.HW.UserName != "analyst" {
		t.Errorf("identity overrides: %+v", db.HW)
	}
	if db.HW.SamplePath != `C:\sample.exe` {
		t.Error("unset sample path should keep default")
	}
	if _, ok := db.MatchRegKey(`HKLM\SOFTWARE\MyLab\Agent`); !ok {
		t.Error("extra registry key not learned")
	}
	if _, ok := db.MatchFile(`c:\mylab\monitor.dll`); !ok {
		t.Error("extra file not learned")
	}
	if _, ok := db.MatchProcess("mymonitor.exe"); !ok {
		t.Error("extra process not learned")
	}
}

func TestParseConfigRejectsGarbage(t *testing.T) {
	if _, err := ParseConfig(strings.NewReader(`{"mitigation":"nuke-it"}`)); err == nil {
		t.Error("bogus mitigation accepted")
	}
	if _, err := ParseConfig(strings.NewReader(`{"unknown_knob": 1}`)); err == nil {
		t.Error("unknown field accepted")
	}
	if _, err := ParseConfig(strings.NewReader(`not json`)); err == nil {
		t.Error("garbage accepted")
	}
}

func TestLoadConfigFileMissing(t *testing.T) {
	if _, err := LoadConfigFile("/nonexistent/scarecrow.json"); err == nil {
		t.Error("missing file accepted")
	}
}

// TestConfigFileEndToEnd adjusts a deceptive value through the file and
// observes the adjusted answer from a protected process.
func TestConfigFileEndToEnd(t *testing.T) {
	fc, err := ParseConfig(strings.NewReader(`{"hardware": {"disk_total_gb": 7}}`))
	if err != nil {
		t.Fatal(err)
	}
	db := NewDB()
	cfg := fc.Apply(DefaultConfig(), db)

	m := newTestEndUser()
	_, ctx := deployWith(t, m, db, cfg)
	disk, st := ctx.GetDiskFreeSpaceEx(`C:\`)
	if !st.OK() || disk.TotalBytes != 7<<30 {
		t.Errorf("adjusted deceptive disk = %d bytes", disk.TotalBytes)
	}
}

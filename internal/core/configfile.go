package core

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// File-based deployment configuration. The paper notes the deceptive
// system-configuration values "are easily adjustable by users if needed"
// (§II-B, hardware resources); this file format is that adjustment knob:
// a JSON document selecting features and overriding deceptive values.
//
//	{
//	  "sinkhole_nx_domains": true,
//	  "fake_hardware": true,
//	  "wear_and_tear": true,
//	  "profile_isolation": false,
//	  "kernel_hooks": false,
//	  "hypervisor_deception": false,
//	  "mitigation": "record-only",
//	  "spawn_alarm_threshold": 10,
//	  "hardware": {
//	    "disk_total_gb": 50, "disk_free_gb": 20,
//	    "ram_mb": 1024, "num_cores": 1,
//	    "computer_name": "SANDBOX-PC", "user_name": "currentuser"
//	  },
//	  "extra_registry_keys": ["HKLM\\SOFTWARE\\MyLab\\Agent"],
//	  "extra_files": ["C:\\mylab\\monitor.dll"],
//	  "extra_processes": ["mymonitor.exe"]
//	}

// FileConfig is the on-disk deployment configuration.
type FileConfig struct {
	SinkholeNXDomains   *bool  `json:"sinkhole_nx_domains"`
	FakeHardware        *bool  `json:"fake_hardware"`
	TimingDiscrepancy   *bool  `json:"timing_discrepancy"`
	WearAndTear         *bool  `json:"wear_and_tear"`
	ProfileIsolation    *bool  `json:"profile_isolation"`
	KernelHooks         *bool  `json:"kernel_hooks"`
	HypervisorDeception *bool  `json:"hypervisor_deception"`
	FollowChildren      *bool  `json:"follow_children"`
	Mitigation          string `json:"mitigation"` // "record-only" | "kill-on-fork"
	SpawnAlarmThreshold *int   `json:"spawn_alarm_threshold"`

	Hardware *HardwareOverrides `json:"hardware"`

	ExtraRegistryKeys []string `json:"extra_registry_keys"`
	ExtraFiles        []string `json:"extra_files"`
	ExtraProcesses    []string `json:"extra_processes"`
}

// HardwareOverrides adjusts the deceptive hardware answers.
type HardwareOverrides struct {
	DiskTotalGB  *uint64 `json:"disk_total_gb"`
	DiskFreeGB   *uint64 `json:"disk_free_gb"`
	RAMMB        *uint64 `json:"ram_mb"`
	NumCores     *int    `json:"num_cores"`
	ComputerName string  `json:"computer_name"`
	UserName     string  `json:"user_name"`
	SamplePath   string  `json:"sample_path"`
}

// ParseConfig reads a FileConfig from JSON.
func ParseConfig(r io.Reader) (FileConfig, error) {
	var fc FileConfig
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&fc); err != nil {
		return FileConfig{}, fmt.Errorf("core: parsing config: %w", err)
	}
	switch fc.Mitigation {
	case "", "record-only", "kill-on-fork":
	default:
		return FileConfig{}, fmt.Errorf("core: unknown mitigation %q", fc.Mitigation)
	}
	return fc, nil
}

// LoadConfigFile reads a FileConfig from disk.
func LoadConfigFile(path string) (FileConfig, error) {
	f, err := os.Open(path)
	if err != nil {
		return FileConfig{}, fmt.Errorf("core: opening config: %w", err)
	}
	defer f.Close()
	return ParseConfig(f)
}

// Apply folds the file configuration into a base Config and deception DB,
// returning the adjusted Config. Unset fields keep the base values.
func (fc FileConfig) Apply(base Config, db *DB) Config {
	setBool := func(dst *bool, src *bool) {
		if src != nil {
			*dst = *src
		}
	}
	setBool(&base.SinkholeNXDomains, fc.SinkholeNXDomains)
	setBool(&base.FakeHardware, fc.FakeHardware)
	setBool(&base.TimingDiscrepancy, fc.TimingDiscrepancy)
	setBool(&base.WearAndTear, fc.WearAndTear)
	setBool(&base.ProfileIsolation, fc.ProfileIsolation)
	setBool(&base.KernelHooks, fc.KernelHooks)
	setBool(&base.HypervisorDeception, fc.HypervisorDeception)
	setBool(&base.FollowChildren, fc.FollowChildren)
	switch fc.Mitigation {
	case "record-only":
		base.Mitigation = MitigationRecordOnly
	case "kill-on-fork":
		base.Mitigation = MitigationKillOnFork
	}
	if fc.SpawnAlarmThreshold != nil {
		base.SpawnAlarmThreshold = *fc.SpawnAlarmThreshold
	}

	if hw := fc.Hardware; hw != nil {
		if hw.DiskTotalGB != nil {
			db.HW.DiskTotalBytes = *hw.DiskTotalGB << 30
		}
		if hw.DiskFreeGB != nil {
			db.HW.DiskFreeBytes = *hw.DiskFreeGB << 30
		}
		if hw.RAMMB != nil {
			db.HW.RAMBytes = *hw.RAMMB << 20
		}
		if hw.NumCores != nil {
			db.HW.NumCores = *hw.NumCores
		}
		if hw.ComputerName != "" {
			db.HW.ComputerName = hw.ComputerName
		}
		if hw.UserName != "" {
			db.HW.UserName = hw.UserName
		}
		if hw.SamplePath != "" {
			db.HW.SamplePath = hw.SamplePath
		}
	}
	for _, k := range fc.ExtraRegistryKeys {
		db.AddRegKey(k, VendorGeneric)
	}
	for _, f := range fc.ExtraFiles {
		db.AddFile(f, VendorGeneric)
	}
	for _, p := range fc.ExtraProcesses {
		db.AddProcess(p, VendorGeneric)
	}
	return base
}

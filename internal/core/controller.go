package core

import (
	"fmt"

	"scarecrow/internal/winapi"
	"scarecrow/internal/winsim"
)

// ControllerImage is the executable path of scarecrow.exe on a protected
// host.
const ControllerImage = `C:\Program Files\Scarecrow\scarecrow.exe`

// Controller is the deployment framework of Figure 2: scarecrow.exe starts
// the untrusted target, injects scarecrow.dll (the hook set) into it,
// follows injection into every descendant the target spawns (suspend →
// inject → resume on CreateProcess), and receives trigger reports over the
// IPC session.
//
// Launching the target from the controller is itself a deception: the
// target's parent process is not explorer.exe, exactly as when a sandbox
// analysis daemon runs a sample (§III-B).
type Controller struct {
	Engine  *Engine
	Session *Session

	sys      *winapi.System
	proc     *winsim.Process
	injected map[int]bool
	// followFailures records descendants whose follow-injection failed.
	// The CreateProcess notification callback has no error channel (as in
	// reality), so failures are recorded and alerted instead of lost.
	followFailures []string
}

// Deploy installs Scarecrow on a machine: starts the controller process,
// brings up the sinkhole proxy endpoint, and arranges descendant
// follow-injection. Targets are not touched until LaunchTarget. A failed
// deployment (kernel hook installation) returns an error rather than a
// half-protected controller.
func Deploy(sys *winapi.System, engine *Engine) (*Controller, error) {
	ctrl := &Controller{
		Engine:   engine,
		Session:  NewSession(),
		sys:      sys,
		injected: make(map[int]bool),
	}

	proc := sys.M.Procs.Create(ControllerImage, "scarecrow.exe --service", 4, sys.M.Clock.Now())
	proc.State = winsim.ProcessRunning
	proc.Protected = true
	ctrl.proc = proc
	sys.M.FS.Touch(ControllerImage, 4<<20)
	sys.M.FS.Touch(`C:\Program Files\Scarecrow\scarecrow.dll`, 1<<20)

	if engine.Config.HypervisorDeception {
		InstallHypervisor(sys.M, DefaultHypervisorFakes())
	}

	if engine.Config.KernelHooks {
		if err := engine.InstallKernelHooks(sys, ctrl.Session); err != nil {
			return nil, fmt.Errorf("core: kernel hook installation failed: %w", err)
		}
	}

	if engine.Config.SinkholeNXDomains {
		// The controller runs a local proxy that answers HTTP on the
		// sinkhole address, so deceived DNS answers lead somewhere "live".
		sys.M.Net.MarkReachable(engine.DB.SinkholeIP)
	}

	if engine.Config.FollowChildren {
		prev := sys.ChildLaunched
		sys.ChildLaunched = func(parent, child *winsim.Process) {
			if prev != nil {
				prev(parent, child)
			}
			if ctrl.injected[parent.PID] {
				if err := ctrl.inject(child); err != nil {
					ctrl.followFailures = append(ctrl.followFailures, child.Image)
					ctrl.Session.Alert(fmt.Sprintf("follow-injection into %s (PID %d) failed: %v",
						child.Image, child.PID, err))
				}
			}
		}
	}
	return ctrl, nil
}

// LaunchTarget starts an untrusted program under the controller (making
// scarecrow.exe its parent), injects the hook DLL before the first
// instruction runs, and returns the target process.
func (ct *Controller) LaunchTarget(image, cmdline string) (*winsim.Process, error) {
	if _, ok := ct.sys.ProgramFor(image); !ok {
		return nil, fmt.Errorf("core: no program registered for image %q", image)
	}
	// Deceived GetModuleFileName answers point at the canonical sandbox
	// sample path; alias the target's body there so self-respawns through
	// the deceptive path still execute the sample's logic.
	if body, ok := ct.sys.ProgramFor(image); ok {
		ct.sys.RegisterProgram(ct.Engine.DB.HW.SamplePath, body)
	}
	child := ct.sys.Launch(image, cmdline, ct.proc)
	if err := ct.inject(child); err != nil {
		return nil, fmt.Errorf("core: injecting %s: %w", image, err)
	}
	return child, nil
}

// Watch deploys hooks into an already-created process (used when a target
// was launched by something else but should still be protected).
func (ct *Controller) Watch(p *winsim.Process) error {
	return ct.inject(p)
}

// inject installs the hook set into a process. A failure (unknown API,
// injection fault) leaves the process unmarked so a later Watch may retry,
// and is returned rather than panicking: one bad target must not take the
// controller — or a whole corpus sweep — down with it.
func (ct *Controller) inject(p *winsim.Process) error {
	if ct.injected[p.PID] {
		return nil
	}
	if err := ct.Engine.InstallHooks(ct.sys, p, ct.Session); err != nil {
		return fmt.Errorf("core: hook installation in PID %d failed: %w", p.PID, err)
	}
	ct.injected[p.PID] = true
	return nil
}

// Injected reports whether a PID carries scarecrow.dll.
func (ct *Controller) Injected(pid int) bool { return ct.injected[pid] }

// FollowFailures returns the images of descendants whose follow-injection
// failed (also surfaced as session alerts).
func (ct *Controller) FollowFailures() []string { return ct.followFailures }

// InjectedCount returns how many processes carry scarecrow.dll.
func (ct *Controller) InjectedCount() int { return len(ct.injected) }

// Process returns the controller's own process object.
func (ct *Controller) Process() *winsim.Process { return ct.proc }

package core

import (
	"time"

	"scarecrow/internal/winapi"
)

// hookExceptionDeception adds the §II-B(g) timing discrepancy to
// default exception processing: dynamic analysis systems (debuggers,
// shadow-page monitors) inflate exception-dispatch latency, and malware
// measures RaiseException round trips to detect them. When the
// timing-discrepancy module is active, Scarecrow's hook inserts a
// deceptive dispatch delay so the measurement reads "analysis system".
//
// Like the wear-and-tear hooks, this installs on top of the 29 resource
// hooks and only when Config.TimingDiscrepancy is enabled (bare-metal
// deployments; see Config).
func (e *Engine) hookExceptionDeception(t *winapi.HookTable, session *Session) error {
	const deceptiveDispatchDelay = 2 * time.Millisecond
	handler := func(c *winapi.Context, call *winapi.Call) any {
		session.Report(TriggerReport{
			Time: c.M.Clock.Now(), PID: c.P.PID, API: call.Name,
			Category: CategoryHook, Vendor: VendorDebugger, Resource: "exception-dispatch",
		})
		c.M.Clock.Advance(deceptiveDispatchDelay)
		return call.Original()
	}
	return t.Hook("RaiseException", handler)
}

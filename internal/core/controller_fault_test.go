package core

import (
	"strings"
	"testing"

	"scarecrow/internal/winapi"
	"scarecrow/internal/winsim"
)

// A deployment whose kernel-hook installation fails must return an error,
// not a half-protected controller.
func TestDeployKernelHookFailure(t *testing.T) {
	m := winsim.NewEndUserMachine(1)
	m.ArmFaults(winsim.FaultPlan{FailInjection: true})
	sys := winapi.NewSystem(m)
	cfg := DefaultConfig()
	cfg.KernelHooks = true
	ctrl, err := Deploy(sys, NewEngine(NewDB(), cfg))
	if err == nil {
		t.Fatal("Deploy with a failing kernel-hook installation must error")
	}
	if ctrl != nil {
		t.Error("a failed Deploy must not return a controller")
	}
	if !strings.Contains(err.Error(), "kernel hook installation failed") {
		t.Errorf("error %q does not name the failing stage", err)
	}
}

// LaunchTarget must propagate a hook-installation failure instead of
// leaving an unprotected target running.
func TestLaunchTargetInjectionFailure(t *testing.T) {
	m := winsim.NewEndUserMachine(1)
	sys := winapi.NewSystem(m)
	sys.RegisterProgram(`C:\t.exe`, func(ctx *winapi.Context) int { return 0 })
	ctrl := mustDeploy(t, sys, NewEngine(NewDB(), DefaultConfig()))
	m.ArmFaults(winsim.FaultPlan{FailInjection: true})
	if _, err := ctrl.LaunchTarget(`C:\t.exe`, ""); err == nil {
		t.Fatal("LaunchTarget with failing injection must error")
	}
}

// Watch must report injection failure and leave the process unmarked so a
// later retry can succeed.
func TestWatchInjectionFailureIsRetryable(t *testing.T) {
	m := winsim.NewEndUserMachine(1)
	sys := winapi.NewSystem(m)
	ctrl := mustDeploy(t, sys, NewEngine(NewDB(), DefaultConfig()))
	p := sys.Launch(`C:\t.exe`, "", nil)

	m.ArmFaults(winsim.FaultPlan{FailInjection: true})
	if err := ctrl.Watch(p); err == nil {
		t.Fatal("Watch with failing injection must error")
	}
	if ctrl.Injected(p.PID) {
		t.Fatal("a failed injection must leave the process unmarked")
	}

	// Clear the fault; the retry succeeds.
	m.ArmFaults(winsim.FaultPlan{})
	if err := ctrl.Watch(p); err != nil {
		t.Fatalf("retry after clearing the fault: %v", err)
	}
	if !ctrl.Injected(p.PID) {
		t.Error("successful retry must mark the process injected")
	}
}

package core

import "time"

// Config selects which deception features a Scarecrow deployment enables.
type Config struct {
	// SinkholeNXDomains resolves every non-existent domain to the
	// controller proxy, imitating sandbox DNS sinkholes (§II-B network
	// resources; deactivates the WannaCry variant of Case II).
	SinkholeNXDomains bool

	// FakeHardware enables the deceptive disk/RAM/core answers. The paper
	// notes these are the only fakes with any benign-software risk, so
	// they are independently switchable.
	FakeHardware bool

	// TimingDiscrepancy slows the deceptive tick stream (§II-B(g):
	// "deceptive timing discrepancies in default exception processing").
	// Deployments on machines that already sit behind a timer-virtualizing
	// layer (a hypervisor on the host) leave it off to avoid compounding
	// two timing distortions; the paper's bare-metal deployment ran with
	// it on, which is why the sleep-consistency Pafish check fired there
	// and nowhere else (Table II: Generic sandbox 10 vs 9).
	TimingDiscrepancy bool

	// TickSlowFactor is the divisor TimingDiscrepancy applies to elapsed
	// tick time.
	TickSlowFactor uint64

	// WearAndTear enables the Table III extension: deceptive answers for
	// the wear-and-tear artifacts of Miramirkhani et al.
	WearAndTear bool

	// ProfileIsolation enables the §VI-B countermeasure: once malware
	// probes one VM vendor's artifact, all other VM vendor profiles go
	// dark so conflicting answers never coexist.
	ProfileIsolation bool

	// Mitigation selects what to do about self-spawning loops (§VI-C).
	Mitigation MitigationPolicy

	// SpawnAlarmThreshold is the per-image CreateProcess count that raises
	// a mitigation alarm.
	SpawnAlarmThreshold int

	// FollowChildren injects scarecrow.dll into processes the target
	// spawns (the CreateProcess suspend-inject-resume flow of §III-B).
	FollowChildren bool

	// KernelHooks additionally deploys deception at the system-call
	// dispatch gate (the paper's §VI-A future work). Kernel hooks are
	// machine-wide, leave prologues untouched, and close the raw-syscall
	// bypass that defeats user-level hooking.
	KernelHooks bool

	// DisabledCategories turns off whole deceptive-resource classes
	// (registry, file, library, window, process, debugger, network,
	// hardware) for ablation studies: a disabled category's probes pass
	// through to the genuine system.
	DisabledCategories []Category

	// HypervisorDeception slides a thin deception hypervisor under the
	// machine (the rest of §VI-A): CPUID reports a hypervisor identity and
	// traps with VM-exit latency, closing the rdtsc/cpuid timing channel —
	// at the cost of being machine-wide and process-unselective.
	HypervisorDeception bool
}

// MitigationPolicy is the §VI-C response to fork-bomb style side effects.
type MitigationPolicy int

// Mitigation policies.
const (
	// MitigationRecordOnly logs and raises alarms without interrupting
	// anything — the paper's deployed behaviour.
	MitigationRecordOnly MitigationPolicy = iota + 1
	// MitigationKillOnFork terminates the spawning process once the alarm
	// threshold is crossed.
	MitigationKillOnFork
)

// DefaultConfig returns the paper's evaluated configuration: every
// deception on, record-only mitigation, timing discrepancy decided by the
// deployment (see Deployment.timingFor).
func DefaultConfig() Config {
	return Config{
		SinkholeNXDomains:   true,
		FakeHardware:        true,
		TimingDiscrepancy:   false,
		TickSlowFactor:      8,
		WearAndTear:         false,
		ProfileIsolation:    false,
		Mitigation:          MitigationRecordOnly,
		SpawnAlarmThreshold: 10,
		FollowChildren:      true,
	}
}

// CategoryEnabled reports whether a resource category is active under
// this configuration.
func (cfg Config) CategoryEnabled(cat Category) bool {
	for _, d := range cfg.DisabledCategories {
		if d == cat {
			return false
		}
	}
	return true
}

// RecommendedConfig returns the paper's evaluated configuration for a
// deployment on the named environment profile. The timing-discrepancy
// module is enabled only on bare metal, where no other layer owns timer
// virtualization (see Config.TimingDiscrepancy).
func RecommendedConfig(profile string) Config {
	cfg := DefaultConfig()
	cfg.TimingDiscrepancy = profile == "baremetal-sandbox" || profile == "clean-baremetal"
	return cfg
}

// deceptiveTick converts elapsed virtual time since injection into the
// deceptive tick stream: a small base uptime plus (optionally slowed)
// elapsed milliseconds.
func (cfg Config) deceptiveTick(base uint64, elapsed time.Duration) uint64 {
	ms := uint64(elapsed / time.Millisecond)
	if cfg.TimingDiscrepancy && cfg.TickSlowFactor > 1 {
		ms /= cfg.TickSlowFactor
	}
	return base + ms
}

package core

import (
	"fmt"
	"strings"
	"time"

	"scarecrow/internal/winapi"
	"scarecrow/internal/winsim"
)

// HookedAPIs is the set of 29 API entry points scarecrow.dll interposes to
// project the deceptive execution environment (§III-A: "We hook 29 APIs
// that access SCARECROW deceptive resources"). Process-protection hooks
// (TerminateProcess/OpenProcess, §II-B(b)) and the Table III wear-and-tear
// extension install on top of these.
var HookedAPIs = []string{
	"RegOpenKeyEx", "RegQueryValueEx", "NtOpenKeyEx", "NtQueryKey",
	"NtQueryValueKey", "GetAdaptersInfo",
	"CreateFile", "NtCreateFile", "NtQueryAttributesFile",
	"GetFileAttributes", "FindFirstFile", "DeleteFile",
	"GetDiskFreeSpaceEx", "GetSystemInfo", "GlobalMemoryStatusEx",
	"GetComputerName", "GetUserName", "GetModuleFileName",
	"GetModuleHandle", "GetProcAddress", "CreateToolhelp32Snapshot",
	"CreateProcess", "ShellExecuteExW", "IsDebuggerPresent",
	"NtQuerySystemInformation", "GetTickCount", "FindWindow",
	"DnsQuery", "GetCursorPos",
}

// Engine evaluates API calls against the deceptive resource database and
// fabricates analysis-environment answers. One engine serves a deployment;
// per-process installation closes over the target's injection time and the
// deployment session.
type Engine struct {
	DB     *DB
	Config Config

	// WearTear carries the Table III deceptive artifact values used when
	// Config.WearAndTear is enabled.
	WearTear WearTearFakes

	// decoyPIDByImage assigns stable fake PIDs to the deceptive processes
	// the Toolhelp snapshot hook plants.
	decoyPIDByImage map[string]int
	decoyImageByPID map[int]string

	// table is the deployment's shared hook table — scarecrow.dll's patch
	// set, built once per (engine, session) and attached to every injected
	// process in O(1) instead of re-installing 35+ hook chains per PID.
	table        *winapi.HookTable
	tableSession *Session

	// injectedAt records each process's injection time, read by the
	// GetTickCount hook so the deceptive tick stream starts near "just
	// booted" for that process.
	injectedAt map[int]time.Duration
}

// NewEngine builds an engine over a resource database and configuration.
func NewEngine(db *DB, cfg Config) *Engine {
	e := &Engine{
		DB:              db,
		Config:          cfg,
		WearTear:        DefaultWearTearFakes(),
		decoyPIDByImage: make(map[string]int),
		decoyImageByPID: make(map[int]string),
		injectedAt:      make(map[int]time.Duration),
	}
	for i, img := range db.DeceptiveProcesses() {
		pid := 90000 + 4*i
		e.decoyPIDByImage[img] = pid
		e.decoyImageByPID[pid] = img
	}
	return e
}

// InstallHooks plants scarecrow.dll into the process: marks the module
// loaded, rewrites the prologues of the 29 hooked APIs, and wires every
// handler to the deployment session for IPC trigger reporting. The hook
// table is built once per (engine, session) and shared by every injected
// process; per process the injection is one table attach plus the
// injection-time capture the deceptive tick stream starts from.
func (e *Engine) InstallHooks(sys *winapi.System, proc *winsim.Process, session *Session) error {
	if e.table == nil || e.tableSession != session {
		t, err := e.buildHookTable(session)
		if err != nil {
			return err
		}
		e.table = t
		e.tableSession = session
	}
	proc.LoadModule("scarecrow.dll")
	e.injectedAt[proc.PID] = sys.M.Clock.Now()
	if err := sys.InstallHookTable(proc.PID, e.table); err != nil {
		delete(e.injectedAt, proc.PID)
		return fmt.Errorf("core: installing hook table: %w", err)
	}
	return nil
}

// buildHookTable assembles scarecrow.dll's patch set for one deployment
// session: the 29 deceptive-resource handlers, the process-protection
// hooks, and the configured wear-and-tear and exception-deception
// extensions.
func (e *Engine) buildHookTable(session *Session) (*winapi.HookTable, error) {
	report := func(c *winapi.Context, api string, cat Category, vendor VendorProfile, resource string) {
		session.Report(TriggerReport{
			Time: c.M.Clock.Now(), PID: c.P.PID, API: api,
			Category: cat, Vendor: vendor, Resource: resource,
		})
	}
	allowed := func(v VendorProfile) bool {
		return session.vendorAllowed(v, e.Config.ProfileIsolation)
	}
	enabled := func(cat Category) bool { return e.Config.CategoryEnabled(cat) }

	handlers := map[string]winapi.HookHandler{
		"RegOpenKeyEx": func(c *winapi.Context, call *winapi.Call) any {
			return e.handleRegOpen(c, call, report, allowed)
		},
		"NtOpenKeyEx": func(c *winapi.Context, call *winapi.Call) any {
			return e.handleRegOpen(c, call, report, allowed)
		},
		"RegQueryValueEx": func(c *winapi.Context, call *winapi.Call) any {
			return e.handleRegQueryValue(c, call, report, allowed)
		},
		"NtQueryValueKey": func(c *winapi.Context, call *winapi.Call) any {
			return e.handleRegQueryValue(c, call, report, allowed)
		},
		"NtQueryKey": func(c *winapi.Context, call *winapi.Call) any {
			path := call.StrArg(0)
			if vendor, ok := e.DB.MatchRegKey(path); ok && allowed(vendor) {
				report(c, call.Name, CategoryRegistry, vendor, path)
				return winapi.Result{Status: winapi.StatusSuccess,
					KeyInfo: winapi.KeyInfo{SubkeyCount: 2, ValueCount: 3}}
			}
			return call.Original()
		},
		"GetAdaptersInfo": func(c *winapi.Context, call *winapi.Call) any {
			// Append deceptive virtual adapters to the genuine list: one
			// VirtualBox MAC and one VMware MAC, so MAC-prefix probes of
			// either vendor see their marker.
			genuine := call.Original().(winapi.Result)
			report(c, call.Name, CategoryHardware, VendorVBox, "adapter-macs")
			if e.Config.ProfileIsolation {
				switch {
				case allowed(VendorVBox):
					genuine.Adapters = append(genuine.Adapters, winapi.AdapterInfo{MAC: "08:00:27:de:ad:01"})
				case allowed(VendorVMware):
					genuine.Adapters = append(genuine.Adapters, winapi.AdapterInfo{MAC: "00:50:56:de:ad:02"})
				}
				return genuine
			}
			genuine.Adapters = append(genuine.Adapters,
				winapi.AdapterInfo{MAC: "08:00:27:de:ad:01"},
				winapi.AdapterInfo{MAC: "00:50:56:de:ad:02"})
			return genuine
		},
		"CreateFile": func(c *winapi.Context, call *winapi.Call) any {
			return e.handleFileProbe(c, call, report, allowed)
		},
		"NtCreateFile": func(c *winapi.Context, call *winapi.Call) any {
			return e.handleFileProbe(c, call, report, allowed)
		},
		"NtQueryAttributesFile": func(c *winapi.Context, call *winapi.Call) any {
			return e.handleFileProbe(c, call, report, allowed)
		},
		"GetFileAttributes": func(c *winapi.Context, call *winapi.Call) any {
			return e.handleFileProbe(c, call, report, allowed)
		},
		"FindFirstFile": func(c *winapi.Context, call *winapi.Call) any {
			pattern := call.StrArg(0)
			if vendor, ok := e.DB.MatchFile(strings.TrimSuffix(pattern, `\*`)); ok && allowed(vendor) {
				report(c, call.Name, CategoryFile, vendor, pattern)
				return winapi.Result{Status: winapi.StatusSuccess,
					Strs: []string{"analyzer.py", "dump.pcap", "hooks.log"}}
			}
			return call.Original()
		},
		// DeleteFile is hooked pass-through: the rewritten prologue itself
		// is the deception (anti-hooking malware reads it and concludes it
		// is being monitored — Figure 1).
		"DeleteFile": func(c *winapi.Context, call *winapi.Call) any {
			return call.Original()
		},
		"GetDiskFreeSpaceEx": func(c *winapi.Context, call *winapi.Call) any {
			if !e.Config.FakeHardware {
				return call.Original()
			}
			report(c, call.Name, CategoryHardware, VendorGeneric, "disk-size")
			return winapi.Result{Status: winapi.StatusSuccess, Disk: winapi.DiskSpace{
				TotalBytes: e.DB.HW.DiskTotalBytes, FreeBytes: e.DB.HW.DiskFreeBytes,
			}}
		},
		"GetSystemInfo": func(c *winapi.Context, call *winapi.Call) any {
			if !e.Config.FakeHardware {
				return call.Original()
			}
			report(c, call.Name, CategoryHardware, VendorGeneric, "cpu-cores")
			genuine := call.Original().(winapi.Result)
			genuine.SysInfo.NumberOfProcessors = e.DB.HW.NumCores
			return genuine
		},
		"GlobalMemoryStatusEx": func(c *winapi.Context, call *winapi.Call) any {
			if !e.Config.FakeHardware {
				return call.Original()
			}
			report(c, call.Name, CategoryHardware, VendorGeneric, "memory-size")
			return winapi.Result{Status: winapi.StatusSuccess, Mem: winapi.MemoryStatus{
				TotalPhysBytes: e.DB.HW.RAMBytes, AvailPhysBytes: e.DB.HW.RAMBytes / 2,
			}}
		},
		"GetComputerName": func(c *winapi.Context, call *winapi.Call) any {
			report(c, call.Name, CategoryHardware, VendorGeneric, "computer-name")
			return winapi.Result{Status: winapi.StatusSuccess, Str: e.DB.HW.ComputerName}
		},
		"GetUserName": func(c *winapi.Context, call *winapi.Call) any {
			report(c, call.Name, CategoryHardware, VendorGeneric, "user-name")
			return winapi.Result{Status: winapi.StatusSuccess, Str: e.DB.HW.UserName}
		},
		"GetModuleFileName": func(c *winapi.Context, call *winapi.Call) any {
			report(c, call.Name, CategoryHardware, VendorGeneric, "sample-path")
			return winapi.Result{Status: winapi.StatusSuccess, Str: e.DB.HW.SamplePath}
		},
		"GetModuleHandle": func(c *winapi.Context, call *winapi.Call) any {
			name := call.StrArg(0)
			if vendor, ok := e.DB.MatchLibrary(name); ok && allowed(vendor) && enabled(CategoryLibrary) {
				report(c, call.Name, CategoryLibrary, vendor, name)
				return winapi.Result{Status: winapi.StatusSuccess, Num: 0x7ffdec0de000}
			}
			return call.Original()
		},
		"GetProcAddress": func(c *winapi.Context, call *winapi.Call) any {
			proc := call.StrArg(1)
			if vendor, ok := e.DB.MatchExport(proc); ok && allowed(vendor) && enabled(CategoryLibrary) {
				report(c, call.Name, CategoryLibrary, vendor, proc)
				return winapi.Result{Status: winapi.StatusSuccess, Num: 0x7ffdec0de100}
			}
			return call.Original()
		},
		"CreateToolhelp32Snapshot": func(c *winapi.Context, call *winapi.Call) any {
			genuine := call.Original().(winapi.Result)
			if !enabled(CategoryProcess) {
				return genuine
			}
			report(c, call.Name, CategoryProcess, VendorDebugger, "process-list")
			for img, pid := range e.decoyPIDByImage {
				genuine.Entries = append(genuine.Entries, winapi.ProcessEntry{
					PID: pid, ParentPID: 4, Image: img,
				})
			}
			return genuine
		},
		"CreateProcess": func(c *winapi.Context, call *winapi.Call) any {
			return e.handleSpawn(c, call, session)
		},
		"ShellExecuteExW": func(c *winapi.Context, call *winapi.Call) any {
			return e.handleSpawn(c, call, session)
		},
		"IsDebuggerPresent": func(c *winapi.Context, call *winapi.Call) any {
			if !enabled(CategoryDebugger) {
				return call.Original()
			}
			report(c, call.Name, CategoryDebugger, VendorDebugger, "PEB.BeingDebugged")
			return winapi.Result{Status: winapi.StatusSuccess, Bool: true}
		},
		"NtQuerySystemInformation": func(c *winapi.Context, call *winapi.Call) any {
			// A kernel debugger "is attached" in the deceptive view; other
			// information classes pass through (the wear-and-tear
			// extension wraps this hook for regSize).
			if call.StrArg(0) == winapi.SystemKernelDebuggerInformation {
				report(c, call.Name, CategoryDebugger, VendorDebugger, "KernelDebugger")
				return winapi.Result{Status: winapi.StatusSuccess, Num: 1}
			}
			return call.Original()
		},
		"GetTickCount": func(c *winapi.Context, call *winapi.Call) any {
			report(c, call.Name, CategoryHardware, VendorGeneric, "uptime")
			elapsed := c.M.Clock.Now() - e.injectedAt[c.P.PID]
			return winapi.Result{Status: winapi.StatusSuccess,
				Num: e.Config.deceptiveTick(e.DB.HW.TickBaseMillis, elapsed)}
		},
		"FindWindow": func(c *winapi.Context, call *winapi.Call) any {
			class, title := call.StrArg(0), call.StrArg(1)
			for _, probe := range []string{class, title} {
				if probe == "" {
					continue
				}
				if vendor, ok := e.DB.MatchWindow(probe); ok && allowed(vendor) && enabled(CategoryWindow) {
					report(c, call.Name, CategoryWindow, vendor, probe)
					return winapi.Result{Status: winapi.StatusSuccess,
						Window: winsim.Window{Class: class, Title: title, PID: 90400}}
				}
			}
			return call.Original()
		},
		"DnsQuery": func(c *winapi.Context, call *winapi.Call) any {
			if !e.Config.SinkholeNXDomains {
				return call.Original()
			}
			genuine := call.Original().(winapi.Result)
			if genuine.Status.OK() {
				return genuine
			}
			domain := call.StrArg(0)
			report(c, call.Name, CategoryNetwork, VendorGeneric, domain)
			return winapi.Result{Status: winapi.StatusSuccess, Str: e.DB.SinkholeIP}
		},
		"GetCursorPos": func(c *winapi.Context, call *winapi.Call) any {
			report(c, call.Name, CategoryHardware, VendorGeneric, "cursor")
			// A frozen pointer: sandboxes have nobody at the mouse.
			return winapi.Result{Status: winapi.StatusSuccess, Num: winapi.PackCursorPos(512, 384)}
		},
	}

	t := winapi.NewHookTable()
	for _, api := range HookedAPIs {
		h, ok := handlers[api]
		if !ok {
			return nil, fmt.Errorf("core: no handler for hooked API %s", api)
		}
		if err := t.Hook(api, h); err != nil {
			return nil, fmt.Errorf("core: installing %s hook: %w", api, err)
		}
	}

	// Process protection (§II-B(b)): the planted analysis-tool processes
	// resist termination by untrusted software.
	if err := t.Hook("TerminateProcess", func(c *winapi.Context, call *winapi.Call) any {
		pid, _ := call.Arg(0).(int)
		if img, ok := e.decoyImageByPID[pid]; ok {
			report(c, call.Name, CategoryProcess, VendorDebugger, img)
			return winapi.Result{Status: winapi.StatusAccessDenied}
		}
		return call.Original()
	}); err != nil {
		return nil, fmt.Errorf("core: installing protection hook: %w", err)
	}
	if err := t.Hook("OpenProcess", func(c *winapi.Context, call *winapi.Call) any {
		pid, _ := call.Arg(0).(int)
		if _, ok := e.decoyImageByPID[pid]; ok {
			return winapi.Result{Status: winapi.StatusSuccess}
		}
		return call.Original()
	}); err != nil {
		return nil, fmt.Errorf("core: installing protection hook: %w", err)
	}

	if e.Config.WearAndTear {
		if err := e.hookWearAndTear(t, session); err != nil {
			return nil, fmt.Errorf("core: installing wear-and-tear extension: %w", err)
		}
	}
	if e.Config.TimingDiscrepancy {
		if err := e.hookExceptionDeception(t, session); err != nil {
			return nil, fmt.Errorf("core: installing exception deception: %w", err)
		}
	}
	return t, nil
}

func (e *Engine) handleRegOpen(c *winapi.Context, call *winapi.Call,
	report func(*winapi.Context, string, Category, VendorProfile, string),
	allowed func(VendorProfile) bool) any {
	if !e.Config.CategoryEnabled(CategoryRegistry) {
		return call.Original()
	}
	path := call.StrArg(0)
	if vendor, ok := e.DB.MatchRegKey(path); ok && allowed(vendor) {
		report(c, call.Name, CategoryRegistry, vendor, path)
		return winapi.Result{Status: winapi.StatusSuccess}
	}
	return call.Original()
}

func (e *Engine) handleRegQueryValue(c *winapi.Context, call *winapi.Call,
	report func(*winapi.Context, string, Category, VendorProfile, string),
	allowed func(VendorProfile) bool) any {
	if !e.Config.CategoryEnabled(CategoryRegistry) {
		return call.Original()
	}
	key, name := call.StrArg(0), call.StrArg(1)
	if fake, vendor, ok := e.DB.MatchRegValue(key, name); ok && allowed(vendor) {
		report(c, call.Name, CategoryRegistry, vendor, key+`\`+name)
		return winapi.Result{Status: winapi.StatusSuccess, Value: winsim.StringValue(fake)}
	}
	if vendor, ok := e.DB.MatchRegKey(key); ok && allowed(vendor) {
		report(c, call.Name, CategoryRegistry, vendor, key+`\`+name)
		return winapi.Result{Status: winapi.StatusSuccess, Value: winsim.StringValue("1")}
	}
	return call.Original()
}

func (e *Engine) handleFileProbe(c *winapi.Context, call *winapi.Call,
	report func(*winapi.Context, string, Category, VendorProfile, string),
	allowed func(VendorProfile) bool) any {
	if !e.Config.CategoryEnabled(CategoryFile) {
		return call.Original()
	}
	path := call.StrArg(0)
	if vendor, ok := e.DB.MatchFile(path); ok && allowed(vendor) {
		report(c, call.Name, CategoryFile, vendor, path)
		return winapi.Result{Status: winapi.StatusSuccess,
			FileInfo: winsim.FileInfo{Path: path, Kind: winsim.FileRegular, Size: 200 << 10}}
	}
	return call.Original()
}

// handleSpawn passes process creation through and feeds the mitigation
// ledger (§VI-C): self-spawning loops raise an alarm at the configured
// threshold, and the kill policy terminates the forking process.
func (e *Engine) handleSpawn(c *winapi.Context, call *winapi.Call, session *Session) any {
	genuine := call.Original().(winapi.Result)
	image := strings.ToLower(baseName(call.StrArg(0)))
	count := session.NoteSpawn(image)
	if count == e.Config.SpawnAlarmThreshold {
		session.Alert(fmt.Sprintf("self-spawn loop: %s created %d times by pid %d",
			image, count, c.P.PID))
		if e.Config.Mitigation == MitigationKillOnFork {
			if genuine.Proc != nil {
				c.M.ExitProcess(genuine.Proc, 137)
			}
			// Unwind the forking process like ExitProcess would.
			c.ExitProcess(137)
		}
	}
	return genuine
}

func baseName(path string) string {
	if i := strings.LastIndexAny(path, `\/`); i >= 0 {
		return path[i+1:]
	}
	return path
}

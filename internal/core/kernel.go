package core

import (
	"fmt"

	"scarecrow/internal/winapi"
)

// InstallKernelHooks deploys the §VI-A extension: deception handlers on
// the system-call dispatch gate. They are machine-wide and prologue-free,
// and they close the raw-syscall bypass — an Nt* probe issued through a
// syscall stub still receives the deceptive answer.
//
// The kernel layer only answers probes that user-mode hooks would answer
// identically; pass-through stays genuine, so double interposition (user
// hook plus kernel hook on one call) cannot double-apply a fake: the user
// hook short-circuits first for deceptive resources, and genuine paths
// fall through both layers untouched.
func (e *Engine) InstallKernelHooks(sys *winapi.System, session *Session) error {
	report := func(c *winapi.Context, api string, cat Category, vendor VendorProfile, resource string) {
		session.Report(TriggerReport{
			Time: c.M.Clock.Now(), PID: c.P.PID, API: api + " [kernel]",
			Category: cat, Vendor: vendor, Resource: resource,
		})
	}
	allowed := func(v VendorProfile) bool {
		return session.vendorAllowed(v, e.Config.ProfileIsolation)
	}

	hooks := map[string]winapi.HookHandler{
		"NtOpenKeyEx": func(c *winapi.Context, call *winapi.Call) any {
			path := call.StrArg(0)
			if vendor, ok := e.DB.MatchRegKey(path); ok && allowed(vendor) {
				report(c, call.Name, CategoryRegistry, vendor, path)
				return winapi.Result{Status: winapi.StatusSuccess}
			}
			return call.Original()
		},
		"NtQueryAttributesFile": func(c *winapi.Context, call *winapi.Call) any {
			path := call.StrArg(0)
			if vendor, ok := e.DB.MatchFile(path); ok && allowed(vendor) {
				report(c, call.Name, CategoryFile, vendor, path)
				return winapi.Result{Status: winapi.StatusSuccess}
			}
			return call.Original()
		},
		"NtQuerySystemInformation": func(c *winapi.Context, call *winapi.Call) any {
			if call.StrArg(0) == winapi.SystemKernelDebuggerInformation {
				report(c, call.Name, CategoryDebugger, VendorDebugger, "KernelDebugger")
				return winapi.Result{Status: winapi.StatusSuccess, Num: 1}
			}
			return call.Original()
		},
	}
	for api, h := range hooks {
		if err := sys.InstallKernelHook(api, h); err != nil {
			return fmt.Errorf("core: kernel hook %s: %w", api, err)
		}
	}
	return nil
}

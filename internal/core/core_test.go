package core

import (
	"strings"
	"testing"
	"time"

	"scarecrow/internal/winapi"
	"scarecrow/internal/winsim"
)

// deployOnEndUser deploys a default-config Scarecrow on an end-user machine
// and launches a registered no-op target under it, returning the target's
// context for direct probing.
func deployOnEndUser(t *testing.T, cfg Config) (*Controller, *winapi.Context) {
	t.Helper()
	m := winsim.NewEndUserMachine(1)
	sys := winapi.NewSystem(m)
	sys.RegisterProgram(`C:\Users\alice\Downloads\target.exe`, func(ctx *winapi.Context) int {
		return winapi.ExitOK
	})
	ctrl := mustDeploy(t, sys, NewEngine(NewDB(), cfg))
	target, err := ctrl.LaunchTarget(`C:\Users\alice\Downloads\target.exe`, "target.exe")
	if err != nil {
		t.Fatal(err)
	}
	return ctrl, sys.Context(target)
}

func TestHookedAPIsIsExactly29(t *testing.T) {
	if len(HookedAPIs) != 29 {
		t.Fatalf("len(HookedAPIs) = %d, want 29 (paper §III-A)", len(HookedAPIs))
	}
	seen := make(map[string]bool)
	for _, api := range HookedAPIs {
		if seen[api] {
			t.Errorf("duplicate hooked API %s", api)
		}
		seen[api] = true
		if !winapi.APIKnown(api) {
			t.Errorf("hooked API %s missing from the catalog", api)
		}
	}
}

func TestDBStockCounts(t *testing.T) {
	db := NewDB()
	counts := db.Counts()
	// 24 paper-stock processes (§II-B(b)) + 2 Deep Freeze reboot-restore
	// entries landed as a synthesized-gap fix (internal/synth).
	if counts[CategoryProcess] != 26 {
		t.Errorf("deceptive processes = %d, want 26 = 24 (§II-B(b)) + 2 Deep Freeze", counts[CategoryProcess])
	}
	if counts[CategoryLibrary] != 15 {
		t.Errorf("deceptive DLLs = %d, want 15 (§II-B(c))", counts[CategoryLibrary])
	}
	if counts[CategoryWindow] != 10 {
		t.Errorf("deceptive windows = %d, want 10 = 6 debugger + 4 sandbox (§II-B(d))", counts[CategoryWindow])
	}
}

func TestRegistryDeception(t *testing.T) {
	_, ctx := deployOnEndUser(t, DefaultConfig())
	if st := ctx.RegOpenKeyEx(`HKEY_LOCAL_MACHINE\SOFTWARE\Oracle\VirtualBox Guest Additions`); !st.OK() {
		t.Error("VirtualBox guest additions key not deceived")
	}
	if st := ctx.NtOpenKeyEx(`SOFTWARE\VMware, Inc.\VMware Tools`); !st.OK() {
		t.Error("VMware Tools key not deceived (implicit HKLM)")
	}
	v, st := ctx.RegQueryValueEx(`HKLM\HARDWARE\Description\System`, "SystemBiosVersion")
	if !st.OK() || !strings.Contains(v.Str, "VBOX") || !strings.Contains(v.Str, "BOCHS") {
		t.Errorf("SystemBiosVersion fake = %q (should combine VM names, §II-B(e))", v.Str)
	}
	id, st := ctx.NtQueryValueKey(`HKLM\HARDWARE\DEVICEMAP\Scsi\Scsi Port 0\Scsi Bus 0\Target Id 0\Logical Unit Id 0`, "Identifier")
	if !st.OK() || !strings.Contains(id.Str, "QEMU") {
		t.Errorf("SCSI identifier fake = %q", id.Str)
	}
	// Unrelated keys still answer genuinely.
	if st := ctx.RegOpenKeyEx(`HKLM\SOFTWARE\NoSuchVendor`); st.OK() {
		t.Error("unrelated missing key fabricated")
	}
	if st := ctx.RegOpenKeyEx(`HKLM\SOFTWARE\Microsoft\Windows NT\CurrentVersion`); !st.OK() {
		t.Error("genuine key broken")
	}
}

func TestFileAndDeviceDeception(t *testing.T) {
	_, ctx := deployOnEndUser(t, DefaultConfig())
	for _, path := range []string{
		`C:\Windows\System32\drivers\vmmouse.sys`,
		`C:\Windows\System32\drivers\VBoxMouse.sys`,
		`C:\analysis\run.log`,
	} {
		if _, st := ctx.NtQueryAttributesFile(path); !st.OK() {
			t.Errorf("file probe %q not deceived", path)
		}
	}
	if st := ctx.CreateFile(`C:\Users\alice\real-missing.txt`); st.OK() {
		t.Error("unrelated missing file fabricated")
	}
}

func TestDebuggerAndIdentityDeception(t *testing.T) {
	ctrl, ctx := deployOnEndUser(t, DefaultConfig())
	if !ctx.IsDebuggerPresent() {
		t.Error("IsDebuggerPresent not deceived")
	}
	if dbg, st := ctx.NtQuerySystemInformation(winapi.SystemKernelDebuggerInformation); !st.OK() || dbg != 1 {
		t.Error("kernel-debugger information not deceived")
	}
	if got := ctx.GetComputerName(); got != "SANDBOX-PC" {
		t.Errorf("computer name = %q", got)
	}
	if got := ctx.GetUserName(); got != "currentuser" {
		t.Errorf("user name = %q", got)
	}
	if got := ctx.GetModuleFileName(); got != `C:\sample.exe` {
		t.Errorf("module path = %q", got)
	}
	first, ok := ctrl.Session.FirstTrigger()
	if !ok {
		t.Fatal("no triggers reported over IPC")
	}
	if first.API != "IsDebuggerPresent" {
		t.Errorf("first trigger = %s, want IsDebuggerPresent", first.API)
	}
}

func TestPEBReadBypassesDeception(t *testing.T) {
	_, ctx := deployOnEndUser(t, DefaultConfig())
	// The API lies; direct memory tells the truth (Table I, sample
	// cbdda64: Scarecrow's single failure).
	if got := ctx.GetSystemInfo().NumberOfProcessors; got != 1 {
		t.Errorf("API cores = %d, want deceptive 1", got)
	}
	if got := ctx.ReadPEB().NumberOfProcessors; got != 8 {
		t.Errorf("PEB cores = %d, want genuine 8", got)
	}
	if ctx.ReadPEB().BeingDebugged {
		t.Error("PEB.BeingDebugged must stay genuine")
	}
}

func TestHardwareDeception(t *testing.T) {
	_, ctx := deployOnEndUser(t, DefaultConfig())
	disk, st := ctx.GetDiskFreeSpaceEx(`C:\`)
	if !st.OK() || disk.TotalBytes != 50<<30 {
		t.Errorf("disk = %+v", disk)
	}
	if mem := ctx.GlobalMemoryStatusEx(); mem.TotalPhysBytes != 1<<30 {
		t.Errorf("ram = %d", mem.TotalPhysBytes)
	}
}

func TestModuleWindowAndExportDeception(t *testing.T) {
	_, ctx := deployOnEndUser(t, DefaultConfig())
	if _, st := ctx.GetModuleHandle("SbieDll.dll"); !st.OK() {
		t.Error("SbieDll not deceived")
	}
	if _, st := ctx.GetModuleHandle("totally-benign.dll"); st.OK() {
		t.Error("unrelated module fabricated")
	}
	if _, st := ctx.GetProcAddress("kernel32.dll", "wine_get_unix_file_name"); !st.OK() {
		t.Error("wine export not deceived")
	}
	if _, st := ctx.FindWindow("OLLYDBG", ""); !st.OK() {
		t.Error("OllyDbg window not deceived")
	}
	if _, st := ctx.FindWindow("RealAppWindow", ""); st.OK() {
		t.Error("unrelated window fabricated")
	}
}

func TestSnapshotPlantsProtectedDecoys(t *testing.T) {
	_, ctx := deployOnEndUser(t, DefaultConfig())
	entries := ctx.CreateToolhelp32Snapshot()
	var olly *winapi.ProcessEntry
	for i := range entries {
		if entries[i].Image == "olydbg.exe" {
			olly = &entries[i]
		}
	}
	if olly == nil {
		t.Fatal("olydbg.exe decoy missing from snapshot")
	}
	if st := ctx.TerminateProcess(olly.PID); st != winapi.StatusAccessDenied {
		t.Errorf("decoy termination = %v, want ACCESS_DENIED (§II-B(b))", st)
	}
	if st := ctx.OpenProcess(olly.PID); !st.OK() {
		t.Errorf("decoy OpenProcess = %v", st)
	}
}

func TestTickDeception(t *testing.T) {
	_, ctx := deployOnEndUser(t, DefaultConfig())
	tick := ctx.GetTickCount()
	// Genuine uptime is 9 days; the deceptive answer is minutes.
	if tick > 10*60*1000 {
		t.Errorf("deceptive tick = %d ms, want sandbox-fresh uptime", tick)
	}
	t0 := ctx.GetTickCount()
	ctx.Sleep(500 * time.Millisecond)
	t1 := ctx.GetTickCount()
	if d := t1 - t0; d < 450 || d > 550 {
		t.Errorf("tick delta without timing discrepancy = %d, want ~500", d)
	}
}

func TestTimingDiscrepancySlowsTicks(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TimingDiscrepancy = true
	_, ctx := deployOnEndUser(t, cfg)
	t0 := ctx.GetTickCount()
	ctx.Sleep(800 * time.Millisecond)
	t1 := ctx.GetTickCount()
	if d := t1 - t0; d >= 450 {
		t.Errorf("tick delta with discrepancy = %d, want < 450 (sleep-patch signal)", d)
	}
}

func TestDNSSinkholeDeception(t *testing.T) {
	_, ctx := deployOnEndUser(t, DefaultConfig())
	addr, st := ctx.DnsQuery("iuqerfsodp9ifjaposdfjhgosurijfaewrwergwea.com")
	if !st.OK() {
		t.Fatal("NX domain should be sinkholed")
	}
	if code, st := ctx.InternetOpenUrl(addr); !st.OK() || code != 200 {
		t.Errorf("sinkhole HTTP = %d, %v", code, st)
	}
	// Real domains resolve genuinely.
	real, st := ctx.DnsQuery("site001.example.com")
	if !st.OK() || real == addr {
		t.Errorf("real domain = %q, %v", real, st)
	}
}

func TestCursorFrozen(t *testing.T) {
	m := winsim.NewEndUserMachine(1)
	m.Mouse = winsim.NewMouse(true, 10, 10) // an active human
	sys := winapi.NewSystem(m)
	sys.RegisterProgram(`C:\t.exe`, func(ctx *winapi.Context) int { return 0 })
	ctrl := mustDeploy(t, sys, NewEngine(NewDB(), DefaultConfig()))
	target, err := ctrl.LaunchTarget(`C:\t.exe`, "")
	if err != nil {
		t.Fatal(err)
	}
	ctx := sys.Context(target)
	x1, y1 := ctx.GetCursorPos()
	ctx.Sleep(5 * time.Second)
	x2, y2 := ctx.GetCursorPos()
	if x1 != x2 || y1 != y2 {
		t.Error("cursor not frozen under deception")
	}
}

func TestProloguesPatchedOnlyInTarget(t *testing.T) {
	m := winsim.NewEndUserMachine(1)
	sys := winapi.NewSystem(m)
	sys.RegisterProgram(`C:\t.exe`, func(ctx *winapi.Context) int { return 0 })
	ctrl := mustDeploy(t, sys, NewEngine(NewDB(), DefaultConfig()))
	target, err := ctrl.LaunchTarget(`C:\t.exe`, "")
	if err != nil {
		t.Fatal(err)
	}
	tctx := sys.Context(target)
	for _, api := range []string{"DeleteFile", "ShellExecuteExW", "IsDebuggerPresent"} {
		if tctx.PrologueIntact(api) {
			t.Errorf("%s prologue intact in target", api)
		}
	}
	if !target.HasModule("scarecrow.dll") {
		t.Error("scarecrow.dll not in target module list")
	}
	bystander := sys.Launch(`C:\bystander.exe`, "", nil)
	if !sys.Context(bystander).PrologueIntact("DeleteFile") {
		t.Error("hooks leaked into a non-target process")
	}
}

func TestParentProcessIsController(t *testing.T) {
	_, ctx := deployOnEndUser(t, DefaultConfig())
	if got := ctx.ParentProcessImage(); got != "scarecrow.exe" {
		t.Errorf("parent = %q, want scarecrow.exe (§III-B)", got)
	}
}

func TestFollowChildrenInjection(t *testing.T) {
	m := winsim.NewEndUserMachine(1)
	sys := winapi.NewSystem(m)
	var childPID int
	sys.RegisterProgram(`C:\t.exe`, func(ctx *winapi.Context) int {
		child, _ := ctx.CreateProcess(`C:\dropped.exe`, "")
		childPID = child.PID
		return 0
	})
	ctrl := mustDeploy(t, sys, NewEngine(NewDB(), DefaultConfig()))
	if _, err := ctrl.LaunchTarget(`C:\t.exe`, ""); err != nil {
		t.Fatal(err)
	}
	sys.Run(time.Minute)
	if childPID == 0 {
		t.Fatal("child not created")
	}
	if !ctrl.Injected(childPID) {
		t.Error("descendant did not receive scarecrow.dll")
	}
	child, _ := m.Procs.Get(childPID)
	if !child.HasModule("scarecrow.dll") {
		t.Error("descendant module list missing scarecrow.dll")
	}
}

func TestProfileIsolationDisablesConflictingVendors(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ProfileIsolation = true
	ctrl, ctx := deployOnEndUser(t, cfg)
	// Probe VMware first: it becomes the active vendor.
	if st := ctx.RegOpenKeyEx(`HKLM\SOFTWARE\VMware, Inc.\VMware Tools`); !st.OK() {
		t.Fatal("first vendor probe not deceived")
	}
	if ctrl.Session.ActiveVendor() != VendorVMware {
		t.Fatalf("active vendor = %q", ctrl.Session.ActiveVendor())
	}
	// VirtualBox artifacts must now be dark: no conflicting identities.
	if st := ctx.RegOpenKeyEx(`HKLM\SOFTWARE\Oracle\VirtualBox Guest Additions`); st.OK() {
		t.Error("conflicting VirtualBox key still deceived under isolation")
	}
	if _, st := ctx.NtQueryAttributesFile(`C:\Windows\System32\drivers\VBoxMouse.sys`); st.OK() {
		t.Error("conflicting VirtualBox file still deceived under isolation")
	}
	// VMware artifacts keep answering.
	if _, st := ctx.NtQueryAttributesFile(`C:\Windows\System32\drivers\vmmouse.sys`); !st.OK() {
		t.Error("active vendor went dark")
	}
	// Vendor-neutral deceptions (debugger) are unaffected.
	if !ctx.IsDebuggerPresent() {
		t.Error("debugger deception affected by isolation")
	}
}

func TestWithoutIsolationVendorsConflict(t *testing.T) {
	_, ctx := deployOnEndUser(t, DefaultConfig())
	vm := ctx.RegOpenKeyEx(`HKLM\SOFTWARE\VMware, Inc.\VMware Tools`).OK()
	vb := ctx.RegOpenKeyEx(`HKLM\SOFTWARE\Oracle\VirtualBox Guest Additions`).OK()
	if !vm || !vb {
		t.Error("stock engine should answer both vendors (the detectable conflict of §VI-B)")
	}
}

func TestMitigationAlertOnSelfSpawnLoop(t *testing.T) {
	m := winsim.NewEndUserMachine(1)
	sys := winapi.NewSystem(m)
	sys.RegisterProgram(`C:\w.exe`, func(ctx *winapi.Context) int {
		if ctx.IsDebuggerPresent() {
			_, _ = ctx.CreateProcess(`C:\w.exe`, "")
			return 1
		}
		return 0
	})
	ctrl := mustDeploy(t, sys, NewEngine(NewDB(), DefaultConfig()))
	if _, err := ctrl.LaunchTarget(`C:\w.exe`, ""); err != nil {
		t.Fatal(err)
	}
	sys.Run(time.Minute)
	alerts := ctrl.Session.Alerts()
	if len(alerts) == 0 {
		t.Fatal("no fork-bomb alert raised")
	}
	if ctrl.Session.SpawnCount("w.exe") <= 10 {
		t.Errorf("spawn count = %d, want > threshold", ctrl.Session.SpawnCount("w.exe"))
	}
}

func TestMitigationKillStopsLoop(t *testing.T) {
	m := winsim.NewEndUserMachine(1)
	sys := winapi.NewSystem(m)
	sys.RegisterProgram(`C:\w.exe`, func(ctx *winapi.Context) int {
		if ctx.IsDebuggerPresent() {
			_, _ = ctx.CreateProcess(`C:\w.exe`, "")
			return 1
		}
		return 0
	})
	cfg := DefaultConfig()
	cfg.Mitigation = MitigationKillOnFork
	ctrl := mustDeploy(t, sys, NewEngine(NewDB(), cfg))
	if _, err := ctrl.LaunchTarget(`C:\w.exe`, ""); err != nil {
		t.Fatal(err)
	}
	sys.Run(time.Minute)
	if got := ctrl.Session.SpawnCount("w.exe"); got > cfg.SpawnAlarmThreshold+1 {
		t.Errorf("spawns after kill policy = %d, want <= threshold+1", got)
	}
}

func TestWearAndTearDeception(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WearAndTear = true
	_, ctx := deployOnEndUser(t, cfg)
	// End-user machine has 130 cached DNS entries; deceived view shows 4.
	if got := len(ctx.DnsGetCacheDataTable()); got != 4 {
		t.Errorf("dns cache entries = %d, want 4 (Table III)", got)
	}
	_, total := ctx.EvtNext(0, 100)
	if total != 8000 {
		t.Errorf("event total = %d, want 8000", total)
	}
	quota, st := ctx.NtQuerySystemInformation(winapi.SystemRegistryQuotaInformation)
	if !st.OK() || quota != 53<<20 {
		t.Errorf("regSize = %d, want 53MB", quota)
	}
	info, st := ctx.NtQueryKey(winsim.RegDeviceClassesKey)
	if !st.OK() || info.SubkeyCount != 29 {
		t.Errorf("deviceClsCount = %d, want 29", info.SubkeyCount)
	}
	run, st := ctx.NtQueryKey(winsim.RegRunKey)
	if !st.OK() || run.ValueCount != 3 {
		t.Errorf("autoRunCount = %d, want 3", run.ValueCount)
	}
	ua, st := ctx.NtQueryKey(winsim.RegUserAssistKey + `\{guid-0001}\Count`)
	if !st.OK() || ua.ValueCount != 7 {
		t.Errorf("usrassistCount = %d, want 7", ua.ValueCount)
	}
}

func TestWearAndTearOffByDefault(t *testing.T) {
	_, ctx := deployOnEndUser(t, DefaultConfig())
	if got := len(ctx.DnsGetCacheDataTable()); got != 130 {
		t.Errorf("dns cache without extension = %d, want genuine 130", got)
	}
}

func TestLaunchTargetRequiresRegisteredProgram(t *testing.T) {
	m := winsim.NewEndUserMachine(1)
	sys := winapi.NewSystem(m)
	ctrl := mustDeploy(t, sys, NewEngine(NewDB(), DefaultConfig()))
	if _, err := ctrl.LaunchTarget(`C:\unknown.exe`, ""); err == nil {
		t.Error("launching an unregistered image should fail")
	}
}

func TestDBExtension(t *testing.T) {
	db := NewDB()
	if _, ok := db.MatchFile(`c:\vxstream\tools\vt_00001.bin`); ok {
		t.Fatal("crawled file matched before extension")
	}
	db.AddFile(`c:\vxstream\tools\vt_00001.bin`, VendorCuckoo)
	if _, ok := db.MatchFile(`C:\VXSTREAM\TOOLS\VT_00001.BIN`); !ok {
		t.Error("extension lookup failed")
	}
	db.AddRegKey(`HKLM\SOFTWARE\vtAnalysis\Component0001`, VendorCuckoo)
	if _, ok := db.MatchRegKey(`software\vtanalysis\component0001`); !ok {
		t.Error("extended registry key lookup failed")
	}
	db.AddProcess("vt_tool01.exe", VendorCuckoo)
	if _, ok := db.MatchProcess("VT_TOOL01.EXE"); !ok {
		t.Error("extended process lookup failed")
	}
}

func TestTriggerReportString(t *testing.T) {
	r := TriggerReport{API: "IsDebuggerPresent", Category: CategoryDebugger,
		Vendor: VendorDebugger, Resource: "PEB.BeingDebugged"}
	s := r.String()
	if !strings.Contains(s, "IsDebuggerPresent()") || !strings.Contains(s, "debugger") {
		t.Errorf("String = %q", s)
	}
}

func TestKernelHooksCloseDirectSyscallBypass(t *testing.T) {
	const key = `HKLM\SOFTWARE\Oracle\VirtualBox Guest Additions`

	// Stock deployment: the raw syscall sees the genuine registry.
	_, ctx := deployOnEndUser(t, DefaultConfig())
	if got := ctx.DirectSyscall("NtOpenKeyEx", key); got != winapi.StatusFileNotFound {
		t.Errorf("user-only deployment: direct syscall = %v, want genuine FILE_NOT_FOUND", got)
	}

	// Kernel-extended deployment (§VI-A): the syscall gate answers
	// deceptively even for raw stubs.
	cfg := DefaultConfig()
	cfg.KernelHooks = true
	ctrl, kctx := deployOnEndUser(t, cfg)
	if got := kctx.DirectSyscall("NtOpenKeyEx", key); got != winapi.StatusSuccess {
		t.Errorf("kernel deployment: direct syscall = %v, want deceptive SUCCESS", got)
	}
	found := false
	for _, tr := range ctrl.Session.Triggers() {
		if tr.API == "NtOpenKeyEx [kernel]" {
			found = true
		}
	}
	if !found {
		t.Error("kernel-layer trigger not reported over IPC")
	}
	// Kernel hooks rewrite no prologues: the anti-hook byte check cannot
	// see them (only the user-mode inline hooks patch bytes).
	bystander := kctx.System().Launch(`C:\bystander.exe`, "", nil)
	bctx := kctx.System().Context(bystander)
	if !bctx.PrologueIntact("NtOpenKeyEx") {
		t.Error("kernel hook patched a prologue")
	}
	// ...but they are machine-wide: the unhooked bystander is deceived
	// too when it crosses the syscall gate.
	if st := bctx.NtOpenKeyEx(key); !st.OK() {
		t.Error("kernel hook did not cover the bystander process")
	}
}

func TestKernelHooksRejectWin32Names(t *testing.T) {
	m := winsim.NewEndUserMachine(1)
	sys := winapi.NewSystem(m)
	if err := sys.InstallKernelHook("GetTickCount", nil); err == nil {
		t.Error("Win32 export accepted as a kernel hook")
	}
	if err := sys.InstallKernelHook("NtNoSuchCall", nil); err == nil {
		t.Error("unknown syscall accepted")
	}
}

func TestExceptionDispatchDeception(t *testing.T) {
	// Without the timing-discrepancy module, exception dispatch runs at
	// native cost.
	_, ctx := deployOnEndUser(t, DefaultConfig())
	if d := ctx.RaiseException(); d > time.Millisecond {
		t.Errorf("native dispatch = %v, want sub-millisecond", d)
	}
	// With it, dispatch carries the deceptive analysis-system latency
	// malware measures for (§II-B(g)).
	cfg := DefaultConfig()
	cfg.TimingDiscrepancy = true
	ctrl, slow := deployOnEndUser(t, cfg)
	if d := slow.RaiseException(); d < time.Millisecond {
		t.Errorf("deceptive dispatch = %v, want milliseconds", d)
	}
	found := false
	for _, tr := range ctrl.Session.Triggers() {
		if tr.Resource == "exception-dispatch" {
			found = true
		}
	}
	if !found {
		t.Error("exception probe not reported")
	}
}

func TestControllerAccessors(t *testing.T) {
	ctrl, ctx := deployOnEndUser(t, DefaultConfig())
	if ctrl.InjectedCount() != 1 {
		t.Errorf("injected = %d", ctrl.InjectedCount())
	}
	if ctrl.Process().ImageBase() != "scarecrow.exe" {
		t.Error("controller process image")
	}
	if ctrl.Session.TriggerCount() != 0 {
		t.Error("triggers before any probe")
	}
	ctx.IsDebuggerPresent()
	if ctrl.Session.TriggerCount() != 1 {
		t.Error("trigger count after probe")
	}
	// Watch is idempotent and protects already-running processes.
	bystander := ctx.System().Launch(`C:\late.exe`, "", nil)
	if err := ctrl.Watch(bystander); err != nil {
		t.Fatal(err)
	}
	if err := ctrl.Watch(bystander); err != nil {
		t.Fatal(err)
	}
	if ctrl.InjectedCount() != 2 {
		t.Errorf("injected after watch = %d", ctrl.InjectedCount())
	}
	if !ctx.System().Context(bystander).IsDebuggerPresent() {
		t.Error("watched process not deceived")
	}
}

func TestRecommendedConfigTiming(t *testing.T) {
	if !RecommendedConfig("baremetal-sandbox").TimingDiscrepancy {
		t.Error("bare metal should run the timing module")
	}
	if RecommendedConfig("end-user").TimingDiscrepancy {
		t.Error("end-user deployments must not double-virtualize timing")
	}
}

func TestRegQueryValueFallbackOnDeceptiveKey(t *testing.T) {
	// Querying a value under a deceptive KEY (no specific value fake)
	// returns a generic answer rather than failing: the key "exists".
	_, ctx := deployOnEndUser(t, DefaultConfig())
	v, st := ctx.RegQueryValueEx(`HKLM\SOFTWARE\VMware, Inc.\VMware Tools`, "InstallPath")
	if !st.OK() || v.Str == "" {
		t.Errorf("fallback value = %+v, %v", v, st)
	}
}

func TestHypervisorDeceptionClosesTimingChannel(t *testing.T) {
	// Stock deployment: raw instructions stay genuine on the end-user
	// machine (the paper's unhandled channel). The end-user CPU sits above
	// the vmexit threshold already (the noisy-timing false positive), so
	// use the hypervisor bit and vendor as discriminators.
	_, ctx := deployOnEndUser(t, DefaultConfig())
	if ctx.CPUID().HypervisorBit {
		t.Error("stock deployment exposed a hypervisor bit")
	}

	cfg := DefaultConfig()
	cfg.HypervisorDeception = true
	_, hctx := deployOnEndUser(t, cfg)
	res := hctx.CPUID()
	if !res.HypervisorBit || res.HypervisorVendor != "VBoxVBoxVBox" {
		t.Errorf("virtualized CPUID = %+v", res)
	}
	c1 := hctx.RDTSC()
	hctx.CPUID()
	c2 := hctx.RDTSC()
	if c2-c1 < 4000 {
		t.Errorf("CPUID trap cost = %d cycles, want VM-exit scale", c2-c1)
	}
}

func TestInstallHypervisorRestore(t *testing.T) {
	m := winsim.NewBareMetalSandbox(1)
	wasCycles := m.HW.CPUIDCycles
	restore := InstallHypervisor(m, DefaultHypervisorFakes())
	if !m.HW.HypervisorPresent {
		t.Fatal("hypervisor not installed")
	}
	restore()
	if m.HW.HypervisorPresent || m.HW.CPUIDCycles != wasCycles {
		t.Error("restore did not eject the hypervisor")
	}
}

// newTestEndUser and deployWith support config-variation tests.
func newTestEndUser() *winsim.Machine { return winsim.NewEndUserMachine(1) }

func deployWith(t *testing.T, m *winsim.Machine, db *DB, cfg Config) (*Controller, *winapi.Context) {
	t.Helper()
	sys := winapi.NewSystem(m)
	sys.RegisterProgram(`C:\t.exe`, func(ctx *winapi.Context) int { return winapi.ExitOK })
	ctrl := mustDeploy(t, sys, NewEngine(db, cfg))
	target, err := ctrl.LaunchTarget(`C:\t.exe`, "t.exe")
	if err != nil {
		t.Fatal(err)
	}
	return ctrl, sys.Context(target)
}

// TestDynamicDBUpdatePropagatesLive models Figure 2's IPC loop: the
// controller "dynamically updates the hooks and configurations" of an
// already-injected target. Resources learned mid-run (from a crawl or a
// MalGene signature) take effect on the very next probe.
func TestDynamicDBUpdatePropagatesLive(t *testing.T) {
	ctrl, ctx := deployOnEndUser(t, DefaultConfig())
	const novel = `HKLM\SOFTWARE\FreshlyLearned\Sandbox`
	if st := ctx.RegOpenKeyEx(novel); st.OK() {
		t.Fatal("unknown key deceived before learning")
	}
	ctrl.Engine.DB.AddRegKey(novel, VendorCuckoo)
	if st := ctx.RegOpenKeyEx(novel); !st.OK() {
		t.Error("learned key not deceived on the next probe")
	}
	// Config updates propagate the same way: flip the hardware fakes off.
	ctrl.Engine.Config.FakeHardware = false
	if disk, st := ctx.GetDiskFreeSpaceEx(`C:\`); !st.OK() || disk.TotalBytes == 50<<30 {
		t.Errorf("hardware fake survived a live config update: %+v", disk)
	}
	ctrl.Engine.Config.FakeHardware = true
	if disk, _ := ctx.GetDiskFreeSpaceEx(`C:\`); disk.TotalBytes != 50<<30 {
		t.Error("hardware fake did not re-enable")
	}
}

func TestTriggerHistogram(t *testing.T) {
	ctrl, ctx := deployOnEndUser(t, DefaultConfig())
	ctx.IsDebuggerPresent()
	ctx.IsDebuggerPresent()
	ctx.RegOpenKeyEx(`HKLM\SOFTWARE\VMware, Inc.\VMware Tools`)
	hist := ctrl.Session.TriggerHistogram()
	if hist[CategoryDebugger] != 2 || hist[CategoryRegistry] != 1 {
		t.Errorf("histogram = %v", hist)
	}
}

func TestCategoryAblationToggles(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DisabledCategories = []Category{CategoryRegistry, CategoryDebugger}
	_, ctx := deployOnEndUser(t, cfg)
	if ctx.RegOpenKeyEx(`HKLM\SOFTWARE\VMware, Inc.\VMware Tools`).OK() {
		t.Error("registry deception active despite ablation")
	}
	if ctx.IsDebuggerPresent() {
		t.Error("debugger deception active despite ablation")
	}
	// Other categories keep working.
	if _, st := ctx.NtQueryAttributesFile(`C:\Windows\System32\drivers\vmmouse.sys`); !st.OK() {
		t.Error("file deception should remain active")
	}
	if _, st := ctx.GetModuleHandle("SbieDll.dll"); !st.OK() {
		t.Error("library deception should remain active")
	}
}

// mustDeploy deploys Scarecrow or fails the test; the happy-path tests
// here are not about deployment errors.
func mustDeploy(t testing.TB, sys *winapi.System, engine *Engine) *Controller {
	t.Helper()
	ctrl, err := Deploy(sys, engine)
	if err != nil {
		t.Fatalf("Deploy: %v", err)
	}
	return ctrl
}

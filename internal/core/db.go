// Package core implements the Scarecrow deception engine: the deceptive
// resource database (Section II-B/II-C of the paper), the 29 API hook
// handlers that project an analysis-like environment into a target process
// (Section III-A), and the deployment framework — controller, DLL
// injection, descendant follow-injection, and IPC trigger reporting
// (Section III-B) — plus the wear-and-tear extension (Table III), the
// profile-isolation countermeasure sketched in §VI-B, and the active
// mitigation policy of §VI-C.
package core

import (
	"sort"
	"strings"
)

// Category classifies a deceptive resource by the evasion family it
// deceives, mirroring the taxonomy of Section II-B.
type Category string

// Resource categories.
const (
	CategoryFile     Category = "file"
	CategoryProcess  Category = "process"
	CategoryLibrary  Category = "library"
	CategoryWindow   Category = "window"
	CategoryRegistry Category = "registry"
	CategoryHardware Category = "hardware"
	CategoryNetwork  Category = "network"
	CategoryDebugger Category = "debugger"
	CategoryHook     Category = "hook"
	CategoryWearTear Category = "weartear"
)

// VendorProfile tags a deceptive resource with the analysis-environment
// vendor it imitates, enabling the §VI-B profile-isolation countermeasure
// (never present two vendors' artifacts after one is probed).
type VendorProfile string

// Vendor profiles.
const (
	VendorVMware    VendorProfile = "vmware"
	VendorVBox      VendorProfile = "virtualbox"
	VendorQemu      VendorProfile = "qemu"
	VendorBochs     VendorProfile = "bochs"
	VendorWine      VendorProfile = "wine"
	VendorSandboxie VendorProfile = "sandboxie"
	VendorCuckoo    VendorProfile = "cuckoo"
	VendorDebugger  VendorProfile = "debugger"
	VendorGeneric   VendorProfile = "generic"
)

// HardwareFakes are the deceptive system-configuration answers of §II-B
// (hardware resources). The values mirror public sandbox statistics, per
// the paper's footnote: 50 GB disk, 1 GB RAM, one core.
type HardwareFakes struct {
	DiskTotalBytes uint64
	DiskFreeBytes  uint64
	RAMBytes       uint64
	NumCores       int
	// TickBaseMillis is the deceptive uptime base GetTickCount reports at
	// injection time (a freshly rebooted sandbox).
	TickBaseMillis uint64
	// ComputerName, UserName, and SamplePath are the deceptive identity
	// answers (sandboxes run samples as generic users from fixed paths).
	ComputerName string
	UserName     string
	SamplePath   string
}

// DB is the deceptive resource database Scarecrow's hooks consult. All
// lookups are case-insensitive. The stock database carries the resources
// Section II-B enumerates; Extend merges crawled public-sandbox resources
// (Section II-C) or MalGene-derived signatures.
type DB struct {
	// files maps lowercased file base names AND full paths to vendor tags.
	files map[string]VendorProfile
	// processes maps lowercased process image base names to vendor tags.
	processes map[string]VendorProfile
	// libraries maps lowercased DLL base names to vendor tags.
	libraries map[string]VendorProfile
	// exports is the set of fake GetProcAddress export names.
	exports map[string]VendorProfile
	// windows maps lowercased window class names to vendor tags.
	windows map[string]VendorProfile
	// regKeys maps lowercased registry key paths to vendor tags.
	regKeys map[string]VendorProfile
	// regValues maps "key|value" (lowercased) to a deceptive string.
	regValues map[string]regFake
	// fileDirs holds the path-form file entries (those containing a
	// separator), sorted. MatchFile resolves directory-prefix probes with
	// a longest-prefix scan over this slice so overlapping entries match
	// the deepest one deterministically, independent of map iteration
	// order.
	fileDirs []string
	// HW carries the deceptive hardware configuration.
	HW HardwareFakes
	// SinkholeIP is the proxy address all non-existent domains resolve to.
	SinkholeIP string
}

type regFake struct {
	vendor VendorProfile
	value  string
}

// NewDB builds the stock deceptive resource database of Section II-B:
// VM guest artifacts, 24 analysis-tool processes, 15 monitor DLLs, 10 GUI
// windows, registry references, hardware fakes, and the DNS sinkhole.
func NewDB() *DB {
	db := &DB{
		files:     make(map[string]VendorProfile),
		processes: make(map[string]VendorProfile),
		libraries: make(map[string]VendorProfile),
		exports:   make(map[string]VendorProfile),
		windows:   make(map[string]VendorProfile),
		regKeys:   make(map[string]VendorProfile),
		regValues: make(map[string]regFake),
		HW: HardwareFakes{
			DiskTotalBytes: 50 << 30,
			DiskFreeBytes:  20 << 30,
			RAMBytes:       1 << 30,
			NumCores:       1,
			TickBaseMillis: 3 * 60 * 1000, // three minutes after "boot"
			ComputerName:   "SANDBOX-PC",
			UserName:       "currentuser",
			SamplePath:     `C:\sample.exe`,
		},
		SinkholeIP: "198.18.0.99",
	}

	// (a) Files and folders: VM guest drivers and sandbox/forensic tools.
	for _, f := range []string{
		`vmmouse.sys`, `vmhgfs.sys`, `vm3dgl.dll`, `vmtray.dll`, `vmGuestLib.dll`,
	} {
		db.files[strings.ToLower(f)] = VendorVMware
	}
	for _, f := range []string{
		`vboxmouse.sys`, `vboxguest.sys`, `vboxsf.sys`, `vboxvideo.sys`, `vboxdisp.dll`,
	} {
		db.files[strings.ToLower(f)] = VendorVBox
	}
	for _, f := range []string{
		`c:\analysis`, `c:\sandbox`, `c:\cuckoo`, `c:\tools\sysinternals`, `c:\ida`,
	} {
		db.AddFile(f, VendorGeneric)
	}

	// (b) Processes: 24 analysis-tool and VM-service processes, protected
	// from termination (§II-B(b): "We include 24 processes, such as
	// olydbg.exe, idap.exe, and PETools.exe").
	for _, p := range []string{
		"olydbg.exe", "ollydbg.exe", "idap.exe", "idaq.exe", "petools.exe",
		"windbg.exe", "x64dbg.exe", "immunitydebugger.exe", "procmon.exe",
		"procexp.exe", "wireshark.exe", "dumpcap.exe", "fiddler.exe",
		"regmon.exe", "filemon.exe", "autoruns.exe", "tcpview.exe",
		"pestudio.exe", "lordpe.exe", "sysanalyzer.exe", "joeboxcontrol.exe",
		"joeboxserver.exe",
	} {
		db.processes[p] = VendorDebugger
	}
	db.processes["vboxservice.exe"] = VendorVBox
	db.processes["vboxtray.exe"] = VendorVBox

	// (c) Libraries: 15 monitor/sandbox DLLs whose presence marks an
	// instrumented process.
	for _, l := range []string{
		"sbiedll.dll", "dbghelp.dll", "api_log.dll", "dir_watch.dll",
		"pstorec.dll", "vmcheck.dll", "wpespy.dll", "cmdvrt32.dll",
		"snxhk.dll", "sxin.dll", "sf2.dll", "deploy.dll", "avghookx.dll",
		"avghooka.dll", "cuckoomon.dll",
	} {
		vendor := VendorSandboxie
		if l != "sbiedll.dll" {
			vendor = VendorGeneric
		}
		if l == "cuckoomon.dll" {
			vendor = VendorCuckoo
		}
		db.libraries[l] = vendor
	}
	db.exports["wine_get_unix_file_name"] = VendorWine

	// (d) GUI windows: 6 debugger windows + 4 sandbox-related windows.
	for _, w := range []string{
		"ollydbg", "windbgframeclass", "id", "zeta debugger",
		"rock debugger", "obsidian gui",
	} {
		db.windows[w] = VendorDebugger
	}
	for _, w := range []string{
		"sandboxiecontrolwndclass", "cuckoowindowclass",
		"vboxtraytoolwndclass", "afx:400000:0",
	} {
		db.windows[w] = VendorSandboxie
	}
	db.windows["vboxtraytoolwndclass"] = VendorVBox

	// (e) Registry: VM, tool, and Wine references, plus deceptive
	// configuration values (SystemBiosVersion combines multiple VM names,
	// as §II-B(e) describes).
	for _, k := range []string{
		`hklm\software\vmware, inc.\vmware tools`,
		`hklm\system\currentcontrolset\services\vmtools`,
		`hklm\system\currentcontrolset\services\vmmouse`,
	} {
		db.regKeys[k] = VendorVMware
	}
	for _, k := range []string{
		`hklm\software\oracle\virtualbox guest additions`,
		`hklm\system\currentcontrolset\services\vboxguest`,
		`hklm\system\currentcontrolset\services\vboxservice`,
		`hklm\hardware\acpi\dsdt\vbox__`,
	} {
		db.regKeys[k] = VendorVBox
	}
	db.regKeys[`hkcu\software\wine`] = VendorWine
	db.regKeys[`hklm\software\wine`] = VendorWine
	db.regKeys[`hkcu\software\sandboxie`] = VendorSandboxie

	db.regValues[regValKey(`hklm\hardware\description\system`, "systembiosversion")] =
		regFake{vendor: VendorVBox, value: "VBOX BOCHS - 6.23"}
	db.regValues[regValKey(`hklm\hardware\description\system`, "videobiosversion")] =
		regFake{vendor: VendorVBox, value: "VIRTUALBOX - 6.23 VGA BIOS"}
	db.regValues[regValKey(
		`hklm\hardware\devicemap\scsi\scsi port 0\scsi bus 0\target id 0\logical unit id 0`,
		"identifier")] = regFake{vendor: VendorQemu, value: "QEMU HARDDISK"}

	// (f) Reboot-restore artifacts: Faronics Deep Freeze marks a machine
	// that resets on reboot — a wear-and-tear tell (fresh disk state every
	// run) that evasive samples probe alongside uptime and cache sizes.
	// These entries landed as the fix for the first synthesized camouflage
	// gap (internal/synth planted-gap fixture); the legacy pre-fix DB is
	// reconstructed in tests via the Remove* ablation methods.
	db.AddFile(`C:\Program Files\Faronics\Deep Freeze\DFServ.exe`, VendorGeneric)
	db.AddProcess("dfserv.exe", VendorGeneric)
	db.AddProcess("frzstate2k.exe", VendorGeneric)
	db.AddRegKey(`HKLM\SOFTWARE\Faronics\Deep Freeze 6`, VendorGeneric)

	return db
}

func regValKey(key, value string) string {
	return strings.ToLower(key) + "|" + strings.ToLower(value)
}

// MatchFile reports whether a probed path names a deceptive file, matching
// on the full path or its base name.
func (db *DB) MatchFile(path string) (VendorProfile, bool) {
	lower := strings.ToLower(strings.ReplaceAll(path, "/", `\`))
	if v, ok := db.files[lower]; ok {
		return v, true
	}
	if i := strings.LastIndexByte(lower, '\\'); i >= 0 {
		if v, ok := db.files[lower[i+1:]]; ok {
			return v, true
		}
	}
	// Directory prefixes: probing C:\analysis\x.bin matches the deceptive
	// directory C:\analysis. Any drive may host a deceptive directory
	// (crawled sandboxes mount tool trees on D: and E: too). When entries
	// overlap (C:\analysis and C:\analysis\tools), the longest — deepest —
	// prefix wins; two distinct same-length prefixes of one probe cannot
	// both match, so the result is unique and deterministic.
	best := -1
	for i, dir := range db.fileDirs {
		if strings.HasPrefix(lower, dir+`\`) && (best < 0 || len(dir) > len(db.fileDirs[best])) {
			best = i
		}
	}
	if best >= 0 {
		return db.files[db.fileDirs[best]], true
	}
	return "", false
}

// MatchProcess reports whether a process image base name is deceptive.
func (db *DB) MatchProcess(image string) (VendorProfile, bool) {
	v, ok := db.processes[strings.ToLower(image)]
	return v, ok
}

// MatchLibrary reports whether a DLL base name is deceptive.
func (db *DB) MatchLibrary(name string) (VendorProfile, bool) {
	v, ok := db.libraries[strings.ToLower(name)]
	return v, ok
}

// MatchExport reports whether an export name is deceptively present.
func (db *DB) MatchExport(name string) (VendorProfile, bool) {
	v, ok := db.exports[strings.ToLower(name)]
	return v, ok
}

// MatchWindow reports whether a window class or title is deceptive.
func (db *DB) MatchWindow(classOrTitle string) (VendorProfile, bool) {
	v, ok := db.windows[strings.ToLower(classOrTitle)]
	return v, ok
}

// MatchRegKey reports whether a registry key path is deceptive.
func (db *DB) MatchRegKey(path string) (VendorProfile, bool) {
	v, ok := db.regKeys[normalizeRegPath(path)]
	return v, ok
}

// MatchRegValue returns the deceptive value for key\name, if any.
func (db *DB) MatchRegValue(key, name string) (string, VendorProfile, bool) {
	f, ok := db.regValues[regValKey(normalizeRegPath(key), name)]
	if !ok {
		return "", "", false
	}
	return f.value, f.vendor, true
}

// normalizeRegPath lowercases a registry path and canonicalizes hive
// abbreviations so DB lookups match however the caller spells the hive.
func normalizeRegPath(path string) string {
	lower := strings.ToLower(strings.Trim(path, `\`))
	for abbrev, full := range map[string]string{
		"hkey_local_machine": "hklm", "hkey_current_user": "hkcu",
		"hkey_classes_root": "hkcr", "hkey_users": "hku",
	} {
		if strings.HasPrefix(lower, abbrev) {
			return full + lower[len(abbrev):]
		}
	}
	if !strings.HasPrefix(lower, "hklm") && !strings.HasPrefix(lower, "hkcu") &&
		!strings.HasPrefix(lower, "hkcr") && !strings.HasPrefix(lower, "hku") {
		return "hklm\\" + lower
	}
	return lower
}

// DeceptiveProcesses returns the sorted deceptive process image names —
// the entries the Toolhelp snapshot hook plants.
func (db *DB) DeceptiveProcesses() []string {
	out := make([]string, 0, len(db.processes))
	for p := range db.processes {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// AddFile registers an extra deceptive file (crawled or learned). Entries
// given as paths (rather than bare base names) also act as deceptive
// directory prefixes for MatchFile.
func (db *DB) AddFile(path string, vendor VendorProfile) {
	key := strings.ToLower(strings.ReplaceAll(path, "/", `\`))
	if _, exists := db.files[key]; !exists && strings.ContainsRune(key, '\\') {
		i := sort.SearchStrings(db.fileDirs, key)
		db.fileDirs = append(db.fileDirs, "")
		copy(db.fileDirs[i+1:], db.fileDirs[i:])
		db.fileDirs[i] = key
	}
	db.files[key] = vendor
}

// AddProcess registers an extra deceptive process image.
func (db *DB) AddProcess(image string, vendor VendorProfile) {
	db.processes[strings.ToLower(image)] = vendor
}

// AddRegKey registers an extra deceptive registry key.
func (db *DB) AddRegKey(path string, vendor VendorProfile) {
	db.regKeys[normalizeRegPath(path)] = vendor
}

// RemoveFile deletes a deceptive file entry (and its directory-prefix
// form, if the entry was a path). The Remove* methods exist for
// ablation: the synthesis fuzzer's regression tests reconstruct the
// pre-fix "legacy" database by removing the entries a gap fix added,
// then prove the fuzzer rediscovers the gap against it.
func (db *DB) RemoveFile(path string) {
	key := strings.ToLower(strings.ReplaceAll(path, "/", `\`))
	if _, ok := db.files[key]; !ok {
		return
	}
	delete(db.files, key)
	if i := sort.SearchStrings(db.fileDirs, key); i < len(db.fileDirs) && db.fileDirs[i] == key {
		db.fileDirs = append(db.fileDirs[:i], db.fileDirs[i+1:]...)
	}
}

// RemoveProcess deletes a deceptive process entry (ablation; see
// RemoveFile).
func (db *DB) RemoveProcess(image string) {
	delete(db.processes, strings.ToLower(image))
}

// RemoveRegKey deletes a deceptive registry key entry (ablation; see
// RemoveFile).
func (db *DB) RemoveRegKey(path string) {
	delete(db.regKeys, normalizeRegPath(path))
}

// Counts reports the database sizes per resource class.
func (db *DB) Counts() map[Category]int {
	return map[Category]int{
		CategoryFile:     len(db.files),
		CategoryProcess:  len(db.processes),
		CategoryLibrary:  len(db.libraries),
		CategoryWindow:   len(db.windows),
		CategoryRegistry: len(db.regKeys) + len(db.regValues),
	}
}

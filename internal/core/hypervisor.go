package core

import (
	"scarecrow/internal/winsim"
)

// Hypervisor-level deception: the second half of §VI-A's future work
// ("kernel/hypervisor-based hooking"). A thin deception hypervisor slides
// underneath the whole machine and steers the raw-instruction observables
// user-mode hooks can never reach:
//
//   - CPUID reports the hypervisor-present bit and a VirtualBox vendor
//     leaf, so cpuid_hv_bit and cpu_known_vm_vendors read "VM";
//   - CPUID traps like a hardware-assisted hypervisor's VM exit, so
//     rdtsc_diff_vmexit-style timing probes read "VM" too — the timing
//     channel the paper explicitly leaves unhandled at user level.
//
// Unlike DLL-injected hooks, a hypervisor is machine-wide and
// per-process scoping is impossible: every program on the host sees the
// virtualized identity. That trade-off (full timing coverage vs. zero
// process selectivity) is why the paper's deployed system stops at user
// level; this extension exists to measure the other side of the trade.

// HypervisorFakes are the virtualized instruction observables.
type HypervisorFakes struct {
	// Vendor is the CPUID leaf 0x40000000 vendor string to expose.
	Vendor string
	// CPUIDTrapCycles is the modeled VM-exit cost added to each CPUID.
	CPUIDTrapCycles uint64
}

// DefaultHypervisorFakes mimics a VirtualBox host.
func DefaultHypervisorFakes() HypervisorFakes {
	return HypervisorFakes{
		Vendor:          "VBoxVBoxVBox",
		CPUIDTrapCycles: 4200,
	}
}

// InstallHypervisor slides the deception hypervisor under a machine,
// mutating its instruction-level identity. It returns a restore function
// (ejecting the hypervisor on an end-user machine is a reboot-time
// operation in reality; the closure stands in for it).
func InstallHypervisor(m *winsim.Machine, fakes HypervisorFakes) (restore func()) {
	prev := *m.HW
	m.HW.HypervisorPresent = true
	m.HW.HypervisorVendor = fakes.Vendor
	if m.HW.CPUIDCycles < fakes.CPUIDTrapCycles {
		m.HW.CPUIDCycles = fakes.CPUIDTrapCycles
	}
	return func() { *m.HW = prev }
}

// Package benign models the top-20 most-popular CNET Windows programs the
// paper uses to evaluate Scarecrow's impact on legitimate software
// (§IV-C): each program installs (files + registry), then operates
// (configuration reads, logging, an update check). The benign-impact
// experiment runs every program with and without Scarecrow and diffs the
// behaviour.
//
// Benign software does not probe for analysis environments, so almost none
// of Scarecrow's deceptive answers are on its execution path; the notable
// exception is the hardware fakes (disk/RAM), which these programs only
// consult during installation space checks — mirroring the paper's
// observation that "hardware resources were typically queried only during
// the installation step".
package benign

import (
	"fmt"
	"strings"

	"scarecrow/internal/winapi"
	"scarecrow/internal/winsim"
)

// Program is one benign application: an installer plus a normal-operation
// routine.
type Program struct {
	// Name is the product name.
	Name string
	// Vendor is the publisher.
	Vendor string
	// InstallerImage is the downloaded setup executable path.
	InstallerImage string
	// MinFreeBytes is the free disk space the installer requires.
	MinFreeBytes uint64
	// MinRAMBytes is the memory floor the installer checks.
	MinRAMBytes uint64
	// UpdateDomain is the vendor domain the program contacts for updates.
	UpdateDomain string
	// PayloadFiles is how many files installation writes.
	PayloadFiles int
	// AutoStart installs a Run-key entry.
	AutoStart bool
}

// slug derives the install directory name.
func (p Program) slug() string {
	return strings.ReplaceAll(p.Name, " ", "")
}

// InstallDir is the program's target directory.
func (p Program) InstallDir() string {
	return `C:\Program Files\` + p.slug()
}

// MainExecutable is the installed program binary.
func (p Program) MainExecutable() string {
	return p.InstallDir() + `\` + strings.ToLower(p.slug()) + `.exe`
}

// Install runs the setup routine: a disk/memory requirement check, file
// deployment, and registry registration. It returns false when a
// requirement check fails — the error case the paper acknowledges
// deceptive hardware answers could cause.
func (p Program) Install(ctx *winapi.Context) bool {
	disk, st := ctx.GetDiskFreeSpaceEx(`C:\`)
	if !st.OK() || disk.FreeBytes < p.MinFreeBytes {
		return false
	}
	if mem := ctx.GlobalMemoryStatusEx(); mem.TotalPhysBytes < p.MinRAMBytes {
		return false
	}
	for i := 0; i < p.PayloadFiles; i++ {
		_ = ctx.WriteFile(fmt.Sprintf(`%s\file%02d.dll`, p.InstallDir(), i+1), []byte("MZ benign"))
	}
	_ = ctx.WriteFile(p.MainExecutable(), []byte("MZ "+p.Name))
	uninstall := winsim.RegUninstallKey + `\` + p.slug()
	_ = ctx.RegCreateKeyEx(uninstall)
	_ = ctx.RegSetValueEx(uninstall, "DisplayName", winsim.StringValue(p.Name))
	_ = ctx.RegSetValueEx(uninstall, "Publisher", winsim.StringValue(p.Vendor))
	if p.AutoStart {
		_ = ctx.RegSetValueEx(winsim.RegRunKey, p.slug(), winsim.StringValue(p.MainExecutable()))
	}
	return true
}

// Operate runs a normal session: configuration read, an update check
// against the vendor domain, and activity logging. It returns false on a
// functional failure (missing own files).
func (p Program) Operate(ctx *winapi.Context) bool {
	if _, st := ctx.GetFileAttributes(p.MainExecutable()); !st.OK() {
		return false
	}
	if _, st := ctx.RegQueryValueEx(winsim.RegUninstallKey+`\`+p.slug(), "DisplayName"); !st.OK() {
		return false
	}
	if addr, st := ctx.DnsQuery(p.UpdateDomain); st.OK() {
		_, _ = ctx.InternetOpenUrl(addr)
	}
	_ = ctx.WriteFile(p.InstallDir()+`\session.log`, []byte("session ok"))
	return true
}

// Run performs install followed by operation, returning overall success.
func (p Program) Run(ctx *winapi.Context) bool {
	if !p.Install(ctx) {
		return false
	}
	return p.Operate(ctx)
}

// Top20 returns the modeled CNET top-20 Windows programs (the 2017-era
// download chart: AV suites, cleaners, media players, archivers,
// browsers, and remote-desktop tools).
func Top20() []Program {
	mk := func(name, vendor, domain string, files int, minFree uint64, autostart bool) Program {
		return Program{
			Name: name, Vendor: vendor,
			InstallerImage: `C:\Users\john\Downloads\` + strings.ToLower(strings.ReplaceAll(name, " ", "_")) + `_setup.exe`,
			MinFreeBytes:   minFree,
			MinRAMBytes:    256 << 20,
			UpdateDomain:   domain,
			PayloadFiles:   files,
			AutoStart:      autostart,
		}
	}
	return []Program{
		mk("Avast Free Antivirus", "Avast Software", "updates.avast.example", 24, 1<<30, true),
		mk("AVG AntiVirus Free", "AVG Technologies", "updates.avg.example", 22, 1<<30, true),
		mk("CCleaner", "Piriform", "updates.ccleaner.example", 8, 100<<20, false),
		mk("Malwarebytes", "Malwarebytes", "updates.mbam.example", 18, 500<<20, true),
		mk("Advanced SystemCare", "IObit", "updates.iobit.example", 14, 300<<20, true),
		mk("Driver Booster", "IObit", "drivers.iobit.example", 12, 300<<20, false),
		mk("VLC Media Player", "VideoLAN", "updates.videolan.example", 16, 200<<20, false),
		mk("7-Zip", "Igor Pavlov", "updates.7zip.example", 4, 10<<20, false),
		mk("WinRAR", "RARLAB", "updates.rarlab.example", 5, 20<<20, false),
		mk("uTorrent", "BitTorrent Inc", "updates.utorrent.example", 6, 50<<20, true),
		mk("Google Chrome", "Google", "updates.chrome.example", 30, 500<<20, true),
		mk("Mozilla Firefox", "Mozilla", "updates.firefox.example", 26, 400<<20, false),
		mk("Skype", "Microsoft", "updates.skype.example", 15, 300<<20, true),
		mk("TeamViewer", "TeamViewer GmbH", "updates.teamviewer.example", 10, 200<<20, false),
		mk("CDBurnerXP", "Canneverbe", "updates.cdburnerxp.example", 7, 50<<20, false),
		mk("Recuva", "Piriform", "updates.recuva.example", 5, 50<<20, false),
		mk("Speccy", "Piriform", "updates.speccy.example", 5, 50<<20, false),
		mk("Defraggler", "Piriform", "updates.defraggler.example", 5, 50<<20, false),
		mk("IObit Uninstaller", "IObit", "uninstaller.iobit.example", 9, 100<<20, false),
		mk("WinZip", "Corel", "updates.winzip.example", 8, 60<<20, false),
	}
}

// ProvisionDomains adds the programs' vendor update domains to a machine's
// DNS so update checks resolve genuinely (they are real, existing domains,
// not the NX domains Scarecrow sinkholes).
func ProvisionDomains(m *winsim.Machine, programs []Program) {
	for _, p := range programs {
		m.Net.AddRecord(p.UpdateDomain, winsim.SyntheticAddr(p.UpdateDomain))
	}
}

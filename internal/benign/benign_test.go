package benign

import (
	"testing"
	"time"

	"scarecrow/internal/core"
	"scarecrow/internal/trace"
	"scarecrow/internal/winapi"
	"scarecrow/internal/winsim"
)

func TestTop20Shape(t *testing.T) {
	programs := Top20()
	if len(programs) != 20 {
		t.Fatalf("programs = %d, want 20 (CNET top-20)", len(programs))
	}
	seen := map[string]bool{}
	for _, p := range programs {
		if seen[p.Name] {
			t.Errorf("duplicate program %s", p.Name)
		}
		seen[p.Name] = true
		if p.UpdateDomain == "" || p.MinFreeBytes == 0 || p.PayloadFiles == 0 {
			t.Errorf("program %s incomplete: %+v", p.Name, p)
		}
		// Every program must fit within Scarecrow's deceptive 20 GB free:
		// the paper found no benign install tripped the disk fake.
		if p.MinFreeBytes > 20<<30 {
			t.Errorf("program %s requires more than the deceptive free space", p.Name)
		}
	}
}

// run installs and operates a program, returning success and the mutation
// summary of its process subtree.
func run(t *testing.T, m *winsim.Machine, p Program, protected bool) (bool, trace.Summary) {
	t.Helper()
	sys := winapi.NewSystem(m)
	ProvisionDomains(m, []Program{p})
	ok := false
	sys.RegisterProgram(p.InstallerImage, func(ctx *winapi.Context) int {
		ok = p.Run(ctx)
		return winapi.ExitOK
	})
	m.FS.Touch(p.InstallerImage, 40<<20)
	var rootPID int
	if protected {
		ctrl, err := core.Deploy(sys, core.NewEngine(core.NewDB(), core.RecommendedConfig(m.Profile)))
		if err != nil {
			t.Fatal(err)
		}
		root, err := ctrl.LaunchTarget(p.InstallerImage, p.Name)
		if err != nil {
			t.Fatal(err)
		}
		rootPID = root.PID
	} else {
		parent := m.Procs.FindByImage("explorer.exe")[0]
		rootPID = sys.Launch(p.InstallerImage, p.Name, parent).PID
	}
	sys.Run(time.Minute)
	return ok, trace.Summarize(m.Tracer.Filter(func(e trace.Event) bool {
		return e.PID >= rootPID
	}))
}

// TestBenignImpact is §IV-C's benign-software evaluation: all 20 programs
// install and operate without issues under Scarecrow, with exactly the
// same durable system changes as without it.
func TestBenignImpact(t *testing.T) {
	for _, p := range Top20() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			okRaw, raw := run(t, winsim.NewEndUserMachine(1), p, false)
			okProt, prot := run(t, winsim.NewEndUserMachine(1), p, true)
			if !okRaw {
				t.Fatal("program failed without Scarecrow")
			}
			if !okProt {
				t.Fatal("program failed under Scarecrow")
			}
			if d := trace.Compare(raw, prot); !d.Empty() {
				t.Errorf("behaviour suppressed under Scarecrow: %v", d)
			}
			if d := trace.Compare(prot, raw); !d.Empty() {
				t.Errorf("extra behaviour under Scarecrow: %v", d)
			}
		})
	}
}

// TestInstallerChecksDeceptiveHardware verifies that installation space
// checks read the deceptive values and still pass — the "hardware queried
// only during install" observation.
func TestInstallerChecksDeceptiveHardware(t *testing.T) {
	p := Top20()[0] // Avast: the largest requirement (1 GB)
	okProt, _ := run(t, winsim.NewEndUserMachine(1), p, true)
	if !okProt {
		t.Error("install failed against deceptive 20 GB free")
	}
}

// TestOversizedRequirementFails documents the error case the paper
// acknowledges: software demanding more space than the deceptive answer
// reports will refuse to install.
func TestOversizedRequirementFails(t *testing.T) {
	big := Top20()[0]
	big.Name = "Enormous Game"
	big.MinFreeBytes = 60 << 30
	okRaw, _ := run(t, winsim.NewEndUserMachine(1), big, false)
	if !okRaw {
		t.Fatal("60 GB requirement should pass on the real 120 GB free disk")
	}
	okProt, _ := run(t, winsim.NewEndUserMachine(1), big, true)
	if okProt {
		t.Error("60 GB requirement should fail against the deceptive 20 GB free")
	}
}

// TestSelfPathCaveat documents a genuine Scarecrow limitation the paper's
// "little or no impact" phrasing allows for: a benign program that records
// its own executable path (via GetModuleFileName) persists the deceptive
// C:\sample.exe answer instead of its real location. The top-20 programs
// do not do this, which is why the headline evaluation is unaffected.
func TestSelfPathCaveat(t *testing.T) {
	m := winsim.NewEndUserMachine(1)
	sys := winapi.NewSystem(m)
	const image = `C:\Users\alice\Downloads\pathwriter.exe`
	var recorded string
	sys.RegisterProgram(image, func(ctx *winapi.Context) int {
		recorded = ctx.GetModuleFileName()
		ctx.RegSetValueEx(`HKCU\Software\PathWriter`, "InstallLocation",
			winsim.StringValue(recorded))
		return winapi.ExitOK
	})
	m.FS.Touch(image, 1<<20)
	ctrl, err := core.Deploy(sys, core.NewEngine(core.NewDB(), core.RecommendedConfig(m.Profile)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctrl.LaunchTarget(image, "pathwriter.exe"); err != nil {
		t.Fatal(err)
	}
	sys.Run(time.Minute)
	if recorded != `C:\sample.exe` {
		t.Errorf("program saw %q, expected the deceptive sample path", recorded)
	}
	v, ok := m.Registry.QueryValue(`HKCU\Software\PathWriter`, "InstallLocation")
	if !ok || v.Str != `C:\sample.exe` {
		t.Errorf("persisted path = %+v — the documented self-path caveat", v)
	}
}

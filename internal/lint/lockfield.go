package lint

import (
	"go/ast"
	"go/types"
)

// LockFieldScope lists the package trees whose shared mutable state must
// follow the repo's lock-layout convention: in a struct with a mutex
// field named mu, every field declared after mu is guarded by it. The
// concurrent layers — the deployment sessions, the verdict service, the
// WAL store, the campaign engine — all encode their locking discipline
// this way, so a guarded field touched from outside the discipline is a
// data race waiting for the right interleaving.
var LockFieldScope = []string{
	"scarecrow/internal/core",
	"scarecrow/internal/service",
	"scarecrow/internal/store",
	"scarecrow/internal/campaign",
	"scarecrow/internal/front",
	"scarecrow/internal/deter",
}

// LockField flags reads and writes of mu-guarded struct fields from code
// that is neither a method of the owning type nor a function that
// visibly locks that instance's mu. The check is layout-driven: fields
// declared after a `mu sync.Mutex` (or RWMutex) are guarded; fields
// before it are the immutable/atomic section and stay free.
//
// Allowed accesses:
//   - anywhere in a method whose receiver is the owning type — the
//     type's own methods are where the locking discipline lives, and
//     helpers like fooLocked() intentionally run under a caller's lock;
//   - in a function (closures included) that calls <expr>.mu.Lock() or
//     <expr>.mu.RLock() on the same base expression as the access;
//   - in composite literals — construction precedes sharing.
var LockField = &Analyzer{
	Name: "lockfield",
	Doc:  "flag access to mu-guarded struct fields outside the owning type's methods or a visible <expr>.mu.Lock()",
	Run:  runLockField,
}

// syncMutexType reports whether t is sync.Mutex or sync.RWMutex (by
// value — a *sync.Mutex field shares a lock and gets no layout meaning).
func syncMutexType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// guardedFields maps each named struct type in the package to the set of
// field names declared after its mu mutex field.
func guardedFields(pkg *types.Package) map[*types.TypeName]map[string]bool {
	out := make(map[*types.TypeName]map[string]bool)
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		muAt := -1
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if f.Name() == "mu" && syncMutexType(f.Type()) {
				muAt = i
				break
			}
		}
		if muAt < 0 || muAt == st.NumFields()-1 {
			continue
		}
		guarded := make(map[string]bool)
		for i := muAt + 1; i < st.NumFields(); i++ {
			guarded[st.Field(i).Name()] = true
		}
		out[tn] = guarded
	}
	return out
}

// ownerOf resolves the named struct type an expression's value belongs
// to, dereferencing one pointer level.
func ownerOf(t types.Type) *types.TypeName {
	if t == nil {
		return nil // package selectors and other non-value expressions
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	return named.Obj()
}

func runLockField(pass *Pass) error {
	if pass.Pkg == nil || !packagePathIn(pass.Pkg.Path(), LockFieldScope) {
		return nil
	}
	guarded := guardedFields(pass.Pkg)
	if len(guarded) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			pass.checkLockFunc(fn, guarded)
		}
	}
	return nil
}

// receiverType returns the owning type of a method declaration, or nil
// for plain functions.
func (p *Pass) receiverType(fn *ast.FuncDecl) *types.TypeName {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return nil
	}
	tv, ok := p.TypesInfo.Types[fn.Recv.List[0].Type]
	if !ok {
		return nil
	}
	return ownerOf(tv.Type)
}

// lockedBases collects the rendered base expressions of every
// <expr>.mu.Lock() / <expr>.mu.RLock() call in the function, closures
// included — the set of instances this function visibly locks.
func (p *Pass) lockedBases(fn *ast.FuncDecl) map[string]bool {
	bases := make(map[string]bool)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		lockSel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (lockSel.Sel.Name != "Lock" && lockSel.Sel.Name != "RLock") {
			return true
		}
		muSel, ok := lockSel.X.(*ast.SelectorExpr)
		if !ok || muSel.Sel.Name != "mu" {
			return true
		}
		bases[nodeString(p.Fset, muSel.X)] = true
		return true
	})
	return bases
}

// checkLockFunc reports guarded-field accesses in one function that are
// covered by neither the receiver rule nor a visible lock.
func (p *Pass) checkLockFunc(fn *ast.FuncDecl, guarded map[*types.TypeName]map[string]bool) {
	recv := p.receiverType(fn)
	var locked map[string]bool // computed lazily: most functions touch nothing guarded
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		owner := ownerOf(p.TypesInfo.TypeOf(sel.X))
		if owner == nil || owner == recv {
			return true
		}
		fields, ok := guarded[owner]
		if !ok || !fields[sel.Sel.Name] {
			return true
		}
		if locked == nil {
			locked = p.lockedBases(fn)
		}
		base := nodeString(p.Fset, sel.X)
		if locked[base] {
			return true
		}
		p.Reportf(sel.Pos(), "%s accesses %s.%s, guarded by %s.mu, outside %s's methods and without a visible %s.mu.Lock()",
			funcName(fn), base, sel.Sel.Name, base, owner.Name(), base)
		return true
	})
}

func funcName(fn *ast.FuncDecl) string {
	if fn.Name != nil {
		return fn.Name.Name
	}
	return "function"
}

package lint

import (
	"path/filepath"
	"testing"
)

func newTestLoader(t *testing.T) *Loader {
	t.Helper()
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	return loader
}

func TestLoaderTypeChecksModulePackages(t *testing.T) {
	loader := newTestLoader(t)
	pkg, err := loader.Load("scarecrow/internal/winapi")
	if err != nil {
		t.Fatalf("loading winapi: %v", err)
	}
	if pkg.Name != "winapi" {
		t.Fatalf("package name = %q, want winapi", pkg.Name)
	}
	if obj := pkg.Types.Scope().Lookup("Status"); obj == nil {
		t.Fatal("winapi.Status not found in type-checked package scope")
	}
	if len(pkg.Syntax) == 0 {
		t.Fatal("no syntax files recorded")
	}
	// Loading again returns the cached package.
	again, err := loader.Load("scarecrow/internal/winapi")
	if err != nil {
		t.Fatal(err)
	}
	if again != pkg {
		t.Fatal("second Load did not return the cached package")
	}
}

func TestExpandWalksModuleSkippingTestdata(t *testing.T) {
	loader := newTestLoader(t)
	paths, err := loader.Expand([]string{"./..."}, loader.ModuleRoot)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]bool, len(paths))
	for _, p := range paths {
		seen[p] = true
	}
	for _, want := range []string{
		"scarecrow/internal/core",
		"scarecrow/internal/winapi",
		"scarecrow/internal/lint",
		"scarecrow/cmd/scarelint",
	} {
		if !seen[want] {
			t.Errorf("Expand(./...) missing %s", want)
		}
	}
	for p := range seen {
		if filepath.Base(p) == "testdata" || seen["scarecrow/internal/lint/testdata/statuscheck"] {
			t.Fatalf("Expand(./...) must skip testdata trees, got %s", p)
		}
	}
}

func TestExpandSinglePackageForms(t *testing.T) {
	loader := newTestLoader(t)
	for _, pattern := range []string{"./internal/core", "internal/core", "scarecrow/internal/core"} {
		paths, err := loader.Expand([]string{pattern}, loader.ModuleRoot)
		if err != nil {
			t.Fatalf("Expand(%q): %v", pattern, err)
		}
		if len(paths) != 1 || paths[0] != "scarecrow/internal/core" {
			t.Fatalf("Expand(%q) = %v, want [scarecrow/internal/core]", pattern, paths)
		}
	}
}

package lint

import "testing"

// In the determinism scope, unsorted emission is a finding; aggregation,
// collect-then-sort, and annotated loops are clean.
func TestMapOrderInScope(t *testing.T) {
	RunFixture(t, MapOrder, "maporder", "scarecrow/internal/service/lintfixture")
}

// Out of scope, the analyzer stays silent.
func TestMapOrderOutOfScope(t *testing.T) {
	RunFixture(t, MapOrder, "maporder_out", "scarecrow/internal/lint/testdata/maporder_out")
}

// The real determinism-scoped packages must already satisfy their own
// invariant — this is the contract the WAL/cache replay proofs lean on.
func TestMapOrderCleanOnScope(t *testing.T) {
	loader := newTestLoader(t)
	for _, path := range MapOrderScope {
		pkg, err := loader.Load(path)
		if err != nil {
			t.Fatalf("loading %s: %v", path, err)
		}
		diags, err := Run([]*Package{pkg}, []*Analyzer{MapOrder})
		if err != nil {
			t.Fatalf("running maporder on %s: %v", path, err)
		}
		for _, d := range diags {
			t.Errorf("%s", d)
		}
	}
}

package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// winapiPath is the import path of the simulated Win32 API surface whose
// types the analyzers key on.
const winapiPath = "scarecrow/internal/winapi"

// StatusCheck flags calls whose winapi.Status result is silently dropped:
// used as an expression statement, or launched via go/defer with nobody
// reading the result. Status is the simulation's Win32/NTSTATUS analogue;
// dropping one hides exactly the error-path divergence (access denied vs
// success, file-not-found vs found) that deceptive resources are built
// from. An explicit `_ =` assignment is treated as a deliberate,
// documented discard and is not flagged.
var StatusCheck = &Analyzer{
	Name: "statuscheck",
	Doc:  "flag calls whose winapi.Status result is silently discarded",
	Run:  runStatusCheck,
}

// droppedStatusFact records the silent drops statuscheck found in one
// package, for the statusfix suggested-fix engine. Only plain
// expression-statement drops are listed: a go/defer drop has no mechanical
// `_ =` rewrite.
type droppedStatusFact struct {
	sites []droppedStatusSite
}

type droppedStatusSite struct {
	call    *ast.CallExpr
	results int // length of the call's result tuple
}

func runStatusCheck(pass *Pass) error {
	var fact droppedStatusFact
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var call *ast.CallExpr
			var verb string
			fixable := false
			switch s := n.(type) {
			case *ast.ExprStmt:
				call, _ = s.X.(*ast.CallExpr)
				verb = "silently discarded"
				fixable = true
			case *ast.GoStmt:
				call = s.Call
				verb = "discarded by the go statement"
			case *ast.DeferStmt:
				call = s.Call
				verb = "discarded by the defer statement"
			}
			if call == nil {
				return true
			}
			tv, ok := pass.TypesInfo.Types[call]
			if !ok || !resultCarriesStatus(tv.Type) {
				return true
			}
			if fixable {
				fact.sites = append(fact.sites, droppedStatusSite{call: call, results: resultCount(tv.Type)})
			}
			pass.Reportf(call.Pos(), "result of %s contains a winapi.Status that is %s; handle it or assign it explicitly",
				nodeString(pass.Fset, call.Fun), verb)
			return true
		})
	}
	if len(fact.sites) > 0 {
		pass.ExportPackageFact(&fact)
	}
	return nil
}

// resultCount returns how many values the call produces (1 for a single
// result, tuple length otherwise).
func resultCount(t types.Type) int {
	if tup, ok := t.(*types.Tuple); ok {
		return tup.Len()
	}
	return 1
}

// resultCarriesStatus reports whether a call result type is, or contains,
// the named type winapi.Status.
func resultCarriesStatus(t types.Type) bool {
	switch t := t.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isWinapiStatus(t.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isWinapiStatus(t)
	}
}

func isWinapiStatus(t types.Type) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Status" && obj.Pkg() != nil && obj.Pkg().Path() == winapiPath
}

// packagePathIn reports whether path is pkg or one of its subpackages,
// for any prefix in scopes.
func packagePathIn(path string, scopes []string) bool {
	for _, s := range scopes {
		if path == s || strings.HasPrefix(path, s+"/") {
			return true
		}
	}
	return false
}

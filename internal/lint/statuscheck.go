package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// winapiPath is the import path of the simulated Win32 API surface whose
// types the analyzers key on.
const winapiPath = "scarecrow/internal/winapi"

// StatusCheck flags calls whose winapi.Status result is silently dropped:
// used as an expression statement, or launched via go/defer with nobody
// reading the result. Status is the simulation's Win32/NTSTATUS analogue;
// dropping one hides exactly the error-path divergence (access denied vs
// success, file-not-found vs found) that deceptive resources are built
// from. An explicit `_ =` assignment is treated as a deliberate,
// documented discard and is not flagged.
var StatusCheck = &Analyzer{
	Name: "statuscheck",
	Doc:  "flag calls whose winapi.Status result is silently discarded",
	Run:  runStatusCheck,
}

func runStatusCheck(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var call *ast.CallExpr
			var verb string
			switch s := n.(type) {
			case *ast.ExprStmt:
				call, _ = s.X.(*ast.CallExpr)
				verb = "silently discarded"
			case *ast.GoStmt:
				call = s.Call
				verb = "discarded by the go statement"
			case *ast.DeferStmt:
				call = s.Call
				verb = "discarded by the defer statement"
			}
			if call == nil {
				return true
			}
			tv, ok := pass.TypesInfo.Types[call]
			if !ok || !resultCarriesStatus(tv.Type) {
				return true
			}
			pass.Reportf(call.Pos(), "result of %s contains a winapi.Status that is %s; handle it or assign it explicitly",
				nodeString(pass.Fset, call.Fun), verb)
			return true
		})
	}
	return nil
}

// resultCarriesStatus reports whether a call result type is, or contains,
// the named type winapi.Status.
func resultCarriesStatus(t types.Type) bool {
	switch t := t.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isWinapiStatus(t.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isWinapiStatus(t)
	}
}

func isWinapiStatus(t types.Type) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Status" && obj.Pkg() != nil && obj.Pkg().Path() == winapiPath
}

// packagePathIn reports whether path is pkg or one of its subpackages,
// for any prefix in scopes.
func packagePathIn(path string, scopes []string) bool {
	for _, s := range scopes {
		if path == s || strings.HasPrefix(path, s+"/") {
			return true
		}
	}
	return false
}

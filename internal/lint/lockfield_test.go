package lint

import "testing"

// In scope, the layout convention is enforced: guarded accesses outside
// the owning type's methods need a visible lock on the same base.
func TestLockFieldInScope(t *testing.T) {
	RunFixture(t, LockField, "lockfield", "scarecrow/internal/service/lintfixture")
}

// Out of scope, the analyzer stays silent.
func TestLockFieldOutOfScope(t *testing.T) {
	RunFixture(t, LockField, "lockfield_out", "scarecrow/internal/lint/testdata/lockfield_out")
}

// The real concurrent packages must already satisfy their own invariant.
func TestLockFieldCleanOnScope(t *testing.T) {
	moduleRoot, err := FindModuleRoot(".")
	if err != nil {
		t.Fatalf("locating module root: %v", err)
	}
	loader, err := NewLoader(moduleRoot)
	if err != nil {
		t.Fatalf("building loader: %v", err)
	}
	for _, path := range LockFieldScope {
		pkg, err := loader.Load(path)
		if err != nil {
			t.Fatalf("loading %s: %v", path, err)
		}
		diags, err := Run([]*Package{pkg}, []*Analyzer{LockField})
		if err != nil {
			t.Fatalf("running lockfield on %s: %v", path, err)
		}
		for _, d := range diags {
			t.Errorf("%s", d)
		}
	}
}

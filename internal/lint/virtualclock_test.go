package lint

import "testing"

// The same fixture source is checked twice: loaded under a simulation
// import path every wall-clock call is a finding, and loaded under a
// tooling path the analyzer stays silent.
func TestVirtualClockInScope(t *testing.T) {
	RunFixture(t, VirtualClock, "virtualclock", "scarecrow/internal/winsim/lintfixture")
}

func TestVirtualClockOutOfScope(t *testing.T) {
	RunFixture(t, VirtualClock, "virtualclock_out", "scarecrow/internal/lint/testdata/virtualclock_out")
}

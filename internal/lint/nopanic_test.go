package lint

import "testing"

// The fixture is checked twice: loaded under a fault-contained import path
// every panic call is a finding, and loaded under a tooling path the
// analyzer stays silent.
func TestNoPanicInScope(t *testing.T) {
	RunFixture(t, NoPanic, "nopanic", "scarecrow/internal/analysis/lintfixture")
}

func TestNoPanicOutOfScope(t *testing.T) {
	RunFixture(t, NoPanic, "nopanic_out", "scarecrow/internal/lint/testdata/nopanic_out")
}

package lint

import (
	"go/token"
	"os"
	"path/filepath"
	"testing"
)

func TestLoadBaselineMissingIsEmpty(t *testing.T) {
	b, err := LoadBaseline(filepath.Join(t.TempDir(), "nope.json"))
	if err != nil {
		t.Fatal(err)
	}
	if b.Version != 1 || len(b.Findings) != 0 {
		t.Errorf("missing baseline = %+v, want empty version-1", b)
	}
}

func TestLoadBaselineRejectsUnknownVersion(t *testing.T) {
	path := filepath.Join(t.TempDir(), "b.json")
	if err := os.WriteFile(path, []byte(`{"version": 7, "findings": []}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBaseline(path); err == nil {
		t.Error("version 7 baseline loaded without error")
	}
}

func TestBaselineApplyMarksAndReportsStale(t *testing.T) {
	b := &Baseline{Version: 1, Findings: []BaselineEntry{
		{Analyzer: "maporder", File: "internal/winapi/catalog.go", Message: "live finding"},
		{Analyzer: "apireach", File: "internal/winapi/hooks.go", Message: "gone finding"},
	}}
	diags := []Diagnostic{
		{Pos: token.Position{Filename: "/repo/internal/winapi/catalog.go", Line: 3}, Analyzer: "maporder", Severity: SeverityError, Message: "live finding"},
		{Pos: token.Position{Filename: "/repo/internal/core/core.go", Line: 9}, Analyzer: "maporder", Severity: SeverityError, Message: "new finding"},
	}
	stale := b.Apply(diags, "/repo")
	if !diags[0].Baselined {
		t.Error("matching diagnostic not marked baselined")
	}
	if diags[1].Baselined {
		t.Error("non-matching diagnostic marked baselined")
	}
	if len(stale) != 1 || stale[0].Message != "gone finding" {
		t.Errorf("stale = %+v, want the one unmatched entry", stale)
	}
}

// Line numbers are deliberately not part of baseline identity — an entry
// keeps matching after the finding drifts to another line.
func TestBaselineMatchSurvivesLineDrift(t *testing.T) {
	b := &Baseline{Version: 1, Findings: []BaselineEntry{
		{Analyzer: "maporder", File: "internal/winapi/catalog.go", Message: "live finding"},
	}}
	diags := []Diagnostic{
		{Pos: token.Position{Filename: "/repo/internal/winapi/catalog.go", Line: 999}, Analyzer: "maporder", Severity: SeverityError, Message: "live finding"},
	}
	if stale := b.Apply(diags, "/repo"); len(stale) != 0 || !diags[0].Baselined {
		t.Errorf("baseline did not survive line drift: baselined=%v stale=%v", diags[0].Baselined, stale)
	}
}

func TestWriteBaselineRoundTrip(t *testing.T) {
	diags := []Diagnostic{
		{Pos: token.Position{Filename: "/repo/b.go", Line: 2}, Analyzer: "maporder", Severity: SeverityError, Message: "m2"},
		{Pos: token.Position{Filename: "/repo/a.go", Line: 1}, Analyzer: "maporder", Severity: SeverityError, Message: "m1"},
		{Pos: token.Position{Filename: "/repo/a.go", Line: 1}, Analyzer: "maporder", Severity: SeverityError, Message: "m1"}, // duplicate
		{Pos: token.Position{Filename: "/repo/c.go", Line: 3}, Analyzer: "statusfix", Severity: SeverityInfo, Message: "fix hint"},
	}
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := WriteBaseline(path, diags, "/repo"); err != nil {
		t.Fatal(err)
	}
	b, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	// Info-severity findings are excluded and duplicates collapse.
	if len(b.Findings) != 2 {
		t.Fatalf("round-tripped %d findings, want 2: %+v", len(b.Findings), b.Findings)
	}
	// Sorted by key: a.go before b.go.
	if b.Findings[0].File != "a.go" || b.Findings[1].File != "b.go" {
		t.Errorf("findings not sorted: %+v", b.Findings)
	}
	// A written baseline applied to the same diagnostics suppresses all
	// gating findings and reports nothing stale.
	stale := b.Apply(diags, "/repo")
	if len(stale) != 0 {
		t.Errorf("fresh baseline has stale entries: %+v", stale)
	}
	for _, d := range diags[:3] {
		if !d.Baselined {
			t.Errorf("finding not suppressed by its own baseline: %s", d.Message)
		}
	}
}

package lint

import (
	"bytes"
	"encoding/json"
	"go/token"
	"os"
	"path/filepath"
	"testing"
)

// emitTestDiags is a fixed diagnostic set exercising every field the
// emitters render: severities, a baselined finding, and a fixable one.
func emitTestDiags() []Diagnostic {
	return []Diagnostic{
		{
			Pos:      token.Position{Filename: "/repo/internal/winapi/catalog.go", Line: 104, Column: 2},
			Analyzer: "maporder",
			Severity: SeverityError,
			Message:  "iteration order of apiCatalog flows into ordered output; collect and sort the keys first (or annotate //maporder:ok if order is irrelevant)",
		},
		{
			Pos:       token.Position{Filename: "/repo/internal/winapi/hooks.go", Line: 40, Column: 9},
			Analyzer:  "apireach",
			Severity:  SeverityError,
			Message:   `apiCatalog entry "NtQueryPhantom" is unreachable: no Context method, hook-dispatch table, or hook surface refers to it — a dead entry is a live camouflage gap`,
			Baselined: true,
		},
		{
			Pos:      token.Position{Filename: "/repo/internal/core/verdict.go", Line: 12, Column: 3},
			Analyzer: "statusfix",
			Severity: SeverityInfo,
			Message:  "dropped winapi.Status can be rewritten to an explicit _ = discard (run scarelint -fix)",
			Fix: &SuggestedFix{
				Message: "discard the Status explicitly",
				Edits:   []TextEdit{{Pos: 1, End: 1, NewText: "_ = "}},
			},
		},
	}
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	goldenPath := filepath.Join(fixtureDir(t, "emit"), name)
	if os.Getenv("GOLDEN_UPDATE") == "1" {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden updated: %s", goldenPath)
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden (run with GOLDEN_UPDATE=1 to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s differs from golden:\n-- got --\n%s\n-- want --\n%s", name, got, want)
	}
}

func TestEmitJSONGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := EmitJSON(&buf, emitTestDiags(), "/repo"); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "report.json.golden", buf.Bytes())
}

func TestEmitJSONEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := EmitJSON(&buf, nil, "/repo"); err != nil {
		t.Fatal(err)
	}
	var report JSONReport
	if err := json.Unmarshal(buf.Bytes(), &report); err != nil {
		t.Fatal(err)
	}
	if report.Version != "scarelint/2" {
		t.Errorf("version = %q, want scarelint/2", report.Version)
	}
	// findings must be [] on the wire, never null.
	if !bytes.Contains(buf.Bytes(), []byte(`"findings": []`)) {
		t.Errorf("empty report does not render findings as []:\n%s", buf.Bytes())
	}
}

func TestEmitSARIFGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := EmitSARIF(&buf, emitTestDiags(), []*Analyzer{APIReach, MapOrder, StatusFix}, "/repo"); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "report.sarif.golden", buf.Bytes())
}

// TestEmitSARIFSchemaSanity unmarshals the SARIF output generically and
// asserts the structural properties the 2.1.0 schema requires of it.
func TestEmitSARIFSchemaSanity(t *testing.T) {
	var buf bytes.Buffer
	if err := EmitSARIF(&buf, emitTestDiags(), Analyzers(), "/repo"); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("SARIF output is not valid JSON: %v", err)
	}
	if v, _ := doc["version"].(string); v != "2.1.0" {
		t.Errorf("version = %q, want 2.1.0", v)
	}
	if s, _ := doc["$schema"].(string); s == "" {
		t.Error("$schema missing")
	}
	runs, _ := doc["runs"].([]any)
	if len(runs) != 1 {
		t.Fatalf("runs has %d entries, want 1", len(runs))
	}
	run := runs[0].(map[string]any)
	tool, _ := run["tool"].(map[string]any)
	driver, _ := tool["driver"].(map[string]any)
	if name, _ := driver["name"].(string); name != "scarelint" {
		t.Errorf("driver name = %q, want scarelint", name)
	}
	ruleIDs := make(map[string]bool)
	rules, _ := driver["rules"].([]any)
	for _, r := range rules {
		rule := r.(map[string]any)
		id, _ := rule["id"].(string)
		if id == "" {
			t.Error("rule without id")
		}
		ruleIDs[id] = true
	}
	levels := map[string]bool{"error": true, "warning": true, "note": true}
	results, _ := run["results"].([]any)
	if len(results) != len(emitTestDiags()) {
		t.Fatalf("results has %d entries, want %d", len(results), len(emitTestDiags()))
	}
	for i, r := range results {
		res := r.(map[string]any)
		if id, _ := res["ruleId"].(string); !ruleIDs[id] {
			t.Errorf("result %d references unknown rule %q", i, id)
		}
		if lvl, _ := res["level"].(string); !levels[lvl] {
			t.Errorf("result %d has invalid level %q", i, lvl)
		}
		msg, _ := res["message"].(map[string]any)
		if text, _ := msg["text"].(string); text == "" {
			t.Errorf("result %d has no message text", i)
		}
		locs, _ := res["locations"].([]any)
		if len(locs) == 0 {
			t.Errorf("result %d has no locations", i)
		}
	}
}

package lint

import "testing"

func TestStatusCheck(t *testing.T) {
	RunFixture(t, StatusCheck, "statuscheck", "scarecrow/internal/lint/testdata/statuscheck")
}

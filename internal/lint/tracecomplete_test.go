package lint

import "testing"

func TestTraceComplete(t *testing.T) {
	RunFixture(t, TraceComplete, "tracecomplete", "scarecrow/internal/lint/testdata/tracecomplete")
}

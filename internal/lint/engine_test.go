package lint

import (
	"reflect"
	"testing"
)

// expandRequires must schedule prerequisites before their dependents and
// keep the closure duplicate-free.
func TestExpandRequiresTopologicalOrder(t *testing.T) {
	got := expandRequires([]*Analyzer{StatusFix})
	var names []string
	for _, a := range got {
		names = append(names, a.Name)
	}
	pos := make(map[string]int, len(names))
	for i, n := range names {
		if _, dup := pos[n]; dup {
			t.Fatalf("analyzer %s appears twice in %v", n, names)
		}
		pos[n] = i
	}
	for _, req := range []string{StatusCheck.Name, MapOrder.Name} {
		i, ok := pos[req]
		if !ok {
			t.Fatalf("required analyzer %s missing from %v", req, names)
		}
		if i >= pos[StatusFix.Name] {
			t.Errorf("%s scheduled at %d, after its dependent statusfix at %d", req, i, pos[StatusFix.Name])
		}
	}
}

// Two runs over the same packages must produce identical diagnostics —
// the parallel scheduler may not leak nondeterminism into the output.
func TestRunIsDeterministic(t *testing.T) {
	run := func() []Diagnostic {
		loader := newTestLoader(t)
		loader.AddPackageDir("scarecrow/internal/service/lintfixture", fixtureDir(t, "maporder"))
		pkg, err := loader.Load("scarecrow/internal/service/lintfixture")
		if err != nil {
			t.Fatal(err)
		}
		diags, err := Run([]*Package{pkg}, Analyzers())
		if err != nil {
			t.Fatal(err)
		}
		return diags
	}
	first := run()
	if len(first) == 0 {
		t.Fatal("expected findings from the maporder fixture")
	}
	for i := 0; i < 3; i++ {
		if again := run(); !reflect.DeepEqual(first, again) {
			t.Fatalf("run %d differs:\n%v\nvs\n%v", i+2, again, first)
		}
	}
}

// Diagnostics must only be reported for requested packages, even though
// dependency packages are analyzed for facts.
func TestRunReportsOnlyRequestedPackages(t *testing.T) {
	loader := newTestLoader(t)
	pkg, err := loader.Load("scarecrow/internal/core")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run([]*Package{pkg}, Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("diagnostic outside the clean requested package: %s", d)
	}
	// The dependency closure was still analyzed: winapi is cached.
	found := false
	for _, p := range loader.LoadedPaths() {
		if p == winapiPath {
			found = true
		}
	}
	if !found {
		t.Error("dependency package was not loaded into the closure")
	}
}

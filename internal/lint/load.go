package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one loaded, type-checked package.
type Package struct {
	Path      string // import path ("scarecrow/internal/core")
	Dir       string // absolute directory
	Name      string // package name from the package clause
	Fset      *token.FileSet
	Syntax    []*ast.File
	Types     *types.Package
	TypesInfo *types.Info

	loader *Loader
}

// Loader parses and type-checks module-local packages without shelling out
// to the go tool or downloading modules: import paths under the module path
// resolve against the module tree, and standard-library imports are
// type-checked from GOROOT sources via the compiler-independent source
// importer. Test files (_test.go) are excluded, matching what ships.
//
// Loads are memoized and safe for concurrent callers: loadMu serializes
// top-level Load operations (type-checking recurses through Import on the
// same goroutine, so the lock is taken only at the entry point), while mu
// guards the package cache for the lock-free cache-hit fast path the
// parallel analysis phase relies on.
type Loader struct {
	ModuleRoot string // absolute path of the directory holding go.mod
	ModulePath string // module path from go.mod
	Fset       *token.FileSet

	std    types.Importer
	loadMu sync.Mutex // serializes top-level Load calls
	mu     sync.Mutex // guards pkgs
	pkgs   map[string]*Package
	extra  map[string]string // import path -> directory overrides (fixtures)
}

// NewLoader builds a loader for the module rooted at moduleRoot.
func NewLoader(moduleRoot string) (*Loader, error) {
	abs, err := filepath.Abs(moduleRoot)
	if err != nil {
		return nil, err
	}
	modPath, err := readModulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		ModuleRoot: abs,
		ModulePath: modPath,
		Fset:       fset,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       make(map[string]*Package),
		extra:      make(map[string]string),
	}, nil
}

// FindModuleRoot walks upward from dir to the nearest directory containing
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(abs, "go.mod")); err == nil {
			return abs, nil
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		abs = parent
	}
}

func readModulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// AddPackageDir maps an import path to an explicit directory, overriding
// module resolution. The analysis tests use it to load fixture packages
// from testdata under simulated import paths.
func (l *Loader) AddPackageDir(importPath, dir string) {
	l.extra[importPath] = dir
}

// dirFor resolves an import path to a source directory, or "" when the
// path is not module-local.
func (l *Loader) dirFor(path string) string {
	if dir, ok := l.extra[path]; ok {
		return dir
	}
	if path == l.ModulePath {
		return l.ModuleRoot
	}
	if rest, ok := strings.CutPrefix(path, l.ModulePath+"/"); ok {
		return filepath.Join(l.ModuleRoot, filepath.FromSlash(rest))
	}
	return ""
}

// Load parses and type-checks the package at the given import path,
// caching the result. Standard-library paths are rejected; they are only
// reachable as dependencies via Import.
func (l *Loader) Load(path string) (*Package, error) {
	if pkg := l.cached(path); pkg != nil {
		return pkg, nil
	}
	l.loadMu.Lock()
	defer l.loadMu.Unlock()
	return l.load(path)
}

func (l *Loader) cached(path string) *Package {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.pkgs[path]
}

// LoadedPaths returns the import paths of every package the loader has
// type-checked so far (all module-local by construction), sorted.
func (l *Loader) LoadedPaths() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]string, 0, len(l.pkgs))
	for p := range l.pkgs {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// load is the single-goroutine body of Load; the type-checker's Import
// callback recurses into it directly, under the caller's loadMu.
func (l *Loader) load(path string) (*Package, error) {
	if pkg := l.cached(path); pkg != nil {
		return pkg, nil
	}
	dir := l.dirFor(path)
	if dir == "" {
		return nil, fmt.Errorf("lint: %s is not a module-local package", path)
	}
	pkgName, files, err := parseDir(l.Fset, dir)
	if err != nil {
		return nil, err
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(path, l.Fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, typeErrs[0])
	}

	pkg := &Package{
		Path:      path,
		Dir:       dir,
		Name:      pkgName,
		Fset:      l.Fset,
		Syntax:    files,
		Types:     tpkg,
		TypesInfo: info,
		loader:    l,
	}
	l.mu.Lock()
	l.pkgs[path] = pkg
	l.mu.Unlock()
	return pkg, nil
}

// Import implements types.Importer: module-local packages load through the
// loader, everything else through the standard-library source importer.
// It is only invoked by the type-checker inside load, so it recurses into
// load directly rather than re-taking loadMu.
func (l *Loader) Import(path string) (*types.Package, error) {
	if l.dirFor(path) != "" {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// parseDir parses the non-test Go files of one directory, which must all
// belong to a single package, and returns them in filename order.
func parseDir(fset *token.FileSet, dir string) (string, []*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", nil, fmt.Errorf("lint: reading %s: %w", dir, err)
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return "", nil, fmt.Errorf("lint: no buildable Go files in %s", dir)
	}
	pkgName := ""
	files := make([]*ast.File, 0, len(names))
	for _, n := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			return "", nil, fmt.Errorf("lint: parsing %s: %w", filepath.Join(dir, n), err)
		}
		switch pkgName {
		case "", f.Name.Name:
			pkgName = f.Name.Name
		default:
			return "", nil, fmt.Errorf("lint: %s contains multiple packages (%s, %s)", dir, pkgName, f.Name.Name)
		}
		files = append(files, f)
	}
	return pkgName, files, nil
}

// Expand resolves command-line package patterns relative to cwd into
// import paths. Supported forms: "./..." and "dir/..." recursive walks,
// plain directories ("./internal/core", "examples/quickstart"), and
// module-local import paths. Directories named testdata, vendored trees,
// and hidden directories are skipped, as the go tool does.
func (l *Loader) Expand(patterns []string, cwd string) ([]string, error) {
	seen := make(map[string]bool)
	var out []string
	add := func(path string) {
		if !seen[path] {
			seen[path] = true
			out = append(out, path)
		}
	}
	for _, pat := range patterns {
		if rest, ok := strings.CutSuffix(pat, "..."); ok {
			rest = strings.TrimSuffix(rest, "/")
			if rest == "." || rest == "" {
				rest = cwd
			} else if !filepath.IsAbs(rest) {
				rest = filepath.Join(cwd, rest)
			}
			paths, err := l.walk(rest)
			if err != nil {
				return nil, err
			}
			for _, p := range paths {
				add(p)
			}
			continue
		}
		// Import-path form.
		if l.dirFor(pat) != "" {
			add(pat)
			continue
		}
		// Directory form.
		dir := pat
		if !filepath.IsAbs(dir) {
			dir = filepath.Join(cwd, dir)
		}
		path, err := l.importPathFor(dir)
		if err != nil {
			return nil, fmt.Errorf("lint: cannot resolve pattern %q: %w", pat, err)
		}
		add(path)
	}
	return out, nil
}

// walk returns the import paths of every package directory under root that
// contains at least one non-test Go file.
func (l *Loader) walk(root string) ([]string, error) {
	var out []string
	err := filepath.Walk(root, func(p string, fi os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if fi.IsDir() {
			name := fi.Name()
			if p != root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(p, ".go") || strings.HasSuffix(p, "_test.go") {
			return nil
		}
		path, err := l.importPathFor(filepath.Dir(p))
		if err != nil {
			return err
		}
		for _, have := range out {
			if have == path {
				return nil
			}
		}
		out = append(out, path)
		return nil
	})
	sort.Strings(out)
	return out, err
}

// importPathFor maps an absolute directory inside the module to its import
// path.
func (l *Loader) importPathFor(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	if abs == l.ModuleRoot {
		return l.ModulePath, nil
	}
	rel, err := filepath.Rel(l.ModuleRoot, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("%s is outside module %s", dir, l.ModuleRoot)
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel), nil
}

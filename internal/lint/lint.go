// Package lint is scarecrow's in-tree static-analysis suite: a small,
// self-contained framework in the style of golang.org/x/tools/go/analysis
// (which is deliberately not imported so the repo builds with a bare
// toolchain and no module downloads) plus ten repo-specific analyzers
// that turn the simulation's runtime invariants into build errors:
//
//   - statuscheck: a winapi.Status result must never be silently dropped.
//   - hookcatalog: every string-literal API name at a hook-installation or
//     trigger-reporting site must exist in winapi's apiCatalog, and the
//     deceptive hook surface (core.HookedAPIs) must stay in sync with the
//     engine's handler table.
//   - virtualclock: simulation packages must use the virtual clock and the
//     machine's seeded RNG, never the wall clock or global math/rand.
//   - tracecomplete: trace.Event literals must populate the fields the
//     labrunner diffing keys on (Kind, PID, Image, Target).
//   - nopanic: the fault-contained packages (internal/analysis,
//     internal/core) must return errors, never panic — the lab's
//     containment promise is that no single run can kill a corpus sweep.
//   - exhaustive: String() switches and ...Names map literals must cover
//     every constant of their enum type, so extending an enum (a new
//     winapi.Status, a new trace.Kind) cannot silently break the
//     name-based wire encoding verdict documents rely on.
//   - lockfield: in the concurrent packages, struct fields declared after
//     a `mu sync.Mutex` are guarded by it and may only be touched from
//     the owning type's methods or under a visible <expr>.mu.Lock().
//   - apireach: whole-program reachability — every apiCatalog entry must
//     be callable from a Context method or a hook-dispatch table; a dead
//     entry is a camouflage gap malware can probe.
//   - maporder: map iteration order must never flow into verdict, report,
//     marshal, or /metrics output; sort the keys first.
//   - statusfix: the suggested-fix engine behind `scarelint -fix` —
//     mechanical rewrites for dropped Status results and unsorted map
//     ranges, consuming the facts statuscheck and maporder export.
//
// The framework is a real cross-package engine, not a per-package loop:
// analyzers export typed facts per package, declare dependencies on each
// other via Requires, and the engine runs them over the module's package
// graph in dependency order, in parallel across independent packages.
// Whole-program analyzers add a RunModule hook that fires once after
// every package has been analyzed, with all exported facts in view.
//
// The paper's whole deception premise is consistency — one mismatched
// artifact (an unhooked API, a wrong timestamp) lets evasive malware see
// through the camouflage — so these invariants are enforced before the
// code ever runs. cmd/scarelint is the multichecker entry point.
package lint

import (
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Severity ranks a finding. Error findings gate CI (and the scarelint
// exit code); warn and info findings are reported but never fail a run.
type Severity int

const (
	SeverityError Severity = iota
	SeverityWarn
	SeverityInfo
)

// String renders the severity in lowercase, as emitted on the wire.
func (s Severity) String() string {
	switch s {
	case SeverityError:
		return "error"
	case SeverityWarn:
		return "warn"
	case SeverityInfo:
		return "info"
	}
	return fmt.Sprintf("severity(%d)", int(s))
}

// Analyzer describes one static check: a name for diagnostics, one-line
// documentation, and the function that inspects a package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error

	// Severity is the default severity of this analyzer's diagnostics.
	// The zero value is SeverityError: an invariant violation.
	Severity Severity

	// Requires lists analyzers that must run before this one on each
	// package. A required analyzer's facts are readable through
	// Pass.ImportAnalyzerFact; its diagnostics are still its own.
	Requires []*Analyzer

	// RunModule, if set, runs once after every package has been analyzed,
	// with all exported facts in view — the whole-program half of an
	// analyzer (e.g. apireach's catalog-coverage verdict).
	RunModule func(*ModulePass) error
}

// TextEdit replaces the source range [Pos, End) with NewText.
type TextEdit struct {
	Pos     token.Pos
	End     token.Pos
	NewText string
}

// SuggestedFix is a mechanical rewrite that resolves a diagnostic. Fixes
// are applied by `scarelint -fix` (see ApplyFixes); every applied fix
// must leave the file gofmt-clean and must not re-trigger the analyzer.
type SuggestedFix struct {
	Message string
	Edits   []TextEdit
}

// Diagnostic is one finding, positioned in the analyzed source.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Severity Severity
	Message  string

	// Fix, when non-nil, is a rewrite that resolves the finding.
	Fix *SuggestedFix

	// Baselined marks a finding accepted by the checked-in baseline file;
	// baselined findings are reported but do not gate the exit code.
	Baselined bool
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s: %s", d.Pos, d.Severity, d.Analyzer, d.Message)
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	loader *Loader
	engine *engine
	sink   *[]Diagnostic
}

// Reportf records a diagnostic at pos with the analyzer's default
// severity.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(pos, nil, format, args...)
}

// ReportFix records a diagnostic carrying a suggested fix.
func (p *Pass) ReportFix(pos token.Pos, fix *SuggestedFix, format string, args ...any) {
	p.report(pos, fix, format, args...)
}

func (p *Pass) report(pos token.Pos, fix *SuggestedFix, format string, args ...any) {
	*p.sink = append(*p.sink, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Severity: p.Analyzer.Severity,
		Message:  fmt.Sprintf(format, args...),
		Fix:      fix,
	})
}

// ExportPackageFact publishes a fact about the package under analysis.
// Facts are keyed by (analyzer, package, concrete fact type); exporting a
// second fact of the same type overwrites the first. Downstream passes of
// the same analyzer read it with ImportPackageFact; analyzers listing
// this one in Requires read it with ImportAnalyzerFact.
func (p *Pass) ExportPackageFact(fact any) {
	if p.engine == nil || p.Pkg == nil {
		return
	}
	p.engine.exportFact(p.Analyzer, p.Pkg.Path(), fact)
}

// ImportPackageFact copies the fact this analyzer exported for pkgPath
// into ptr (a pointer to the fact's concrete type), reporting whether one
// was found. The engine's dependency order guarantees facts of the
// analyzed package's imports are already computed.
func (p *Pass) ImportPackageFact(pkgPath string, ptr any) bool {
	if p.engine == nil {
		return false
	}
	return p.engine.importFact(p.Analyzer, pkgPath, ptr)
}

// ImportAnalyzerFact copies the fact another analyzer exported for
// pkgPath into ptr. The other analyzer must be listed in Requires — that
// is what orders it before this one on every package.
func (p *Pass) ImportAnalyzerFact(from *Analyzer, pkgPath string, ptr any) bool {
	if p.engine == nil {
		return false
	}
	for _, r := range p.Analyzer.Requires {
		if r == from {
			return p.engine.importFact(from, pkgPath, ptr)
		}
	}
	panic(fmt.Sprintf("lint: %s imports a fact from %s without listing it in Requires", p.Analyzer.Name, from.Name))
}

// PackageSyntax returns the parsed files of another module-local package
// (the analyzed package itself included). Analyzers use it to read
// declarations that types alone do not expose — e.g. the apiCatalog map
// literal in internal/winapi.
func (p *Pass) PackageSyntax(path string) ([]*ast.File, error) {
	if p.Pkg != nil && path == p.Pkg.Path() {
		return p.Files, nil
	}
	pkg, err := p.loader.Load(path)
	if err != nil {
		return nil, err
	}
	return pkg.Syntax, nil
}

// ModulePass is the whole-program view handed to RunModule after every
// package has been analyzed.
type ModulePass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet

	// Packages are all analyzed module-local packages (the requested set
	// plus their module-local dependency closure), sorted by import path.
	Packages []*Package

	// Requested reports whether a package path was explicitly requested
	// on the command line (as opposed to pulled in as a dependency).
	// Whole-program verdicts should only fire when their subject package
	// was requested, so a partial run cannot produce false positives.
	Requested map[string]bool

	engine *engine
	sink   *[]Diagnostic
}

// Reportf records a module-level diagnostic at pos.
func (p *ModulePass) Reportf(pos token.Pos, format string, args ...any) {
	*p.sink = append(*p.sink, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Severity: p.Analyzer.Severity,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ImportPackageFact copies the fact this analyzer exported for pkgPath
// into ptr, reporting whether one was found.
func (p *ModulePass) ImportPackageFact(pkgPath string, ptr any) bool {
	return p.engine.importFact(p.Analyzer, pkgPath, ptr)
}

// Analyzers returns the full scarelint suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		StatusCheck, HookCatalog, VirtualClock, TraceComplete, NoPanic,
		Exhaustive, LockField, APIReach, MapOrder, StatusFix,
	}
}

// Run executes the analyzers over the requested packages and returns all
// diagnostics sorted by file position. The engine also analyzes the
// module-local dependency closure of the requested packages (facts flow
// dependency-first), but only reports diagnostics in requested packages
// from the requested analyzers. Analyzer errors (not findings) abort the
// run.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	if len(pkgs) == 0 {
		return nil, nil
	}
	e := newEngine(pkgs[0].loader, pkgs, analyzers)
	diags, err := e.run()
	if err != nil {
		return nil, err
	}
	sortDiagnostics(diags)
	return diags, nil
}

func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// nodeString renders an AST node compactly for diagnostics ("c.CreateFile").
func nodeString(fset *token.FileSet, n ast.Node) string {
	var sb strings.Builder
	if err := printer.Fprint(&sb, fset, n); err != nil {
		return "expression"
	}
	return sb.String()
}

// exprIsPure reports whether duplicating the expression in generated code
// is safe: identifiers, field selections, parens, and simple index forms
// only — nothing that could run twice with side effects.
func exprIsPure(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		return true
	case *ast.SelectorExpr:
		return exprIsPure(e.X)
	case *ast.ParenExpr:
		return exprIsPure(e.X)
	case *ast.IndexExpr:
		return exprIsPure(e.X) && exprIsPure(e.Index)
	case *ast.BasicLit:
		return true
	}
	return false
}

// basicKind returns the basic-type kind underlying t, or types.Invalid.
func basicKind(t types.Type) types.BasicKind {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return types.Invalid
	}
	return b.Kind()
}

// Package lint is scarecrow's in-tree static-analysis suite: a small,
// self-contained framework in the style of golang.org/x/tools/go/analysis
// (which is deliberately not imported so the repo builds with a bare
// toolchain and no module downloads) plus seven repo-specific analyzers
// that turn the simulation's runtime invariants into build errors:
//
//   - statuscheck: a winapi.Status result must never be silently dropped.
//   - hookcatalog: every string-literal API name at a hook-installation or
//     trigger-reporting site must exist in winapi's apiCatalog, and the
//     deceptive hook surface (core.HookedAPIs) must stay in sync with the
//     engine's handler table.
//   - virtualclock: simulation packages must use the virtual clock and the
//     machine's seeded RNG, never the wall clock or global math/rand.
//   - tracecomplete: trace.Event literals must populate the fields the
//     labrunner diffing keys on (Kind, PID, Image, Target).
//   - nopanic: the fault-contained packages (internal/analysis,
//     internal/core) must return errors, never panic — the lab's
//     containment promise is that no single run can kill a corpus sweep.
//   - exhaustive: String() switches and ...Names map literals must cover
//     every constant of their enum type, so extending an enum (a new
//     winapi.Status, a new trace.Kind) cannot silently break the
//     name-based wire encoding verdict documents rely on.
//   - lockfield: in the concurrent packages, struct fields declared after
//     a `mu sync.Mutex` are guarded by it and may only be touched from
//     the owning type's methods or under a visible <expr>.mu.Lock().
//
// The paper's whole deception premise is consistency — one mismatched
// artifact (an unhooked API, a wrong timestamp) lets evasive malware see
// through the camouflage — so these invariants are enforced before the
// code ever runs. cmd/scarelint is the multichecker entry point.
package lint

import (
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one static check: a name for diagnostics, one-line
// documentation, and the function that inspects a package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Diagnostic is one finding, positioned in the analyzed source.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	loader *Loader
	sink   *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.sink = append(*p.sink, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// PackageSyntax returns the parsed files of another module-local package
// (the analyzed package itself included). Analyzers use it to read
// declarations that types alone do not expose — e.g. the apiCatalog map
// literal in internal/winapi. It stands in for go/analysis facts.
func (p *Pass) PackageSyntax(path string) ([]*ast.File, error) {
	if p.Pkg != nil && path == p.Pkg.Path() {
		return p.Files, nil
	}
	pkg, err := p.loader.Load(path)
	if err != nil {
		return nil, err
	}
	return pkg.Syntax, nil
}

// Analyzers returns the full scarelint suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{StatusCheck, HookCatalog, VirtualClock, TraceComplete, NoPanic, Exhaustive, LockField}
}

// Run executes the analyzers over the packages and returns all diagnostics
// sorted by file position. Analyzer errors (not findings) abort the run.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Syntax,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				loader:    pkg.loader,
				sink:      &diags,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: analyzing %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// nodeString renders an AST node compactly for diagnostics ("c.CreateFile").
func nodeString(fset *token.FileSet, n ast.Node) string {
	var sb strings.Builder
	if err := printer.Fprint(&sb, fset, n); err != nil {
		return "expression"
	}
	return sb.String()
}

package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MapOrderScope lists the package trees whose outputs must be
// order-deterministic: verdict documents, reports, wire marshals, and the
// /metrics surface all promise byte-identical replay (the WAL, the
// verdict cache, and the campaign engine depend on it), and Go randomizes
// map iteration order per run. A `range` over a map in these trees may
// aggregate (counters, set inserts, deletes — commutative, order-blind)
// but must not emit: append to a slice, write to a stream, or send on a
// channel, unless the keys are sorted afterwards in the same function or
// the loop carries an explicit `//maporder:ok` annotation.
var MapOrderScope = []string{
	"scarecrow/internal/winapi",
	"scarecrow/internal/winsim",
	"scarecrow/internal/core",
	"scarecrow/internal/trace",
	"scarecrow/internal/analysis",
	"scarecrow/internal/service",
	"scarecrow/internal/campaign",
	"scarecrow/internal/store",
	"scarecrow/internal/synth",
	"scarecrow/internal/front",
	"scarecrow/internal/deter",
}

// MapOrder extends the virtualclock determinism contract to iteration
// order: map ranges that feed ordered output must sort first.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "forbid map iteration order from flowing into verdict, report, marshal, or /metrics output (sort the keys first)",
	Run:  runMapOrder,
}

// unsortedRangeFact records the offending map ranges of one package, for
// the statusfix suggested-fix engine.
type unsortedRangeFact struct {
	sites []unsortedRangeSite
}

type unsortedRangeSite struct {
	rng  *ast.RangeStmt
	file *ast.File
	// fixable marks the shapes -fix can rewrite mechanically: a `:=`
	// range with an identifier key over a pure string-keyed map
	// expression.
	fixable bool
}

func runMapOrder(pass *Pass) error {
	if pass.Pkg == nil || !packagePathIn(pass.Pkg.Path(), MapOrderScope) {
		return nil
	}
	var fact unsortedRangeFact
	for _, f := range pass.Files {
		okLines := mapOrderAnnotations(pass.Fset, f)
		// bodies collects every function body in the file so a range
		// statement can be matched to its innermost enclosing function.
		var bodies []*ast.BlockStmt
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					bodies = append(bodies, n.Body)
				}
			case *ast.FuncLit:
				bodies = append(bodies, n.Body)
			}
			return true
		})

		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			m := mapTypeOf(pass, rng.X)
			if m == nil {
				return true
			}
			if okLines[pass.Fset.Position(rng.For).Line] {
				return true
			}
			if !rangeBodyEmits(pass, rng) {
				return true
			}
			if sortCallAfter(pass, bodies, rng) {
				return true
			}
			fact.sites = append(fact.sites, unsortedRangeSite{
				rng:     rng,
				file:    f,
				fixable: mapRangeFixable(pass, rng, m),
			})
			pass.Reportf(rng.For, "iteration order of %s flows into ordered output; collect and sort the keys first (or annotate //maporder:ok if order is irrelevant)",
				nodeString(pass.Fset, rng.X))
			return true
		})
	}
	if len(fact.sites) > 0 {
		pass.ExportPackageFact(&fact)
	}
	return nil
}

// mapOrderAnnotations returns the line numbers suppressed by a
// //maporder:ok comment: the comment's own line and the line after it
// (so the annotation may trail the for statement or precede it).
func mapOrderAnnotations(fset *token.FileSet, f *ast.File) map[int]bool {
	lines := make(map[int]bool)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.Contains(c.Text, "maporder:ok") {
				continue
			}
			line := fset.Position(c.Pos()).Line
			lines[line] = true
			lines[line+1] = true
		}
	}
	return lines
}

// mapTypeOf returns the map type ranged over, or nil when the expression
// is not a map.
func mapTypeOf(pass *Pass, x ast.Expr) *types.Map {
	tv, ok := pass.TypesInfo.Types[x]
	if !ok || tv.Type == nil {
		return nil
	}
	m, _ := tv.Type.Underlying().(*types.Map)
	return m
}

// rangeBodyEmits reports whether the loop body produces ordered output:
// appends to a slice declared outside the loop, writes through a
// formatter/writer/encoder, assigns into a slice element, or sends on a
// channel. Commutative aggregation — map writes, counters, deletes,
// min/max folds — does not count.
func rangeBodyEmits(pass *Pass, rng *ast.RangeStmt) bool {
	emits := false
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if emits {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			emits = true
		case *ast.AssignStmt:
			for _, rhs := range n.Rhs {
				if call, ok := rhs.(*ast.CallExpr); ok && isBuiltinAppend(pass, call) {
					if appendTargetOutsideLoop(pass, n, rng) {
						emits = true
					}
				}
			}
			for _, lhs := range n.Lhs {
				if idx, ok := lhs.(*ast.IndexExpr); ok {
					if tv, ok := pass.TypesInfo.Types[idx.X]; ok {
						if _, isSlice := tv.Type.Underlying().(*types.Slice); isSlice {
							emits = true
						}
					}
				}
			}
		case *ast.CallExpr:
			if isOrderedSink(pass, n) {
				emits = true
			}
		}
		return !emits
	})
	return emits
}

func isBuiltinAppend(pass *Pass, call *ast.CallExpr) bool {
	ident, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.TypesInfo.Uses[ident].(*types.Builtin)
	return ok && b.Name() == "append"
}

// appendTargetOutsideLoop reports whether the append assignment grows a
// variable declared outside the range statement — accumulation that
// escapes the loop in iteration order.
func appendTargetOutsideLoop(pass *Pass, assign *ast.AssignStmt, rng *ast.RangeStmt) bool {
	for _, lhs := range assign.Lhs {
		ident, ok := lhs.(*ast.Ident)
		if !ok {
			continue
		}
		obj := pass.TypesInfo.ObjectOf(ident)
		if obj == nil {
			continue
		}
		if obj.Pos() < rng.Pos() || obj.Pos() > rng.End() {
			return true
		}
	}
	return false
}

// isOrderedSink reports whether the call writes to an ordered output
// stream: fmt's print family, Write/WriteString/... methods (writers,
// string builders, buffers), and Encode methods (JSON, gob, SSE frames).
func isOrderedSink(pass *Pass, call *ast.CallExpr) bool {
	var obj types.Object
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		obj = pass.TypesInfo.Uses[fun.Sel]
	case *ast.Ident:
		obj = pass.TypesInfo.Uses[fun]
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	if pkg := fn.Pkg(); pkg != nil && pkg.Path() == "fmt" {
		name := fn.Name()
		return strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint") ||
			strings.HasPrefix(name, "Sprint") || strings.HasPrefix(name, "Append")
	}
	switch fn.Name() {
	case "Write", "WriteString", "WriteByte", "WriteRune", "WriteTo", "Encode":
		return fn.Type().(*types.Signature).Recv() != nil
	}
	return false
}

// sortCallAfter reports whether the innermost function body enclosing the
// range statement calls into package sort or slices after the loop — the
// canonical collect-then-sort pattern:
//
//	for k := range m { keys = append(keys, k) }
//	sort.Strings(keys)
func sortCallAfter(pass *Pass, bodies []*ast.BlockStmt, rng *ast.RangeStmt) bool {
	var enclosing *ast.BlockStmt
	for _, b := range bodies {
		if b.Pos() <= rng.Pos() && rng.End() <= b.End() {
			if enclosing == nil || b.Pos() > enclosing.Pos() {
				enclosing = b
			}
		}
	}
	if enclosing == nil {
		return false
	}
	found := false
	ast.Inspect(enclosing, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= rng.End() {
			return true
		}
		var obj types.Object
		switch fun := call.Fun.(type) {
		case *ast.SelectorExpr:
			obj = pass.TypesInfo.Uses[fun.Sel]
		case *ast.Ident:
			obj = pass.TypesInfo.Uses[fun]
		}
		if fn, ok := obj.(*types.Func); ok && fn.Pkg() != nil {
			switch fn.Pkg().Path() {
			case "sort", "slices":
				found = true
			}
		}
		return !found
	})
	return found
}

// mapRangeFixable reports whether statusfix can mechanically rewrite the
// range: `for k := range m` / `for k, v := range m` with `:=`, identifier
// key, a string key type, and a side-effect-free map expression that is
// safe to duplicate.
func mapRangeFixable(pass *Pass, rng *ast.RangeStmt, m *types.Map) bool {
	if rng.Tok != token.DEFINE {
		return false
	}
	key, ok := rng.Key.(*ast.Ident)
	if !ok || key.Name == "_" {
		return false
	}
	if rng.Value != nil {
		if _, ok := rng.Value.(*ast.Ident); !ok {
			return false
		}
	}
	if basicKind(m.Key()) != types.String {
		return false
	}
	return exprIsPure(rng.X)
}

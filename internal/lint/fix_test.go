package lint

import (
	"go/format"
	"os"
	"path/filepath"
	"testing"
)

// applyFixesTo copies the statusfix_apply fixture into dir, runs StatusFix
// over it under a determinism-scoped import path, applies the suggested
// fixes, and returns the files changed.
func applyFixesTo(t *testing.T, dir string) []string {
	t.Helper()
	loader := newTestLoader(t)
	loader.AddPackageDir("scarecrow/internal/service/applyfixture", dir)
	pkg, err := loader.Load("scarecrow/internal/service/applyfixture")
	if err != nil {
		t.Fatalf("loading apply fixture: %v", err)
	}
	diags, err := Run([]*Package{pkg}, []*Analyzer{StatusFix})
	if err != nil {
		t.Fatalf("running statusfix: %v", err)
	}
	changed, skipped, err := ApplyFixes(loader.Fset, diags)
	if err != nil {
		t.Fatalf("applying fixes: %v", err)
	}
	if skipped != 0 {
		t.Fatalf("%d fixes skipped for conflicts, want 0", skipped)
	}
	return changed
}

// TestApplyFixesGolden rewrites the apply fixture and compares the result
// byte for byte against fixture.go.golden. The output must also already
// be gofmt-clean. Regenerate the golden with GOLDEN_UPDATE=1.
func TestApplyFixesGolden(t *testing.T) {
	src, err := os.ReadFile(filepath.Join(fixtureDir(t, "statusfix_apply"), "fixture.go"))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	target := filepath.Join(dir, "fixture.go")
	if err := os.WriteFile(target, src, 0o644); err != nil {
		t.Fatal(err)
	}

	changed := applyFixesTo(t, dir)
	if len(changed) != 1 || changed[0] != target {
		t.Fatalf("changed files = %v, want [%s]", changed, target)
	}
	got, err := os.ReadFile(target)
	if err != nil {
		t.Fatal(err)
	}

	formatted, err := format.Source(got)
	if err != nil {
		t.Fatalf("fixed output does not parse: %v\n%s", err, got)
	}
	if string(formatted) != string(got) {
		t.Errorf("fixed output is not gofmt-clean:\n-- got --\n%s\n-- gofmt --\n%s", got, formatted)
	}

	goldenPath := filepath.Join(fixtureDir(t, "statusfix_apply"), "fixture.go.golden")
	if os.Getenv("GOLDEN_UPDATE") == "1" {
		if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden updated: %s", goldenPath)
		return
	}
	golden, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden (run with GOLDEN_UPDATE=1 to create): %v", err)
	}
	if string(got) != string(golden) {
		t.Errorf("fixed output differs from golden:\n-- got --\n%s\n-- want --\n%s", got, golden)
	}
}

// TestApplyFixesIdempotent proves that running -fix a second time over
// already-fixed code finds nothing left to do and leaves the file alone.
func TestApplyFixesIdempotent(t *testing.T) {
	src, err := os.ReadFile(filepath.Join(fixtureDir(t, "statusfix_apply"), "fixture.go"))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	target := filepath.Join(dir, "fixture.go")
	if err := os.WriteFile(target, src, 0o644); err != nil {
		t.Fatal(err)
	}

	applyFixesTo(t, dir)
	once, err := os.ReadFile(target)
	if err != nil {
		t.Fatal(err)
	}

	// Second pass: a fresh loader sees the fixed source.
	loader := newTestLoader(t)
	loader.AddPackageDir("scarecrow/internal/service/applyfixture", dir)
	pkg, err := loader.Load("scarecrow/internal/service/applyfixture")
	if err != nil {
		t.Fatalf("reloading fixed fixture: %v", err)
	}
	diags, err := Run([]*Package{pkg}, []*Analyzer{StatusFix})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("diagnostic survives the fix: %s", d)
	}
	changed, skipped, err := ApplyFixes(loader.Fset, diags)
	if err != nil {
		t.Fatal(err)
	}
	if len(changed) != 0 || skipped != 0 {
		t.Errorf("second pass changed %v (skipped %d), want nothing", changed, skipped)
	}
	twice, err := os.ReadFile(target)
	if err != nil {
		t.Fatal(err)
	}
	if string(once) != string(twice) {
		t.Errorf("file changed on second pass:\n-- first --\n%s\n-- second --\n%s", once, twice)
	}
}

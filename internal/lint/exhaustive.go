package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// Exhaustive enforces enum coverage at the two places the repo renders an
// integer enum by name:
//
//   - a String() string method whose body switches on the receiver must
//     have a case for every package-level constant of the enum type (a
//     default clause is allowed, but only for out-of-range values — it
//     must not stand in for a declared constant);
//   - a package-level map literal keyed by the enum type whose variable
//     name ends in "Names" (kindNames, shapeNames, ...) must have an entry
//     for every constant.
//
// The wire format depends on this: trace.Kind marshals by name via
// kindNames, and winapi.Status renders into verdict documents via its
// String switch. A constant added without its name would either fail at
// serialization time (Kind) or silently degrade to a numeric fallback
// (Status) — both long after the enum was extended. This analyzer moves
// that failure to compile time.
var Exhaustive = &Analyzer{
	Name: "exhaustive",
	Doc:  "String() switches and ...Names map literals must cover every constant of their enum type",
	Run:  runExhaustive,
}

func runExhaustive(pass *Pass) error {
	if pass.Pkg == nil {
		return nil
	}
	enums := enumConstants(pass.Pkg)
	if len(enums) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				pass.checkStringSwitch(d, enums)
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						pass.checkNamesMap(vs, enums)
					}
				}
			}
		}
	}
	return nil
}

// enumConstants collects, per defined integer type of the package, its
// package-level constants. Scope names come back sorted, so the constant
// order (and therefore diagnostic order) is deterministic.
func enumConstants(pkg *types.Package) map[*types.TypeName][]*types.Const {
	enums := make(map[*types.TypeName][]*types.Const)
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok {
			continue
		}
		named, ok := types.Unalias(c.Type()).(*types.Named)
		if !ok {
			continue
		}
		tn := named.Obj()
		if tn.Pkg() != pkg {
			continue
		}
		if b, ok := named.Underlying().(*types.Basic); !ok || b.Info()&types.IsInteger == 0 {
			continue
		}
		enums[tn] = append(enums[tn], c)
	}
	return enums
}

// checkStringSwitch verifies that a String() method switching on its
// receiver names every constant of the receiver's type.
func (p *Pass) checkStringSwitch(fn *ast.FuncDecl, enums map[*types.TypeName][]*types.Const) {
	if fn.Name.Name != "String" || fn.Recv == nil || fn.Body == nil || len(fn.Recv.List) != 1 {
		return
	}
	recvField := fn.Recv.List[0]
	if len(recvField.Names) != 1 {
		return
	}
	recvObj := p.TypesInfo.Defs[recvField.Names[0]]
	if recvObj == nil {
		return
	}
	named, ok := types.Unalias(recvObj.Type()).(*types.Named)
	if !ok {
		return
	}
	consts, ok := enums[named.Obj()]
	if !ok || len(consts) < 2 {
		return
	}

	covered := make(map[types.Object]bool)
	var firstSwitch *ast.SwitchStmt
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		sw, ok := n.(*ast.SwitchStmt)
		if !ok {
			return true
		}
		tag, ok := sw.Tag.(*ast.Ident)
		if !ok || p.TypesInfo.Uses[tag] != recvObj {
			return true
		}
		if firstSwitch == nil {
			firstSwitch = sw
		}
		for _, stmt := range sw.Body.List {
			cc, ok := stmt.(*ast.CaseClause)
			if !ok {
				continue
			}
			for _, expr := range cc.List {
				var obj types.Object
				switch e := expr.(type) {
				case *ast.Ident:
					obj = p.TypesInfo.Uses[e]
				case *ast.SelectorExpr:
					obj = p.TypesInfo.Uses[e.Sel]
				}
				if obj != nil {
					covered[obj] = true
				}
			}
		}
		return true
	})
	if firstSwitch == nil {
		return // renders some other way (a names map, fmt) — not this check's business
	}
	if missing := missingConstants(consts, covered); len(missing) > 0 {
		p.Reportf(firstSwitch.Pos(), "%s constants missing from String switch: %s",
			named.Obj().Name(), strings.Join(missing, ", "))
	}
}

// checkNamesMap verifies that a package-level map[Enum]... literal whose
// variable name ends in "Names" keys every constant of the enum.
func (p *Pass) checkNamesMap(vs *ast.ValueSpec, enums map[*types.TypeName][]*types.Const) {
	for i, ident := range vs.Names {
		if !strings.HasSuffix(ident.Name, "Names") || i >= len(vs.Values) {
			continue
		}
		lit, ok := vs.Values[i].(*ast.CompositeLit)
		if !ok {
			continue
		}
		tv, ok := p.TypesInfo.Types[lit]
		if !ok {
			continue
		}
		m, ok := types.Unalias(tv.Type).Underlying().(*types.Map)
		if !ok {
			continue
		}
		keyNamed, ok := types.Unalias(m.Key()).(*types.Named)
		if !ok {
			continue
		}
		consts, ok := enums[keyNamed.Obj()]
		if !ok {
			continue
		}
		covered := make(map[types.Object]bool)
		for _, elt := range lit.Elts {
			kv, ok := elt.(*ast.KeyValueExpr)
			if !ok {
				continue
			}
			var obj types.Object
			switch e := kv.Key.(type) {
			case *ast.Ident:
				obj = p.TypesInfo.Uses[e]
			case *ast.SelectorExpr:
				obj = p.TypesInfo.Uses[e.Sel]
			}
			if obj != nil {
				covered[obj] = true
			}
		}
		if missing := missingConstants(consts, covered); len(missing) > 0 {
			p.Reportf(lit.Pos(), "%s constants missing from %s: %s",
				keyNamed.Obj().Name(), ident.Name, strings.Join(missing, ", "))
		}
	}
}

func missingConstants(consts []*types.Const, covered map[types.Object]bool) []string {
	var missing []string
	for _, c := range consts {
		if !covered[c] {
			missing = append(missing, c.Name())
		}
	}
	sort.Strings(missing)
	return missing
}

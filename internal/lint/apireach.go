package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// APIReach proves, whole-program, that every apiCatalog entry in
// internal/winapi is actually callable: referenced by a Context method's
// invoke dispatch, a hook-handler dispatch table, a HookedAPIs surface
// declaration, or a hook-installation site somewhere in the module. An
// entry nobody can reach is a silent deception gap — the simulation
// advertises an API it never models a call to, which is exactly the kind
// of inconsistency evasive malware probes for.
//
// Mechanically this is the facts engine's showcase: the per-package pass
// exports an apiReachFact naming every catalog entry the package touches
// (and, on winapi itself, an apiCatalogFact with the catalog entries and
// their positions); the RunModule hook then unions the reach facts across
// every analyzed package and reports the dead entries at their catalog
// positions. The verdict only fires when internal/winapi itself was
// requested, so a partial run cannot produce false "dead entry" reports.
var APIReach = &Analyzer{
	Name:      "apireach",
	Doc:       "prove every winapi apiCatalog entry is callable from a Context method or hook-dispatch table (dead entries are camouflage gaps)",
	Run:       runAPIReach,
	RunModule: runAPIReachModule,
}

// apiReachFact names the catalog entries one package can reach.
type apiReachFact struct {
	names []string
}

// apiCatalogFact carries the catalog entries (and their source positions)
// out of the winapi package.
type apiCatalogFact struct {
	entries []catalogEntry
}

type catalogEntry struct {
	name string
	pos  token.Pos
}

func runAPIReach(pass *Pass) error {
	if pass.Pkg == nil {
		return nil
	}
	if pass.Pkg.Path() == winapiPath {
		var cat apiCatalogFact
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				spec, ok := n.(*ast.ValueSpec)
				if !ok {
					return true
				}
				for i, name := range spec.Names {
					if name.Name != "apiCatalog" || i >= len(spec.Values) {
						continue
					}
					lit, ok := spec.Values[i].(*ast.CompositeLit)
					if !ok {
						continue
					}
					for _, elt := range lit.Elts {
						kv, ok := elt.(*ast.KeyValueExpr)
						if !ok {
							continue
						}
						if key, ok := stringLiteral(kv.Key); ok {
							cat.entries = append(cat.entries, catalogEntry{name: key, pos: kv.Key.Pos()})
						}
					}
				}
				return true
			})
		}
		if len(cat.entries) > 0 {
			pass.ExportPackageFact(&cat)
		}
	} else if !importsWinapi(pass.Pkg) {
		return nil
	}

	seen := make(map[string]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				// API-name arguments of the dispatch and installation
				// entry points: invoke, InstallHook, InstallKernelHook,
				// ReadFunctionPrologue, PrologueIntact.
				var obj types.Object
				switch fun := n.Fun.(type) {
				case *ast.SelectorExpr:
					obj = pass.TypesInfo.Uses[fun.Sel]
				case *ast.Ident:
					obj = pass.TypesInfo.Uses[fun]
				}
				fn, ok := obj.(*types.Func)
				if !ok || fn.Pkg() == nil || fn.Pkg().Path() != winapiPath {
					return true
				}
				argIdx, ok := apiNameArg[fn.Name()]
				if !ok || argIdx >= len(n.Args) {
					return true
				}
				if name, ok := stringLiteral(n.Args[argIdx]); ok {
					seen[name] = true
				}
			case *ast.CompositeLit:
				// Keys of hook-dispatch tables (map[string]HookHandler).
				if !pass.isHookHandlerMap(n) {
					return true
				}
				for _, elt := range n.Elts {
					if kv, ok := elt.(*ast.KeyValueExpr); ok {
						if name, ok := stringLiteral(kv.Key); ok {
							seen[name] = true
						}
					}
				}
			case *ast.ValueSpec:
				// Elements of declared hook surfaces ([]string HookedAPIs).
				for i, ident := range n.Names {
					if ident.Name != "HookedAPIs" || i >= len(n.Values) {
						continue
					}
					lit, ok := n.Values[i].(*ast.CompositeLit)
					if !ok {
						continue
					}
					obj := pass.TypesInfo.Defs[ident]
					if obj == nil || !isStringSlice(obj.Type()) {
						continue
					}
					for _, elt := range lit.Elts {
						if name, ok := stringLiteral(elt); ok {
							seen[name] = true
						}
					}
				}
			}
			return true
		})
	}
	if len(seen) > 0 {
		fact := &apiReachFact{names: make([]string, 0, len(seen))}
		for name := range seen {
			fact.names = append(fact.names, name)
		}
		sort.Strings(fact.names)
		pass.ExportPackageFact(fact)
	}
	return nil
}

func runAPIReachModule(mp *ModulePass) error {
	// Only judge catalog coverage when the catalog's own package was part
	// of the requested set; a run over one leaf package sees too few
	// reach facts to call anything dead.
	if !mp.Requested[winapiPath] {
		return nil
	}
	var cat apiCatalogFact
	if !mp.ImportPackageFact(winapiPath, &cat) {
		return nil
	}
	reached := make(map[string]bool)
	for _, pkg := range mp.Packages {
		var fact apiReachFact
		if mp.ImportPackageFact(pkg.Path, &fact) {
			for _, name := range fact.names {
				reached[name] = true
			}
		}
	}
	for _, entry := range cat.entries {
		if reached[entry.name] {
			continue
		}
		mp.Reportf(entry.pos, "apiCatalog entry %q is unreachable: no Context method, hook-dispatch table, or hook surface refers to it — a dead entry is a live camouflage gap", entry.name)
	}
	return nil
}

package lint

import (
	"fmt"
	"reflect"
	"runtime"
	"sort"
	"sync"
)

// engine runs a set of analyzers over the module package graph: packages
// are analyzed in dependency order (facts computed on a package's imports
// before the package itself), in parallel across packages with no path
// between them. Within one package the analyzers run sequentially in
// Requires order. After every package, module-level RunModule hooks fire
// once with all facts in view.
type engine struct {
	loader    *Loader
	requested map[string]bool // import paths whose diagnostics are reported
	selected  map[string]bool // analyzer names whose diagnostics are reported
	analyzers []*Analyzer     // selection + transitive Requires, topo-sorted

	mu    sync.Mutex
	facts map[factKey]any
}

type factKey struct {
	analyzer string
	pkg      string
	typ      reflect.Type
}

func newEngine(loader *Loader, requested []*Package, selected []*Analyzer) *engine {
	e := &engine{
		loader:    loader,
		requested: make(map[string]bool, len(requested)),
		selected:  make(map[string]bool, len(selected)),
		facts:     make(map[factKey]any),
	}
	for _, p := range requested {
		e.requested[p.Path] = true
	}
	for _, a := range selected {
		e.selected[a.Name] = true
	}
	e.analyzers = expandRequires(selected)
	return e
}

// expandRequires returns the selection plus every transitively required
// analyzer, topologically sorted so each analyzer follows its Requires.
func expandRequires(selected []*Analyzer) []*Analyzer {
	var order []*Analyzer
	state := make(map[*Analyzer]int) // 0 unvisited, 1 visiting, 2 done
	var visit func(a *Analyzer)
	visit = func(a *Analyzer) {
		switch state[a] {
		case 1:
			panic(fmt.Sprintf("lint: analyzer dependency cycle through %s", a.Name))
		case 2:
			return
		}
		state[a] = 1
		for _, r := range a.Requires {
			visit(r)
		}
		state[a] = 2
		order = append(order, a)
	}
	for _, a := range selected {
		visit(a)
	}
	return order
}

// run executes the whole schedule and returns the reportable diagnostics
// (unsorted; Run sorts).
func (e *engine) run() ([]Diagnostic, error) {
	pkgs := e.closure()

	// Dependency edges among the analyzed set: dep -> dependents.
	index := make(map[string]*Package, len(pkgs))
	for _, p := range pkgs {
		index[p.Path] = p
	}
	dependents := make(map[string][]string, len(pkgs))
	indegree := make(map[string]int, len(pkgs))
	for _, p := range pkgs {
		indegree[p.Path] = 0
	}
	for _, p := range pkgs {
		if p.Types == nil {
			continue
		}
		for _, imp := range p.Types.Imports() {
			if _, ok := index[imp.Path()]; ok {
				dependents[imp.Path()] = append(dependents[imp.Path()], p.Path)
				indegree[p.Path]++
			}
		}
	}

	// Kahn scheduling with a bounded worker pool: a package is ready once
	// all its analyzed imports are done; ready packages run concurrently.
	type result struct {
		path  string
		diags []Diagnostic
		err   error
	}
	ready := make(chan string, len(pkgs))
	results := make(chan result, len(pkgs))
	for path, deg := range indegree {
		if deg == 0 {
			ready <- path
		}
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > len(pkgs) {
		workers = len(pkgs)
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for path := range ready {
				diags, err := e.analyzePackage(index[path])
				results <- result{path: path, diags: diags, err: err}
			}
		}()
	}

	var diags []Diagnostic
	var firstErr error
	for done := 0; done < len(pkgs); done++ {
		r := <-results
		if r.err != nil && firstErr == nil {
			firstErr = r.err
		}
		diags = append(diags, r.diags...)
		for _, dep := range dependents[r.path] {
			indegree[dep]--
			if indegree[dep] == 0 {
				ready <- dep
			}
		}
	}
	close(ready)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}

	// Module-level hooks: once, after every package, facts complete.
	sorted := make([]*Package, len(pkgs))
	copy(sorted, pkgs)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Path < sorted[j].Path })
	for _, a := range e.analyzers {
		if a.RunModule == nil || !e.selected[a.Name] {
			continue
		}
		var sink []Diagnostic
		mp := &ModulePass{
			Analyzer:  a,
			Fset:      e.loader.Fset,
			Packages:  sorted,
			Requested: e.requested,
			engine:    e,
			sink:      &sink,
		}
		if err := a.RunModule(mp); err != nil {
			return nil, fmt.Errorf("%s: module analysis: %w", a.Name, err)
		}
		diags = append(diags, sink...)
	}
	return diags, nil
}

// closure returns every module-local package the loader has type-checked:
// the requested set plus the dependency closure pulled in while loading
// it. Analyzing the closure (and reporting only the requested subset)
// is what makes facts of dependencies available to dependents.
func (e *engine) closure() []*Package {
	paths := e.loader.LoadedPaths()
	out := make([]*Package, 0, len(paths))
	for _, path := range paths {
		pkg, err := e.loader.Load(path) // cached
		if err != nil {
			continue
		}
		out = append(out, pkg)
	}
	return out
}

// analyzePackage runs the expanded analyzer list over one package,
// sequentially in Requires order, and returns the diagnostics that are
// reportable (requested package, selected analyzer).
func (e *engine) analyzePackage(pkg *Package) ([]Diagnostic, error) {
	var kept []Diagnostic
	report := e.requested[pkg.Path]
	for _, a := range e.analyzers {
		var sink []Diagnostic
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Syntax,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
			loader:    pkg.loader,
			engine:    e,
			sink:      &sink,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: analyzing %s: %w", a.Name, pkg.Path, err)
		}
		if report && e.selected[a.Name] {
			kept = append(kept, sink...)
		}
	}
	return kept, nil
}

func (e *engine) exportFact(a *Analyzer, pkgPath string, fact any) {
	t := reflect.TypeOf(fact)
	if t == nil || t.Kind() != reflect.Pointer {
		panic(fmt.Sprintf("lint: %s exported a non-pointer fact %T for %s", a.Name, fact, pkgPath))
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.facts[factKey{analyzer: a.Name, pkg: pkgPath, typ: t}] = fact
}

func (e *engine) importFact(a *Analyzer, pkgPath string, ptr any) bool {
	t := reflect.TypeOf(ptr)
	if t == nil || t.Kind() != reflect.Pointer {
		panic(fmt.Sprintf("lint: fact import for %s needs a pointer, got %T", a.Name, ptr))
	}
	e.mu.Lock()
	fact, ok := e.facts[factKey{analyzer: a.Name, pkg: pkgPath, typ: t}]
	e.mu.Unlock()
	if !ok {
		return false
	}
	reflect.ValueOf(ptr).Elem().Set(reflect.ValueOf(fact).Elem())
	return true
}

// Fixture: input for the -fix application test. No want comments — the
// test compares the rewritten file against fixture.go.golden byte for
// byte, then proves a second -fix pass is a no-op.
package applyfixture

import (
	"fmt"
	"strings"

	"scarecrow/internal/winapi"
)

func Probe(c *winapi.Context) {
	c.CreateFile(`C:\probe\vbox.sys`)
	c.ReadFile(`C:\config.ini`)
}

func Render(counts map[string]int) string {
	var sb strings.Builder
	for k, v := range counts {
		fmt.Fprintf(&sb, "%s=%d\n", k, v)
	}
	return sb.String()
}

func Names(m map[string]bool) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

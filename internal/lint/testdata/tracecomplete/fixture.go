// Fixture: trace.Event literals must identify the event (Kind), the
// acting process (PID, Image) and the acted-on object (Target).
package fixture

import "scarecrow/internal/trace"

func emit(r *trace.Recorder, pid int) {
	r.Record(trace.Event{
		Kind: trace.KindAPICall, PID: pid, Image: "malware.exe",
		Target: "CreateFile", Success: true,
	})
	r.Record(trace.Event{ // want `trace\.Event literal must identify the event for the labrunner diff; missing: Image, Target`
		Kind: trace.KindFileWrite, PID: pid,
	})
	r.Record(trace.Event{Target: "dns.example"}) // want `missing: Kind, PID, Image`
	zero := trace.Event{}                        // want `missing: Kind, PID, Image, Target`
	r.Record(zero)
}

// Fixture: enum-coverage findings for the exhaustive analyzer. A String
// switch hiding a constant behind default, and a names map missing an
// entry, are both findings; complete renderings and non-enum switches are
// not.
package fixture

import "fmt"

// Color's String switch forgets Blue — the default would silently claim it.
type Color int

const (
	Red Color = iota
	Green
	Blue
)

func (c Color) String() string {
	switch c { // want `Color constants missing from String switch: Blue`
	case Red:
		return "red"
	case Green:
		return "green"
	default:
		return "unknown"
	}
}

// Shape's names map forgets Triangle — serialization by name would fail.
type Shape int

const (
	Circle Shape = iota
	Square
	Triangle
)

var shapeNames = map[Shape]string{ // want `Shape constants missing from shapeNames: Triangle`
	Circle: "circle",
	Square: "square",
}

// Grade is fully covered both ways: no findings.
type Grade int

const (
	Pass Grade = iota
	Fail
)

func (g Grade) String() string {
	switch g {
	case Pass:
		return "pass"
	case Fail:
		return "fail"
	default:
		return fmt.Sprintf("Grade(%d)", int(g))
	}
}

var gradeNames = map[Grade]string{
	Pass: "pass",
	Fail: "fail",
}

// A String method that renders via the (complete) names map instead of a
// switch is out of this check's scope.
func (s Shape) Render() string { return shapeNames[s] }

// A switch over something other than the receiver is not a coverage site.
func (g Grade) Compare(other Grade) string {
	switch other {
	case Pass:
		return "they passed"
	}
	return "they did not"
}

// keep the fixture's vars referenced so it compiles vet-clean
var _ = shapeNames
var _ = gradeNames

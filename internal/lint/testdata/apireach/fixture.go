// Fixture: a miniature of the real internal/winapi surface, loaded under
// its import path so apireach's whole-program verdict runs against it.
// Entries reached through a Context method's invoke dispatch, a
// hook-dispatch table, a HookedAPIs surface, or a hook-installation site
// are alive; the two phantom entries must be reported as camouflage gaps.
package winapi

type apiMeta struct {
	hookable bool
}

var apiCatalog = map[string]apiMeta{
	"CreateFile":        {hookable: true},
	"RegOpenKeyEx":      {hookable: true},
	"IsDebuggerPresent": {hookable: true},
	"GetTickCount":      {hookable: true},
	"NtQueryPhantom":    {hookable: true}, // want `apiCatalog entry "NtQueryPhantom" is unreachable`
	"EvtGhostNext":      {hookable: true}, // want `apiCatalog entry "EvtGhostNext" is unreachable`
}

// HookHandler mirrors the real dispatch-table element type.
type HookHandler func(c *Context, call *Call) any

// Call mirrors the real in-flight invocation record.
type Call struct{ Name string }

// Context mirrors the real per-process API surface.
type Context struct{}

func (c *Context) invoke(name string, args []any, genuine func() any) any {
	_ = apiCatalog[name]
	return genuine()
}

// CreateFile reaches its catalog entry through invoke.
func (c *Context) CreateFile(path string) any {
	return c.invoke("CreateFile", []any{path}, func() any { return nil })
}

// System mirrors the real hook installer.
type System struct{}

func (s *System) InstallHook(pid int, api string, h HookHandler) error {
	_ = apiCatalog[api]
	_ = h
	return nil
}

// handlers is a hook-dispatch table; its keys are reachable.
var handlers = map[string]HookHandler{
	"RegOpenKeyEx": nil,
}

// HookedAPIs is a declared hook surface; its elements are reachable.
var HookedAPIs = []string{"IsDebuggerPresent"}

// Install reaches GetTickCount through a hook-installation site.
func Install(s *System) error {
	_ = handlers
	return s.InstallHook(1, "GetTickCount", nil)
}

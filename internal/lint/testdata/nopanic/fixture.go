// Fixture: panic calls inside a fault-contained package (this fixture is
// loaded under a scarecrow/internal/analysis/... import path, which places
// it in the nopanic scope).
package fixture

import "errors"

func explode(err error) {
	if err != nil {
		panic(err) // want `panic in a fault-contained package`
	}
	panic("unconditional") // want `panic in a fault-contained package`
}

// Sanctioned: returning the error instead.
func contained(err error) error {
	if err != nil {
		return errors.New("wrapped: " + err.Error())
	}
	return nil
}

// A method that happens to be named "panic" is not the builtin and must
// not be flagged.
type alarm struct{}

func (alarm) panic(msg string) string { return "alarm: " + msg }

func falsePositives() string {
	var a alarm
	return a.panic("drill")
}

// Recovering a panic someone else raised is the containment boundary's
// job and stays legal; only originating one is a finding.
func recoverBoundary(f func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = errors.New("recovered")
		}
	}()
	f()
	return nil
}

// Fixture: API names at hooking sites checked against winapi's apiCatalog.
package fixture

import (
	"scarecrow/internal/core"
	"scarecrow/internal/winapi"
)

var HookedAPIs = []string{
	"RegOpenKeyEx",
	"RegOpenKeyExx", // want `hooked API "RegOpenKeyExx" is not in winapi's apiCatalog`
	"WMIQuery",      // want `hooked API "WMIQuery" is marked not hookable`
}

func install(sys *winapi.System, pid int) error {
	handlers := map[string]winapi.HookHandler{ // want `hooked APIs have no handler in this table: RegOpenKeyExx`
		"RegOpenKeyEx": nil,
		"WMIQuery":     nil,
		"CreateFil":    nil, // want `hook handler key "CreateFil" is not in winapi's apiCatalog` `handler for "CreateFil" is not in HookedAPIs`
	}
	for _, api := range HookedAPIs {
		if err := sys.InstallHook(pid, api, handlers[api]); err != nil {
			return err
		}
	}
	if err := sys.InstallHook(pid, "GetTickCountt", nil); err != nil { // want `API "GetTickCountt" passed to InstallHook is not in winapi's apiCatalog`
		return err
	}
	if err := sys.InstallHook(pid, "WMIQuery", nil); err != nil { // want `API "WMIQuery" passed to InstallHook is marked not hookable`
		return err
	}
	if err := sys.InstallKernelHook("NtQueryKey", nil); err != nil {
		return err
	}
	return sys.InstallKernelHook("GetTickCount", nil) // want `API "GetTickCount" passed to InstallKernelHook is not an Nt\* system call`
}

func buildTable() error {
	t := winapi.NewHookTable()
	if err := t.Hook("RegOpenKeyEx", nil); err != nil {
		return err
	}
	if err := t.Hook("WMIQuery", nil); err != nil { // want `API "WMIQuery" passed to Hook is marked not hookable`
		return err
	}
	return t.Hook("RegOpenKeyExy", nil) // want `API "RegOpenKeyExy" passed to Hook is not in winapi's apiCatalog`
}

func probe(c *winapi.Context) bool {
	if c.PrologueIntact("DeleteFile") {
		return true
	}
	return c.PrologueIntact("DeleteFilee") // want `API "DeleteFilee" passed to PrologueIntact is not in winapi's apiCatalog`
}

func report() core.TriggerReport {
	return core.TriggerReport{API: "NtQueryKeyy"} // want `TriggerReport.API "NtQueryKeyy" is not in winapi's apiCatalog`
}

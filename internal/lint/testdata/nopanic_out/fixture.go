// Fixture: the same panicking code loaded under a tooling import path,
// outside the nopanic scope — the analyzer must stay silent.
package fixture

func explode(err error) {
	if err != nil {
		panic(err)
	}
	panic("unconditional")
}

// Fixture: wall-clock and global-RNG use inside a simulation package
// (this fixture is loaded under a scarecrow/internal/winsim/... import
// path, which places it in the virtualclock scope).
package fixture

import (
	"math/rand"
	"time"
)

func wallClock(t0 time.Time) time.Duration {
	_ = time.Now()               // want `time\.Now reads the wall clock in simulation code`
	time.Sleep(time.Millisecond) // want `time\.Sleep reads the wall clock in simulation code`
	return time.Since(t0)        // want `time\.Since reads the wall clock in simulation code`
}

func globalRNG() int {
	rand.Shuffle(3, func(i, j int) {}) // want `rand\.Shuffle uses the global RNG source in simulation code`
	return rand.Intn(5)                // want `rand\.Intn uses the global RNG source in simulation code`
}

// Sanctioned: duration arithmetic and an explicitly seeded generator.
func deterministic(seed int64) (time.Duration, int) {
	rng := rand.New(rand.NewSource(seed))
	return 3 * time.Second, rng.Intn(5)
}

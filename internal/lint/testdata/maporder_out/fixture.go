// Fixture: the same order-leaking emission as the in-scope fixture, but
// loaded under a tooling import path — maporder must stay silent outside
// the determinism scope.
package fixture

import (
	"fmt"
	"strings"
)

// Render would be a finding inside MapOrderScope; here it is clean.
func Render(counts map[string]int) string {
	var sb strings.Builder
	for k, v := range counts {
		fmt.Fprintf(&sb, "%s=%d\n", k, v)
	}
	return sb.String()
}

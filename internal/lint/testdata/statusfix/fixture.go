// Fixture: mechanically fixable sites for the statusfix suggested-fix
// engine — dropped Status results and order-leaking map ranges. Loaded
// under a determinism-scoped import path so the maporder facts flow.
package fixfixture

import (
	"fmt"
	"strings"

	"scarecrow/internal/winapi"
)

// Probe drops both a single-result and a two-result Status.
func Probe(c *winapi.Context) {
	c.CreateFile(`C:\probe\vbox.sys`) // want `dropped winapi\.Status can be rewritten to an explicit _ = discard`
	c.ReadFile(`C:\config.ini`)       // want `dropped winapi\.Status can be rewritten to an explicit _, _ = discard`
}

// Render leaks iteration order into a builder.
func Render(counts map[string]int) string {
	var sb strings.Builder
	for k, v := range counts { // want `unsorted map range can be rewritten to the collect-sort-iterate form`
		fmt.Fprintf(&sb, "%s=%d\n", k, v)
	}
	return sb.String()
}

// Names accumulates keys without sorting.
func Names(m map[string]bool) []string {
	var out []string
	for k := range m { // want `unsorted map range can be rewritten to the collect-sort-iterate form`
		out = append(out, k)
	}
	return out
}

// HandledProbe consumes its statuses; nothing to fix.
func HandledProbe(c *winapi.Context) bool {
	if st := c.CreateFile(`C:\probe\vbox.sys`); !st.OK() {
		return false
	}
	_, st := c.ReadFile(`C:\config.ini`)
	return st.OK()
}

// GoDrop is a real statuscheck finding but has no mechanical rewrite;
// statusfix must not touch it.
func GoDrop(c *winapi.Context) {
	go c.Connect("10.0.0.1:443")
}

// Fixture: sanctioned ways of consuming a winapi.Status.
package fixture

import "scarecrow/internal/winapi"

func handlesStatus(c *winapi.Context) bool {
	if st := c.CreateFile(`C:\probe\vbox.sys`); !st.OK() {
		return false
	}
	data, st := c.ReadFile(`C:\config.ini`)
	if !st.OK() || len(data) == 0 {
		return false
	}
	// An explicit blank assignment documents a deliberate discard.
	_ = c.DeleteFile(`C:\drop.exe`)
	_, _ = c.ReadFile(`C:\other.ini`)
	// Calls with no Status in their results are never flagged.
	c.CPUID()
	return true
}

// Fixture: calls whose winapi.Status result is silently dropped.
package fixture

import "scarecrow/internal/winapi"

func dropsStatus(c *winapi.Context) {
	c.CreateFile(`C:\probe\vbox.sys`)      // want `result of c\.CreateFile contains a winapi\.Status that is silently discarded`
	c.ReadFile(`C:\config.ini`)            // want `result of c\.ReadFile contains a winapi\.Status that is silently discarded`
	c.RegOpenKeyEx(`HKLM\SOFTWARE\Oracle`) // want `result of c\.RegOpenKeyEx contains a winapi\.Status that is silently discarded`
	go c.Connect("10.0.0.1:443")           // want `result of c\.Connect contains a winapi\.Status that is discarded by the go statement`
	defer c.DeleteFile(`C:\drop.exe`)      // want `result of c\.DeleteFile contains a winapi\.Status that is discarded by the defer statement`
}

// Fixture: map iteration order flowing into ordered output. Loaded under
// a determinism-scoped import path; unsorted emission is a finding,
// commutative aggregation and the collect-then-sort idiom are clean.
package lintfixture

import (
	"fmt"
	"sort"
	"strings"
)

// Render streams map entries in iteration order: flagged.
func Render(counts map[string]int) string {
	var sb strings.Builder
	for k, v := range counts { // want `iteration order of counts flows into ordered output`
		fmt.Fprintf(&sb, "%s=%d\n", k, v)
	}
	return sb.String()
}

// Keys accumulates in iteration order and never sorts: flagged.
func Keys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m { // want `iteration order of m flows into ordered output`
		out = append(out, k)
	}
	return out
}

// SortedKeys is the sanctioned collect-sort-iterate idiom: clean.
func SortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Sum folds commutatively; order cannot be observed: clean.
func Sum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// Invert writes into another map; order cannot be observed: clean.
func Invert(m map[string]string) map[string]string {
	out := make(map[string]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// Broadcast pokes every subscriber; the annotation accepts the
// order-irrelevant send.
func Broadcast(subs map[chan struct{}]bool) {
	for ch := range subs { //maporder:ok — wakeup poke, order is moot
		select {
		case ch <- struct{}{}:
		default:
		}
	}
}

// Fixture: the same shape outside the lockfield scope — tooling and
// simulation packages are not held to the layout convention, so nothing
// here is a finding.
package fixture

import "sync"

type counter struct {
	mu    sync.Mutex
	count int
}

func peek(c *counter) int {
	return c.count
}

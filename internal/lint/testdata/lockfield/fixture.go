// Fixture: mu-guarded field discipline (loaded under a
// scarecrow/internal/service/... import path, inside the lockfield
// scope). Fields after `mu` are guarded; fields before it are free.
package fixture

import "sync"

type counter struct {
	// Immutable/atomic section: free to touch anywhere.
	name string

	mu    sync.Mutex
	count int
	notes []string
}

func (c *counter) bump() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.count++
}

// Owning-type methods are trusted even without a visible lock: helpers
// like this intentionally run under a caller's lock.
func (c *counter) bumpLocked() {
	c.count++
}

// A plain function that locks the same base expression may touch the
// guarded fields.
func drain(c *counter) []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := c.notes
	c.notes = nil
	return out
}

// The free section needs no lock.
func title(c *counter) string {
	return c.name
}

// Guarded access with no lock anywhere: flagged.
func peek(c *counter) int {
	return c.count // want `peek accesses c\.count, guarded by c\.mu`
}

// Locking one instance does not license touching another.
func transfer(a, b *counter) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.count += b.count // want `transfer accesses b\.count, guarded by b\.mu`
	b.notes = nil      // want `transfer accesses b\.notes, guarded by b\.mu`
}

// Closures inherit the enclosing function's visible locks.
func closureUnderLock(c *counter) func() {
	c.mu.Lock()
	defer c.mu.Unlock()
	return func() {
		c.count++
	}
}

// Construction precedes sharing: composite literals are not accesses.
func fresh() *counter {
	return &counter{name: "fresh", count: 1, notes: []string{"new"}}
}

type rwBox struct {
	mu   sync.RWMutex
	data map[string]int
}

// RLock is as good as Lock for the visibility rule.
func lookup(b *rwBox, k string) int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.data[k]
}

func race(b *rwBox, k string) int {
	return b.data[k] // want `race accesses b\.data, guarded by b\.mu`
}

// A pointer mutex field imposes no layout discipline (the lock is
// shared, not owned), and neither does a struct without one.
type ptrMu struct {
	mu   *sync.Mutex
	data int
}

type plain struct {
	data int
}

func free(p *ptrMu, q *plain) int {
	return p.data + q.data
}

// Fixture: the same wall-clock and global-RNG calls as the virtualclock
// fixture, but loaded under an import path outside the simulation scope —
// tooling (cmd/, internal/analysis) may legitimately read the wall clock,
// so none of these lines are findings.
package fixture

import (
	"math/rand"
	"time"
)

func wallClock(t0 time.Time) time.Duration {
	_ = time.Now()
	time.Sleep(time.Millisecond)
	return time.Since(t0)
}

func globalRNG() int {
	rand.Shuffle(3, func(i, j int) {})
	return rand.Intn(5)
}

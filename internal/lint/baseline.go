package lint

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// BaselineFile is the conventional baseline location at the module root.
const BaselineFile = ".scarelint-baseline.json"

// Baseline is the checked-in ledger of accepted legacy findings: new
// findings fail CI, baselined ones are reported but do not gate, and the
// file is only ever allowed to shrink (CI asserts that), so suppressions
// burn down explicitly instead of accreting.
//
// Entries match on (analyzer, file, message) — line numbers drift under
// unrelated edits and are deliberately not part of the identity.
type Baseline struct {
	// Version guards the schema; bump on incompatible change.
	Version  int             `json:"version"`
	Findings []BaselineEntry `json:"findings"`
}

// BaselineEntry identifies one accepted finding.
type BaselineEntry struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"` // slash-separated, relative to the module root
	Message  string `json:"message"`
}

func (e BaselineEntry) key() string {
	return e.Analyzer + "\x00" + e.File + "\x00" + e.Message
}

// LoadBaseline reads a baseline file. A missing file is an empty
// baseline, not an error.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &Baseline{Version: 1}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("lint: reading baseline: %w", err)
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("lint: parsing baseline %s: %w", path, err)
	}
	if b.Version != 1 {
		return nil, fmt.Errorf("lint: baseline %s has unsupported version %d", path, b.Version)
	}
	return &b, nil
}

// Apply marks diagnostics accepted by the baseline (Baselined=true) and
// returns the stale entries — baseline lines that matched nothing, which
// the shrink-only CI check expects to be removed.
func (b *Baseline) Apply(diags []Diagnostic, moduleRoot string) []BaselineEntry {
	index := make(map[string]bool, len(b.Findings))
	for _, e := range b.Findings {
		index[e.key()] = true
	}
	matched := make(map[string]bool, len(index))
	for i := range diags {
		e := entryFor(diags[i], moduleRoot)
		if index[e.key()] {
			diags[i].Baselined = true
			matched[e.key()] = true
		}
	}
	var stale []BaselineEntry
	for _, e := range b.Findings {
		if !matched[e.key()] {
			stale = append(stale, e)
		}
	}
	return stale
}

// WriteBaseline writes the non-info findings as a fresh baseline, sorted
// and deduplicated, for the burn-down workflow.
func WriteBaseline(path string, diags []Diagnostic, moduleRoot string) error {
	b := &Baseline{Version: 1}
	seen := make(map[string]bool)
	for _, d := range diags {
		if d.Severity == SeverityInfo {
			continue
		}
		e := entryFor(d, moduleRoot)
		if seen[e.key()] {
			continue
		}
		seen[e.key()] = true
		b.Findings = append(b.Findings, e)
	}
	sort.Slice(b.Findings, func(i, j int) bool { return b.Findings[i].key() < b.Findings[j].key() })
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func entryFor(d Diagnostic, moduleRoot string) BaselineEntry {
	return BaselineEntry{
		Analyzer: d.Analyzer,
		File:     relPath(d.Pos.Filename, moduleRoot),
		Message:  d.Message,
	}
}

// relPath renders filename relative to root with forward slashes, falling
// back to the absolute path when outside the root.
func relPath(filename, root string) string {
	if root == "" {
		return filepath.ToSlash(filename)
	}
	rel, err := filepath.Rel(root, filename)
	if err != nil || strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(filename)
	}
	return filepath.ToSlash(rel)
}

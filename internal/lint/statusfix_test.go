package lint

import "testing"

// statusfix consumes the facts statuscheck and maporder export (its
// Requires edges) and suggests rewrites only for the mechanically
// fixable shapes — a go/defer drop produces no suggestion.
func TestStatusFixFixture(t *testing.T) {
	RunFixture(t, StatusFix, "statusfix", "scarecrow/internal/service/fixfixture")
}

// Every statusfix diagnostic must actually carry a fix; the -fix mode
// depends on it.
func TestStatusFixDiagnosticsCarryFixes(t *testing.T) {
	loader := newTestLoader(t)
	loader.AddPackageDir("scarecrow/internal/service/fixfixture", fixtureDir(t, "statusfix"))
	pkg, err := loader.Load("scarecrow/internal/service/fixfixture")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run([]*Package{pkg}, []*Analyzer{StatusFix})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) == 0 {
		t.Fatal("no statusfix diagnostics on the fixture")
	}
	for _, d := range diags {
		if d.Severity != SeverityInfo {
			t.Errorf("%s: severity %s, want info", d.Pos, d.Severity)
		}
		if d.Fix == nil || len(d.Fix.Edits) == 0 {
			t.Errorf("%s: statusfix diagnostic without a fix", d.Pos)
		}
	}
}

package lint

import (
	"path/filepath"
	"testing"
)

// fixtureDir resolves testdata/<name> to an absolute path.
func fixtureDir(t *testing.T, name string) string {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("testdata", name))
	if err != nil {
		t.Fatalf("resolving fixture dir: %v", err)
	}
	return dir
}

package lint

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// RunFixture loads the fixture package under testdata/<fixture> as if it
// had the given import path, runs one analyzer over it, and compares the
// diagnostics against `// want "regexp"` expectation comments, in the
// style of golang.org/x/tools/go/analysis/analysistest. Fixture files may
// import real module packages (e.g. scarecrow/internal/winapi); the
// loader resolves them against the enclosing module.
//
// Expectation syntax: a comment of the form
//
//	// want "regexp" "another regexp"
//
// declares that each listed pattern must match the message of a distinct
// diagnostic reported on that line. Quoted and backquoted Go string
// literals are both accepted. Lines without a want comment must produce
// no diagnostics.
func RunFixture(t *testing.T, a *Analyzer, fixture, importPath string) {
	t.Helper()
	moduleRoot, err := FindModuleRoot(".")
	if err != nil {
		t.Fatalf("locating module root: %v", err)
	}
	loader, err := NewLoader(moduleRoot)
	if err != nil {
		t.Fatalf("building loader: %v", err)
	}
	dir, err := filepath.Abs(filepath.Join("testdata", fixture))
	if err != nil {
		t.Fatalf("resolving fixture dir: %v", err)
	}
	loader.AddPackageDir(importPath, dir)
	pkg, err := loader.Load(importPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", fixture, err)
	}
	diags, err := Run([]*Package{pkg}, []*Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	wants := collectWants(t, pkg)
	used := make([]bool, len(diags))
	for _, w := range wants {
		matched := false
		for i, d := range diags {
			if used[i] || d.Pos.Filename != w.file || d.Pos.Line != w.line {
				continue
			}
			if w.re.MatchString(d.Message) {
				used[i] = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s:%d: no diagnostic matching %q", filepath.Base(w.file), w.line, w.re)
		}
	}
	for i, d := range diags {
		if !used[i] {
			t.Errorf("%s:%d: unexpected diagnostic: %s", filepath.Base(d.Pos.Filename), d.Pos.Line, d.Message)
		}
	}
}

type want struct {
	file string
	line int
	re   *regexp.Regexp
}

func collectWants(t *testing.T, pkg *Package) []want {
	t.Helper()
	var wants []want
	for _, f := range pkg.Syntax {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				patterns, err := parseWantPatterns(text)
				if err != nil {
					t.Fatalf("%s:%d: bad want comment: %v", filepath.Base(pos.Filename), pos.Line, err)
				}
				for _, p := range patterns {
					re, err := regexp.Compile(p)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", filepath.Base(pos.Filename), pos.Line, p, err)
					}
					wants = append(wants, want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}

// parseWantPatterns splits a want comment body into its Go string
// literals.
func parseWantPatterns(text string) ([]string, error) {
	var out []string
	rest := strings.TrimSpace(text)
	for rest != "" {
		var lit string
		switch rest[0] {
		case '"':
			end := -1
			for i := 1; i < len(rest); i++ {
				if rest[i] == '"' && rest[i-1] != '\\' {
					end = i
					break
				}
			}
			if end < 0 {
				return nil, fmt.Errorf("unterminated string in %q", rest)
			}
			var err error
			lit, err = strconv.Unquote(rest[:end+1])
			if err != nil {
				return nil, err
			}
			rest = strings.TrimSpace(rest[end+1:])
		case '`':
			end := strings.IndexByte(rest[1:], '`')
			if end < 0 {
				return nil, fmt.Errorf("unterminated raw string in %q", rest)
			}
			lit = rest[1 : end+1]
			rest = strings.TrimSpace(rest[end+2:])
		default:
			return nil, fmt.Errorf("expected string literal at %q", rest)
		}
		out = append(out, lit)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no patterns")
	}
	return out, nil
}

package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// tracePath is the import path of the kernel-event stream package.
const tracePath = "scarecrow/internal/trace"

// traceEventRequired lists the Event fields every emission site must
// populate: Kind classifies the record, PID and Image attribute it to a
// process, and Target carries the acted-on object (for KindAPICall, the
// API name). The labrunner verdict diff and the JSONL codec key on these
// fields, so a half-filled event corrupts the with/without-Scarecrow
// comparison silently.
var traceEventRequired = []string{"Kind", "PID", "Image", "Target"}

// TraceComplete requires trace.Event composite literals outside the trace
// package itself to populate the identifying fields explicitly. Inside
// package trace, zero values are legitimate (decoders and diff buffers
// fill fields programmatically).
var TraceComplete = &Analyzer{
	Name: "tracecomplete",
	Doc:  "require trace.Event literals to populate Kind, PID, Image and Target",
	Run:  runTraceComplete,
}

func runTraceComplete(pass *Pass) error {
	if pass.Pkg == nil || pass.Pkg.Path() == tracePath {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok || !isTraceEvent(pass.TypesInfo, lit) {
				return true
			}
			if len(lit.Elts) > 0 {
				if _, ok := lit.Elts[0].(*ast.KeyValueExpr); !ok {
					// Positional literals must name every field to compile.
					return true
				}
			}
			present := make(map[string]bool, len(lit.Elts))
			for _, elt := range lit.Elts {
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					if key, ok := kv.Key.(*ast.Ident); ok {
						present[key.Name] = true
					}
				}
			}
			var missing []string
			for _, field := range traceEventRequired {
				if !present[field] {
					missing = append(missing, field)
				}
			}
			if len(missing) > 0 {
				pass.Reportf(lit.Pos(), "trace.Event literal must identify the event for the labrunner diff; missing: %s",
					strings.Join(missing, ", "))
			}
			return true
		})
	}
	return nil
}

func isTraceEvent(info *types.Info, lit *ast.CompositeLit) bool {
	tv, ok := info.Types[lit]
	if !ok {
		return false
	}
	named, ok := types.Unalias(tv.Type).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Event" && obj.Pkg() != nil && obj.Pkg().Path() == tracePath
}

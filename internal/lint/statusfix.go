package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"strconv"
	"strings"
)

// StatusFix is the suggested-fix engine behind `scarelint -fix`. It
// consumes the facts statuscheck and maporder export for the package
// under analysis (the Requires edge is what orders them first) and turns
// each mechanically fixable site into an info-severity diagnostic
// carrying a SuggestedFix:
//
//   - a silently dropped winapi.Status becomes an explicit discard
//     (`c.Close()` → `_ = c.Close()`, one blank per result);
//   - an order-leaking map range becomes the collect-sort-iterate form
//     (`for k := range m {` → collect keys, sort.Strings, range the
//     sorted slice), adding the sort import when missing.
//
// Fixes are applied by ApplyFixes; every rewrite is gofmt-clean and
// idempotent — the rewritten code no longer matches either analyzer, so
// a second -fix run is a no-op.
var StatusFix = &Analyzer{
	Name:     "statusfix",
	Doc:      "suggest mechanical rewrites for dropped Status results and unsorted map ranges (applied by -fix)",
	Severity: SeverityInfo,
	Requires: []*Analyzer{StatusCheck, MapOrder},
	Run:      runStatusFix,
}

func runStatusFix(pass *Pass) error {
	if pass.Pkg == nil {
		return nil
	}
	path := pass.Pkg.Path()

	var dropped droppedStatusFact
	if pass.ImportAnalyzerFact(StatusCheck, path, &dropped) {
		for _, site := range dropped.sites {
			discard := strings.Repeat("_, ", site.results-1) + "_ = "
			fix := &SuggestedFix{
				Message: "assign the result explicitly",
				Edits: []TextEdit{{
					Pos:     site.call.Pos(),
					End:     site.call.Pos(),
					NewText: discard,
				}},
			}
			pass.ReportFix(site.call.Pos(), fix, "dropped winapi.Status can be rewritten to an explicit %sdiscard (run scarelint -fix)", discard)
		}
	}

	var unsorted unsortedRangeFact
	if pass.ImportAnalyzerFact(MapOrder, path, &unsorted) {
		names := newNameAllocator(unsorted.sites)
		for _, site := range unsorted.sites {
			if !site.fixable {
				continue
			}
			fix := buildSortedRangeFix(pass, site, names)
			if fix == nil {
				continue
			}
			pass.ReportFix(site.rng.For, fix, "unsorted map range can be rewritten to the collect-sort-iterate form (run scarelint -fix)")
		}
	}
	return nil
}

// nameAllocator hands out slice names that collide neither with any
// identifier already in the fixed files nor with each other.
type nameAllocator struct {
	taken map[string]bool
}

func newNameAllocator(sites []unsortedRangeSite) *nameAllocator {
	a := &nameAllocator{taken: make(map[string]bool)}
	seen := make(map[*ast.File]bool)
	for _, site := range sites {
		if seen[site.file] {
			continue
		}
		seen[site.file] = true
		ast.Inspect(site.file, func(n ast.Node) bool {
			if ident, ok := n.(*ast.Ident); ok {
				a.taken[ident.Name] = true
			}
			return true
		})
	}
	return a
}

func (a *nameAllocator) next() string {
	for i := 0; ; i++ {
		name := "keys"
		if i > 0 {
			name = fmt.Sprintf("keys%d", i+1)
		}
		if !a.taken[name] {
			a.taken[name] = true
			return name
		}
	}
}

// buildSortedRangeFix rewrites
//
//	for k, v := range m { body }
//
// into
//
//	keys := make([]string, 0, len(m))
//	for k := range m {
//		keys = append(keys, k)
//	}
//	sort.Strings(keys)
//	for _, k := range keys {
//		v := m[k]
//		body
//	}
func buildSortedRangeFix(pass *Pass, site unsortedRangeSite, names *nameAllocator) *SuggestedFix {
	rng := site.rng
	key, ok := rng.Key.(*ast.Ident)
	if !ok {
		return nil
	}
	mapExpr := nodeString(pass.Fset, rng.X)
	slice := names.next()

	var header strings.Builder
	fmt.Fprintf(&header, "%s := make([]string, 0, len(%s))\n", slice, mapExpr)
	fmt.Fprintf(&header, "for %s := range %s {\n", key.Name, mapExpr)
	fmt.Fprintf(&header, "%s = append(%s, %s)\n", slice, slice, key.Name)
	fmt.Fprintf(&header, "}\n")
	fmt.Fprintf(&header, "sort.Strings(%s)\n", slice)
	fmt.Fprintf(&header, "for _, %s := range %s ", key.Name, slice)

	edits := []TextEdit{{
		Pos:     rng.For,
		End:     rng.Body.Lbrace,
		NewText: header.String(),
	}}
	if v, ok := rng.Value.(*ast.Ident); ok && v.Name != "_" {
		edits = append(edits, TextEdit{
			Pos:     rng.Body.Lbrace + 1,
			End:     rng.Body.Lbrace + 1,
			NewText: fmt.Sprintf("\n%s := %s[%s]", v.Name, mapExpr, key.Name),
		})
	}
	if imp := sortImportEdit(site.file); imp != nil {
		edits = append(edits, *imp)
	}
	return &SuggestedFix{Message: "sort the keys before iterating", Edits: edits}
}

// sortImportEdit returns the edit that adds `"sort"` to the file's
// imports, or nil when it is already imported. Identical import edits
// from several fixes in one file deduplicate in ApplyFixes.
func sortImportEdit(f *ast.File) *TextEdit {
	var lastImport *ast.GenDecl
	for _, decl := range f.Decls {
		gen, ok := decl.(*ast.GenDecl)
		if !ok || gen.Tok != token.IMPORT {
			continue
		}
		lastImport = gen
		for _, spec := range gen.Specs {
			imp, ok := spec.(*ast.ImportSpec)
			if !ok {
				continue
			}
			if path, err := strconv.Unquote(imp.Path.Value); err == nil && path == "sort" {
				return nil
			}
		}
	}
	if lastImport == nil {
		// No imports at all: open a block after the package clause.
		pos := f.Name.End()
		return &TextEdit{Pos: pos, End: pos, NewText: "\n\nimport \"sort\"\n"}
	}
	if lastImport.Rparen.IsValid() {
		// Grouped import: slot the path in before the closing paren;
		// gofmt re-sorts the block.
		return &TextEdit{Pos: lastImport.Rparen, End: lastImport.Rparen, NewText: "\"sort\"\n"}
	}
	// Single ungrouped import.
	pos := lastImport.End()
	return &TextEdit{Pos: pos, End: pos, NewText: "\nimport \"sort\"\n"}
}

package lint

import (
	"fmt"
	"go/format"
	"go/token"
	"os"
	"sort"
)

// resolvedEdit is one TextEdit resolved to byte offsets in a file.
type resolvedEdit struct {
	file  string
	start int
	end   int
	text  string
}

func (e resolvedEdit) key() string {
	return fmt.Sprintf("%s:%d:%d:%s", e.file, e.start, e.end, e.text)
}

// ApplyFixes applies every suggested fix carried by the diagnostics to
// the files on disk and returns the sorted list of rewritten files. Each
// rewritten file is passed through go/format, so applied fixes are always
// gofmt-clean. Fixes are applied atomically per diagnostic: a fix whose
// edits would overlap an already-accepted edit is skipped whole (its
// count is returned so callers can surface it). Identical edits from
// separate fixes — e.g. two fixes in one file both adding the sort
// import — deduplicate.
func ApplyFixes(fset *token.FileSet, diags []Diagnostic) (changed []string, skipped int, err error) {
	accepted := make(map[string][]resolvedEdit) // file -> non-overlapping edits
	seen := make(map[string]bool)               // exact-duplicate suppression

	for _, d := range diags {
		if d.Fix == nil {
			continue
		}
		var resolved []resolvedEdit
		conflict := false
		for _, edit := range d.Fix.Edits {
			start := fset.Position(edit.Pos)
			end := fset.Position(edit.End)
			if !start.IsValid() || !end.IsValid() || start.Filename != end.Filename || end.Offset < start.Offset {
				conflict = true
				break
			}
			re := resolvedEdit{file: start.Filename, start: start.Offset, end: end.Offset, text: edit.NewText}
			if seen[re.key()] {
				continue // same edit already accepted from another fix
			}
			for _, have := range accepted[re.file] {
				if overlaps(re, have) {
					conflict = true
					break
				}
			}
			if conflict {
				break
			}
			resolved = append(resolved, re)
		}
		if conflict {
			skipped++
			continue
		}
		for _, re := range resolved {
			accepted[re.file] = append(accepted[re.file], re)
			seen[re.key()] = true
		}
	}

	for file, edits := range accepted {
		src, err := os.ReadFile(file)
		if err != nil {
			return nil, skipped, fmt.Errorf("lint: applying fixes: %w", err)
		}
		sort.Slice(edits, func(i, j int) bool { return edits[i].start > edits[j].start })
		out := src
		for _, e := range edits {
			if e.end > len(out) {
				return nil, skipped, fmt.Errorf("lint: fix edit outside %s (offset %d > %d bytes)", file, e.end, len(out))
			}
			out = append(out[:e.start], append([]byte(e.text), out[e.end:]...)...)
		}
		formatted, err := format.Source(out)
		if err != nil {
			return nil, skipped, fmt.Errorf("lint: fixed %s does not parse: %w", file, err)
		}
		if err := os.WriteFile(file, formatted, 0o644); err != nil {
			return nil, skipped, fmt.Errorf("lint: writing fixed %s: %w", file, err)
		}
		changed = append(changed, file)
	}
	sort.Strings(changed)
	return changed, skipped, nil
}

// overlaps reports whether two edits touch the same bytes. Two pure
// insertions at the same offset conflict (their order would be
// ambiguous); an insertion at the boundary of a replacement does not.
func overlaps(a, b resolvedEdit) bool {
	if a.start == a.end && b.start == b.end {
		return a.start == b.start
	}
	return a.start < b.end && b.start < a.end
}

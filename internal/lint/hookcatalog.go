package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strconv"
	"strings"
)

// HookCatalog cross-checks every string-literal API name that flows into
// the hooking machinery against apiCatalog in internal/winapi/catalog.go,
// so a typo in a deceptive-resource hook fails the build instead of
// silently never firing (the runtime validation in InstallHook only
// triggers when the faulty path executes). Checked sites:
//
//   - the api argument of (*winapi.System).InstallHook and
//     InstallKernelHook, and of (*winapi.Context).invoke,
//     ReadFunctionPrologue and PrologueIntact;
//   - keys of map[string]winapi.HookHandler composite literals;
//   - elements of []string variables named HookedAPIs (the paper's 29-API
//     deceptive surface);
//   - string literals assigned to the API field of TriggerReport literals.
//
// It also enforces hook coverage: inside a function that both declares a
// map[string]winapi.HookHandler literal and ranges over a package-local
// HookedAPIs variable to install it, the map keys and the HookedAPIs
// elements must be exactly the same set. That turns the engine's runtime
// "no handler for hooked API" error into a compile-time diagnostic and
// keeps the hook surface from drifting out of sync with its handlers.
var HookCatalog = &Analyzer{
	Name: "hookcatalog",
	Doc:  "validate string-literal API names against winapi's apiCatalog and keep HookedAPIs in sync with handler tables",
	Run:  runHookCatalog,
}

// apiNameArg maps the winapi functions that accept an API name to the
// index of that argument.
var apiNameArg = map[string]int{
	"InstallHook":          1,
	"Hook":                 0,
	"InstallKernelHook":    0,
	"invoke":               0,
	"ReadFunctionPrologue": 0,
	"PrologueIntact":       0,
}

func runHookCatalog(pass *Pass) error {
	if pass.Pkg == nil {
		return nil
	}
	if pass.Pkg.Path() != winapiPath && !importsWinapi(pass.Pkg) {
		return nil
	}
	files, err := pass.PackageSyntax(winapiPath)
	if err != nil {
		return err
	}
	catalog := extractCatalog(files)
	if len(catalog) == 0 {
		// The catalog declaration moved or changed shape; that must fail
		// loudly, not silently disable the analyzer.
		pass.Reportf(pass.Files[0].Package, "apiCatalog map literal not found in %s; hookcatalog cannot validate API names", winapiPath)
		return nil
	}

	// hookedVars maps a package-local []string var named HookedAPIs to its
	// literal elements (with positions), for the coverage check.
	hookedVars := make(map[types.Object][]apiName)

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if spec, ok := n.(*ast.ValueSpec); ok {
				pass.checkHookedAPIsSpec(spec, catalog, hookedVars)
			}
			return true
		})
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				pass.checkAPINameCall(n, catalog)
			case *ast.CompositeLit:
				if pass.isHookHandlerMap(n) {
					pass.checkHandlerMapKeys(n, catalog)
				} else {
					pass.checkTriggerReport(n, catalog)
				}
			case *ast.FuncDecl:
				pass.checkHookCoverage(n, hookedVars)
			}
			return true
		})
	}
	return nil
}

type apiName struct {
	name string
	pos  ast.Node
}

func importsWinapi(pkg *types.Package) bool {
	for _, imp := range pkg.Imports() {
		if imp.Path() == winapiPath {
			return true
		}
	}
	return false
}

// extractCatalog reads the apiCatalog map literal out of the winapi
// package syntax and returns name -> hookable.
func extractCatalog(files []*ast.File) map[string]bool {
	catalog := make(map[string]bool)
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			spec, ok := n.(*ast.ValueSpec)
			if !ok {
				return true
			}
			for i, name := range spec.Names {
				if name.Name != "apiCatalog" || i >= len(spec.Values) {
					continue
				}
				lit, ok := spec.Values[i].(*ast.CompositeLit)
				if !ok {
					continue
				}
				for _, elt := range lit.Elts {
					kv, ok := elt.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					key, ok := stringLiteral(kv.Key)
					if !ok {
						continue
					}
					catalog[key] = metaIsHookable(kv.Value)
				}
			}
			return true
		})
	}
	return catalog
}

// metaIsHookable reads the hookable field from an apiMeta composite
// literal.
func metaIsHookable(v ast.Expr) bool {
	lit, ok := v.(*ast.CompositeLit)
	if !ok {
		return false
	}
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "hookable" {
			if val, ok := kv.Value.(*ast.Ident); ok {
				return val.Name == "true"
			}
		}
	}
	return false
}

func stringLiteral(e ast.Expr) (string, bool) {
	lit, ok := e.(*ast.BasicLit)
	if !ok || lit.Kind.String() != "STRING" {
		return "", false
	}
	s, err := strconv.Unquote(lit.Value)
	if err != nil {
		return "", false
	}
	return s, true
}

// checkAPINameCall validates the literal API-name argument of hooking
// entry points.
func (p *Pass) checkAPINameCall(call *ast.CallExpr, catalog map[string]bool) {
	var obj types.Object
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		obj = p.TypesInfo.Uses[fun.Sel]
	case *ast.Ident:
		obj = p.TypesInfo.Uses[fun]
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != winapiPath {
		return
	}
	argIdx, ok := apiNameArg[fn.Name()]
	if !ok || argIdx >= len(call.Args) {
		return
	}
	name, ok := stringLiteral(call.Args[argIdx])
	if !ok {
		return
	}
	hookable, known := catalog[name]
	switch {
	case !known:
		p.Reportf(call.Args[argIdx].Pos(), "API %q passed to %s is not in winapi's apiCatalog", name, fn.Name())
	case (fn.Name() == "InstallHook" || fn.Name() == "Hook") && !hookable:
		p.Reportf(call.Args[argIdx].Pos(), "API %q passed to %s is marked not hookable in winapi's apiCatalog", name, fn.Name())
	case fn.Name() == "InstallKernelHook" && !strings.HasPrefix(name, "Nt"):
		p.Reportf(call.Args[argIdx].Pos(), "API %q passed to InstallKernelHook is not an Nt* system call; kernel hooks cover the syscall gate only", name)
	}
}

// isHookHandlerMap reports whether the composite literal has type
// map[string]winapi.HookHandler.
func (p *Pass) isHookHandlerMap(lit *ast.CompositeLit) bool {
	tv, ok := p.TypesInfo.Types[lit]
	if !ok {
		return false
	}
	m, ok := types.Unalias(tv.Type).Underlying().(*types.Map)
	if !ok {
		return false
	}
	if b, ok := m.Key().Underlying().(*types.Basic); !ok || b.Kind() != types.String {
		return false
	}
	named, ok := types.Unalias(m.Elem()).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "HookHandler" && obj.Pkg() != nil && obj.Pkg().Path() == winapiPath
}

func (p *Pass) checkHandlerMapKeys(lit *ast.CompositeLit, catalog map[string]bool) {
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		name, ok := stringLiteral(kv.Key)
		if !ok {
			continue
		}
		if _, known := catalog[name]; !known {
			p.Reportf(kv.Key.Pos(), "hook handler key %q is not in winapi's apiCatalog", name)
		}
	}
}

// checkHookedAPIsSpec validates the elements of a []string variable named
// HookedAPIs and records them for the coverage check.
func (p *Pass) checkHookedAPIsSpec(spec *ast.ValueSpec, catalog map[string]bool, hookedVars map[types.Object][]apiName) {
	for i, ident := range spec.Names {
		if ident.Name != "HookedAPIs" || i >= len(spec.Values) {
			continue
		}
		lit, ok := spec.Values[i].(*ast.CompositeLit)
		if !ok {
			continue
		}
		obj := p.TypesInfo.Defs[ident]
		if obj == nil || !isStringSlice(obj.Type()) {
			continue
		}
		var names []apiName
		for _, elt := range lit.Elts {
			name, ok := stringLiteral(elt)
			if !ok {
				continue
			}
			names = append(names, apiName{name: name, pos: elt})
			hookable, known := catalog[name]
			if !known {
				p.Reportf(elt.Pos(), "hooked API %q is not in winapi's apiCatalog", name)
			} else if !hookable {
				p.Reportf(elt.Pos(), "hooked API %q is marked not hookable in winapi's apiCatalog", name)
			}
		}
		hookedVars[obj] = names
	}
}

func isStringSlice(t types.Type) bool {
	s, ok := types.Unalias(t).Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.String
}

// checkHookCoverage enforces the two-way HookedAPIs <-> handler-table
// correspondence inside one installation function.
func (p *Pass) checkHookCoverage(fn *ast.FuncDecl, hookedVars map[types.Object][]apiName) {
	if fn.Body == nil || len(hookedVars) == 0 {
		return
	}
	var ranged []apiName
	rangesHooked := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		var obj types.Object
		switch x := rng.X.(type) {
		case *ast.Ident:
			obj = p.TypesInfo.Uses[x]
		case *ast.SelectorExpr:
			obj = p.TypesInfo.Uses[x.Sel]
		}
		if names, ok := hookedVars[obj]; ok {
			rangesHooked = true
			ranged = append(ranged, names...)
		}
		return true
	})
	if !rangesHooked {
		return
	}
	mapKeys := make(map[string]bool)
	var keyNames []apiName
	var mapLit *ast.CompositeLit
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		lit, ok := n.(*ast.CompositeLit)
		if !ok || !p.isHookHandlerMap(lit) {
			return true
		}
		if mapLit == nil {
			mapLit = lit
		}
		for _, elt := range lit.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				if name, ok := stringLiteral(kv.Key); ok {
					mapKeys[name] = true
					keyNames = append(keyNames, apiName{name: name, pos: kv.Key})
				}
			}
		}
		return true
	})
	if mapLit == nil {
		return
	}
	inHooked := make(map[string]bool, len(ranged))
	for _, n := range ranged {
		inHooked[n.name] = true
	}
	var missing []string
	for _, n := range ranged {
		if !mapKeys[n.name] {
			missing = append(missing, n.name)
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		p.Reportf(mapLit.Pos(), "hooked APIs have no handler in this table: %s", strings.Join(missing, ", "))
	}
	for _, k := range keyNames {
		if !inHooked[k.name] {
			p.Reportf(k.pos.Pos(), "handler for %q is not in HookedAPIs and is never installed by this loop", k.name)
		}
	}
}

// checkTriggerReport validates literal API names recorded in trigger
// reports (the IPC records the paper's Figure 5 statistics are built from).
func (p *Pass) checkTriggerReport(lit *ast.CompositeLit, catalog map[string]bool) {
	tv, ok := p.TypesInfo.Types[lit]
	if !ok {
		return
	}
	named, ok := types.Unalias(tv.Type).(*types.Named)
	if !ok || named.Obj().Name() != "TriggerReport" {
		return
	}
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		if key, ok := kv.Key.(*ast.Ident); !ok || key.Name != "API" {
			continue
		}
		name, ok := stringLiteral(kv.Value)
		if !ok {
			continue
		}
		if _, known := catalog[name]; !known {
			p.Reportf(kv.Value.Pos(), "TriggerReport.API %q is not in winapi's apiCatalog", name)
		}
	}
}

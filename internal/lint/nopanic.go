package lint

import (
	"go/ast"
	"go/types"
)

// NoPanicScope lists the package trees whose failures must stay contained:
// the lab cluster (internal/analysis) promises that one bad run never kills
// a corpus sweep, and the deployment framework (internal/core) returns
// errors so the lab can keep that promise. A panic in either tree would
// bypass the containment boundary (Lab.runContained) and take a whole
// sweep down, so panics there are findings. The long-running serving
// layers — the campaign engine and the scale-out front — make the same
// promise to their callers: one bad cell or one bad backend must degrade,
// never crash the process. The deterrence tier (internal/deter) runs
// inside live monitored streams, where a panic would tear down an SSE
// connection mid-run — planting and detection must return errors. The
// only sanctioned panic/recover channels — winsim.BudgetExceeded and the
// scheduler's exitPanic — live outside this scope.
var NoPanicScope = []string{
	"scarecrow/internal/analysis",
	"scarecrow/internal/core",
	"scarecrow/internal/campaign",
	"scarecrow/internal/front",
	"scarecrow/internal/deter",
}

// NoPanic forbids calls to the panic builtin in the contained packages.
var NoPanic = &Analyzer{
	Name: "nopanic",
	Doc:  "forbid panic in fault-contained packages (internal/analysis, internal/core, internal/campaign, internal/front, internal/deter); return an error instead",
	Run:  runNoPanic,
}

func runNoPanic(pass *Pass) error {
	if pass.Pkg == nil || !packagePathIn(pass.Pkg.Path(), NoPanicScope) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			ident, ok := call.Fun.(*ast.Ident)
			if !ok {
				return true
			}
			// Resolve through the type checker: a method or local function
			// that happens to be named "panic" is not the builtin.
			if _, isBuiltin := pass.TypesInfo.Uses[ident].(*types.Builtin); !isBuiltin || ident.Name != "panic" {
				return true
			}
			pass.Reportf(call.Pos(), "panic in a fault-contained package; return an error instead (sweeps recover panics, but contained code must not originate them)")
			return true
		})
	}
	return nil
}

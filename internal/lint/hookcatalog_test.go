package lint

import "testing"

func TestHookCatalog(t *testing.T) {
	RunFixture(t, HookCatalog, "hookcatalog", "scarecrow/internal/lint/testdata/hookcatalog")
}

// TestHookCatalogOnRealEngine pins the invariant the analyzer was built
// for: the seed's 29-API deceptive surface in internal/core must stay in
// sync with winapi's catalog and the engine's handler table, with zero
// findings.
func TestHookCatalogOnRealEngine(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{"scarecrow/internal/core", "scarecrow/internal/winapi"} {
		pkg, err := loader.Load(path)
		if err != nil {
			t.Fatalf("loading %s: %v", path, err)
		}
		diags, err := Run([]*Package{pkg}, []*Analyzer{HookCatalog})
		if err != nil {
			t.Fatalf("running hookcatalog on %s: %v", path, err)
		}
		for _, d := range diags {
			t.Errorf("unexpected finding in %s: %s", path, d)
		}
	}
}

package lint

import (
	"encoding/json"
	"fmt"
	"io"
)

// Machine-readable emitters for cmd/scarelint: a stable JSON report for
// scripting and a SARIF 2.1.0 log for code-scanning UIs and the CI
// artifact. Both render file paths relative to the module root so output
// is reproducible across checkouts.

// JSONReport is the -json output document.
type JSONReport struct {
	Version  string        `json:"version"`
	Findings []JSONFinding `json:"findings"`
}

// JSONFinding is one diagnostic on the JSON wire.
type JSONFinding struct {
	Analyzer  string `json:"analyzer"`
	Severity  string `json:"severity"`
	File      string `json:"file"`
	Line      int    `json:"line"`
	Column    int    `json:"column"`
	Message   string `json:"message"`
	Baselined bool   `json:"baselined,omitempty"`
	Fixable   bool   `json:"fixable,omitempty"`
}

// EmitJSON writes the diagnostics as an indented JSON report.
func EmitJSON(w io.Writer, diags []Diagnostic, moduleRoot string) error {
	report := JSONReport{Version: "scarelint/2", Findings: []JSONFinding{}}
	for _, d := range diags {
		report.Findings = append(report.Findings, JSONFinding{
			Analyzer:  d.Analyzer,
			Severity:  d.Severity.String(),
			File:      relPath(d.Pos.Filename, moduleRoot),
			Line:      d.Pos.Line,
			Column:    d.Pos.Column,
			Message:   d.Message,
			Baselined: d.Baselined,
			Fixable:   d.Fix != nil,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}

// Minimal SARIF 2.1.0 object model — only the properties the spec marks
// required plus the ones code-scanning consumers key on.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`

	// Suppressions carries baseline acceptance; an empty (absent) list
	// means the finding is live.
	Suppressions []sarifSuppression `json:"suppressions,omitempty"`
}

type sarifSuppression struct {
	Kind string `json:"kind"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// sarifLevel maps scarelint severities onto SARIF's level enum.
func sarifLevel(s Severity) string {
	switch s {
	case SeverityError:
		return "error"
	case SeverityWarn:
		return "warning"
	default:
		return "note"
	}
}

// EmitSARIF writes the diagnostics as a SARIF 2.1.0 log. The analyzers
// argument populates the rule table (one rule per analyzer, findings
// reference rules by id).
func EmitSARIF(w io.Writer, diags []Diagnostic, analyzers []*Analyzer, moduleRoot string) error {
	rules := make([]sarifRule, 0, len(analyzers))
	for _, a := range analyzers {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: a.Doc}})
	}
	results := []sarifResult{}
	for _, d := range diags {
		r := sarifResult{
			RuleID:  d.Analyzer,
			Level:   sarifLevel(d.Severity),
			Message: sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: relPath(d.Pos.Filename, moduleRoot)},
					Region:           sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
				},
			}},
		}
		if d.Baselined {
			r.Suppressions = []sarifSuppression{{Kind: "external"}}
		}
		results = append(results, r)
	}
	log := sarifLog{
		Schema:  "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool: sarifTool{Driver: sarifDriver{
				Name:           "scarelint",
				InformationURI: "https://example.invalid/scarecrow/scarelint",
				Rules:          rules,
			}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(log); err != nil {
		return fmt.Errorf("lint: encoding SARIF: %w", err)
	}
	return nil
}

package lint

import (
	"go/ast"
	"go/types"
)

// VirtualClockScope lists the package trees that must be deterministic:
// everything malware can observe flows through the virtual clock
// (winsim.Clock) and the machine's seeded RNG (Machine.Rand), so that the
// same profile and seed replay bit for bit and the labrunner's with/without
// trace diff never sees wall-clock jitter. Wall-clock and global-RNG reads
// in these trees are findings.
var VirtualClockScope = []string{
	"scarecrow/internal/winsim",
	"scarecrow/internal/winapi",
	"scarecrow/internal/core",
}

// VirtualClock forbids wall-clock time and the global math/rand source
// inside the simulation packages.
var VirtualClock = &Analyzer{
	Name: "virtualclock",
	Doc:  "forbid time.Now/time.Sleep and the global math/rand source in simulation packages",
	Run:  runVirtualClock,
}

// bannedTimeFuncs are the package time functions that read or wait on the
// wall clock. Pure-value helpers (time.Duration arithmetic, constants,
// ParseDuration) remain allowed.
var bannedTimeFuncs = map[string]string{
	"Now":       "read the virtual clock (winsim.Clock.Now) instead",
	"Sleep":     "advance the virtual clock (winsim.Clock.Advance or Context.Sleep) instead",
	"Since":     "subtract winsim.Clock.Now values instead",
	"Until":     "subtract winsim.Clock.Now values instead",
	"After":     "schedule on the virtual clock instead",
	"AfterFunc": "schedule on the virtual clock instead",
	"Tick":      "schedule on the virtual clock instead",
	"NewTimer":  "schedule on the virtual clock instead",
	"NewTicker": "schedule on the virtual clock instead",
}

// bannedRandFuncs are the math/rand package-level functions backed by the
// process-global source. Building a seeded generator (rand.New,
// rand.NewSource) is the sanctioned pattern and stays legal.
var bannedRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true,
	"NormFloat64": true, "Perm": true, "Shuffle": true,
	"Seed": true, "Read": true,
}

func runVirtualClock(pass *Pass) error {
	if pass.Pkg == nil || !packagePathIn(pass.Pkg.Path(), VirtualClockScope) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				// Methods (e.g. a seeded *rand.Rand's Intn) are fine; only
				// the package-level wall-clock/global-source functions are
				// banned.
				return true
			}
			switch fn.Pkg().Path() {
			case "time":
				if hint, banned := bannedTimeFuncs[fn.Name()]; banned {
					pass.Reportf(sel.Pos(), "time.%s reads the wall clock in simulation code; %s", fn.Name(), hint)
				}
			case "math/rand", "math/rand/v2":
				if bannedRandFuncs[fn.Name()] {
					pass.Reportf(sel.Pos(), "rand.%s uses the global RNG source in simulation code; use the machine's seeded generator (winsim.Machine.Rand) instead", fn.Name())
				}
			}
			return true
		})
	}
	return nil
}

package lint

import "testing"

// The fixture miniature of winapi has two phantom catalog entries; the
// whole-program verdict must report exactly those.
func TestAPIReachFixture(t *testing.T) {
	RunFixture(t, APIReach, "apireach", winapiPath)
}

// TestAPIReachOnRealModule pins the camouflage-surface invariant: every
// apiCatalog entry in the real internal/winapi is reachable from a
// Context method or hook-dispatch table somewhere in the module.
func TestAPIReachOnRealModule(t *testing.T) {
	loader := newTestLoader(t)
	paths, err := loader.Expand([]string{"./..."}, loader.ModuleRoot)
	if err != nil {
		t.Fatal(err)
	}
	var pkgs []*Package
	for _, p := range paths {
		pkg, err := loader.Load(p)
		if err != nil {
			t.Fatalf("loading %s: %v", p, err)
		}
		pkgs = append(pkgs, pkg)
	}
	diags, err := Run(pkgs, []*Analyzer{APIReach})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("dead apiCatalog entry: %s", d)
	}
}

// A partial run that does not request internal/winapi must not judge
// catalog coverage at all — it sees too few reach facts.
func TestAPIReachSilentOnPartialRun(t *testing.T) {
	loader := newTestLoader(t)
	pkg, err := loader.Load("scarecrow/internal/core")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run([]*Package{pkg}, []*Analyzer{APIReach})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("partial run produced a verdict: %s", d)
	}
}

package lint

import "testing"

func TestExhaustiveFixture(t *testing.T) {
	RunFixture(t, Exhaustive, "exhaustive", "scarecrow/internal/lint/testdata/exhaustive")
}

// The real targets the analyzer exists for must be clean: winapi's
// Status.String switch and trace's kindNames map both cover their enums.
func TestExhaustiveRealTargets(t *testing.T) {
	moduleRoot, err := FindModuleRoot(".")
	if err != nil {
		t.Fatalf("locating module root: %v", err)
	}
	loader, err := NewLoader(moduleRoot)
	if err != nil {
		t.Fatalf("building loader: %v", err)
	}
	for _, path := range []string{
		"scarecrow/internal/winapi",
		"scarecrow/internal/trace",
		"scarecrow/internal/analysis",
	} {
		pkg, err := loader.Load(path)
		if err != nil {
			t.Fatalf("loading %s: %v", path, err)
		}
		diags, err := Run([]*Package{pkg}, []*Analyzer{Exhaustive})
		if err != nil {
			t.Fatalf("running exhaustive over %s: %v", path, err)
		}
		for _, d := range diags {
			t.Errorf("%s: unexpected finding: %s", path, d)
		}
	}
}

package winsim

import (
	"math/rand"
	"strconv"
	"time"

	"scarecrow/internal/trace"
)

// OSVersion identifies the Windows release the machine models. The
// evaluation runs on Windows 7 (6.1), which is why version-gated APIs such
// as IsNativeVhdBoot are unavailable (the paper notes this as a missed
// Pafish feature).
type OSVersion struct {
	Major int
	Minor int
	Build int
}

// Windows7 is the OS version used throughout the paper's evaluation.
var Windows7 = OSVersion{Major: 6, Minor: 1, Build: 7601}

// AtLeast reports whether the version is >= the given major.minor.
func (v OSVersion) AtLeast(major, minor int) bool {
	if v.Major != major {
		return v.Major > major
	}
	return v.Minor >= minor
}

// Machine is one simulated Windows host: the complete observable state an
// execution environment exposes to the programs running on it. A fresh
// Machine per run models the paper's Deep Freeze reset between samples.
type Machine struct {
	// Profile names the environment profile this machine was built from.
	Profile string
	// OS is the modeled Windows version.
	OS OSVersion

	Clock    *Clock
	Registry *Registry
	FS       *FileSystem
	Procs    *ProcessTable
	Windows  *WindowManager
	HW       *Hardware
	Net      *Network
	EventLog *EventLog
	Mouse    *Mouse

	// Tracer records the kernel activity stream for this machine.
	Tracer *trace.Recorder

	// SleepFactor scales requested sleep durations; analysis environments
	// that skip sleeps use values near zero.
	SleepFactor float64

	// RegistryQuotaUsed is the value NtQuerySystemInformation reports for
	// SystemRegistryQuotaInformation; a wear-and-tear artifact (regSize).
	RegistryQuotaUsed uint64

	// DebuggerAttachedPIDs marks processes with a real kernel debugger
	// attached (none, in every profile the paper evaluates).
	DebuggerAttachedPIDs map[int]bool

	// KernelDebuggerPresent marks machines running under a kernel
	// debugger (analysis rigs only); NtQuerySystemInformation reports it.
	KernelDebuggerPresent bool

	// MonitorHookedAPIs lists APIs the environment's own analysis monitor
	// (e.g. the Cuckoo in-guest monitor) inline-hooks in every analyzed
	// process; anti-hooking checks observe their patched prologues even
	// without Scarecrow.
	MonitorHookedAPIs []string

	// Faults, when armed via ArmFaults, injects deterministic failures
	// into file, registry, process, and injection operations (faults.go).
	// Nil on every machine that has not been armed.
	Faults *FaultInjector

	// rng draws from rngSrc; both point at the same underlying state.
	// rngSrc is kept alongside so Snapshot can capture the exact RNG
	// position (math/rand sources are opaque; see snapshot.go).
	rng    *rand.Rand
	rngSrc *rngSource
}

// NewMachine builds an empty machine with the given profile name and seed.
// Profiles (see profiles.go) populate it.
func NewMachine(profile string, seed int64) *Machine {
	src := newRNGSource(seed)
	return &Machine{
		Profile:              profile,
		OS:                   Windows7,
		Clock:                NewClock(30*time.Minute, 2.6),
		Registry:             NewRegistry(),
		FS:                   NewFileSystem(),
		Procs:                NewProcessTable(),
		Windows:              NewWindowManager(),
		HW:                   &Hardware{},
		Net:                  NewNetwork(),
		EventLog:             NewEventLog(),
		Mouse:                NewMouse(false, 512, 384),
		Tracer:               trace.NewRecorder(),
		SleepFactor:          1.0,
		DebuggerAttachedPIDs: make(map[int]bool),
		rng:                  rand.New(src),
		rngSrc:               src,
	}
}

// Rand exposes the machine's deterministic random source.
func (m *Machine) Rand() *rand.Rand { return m.rng }

// Sleep advances virtual time by the requested duration scaled by the
// machine's sleep factor.
func (m *Machine) Sleep(d time.Duration) {
	m.Clock.Advance(time.Duration(float64(d) * m.SleepFactor))
}

// Record emits a kernel trace event stamped with the current virtual time.
func (m *Machine) Record(e trace.Event) {
	e.Time = m.Clock.Now()
	m.Tracer.Record(e)
}

// SpawnProcess creates a process object, emits the kernel trace event, and
// returns the new process. The caller (the winapi scheduler) is responsible
// for arranging execution of the image's program body.
func (m *Machine) SpawnProcess(image, cmdline string, parent *Process) *Process {
	parentPID := 0
	depth := 0
	parentImage := ""
	if parent != nil {
		parentPID = parent.PID
		depth = parent.SpawnDepth + 1
		parentImage = parent.Image
	}
	p := m.Procs.Create(image, cmdline, parentPID, m.Clock.Now())
	p.SpawnDepth = depth
	p.PEB.NumberOfProcessors = m.HW.NumCores
	p.PEB.BeingDebugged = m.DebuggerAttachedPIDs[p.PID]
	p.PEB.ImageBaseAddress = 0x400000
	m.Record(trace.Event{
		Kind: trace.KindProcessCreate, PID: parentPID, Image: parentImage,
		Target: image, Success: true,
	})
	return p
}

// ExitProcess marks a process exited, emits the trace event, and removes
// its windows.
func (m *Machine) ExitProcess(p *Process, code int) {
	if p.State == ProcessExited {
		return
	}
	p.State = ProcessExited
	p.ExitCode = code
	p.ExitTime = m.Clock.Now()
	m.Windows.RemoveByPID(p.PID)
	m.Record(trace.Event{
		Kind: trace.KindProcessExit, PID: p.PID, Image: p.Image,
		Target: p.Image, Detail: "code=" + strconv.Itoa(code), Success: true,
	})
}

// Package winsim models a deterministic, in-memory Windows machine: the
// registry hive, the file system, the process table (with per-process PEB),
// the window manager, the hardware profile (CPUID/RDTSC/MAC/disk/RAM/cores),
// the network stack (DNS resolution, sinkholes, HTTP reachability), the
// event log, the DNS cache, and a virtual clock.
//
// Evasive malware only ever observes the operating system through these
// resources, so the model exposes the same observable surface with the same
// semantics the paper's evaluation depends on: case-insensitive registry
// keys and file paths, Win32/NTSTATUS-style outcomes, tick counts, uptime,
// and timing side channels.
//
// Every machine is constructed from an environment profile (see
// profiles.go) and a seed; given the same profile and seed, execution is
// reproducible bit for bit.
package winsim

import (
	"time"
)

// Budget exceeded unwinding: the scheduler sets a deadline on the clock;
// when an operation would advance past it, the clock panics with
// ErrTimeBudget which the scheduler recovers, marking the process as still
// running when the observation window ended (the paper runs each sample for
// one minute and then resets the machine).

// BudgetExceeded is the panic value raised by Clock.Advance when the
// execution deadline set by the scheduler has been reached. The scheduler
// recovers it; user code must not.
type BudgetExceeded struct {
	// Deadline is the virtual time at which the budget expired.
	Deadline time.Duration
}

// Clock is the machine's virtual time source. All durations are virtual:
// API calls advance the clock by modeled costs so that sleeps, tick counts,
// and cycle counters are deterministic functions of the executed work.
type Clock struct {
	now time.Duration
	// bootOffset is how long the machine had been up before the clock
	// started; GetTickCount-style uptime reads now+bootOffset.
	bootOffset time.Duration
	// deadline, when non-zero, bounds Advance.
	deadline time.Duration
	// cyclesPerNano converts virtual nanoseconds to TSC cycles.
	cyclesPerNano float64
}

// NewClock returns a clock with the given pre-boot uptime offset and a TSC
// rate of cyclesPerNano cycles per virtual nanosecond (e.g. 2.6 for a
// 2.6 GHz part).
func NewClock(bootOffset time.Duration, cyclesPerNano float64) *Clock {
	if cyclesPerNano <= 0 {
		cyclesPerNano = 2.6
	}
	return &Clock{bootOffset: bootOffset, cyclesPerNano: cyclesPerNano}
}

// Now returns the current virtual time since the start of the run.
func (c *Clock) Now() time.Duration { return c.now }

// Uptime returns the modeled system uptime (pre-boot offset plus run time).
func (c *Clock) Uptime() time.Duration { return c.bootOffset + c.now }

// TickCount returns the uptime in milliseconds, as GetTickCount would.
func (c *Clock) TickCount() uint64 {
	return uint64(c.Uptime() / time.Millisecond)
}

// Cycles returns the current virtual TSC reading.
func (c *Clock) Cycles() uint64 {
	return uint64(float64(c.Uptime()) * c.cyclesPerNano)
}

// SetDeadline bounds further Advance calls: advancing at or past d raises
// BudgetExceeded. A zero deadline removes the bound.
func (c *Clock) SetDeadline(d time.Duration) { c.deadline = d }

// Deadline returns the current advance bound (zero when unbounded).
func (c *Clock) Deadline() time.Duration { return c.deadline }

// Advance moves virtual time forward by d. If a deadline is set and the new
// time reaches it, the clock pins to the deadline and panics with
// BudgetExceeded.
func (c *Clock) Advance(d time.Duration) {
	if d < 0 {
		d = 0
	}
	c.now += d
	if c.deadline > 0 && c.now >= c.deadline {
		c.now = c.deadline
		panic(BudgetExceeded{Deadline: c.deadline})
	}
}

// AdvanceCycles moves virtual time forward by the duration corresponding to
// the given number of TSC cycles.
func (c *Clock) AdvanceCycles(cycles uint64) {
	c.Advance(time.Duration(float64(cycles) / c.cyclesPerNano))
}

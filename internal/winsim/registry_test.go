package winsim

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestRegistryCaseInsensitiveLookup(t *testing.T) {
	r := NewRegistry()
	if _, err := r.CreateKey(`HKLM\SOFTWARE\Oracle\VirtualBox Guest Additions`); err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name string
		path string
		want bool
	}{
		{"exact", `HKLM\SOFTWARE\Oracle\VirtualBox Guest Additions`, true},
		{"lower", `hklm\software\oracle\virtualbox guest additions`, true},
		{"mixed", `HKEY_LOCAL_MACHINE\Software\ORACLE\VirtualBox GUEST Additions`, true},
		{"missing leaf", `HKLM\SOFTWARE\Oracle\Nope`, false},
		{"missing middle", `HKLM\SOFTWARE\Nope\VirtualBox Guest Additions`, false},
		{"implicit hive", `SOFTWARE\Oracle\VirtualBox Guest Additions`, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := r.KeyExists(tt.path); got != tt.want {
				t.Errorf("KeyExists(%q) = %v, want %v", tt.path, got, tt.want)
			}
		})
	}
}

func TestRegistryValues(t *testing.T) {
	r := NewRegistry()
	if err := r.SetValue(`HKLM\HARDWARE\Description\System`, "SystemBiosVersion", StringValue("VBOX   - 1")); err != nil {
		t.Fatal(err)
	}
	v, ok := r.QueryValue(`hklm\hardware\description\system`, "systembiosversion")
	if !ok {
		t.Fatal("value not found with case-insensitive names")
	}
	if v.Type != RegSZ || v.Str != "VBOX   - 1" {
		t.Errorf("got %+v, want REG_SZ VBOX   - 1", v)
	}
	if _, ok := r.QueryValue(`HKLM\HARDWARE\Description\System`, "other"); ok {
		t.Error("unexpected value hit")
	}
	if !r.DeleteValue(`HKLM\HARDWARE\Description\System`, "SystemBiosVersion") {
		t.Error("DeleteValue reported missing value")
	}
	if _, ok := r.QueryValue(`HKLM\HARDWARE\Description\System`, "SystemBiosVersion"); ok {
		t.Error("value survived deletion")
	}
}

func TestRegistryDeleteKeySubtree(t *testing.T) {
	r := NewRegistry()
	for _, k := range []string{`HKLM\A\B\C`, `HKLM\A\B\D`, `HKLM\A\E`} {
		if _, err := r.CreateKey(k); err != nil {
			t.Fatal(err)
		}
	}
	if !r.DeleteKey(`HKLM\A\B`) {
		t.Fatal("DeleteKey failed")
	}
	if r.KeyExists(`HKLM\A\B\C`) || r.KeyExists(`HKLM\A\B`) {
		t.Error("subtree survived deletion")
	}
	if !r.KeyExists(`HKLM\A\E`) {
		t.Error("sibling deleted")
	}
	if r.DeleteKey(`HKLM\A\B`) {
		t.Error("second delete should report missing")
	}
	if r.DeleteKey(`HKLM`) {
		t.Error("hive roots must not be deletable")
	}
}

func TestRegistrySubkeyAndValueCounts(t *testing.T) {
	r := NewRegistry()
	const parent = `HKLM\SOFTWARE\Counts`
	for i := 0; i < 5; i++ {
		if _, err := r.CreateKey(parent + `\sub` + string(rune('A'+i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		if err := r.SetValue(parent, "v"+string(rune('a'+i)), DWordValue(uint32(i))); err != nil {
			t.Fatal(err)
		}
	}
	k, ok := r.OpenKey(parent)
	if !ok {
		t.Fatal("parent missing")
	}
	if k.SubkeyCount() != 5 {
		t.Errorf("SubkeyCount = %d, want 5", k.SubkeyCount())
	}
	if k.ValueCount() != 3 {
		t.Errorf("ValueCount = %d, want 3", k.ValueCount())
	}
	names := k.SubkeyNames()
	if len(names) != 5 || names[0] != "subA" {
		t.Errorf("SubkeyNames = %v", names)
	}
}

func TestRegistryDisplayCasingPreserved(t *testing.T) {
	r := NewRegistry()
	if _, err := r.CreateKey(`HKLM\SOFTWARE\VMware, Inc.\VMware Tools`); err != nil {
		t.Fatal(err)
	}
	k, ok := r.OpenKey(`hklm\software\vmware, inc.`)
	if !ok {
		t.Fatal("missing key")
	}
	if got := k.SubkeyNames()[0]; got != "VMware Tools" {
		t.Errorf("display name = %q, want %q", got, "VMware Tools")
	}
}

func TestRegistryWalkAndCount(t *testing.T) {
	r := NewRegistry()
	for _, k := range []string{`HKLM\A\B`, `HKCU\C`} {
		if _, err := r.CreateKey(k); err != nil {
			t.Fatal(err)
		}
	}
	if got := r.CountKeys(); got != 3 {
		t.Errorf("CountKeys = %d, want 3", got)
	}
	var paths []string
	r.Walk(func(p string, _ *Key) { paths = append(paths, p) })
	joined := strings.Join(paths, ";")
	if !strings.Contains(joined, `HKEY_LOCAL_MACHINE\A\B`) {
		t.Errorf("walk missed HKLM subtree: %v", paths)
	}
}

// Property: any key created is findable under any casing, and deleting it
// makes it unfindable.
func TestRegistryCreateFindDeleteProperty(t *testing.T) {
	f := func(a, b uint8) bool {
		r := NewRegistry()
		path := `HKLM\P` + string(rune('A'+a%26)) + `\Q` + string(rune('A'+b%26))
		if _, err := r.CreateKey(path); err != nil {
			return false
		}
		if !r.KeyExists(strings.ToUpper(path)) || !r.KeyExists(strings.ToLower(path)) {
			return false
		}
		return r.DeleteKey(path) && !r.KeyExists(path)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

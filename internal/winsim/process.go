package winsim

import (
	"sort"
	"strings"
	"time"
)

// ProcessState describes where a process is in its lifecycle at the end of
// an observation window.
type ProcessState int

// Process lifecycle states.
const (
	// ProcessPending has been created but not yet scheduled.
	ProcessPending ProcessState = iota + 1
	// ProcessRunning is executing (or was still executing when the
	// observation window closed).
	ProcessRunning
	// ProcessExited terminated voluntarily or was killed.
	ProcessExited
)

// PEB models the fields of the Process Environment Block that evasive
// malware reads directly from memory, bypassing any user-level API hooks.
// The paper's one deactivation failure (sample cbdda64...) read
// NumberOfProcessors out of the PEB instead of calling an API, which
// user-level hooking cannot intercept; the model preserves exactly that
// blind spot.
type PEB struct {
	// BeingDebugged is the byte IsDebuggerPresent reads. It reflects the
	// machine's real debugger state, never Scarecrow's deception.
	BeingDebugged bool
	// NumberOfProcessors mirrors the hardware core count.
	NumberOfProcessors int
	// ImageBaseAddress is the load address of the main module.
	ImageBaseAddress uint64
}

// Process is a kernel process object.
type Process struct {
	PID       int
	ParentPID int
	// Image is the full path of the executable.
	Image string
	// CommandLine is the command line the process was created with.
	CommandLine string
	// PEB is the process environment block, readable without any API call.
	PEB PEB
	// Modules is the list of loaded module (DLL) base names, in load order.
	Modules []string
	// State, ExitCode, StartTime, and ExitTime describe lifecycle.
	State     ProcessState
	ExitCode  int
	StartTime time.Duration
	ExitTime  time.Duration
	// Protected marks processes that may not be terminated by untrusted
	// software (the paper protects its 24 deceptive analysis-tool
	// processes from being killed).
	Protected bool
	// SpawnDepth counts CreateProcess generations from the root sample;
	// used by the harness to detect self-spawning loops.
	SpawnDepth int
}

// ImageBase returns the lowercased base name of the process image.
func (p *Process) ImageBase() string {
	img := p.Image
	if i := strings.LastIndexAny(img, `\/`); i >= 0 {
		img = img[i+1:]
	}
	return strings.ToLower(img)
}

// HasModule reports whether a module with the given base name is loaded
// (case-insensitive).
func (p *Process) HasModule(name string) bool {
	want := strings.ToLower(name)
	for _, m := range p.Modules {
		if strings.ToLower(m) == want {
			return true
		}
	}
	return false
}

// LoadModule appends a module if not already present and reports whether it
// was newly loaded.
func (p *Process) LoadModule(name string) bool {
	if p.HasModule(name) {
		return false
	}
	p.Modules = append(p.Modules, name)
	return true
}

// ProcessTable is the machine's process list.
type ProcessTable struct {
	nextPID int
	procs   map[int]*Process
	order   []int          // creation order
	faults  *FaultInjector // nil unless the machine is armed (faults.go)
}

// NewProcessTable returns an empty table. PIDs start at 4 (the System
// process) and advance by 4, matching Windows allocation granularity.
func NewProcessTable() *ProcessTable {
	return &ProcessTable{nextPID: 4, procs: make(map[int]*Process)}
}

// Create registers a new process and returns it.
func (t *ProcessTable) Create(image, cmdline string, parentPID int, start time.Duration) *Process {
	t.faults.procOp()
	p := &Process{
		PID:         t.nextPID,
		ParentPID:   parentPID,
		Image:       image,
		CommandLine: cmdline,
		State:       ProcessPending,
		StartTime:   start,
		Modules:     []string{"ntdll.dll", "kernel32.dll"},
	}
	t.nextPID += 4
	t.procs[p.PID] = p
	t.order = append(t.order, p.PID)
	return p
}

// Get returns the process with the given PID.
func (t *ProcessTable) Get(pid int) (*Process, bool) {
	p, ok := t.procs[pid]
	return p, ok
}

// All returns all processes (including exited ones) in creation order.
func (t *ProcessTable) All() []*Process {
	out := make([]*Process, 0, len(t.order))
	for _, pid := range t.order {
		out = append(out, t.procs[pid])
	}
	return out
}

// Running returns the processes not yet exited, in creation order.
func (t *ProcessTable) Running() []*Process {
	var out []*Process
	for _, pid := range t.order {
		if p := t.procs[pid]; p.State != ProcessExited {
			out = append(out, p)
		}
	}
	return out
}

// FindByImage returns the running processes whose image base name matches
// (case-insensitive).
func (t *ProcessTable) FindByImage(base string) []*Process {
	want := strings.ToLower(base)
	var out []*Process
	for _, p := range t.Running() {
		if p.ImageBase() == want {
			out = append(out, p)
		}
	}
	return out
}

// ImageNames returns the sorted distinct image base names of running
// processes, which is what a Toolhelp process snapshot exposes to malware.
func (t *ProcessTable) ImageNames() []string {
	seen := make(map[string]struct{})
	var out []string
	for _, p := range t.Running() {
		name := p.ImageBase()
		if _, ok := seen[name]; ok {
			continue
		}
		seen[name] = struct{}{}
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

package winsim

import (
	"sort"
	"strings"
)

// Window is a top-level GUI window as seen by FindWindow: a class name and
// a title, owned by a process. Evasive malware enumerates windows to detect
// debugger front-ends (e.g. OLLYDBG, WinDbgFrameClass) and sandbox tray
// tools.
type Window struct {
	Class string
	Title string
	PID   int
}

// WindowManager tracks top-level windows.
type WindowManager struct {
	windows []Window
}

// NewWindowManager returns an empty window manager.
func NewWindowManager() *WindowManager { return &WindowManager{} }

// Add registers a window.
func (wm *WindowManager) Add(w Window) { wm.windows = append(wm.windows, w) }

// Find returns the first window matching the given class and/or title,
// case-insensitively. Empty strings match anything, as with FindWindow's
// NULL arguments; at least one of class or title must be non-empty.
func (wm *WindowManager) Find(class, title string) (Window, bool) {
	if class == "" && title == "" {
		return Window{}, false
	}
	lc, lt := strings.ToLower(class), strings.ToLower(title)
	for _, w := range wm.windows {
		if lc != "" && strings.ToLower(w.Class) != lc {
			continue
		}
		if lt != "" && strings.ToLower(w.Title) != lt {
			continue
		}
		return w, true
	}
	return Window{}, false
}

// Classes returns the sorted distinct window class names.
func (wm *WindowManager) Classes() []string {
	seen := make(map[string]struct{})
	var out []string
	for _, w := range wm.windows {
		key := strings.ToLower(w.Class)
		if _, ok := seen[key]; ok {
			continue
		}
		seen[key] = struct{}{}
		out = append(out, w.Class)
	}
	sort.Strings(out)
	return out
}

// RemoveByPID drops all windows owned by the given process.
func (wm *WindowManager) RemoveByPID(pid int) {
	kept := wm.windows[:0]
	for _, w := range wm.windows {
		if w.PID != pid {
			kept = append(kept, w)
		}
	}
	wm.windows = kept
}

// Mouse models pointer activity. Analysis environments typically show no
// pointer movement while a sample runs; actively used end-user machines do.
// Pafish's mouse_activity check samples the cursor twice across a sleep and
// flags the environment when the position never changes.
type Mouse struct {
	// Active indicates a human is moving the pointer during execution.
	Active bool
	// baseX/baseY seed the deterministic cursor walk.
	baseX, baseY int
}

// NewMouse returns a mouse model; active mice produce a cursor position
// that changes as virtual time advances.
func NewMouse(active bool, seedX, seedY int) *Mouse {
	return &Mouse{Active: active, baseX: seedX, baseY: seedY}
}

// CursorAt returns the pointer position at the given virtual uptime. Static
// mice always return the base position.
func (m *Mouse) CursorAt(uptimeMillis uint64) (x, y int) {
	if !m.Active {
		return m.baseX, m.baseY
	}
	// A deterministic pseudo-walk: the position drifts with time so two
	// samples more than a few milliseconds apart differ.
	t := int(uptimeMillis)
	return m.baseX + (t/7)%640, m.baseY + (t/11)%480
}

package winsim

import (
	"strings"
	"testing"
)

// FuzzNormalizePath: normalization is idempotent, lowercase, and
// slash-free for any input.
func FuzzNormalizePath(f *testing.F) {
	for _, seed := range []string{
		`C:\Windows\System32`, `c:/users/x/../y`, `\\.\VBoxGuest`, `C:`,
		``, `\`, `/`, `C:\a\`, strings.Repeat(`\x`, 50),
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, path string) {
		norm := NormalizePath(path)
		if NormalizePath(norm) != norm {
			t.Errorf("not idempotent: %q -> %q -> %q", path, norm, NormalizePath(norm))
		}
		if strings.ContainsRune(norm, '/') {
			t.Errorf("forward slash survived: %q", norm)
		}
		if norm != strings.ToLower(norm) {
			t.Errorf("not lowercased: %q", norm)
		}
	})
}

// FuzzRegistryPaths: create/open/delete never panics and stays consistent
// for arbitrary path strings.
func FuzzRegistryPaths(f *testing.F) {
	for _, seed := range []string{
		`HKLM\SOFTWARE\X`, `hkcu\a\b\c`, `SOFTWARE\implicit`, ``, `\\\`,
		`HKLM`, `HKLM\` + strings.Repeat(`k\`, 30), "HKLM\\\x00weird",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, path string) {
		r := NewRegistry()
		k, err := r.CreateKey(path)
		if err != nil {
			// Only the empty path may fail.
			if len(splitRegPath(path)) != 0 {
				t.Errorf("CreateKey(%q) failed: %v", path, err)
			}
			return
		}
		if k == nil {
			t.Fatalf("CreateKey(%q) returned nil without error", path)
		}
		if !r.KeyExists(path) {
			t.Errorf("created key %q not found", path)
		}
		// Deleting is possible unless the path names a hive root.
		deleted := r.DeleteKey(path)
		isHiveRoot := len(splitRegPath(path)) == 0 ||
			(len(splitRegPath(path)) == 1 && func() bool {
				_, ok := hiveAliases[strings.ToLower(splitRegPath(path)[0])]
				return ok
			}())
		if deleted == isHiveRoot {
			t.Errorf("DeleteKey(%q) = %v (hive root: %v)", path, deleted, isHiveRoot)
		}
	})
}

// FuzzFileSystemOps: touch/stat/delete stays consistent for arbitrary
// path strings.
func FuzzFileSystemOps(f *testing.F) {
	f.Add(`C:\a\b.txt`, int64(10))
	f.Add(`c:/x/y`, int64(0))
	f.Add(`\\.\Dev`, int64(1))
	f.Add(``, int64(5))
	f.Fuzz(func(t *testing.T, path string, size int64) {
		fs := NewFileSystem()
		fs.Touch(path, size)
		if !fs.Exists(path) {
			t.Errorf("touched %q but not found", path)
		}
		info, ok := fs.Stat(path)
		if !ok || info.Kind != FileRegular {
			t.Errorf("Stat(%q) = %+v, %v", path, info, ok)
		}
		if !fs.Delete(path) {
			t.Errorf("Delete(%q) failed", path)
		}
		if fs.Exists(path) {
			t.Errorf("%q survived deletion", path)
		}
	})
}

package winsim

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// FuzzNormalizePath: normalization is idempotent, lowercase, and
// slash-free for any input.
func FuzzNormalizePath(f *testing.F) {
	for _, seed := range []string{
		`C:\Windows\System32`, `c:/users/x/../y`, `\\.\VBoxGuest`, `C:`,
		``, `\`, `/`, `C:\a\`, strings.Repeat(`\x`, 50),
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, path string) {
		norm := NormalizePath(path)
		if NormalizePath(norm) != norm {
			t.Errorf("not idempotent: %q -> %q -> %q", path, norm, NormalizePath(norm))
		}
		if strings.ContainsRune(norm, '/') {
			t.Errorf("forward slash survived: %q", norm)
		}
		if norm != strings.ToLower(norm) {
			t.Errorf("not lowercased: %q", norm)
		}
	})
}

// FuzzRegistryPaths: create/open/delete never panics and stays consistent
// for arbitrary path strings.
func FuzzRegistryPaths(f *testing.F) {
	for _, seed := range []string{
		`HKLM\SOFTWARE\X`, `hkcu\a\b\c`, `SOFTWARE\implicit`, ``, `\\\`,
		`HKLM`, `HKLM\` + strings.Repeat(`k\`, 30), "HKLM\\\x00weird",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, path string) {
		r := NewRegistry()
		k, err := r.CreateKey(path)
		if err != nil {
			// Only the empty path may fail.
			if len(splitRegPath(path)) != 0 {
				t.Errorf("CreateKey(%q) failed: %v", path, err)
			}
			return
		}
		if k == nil {
			t.Fatalf("CreateKey(%q) returned nil without error", path)
		}
		if !r.KeyExists(path) {
			t.Errorf("created key %q not found", path)
		}
		// Deleting is possible unless the path names a hive root.
		deleted := r.DeleteKey(path)
		isHiveRoot := len(splitRegPath(path)) == 0 ||
			(len(splitRegPath(path)) == 1 && func() bool {
				_, ok := hiveAliases[strings.ToLower(splitRegPath(path)[0])]
				return ok
			}())
		if deleted == isHiveRoot {
			t.Errorf("DeleteKey(%q) = %v (hive root: %v)", path, deleted, isHiveRoot)
		}
	})
}

// applyFuzzOps interprets a byte stream as a deterministic sequence of
// machine operations: file, registry, process, clock, network, and RNG
// activity. Each 3-byte chunk is (opcode, a, b); paths are derived from a
// bounded namespace so create/delete sequences interact.
func applyFuzzOps(m *Machine, data []byte) {
	for i := 0; i+2 < len(data); i += 3 {
		op, a, b := data[i]%10, int(data[i+1]), int(data[i+2])
		path := fmt.Sprintf(`C:\fuzz\d%02d\f%02d.bin`, a%8, b%8)
		regPath := fmt.Sprintf(`HKLM\SOFTWARE\Fuzz\K%02d`, a%8)
		switch op {
		case 0:
			m.FS.Touch(path, int64(b))
		case 1:
			_ = m.FS.WriteFile(path, []byte{byte(a), byte(b)})
		case 2:
			m.FS.Delete(path)
		case 3:
			_, _ = m.Registry.CreateKey(regPath)
		case 4:
			_ = m.Registry.SetValue(regPath, fmt.Sprintf("v%d", b%4), DWordValue(uint32(b)))
		case 5:
			m.Registry.DeleteKey(regPath)
		case 6:
			p := m.SpawnProcess(fmt.Sprintf(`C:\fuzz\p%02d.exe`, a%6), "fuzz", nil)
			if b%2 == 0 {
				m.ExitProcess(p, b)
			}
		case 7:
			m.Clock.Advance(time.Duration(a*b) * time.Millisecond)
		case 8:
			_, _ = m.Net.Resolve(fmt.Sprintf("host%02d.fuzz.example", a%6))
		case 9:
			m.Rand().Int63()
		}
	}
}

// FuzzSnapshotRestore: for any operation prefix and suffix, Snapshot after
// the prefix and Restore after the suffix rewinds the machine bit for bit —
// and two machines restored from the same snapshot produce identical state
// and trace streams under a canned follow-up workload.
func FuzzSnapshotRestore(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5}, []byte{6, 7, 8, 9, 1, 2})
	f.Add([]byte{}, []byte{2, 200, 9})
	f.Add([]byte{6, 0, 0, 6, 0, 1, 7, 50, 50}, []byte{})
	f.Add([]byte{4, 3, 3, 5, 3, 0, 1, 1, 1}, []byte{0, 1, 1, 2, 1, 1})
	f.Fuzz(func(t *testing.T, pre, post []byte) {
		m := NewMachine("fuzz", 11)
		m.Net.SinkholeIP = "10.0.0.1" // so Resolve mutates the DNS cache
		applyFuzzOps(m, pre)
		snap := m.Snapshot()
		want := digest(m)

		applyFuzzOps(m, post)
		m.Restore(snap)
		if got := digest(m); got != want {
			t.Fatalf("Restore did not rewind the machine:\n got: %s\nwant: %s", got, want)
		}

		// The canned specimen: a fixed op script covering every subsystem,
		// run on two machines restored from the same snapshot. State and
		// trace stream (digest includes both) must match exactly.
		canned := []byte{6, 1, 1, 0, 2, 2, 9, 0, 0, 4, 4, 4, 7, 10, 10, 8, 3, 3, 6, 5, 0, 2, 2, 2}
		m2 := NewMachine("other", 99)
		m2.Restore(snap)
		applyFuzzOps(m, canned)
		applyFuzzOps(m2, canned)
		if digest(m) != digest(m2) {
			t.Fatal("canned workload diverged between two machines restored from the same snapshot")
		}
	})
}

// FuzzFileSystemOps: touch/stat/delete stays consistent for arbitrary
// path strings.
func FuzzFileSystemOps(f *testing.F) {
	f.Add(`C:\a\b.txt`, int64(10))
	f.Add(`c:/x/y`, int64(0))
	f.Add(`\\.\Dev`, int64(1))
	f.Add(``, int64(5))
	f.Fuzz(func(t *testing.T, path string, size int64) {
		fs := NewFileSystem()
		fs.Touch(path, size)
		if !fs.Exists(path) {
			t.Errorf("touched %q but not found", path)
		}
		info, ok := fs.Stat(path)
		if !ok || info.Kind != FileRegular {
			t.Errorf("Stat(%q) = %+v, %v", path, info, ok)
		}
		if !fs.Delete(path) {
			t.Errorf("Delete(%q) failed", path)
		}
		if fs.Exists(path) {
			t.Errorf("%q survived deletion", path)
		}
	})
}

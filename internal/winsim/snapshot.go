package winsim

// Deep-Freeze snapshot pool. The paper's cluster re-images every bare-metal
// machine with Deep Freeze before each sample; the simulation used to model
// that reset by rebuilding the whole Machine (profile population, registry,
// filesystem, wear-and-tear forest) from scratch for every run — the
// dominant cost of a corpus sweep. Snapshot captures the complete mutable
// state of a machine once; Clone and Restore then produce machines that are
// observationally identical to a fresh build at a fraction of the cost.
//
// Sharing contract (copy-on-write): a clone shares data that is never
// mutated in place after creation, plus the big state trees, which are
// shared COW with explicit ownership discipline —
//
//   - *fsNode values and the FileSystem node map (mutators call ownNodes
//     before writing; see filesystem.go),
//   - Registry *Key nodes (mutators path-copy via mutableWalk; clones
//     drop the owned set so every key starts shared; see registry.go),
//   - Process Modules slices (clone caps the copy's slice at its length,
//     so a later append on either side reallocates instead of writing
//     into the shared array),
//   - Value.Data byte slices (BinaryValue copies at construction; nothing
//     writes into a stored slice),
//   - strings (immutable in Go).
//
// Everything else — processes, volumes, windows, hardware, network tables,
// event log, mouse, clock, tracer, fault injector, RNG state — is copied,
// so no write on one machine can ever be observed on another. The
// mechanical value/slice/map copies are generated into snapshot_gen.go by
// internal/winsim/gen (go generate ./internal/winsim); only the types with
// sharing policy keep handwritten clones below. The differential harness
// in internal/analysis and FuzzSnapshotRestore enforce the contract
// behaviourally; TestSnapshotCoversEveryField enforces it structurally (a
// new field breaks the build until snapshotSpec and clone() account for
// it).

//go:generate go run ./gen

import (
	"math/rand"
)

// rngSource is the machine's deterministic random source: a SplitMix64
// generator whose entire state is one word, so Snapshot can capture the
// exact RNG position and Restore can resume it mid-stream (math/rand's
// stock source is opaque and unserializable). It implements rand.Source64.
type rngSource struct {
	state uint64
}

// newRNGSource returns a source seeded like rand.NewSource: the same seed
// always yields the same stream.
func newRNGSource(seed int64) *rngSource {
	return &rngSource{state: uint64(seed)}
}

// Seed resets the source to the canonical stream for seed.
func (s *rngSource) Seed(seed int64) { s.state = uint64(seed) }

// Uint64 advances the SplitMix64 state and returns the next output.
func (s *rngSource) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Int63 returns a non-negative 63-bit value, as rand.Source requires.
func (s *rngSource) Int63() int64 { return int64(s.Uint64() >> 1) }

// Snapshot is a frozen deep copy of one machine's complete observable
// state: registry, filesystem, process table, windows, event log, hardware,
// network, mouse, clock, trace stream, RNG position, and fault-plan arming.
// A snapshot is immutable after capture and safe for concurrent Clone calls
// from many goroutines (the lab's template pool does exactly that).
type Snapshot struct {
	m *Machine
}

// Snapshot captures the machine's current state. The machine remains live;
// later mutations are not reflected in the snapshot.
func (m *Machine) Snapshot() *Snapshot {
	return &Snapshot{m: m.clone()}
}

// Clone builds a new machine from the snapshot with a fresh RNG stream for
// the given seed. Cloning a snapshot of a freshly built profile machine is
// observationally identical to NewProfileMachine(profile, seed) — the O(1)
// Deep Freeze reset — because profile construction never consumes the RNG.
func (s *Snapshot) Clone(seed int64) *Machine {
	nm := s.m.clone()
	nm.rngSrc.Seed(seed)
	return nm
}

// Restore rewinds the machine to the snapshot point, including the RNG
// position and the trace stream, so execution after Restore replays exactly
// as execution after the original Snapshot call. Callers holding references
// to the machine's previous subsystems (e.g. a winapi.System built before
// Restore) must rebuild them: Restore swaps in fresh deep copies.
func (m *Machine) Restore(s *Snapshot) {
	*m = *s.m.clone()
}

// clone deep-copies the machine. Every field of Machine (and of each state
// type it reaches) must be handled here and listed in snapshotSpec;
// TestSnapshotCoversEveryField fails the build otherwise.
func (m *Machine) clone() *Machine {
	nm := &Machine{
		Profile:               m.Profile,
		OS:                    m.OS,
		SleepFactor:           m.SleepFactor,
		RegistryQuotaUsed:     m.RegistryQuotaUsed,
		KernelDebuggerPresent: m.KernelDebuggerPresent,
	}
	if m.MonitorHookedAPIs != nil {
		nm.MonitorHookedAPIs = append([]string(nil), m.MonitorHookedAPIs...)
	}
	nm.Faults = m.Faults.cloneGen()
	nm.Clock = m.Clock.cloneGen()
	nm.Registry = m.Registry.clone(nm.Faults)
	nm.FS = m.FS.clone(nm.Faults)
	nm.Procs = m.Procs.clone(nm.Faults)
	nm.Windows = m.Windows.cloneGen()
	nm.HW = m.HW.cloneGen()
	nm.Net = m.Net.cloneGen()
	nm.EventLog = m.EventLog.cloneGen()
	nm.Mouse = m.Mouse.cloneGen()
	nm.Tracer = m.Tracer.Clone()
	nm.DebuggerAttachedPIDs = make(map[int]bool, len(m.DebuggerAttachedPIDs))
	for pid, v := range m.DebuggerAttachedPIDs {
		nm.DebuggerAttachedPIDs[pid] = v
	}
	if m.rngSrc != nil {
		nm.rngSrc = m.rngSrc.cloneGen()
	} else {
		nm.rngSrc = newRNGSource(0)
	}
	nm.rng = rand.New(nm.rngSrc)
	return nm
}

// clone shares the registry tree copy-on-write and rewires fault injection
// to the cloning machine's injector. Only the four-entry hive map is
// copied; the source's owned set is dropped so both sides treat every key
// as shared and path-copy before mutating (see Registry). The nil-guard
// keeps concurrent Clone calls on a snapshot write-free: a machine that
// was itself produced by clone() already has a nil owned set.
func (r *Registry) clone(fi *FaultInjector) *Registry {
	if r.owned != nil {
		r.owned = nil
	}
	nr := &Registry{hives: make(map[string]*Key, len(r.hives)), faults: fi}
	for name, hive := range r.hives {
		nr.hives[name] = hive
	}
	return nr
}

// clone shares the file-system node map copy-on-write: both sides are
// marked shared and the first mutation on either side copies the map (see
// ownNodes). The write is guarded so concurrent Clone calls on an
// already-shared snapshot machine stay write-free. Volumes are mutated in
// place (WriteFile charges FreeBytes) and therefore deep-copied.
func (fs *FileSystem) clone(fi *FaultInjector) *FileSystem {
	if !fs.shared {
		fs.shared = true
	}
	nf := &FileSystem{
		nodes:   fs.nodes,
		volumes: make(map[byte]*Volume, len(fs.volumes)),
		faults:  fi,
		shared:  true,
	}
	for letter, v := range fs.volumes {
		vol := *v
		nf.volumes[letter] = &vol
	}
	return nf
}

// clone copies the process table. Process objects are mutated in place
// throughout a run (state, PEB, modules), so every one is copied — into a
// single arena allocation rather than one allocation per process. Modules
// slices are shared with the source but capped at their current length:
// an append on either side then reallocates instead of writing into the
// shared backing array (elements below the cap are never mutated).
func (t *ProcessTable) clone(fi *FaultInjector) *ProcessTable {
	nt := &ProcessTable{
		nextPID: t.nextPID,
		procs:   make(map[int]*Process, len(t.procs)),
		order:   append([]int(nil), t.order...),
		faults:  fi,
	}
	arena := make([]Process, len(t.order))
	for i, pid := range t.order {
		p := t.procs[pid]
		arena[i] = *p
		arena[i].Modules = p.Modules[:len(p.Modules):len(p.Modules)]
		nt.procs[pid] = &arena[i]
	}
	return nt
}

// snapshotSpec names, for every state type the snapshot reaches, the exact
// fields clone() accounts for. TestSnapshotCoversEveryField reflects over
// the real types and fails on any mismatch in either direction, so adding a
// field to the machine without snapshot support breaks the build here — not
// a sweep three PRs later.
var snapshotSpec = map[string][]string{
	"Machine": {
		"Profile", "OS", "Clock", "Registry", "FS", "Procs", "Windows",
		"HW", "Net", "EventLog", "Mouse", "Tracer", "SleepFactor",
		"RegistryQuotaUsed", "DebuggerAttachedPIDs", "KernelDebuggerPresent",
		"MonitorHookedAPIs", "Faults", "rng", "rngSrc",
	},
	"OSVersion":     {"Major", "Minor", "Build"},
	"Clock":         {"now", "bootOffset", "deadline", "cyclesPerNano"},
	"Registry":      {"hives", "faults", "owned"},
	"Key":           {"name", "subkeys", "values"},
	"kvPair":        {"name", "value"},
	"Value":         {"Type", "Str", "Num", "Data"},
	"FileSystem":    {"nodes", "volumes", "faults", "shared"},
	"fsNode":        {"info", "data"},
	"FileInfo":      {"Path", "Kind", "Size"},
	"Volume":        {"Letter", "TotalBytes", "FreeBytes", "SerialNumber"},
	"ProcessTable":  {"nextPID", "procs", "order", "faults"},
	"Process":       {"PID", "ParentPID", "Image", "CommandLine", "PEB", "Modules", "State", "ExitCode", "StartTime", "ExitTime", "Protected", "SpawnDepth"},
	"PEB":           {"BeingDebugged", "NumberOfProcessors", "ImageBaseAddress"},
	"WindowManager": {"windows"},
	"Window":        {"Class", "Title", "PID"},
	"Hardware": {
		"NumCores", "RAMBytes", "CPUVendor", "CPUBrand", "HypervisorPresent",
		"HypervisorVendor", "CPUIDCycles", "RDTSCCycles", "MACs", "DiskModel",
		"BIOSSerial", "SystemManufacturer", "SystemProductName",
		"ComputerName", "UserName",
	},
	"Network":       {"records", "SinkholeIP", "reachable", "Cache"},
	"DNSCache":      {"order", "present"},
	"EventLog":      {"count", "sources"},
	"Mouse":         {"Active", "baseX", "baseY"},
	"FaultInjector": {"plan", "fileOps", "regOps", "procOps"},
	"FaultPlan":     {"FailFileOp", "FailRegOp", "FailProcOp", "FailInjection"},
	"rngSource":     {"state"},
}

package winsim

import "testing"

// The zero-alloc cold path rests on Clone being cheap: COW registry and
// filesystem, one process arena, generated bulk copies for the plain
// subsystems. This pins the allocation count so a regression — a deep
// copy sneaking back into a clone path — fails loudly instead of
// silently re-inflating the per-verdict cost.
func TestCloneAllocBudget(t *testing.T) {
	template := NewProfileMachine(ProfileBareMetalSandbox, 0).Snapshot()
	var seed int64
	allocs := testing.AllocsPerRun(100, func() {
		seed++
		_ = template.Clone(seed)
	})
	// Measured ~39 allocs/op on the bare-metal profile (registry hive map,
	// volume copies, process arena, recorder, generated subsystem copies).
	// The budget leaves headroom for profile drift but is far below the
	// ~2000 allocs of the old per-field deep clone.
	if allocs > 64 {
		t.Errorf("Snapshot.Clone allocates %.0f objects/op, budget is 64", allocs)
	}
}
